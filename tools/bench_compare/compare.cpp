#include "compare.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "sgnn/util/parse.hpp"

namespace sgnn::bench_compare {
namespace {

/// Recursive-descent parser for the JSON subset our reports use. Numbers
/// go through util::parse_double, so parsing is locale-independent.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse() {
    skip_ws();
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError("JSON parse error at byte " + std::to_string(pos_) +
                     ": " + what);
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return eof() ? '\0' : text_[pos_]; }

  char next() {
    if (eof()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void expect(char c) {
    if (next() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void skip_ws() {
    while (!eof()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool consume_literal(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    if (eof()) fail("unexpected end of input");
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        Json v;
        v.type = Json::Type::kString;
        v.str = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        Json v;
        v.type = Json::Type::kBool;
        if (consume_literal("true")) {
          v.boolean = true;
        } else if (consume_literal("false")) {
          v.boolean = false;
        } else {
          fail("invalid literal");
        }
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("invalid literal");
        return Json{};
      }
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json v;
    v.type = Json::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.insert_or_assign(std::move(key), parse_value());
      skip_ws();
      const char c = next();
      if (c == '}') return v;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
  }

  Json parse_array() {
    expect('[');
    Json v;
    v.type = Json::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      const char c = next();
      if (c == ']') return v;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = next();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = next();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              --pos_;
              fail("invalid \\u escape");
            }
          }
          // Reports only emit \u for ASCII control characters; anything
          // beyond Latin-1 is replaced rather than UTF-8 encoded.
          out.push_back(code < 0x100 ? static_cast<char>(code) : '?');
          break;
        }
        default:
          --pos_;
          fail("invalid escape sequence");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    while (!eof()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    double value = 0;
    std::size_t consumed = 0;
    if (!sgnn::util::parse_double(token, value, &consumed) ||
        consumed != token.size()) {
      pos_ = start;
      fail("malformed number '" + token + "'");
    }
    Json v;
    v.type = Json::Type::kNumber;
    v.number = value;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

const Json* find(const Json& object, const std::string& key) {
  const auto it = object.object.find(key);
  return it == object.object.end() ? nullptr : &it->second;
}

}  // namespace

Json parse_json(const std::string& text) { return Parser(text).parse(); }

Report report_from_json(const Json& root) {
  if (root.type != Json::Type::kObject) {
    throw ParseError("report: top-level value is not an object");
  }
  const Json* schema = find(root, "schema");
  if (schema == nullptr || schema->type != Json::Type::kString) {
    throw ParseError("report: missing \"schema\" tag");
  }
  if (schema->str != "sgnn.bench_report.v1") {
    throw ParseError("report: unsupported schema '" + schema->str + "'");
  }
  Report report;
  if (const Json* name = find(root, "name");
      name != nullptr && name->type == Json::Type::kString) {
    report.name = name->str;
  }
  const Json* values = find(root, "values");
  if (values == nullptr || values->type != Json::Type::kObject) {
    throw ParseError("report: missing \"values\" object");
  }
  for (const auto& [key, entry] : values->object) {
    if (entry.type != Json::Type::kObject) {
      throw ParseError("report: values entry '" + key + "' is not an object");
    }
    const Json* value = find(entry, "value");
    if (value == nullptr || value->type != Json::Type::kNumber) {
      throw ParseError("report: values entry '" + key +
                       "' has no numeric \"value\"");
    }
    Value v;
    v.value = value->number;
    if (const Json* better = find(entry, "better");
        better != nullptr && better->type == Json::Type::kString) {
      v.better = better->str;
    } else {
      v.better = "none";
    }
    report.values.insert_or_assign(key, v);
  }
  return report;
}

Report parse_report(const std::string& text) {
  return report_from_json(parse_json(text));
}

CompareResult compare(const Report& baseline, const Report& current,
                      double threshold) {
  CompareResult result;
  for (const auto& [key, base] : baseline.values) {
    const auto it = current.values.find(key);
    if (it == current.values.end()) {
      result.only_baseline.push_back(key);
      continue;
    }
    Delta d;
    d.key = key;
    d.baseline = base.value;
    d.current = it->second.value;
    d.better = base.better;
    const double denom = std::max(std::abs(base.value), 1e-12);
    d.rel_change = (d.current - d.baseline) / denom;
    if (d.better == "lower") {
      d.regression = d.rel_change > threshold;
      d.improvement = d.rel_change < -threshold;
    } else if (d.better == "higher") {
      d.regression = d.rel_change < -threshold;
      d.improvement = d.rel_change > threshold;
    }
    result.has_regression = result.has_regression || d.regression;
    result.deltas.push_back(std::move(d));
  }
  for (const auto& [key, value] : current.values) {
    (void)value;
    if (baseline.values.find(key) == baseline.values.end()) {
      result.only_current.push_back(key);
    }
  }
  return result;
}

}  // namespace sgnn::bench_compare
