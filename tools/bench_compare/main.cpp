// sgnn_bench_compare CLI:
//   sgnn_bench_compare <baseline.json> <current.json>
//                      [--threshold <frac>] [--warn-only]
//
// Prints one line per metric present in both reports and a summary.
// Exit codes: 0 = no regression (or --warn-only), 1 = at least one metric
// moved against its `better` direction by more than the threshold,
// 2 = usage / file / parse error. Run by the CI perf-smoke job against
// the committed baselines in bench/baselines/.

#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>

#include "compare.hpp"
#include "sgnn/util/parse.hpp"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw sgnn::bench_compare::ParseError("cannot open '" + path + "'");
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string percent(double rel) {
  std::ostringstream out;
  out << std::showpos << std::fixed << std::setprecision(1) << 100.0 * rel
      << "%";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string current_path;
  double threshold = 0.10;
  bool warn_only = false;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      ++i;
      std::size_t consumed = 0;
      if (!sgnn::util::parse_double(argv[i], threshold, &consumed) ||
          consumed != std::strlen(argv[i]) || threshold < 0) {
        std::cerr << "sgnn_bench_compare: bad --threshold '" << argv[i]
                  << "'\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--warn-only") == 0) {
      warn_only = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::cout << "usage: sgnn_bench_compare <baseline.json> <current.json>"
                   " [--threshold <frac>] [--warn-only]\n"
                   "Diffs the `values` sections of two BENCH_<name>.json "
                   "reports (schema sgnn.bench_report.v1).\n";
      return 0;
    } else if (argv[i][0] == '-') {
      std::cerr << "sgnn_bench_compare: unknown argument '" << argv[i]
                << "'\n";
      return 2;
    } else if (baseline_path.empty()) {
      baseline_path = argv[i];
    } else if (current_path.empty()) {
      current_path = argv[i];
    } else {
      std::cerr << "sgnn_bench_compare: too many positional arguments\n";
      return 2;
    }
  }
  if (baseline_path.empty() || current_path.empty()) {
    std::cerr << "usage: sgnn_bench_compare <baseline.json> <current.json>"
                 " [--threshold <frac>] [--warn-only]\n";
    return 2;
  }

  using namespace sgnn::bench_compare;
  Report baseline;
  Report current;
  try {
    baseline = parse_report(read_file(baseline_path));
    current = parse_report(read_file(current_path));
  } catch (const ParseError& e) {
    std::cerr << "sgnn_bench_compare: " << e.what() << "\n";
    return 2;
  }

  const CompareResult result = compare(baseline, current, threshold);
  std::cout << "comparing '" << baseline.name << "' (" << result.deltas.size()
            << " shared metrics, threshold " << percent(threshold) << ")\n";
  for (const auto& d : result.deltas) {
    std::cout << "  " << d.key << ": " << d.baseline << " -> " << d.current
              << " (" << percent(d.rel_change) << ", better=" << d.better
              << ")";
    if (d.regression) std::cout << "  REGRESSION";
    if (d.improvement) std::cout << "  improvement";
    std::cout << "\n";
  }
  for (const auto& key : result.only_baseline) {
    std::cout << "  " << key << ": only in baseline\n";
  }
  for (const auto& key : result.only_current) {
    std::cout << "  " << key << ": only in current\n";
  }

  if (!result.has_regression) {
    std::cout << "sgnn_bench_compare: ok\n";
    return 0;
  }
  std::cout << "sgnn_bench_compare: regression detected"
            << (warn_only ? " (warn-only)" : "") << "\n";
  return warn_only ? 0 : 1;
}
