#pragma once

// sgnn_bench_compare — diff two BENCH_<name>.json reports (the
// `sgnn.bench_report.v1` schema written by bench/bench_report.hpp) and
// flag metric regressions.
//
// Only the `values` section participates in the comparison: each entry
// carries its own improvement direction ("lower" / "higher" / "none"),
// so the tool needs no per-metric configuration. A key is a REGRESSION
// when its relative change moves against the stored direction by more
// than the threshold; keys present in only one report are listed but
// never fail the comparison (benches gain and lose metrics over time).
//
// Split into this core library (linked by tests/bench_compare_test) and
// the CLI in main.cpp that the CI perf-smoke job runs.

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace sgnn::bench_compare {

/// Thrown for malformed JSON or a report that does not match the
/// `sgnn.bench_report.v1` schema. The CLI maps it to exit code 2.
struct ParseError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Minimal JSON document — just enough structure to walk a bench report.
struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<Json> array;
  std::map<std::string, Json> object;
};

/// Parses a complete JSON value; throws ParseError with a byte offset on
/// malformed input or trailing garbage.
Json parse_json(const std::string& text);

/// One entry of a report's `values` section.
struct Value {
  double value = 0;
  std::string better;  ///< "lower", "higher" or "none"
};

/// The comparable slice of a BENCH_<name>.json report.
struct Report {
  std::string name;
  std::map<std::string, Value> values;
};

/// Extracts the Report from parsed JSON; throws ParseError when the
/// schema tag is missing/unknown or `values` is malformed.
Report report_from_json(const Json& root);

/// Convenience: parse_json + report_from_json.
Report parse_report(const std::string& text);

/// Verdict for one key present in both reports.
struct Delta {
  std::string key;
  double baseline = 0;
  double current = 0;
  double rel_change = 0;  ///< (current - baseline) / |baseline|
  std::string better;
  bool regression = false;
  bool improvement = false;
};

struct CompareResult {
  std::vector<Delta> deltas;                ///< keys in both, sorted
  std::vector<std::string> only_baseline;   ///< keys missing from current
  std::vector<std::string> only_current;    ///< keys missing from baseline
  bool has_regression = false;
};

/// Compares every key present in both reports. `threshold` is the
/// relative change (e.g. 0.10 = 10%) beyond which a move against the
/// metric's `better` direction counts as a regression.
CompareResult compare(const Report& baseline, const Report& current,
                      double threshold);

}  // namespace sgnn::bench_compare
