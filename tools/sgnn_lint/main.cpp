// sgnn_lint CLI:
//   sgnn_lint [--root <dir>] [--format=text|json|github]
//             [--json-out <path>] [--stats] [--print-dag]
//
// Builds the cross-TU index once, applies every rule family (R1-R10), and
// prints findings in the selected format (`path:line: [rule] message` by
// default, `::error ...` workflow annotations for --format=github, the
// sgnn.lint_report.v1 document for --format=json). --json-out additionally
// writes the JSON report to a file regardless of the stdout format — the
// `lint_tree` ctest uses it so CI can attach the report as an artifact.
// Exit codes: 0 clean, 1 findings, 2 usage error. Run by the `lint_tree`
// ctest and the CI lint job.

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "lint.hpp"

namespace {

constexpr const char* kUsage =
    "usage: sgnn_lint [--root <dir>] [--format=text|json|github]\n"
    "                 [--json-out <path>] [--stats] [--print-dag]\n"
    "Project-specific static analysis; rules are documented in\n"
    "docs/static-analysis.md.\n";

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string format = "text";
  std::string json_out;
  bool stats = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json" && format != "github") {
        std::cerr << "sgnn_lint: unknown format '" << format << "'\n";
        return 2;
      }
    } else if (arg == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--print-dag") {
      std::cout << sgnn::lint::print_dag();
      return 0;
    } else if (arg == "--help") {
      std::cout << kUsage;
      return 0;
    } else {
      std::cerr << "sgnn_lint: unknown argument '" << arg << "'\n" << kUsage;
      return 2;
    }
  }

  const auto result = sgnn::lint::lint_tree_stats(root);
  const auto& findings = result.findings;

  if (!json_out.empty()) {
    std::ofstream out(json_out, std::ios::binary);
    if (!out) {
      std::cerr << "sgnn_lint: cannot write '" << json_out << "'\n";
      return 2;
    }
    out << sgnn::lint::format_json(result, root);
  }

  if (format == "json") {
    std::cout << sgnn::lint::format_json(result, root);
  } else if (format == "github") {
    std::cout << sgnn::lint::format_github(findings);
  } else {
    std::cout << sgnn::lint::format_text(findings);
    if (findings.empty()) {
      std::cout << "sgnn_lint: clean\n";
    } else {
      std::cout << "sgnn_lint: " << findings.size() << " finding"
                << (findings.size() == 1 ? "" : "s") << "\n";
    }
  }

  if (stats) {
    const auto& s = result.stats;
    const auto ms = [](double seconds) {
      return static_cast<long long>(seconds * 1000.0 + 0.5);
    };
    std::cerr << "sgnn_lint: " << s.files << " files, " << s.bytes
              << " bytes, " << s.functions << " functions, "
              << s.include_edges << " include edges\n"
              << "sgnn_lint: wall " << ms(s.total_seconds) << " ms (index "
              << ms(s.index_seconds) << " ms, rules " << ms(s.rule_seconds)
              << " ms)\n";
  }
  return findings.empty() ? 0 : 1;
}
