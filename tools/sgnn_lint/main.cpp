// sgnn_lint CLI: `sgnn_lint [--root <dir>]`.
//
// Walks src/, include/ and tests/ under the root, prints one line per
// finding (`path:line: [rule] message`), and exits non-zero when the tree
// is not clean. Run by the `lint_tree` ctest and the CI lint job.

#include <cstring>
#include <iostream>
#include <string>

#include "lint.hpp"

int main(int argc, char** argv) {
  std::string root = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::cout << "usage: sgnn_lint [--root <dir>]\n"
                   "Project-specific static analysis; rules are documented "
                   "in docs/static-analysis.md.\n";
      return 0;
    } else {
      std::cerr << "sgnn_lint: unknown argument '" << argv[i] << "'\n";
      return 2;
    }
  }

  const auto findings = sgnn::lint::lint_tree(root);
  for (const auto& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  if (findings.empty()) {
    std::cout << "sgnn_lint: clean\n";
    return 0;
  }
  std::cout << "sgnn_lint: " << findings.size() << " finding"
            << (findings.size() == 1 ? "" : "s") << "\n";
  return 1;
}
