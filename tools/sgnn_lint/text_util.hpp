#pragma once

// Token-level text helpers shared by the linter's per-file rules
// (lint.cpp), the project index (index.cpp), and the semantic rule
// families R7-R10 (semantic.cpp). Everything operates on the "code view"
// produced by parse_source — comments and literal contents blanked,
// structure and line numbers preserved — so callers never have to worry
// about matches inside strings or comments.

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <string>
#include <vector>

namespace sgnn::lint::text {

inline bool is_word(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

inline bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

inline bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

inline std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

inline std::vector<std::string> split_lines(const std::string& content) {
  std::vector<std::string> lines;
  std::string current;
  for (const char c : content) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  lines.push_back(current);
  return lines;
}

/// Matches `pattern` as a whole word at `pos` in `content`.
inline bool word_at(const std::string& content, std::size_t pos,
                    const std::string& pattern) {
  if (content.compare(pos, pattern.size(), pattern) != 0) return false;
  if (pos > 0 && is_word(content[pos - 1])) return false;
  const std::size_t end = pos + pattern.size();
  if (end < content.size() && is_word(content[end])) return false;
  return true;
}

/// All whole-word occurrences of `pattern` in `content` (offsets).
inline std::vector<std::size_t> find_words(const std::string& content,
                                           const std::string& pattern) {
  std::vector<std::size_t> hits;
  std::size_t pos = 0;
  while ((pos = content.find(pattern, pos)) != std::string::npos) {
    if (word_at(content, pos, pattern)) hits.push_back(pos);
    pos += 1;
  }
  return hits;
}

/// Index of the first non-space character before `pos`, or npos.
inline std::size_t prev_significant_index(const std::string& content,
                                          std::size_t pos) {
  while (pos > 0) {
    --pos;
    if (!std::isspace(static_cast<unsigned char>(content[pos]))) {
      return pos;
    }
  }
  return std::string::npos;
}

/// First non-space character before `pos`, or '\0'.
inline char prev_significant(const std::string& content, std::size_t pos) {
  const auto at = prev_significant_index(content, pos);
  return at == std::string::npos ? '\0' : content[at];
}

/// Skips whitespace forward from `pos`; returns content.size() at the end.
inline std::size_t skip_space(const std::string& content, std::size_t pos) {
  while (pos < content.size() &&
         std::isspace(static_cast<unsigned char>(content[pos]))) {
    ++pos;
  }
  return pos;
}

/// 1-based line number of offset `pos`.
inline int line_of(const std::string& content, std::size_t pos) {
  return 1 +
         static_cast<int>(std::count(
             content.begin(),
             content.begin() + static_cast<std::ptrdiff_t>(pos), '\n'));
}

/// The word ending just before `pos` (skipping trailing spaces), or "".
inline std::string word_before(const std::string& content, std::size_t pos) {
  const auto end_at = prev_significant_index(content, pos);
  if (end_at == std::string::npos || !is_word(content[end_at])) return "";
  std::size_t begin = end_at + 1;
  while (begin > 0 && is_word(content[begin - 1])) --begin;
  return content.substr(begin, end_at + 1 - begin);
}

/// Offset of the `)` matching the `(` at `open`, or npos when unbalanced.
inline std::size_t match_paren(const std::string& content, std::size_t open) {
  int depth = 0;
  for (std::size_t p = open; p < content.size(); ++p) {
    if (content[p] == '(') ++depth;
    if (content[p] == ')') {
      --depth;
      if (depth == 0) return p;
    }
  }
  return std::string::npos;
}

/// Offset of the `}` matching the `{` at `brace` (content.size() when the
/// block never closes).
inline std::size_t match_brace(const std::string& content,
                               std::size_t brace) {
  int depth = 0;
  for (std::size_t p = brace; p < content.size(); ++p) {
    if (content[p] == '{') ++depth;
    if (content[p] == '}') {
      --depth;
      if (depth == 0) return p;
    }
  }
  return content.size();
}

/// True when `name` is spelled in macro style (ALL_CAPS_WITH_DIGITS).
inline bool is_all_caps(const std::string& name) {
  return std::all_of(name.begin(), name.end(), [](char c) {
    return std::isupper(static_cast<unsigned char>(c)) != 0 ||
           std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '_';
  });
}

}  // namespace sgnn::lint::text
