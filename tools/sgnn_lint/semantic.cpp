#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "lint.hpp"
#include "text_util.hpp"

// The semantic rule families R7-R10. Everything here consumes the
// ProjectIndex — no rule touches the filesystem.

namespace sgnn::lint {

namespace {

using text::ends_with;
using text::find_words;
using text::is_all_caps;
using text::is_word;
using text::line_of;
using text::match_paren;
using text::skip_space;
using text::starts_with;
using text::word_at;
using text::word_before;

void report(std::vector<Finding>& findings, const SourceFile& file, int line,
            const std::string& rule, std::string message) {
  if (file.allows(line, rule)) return;
  findings.push_back({file.path, line, rule, std::move(message)});
}

void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
}

// -- R7: layering ------------------------------------------------------------

constexpr int kUmbrellaLevel = 1000;  // sgnn.hpp sits above every module

/// Module of a tree path, "" when the file is outside the DAG (tests/,
/// tools/), "sgnn" for the umbrella header.
std::string module_of_path(const std::string& path) {
  if (path == "include/sgnn/sgnn.hpp") return "sgnn";
  for (const auto* prefix : {"include/sgnn/", "src/"}) {
    if (!starts_with(path, prefix)) continue;
    const std::string rest = path.substr(std::string(prefix).size());
    const auto slash = rest.find('/');
    if (slash == std::string::npos) return "";
    return rest.substr(0, slash);
  }
  return "";
}

/// Module of an include target ("sgnn/nn/egnn.hpp" -> "nn"), "" for
/// non-project includes.
std::string module_of_target(const std::string& target) {
  if (target == "sgnn/sgnn.hpp") return "sgnn";
  const std::string prefix = "sgnn/";
  if (!starts_with(target, prefix)) return "";
  const std::string rest = target.substr(prefix.size());
  const auto slash = rest.find('/');
  if (slash == std::string::npos) return "";
  return rest.substr(0, slash);
}

int level_of(const std::string& module) {
  if (module == "sgnn") return kUmbrellaLevel;
  for (const auto& entry : layer_table()) {
    if (module == entry.module) return entry.level;
  }
  return -1;
}

bool is_hook_header(const std::string& target) {
  const auto& hooks = hook_headers();
  return std::find(hooks.begin(), hooks.end(), target) != hooks.end();
}

// -- R8: SPMD collective safety ----------------------------------------------

/// Blocking communicator entry points. `broadcast` collides with
/// `Shape::broadcast`; the scanner skips `::`-qualified spellings.
const char* kBlockingCalls[] = {"barrier", "all_reduce_sum", "broadcast",
                                "reduce_scatter_sum", "all_gather"};

/// Tokens that make an `if`/`while` condition rank-divergent. Deliberately
/// NOT `num_ranks`/`ranks`: those are uniform across ranks, and
/// `if (num_ranks > 1)` guards are the normal single-rank fast path.
const char* kRankTokens[] = {"rank", "my_rank", "world_rank", "world_size"};

bool rank_conditioned(const std::string& cond) {
  for (const auto* token : kRankTokens) {
    if (!find_words(cond, token).empty()) return true;
  }
  return false;
}

/// True when the word at [begin, begin+len) heads a blocking collective
/// call: followed by `(`, not `::`-qualified (static Shape::broadcast).
bool is_blocking_call(const std::string& code, std::size_t begin,
                      const std::string& word) {
  bool known = false;
  for (const auto* call : kBlockingCalls) {
    if (word == call) known = true;
  }
  if (!known) return false;
  const std::size_t after = skip_space(code, begin + word.size());
  if (after >= code.size() || code[after] != '(') return false;
  if (begin >= 2 && code[begin - 1] == ':' && code[begin - 2] == ':') {
    return false;
  }
  return true;
}

/// True for `.wait(` / `->wait(` with an EMPTY argument list. Condition
/// variable waits always pass the lock (`cv_.wait(lock, ...)`), so the
/// empty form is exactly CollectiveHandle::wait / future-style blocking.
bool is_blocking_wait(const std::string& code, std::size_t begin) {
  const char before = begin > 0 ? code[begin - 1] : '\0';
  const bool member =
      before == '.' ||
      (before == '>' && begin > 1 && code[begin - 2] == '-');
  if (!member) return false;
  const std::size_t open = skip_space(code, begin + 4);
  if (open >= code.size() || code[open] != '(') return false;
  const std::size_t arg = skip_space(code, open + 1);
  return arg < code.size() && code[arg] == ')';
}

/// True when the brace at `pos` opens a lambda body: preceded by `]`, or
/// by `](params)` optionally followed by `mutable` / `noexcept` / a
/// `-> Type` trailing return. Shared by the R8 scanner (scope boundaries)
/// and the blocking-reachability analysis — a lambda body is DEFERRED work
/// (an autograd backward, a thread entry point), so registering it is not
/// executing it.
bool lambda_brace(const std::string& code, std::size_t pos) {
  std::size_t at = text::prev_significant_index(code, pos);
  if (at == std::string::npos) return false;
  if (code[at] == ']') return true;
  // Trailing return type: `](params) -> Type {`. Walk back over the type
  // spelling (identifiers, ::, <...>, commas, &, *) to the arrow, then
  // resume on the token before it. A non-type character before any arrow
  // means there is no trailing return; fall through with `at` unchanged.
  for (std::size_t q = at; q != std::string::npos; --q) {
    const char c = code[q];
    if (c == '>' && q >= 1 && code[q - 1] == '-') {
      at = q >= 2 ? text::prev_significant_index(code, q - 1)
                  : std::string::npos;
      if (at == std::string::npos) return false;
      break;
    }
    if (!(is_word(c) || c == ':' || c == '<' || c == '>' || c == ',' ||
          c == '&' || c == '*' ||
          std::isspace(static_cast<unsigned char>(c)))) {
      break;
    }
  }
  if (is_word(code[at])) {
    const std::string w = word_before(code, at + 1);
    if (w != "mutable" && w != "noexcept") return false;
    if (at + 1 < w.size()) return false;
    at = text::prev_significant_index(code, at + 1 - w.size());
    if (at == std::string::npos) return false;
  }
  if (code[at] != ')') return false;
  int depth = 0;
  std::size_t p = at + 1;
  while (p > 0) {
    --p;
    if (code[p] == ')') ++depth;
    if (code[p] == '(') {
      --depth;
      if (depth == 0) break;
    }
  }
  if (depth != 0 || code[p] != '(') return false;
  const std::size_t before_open = text::prev_significant_index(code, p);
  return before_open != std::string::npos && code[before_open] == ']';
}

/// Whether each function's body contains a blocking call it runs
/// SYNCHRONOUSLY — lambda bodies are skipped: a `.wait()` inside a stored
/// closure blocks whoever later invokes the closure, not the function that
/// built it.
std::vector<bool> direct_blocking(const ProjectIndex& index) {
  std::vector<bool> blocking(index.functions.size(), false);
  for (std::size_t f = 0; f < index.functions.size(); ++f) {
    const FunctionDef& def = index.functions[f];
    const std::string& code = index.file_of(def).code;
    for (std::size_t pos = def.body_begin + 1;
         pos < def.body_end && pos < code.size(); ++pos) {
      if (code[pos] == '{' && lambda_brace(code, pos)) {
        const std::size_t close = text::match_brace(code, pos);
        if (close == std::string::npos || close >= def.body_end) break;
        pos = close;
        continue;
      }
      if (!is_word(code[pos]) || (pos > 0 && is_word(code[pos - 1]))) {
        continue;
      }
      std::size_t end = pos;
      while (end < code.size() && is_word(code[end])) ++end;
      const std::string word = code.substr(pos, end - pos);
      if (is_blocking_call(code, pos, word) ||
          (word == "wait" && is_blocking_wait(code, pos))) {
        blocking[f] = true;
        break;
      }
      pos = end - 1;
    }
  }
  return blocking;
}

/// Call spellings inside [begin, end) EXCLUDING lambda bodies: the calls a
/// function makes on its own synchronous path. Keyword/macro "calls" are
/// kept — they resolve to no definition, so they cannot add edges.
std::vector<std::string> synchronous_callees(const std::string& code,
                                             std::size_t begin,
                                             std::size_t end) {
  std::vector<std::string> callees;
  for (std::size_t pos = begin; pos < end && pos < code.size(); ++pos) {
    if (code[pos] == '{' && lambda_brace(code, pos)) {
      const std::size_t close = text::match_brace(code, pos);
      if (close == std::string::npos || close >= end) break;
      pos = close;
      continue;
    }
    if (code[pos] != '(') continue;
    const std::string name = word_before(code, pos);
    if (name.empty()) continue;
    const std::size_t name_end = text::prev_significant_index(code, pos);
    if (name_end == std::string::npos || name_end + 1 < name.size()) continue;
    const std::size_t name_begin = name_end + 1 - name.size();
    std::string spelled = name;
    if (name_begin >= 2 && code[name_begin - 1] == ':' &&
        code[name_begin - 2] == ':') {
      const std::string qual = word_before(code, name_begin - 2);
      if (!qual.empty()) spelled = qual + "::" + name;
    }
    if (std::find(callees.begin(), callees.end(), spelled) ==
        callees.end()) {
      callees.push_back(spelled);
    }
  }
  return callees;
}

/// Per-definition: reaches a blocking call (fixed point over the call
/// graph; resolution is qualifier-aware but still an over-approximation).
/// Only SYNCHRONOUS call edges propagate: a function that merely registers
/// a closure whose body blocks (an autograd backward hook posting a
/// collective) does not itself stall a rank — whoever later runs the
/// closure does, and that run site is scanned on its own.
std::vector<bool> defs_reaching_blocking(const ProjectIndex& index) {
  std::vector<bool> reaches = direct_blocking(index);
  std::vector<std::vector<std::string>> callees(index.functions.size());
  for (std::size_t f = 0; f < index.functions.size(); ++f) {
    const FunctionDef& def = index.functions[f];
    callees[f] = synchronous_callees(index.file_of(def).code,
                                     def.body_begin + 1, def.body_end);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t f = 0; f < index.functions.size(); ++f) {
      if (reaches[f]) continue;
      for (const auto& callee : callees[f]) {
        for (const int target : index.resolve(callee)) {
          if (reaches[static_cast<std::size_t>(target)]) {
            reaches[f] = true;
            changed = true;
            break;
          }
        }
        if (reaches[f]) break;
      }
    }
  }
  return reaches;
}

struct SpmdScope {
  bool rank_cond = false;  ///< this or an enclosing branch is rank-divergent
  int cond_line = 0;       ///< where the divergent condition was written
  bool boundary = false;   ///< lambda body: runs later, inherits nothing
  std::vector<std::pair<std::string, int>> locks;  ///< (name, decl line)
};

/// The R8 scanner: one pass over a file's code view with a scope stack
/// tracking rank-conditioned branches and live lock guards. Lambda bodies
/// are boundaries: `std::thread([this] { progress_loop(); })` under a lock
/// runs the body on another thread AFTER the guard dies, so neither locks
/// nor rank conditions propagate into them.
class SpmdScanner {
 public:
  SpmdScanner(const ProjectIndex& index, const SourceFile& file,
              const std::vector<bool>& reaches,
              std::vector<Finding>& findings)
      : index_(index), file_(file), code_(file.code), reaches_(reaches),
        findings_(findings) {
    scopes_.push_back({});
  }

  void run() {
    for (std::size_t pos = 0; pos < code_.size(); ++pos) {
      const char c = code_[pos];
      if (c == '{') {
        SpmdScope scope;
        scope.boundary = is_lambda_brace(pos);
        if (!scope.boundary) {
          scope.rank_cond = scopes_.back().rank_cond;
          scope.cond_line = scopes_.back().cond_line;
          if (pending_brace_ == pos) {
            if (pending_rank_ && !scope.rank_cond) {
              scope.rank_cond = true;
              scope.cond_line = pending_line_;
            }
            pending_brace_ = std::string::npos;
          }
        }
        scopes_.push_back(std::move(scope));
        continue;
      }
      if (c == '}') {
        if (scopes_.size() > 1) scopes_.pop_back();
        continue;
      }
      if (!is_word(c) || (pos > 0 && is_word(code_[pos - 1]))) continue;
      std::size_t end = pos;
      while (end < code_.size() && is_word(code_[end])) ++end;
      const std::string word = code_.substr(pos, end - pos);
      handle_word(word, pos, end);
      pos = end - 1;
    }
  }

 private:
  void handle_word(const std::string& word, std::size_t begin,
                   std::size_t end) {
    if (word == "if" || word == "while") {
      handle_condition(begin, end, /*else_carry=*/consume_else_carry());
      return;
    }
    if (word == "else") {
      handle_else(end);
      return;
    }
    if (word == "lock_guard" || word == "unique_lock" ||
        word == "scoped_lock") {
      handle_lock(end);
      return;
    }
    if (is_blocking_call(code_, begin, word)) {
      hit(begin, "blocking collective `" + word + "`");
      return;
    }
    if (word == "wait" && is_blocking_wait(code_, begin)) {
      hit(begin, "blocking `wait()` on a collective handle");
      return;
    }
    // Any other call: follow the call graph when we are inside a
    // rank-conditioned branch or a locked scope (cross-file half of R8).
    if ((effective_rank() || live_lock() != nullptr) &&
        !is_all_caps(word) && call_reaches_blocking(begin, end, word)) {
      hit(begin,
          "call to `" + word + "`, which reaches a blocking collective");
    }
  }

  /// Whether the call site at [begin, end) can bind to a definition that
  /// reaches a blocking collective (qualifier-aware, via the index).
  bool call_reaches_blocking(std::size_t begin, std::size_t end,
                             const std::string& word) const {
    const std::size_t after = skip_space(code_, end);
    if (after >= code_.size() || code_[after] != '(') return false;
    std::string spelled = word;
    if (begin >= 2 && code_[begin - 1] == ':' && code_[begin - 2] == ':') {
      const std::string qual = word_before(code_, begin - 2);
      if (!qual.empty()) spelled = qual + "::" + word;
    }
    for (const int id : index_.resolve(spelled)) {
      if (reaches_[static_cast<std::size_t>(id)]) return true;
    }
    return false;
  }

  /// True when the brace at `pos` opens a lambda body (shared helper).
  bool is_lambda_brace(std::size_t pos) const {
    return lambda_brace(code_, pos);
  }

  void handle_condition(std::size_t begin, std::size_t end, bool else_carry) {
    const std::size_t open = skip_space(code_, end);
    if (open >= code_.size() || code_[open] != '(') return;
    const std::size_t close = match_paren(code_, open);
    if (close == std::string::npos) return;
    const bool ranked =
        rank_conditioned(code_.substr(open + 1, close - open - 1)) ||
        else_carry;
    last_cond_rank_ = ranked;
    last_cond_line_ = line_of(code_, begin);
    const std::size_t body = skip_space(code_, close + 1);
    if (body < code_.size() && code_[body] == '{') {
      // Only THIS brace consumes the condition — a lambda inside the
      // condition opens ordinary scopes.
      pending_brace_ = body;
      pending_rank_ = ranked;
      pending_line_ = last_cond_line_;
    } else if (ranked && !effective_rank()) {
      // Braceless body: treat the single statement as a virtual scope.
      scan_statement(body, last_cond_line_);
    }
  }

  void handle_else(std::size_t end) {
    // The else branch of a rank-conditioned if diverges exactly like the
    // then branch.
    const std::size_t next = skip_space(code_, end);
    if (next < code_.size() && word_at(code_, next, "if")) {
      else_carry_ = last_cond_rank_;
      return;
    }
    if (next < code_.size() && code_[next] == '{') {
      pending_brace_ = next;
      pending_rank_ = last_cond_rank_;
      pending_line_ = last_cond_line_;
    } else if (last_cond_rank_ && !effective_rank()) {
      scan_statement(next, last_cond_line_);
    }
  }

  bool consume_else_carry() {
    const bool carry = else_carry_;
    else_carry_ = false;
    return carry;
  }

  void handle_lock(std::size_t end) {
    std::size_t p = end;
    if (p < code_.size() && code_[p] == '<') {
      int depth = 0;
      for (; p < code_.size(); ++p) {
        if (code_[p] == '<') ++depth;
        if (code_[p] == '>') {
          --depth;
          if (depth == 0) {
            ++p;
            break;
          }
        }
      }
    }
    p = skip_space(code_, p);
    std::size_t name_end = p;
    while (name_end < code_.size() && is_word(code_[name_end])) ++name_end;
    if (name_end == p) return;  // a type mention, not a declaration
    const std::size_t init = skip_space(code_, name_end);
    if (init >= code_.size() ||
        (code_[init] != '(' && code_[init] != '{')) {
      return;  // parameter / member type, no guard constructed here
    }
    scopes_.back().locks.emplace_back(code_.substr(p, name_end - p),
                                      line_of(code_, p));
  }

  /// Scans a braceless `if (rank...)` body — up to the statement's `;` —
  /// for blocking calls.
  void scan_statement(std::size_t begin, int cond_line) {
    int depth = 0;
    std::size_t stop = begin;
    for (; stop < code_.size(); ++stop) {
      if (code_[stop] == '(') ++depth;
      if (code_[stop] == ')') --depth;
      if (code_[stop] == ';' && depth == 0) break;
    }
    for (std::size_t pos = begin; pos < stop; ++pos) {
      if (!is_word(code_[pos]) || (pos > 0 && is_word(code_[pos - 1]))) {
        continue;
      }
      std::size_t end = pos;
      while (end < code_.size() && is_word(code_[end])) ++end;
      const std::string word = code_.substr(pos, end - pos);
      if (is_blocking_call(code_, pos, word) ||
          (word == "wait" && is_blocking_wait(code_, pos))) {
        divergence(pos, "blocking collective `" + word + "`", cond_line);
      } else if (!is_all_caps(word) &&
                 call_reaches_blocking(pos, end, word)) {
        divergence(pos,
                   "call to `" + word +
                       "`, which reaches a blocking collective",
                   cond_line);
      }
      pos = end - 1;
    }
  }

  bool effective_rank() const { return scopes_.back().rank_cond; }

  const std::pair<std::string, int>* live_lock() const {
    // Innermost outward, stopping at a lambda boundary: a guard in an
    // enclosing scope is not held when the lambda body actually runs.
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (!it->locks.empty()) return &it->locks.front();
      if (it->boundary) break;
    }
    return nullptr;
  }

  void divergence(std::size_t pos, const std::string& what, int cond_line) {
    std::ostringstream os;
    os << what << " under rank-conditioned control flow (condition at line "
       << cond_line << "); divergent collectives deadlock multi-rank runs — "
       << "hoist the collective out of the branch";
    report(findings_, file_, line_of(code_, pos), "spmd-divergence",
           os.str());
  }

  void hit(std::size_t pos, const std::string& what) {
    const int line = line_of(code_, pos);
    if (effective_rank()) {
      divergence(pos, what, scopes_.back().cond_line);
    }
    if (const auto* lock = live_lock()) {
      std::ostringstream os;
      os << what << " while lock guard `" << lock->first << "` (line "
         << lock->second << ") is live; a blocked rank holding a lock "
         << "deadlocks every peer that needs it — release the guard before "
         << "the collective";
      report(findings_, file_, line, "lock-across-wait", os.str());
    }
  }

  const ProjectIndex& index_;
  const SourceFile& file_;
  const std::string& code_;
  const std::vector<bool>& reaches_;
  std::vector<Finding>& findings_;
  std::vector<SpmdScope> scopes_;
  std::size_t pending_brace_ = std::string::npos;
  bool pending_rank_ = false;
  int pending_line_ = 0;
  bool last_cond_rank_ = false;
  int last_cond_line_ = 0;
  bool else_carry_ = false;
};

// -- R9: profiler coverage ---------------------------------------------------

struct KernelSurface {
  const char* header;  ///< declarations that form the kernel API
  std::vector<std::string> sources;  ///< where definitions must live
};

const std::vector<KernelSurface>& kernel_surfaces() {
  static const std::vector<KernelSurface> surfaces = {
      {"include/sgnn/tensor/ops.hpp", {"src/tensor/"}},
      {"include/sgnn/graph/neighbor.hpp", {"src/graph/neighbor.cpp"}},
      // The partitioner runs once per graph-parallel step on every rank;
      // its O(N + E) build must show up in the roofline next to the
      // neighbor search it mirrors.
      {"include/sgnn/graph/partition.hpp", {"src/graph/partition.cpp"}},
      // Serving hot paths must stay visible to the profiler: every request
      // crosses submit/process_batch/run_group, so a regression there
      // escaping the roofline and bench accounting would blind the latency
      // work the ROADMAP's serving target depends on.
      {"include/sgnn/serve/server.hpp", {"src/serve/"}},
  };
  return surfaces;
}

bool in_kernel_sources(const std::string& path) {
  for (const auto& surface : kernel_surfaces()) {
    for (const auto& dir : surface.sources) {
      if (starts_with(path, dir)) return true;
    }
  }
  return false;
}

bool body_has_scope(const std::string& code, const FunctionDef& def) {
  for (const auto* token : {"KernelScope", "ProfRegion"}) {
    for (const auto pos : find_words(code, token)) {
      if (pos > def.body_begin && pos < def.body_end) return true;
    }
  }
  return false;
}

// -- R10: check-throw discipline ---------------------------------------------

bool is_bare_runtime_error(const std::string& code, std::size_t after_throw) {
  std::size_t p = skip_space(code, after_throw);
  if (word_at(code, p, "std")) {
    p += 3;
    if (p + 1 >= code.size() || code[p] != ':' || code[p + 1] != ':') {
      return false;
    }
    p = skip_space(code, p + 2);
  }
  return word_at(code, p, "runtime_error");
}

// -- output helpers ----------------------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// GitHub annotation values: data portion escapes % \r \n; property
/// portion additionally : and ,.
std::string gh_escape(const std::string& s, bool property) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '%': out += "%25"; break;
      case '\r': out += "%0D"; break;
      case '\n': out += "%0A"; break;
      case ':': out += property ? "%3A" : ":"; break;
      case ',': out += property ? "%2C" : ","; break;
      default: out += c;
    }
  }
  return out;
}

/// Milliseconds as an integer — locale-proof (no decimal separator).
long long to_ms(double seconds) {
  return static_cast<long long>(seconds * 1000.0 + 0.5);
}

}  // namespace

// -- the DAG, declared exactly once ------------------------------------------

const std::vector<LayerEntry>& layer_table() {
  // THE architecture DAG. docs/architecture.md and docs/static-analysis.md
  // embed the `--print-dag` rendering of this table; change it here and
  // regenerate the docs — they cannot drift from enforcement.
  static const std::vector<LayerEntry> table = {
      {"util", 0},
      {"tensor", 1},
      {"graph", 2},
      {"obs", 2},
      {"nn", 3},
      {"comm", 3},
      {"store", 3},
      {"data", 4},
      {"train", 4},
      {"ckpt", 4},
      {"scaling", 4},
      {"potential", 4},
      {"serve", 5},
  };
  return table;
}

const std::vector<std::string>& hook_headers() {
  // R9 requires kernels in tensor/ and graph/ to open KernelScope, so the
  // profiler hook header must be includable from below obs. In exchange
  // lint_layering enforces that hook headers include nothing above util,
  // so the exemption cannot smuggle obs internals down the stack.
  static const std::vector<std::string> headers = {"sgnn/obs/prof.hpp"};
  return headers;
}

std::string print_dag() {
  std::ostringstream os;
  os << "architecture DAG (include layering, bottom to top):\n";
  int max_level = 0;
  for (const auto& entry : layer_table()) {
    max_level = std::max(max_level, entry.level);
  }
  for (int level = 0; level <= max_level; ++level) {
    os << "  L" << level << "  ";
    bool first = true;
    for (const auto& entry : layer_table()) {
      if (entry.level != level) continue;
      if (!first) os << ", ";
      os << entry.module;
      first = false;
    }
    os << "\n";
  }
  os << "an #include may only point at the same or a lower level; "
        "same-level\nincludes must stay acyclic. hook headers exempt from "
        "the DAG:";
  for (const auto& hook : hook_headers()) os << " " << hook;
  os << "\n";
  return os.str();
}

// -- R7 ----------------------------------------------------------------------

std::vector<Finding> lint_layering(const ProjectIndex& index) {
  std::vector<Finding> findings;
  // Same-level edges, keyed (from-module, to-module), for cycle detection.
  std::map<std::pair<std::string, std::string>,
           std::vector<std::pair<int, int>>>
      lateral;  // -> (file id, line)
  for (std::size_t i = 0; i < index.files.size(); ++i) {
    const SourceFile& file = index.files[i];
    const std::string mod = module_of_path(file.path);
    if (mod.empty() || mod == "sgnn") continue;  // tests/umbrella exempt
    const int from_level = level_of(mod);
    if (from_level < 0) {
      report(findings, file, 1, "layering",
             "module `" + mod +
                 "` is not declared in the layering table; add it to "
                 "layer_table() in tools/sgnn_lint/semantic.cpp (and "
                 "docs/architecture.md picks it up from --print-dag)");
      continue;
    }
    for (const auto& edge : index.includes[i]) {
      if (is_hook_header(edge.target)) continue;
      const std::string target_mod = module_of_target(edge.target);
      if (target_mod.empty() || target_mod == mod) continue;
      if (target_mod == "sgnn") {
        report(findings, file, edge.line, "layering",
               "module `" + mod +
                   "` includes the umbrella header sgnn/sgnn.hpp; include "
                   "the specific module headers instead");
        continue;
      }
      const int to_level = level_of(target_mod);
      if (to_level < 0) {
        report(findings, file, edge.line, "layering",
               "include of \"" + edge.target + "\" targets module `" +
                   target_mod +
                   "`, which is not declared in the layering table");
        continue;
      }
      if (to_level > from_level) {
        std::ostringstream os;
        os << "upward include: `" << mod << "` (L" << from_level
           << ") must not depend on `" << target_mod << "` (L" << to_level
           << ") — the DAG is util -> tensor -> {graph, obs} -> "
              "{nn, comm, store} -> {data, train, ckpt, scaling, potential}";
        report(findings, file, edge.line, "layering", os.str());
      } else if (to_level == from_level) {
        lateral[{mod, target_mod}].emplace_back(static_cast<int>(i),
                                                edge.line);
      }
    }
  }
  // Same-level includes are fine until they close a cycle.
  for (const auto& [key, edges] : lateral) {
    const auto reverse = lateral.find({key.second, key.first});
    if (reverse == lateral.end()) continue;
    if (key.first > key.second) continue;  // report each pair once
    const auto& reverse_edges = reverse->second;
    for (const auto* side : {&edges, &reverse_edges}) {
      for (const auto& [file_id, line] : *side) {
        report(findings, index.files[static_cast<std::size_t>(file_id)],
               line, "layering",
               "same-level include cycle between `" + key.first +
                   "` and `" + key.second +
                   "`; break the cycle or split the shared piece into a "
                   "lower layer");
      }
    }
  }
  // Hook headers earn their exemption by staying dependency-free.
  for (const auto& hook : hook_headers()) {
    const SourceFile* file = index.find_file("include/" + hook);
    if (file == nullptr) continue;
    const int id = index.file_id("include/" + hook);
    for (const auto& edge : index.includes[static_cast<std::size_t>(id)]) {
      const std::string target_mod = module_of_target(edge.target);
      if (target_mod.empty() || target_mod == "util") continue;
      if (is_hook_header(edge.target)) continue;
      report(findings, *file, edge.line, "layering",
             "hook header " + hook +
                 " is exempt from the DAG only while it includes nothing "
                 "above util; \"" + edge.target + "\" breaks that contract");
    }
  }
  sort_findings(findings);
  return findings;
}

// -- R8 ----------------------------------------------------------------------

std::vector<Finding> lint_spmd(const ProjectIndex& index) {
  std::vector<Finding> findings;
  const std::vector<bool> reaches = defs_reaching_blocking(index);
  for (const auto& file : index.files) {
    // Tests exercise divergence deliberately (error-path coverage).
    if (!starts_with(file.path, "src/") &&
        !starts_with(file.path, "include/")) {
      continue;
    }
    SpmdScanner(index, file, reaches, findings).run();
  }
  sort_findings(findings);
  return findings;
}

// -- R9 ----------------------------------------------------------------------

std::vector<Finding> lint_kernel_prof(const ProjectIndex& index) {
  std::vector<Finding> findings;
  // Which kernel-source definitions hold a scope, directly or by
  // delegating (transitively) to one that does — public ops like `add`
  // are one-line wrappers over template drivers that own the KernelScope.
  std::vector<int> kernel_defs;
  for (std::size_t f = 0; f < index.functions.size(); ++f) {
    if (in_kernel_sources(index.file_of(index.functions[f]).path)) {
      kernel_defs.push_back(static_cast<int>(f));
    }
  }
  std::map<int, bool> covered;
  for (const int f : kernel_defs) {
    covered[f] = body_has_scope(
        index.file_of(index.functions[static_cast<std::size_t>(f)]).code,
        index.functions[static_cast<std::size_t>(f)]);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const int f : kernel_defs) {
      if (covered[f]) continue;
      for (const auto& callee :
           index.functions[static_cast<std::size_t>(f)].callees) {
        for (const int target : index.resolve(callee)) {
          const auto cov = covered.find(target);
          if (cov != covered.end() && cov->second) {
            covered[f] = true;
            changed = true;
            break;
          }
        }
        if (covered[f]) break;
      }
    }
  }

  for (const auto& surface : kernel_surfaces()) {
    const SourceFile* header = index.find_file(surface.header);
    if (header == nullptr) continue;
    std::set<std::string> seen;
    for (const auto& [name, decl_line] : declared_functions(header->code)) {
      if (!seen.insert(name).second) continue;
      const auto it = index.functions_by_name.find(name);
      if (it == index.functions_by_name.end()) continue;  // R2 reports this
      for (const int f : it->second) {
        const FunctionDef& def =
            index.functions[static_cast<std::size_t>(f)];
        const SourceFile& source = index.file_of(def);
        bool in_surface = false;
        for (const auto& dir : surface.sources) {
          if (starts_with(source.path, dir)) in_surface = true;
        }
        if (!in_surface) continue;
        if (!covered[f]) {
          report(findings, source, def.line, "kernel-prof",
                 "kernel entry point `" + name + "` (declared in " +
                     surface.header +
                     ") opens no KernelScope/ProfRegion on any path; it "
                     "escapes the roofline and bench accounting");
          continue;
        }
        // Directly-scoped entries must not return before the scope opens
        // (top-level returns only; nested lambdas/branches are deeper).
        if (!body_has_scope(source.code, def)) continue;
        std::size_t first_scope = std::string::npos;
        for (const auto* token : {"KernelScope", "ProfRegion"}) {
          for (const auto pos : find_words(source.code, token)) {
            if (pos > def.body_begin && pos < def.body_end) {
              first_scope = std::min(first_scope, pos);
            }
          }
        }
        int depth = 0;
        for (std::size_t pos = def.body_begin;
             pos < first_scope && pos < source.code.size(); ++pos) {
          if (source.code[pos] == '{') ++depth;
          if (source.code[pos] == '}') --depth;
          if (depth == 1 && word_at(source.code, pos, "return")) {
            report(findings, source, line_of(source.code, pos),
                   "kernel-prof",
                   "early return in `" + name +
                       "` before its KernelScope opens; this path escapes "
                       "profiling — open the scope first");
          }
        }
      }
    }
  }
  sort_findings(findings);
  return findings;
}

// -- R10 ---------------------------------------------------------------------

std::vector<Finding> lint_check_throw(const ProjectIndex& index) {
  std::vector<Finding> findings;
  std::vector<int> roots;
  for (std::size_t f = 0; f < index.functions.size(); ++f) {
    if (starts_with(index.file_of(index.functions[f]).path,
                    "src/comm/")) {
      roots.push_back(static_cast<int>(f));
    }
  }
  const std::vector<bool> reached = reachable_functions(index, roots);
  for (std::size_t f = 0; f < index.functions.size(); ++f) {
    if (!reached[f]) continue;
    const FunctionDef& def = index.functions[f];
    const SourceFile& file = index.file_of(def);
    for (const auto pos : find_words(file.code, "throw")) {
      if (pos <= def.body_begin || pos >= def.body_end) continue;
      if (!is_bare_runtime_error(file.code, pos + 5)) continue;
      report(findings, file, line_of(file.code, pos), "check-throw",
             "`" + def.name +
                 "` is reachable from the comm progress engine but throws "
                 "bare std::runtime_error; worker threads terminate instead "
                 "of surfacing a deferred handle error — use SGNN_CHECK or "
                 "sgnn::Error");
    }
  }
  sort_findings(findings);
  return findings;
}

// -- whole-tree runs ----------------------------------------------------------

LintResult lint_tree_stats(const std::filesystem::path& root) {
  using clock = std::chrono::steady_clock;
  LintResult result;
  const auto t0 = clock::now();
  const ProjectIndex index = build_index(root);
  const auto t1 = clock::now();

  auto& findings = result.findings;
  for (const auto& file : index.files) {
    auto file_findings = lint_file(file);
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }
  for (const auto& header : precondition_headers()) {
    auto header_findings = check_preconditions(index, header);
    findings.insert(findings.end(), header_findings.begin(),
                    header_findings.end());
  }
  for (auto* family : {&lint_layering, &lint_spmd, &lint_kernel_prof,
                       &lint_check_throw}) {
    auto family_findings = (*family)(index);
    findings.insert(findings.end(), family_findings.begin(),
                    family_findings.end());
  }
  sort_findings(findings);
  const auto t2 = clock::now();

  const auto seconds = [](clock::time_point a, clock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
  };
  result.stats.files = static_cast<int>(index.files.size());
  result.stats.bytes = index.bytes;
  result.stats.functions = static_cast<int>(index.functions.size());
  for (const auto& edges : index.includes) {
    result.stats.include_edges += static_cast<int>(edges.size());
  }
  result.stats.index_seconds = seconds(t0, t1);
  result.stats.rule_seconds = seconds(t1, t2);
  result.stats.total_seconds = seconds(t0, t2);
  return result;
}

std::vector<Finding> lint_tree(const std::filesystem::path& root) {
  return lint_tree_stats(root).findings;
}

// -- emitters ----------------------------------------------------------------

std::string format_text(const std::vector<Finding>& findings) {
  std::ostringstream os;
  for (const auto& f : findings) {
    os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
       << "\n";
  }
  return os.str();
}

std::string format_json(const LintResult& result, const std::string& root) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"sgnn.lint_report.v1\",\n";
  os << "  \"root\": \"" << json_escape(root) << "\",\n";
  os << "  \"finding_count\": " << result.findings.size() << ",\n";
  os << "  \"findings\": [";
  for (std::size_t i = 0; i < result.findings.size(); ++i) {
    const Finding& f = result.findings[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"file\": \"" << json_escape(f.file)
       << "\", \"line\": " << f.line << ", \"rule\": \""
       << json_escape(f.rule) << "\", \"message\": \""
       << json_escape(f.message) << "\"}";
  }
  os << (result.findings.empty() ? "],\n" : "\n  ],\n");
  const LintStats& s = result.stats;
  os << "  \"stats\": {\"files\": " << s.files << ", \"bytes\": " << s.bytes
     << ", \"functions\": " << s.functions
     << ", \"include_edges\": " << s.include_edges
     << ", \"index_ms\": " << to_ms(s.index_seconds)
     << ", \"rule_ms\": " << to_ms(s.rule_seconds)
     << ", \"total_ms\": " << to_ms(s.total_seconds) << "}\n";
  os << "}\n";
  return os.str();
}

std::string format_github(const std::vector<Finding>& findings) {
  std::ostringstream os;
  for (const auto& f : findings) {
    os << "::error file=" << gh_escape(f.file, /*property=*/true)
       << ",line=" << f.line << ",title=" << gh_escape("sgnn-lint " + f.rule,
                                                       /*property=*/true)
       << "::" << gh_escape(f.message, /*property=*/false) << "\n";
  }
  return os.str();
}

}  // namespace sgnn::lint
