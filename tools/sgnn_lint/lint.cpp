#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "text_util.hpp"

namespace sgnn::lint {

namespace {

using text::ends_with;
using text::find_words;
using text::is_word;
using text::line_of;
using text::prev_significant;
using text::prev_significant_index;
using text::skip_space;
using text::split_lines;
using text::starts_with;
using text::trim;
using text::word_at;

/// Parses an `sgnn-lint: allow(<rule>)[: reason]` tag out of a comment.
/// Returns true when a tag was found.
bool parse_tag(const std::string& comment, Suppression& out) {
  const std::string key = "sgnn-lint:";
  const auto at = comment.find(key);
  if (at == std::string::npos) return false;
  std::size_t p = at + key.size();
  while (p < comment.size() &&
         std::isspace(static_cast<unsigned char>(comment[p]))) {
    ++p;
  }
  const std::string allow = "allow(";
  if (comment.compare(p, allow.size(), allow) != 0) return false;
  p += allow.size();
  const auto close = comment.find(')', p);
  if (close == std::string::npos) return false;
  out.rule = trim(comment.substr(p, close - p));
  // Anything after "): " counts as the explanation.
  std::size_t r = close + 1;
  while (r < comment.size() &&
         (std::isspace(static_cast<unsigned char>(comment[r])) ||
          comment[r] == ':')) {
    ++r;
  }
  out.has_reason = !trim(comment.substr(r)).empty();
  return !out.rule.empty();
}

struct PathInfo {
  bool in_src = false;
  bool in_include = false;
  bool in_tests = false;
  bool header = false;
};

PathInfo classify(const std::string& path) {
  PathInfo info;
  info.in_src = starts_with(path, "src/");
  info.in_include = starts_with(path, "include/");
  info.in_tests = starts_with(path, "tests/");
  info.header = ends_with(path, ".hpp") || ends_with(path, ".h");
  return info;
}

bool in_kernel_dir(const std::string& path) {
  return starts_with(path, "src/tensor/") || starts_with(path, "src/graph/") ||
         starts_with(path, "src/nn/") || starts_with(path, "src/potential/");
}

bool thread_allowed(const std::string& path) {
  // comm (simulated ranks) and serve (long-lived worker replicas) are the
  // two subsystems whose concurrency parallel_for's fork-join lanes cannot
  // express; everything else routes through the pool.
  return starts_with(path, "src/comm/") ||
         starts_with(path, "include/sgnn/comm/") ||
         starts_with(path, "src/serve/") ||
         starts_with(path, "include/sgnn/serve/") ||
         path == "src/util/thread_pool.cpp" ||
         path == "include/sgnn/util/thread_pool.hpp";
}

void report(std::vector<Finding>& findings, const SourceFile& file, int line,
            const std::string& rule, std::string message) {
  if (file.allows(line, rule)) return;
  findings.push_back({file.path, line, rule, std::move(message)});
}

// -- R1: banned constructs --------------------------------------------------

void rule_new_delete(const SourceFile& file, std::vector<Finding>& findings) {
  for (const auto pos : find_words(file.code, "new")) {
    report(findings, file, line_of(file.code, pos), "new-delete",
           "naked `new`; use std::make_unique / a container");
  }
  for (const auto pos : find_words(file.code, "delete")) {
    // `= delete;` (deleted special member) is not a deallocation.
    if (prev_significant(file.code, pos) == '=') continue;
    report(findings, file, line_of(file.code, pos), "new-delete",
           "naked `delete`; owning raw pointers are banned — use RAII");
  }
}

void rule_thread(const SourceFile& file, std::vector<Finding>& findings) {
  const PathInfo info = classify(file.path);
  // Tests may spawn threads to exercise concurrency; the ban covers
  // library code only.
  if (!info.in_src && !info.in_include) return;
  if (thread_allowed(file.path)) return;
  for (const auto* token : {"std::thread", "std::jthread"}) {
    std::size_t pos = 0;
    while ((pos = file.code.find(token, pos)) != std::string::npos) {
      const std::size_t end = pos + std::string(token).size();
      if (end >= file.code.size() || !is_word(file.code[end])) {
        report(findings, file, line_of(file.code, pos), "thread",
               std::string(token) +
                   " outside src/comm/ and the thread pool; route work "
                   "through sgnn::parallel_for or sgnn::comm");
      }
      pos = end;
    }
  }
}

void rule_rand(const SourceFile& file, std::vector<Finding>& findings) {
  for (const auto* token : {"rand", "srand", "random_shuffle"}) {
    for (const auto pos : find_words(file.code, token)) {
      // Only calls: `rand()` / `std::rand()`, not identifiers like `rando`.
      const std::size_t after = skip_space(file.code, pos +
                                           std::string(token).size());
      if (after >= file.code.size() || file.code[after] != '(') continue;
      const char before = prev_significant(file.code, pos);
      if (before == '.' || before == '>') continue;  // member call
      // A preceding identifier is a return type — `int rand() const` declares
      // a member named rand — unless it is a statement keyword like `return`.
      if (is_word(before)) {
        const auto word_end = prev_significant_index(file.code, pos) + 1;
        std::size_t word_begin = word_end;
        while (word_begin > 0 && is_word(file.code[word_begin - 1])) {
          --word_begin;
        }
        const std::string prev_word =
            file.code.substr(word_begin, word_end - word_begin);
        if (prev_word != "return" && prev_word != "case" &&
            prev_word != "else" && prev_word != "do") {
          continue;
        }
      }
      report(findings, file, line_of(file.code, pos), "rand",
             std::string("`") + token +
                 "` is seed-less and non-reproducible; use sgnn::Rng");
    }
  }
}

/// Names of variables/members declared with a std::unordered_* type.
std::vector<std::string> unordered_names(const std::string& code) {
  std::vector<std::string> names;
  const std::string marker = "std::unordered_";
  std::size_t pos = 0;
  while ((pos = code.find(marker, pos)) != std::string::npos) {
    std::size_t p = pos + marker.size();
    while (p < code.size() && is_word(code[p])) ++p;  // map/set/…
    p = skip_space(code, p);
    if (p < code.size() && code[p] == '<') {
      int depth = 0;
      while (p < code.size()) {
        if (code[p] == '<') ++depth;
        if (code[p] == '>') {
          --depth;
          if (depth == 0) {
            ++p;
            break;
          }
        }
        ++p;
      }
    }
    p = skip_space(code, p);
    // Reference/pointer declarators sit between the type and the name.
    while (p < code.size() && (code[p] == '&' || code[p] == '*')) {
      p = skip_space(code, p + 1);
    }
    std::string name;
    while (p < code.size() && is_word(code[p])) name.push_back(code[p++]);
    if (!name.empty() && name != "const") names.push_back(name);
    pos += marker.size();
  }
  return names;
}

void rule_unordered_iteration(const SourceFile& file,
                              std::vector<Finding>& findings) {
  for (const auto& name : unordered_names(file.code)) {
    // Range-for over the container: `for (… : name)`.
    for (const auto pos : find_words(file.code, name)) {
      const std::size_t after = skip_space(file.code, pos + name.size());
      const char before = prev_significant(file.code, pos);
      const bool range_for = before == ':' && after < file.code.size() &&
                             file.code[after] == ')';
      bool begin_call = false;
      if (after + 1 < file.code.size() && file.code[after] == '.') {
        const std::size_t m = skip_space(file.code, after + 1);
        for (const auto* it : {"begin", "cbegin", "rbegin"}) {
          if (word_at(file.code, m, it)) begin_call = true;
        }
      }
      if (range_for || begin_call) {
        report(findings, file, line_of(file.code, pos), "unordered-iteration",
               "iteration order of std::unordered_* is unspecified; "
               "iterating `" + name +
                   "` feeds non-deterministic order into results — use an "
                   "ordered container or sort first");
      }
    }
  }
}

void rule_wall_clock(const SourceFile& file, std::vector<Finding>& findings) {
  if (!in_kernel_dir(file.path)) return;
  for (const auto* token : {"system_clock", "gettimeofday", "time", "clock"}) {
    for (const auto pos : find_words(file.code, token)) {
      const std::string t(token);
      if (t == "time" || t == "clock") {
        // Only the C library calls, not identifiers containing the word.
        const std::size_t after = skip_space(file.code, pos + t.size());
        if (after >= file.code.size() || file.code[after] != '(') continue;
        const char before = prev_significant(file.code, pos);
        if (before == '.' || before == '>') continue;  // member calls
      }
      report(findings, file, line_of(file.code, pos), "wall-clock",
             "wall-clock read inside a kernel; kernels must be "
             "deterministic — time at the trainer/bench layer instead");
    }
  }
}

// -- R3: aliasing -----------------------------------------------------------

void rule_aliasing(const SourceFile& file, std::vector<Finding>& findings) {
  for (const auto pos : find_words(file.code, "reinterpret_cast")) {
    report(findings, file, line_of(file.code, pos), "aliasing",
           "reinterpret_cast invites strict-aliasing UB; round-trip through "
           "std::memcpy, or tag `// sgnn-lint: allow(aliasing): <reason>` "
           "for byte-pointer stream IO");
  }
}

// -- R4: include hygiene ----------------------------------------------------

void rule_pragma_once(const SourceFile& file, std::vector<Finding>& findings) {
  if (!classify(file.path).header) return;
  for (const auto& line : file.raw_lines) {
    if (trim(line) == "#pragma once") return;
  }
  report(findings, file, 1, "pragma-once", "header lacks `#pragma once`");
}

void rule_include_path(const SourceFile& file,
                       std::vector<Finding>& findings) {
  const PathInfo info = classify(file.path);
  for (std::size_t i = 0; i < file.raw_lines.size(); ++i) {
    const std::string line = trim(file.raw_lines[i]);
    if (!starts_with(line, "#include") && !starts_with(line, "# include")) {
      continue;
    }
    const auto open = line.find('"');
    if (open == std::string::npos) continue;
    const auto close = line.find('"', open + 1);
    if (close == std::string::npos) continue;
    const std::string target = line.substr(open + 1, close - open - 1);
    const int lineno = static_cast<int>(i) + 1;
    if (starts_with(target, "src/") || target.find("../") !=
                                           std::string::npos) {
      report(findings, file, lineno, "include-path",
             "include of \"" + target +
                 "\" reaches into the source tree; depend on installed "
                 "sgnn/ headers instead");
    } else if (info.in_include && !starts_with(target, "sgnn/")) {
      report(findings, file, lineno, "include-path",
             "public header includes \"" + target +
                 "\"; headers under include/ may only include "
                 "\"sgnn/...\" project headers");
    }
  }
}

// -- R5: TraceSpan discipline ----------------------------------------------

void rule_trace_span(const SourceFile& file, std::vector<Finding>& findings) {
  if (!classify(file.path).in_src) return;
  for (const auto pos : find_words(file.code, "TraceSpan")) {
    const std::size_t after = skip_space(file.code, pos + 9);
    if (after < file.code.size() && file.code[after] == '(') {
      report(findings, file, line_of(file.code, pos), "trace-span",
             "TraceSpan temporary is destroyed at the end of the full "
             "expression and records nothing useful; bind it to a named "
             "local");
    }
  }
}

/// Counts matches of `head` followed by an identifier, `(`, and `arg` —
/// e.g. TraceSpan span("forward" / ScopedTrainPhase p(TrainPhase::kForward.
std::size_t count_declarations(const std::string& text,
                               const std::string& head,
                               const std::string& arg) {
  std::size_t count = 0;
  for (const auto pos : find_words(text, head)) {
    std::size_t p = skip_space(text, pos + head.size());
    std::string name;
    while (p < text.size() && is_word(text[p])) name.push_back(text[p++]);
    if (name.empty()) continue;
    p = skip_space(text, p);
    if (p >= text.size() || text[p] != '(') continue;
    p = skip_space(text, p + 1);
    if (text.compare(p, arg.size(), arg) == 0) ++count;
  }
  return count;
}

void rule_trace_balance(const SourceFile& file,
                        std::vector<Finding>& findings) {
  if (!starts_with(file.path, "src/train/")) return;
  if (file.allows_anywhere("trace-balance")) return;
  const struct {
    const char* span;
    const char* phase;
  } pairs[] = {{"\"forward\"", "TrainPhase::kForward"},
               {"\"backward\"", "TrainPhase::kBackward"},
               {"\"optimizer\"", "TrainPhase::kOptimizer"}};
  for (const auto& pair : pairs) {
    // Span names live in string literals, so match on the raw text.
    const std::size_t spans =
        count_declarations(file.raw, "TraceSpan", pair.span);
    const std::size_t phases =
        count_declarations(file.raw, "ScopedTrainPhase", pair.phase);
    if (spans != phases) {
      std::ostringstream os;
      os << "unbalanced trainer instrumentation: " << spans << " TraceSpan("
         << pair.span << ") vs " << phases << " ScopedTrainPhase("
         << pair.phase << "); every phase span needs its memory-phase twin";
      findings.push_back({file.path, 1, "trace-balance", os.str()});
    }
  }
}

// -- R6: raw SIMD intrinsics ------------------------------------------------

/// All platform intrinsics live behind src/tensor/kernels/simd_wrapper.hpp;
/// everywhere else uses the wrapper's portable vd/vw API. This keeps the
/// AVX2/NEON split in one reviewed file and stops `-mavx2`-only code from
/// leaking into TUs compiled for the baseline ISA.
void rule_intrinsics(const SourceFile& file, std::vector<Finding>& findings) {
  if (file.path == "src/tensor/kernels/simd_wrapper.hpp") return;
  // Identifier prefixes that only appear in vendor intrinsic headers:
  // x86 `_mm*` calls and `__m128/256/512*` vector types; NEON load/store/
  // lane calls and `float32x4_t`-style types.
  static const char* kPrefixes[] = {"_mm",      "__m128",   "__m256",
                                    "__m512",   "vld1",     "vst1",
                                    "float32x", "float64x", "int32x"};
  for (const auto* prefix : kPrefixes) {
    const std::string p(prefix);
    std::size_t pos = 0;
    while ((pos = file.code.find(p, pos)) != std::string::npos) {
      const bool word_start = pos == 0 || !is_word(file.code[pos - 1]);
      if (word_start) {
        report(findings, file, line_of(file.code, pos), "intrinsics",
               "raw SIMD intrinsic `" + p +
                   "...` outside src/tensor/kernels/simd_wrapper.hpp; use "
                   "the portable wrapper API instead");
      }
      pos += p.size();
    }
  }
  for (std::size_t i = 0; i < file.raw_lines.size(); ++i) {
    const std::string line = trim(file.raw_lines[i]);
    if (!starts_with(line, "#include") && !starts_with(line, "# include")) {
      continue;
    }
    for (const auto* header : {"immintrin.h", "arm_neon.h", "xmmintrin.h",
                               "emmintrin.h", "x86intrin.h"}) {
      if (line.find(header) != std::string::npos) {
        report(findings, file, static_cast<int>(i) + 1, "intrinsics",
               std::string("#include <") + header +
                   "> outside src/tensor/kernels/simd_wrapper.hpp; include "
                   "the wrapper header instead");
      }
    }
  }
}

// -- suppression hygiene ----------------------------------------------------

void rule_suppressions(const SourceFile& file,
                       std::vector<Finding>& findings) {
  for (const auto& [line, tags] : file.suppressions) {
    for (const auto& tag : tags) {
      // Cascaded copies keep their origin line; report each tag once, where
      // it was written.
      if (!tag.has_reason && tag.origin == line) {
        findings.push_back(
            {file.path, line, "suppression",
             "suppression `allow(" + tag.rule +
                 ")` has no reason; write `allow(" + tag.rule +
                 "): <why this is safe>`"});
      }
    }
  }
}

}  // namespace

// Function names declared (terminated by `;`, not defined inline) at any
// scope of a header's code view. Operators and macro-style ALL_CAPS names
// are skipped.
std::vector<std::pair<std::string, int>> declared_functions(
    const std::string& code) {
  static const char* kKeywords[] = {"if",     "for",    "while", "switch",
                                    "return", "sizeof", "catch", "alignof",
                                    "decltype"};
  std::vector<std::pair<std::string, int>> names;
  for (std::size_t pos = 0; pos < code.size(); ++pos) {
    if (code[pos] != '(') continue;
    // Identifier immediately before the paren.
    std::size_t e = pos;
    while (e > 0 &&
           std::isspace(static_cast<unsigned char>(code[e - 1]))) {
      --e;
    }
    std::size_t b = e;
    while (b > 0 && is_word(code[b - 1])) --b;
    if (b == e) continue;
    const std::string name = code.substr(b, e - b);
    if (std::any_of(std::begin(kKeywords), std::end(kKeywords),
                    [&](const char* k) { return name == k; })) {
      continue;
    }
    const bool all_caps = std::all_of(name.begin(), name.end(), [](char c) {
      return std::isupper(static_cast<unsigned char>(c)) != 0 ||
             std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '_';
    });
    if (all_caps) continue;
    // `operator+(...)` and friends delegate to the named ops.
    std::size_t q = b;
    while (q > 0 && std::isspace(static_cast<unsigned char>(code[q - 1]))) {
      --q;
    }
    if (q >= 8 && code.compare(q - 8, 8, "operator") == 0) continue;
    const char before = q > 0 ? code[q - 1] : '\0';
    // Member calls, destructors, and qualified names (std::pow inside an
    // inline convenience body) are uses, not declarations of header API.
    if (before == '.' || before == '~' || before == ':') continue;
    // Must be a declaration: balanced parens then `;` (allowing trailing
    // qualifiers like const/noexcept), with no `{` in between.
    int depth = 0;
    std::size_t p = pos;
    for (; p < code.size(); ++p) {
      if (code[p] == '(') ++depth;
      if (code[p] == ')') {
        --depth;
        if (depth == 0) break;
      }
    }
    if (depth != 0) continue;
    ++p;
    bool is_declaration = false;
    for (; p < code.size(); ++p) {
      const char c = code[p];
      if (c == ';') {
        is_declaration = true;
        break;
      }
      if (c == '{' || c == '(' || c == '=') break;
    }
    if (is_declaration) names.emplace_back(name, line_of(code, b));
  }
  return names;
}

namespace {

/// Positions (offset of the opening `{`) of out-of-line definitions of
/// `name` in `code` — `name(...)` or `Qualifier::name(...)` followed by an
/// optional const/noexcept and a brace.
std::vector<std::pair<std::size_t, std::size_t>> find_definitions(
    const std::string& code, const std::string& name) {
  std::vector<std::pair<std::size_t, std::size_t>> spans;  // (name, brace)
  for (const auto pos : find_words(code, name)) {
    const auto before_at = prev_significant_index(code, pos);
    const char before = before_at == std::string::npos ? '\0' : code[before_at];
    if (before == '.' || before == '&' || before == '!') {
      continue;  // member call / address-of / negated call
    }
    // `->name(` is a member call, but a lone `>` closes a template return
    // type (`std::vector<double> name(...)`) and introduces a definition.
    if (before == '>' && before_at > 0 && code[before_at - 1] == '-') {
      continue;
    }
    std::size_t p = skip_space(code, pos + name.size());
    if (p >= code.size() || code[p] != '(') continue;
    int depth = 0;
    for (; p < code.size(); ++p) {
      if (code[p] == '(') ++depth;
      if (code[p] == ')') {
        --depth;
        if (depth == 0) break;
      }
    }
    if (depth != 0) continue;
    p = skip_space(code, p + 1);
    // Trailing qualifiers before the body.
    for (const auto* word : {"const", "noexcept", "override", "final"}) {
      if (word_at(code, p, word)) {
        p = skip_space(code, p + std::string(word).size());
      }
    }
    if (p < code.size() && code[p] == '{') spans.emplace_back(pos, p);
  }
  return spans;
}

/// Extent of the brace-balanced block opening at `brace`.
std::size_t block_end(const std::string& code, std::size_t brace) {
  int depth = 0;
  for (std::size_t p = brace; p < code.size(); ++p) {
    if (code[p] == '{') ++depth;
    if (code[p] == '}') {
      --depth;
      if (depth == 0) return p;
    }
  }
  return code.size();
}

}  // namespace

bool SourceFile::allows(int line, const std::string& rule) const {
  const auto it = suppressions.find(line);
  if (it == suppressions.end()) return false;
  return std::any_of(it->second.begin(), it->second.end(),
                     [&](const Suppression& s) { return s.rule == rule; });
}

bool SourceFile::allows_anywhere(const std::string& rule) const {
  for (const auto& [line, tags] : suppressions) {
    (void)line;
    for (const auto& tag : tags) {
      if (tag.rule == rule) return true;
    }
  }
  return false;
}

SourceFile parse_source(std::string path, std::string content) {
  SourceFile file;
  file.path = std::move(path);
  file.raw = std::move(content);
  file.code.reserve(file.raw.size());

  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  std::string comment;          // text of the comment being scanned
  std::string line_code;        // code emitted on the current line
  int line = 1;
  int comment_start_line = 1;

  const auto note_tag = [&](int tag_line) {
    Suppression tag;
    if (!parse_tag(comment, tag)) return;
    tag.origin = tag_line;
    file.suppressions[tag_line].push_back(tag);
  };

  for (std::size_t i = 0; i < file.raw.size(); ++i) {
    const char c = file.raw[i];
    const char next = i + 1 < file.raw.size() ? file.raw[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          comment.clear();
          comment_start_line = line;
          file.code += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          comment.clear();
          comment_start_line = line;
          file.code += "  ";
          ++i;
        } else if (c == '"') {
          // Raw strings: R"delim( … )delim", with the optional encoding
          // prefixes (u8R, uR, UR, LR). The prefix must be the whole
          // preceding word — an identifier merely ending in R (`FooR"x"`
          // never parses anyway) does not start a raw string.
          std::size_t word_begin = i;
          while (word_begin > 0 && is_word(file.raw[word_begin - 1])) {
            --word_begin;
          }
          const std::string prefix =
              file.raw.substr(word_begin, i - word_begin);
          const bool raw_string = prefix == "R" || prefix == "u8R" ||
                                  prefix == "uR" || prefix == "UR" ||
                                  prefix == "LR";
          if (raw_string) {
            std::size_t d = i + 1;
            while (d < file.raw.size() && file.raw[d] != '(') ++d;
            const std::string delim =
                ")" + file.raw.substr(i + 1, d - i - 1) + "\"";
            const auto end = file.raw.find(delim, d);
            const std::size_t stop =
                end == std::string::npos ? file.raw.size()
                                         : end + delim.size();
            file.code += '"';
            for (std::size_t j = i + 1; j < stop; ++j) {
              file.code += file.raw[j] == '\n' ? '\n' : ' ';
              if (file.raw[j] == '\n') ++line;
            }
            i = stop - 1;
            file.code += '"';
          } else {
            state = State::kString;
            file.code += '"';
          }
        } else if (c == '\'') {
          // Digit separators (1'000'000, 0xFF'FF) are part of a numeric
          // literal, not the start of a char literal: the `'` sits inside a
          // pp-number, i.e. the word run it interrupts starts with a digit.
          // Char-literal encoding prefixes (L'a', u8'x') start with a
          // letter, so they still enter kChar below.
          std::size_t word_begin = i;
          while (word_begin > 0 && is_word(file.raw[word_begin - 1])) {
            --word_begin;
          }
          const bool in_number =
              word_begin < i &&
              std::isdigit(static_cast<unsigned char>(file.raw[word_begin])) !=
                  0 &&
              next != '\0' && is_word(next);
          if (in_number) {
            file.code += '\'';
            line_code += '\'';
          } else {
            state = State::kChar;
            file.code += '\'';
          }
        } else {
          file.code += c;
          if (c != '\n') line_code += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          note_tag(comment_start_line);
          state = State::kCode;
          file.code += '\n';
        } else {
          comment += c;
          file.code += ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          file.code += "  ";
          ++i;
        } else {
          comment += c;
          file.code += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          file.code += "  ";
          ++i;
          if (next == '\n') {
            file.code.back() = '\n';
            ++line;
          }
        } else if (c == '"') {
          state = State::kCode;
          file.code += '"';
        } else {
          file.code += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          file.code += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          file.code += '\'';
        } else {
          file.code += c == '\n' ? '\n' : ' ';
        }
        break;
    }
    if (c == '\n') {
      ++line;
      line_code.clear();
    }
  }
  if (state == State::kLineComment) note_tag(comment_start_line);

  file.raw_lines = split_lines(file.raw);
  file.code_lines = split_lines(file.code);

  // A tag on a line with no code cascades through the following run of
  // code-empty lines and onto the first code-bearing line, so a tag atop a
  // multi-line comment still reaches the statement under it.
  const auto code_empty = [&](int l) {
    return l >= 1 && l <= static_cast<int>(file.code_lines.size()) &&
           trim(file.code_lines[static_cast<std::size_t>(l - 1)]).empty();
  };
  std::vector<std::pair<int, Suppression>> cascaded;
  for (const auto& [tag_line, tags] : file.suppressions) {
    if (!code_empty(tag_line)) continue;
    for (const auto& tag : tags) {
      int l = tag_line + 1;
      while (code_empty(l)) cascaded.emplace_back(l++, tag);
      if (l <= static_cast<int>(file.code_lines.size())) {
        cascaded.emplace_back(l, tag);
      }
    }
  }
  for (auto& [l, tag] : cascaded) {
    file.suppressions[l].push_back(std::move(tag));
  }
  return file;
}

std::vector<Finding> lint_file(const SourceFile& file) {
  std::vector<Finding> findings;
  rule_new_delete(file, findings);
  rule_thread(file, findings);
  rule_rand(file, findings);
  rule_unordered_iteration(file, findings);
  rule_wall_clock(file, findings);
  rule_aliasing(file, findings);
  rule_pragma_once(file, findings);
  rule_include_path(file, findings);
  rule_trace_span(file, findings);
  rule_trace_balance(file, findings);
  rule_intrinsics(file, findings);
  rule_suppressions(file, findings);
  return findings;
}

const std::vector<std::string>& precondition_headers() {
  static const std::vector<std::string> headers = {
      "include/sgnn/tensor/ops.hpp",
      "include/sgnn/scaling/powerlaw.hpp",
  };
  return headers;
}

std::vector<Finding> check_preconditions(const ProjectIndex& index,
                                         const std::string& header_rel) {
  std::vector<Finding> findings;
  const SourceFile* header = index.find_file(header_rel);
  if (header == nullptr) return findings;
  const auto declared = declared_functions(header->code);

  // include/sgnn/<module>/x.hpp -> src/<module>/.
  std::string src_rel = header_rel;
  const std::string prefix = "include/sgnn/";
  if (starts_with(src_rel, prefix)) {
    src_rel = "src/" + src_rel.substr(prefix.size());
  }
  const auto slash = src_rel.find_last_of('/');
  const std::string src_dir = src_rel.substr(0, slash) + "/";

  std::vector<const SourceFile*> sources;
  for (const auto& file : index.files) {
    if (!starts_with(file.path, src_dir)) continue;
    if (!ends_with(file.path, ".cpp") && !ends_with(file.path, ".cc")) {
      continue;
    }
    sources.push_back(&file);
  }

  std::vector<std::string> seen;
  for (const auto& [name, decl_line] : declared) {
    if (std::find(seen.begin(), seen.end(), name) != seen.end()) continue;
    seen.push_back(name);
    bool defined = false;
    for (const auto* source : sources) {
      for (const auto& [name_pos, brace] :
           find_definitions(source->code, name)) {
        defined = true;
        const std::size_t end = block_end(source->code, brace);
        const std::string body = source->code.substr(brace, end - brace);
        if (body.find("SGNN_CHECK") != std::string::npos ||
            body.find("SGNN_DCHECK") != std::string::npos) {
          continue;
        }
        const int line = line_of(source->code, name_pos);
        if (source->allows(line, "precondition")) continue;
        findings.push_back(
            {source->path, line, "precondition",
             "`" + name + "` is public API (declared in " + header_rel +
                 ") but its definition carries no SGNN_CHECK "
                 "precondition"});
      }
    }
    if (!defined) {
      findings.push_back(
          {header_rel, decl_line, "precondition",
           "`" + name + "` is declared here but no definition was found "
           "under " + src_dir +
               " — rename drift breaks the precondition audit"});
    }
  }
  return findings;
}

std::vector<Finding> check_preconditions(const std::filesystem::path& root,
                                         const std::string& header_rel) {
  return check_preconditions(build_index(root), header_rel);
}

}  // namespace sgnn::lint
