#pragma once

// sgnn_lint — project-specific static analysis for the sgnn tree.
//
// The linter is token-based (comment- and string-literal-aware, but not a
// full C++ parser) and enforces the repo invariants that previously lived
// only in review comments:
//
//   R1  banned constructs: naked new/delete, std::thread outside the
//       comm/thread-pool layer, rand(), iteration over std::unordered_*
//       containers (order feeds output), wall-clock reads inside kernels
//   R2  every public function declared in the configured headers must
//       carry an SGNN_CHECK / SGNN_DCHECK precondition in its definition
//   R3  reinterpret_cast is banned unless tagged
//       `// sgnn-lint: allow(aliasing): <reason>`
//   R4  include hygiene: `#pragma once` in every header; headers under
//       include/ may only include "sgnn/..." project headers
//   R5  TraceSpan discipline: no discarded TraceSpan temporaries, and
//       forward/backward/optimizer spans in trainers stay paired with
//       their ScopedTrainPhase
//
// Findings on a line are silenced by `// sgnn-lint: allow(<rule>): reason`
// on the same line or on an otherwise-empty preceding line. A suppression
// without a reason is itself a finding (rule `suppression`), so the tree
// can never accumulate unexplained escapes.

#include <filesystem>
#include <map>
#include <string>
#include <vector>

namespace sgnn::lint {

struct Finding {
  std::string file;     ///< display path (tree-relative, forward slashes)
  int line = 0;         ///< 1-based
  std::string rule;     ///< rule id, e.g. "aliasing"
  std::string message;
};

/// One `// sgnn-lint: allow(<rule>)` tag.
struct Suppression {
  std::string rule;
  bool has_reason = false;
  int origin = 0;  ///< line the tag was written on (copies keep the origin)
};

/// A source file prepared for linting: the raw text plus a "code view" in
/// which comments and string/char-literal contents are blanked (structure
/// and line numbers preserved), and the per-line suppression tags.
struct SourceFile {
  std::string path;  ///< tree-relative path with forward slashes
  std::string raw;
  std::string code;
  std::vector<std::string> raw_lines;
  std::vector<std::string> code_lines;
  /// line (1-based) -> tags active on that line. A tag on a line whose code
  /// is empty also registers on the following line.
  std::map<int, std::vector<Suppression>> suppressions;

  bool allows(int line, const std::string& rule) const;
  /// True when any line of the file carries the tag (file-scope rules).
  bool allows_anywhere(const std::string& rule) const;
};

/// Builds the code view and suppression table for `content`.
SourceFile parse_source(std::string path, std::string content);

/// Per-file rules (R1, R3, R4, R5 and suppression hygiene). Which rules
/// apply depends on `file.path` — see docs/static-analysis.md.
std::vector<Finding> lint_file(const SourceFile& file);

/// R2: every function declared in `header_rel` (a path like
/// "include/sgnn/tensor/ops.hpp") has an SGNN_CHECK/SGNN_DCHECK in each of
/// its definitions under the mirrored source directory ("src/tensor/").
std::vector<Finding> check_preconditions(const std::filesystem::path& root,
                                         const std::string& header_rel);

/// Headers subject to R2.
const std::vector<std::string>& precondition_headers();

/// Walks src/, include/ and tests/ under `root` (skipping lint_fixtures
/// directories), applies every rule, and returns the sorted findings.
std::vector<Finding> lint_tree(const std::filesystem::path& root);

}  // namespace sgnn::lint
