#pragma once

// sgnn_lint — project-specific static analysis for the sgnn tree.
//
// The linter is token-based (comment- and string-literal-aware, but not a
// full C++ parser) and enforces the repo invariants that previously lived
// only in review comments:
//
//   R1  banned constructs: naked new/delete, std::thread outside the
//       comm/thread-pool layer, rand(), iteration over std::unordered_*
//       containers (order feeds output), wall-clock reads inside kernels
//   R2  every public function declared in the configured headers must
//       carry an SGNN_CHECK / SGNN_DCHECK precondition in its definition
//   R3  reinterpret_cast is banned unless tagged
//       `// sgnn-lint: allow(aliasing): <reason>`
//   R4  include hygiene: `#pragma once` in every header; headers under
//       include/ may only include "sgnn/..." project headers
//   R5  TraceSpan discipline: no discarded TraceSpan temporaries, and
//       forward/backward/optimizer spans in trainers stay paired with
//       their ScopedTrainPhase
//   R6  raw SIMD intrinsics only in the reviewed wrapper header
//
// The semantic rule families R7-R10 consume a cross-TU ProjectIndex
// (include graph + symbol table + approximate call graph) built in one
// pass over all translation units:
//
//   R7  layering: `#include` edges must follow the architecture DAG
//       util → tensor → {graph, obs} → {nn, comm, store} →
//       {data, train, ckpt, scaling, potential} (declared once in
//       layer_table(); upward edges and same-level cycles are rejected)
//   R8  SPMD collective safety: no blocking collective / barrier /
//       CollectiveHandle::wait under rank-conditioned control flow
//       (rule `spmd-divergence`) or while a lock guard is live in an
//       enclosing scope (rule `lock-across-wait`); both checks follow
//       calls through the call graph
//   R9  profiler coverage: every kernel entry point declared in
//       tensor/ops.hpp / graph/neighbor.hpp must open (or delegate to a
//       function that opens) a KernelScope/ProfRegion (rule `kernel-prof`)
//   R10 check-throw discipline: functions reachable from the comm
//       progress-engine/collective call graph must not throw bare
//       std::runtime_error; failures route through SGNN_CHECK /
//       sgnn::Error (rule `check-throw`)
//
// Findings on a line are silenced by `// sgnn-lint: allow(<rule>): reason`
// on the same line or on an otherwise-empty preceding line. A suppression
// without a reason is itself a finding (rule `suppression`), so the tree
// can never accumulate unexplained escapes.

#include <filesystem>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace sgnn::lint {

struct Finding {
  std::string file;     ///< display path (tree-relative, forward slashes)
  int line = 0;         ///< 1-based
  std::string rule;     ///< rule id, e.g. "aliasing"
  std::string message;
};

/// One `// sgnn-lint: allow(<rule>)` tag.
struct Suppression {
  std::string rule;
  bool has_reason = false;
  int origin = 0;  ///< line the tag was written on (copies keep the origin)
};

/// A source file prepared for linting: the raw text plus a "code view" in
/// which comments and string/char-literal contents are blanked (structure
/// and line numbers preserved), and the per-line suppression tags.
struct SourceFile {
  std::string path;  ///< tree-relative path with forward slashes
  std::string raw;
  std::string code;
  std::vector<std::string> raw_lines;
  std::vector<std::string> code_lines;
  /// line (1-based) -> tags active on that line. A tag on a line whose code
  /// is empty also registers on the following line.
  std::map<int, std::vector<Suppression>> suppressions;

  bool allows(int line, const std::string& rule) const;
  /// True when any line of the file carries the tag (file-scope rules).
  bool allows_anywhere(const std::string& rule) const;
};

/// Builds the code view and suppression table for `content`.
SourceFile parse_source(std::string path, std::string content);

/// Per-file rules (R1, R3, R4, R5 and suppression hygiene). Which rules
/// apply depends on `file.path` — see docs/static-analysis.md.
std::vector<Finding> lint_file(const SourceFile& file);

// ---------------------------------------------------------------------------
// Cross-TU project index
// ---------------------------------------------------------------------------

/// One `#include "..."` edge extracted from a file (quoted form only —
/// system includes never participate in the layering DAG).
struct IncludeEdge {
  std::string target;  ///< include target as written, e.g. "sgnn/nn/egnn.hpp"
  int line = 0;
};

/// One function definition discovered by the token-level scanner. The body
/// range addresses the file's code view; `callees` holds every call site
/// inside the body — `name` for unqualified/member calls, `Qual::name`
/// when the call was spelled with an explicit qualifier. Resolution
/// against the symbol table is by name (an over-approximation, documented
/// in docs/static-analysis.md), except that a qualified call binds only to
/// same-qualifier definitions when any exist — this is what keeps
/// `Shape::broadcast(...)` from aliasing `Communicator::broadcast`.
struct FunctionDef {
  int file = -1;               ///< index into ProjectIndex::files
  std::string name;            ///< unqualified name ("barrier")
  std::string qualifier;       ///< enclosing-class spelling ("Communicator")
  int line = 0;                ///< 1-based line of the name
  std::size_t name_pos = 0;    ///< offset of the name in the code view
  std::size_t body_begin = 0;  ///< offset of the opening '{'
  std::size_t body_end = 0;    ///< offset of the matching '}'
  std::vector<std::string> callees;
};

/// Everything the semantic rules consume, built in ONE pass over the tree:
/// every source file parsed once, its includes extracted, and a symbol
/// table + call graph over src/ and include/ definitions.
struct ProjectIndex {
  std::filesystem::path root;
  std::vector<SourceFile> files;
  std::vector<std::vector<IncludeEdge>> includes;  ///< parallel to files
  std::vector<FunctionDef> functions;
  /// Keyed by unqualified name AND (for member definitions) `Qual::name`.
  std::map<std::string, std::vector<int>> functions_by_name;
  std::size_t bytes = 0;  ///< total raw bytes parsed

  /// File by tree-relative path, or -1 / nullptr when absent.
  int file_id(const std::string& rel_path) const;
  const SourceFile* find_file(const std::string& rel_path) const;
  /// The file a definition lives in.
  const SourceFile& file_of(const FunctionDef& def) const {
    return files[static_cast<std::size_t>(def.file)];
  }
  /// Definitions a call site may bind to. `callee` is `name` or
  /// `Qual::name`; a qualified call binds to same-qualifier definitions
  /// when any exist, and falls back to every definition of `name`
  /// otherwise (namespace-qualified calls to free functions).
  const std::vector<int>& resolve(const std::string& callee) const;
};

/// Walks src/, include/ and tests/ under `root` (skipping lint_fixtures
/// and build directories) and builds the index.
ProjectIndex build_index(const std::filesystem::path& root);

/// Function ids reachable from `roots` over call edges, call sites resolved
/// by unqualified name (over-approximate). Result is parallel to
/// `index.functions` and includes the roots themselves.
std::vector<bool> reachable_functions(const ProjectIndex& index,
                                      const std::vector<int>& roots);

/// Function names declared at any scope of a header's code view (prototype
/// terminated by `;`), with the declaration line. Shared by R2 and R9.
std::vector<std::pair<std::string, int>> declared_functions(
    const std::string& code);

// ---------------------------------------------------------------------------
// R7 layering: the architecture DAG, declared exactly once
// ---------------------------------------------------------------------------

/// One module of the architecture DAG. An include edge A -> B is legal when
/// level(B) < level(A), or level(B) == level(A) with no reverse edge.
struct LayerEntry {
  const char* module;  ///< directory under include/sgnn/ and src/
  int level = 0;       ///< 0 is the bottom (util)
};

/// THE single source of truth for the DAG. docs/architecture.md and
/// docs/static-analysis.md embed `sgnn_lint --print-dag`, which renders
/// this table — the docs and the enforcement cannot drift.
const std::vector<LayerEntry>& layer_table();

/// Instrumentation hook headers exempt from R7 (currently only
/// "sgnn/obs/prof.hpp": R9 requires kernels below obs to open KernelScope,
/// so the hook header must be includable from anywhere; in exchange the
/// linter enforces that hook headers include nothing above util).
const std::vector<std::string>& hook_headers();

/// Human-readable rendering of layer_table() (the `--print-dag` output).
std::string print_dag();

// ---------------------------------------------------------------------------
// Rule entry points
// ---------------------------------------------------------------------------

/// R2: every function declared in `header_rel` (a path like
/// "include/sgnn/tensor/ops.hpp") has an SGNN_CHECK/SGNN_DCHECK in each of
/// its definitions under the mirrored source directory ("src/tensor/").
std::vector<Finding> check_preconditions(const ProjectIndex& index,
                                         const std::string& header_rel);

/// Legacy convenience wrapper: builds a throwaway index for `root`.
std::vector<Finding> check_preconditions(const std::filesystem::path& root,
                                         const std::string& header_rel);

/// Headers subject to R2.
const std::vector<std::string>& precondition_headers();

/// R7 (rule id `layering`): include edges across include/ and src/ must
/// respect layer_table(); upward edges, same-level cycles, modules missing
/// from the table, and impure hook headers are findings.
std::vector<Finding> lint_layering(const ProjectIndex& index);

/// R8 (rule ids `spmd-divergence`, `lock-across-wait`): blocking
/// collectives / barrier / empty-argument `.wait()` — or calls that reach
/// one through the call graph — under rank-conditioned control flow or
/// while a lock guard is live in an enclosing scope.
std::vector<Finding> lint_spmd(const ProjectIndex& index);

/// R9 (rule id `kernel-prof`): kernel entry points declared in
/// tensor/ops.hpp and graph/neighbor.hpp must open a KernelScope/ProfRegion
/// directly or via a callee in the kernel source set, with no top-level
/// early return before the scope opens.
std::vector<Finding> lint_kernel_prof(const ProjectIndex& index);

/// R10 (rule id `check-throw`): functions reachable from the comm layer's
/// call graph must not throw bare std::runtime_error.
std::vector<Finding> lint_check_throw(const ProjectIndex& index);

// ---------------------------------------------------------------------------
// Whole-tree runs and output formats
// ---------------------------------------------------------------------------

/// Timings and counters for one lint_tree_stats run (`--stats`).
struct LintStats {
  int files = 0;
  std::size_t bytes = 0;
  int functions = 0;
  int include_edges = 0;
  double index_seconds = 0.0;  ///< walk + parse + symbol/call-graph build
  double rule_seconds = 0.0;   ///< all rule families over the index
  double total_seconds = 0.0;
};

struct LintResult {
  std::vector<Finding> findings;  ///< sorted by (file, line, rule)
  LintStats stats;
};

/// Builds the index once, applies every rule family (R1-R10) over it, and
/// returns the sorted findings plus stats.
LintResult lint_tree_stats(const std::filesystem::path& root);

/// Compatibility wrapper around lint_tree_stats.
std::vector<Finding> lint_tree(const std::filesystem::path& root);

/// `file:line: [rule] message` lines (the default CLI output).
std::string format_text(const std::vector<Finding>& findings);

/// JSON report (schema `sgnn.lint_report.v1`): findings plus stats.
std::string format_json(const LintResult& result, const std::string& root);

/// GitHub Actions workflow annotations (`::error file=..,line=..::..`).
std::string format_github(const std::vector<Finding>& findings);

}  // namespace sgnn::lint
