#include <algorithm>
#include <deque>
#include <fstream>
#include <sstream>

#include "lint.hpp"
#include "text_util.hpp"

// The cross-TU project index: one walk over src/, include/ and tests/,
// each file parsed exactly once, then an include graph plus a token-level
// symbol table and call graph over the library code. Every semantic rule
// family (R7-R10) and R2 consume this — no rule re-reads the tree.

namespace sgnn::lint {

namespace {

using text::is_all_caps;
using text::is_word;
using text::line_of;
using text::match_brace;
using text::match_paren;
using text::skip_space;
using text::starts_with;
using text::word_at;
using text::word_before;

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string display_path(const std::filesystem::path& root,
                         const std::filesystem::path& path) {
  return std::filesystem::relative(path, root).generic_string();
}

std::vector<std::filesystem::path> sources_under(
    const std::filesystem::path& dir) {
  std::vector<std::filesystem::path> files;
  if (!std::filesystem::exists(dir)) return files;
  for (auto it = std::filesystem::recursive_directory_iterator(dir);
       it != std::filesystem::recursive_directory_iterator(); ++it) {
    if (it->is_directory()) {
      const auto name = it->path().filename().string();
      // Fixture trees deliberately violate every rule; build output and VCS
      // metadata are not ours to lint.
      if (name == "lint_fixtures" || name == ".git" ||
          starts_with(name, "build")) {
        it.disable_recursion_pending();
      }
      continue;
    }
    const auto ext = it->path().extension().string();
    if (ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h") {
      files.push_back(it->path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

/// Identifiers that precede a `(` without naming a function.
bool is_call_keyword(const std::string& name) {
  static const char* kKeywords[] = {
      "if",       "for",      "while",   "switch",   "catch",
      "return",   "sizeof",   "alignof", "decltype", "noexcept",
      "defined",  "assert",   "static_assert",       "alignas",
      "typeid",   "throw",    "new",     "delete",   "co_await",
      "co_return", "constexpr", "requires"};
  return std::any_of(std::begin(kKeywords), std::end(kKeywords),
                     [&](const char* k) { return name == k; });
}

std::vector<IncludeEdge> extract_includes(const SourceFile& file) {
  std::vector<IncludeEdge> edges;
  for (std::size_t i = 0; i < file.raw_lines.size(); ++i) {
    const std::string line = text::trim(file.raw_lines[i]);
    if (!starts_with(line, "#include") && !starts_with(line, "# include")) {
      continue;
    }
    const auto open = line.find('"');
    if (open == std::string::npos) continue;
    const auto close = line.find('"', open + 1);
    if (close == std::string::npos) continue;
    edges.push_back(
        {line.substr(open + 1, close - open - 1), static_cast<int>(i) + 1});
  }
  return edges;
}

/// Scans one file's code view for function definitions: an identifier, a
/// balanced parameter list, optional trailing qualifiers / a constructor
/// initializer list, then `{`. Token-level, so lambdas (no preceding
/// identifier), macros (ALL_CAPS), operators and control keywords are
/// filtered rather than parsed.
void extract_definitions(const SourceFile& file, int file_id,
                         std::vector<FunctionDef>& out) {
  const std::string& code = file.code;
  for (std::size_t pos = 0; pos < code.size(); ++pos) {
    if (code[pos] != '(') continue;
    const std::string name = word_before(code, pos);
    if (name.empty() || is_call_keyword(name) || is_all_caps(name)) continue;

    // word_before skipped trailing spaces; recover the name's begin offset.
    const std::size_t name_end = text::prev_significant_index(code, pos);
    const std::size_t name_begin = name_end + 1 - name.size();

    const char before = name_begin > 0 ? code[name_begin - 1] : '\0';
    if (before == '.' || before == '~') continue;  // member call / dtor
    if (before == '>' && name_begin > 1 && code[name_begin - 2] == '-') {
      continue;  // -> member call
    }
    // A `Qualifier::name` spelling: record the qualifier (class or
    // namespace — indistinguishable at token level, both useful context).
    std::string qualifier;
    if (before == ':' && name_begin > 1 && code[name_begin - 2] == ':') {
      qualifier = word_before(code, name_begin - 2);
    }
    if (word_before(code, name_begin) == "operator") continue;

    const std::size_t close = match_paren(code, pos);
    if (close == std::string::npos) continue;
    std::size_t p = skip_space(code, close + 1);
    // Trailing qualifiers between the parameter list and the body,
    // including a conditional `noexcept(expr)`.
    bool progressed = true;
    while (progressed && p < code.size()) {
      progressed = false;
      for (const auto* word : {"const", "noexcept", "override", "final"}) {
        if (!word_at(code, p, word)) continue;
        p = skip_space(code, p + std::string(word).size());
        if (std::string(word) == "noexcept" && p < code.size() &&
            code[p] == '(') {
          const std::size_t cond_close = match_paren(code, p);
          if (cond_close == std::string::npos) break;
          p = skip_space(code, cond_close + 1);
        }
        progressed = true;
      }
    }
    // Constructor initializer list: `: member(expr), base(expr) {`. Scan
    // to the first `{` outside parens, bailing at `;` (a label or a
    // ternary would have produced one first in any non-definition).
    if (p < code.size() && code[p] == ':' &&
        (p + 1 >= code.size() || code[p + 1] != ':')) {
      std::size_t q = p + 1;
      int depth = 0;
      bool found = false;
      for (; q < code.size(); ++q) {
        if (code[q] == '(') ++depth;
        if (code[q] == ')') --depth;
        if (code[q] == ';' && depth == 0) break;
        if (code[q] == '{' && depth == 0) {
          found = true;
          break;
        }
      }
      if (!found) continue;
      p = q;
    }
    if (p >= code.size() || code[p] != '{') continue;

    FunctionDef def;
    def.file = file_id;
    def.name = name;
    def.qualifier = qualifier;
    def.line = line_of(code, name_begin);
    def.name_pos = name_begin;
    def.body_begin = p;
    def.body_end = match_brace(code, p);
    out.push_back(std::move(def));
  }
}

/// Call sites inside [begin, end) of `code`: an identifier directly
/// followed by `(`, excluding keywords and macros. Spelled `Qual::name`
/// when the call carries an explicit qualifier, so resolution can bind
/// `Shape::broadcast(...)` to Shape's member rather than every
/// `broadcast` in the tree.
std::vector<std::string> extract_callees(const std::string& code,
                                         std::size_t begin, std::size_t end) {
  std::vector<std::string> callees;
  for (std::size_t pos = begin; pos < end && pos < code.size(); ++pos) {
    if (code[pos] != '(') continue;
    const std::string name = word_before(code, pos);
    if (name.empty() || is_call_keyword(name) || is_all_caps(name)) continue;
    const std::size_t name_end = text::prev_significant_index(code, pos);
    const std::size_t name_begin = name_end + 1 - name.size();
    std::string spelled = name;
    if (name_begin >= 2 && code[name_begin - 1] == ':' &&
        code[name_begin - 2] == ':') {
      const std::string qual = word_before(code, name_begin - 2);
      if (!qual.empty()) spelled = qual + "::" + name;
    }
    if (std::find(callees.begin(), callees.end(), spelled) ==
        callees.end()) {
      callees.push_back(spelled);
    }
  }
  return callees;
}

}  // namespace

int ProjectIndex::file_id(const std::string& rel_path) const {
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (files[i].path == rel_path) return static_cast<int>(i);
  }
  return -1;
}

const SourceFile* ProjectIndex::find_file(const std::string& rel_path) const {
  const int id = file_id(rel_path);
  return id < 0 ? nullptr : &files[static_cast<std::size_t>(id)];
}

ProjectIndex build_index(const std::filesystem::path& root) {
  ProjectIndex index;
  index.root = root;
  for (const auto* top : {"src", "include", "tests"}) {
    for (const auto& path : sources_under(root / top)) {
      SourceFile file = parse_source(display_path(root, path),
                                     read_file(path));
      index.bytes += file.raw.size();
      index.includes.push_back(extract_includes(file));
      index.files.push_back(std::move(file));
    }
  }
  for (std::size_t i = 0; i < index.files.size(); ++i) {
    const SourceFile& file = index.files[i];
    // The call graph covers library code; tests call everything and would
    // only blur reachability for R8/R10.
    if (starts_with(file.path, "tests/")) continue;
    extract_definitions(file, static_cast<int>(i), index.functions);
  }
  for (std::size_t f = 0; f < index.functions.size(); ++f) {
    FunctionDef& def = index.functions[f];
    const std::string& code = index.file_of(def).code;
    def.callees =
        extract_callees(code, def.body_begin + 1, def.body_end);
    index.functions_by_name[def.name].push_back(static_cast<int>(f));
    if (!def.qualifier.empty()) {
      index.functions_by_name[def.qualifier + "::" + def.name].push_back(
          static_cast<int>(f));
    }
  }
  return index;
}

const std::vector<int>& ProjectIndex::resolve(
    const std::string& callee) const {
  static const std::vector<int> empty;
  const auto exact = functions_by_name.find(callee);
  if (exact != functions_by_name.end()) return exact->second;
  // A qualified call with no same-qualifier definition: a namespace
  // qualification of a free function — fall back to every definition of
  // the unqualified name.
  const auto sep = callee.rfind("::");
  if (sep != std::string::npos) {
    const auto plain = functions_by_name.find(callee.substr(sep + 2));
    if (plain != functions_by_name.end()) return plain->second;
  }
  return empty;
}

std::vector<bool> reachable_functions(const ProjectIndex& index,
                                      const std::vector<int>& roots) {
  std::vector<bool> reached(index.functions.size(), false);
  std::deque<int> frontier;
  for (const int id : roots) {
    if (id >= 0 && id < static_cast<int>(reached.size()) &&
        !reached[static_cast<std::size_t>(id)]) {
      reached[static_cast<std::size_t>(id)] = true;
      frontier.push_back(id);
    }
  }
  while (!frontier.empty()) {
    const int id = frontier.front();
    frontier.pop_front();
    for (const auto& callee :
         index.functions[static_cast<std::size_t>(id)].callees) {
      for (const int target : index.resolve(callee)) {
        if (!reached[static_cast<std::size_t>(target)]) {
          reached[static_cast<std::size_t>(target)] = true;
          frontier.push_back(target);
        }
      }
    }
  }
  return reached;
}

}  // namespace sgnn::lint
