file(REMOVE_RECURSE
  "CMakeFiles/module_test.dir/module_test.cpp.o"
  "CMakeFiles/module_test.dir/module_test.cpp.o.d"
  "module_test"
  "module_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/module_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
