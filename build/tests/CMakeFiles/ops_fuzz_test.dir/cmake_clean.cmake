file(REMOVE_RECURSE
  "CMakeFiles/ops_fuzz_test.dir/ops_fuzz_test.cpp.o"
  "CMakeFiles/ops_fuzz_test.dir/ops_fuzz_test.cpp.o.d"
  "ops_fuzz_test"
  "ops_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
