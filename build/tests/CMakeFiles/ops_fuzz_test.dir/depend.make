# Empty dependencies file for ops_fuzz_test.
# This may be replaced when dependencies are built.
