file(REMOVE_RECURSE
  "CMakeFiles/md_test.dir/md_test.cpp.o"
  "CMakeFiles/md_test.dir/md_test.cpp.o.d"
  "md_test"
  "md_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
