# Empty dependencies file for egnn_test.
# This may be replaced when dependencies are built.
