file(REMOVE_RECURSE
  "CMakeFiles/egnn_test.dir/egnn_test.cpp.o"
  "CMakeFiles/egnn_test.dir/egnn_test.cpp.o.d"
  "egnn_test"
  "egnn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/egnn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
