file(REMOVE_RECURSE
  "CMakeFiles/potential_test.dir/potential_test.cpp.o"
  "CMakeFiles/potential_test.dir/potential_test.cpp.o.d"
  "potential_test"
  "potential_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/potential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
