# Empty compiler generated dependencies file for finetune.
# This may be replaced when dependencies are built.
