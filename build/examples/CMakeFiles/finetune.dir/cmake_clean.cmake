file(REMOVE_RECURSE
  "CMakeFiles/finetune.dir/finetune.cpp.o"
  "CMakeFiles/finetune.dir/finetune.cpp.o.d"
  "finetune"
  "finetune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finetune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
