# Empty compiler generated dependencies file for md_simulation.
# This may be replaced when dependencies are built.
