# Empty compiler generated dependencies file for train_potential.
# This may be replaced when dependencies are built.
