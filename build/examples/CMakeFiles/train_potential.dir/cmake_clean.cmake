file(REMOVE_RECURSE
  "CMakeFiles/train_potential.dir/train_potential.cpp.o"
  "CMakeFiles/train_potential.dir/train_potential.cpp.o.d"
  "train_potential"
  "train_potential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_potential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
