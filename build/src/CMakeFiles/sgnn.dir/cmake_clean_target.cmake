file(REMOVE_RECURSE
  "libsgnn.a"
)
