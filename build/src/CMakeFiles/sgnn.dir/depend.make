# Empty dependencies file for sgnn.
# This may be replaced when dependencies are built.
