
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/communicator.cpp" "src/CMakeFiles/sgnn.dir/comm/communicator.cpp.o" "gcc" "src/CMakeFiles/sgnn.dir/comm/communicator.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/CMakeFiles/sgnn.dir/data/dataset.cpp.o" "gcc" "src/CMakeFiles/sgnn.dir/data/dataset.cpp.o.d"
  "/root/repo/src/data/loader.cpp" "src/CMakeFiles/sgnn.dir/data/loader.cpp.o" "gcc" "src/CMakeFiles/sgnn.dir/data/loader.cpp.o.d"
  "/root/repo/src/data/sources.cpp" "src/CMakeFiles/sgnn.dir/data/sources.cpp.o" "gcc" "src/CMakeFiles/sgnn.dir/data/sources.cpp.o.d"
  "/root/repo/src/data/streaming.cpp" "src/CMakeFiles/sgnn.dir/data/streaming.cpp.o" "gcc" "src/CMakeFiles/sgnn.dir/data/streaming.cpp.o.d"
  "/root/repo/src/graph/batch.cpp" "src/CMakeFiles/sgnn.dir/graph/batch.cpp.o" "gcc" "src/CMakeFiles/sgnn.dir/graph/batch.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/sgnn.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/sgnn.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/neighbor.cpp" "src/CMakeFiles/sgnn.dir/graph/neighbor.cpp.o" "gcc" "src/CMakeFiles/sgnn.dir/graph/neighbor.cpp.o.d"
  "/root/repo/src/graph/structure.cpp" "src/CMakeFiles/sgnn.dir/graph/structure.cpp.o" "gcc" "src/CMakeFiles/sgnn.dir/graph/structure.cpp.o.d"
  "/root/repo/src/nn/egnn.cpp" "src/CMakeFiles/sgnn.dir/nn/egnn.cpp.o" "gcc" "src/CMakeFiles/sgnn.dir/nn/egnn.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/CMakeFiles/sgnn.dir/nn/layers.cpp.o" "gcc" "src/CMakeFiles/sgnn.dir/nn/layers.cpp.o.d"
  "/root/repo/src/nn/model_io.cpp" "src/CMakeFiles/sgnn.dir/nn/model_io.cpp.o" "gcc" "src/CMakeFiles/sgnn.dir/nn/model_io.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "src/CMakeFiles/sgnn.dir/nn/module.cpp.o" "gcc" "src/CMakeFiles/sgnn.dir/nn/module.cpp.o.d"
  "/root/repo/src/nn/transformer.cpp" "src/CMakeFiles/sgnn.dir/nn/transformer.cpp.o" "gcc" "src/CMakeFiles/sgnn.dir/nn/transformer.cpp.o.d"
  "/root/repo/src/potential/potential.cpp" "src/CMakeFiles/sgnn.dir/potential/potential.cpp.o" "gcc" "src/CMakeFiles/sgnn.dir/potential/potential.cpp.o.d"
  "/root/repo/src/scaling/powerlaw.cpp" "src/CMakeFiles/sgnn.dir/scaling/powerlaw.cpp.o" "gcc" "src/CMakeFiles/sgnn.dir/scaling/powerlaw.cpp.o.d"
  "/root/repo/src/scaling/sweep.cpp" "src/CMakeFiles/sgnn.dir/scaling/sweep.cpp.o" "gcc" "src/CMakeFiles/sgnn.dir/scaling/sweep.cpp.o.d"
  "/root/repo/src/store/bp_file.cpp" "src/CMakeFiles/sgnn.dir/store/bp_file.cpp.o" "gcc" "src/CMakeFiles/sgnn.dir/store/bp_file.cpp.o.d"
  "/root/repo/src/store/ddstore.cpp" "src/CMakeFiles/sgnn.dir/store/ddstore.cpp.o" "gcc" "src/CMakeFiles/sgnn.dir/store/ddstore.cpp.o.d"
  "/root/repo/src/store/serialize.cpp" "src/CMakeFiles/sgnn.dir/store/serialize.cpp.o" "gcc" "src/CMakeFiles/sgnn.dir/store/serialize.cpp.o.d"
  "/root/repo/src/tensor/checkpoint.cpp" "src/CMakeFiles/sgnn.dir/tensor/checkpoint.cpp.o" "gcc" "src/CMakeFiles/sgnn.dir/tensor/checkpoint.cpp.o.d"
  "/root/repo/src/tensor/gradcheck.cpp" "src/CMakeFiles/sgnn.dir/tensor/gradcheck.cpp.o" "gcc" "src/CMakeFiles/sgnn.dir/tensor/gradcheck.cpp.o.d"
  "/root/repo/src/tensor/memory_tracker.cpp" "src/CMakeFiles/sgnn.dir/tensor/memory_tracker.cpp.o" "gcc" "src/CMakeFiles/sgnn.dir/tensor/memory_tracker.cpp.o.d"
  "/root/repo/src/tensor/ops_elementwise.cpp" "src/CMakeFiles/sgnn.dir/tensor/ops_elementwise.cpp.o" "gcc" "src/CMakeFiles/sgnn.dir/tensor/ops_elementwise.cpp.o.d"
  "/root/repo/src/tensor/ops_index.cpp" "src/CMakeFiles/sgnn.dir/tensor/ops_index.cpp.o" "gcc" "src/CMakeFiles/sgnn.dir/tensor/ops_index.cpp.o.d"
  "/root/repo/src/tensor/ops_linalg.cpp" "src/CMakeFiles/sgnn.dir/tensor/ops_linalg.cpp.o" "gcc" "src/CMakeFiles/sgnn.dir/tensor/ops_linalg.cpp.o.d"
  "/root/repo/src/tensor/ops_reduce.cpp" "src/CMakeFiles/sgnn.dir/tensor/ops_reduce.cpp.o" "gcc" "src/CMakeFiles/sgnn.dir/tensor/ops_reduce.cpp.o.d"
  "/root/repo/src/tensor/ops_shape.cpp" "src/CMakeFiles/sgnn.dir/tensor/ops_shape.cpp.o" "gcc" "src/CMakeFiles/sgnn.dir/tensor/ops_shape.cpp.o.d"
  "/root/repo/src/tensor/shape.cpp" "src/CMakeFiles/sgnn.dir/tensor/shape.cpp.o" "gcc" "src/CMakeFiles/sgnn.dir/tensor/shape.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "src/CMakeFiles/sgnn.dir/tensor/tensor.cpp.o" "gcc" "src/CMakeFiles/sgnn.dir/tensor/tensor.cpp.o.d"
  "/root/repo/src/train/baseline.cpp" "src/CMakeFiles/sgnn.dir/train/baseline.cpp.o" "gcc" "src/CMakeFiles/sgnn.dir/train/baseline.cpp.o.d"
  "/root/repo/src/train/distributed.cpp" "src/CMakeFiles/sgnn.dir/train/distributed.cpp.o" "gcc" "src/CMakeFiles/sgnn.dir/train/distributed.cpp.o.d"
  "/root/repo/src/train/loss.cpp" "src/CMakeFiles/sgnn.dir/train/loss.cpp.o" "gcc" "src/CMakeFiles/sgnn.dir/train/loss.cpp.o.d"
  "/root/repo/src/train/optim.cpp" "src/CMakeFiles/sgnn.dir/train/optim.cpp.o" "gcc" "src/CMakeFiles/sgnn.dir/train/optim.cpp.o.d"
  "/root/repo/src/train/schedule.cpp" "src/CMakeFiles/sgnn.dir/train/schedule.cpp.o" "gcc" "src/CMakeFiles/sgnn.dir/train/schedule.cpp.o.d"
  "/root/repo/src/train/trainer.cpp" "src/CMakeFiles/sgnn.dir/train/trainer.cpp.o" "gcc" "src/CMakeFiles/sgnn.dir/train/trainer.cpp.o.d"
  "/root/repo/src/train/zero.cpp" "src/CMakeFiles/sgnn.dir/train/zero.cpp.o" "gcc" "src/CMakeFiles/sgnn.dir/train/zero.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/sgnn.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/sgnn.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
