# Empty compiler generated dependencies file for fig3_model_scaling.
# This may be replaced when dependencies are built.
