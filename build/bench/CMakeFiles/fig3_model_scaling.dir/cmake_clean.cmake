file(REMOVE_RECURSE
  "CMakeFiles/fig3_model_scaling.dir/fig3_model_scaling.cpp.o"
  "CMakeFiles/fig3_model_scaling.dir/fig3_model_scaling.cpp.o.d"
  "fig3_model_scaling"
  "fig3_model_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_model_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
