file(REMOVE_RECURSE
  "CMakeFiles/fig6_memory_breakdown.dir/fig6_memory_breakdown.cpp.o"
  "CMakeFiles/fig6_memory_breakdown.dir/fig6_memory_breakdown.cpp.o.d"
  "fig6_memory_breakdown"
  "fig6_memory_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_memory_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
