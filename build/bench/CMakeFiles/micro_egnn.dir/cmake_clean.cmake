file(REMOVE_RECURSE
  "CMakeFiles/micro_egnn.dir/micro_egnn.cpp.o"
  "CMakeFiles/micro_egnn.dir/micro_egnn.cpp.o.d"
  "micro_egnn"
  "micro_egnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_egnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
