# Empty compiler generated dependencies file for micro_egnn.
# This may be replaced when dependencies are built.
