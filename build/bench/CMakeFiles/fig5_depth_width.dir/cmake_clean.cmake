file(REMOVE_RECURSE
  "CMakeFiles/fig5_depth_width.dir/fig5_depth_width.cpp.o"
  "CMakeFiles/fig5_depth_width.dir/fig5_depth_width.cpp.o.d"
  "fig5_depth_width"
  "fig5_depth_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_depth_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
