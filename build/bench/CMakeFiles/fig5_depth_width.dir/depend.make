# Empty dependencies file for fig5_depth_width.
# This may be replaced when dependencies are built.
