file(REMOVE_RECURSE
  "CMakeFiles/tab1_datasets.dir/tab1_datasets.cpp.o"
  "CMakeFiles/tab1_datasets.dir/tab1_datasets.cpp.o.d"
  "tab1_datasets"
  "tab1_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
