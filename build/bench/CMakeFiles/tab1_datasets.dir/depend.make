# Empty dependencies file for tab1_datasets.
# This may be replaced when dependencies are built.
