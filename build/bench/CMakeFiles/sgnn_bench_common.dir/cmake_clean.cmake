file(REMOVE_RECURSE
  "CMakeFiles/sgnn_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/sgnn_bench_common.dir/bench_common.cpp.o.d"
  "libsgnn_bench_common.a"
  "libsgnn_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgnn_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
