# Empty compiler generated dependencies file for sgnn_bench_common.
# This may be replaced when dependencies are built.
