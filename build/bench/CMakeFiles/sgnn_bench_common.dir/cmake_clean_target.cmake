file(REMOVE_RECURSE
  "libsgnn_bench_common.a"
)
