# Empty dependencies file for fig4_data_scaling.
# This may be replaced when dependencies are built.
