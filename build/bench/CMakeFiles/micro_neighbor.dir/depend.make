# Empty dependencies file for micro_neighbor.
# This may be replaced when dependencies are built.
