file(REMOVE_RECURSE
  "CMakeFiles/micro_neighbor.dir/micro_neighbor.cpp.o"
  "CMakeFiles/micro_neighbor.dir/micro_neighbor.cpp.o.d"
  "micro_neighbor"
  "micro_neighbor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_neighbor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
