# Empty dependencies file for ext_transfer.
# This may be replaced when dependencies are built.
