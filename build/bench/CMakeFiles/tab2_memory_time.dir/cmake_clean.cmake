file(REMOVE_RECURSE
  "CMakeFiles/tab2_memory_time.dir/tab2_memory_time.cpp.o"
  "CMakeFiles/tab2_memory_time.dir/tab2_memory_time.cpp.o.d"
  "tab2_memory_time"
  "tab2_memory_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_memory_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
