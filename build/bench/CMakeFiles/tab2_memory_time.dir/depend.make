# Empty dependencies file for tab2_memory_time.
# This may be replaced when dependencies are built.
