# Empty compiler generated dependencies file for ablation_oversmoothing.
# This may be replaced when dependencies are built.
