file(REMOVE_RECURSE
  "CMakeFiles/ablation_oversmoothing.dir/ablation_oversmoothing.cpp.o"
  "CMakeFiles/ablation_oversmoothing.dir/ablation_oversmoothing.cpp.o.d"
  "ablation_oversmoothing"
  "ablation_oversmoothing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_oversmoothing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
