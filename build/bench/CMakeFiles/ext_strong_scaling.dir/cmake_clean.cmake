file(REMOVE_RECURSE
  "CMakeFiles/ext_strong_scaling.dir/ext_strong_scaling.cpp.o"
  "CMakeFiles/ext_strong_scaling.dir/ext_strong_scaling.cpp.o.d"
  "ext_strong_scaling"
  "ext_strong_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_strong_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
