// Reproduces Fig. 5: at a fixed 0.4 TB dataset, compare growing the model
// by DEPTH (more message-passing layers) against growing it by WIDTH
// (more neurons per layer) across matched parameter counts.
//
// Faithfulness note: HydraGNN stacks its conv layers sequentially (no
// residual shortcuts), which is what lets over-smoothing bite; this bench
// uses that configuration. Over-smoothing collapses the NODE FEATURES, so
// it attacks the tasks that read them — in this reproduction the
// graph-level energy head (our default equivariant force head reads edge
// geometry and is immune; see ablation_oversmoothing for that comparison
// and for the residual on/off axis). Checked shapes:
//   (1) depth series: energy error bottoms out by ~2-3 layers and then
//       RISES with more depth, while the feature spread collapses;
//   (2) width series at matched parameter counts keeps improving —
//       width is the productive scaling direction (the paper's
//       conclusion).

#include "bench_common.hpp"

int main() {
  using namespace sgnn;
  using namespace sgnn::bench;

  BenchReport report("fig5_depth_width");
  const Experiment experiment = make_experiment();
  const SweepProtocol protocol = sweep_protocol();
  const auto train_indices = experiment.dataset.subsample(
      experiment.split.train, paper_tb_to_bytes(0.4), /*proportional=*/true,
      /*seed=*/91);
  std::cerr << "[bench] fig5: " << train_indices.size()
            << " training graphs at " << paper_tb_label(0.4) << "\n";

  const std::int64_t base_width = 32;
  const std::vector<std::int64_t> depths = {1, 2, 3, 4, 6, 8};

  struct Row {
    const char* series;
    std::int64_t depth;
    std::int64_t width;
    SweepPoint point;
  };
  std::vector<Row> rows;

  // Depth series: fixed width, HydraGNN-style sequential stacking.
  std::vector<std::int64_t> depth_series_params;
  for (const auto depth : depths) {
    ModelConfig config;
    config.hidden_dim = base_width;
    config.num_layers = depth;
    config.residual = false;
    std::cerr << "[bench] fig5 depth point: " << depth << " layers x width "
              << base_width << "\n";
    rows.push_back({"depth", depth, base_width,
                    run_scaling_point(experiment.dataset, train_indices,
                                      experiment.split.test, config,
                                      protocol)});
    depth_series_params.push_back(config.parameter_count());
  }

  // Width series: fixed shallow depth (3, the paper's knee), widths chosen
  // to match the depth series' parameter counts.
  for (const auto target : depth_series_params) {
    ModelConfig config = ModelConfig::for_parameter_budget(target, 3);
    config.residual = false;
    std::cerr << "[bench] fig5 width point: width " << config.hidden_dim
              << " x 3 layers (~" << target << " params)\n";
    rows.push_back({"width", 3, config.hidden_dim,
                    run_scaling_point(experiment.dataset, train_indices,
                                      experiment.split.test, config,
                                      protocol)});
  }

  Table table({"Series", "Layers", "Width", "Params", "Test loss",
               "Energy MAE/atom", "Force MAE", "Feature spread"});
  for (const auto& row : rows) {
    table.add_row(
        {row.series, std::to_string(row.depth), std::to_string(row.width),
         Table::human_count(static_cast<double>(row.point.parameters)),
         Table::fixed(row.point.test_loss, 4),
         Table::fixed(row.point.energy_mae_per_atom, 4),
         Table::fixed(row.point.force_mae, 4),
         Table::scientific(row.point.feature_spread, 2)});
  }
  std::cout << table.to_ascii(
      "Fig. 5 — Depth vs width scaling at " + paper_tb_label(0.4) +
      " (sequential stacking, as in HydraGNN)");
  export_csv(table, "fig5_depth_width");

  // Shape checks.
  const auto split_at = static_cast<std::ptrdiff_t>(depths.size());
  const std::vector<Row> depth_rows(rows.begin(), rows.begin() + split_at);
  const std::vector<Row> width_rows(rows.begin() + split_at, rows.end());

  double best_shallow_energy = depth_rows[0].point.energy_mae_per_atom;
  for (std::size_t i = 0; i < depth_rows.size(); ++i) {
    if (depths[i] <= 3) {
      best_shallow_energy = std::min(
          best_shallow_energy, depth_rows[i].point.energy_mae_per_atom);
    }
  }
  const double deepest_energy = depth_rows.back().point.energy_mae_per_atom;

  int width_wins = 0;
  for (std::size_t i = 0; i < width_rows.size(); ++i) {
    if (width_rows[i].point.test_loss <=
        depth_rows[i].point.test_loss * 1.02) {
      ++width_wins;
    }
  }
  const double spread_ratio =
      depth_rows.front().point.feature_spread /
      std::max(depth_rows.back().point.feature_spread, 1e-300);

  Table verdict({"Check", "Value", "Paper expectation"});
  verdict.add_row({"width beats depth at matched params (loss)",
                   std::to_string(width_wins) + "/" +
                       std::to_string(width_rows.size()),
                   "width consistently better"});
  verdict.add_row({"energy MAE: 8 layers vs best <=3 layers",
                   Table::fixed(deepest_energy, 4) + " vs " +
                       Table::fixed(best_shallow_energy, 4),
                   "error rises beyond ~3 layers"});
  verdict.add_row({"feature spread collapse depth 1 -> 8",
                   Table::fixed(spread_ratio, 1) + "x",
                   "collapses (over-smoothing)"});
  std::cout << "\n" << verdict.to_ascii("Fig. 5 shape check");
  std::cout << "\nPaper claim (Sec. IV-C): width scaling consistently lowers "
               "loss; beyond three\nlayers deeper models get WORSE — "
               "over-smoothing persists at scale. Here the\neffect shows on "
               "the node-feature-dependent (energy) channel; the equivariant"
               "\nforce head reads edge geometry and sidesteps it (see "
               "ablation_oversmoothing).\n";

  report.add_table("series", table);
  report.add_table("verdict", verdict);
  report.add_value("width_wins", width_wins, BenchReport::Better::kNone);
  report.write();
  return 0;
}
