// Micro-benchmark of the neighbor-search substrate: brute force vs cell
// list across system sizes, locating the crossover that build_neighbors'
// size heuristic encodes.

#include <benchmark/benchmark.h>

#include "bench_gbench_main.hpp"

#include "sgnn/graph/neighbor.hpp"
#include "sgnn/util/rng.hpp"

namespace {

using namespace sgnn;

AtomicStructure bulk(std::int64_t atoms, Rng& rng) {
  AtomicStructure s;
  // Constant density: box grows with N^(1/3).
  const double box = 2.0 * std::cbrt(static_cast<double>(atoms));
  for (std::int64_t i = 0; i < atoms; ++i) {
    s.species.push_back(elements::kCu);
    s.positions.push_back(
        {rng.uniform(0, box), rng.uniform(0, box), rng.uniform(0, box)});
  }
  s.cell = {box, box, box};
  s.periodic = true;
  return s;
}

void BM_BruteForce(benchmark::State& state) {
  Rng rng(1);
  const AtomicStructure s = bulk(state.range(0), rng);
  const double cutoff = std::min(3.0, 0.49 * s.cell.x);
  for (auto _ : state) {
    benchmark::DoNotOptimize(brute_force_neighbors(s, cutoff).size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BruteForce)->Arg(32)->Arg(128)->Arg(512)->Arg(2048);

void BM_CellList(benchmark::State& state) {
  Rng rng(1);
  const AtomicStructure s = bulk(state.range(0), rng);
  const double cutoff = std::min(3.0, 0.49 * s.cell.x);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cell_list_neighbors(s, cutoff).size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CellList)->Arg(32)->Arg(128)->Arg(512)->Arg(2048)->Arg(8192);

}  // namespace

SGNN_GBENCH_MAIN("micro_neighbor");
