#pragma once

// Structured, machine-readable bench output: every bench binary builds one
// BenchReport and writes BENCH_<name>.json next to its ASCII tables. The
// report embeds the metrics snapshot (step-time quantiles, peak memory,
// comm exposed/overlapped seconds), the kernel profile with roofline
// utilization, and the machine calibration, so two runs can be diffed by
// tools/sgnn_bench_compare without re-parsing ASCII.

#include <map>
#include <string>
#include <vector>

#include "sgnn/util/table.hpp"

namespace sgnn::bench {

/// Directory JSON/CSV bench artifacts go to: $SGNN_BENCH_OUT_DIR when set
/// (must already exist), else the current working directory.
std::string bench_out_dir();

/// Joins bench_out_dir() with `filename`.
std::string bench_out_path(const std::string& filename);

class BenchReport {
 public:
  /// Which direction of change sgnn_bench_compare treats as a regression.
  enum class Better { kLower, kHigher, kNone };

  /// Creating the report also enables (and resets) the kernel profiler, so
  /// everything the bench runs afterwards is attributed in the profile
  /// section. `name` becomes the BENCH_<name>.json stem.
  explicit BenchReport(std::string name);

  /// Headline comparable scalars (throughput, step p99, peak bytes, ...).
  /// `better` travels with the value so the compare tool knows the sign.
  void add_value(const std::string& key, double value, Better better);
  /// Free-form context (grid shape, flags); not compared.
  void add_info(const std::string& key, const std::string& value);
  void add_info(const std::string& key, double value);
  /// Embeds an ASCII table cell-for-cell under "tables".
  void add_table(const std::string& key, const Table& table);

  const std::string& name() const { return name_; }

  /// Serializes the report, capturing the metrics snapshot, the kernel
  /// profile, and the machine calibration at call time.
  std::string to_json() const;

  /// Writes BENCH_<name>.json into bench_out_dir(). Returns the path, or ""
  /// after printing the strerror(errno) diagnostics on failure.
  std::string write() const;

 private:
  struct Value {
    double value = 0;
    Better better = Better::kNone;
  };

  std::string name_;
  std::map<std::string, Value> values_;
  std::map<std::string, std::string> info_;
  std::map<std::string, Table> tables_;
};

}  // namespace sgnn::bench
