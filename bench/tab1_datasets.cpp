// Reproduces Tab. I: per-source composition of the aggregated dataset
// (# nodes, # edges, # graphs, bytes). The synthetic sources mirror each
// original's geometry class, element palette and byte share; the table
// also extrapolates each row back to paper scale for direct comparison
// with the published numbers.

#include "bench_common.hpp"

int main() {
  using namespace sgnn;
  using namespace sgnn::bench;

  BenchReport report("tab1_datasets");
  const Experiment experiment = make_experiment();
  const auto& dataset = experiment.dataset;

  Table table({"Data Source", "# of Nodes", "# of Edges", "# of Graphs",
               "Size", "Nodes/Graph", "Edges/Node"});
  std::int64_t nodes = 0;
  std::int64_t edges = 0;
  std::int64_t graphs = 0;
  for (const auto source : all_sources()) {
    const auto& stats = dataset.stats(source);
    nodes += stats.num_nodes;
    edges += stats.num_edges;
    graphs += stats.num_graphs;
    table.add_row(
        {source_spec(source).name,
         Table::human_count(static_cast<double>(stats.num_nodes)),
         Table::human_count(static_cast<double>(stats.num_edges)),
         Table::human_count(static_cast<double>(stats.num_graphs)),
         Table::human_bytes(static_cast<double>(stats.bytes)),
         Table::fixed(static_cast<double>(stats.num_nodes) /
                          static_cast<double>(stats.num_graphs),
                      1),
         Table::fixed(static_cast<double>(stats.num_edges) /
                          static_cast<double>(stats.num_nodes),
                      1)});
  }
  table.add_row({"TOTAL", Table::human_count(static_cast<double>(nodes)),
                 Table::human_count(static_cast<double>(edges)),
                 Table::human_count(static_cast<double>(graphs)),
                 Table::human_bytes(static_cast<double>(dataset.total_bytes())),
                 "-", "-"});

  std::cout << table.to_ascii(
      "Tab. I — Aggregated dataset composition (scaled: 1 paper-TB == " +
      Table::human_bytes(kBytesPerPaperTB * bench_scale()) + ")");
  export_csv(table, "tab1_datasets");

  // Paper-scale extrapolation: multiply graph counts by the byte ratio.
  const double blowup =
      (1.2 * 1024 * 1024 * 1024 * 1024.0) /
      static_cast<double>(dataset.total_bytes());
  Table extrapolated({"Data Source", "Graphs @ paper scale",
                      "Paper reports", "Bytes @ paper scale",
                      "Paper reports "});
  const std::vector<std::pair<std::string, std::string>> paper = {
      {"4.96 M", "25 GB"},
      {"4.20 M", "25 GB"},
      {"20.99 M", "726 GB"},
      {"8.83 M", "395 GB"},
      {"1.58 M", "17 GB"},
  };
  std::size_t row = 0;
  for (const auto source : all_sources()) {
    const auto& stats = dataset.stats(source);
    extrapolated.add_row(
        {source_spec(source).name,
         Table::human_count(static_cast<double>(stats.num_graphs) * blowup),
         paper[row].first,
         Table::human_bytes(static_cast<double>(stats.bytes) * blowup),
         paper[row].second});
    ++row;
  }
  std::cout << "\n"
            << extrapolated.to_ascii(
                   "Tab. I cross-check — extrapolated to 1.2 TB vs published");

  report.add_table("composition", table);
  report.add_table("extrapolated", extrapolated);
  report.add_value("total_nodes", static_cast<double>(nodes),
                   BenchReport::Better::kNone);
  report.add_value("total_edges", static_cast<double>(edges),
                   BenchReport::Better::kNone);
  report.add_value("total_graphs", static_cast<double>(graphs),
                   BenchReport::Better::kNone);
  report.write();
  return 0;
}
