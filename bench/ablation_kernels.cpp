// Ablation: HydraGNN-style flexible message passing — the same backbone
// trained with three interaction kernels (EGNN / SchNet CFConv / GAT edge
// attention) at matched width and depth on the same data. The paper adopts
// the EGNN kernel from HydraGNN-GFM (Sec. II-B / III-B); this bench shows
// what that architectural choice buys on the aggregated dataset.

#include "bench_common.hpp"

int main() {
  using namespace sgnn;
  using namespace sgnn::bench;

  BenchReport report("ablation_kernels");
  const Experiment experiment = make_experiment();
  const SweepProtocol protocol = sweep_protocol();
  const auto train_indices = experiment.dataset.subsample(
      experiment.split.train, paper_tb_to_bytes(0.4), true, 91);
  std::cerr << "[bench] kernel ablation on " << train_indices.size()
            << " graphs\n";

  const std::vector<MessagePassingKernel> kernels = {
      MessagePassingKernel::kEGNN, MessagePassingKernel::kSchNet,
      MessagePassingKernel::kGAT};

  Table table({"Kernel", "Width", "Params", "Test loss", "Energy MAE/atom",
               "Force MAE", "Seconds"});
  for (const std::int64_t width : {24, 48}) {
    for (const auto kernel : kernels) {
      ModelConfig config;
      config.hidden_dim = width;
      config.num_layers = 3;
      config.kernel = kernel;
      std::cerr << "[bench] kernel " << kernel_name(kernel) << " width "
                << width << "...\n";
      const SweepPoint point =
          run_scaling_point(experiment.dataset, train_indices,
                            experiment.split.test, config, protocol);
      table.add_row({kernel_name(kernel), std::to_string(width),
                     Table::human_count(static_cast<double>(point.parameters)),
                     Table::fixed(point.test_loss, 4),
                     Table::fixed(point.energy_mae_per_atom, 4),
                     Table::fixed(point.force_mae, 4),
                     Table::fixed(point.seconds, 1)});
    }
  }
  std::cout << table.to_ascii(
      "Ablation — message-passing kernels at matched width/depth (" +
      paper_tb_label(0.4) + ")");
  std::cout << "\nPaper context: HydraGNN's flexible MPNN layers let the "
               "study pick EGNN for its\nE(n) equivariance; this ablation "
               "keeps everything else fixed and swaps the\nkernel.\n";

  report.add_table("kernel_sweep", table);
  report.write();
  return 0;
}
