// Closed-loop load generation against sgnn::serve. Four phases:
//
//   1. Sustained load: concurrent closed-loop clients drive >= 1e5 requests
//      (scaled by SGNN_BENCH_SCALE) over a structure pool, with one
//      zero-downtime weight swap mid-stream. Headline numbers — throughput
//      and latency p50/p95/p99 — are read back from the sgnn::obs metrics
//      registry (serve.requests.completed, serve.latency_seconds), not from
//      bench-local stopwatches, so the report also validates the
//      instrumentation the server ships with.
//   2. Cache hit vs recompute: per-request latency of a resident structure
//      versus a fresh one (the cache-design target is >= 10x).
//   3. Dynamic batching vs batch-size-1: same offered load, two servers
//      differing only in max_batch_graphs.
//   4. Admission control under a burst that overflows a tiny queue.
//
// Every phase's numbers land in BENCH_serve_latency.json for the
// sgnn_bench_compare regression gate.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

#include "bench_common.hpp"
#include "sgnn/nn/model_io.hpp"
#include "sgnn/serve/server.hpp"
#include "sgnn/util/rng.hpp"

namespace {

using namespace sgnn;
using namespace sgnn::bench;
using namespace sgnn::serve;
using Clock = std::chrono::steady_clock;

AtomicStructure synthetic_structure(std::int64_t atoms, Rng& rng) {
  AtomicStructure s;
  const int palette[] = {elements::kH, elements::kC, elements::kN,
                         elements::kO, elements::kSi};
  const double box = 3.0 + 0.4 * static_cast<double>(atoms);
  for (std::int64_t i = 0; i < atoms; ++i) {
    s.species.push_back(palette[rng.uniform_index(5)]);
    s.positions.push_back(
        {rng.uniform(0, box), rng.uniform(0, box), rng.uniform(0, box)});
  }
  return s;
}

std::vector<AtomicStructure> structure_pool(std::size_t count,
                                            std::uint64_t seed) {
  Rng rng(seed);
  std::vector<AtomicStructure> pool;
  for (std::size_t i = 0; i < count; ++i) {
    pool.push_back(synthetic_structure(8 + static_cast<std::int64_t>(i % 12), rng));
  }
  return pool;
}

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Closed-loop clients: each thread keeps exactly one request in flight,
/// drawing round-robin from the pool. Returns {completed, failed}.
std::pair<std::int64_t, std::int64_t> drive(Server& server,
                                            const std::vector<AtomicStructure>& pool,
                                            int clients, std::int64_t total,
                                            double force_share) {
  std::atomic<std::int64_t> completed{0};
  std::atomic<std::int64_t> failed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      const std::int64_t share = total / clients + (t < total % clients);
      for (std::int64_t i = 0; i < share; ++i) {
        const std::size_t pick =
            (static_cast<std::size_t>(t) * 131 + static_cast<std::size_t>(i)) %
            pool.size();
        const bool forces =
            force_share > 0 &&
            static_cast<double>(i % 100) < 100 * force_share;
        try {
          server.submit({pool[pick], forces}).get();
          completed.fetch_add(1, std::memory_order_relaxed);
        } catch (const std::exception&) {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  return {completed.load(), failed.load()};
}

}  // namespace

int main() {
  BenchReport report("serve_latency");
  const double scale = bench_scale();

  ModelConfig config;
  config.hidden_dim = 16;
  config.num_layers = 2;
  config.seed = 31;
  const EGNNModel reference(config);
  const std::string payload = model_payload_bytes(reference);

  ModelConfig swapped_config = config;
  swapped_config.seed = 32;
  const std::string swapped_payload =
      model_payload_bytes(EGNNModel(swapped_config));

  auto& registry = obs::MetricsRegistry::instance();

  // -------------------------------------------------------------- phase 1
  // Sustained closed-loop load over a pool small enough that steady state
  // is cache-dominated (the serving regime: repeated structures), with one
  // weight swap mid-stream. Failures (torn swaps, shed requests) would
  // surface as failed futures; the closed loop never overruns the queue.
  const auto total_requests =
      static_cast<std::int64_t>(100000 * scale);
  const int clients = 4;
  std::cerr << "[bench] phase 1: " << total_requests
            << " closed-loop requests...\n";
  const std::vector<AtomicStructure> pool = structure_pool(48, 101);
  std::int64_t load_completed = 0;
  std::int64_t load_failed = 0;
  double load_seconds = 0;
  {
    ServerOptions options;
    options.num_workers = 2;
    Server server(config, payload, options);
    registry.reset();  // isolate this phase in the registry

    std::atomic<bool> swapped{false};
    std::thread swapper([&] {
      // Swap once the load is demonstrably in flight, then keep serving.
      while (!swapped.load()) {
        if (registry.counter("serve.requests.completed").value() >=
            total_requests / 2) {
          server.swap_weights(swapped_payload);
          swapped.store(true);
        } else {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
    });

    const Clock::time_point begin = Clock::now();
    const auto [completed, failed] =
        drive(server, pool, clients, total_requests, /*force_share=*/0.2);
    load_seconds = seconds_between(begin, Clock::now());
    swapped.store(true);  // in case the load finished before the trigger
    swapper.join();
    load_completed = completed;
    load_failed = failed;
  }

  // Headline latency/throughput read back from the server's own metrics.
  const obs::MetricsSnapshot snapshot = registry.snapshot();
  const obs::Histogram::Snapshot latency =
      snapshot.histograms.at("serve.latency_seconds");
  const double completed_by_registry =
      static_cast<double>(snapshot.counters.at("serve.requests.completed"));
  const double throughput = completed_by_registry / load_seconds;
  const auto cache_hits =
      static_cast<double>(snapshot.counters.at("serve.cache.hits"));

  Table load_table({"Requests", "Failed", "Throughput req/s", "p50 us",
                    "p95 us", "p99 us", "Cache hit %"});
  load_table.add_row(
      {std::to_string(load_completed), std::to_string(load_failed),
       Table::fixed(throughput, 0), Table::fixed(1e6 * latency.quantile(0.50), 1),
       Table::fixed(1e6 * latency.quantile(0.95), 1),
       Table::fixed(1e6 * latency.quantile(0.99), 1),
       Table::fixed(100 * cache_hits / completed_by_registry, 1)});
  std::cout << load_table.to_ascii("Serve — sustained closed-loop load (" +
                                   std::to_string(clients) +
                                   " clients, 1 weight swap mid-stream)");

  report.add_value("requests_total", static_cast<double>(load_completed),
                   BenchReport::Better::kHigher);
  report.add_value("failed_requests", static_cast<double>(load_failed),
                   BenchReport::Better::kLower);
  report.add_value("throughput_rps", throughput, BenchReport::Better::kHigher);
  report.add_value("latency_p50_s", latency.quantile(0.50),
                   BenchReport::Better::kLower);
  report.add_value("latency_p95_s", latency.quantile(0.95),
                   BenchReport::Better::kLower);
  report.add_value("latency_p99_s", latency.quantile(0.99),
                   BenchReport::Better::kLower);

  // -------------------------------------------------------------- phase 2
  // Cache hit vs recompute, measured per request on one server: the same
  // structure repeatedly (every request after the first is a hit) versus a
  // fresh structure each time.
  const auto probe_requests =
      std::max<std::int64_t>(64, static_cast<std::int64_t>(2000 * scale));
  std::cerr << "[bench] phase 2: hit vs recompute (" << probe_requests
            << " each)...\n";
  double hit_seconds = 0;
  double miss_seconds = 0;
  {
    ServerOptions options;
    options.num_workers = 1;
    options.cache_capacity = 1u << 20;  // never evict during the probe
    Server server(config, payload, options);

    const std::vector<AtomicStructure> fresh =
        structure_pool(static_cast<std::size_t>(probe_requests), 202);
    Clock::time_point begin = Clock::now();
    for (const auto& structure : fresh) {
      server.submit({structure, false}).get();
    }
    miss_seconds = seconds_between(begin, Clock::now());

    const AtomicStructure resident = fresh.front();
    begin = Clock::now();
    for (std::int64_t i = 0; i < probe_requests; ++i) {
      server.submit({resident, false}).get();
    }
    hit_seconds = seconds_between(begin, Clock::now());
  }
  const double hit_us = 1e6 * hit_seconds / static_cast<double>(probe_requests);
  const double miss_us =
      1e6 * miss_seconds / static_cast<double>(probe_requests);
  const double hit_speedup = miss_us / hit_us;

  Table cache_table({"Path", "Mean us/request"});
  cache_table.add_row({"recompute (miss)", Table::fixed(miss_us, 1)});
  cache_table.add_row({"cache hit", Table::fixed(hit_us, 1)});
  std::cout << cache_table.to_ascii("Serve — cache hit vs recompute (" +
                                    Table::fixed(hit_speedup, 1) + "x)");
  report.add_value("cache_hit_speedup", hit_speedup,
                   BenchReport::Better::kHigher);
  report.add_info("cache_hit_us", hit_us);
  report.add_info("cache_miss_us", miss_us);

  // -------------------------------------------------------------- phase 3
  // Dynamic batching vs batch-size-1: identical offered load (8 closed-loop
  // clients, cache off so every request is computed), one worker, only
  // max_batch_graphs differs.
  const auto batch_requests =
      std::max<std::int64_t>(256, static_cast<std::int64_t>(4000 * scale));
  std::cerr << "[bench] phase 3: batched vs batch-1 (" << batch_requests
            << " each)...\n";
  const auto batch_throughput = [&](std::int64_t max_batch_graphs) {
    ServerOptions options;
    options.num_workers = 1;
    options.max_batch_graphs = max_batch_graphs;
    options.cache_capacity = 0;
    Server server(config, payload, options);
    const Clock::time_point begin = Clock::now();
    const auto [completed, failed] =
        drive(server, pool, /*clients=*/8, batch_requests, /*force_share=*/0);
    const double seconds = seconds_between(begin, Clock::now());
    return std::make_pair(static_cast<double>(completed - failed) / seconds,
                          failed);
  };
  const auto [batched_rps, batched_failed] = batch_throughput(16);
  const auto [single_rps, single_failed] = batch_throughput(1);
  const double batching_speedup = batched_rps / single_rps;

  Table batch_table({"Mode", "Throughput req/s", "Failed"});
  batch_table.add_row({"dynamic batching (<=16)", Table::fixed(batched_rps, 0),
                       std::to_string(batched_failed)});
  batch_table.add_row({"batch size 1", Table::fixed(single_rps, 0),
                       std::to_string(single_failed)});
  std::cout << batch_table.to_ascii("Serve — dynamic batching vs batch-1 (" +
                                    Table::fixed(batching_speedup, 2) + "x)");
  report.add_value("batched_throughput_rps", batched_rps,
                   BenchReport::Better::kHigher);
  report.add_value("batch1_throughput_rps", single_rps,
                   BenchReport::Better::kHigher);
  report.add_value("batching_speedup", batching_speedup,
                   BenchReport::Better::kHigher);

  // -------------------------------------------------------------- phase 4
  // Admission control: open-loop burst into a 4-deep queue. The shed share
  // is workload-dependent; what the gate pins is that shedding happens
  // (bounded memory) and nothing admitted is lost.
  std::cerr << "[bench] phase 4: admission control burst...\n";
  std::int64_t shed = 0;
  std::int64_t admitted = 0;
  {
    ServerOptions options;
    options.num_workers = 1;
    options.max_queue = 4;
    options.max_batch_graphs = 1;
    options.cache_capacity = 0;
    Server server(config, payload, options);
    std::vector<std::future<InferenceResult>> futures;
    const std::vector<AtomicStructure> burst = structure_pool(128, 303);
    for (const auto& structure : burst) {
      try {
        futures.push_back(server.submit({structure, true}));
      } catch (const RejectedError&) {
        ++shed;
      }
    }
    for (auto& future : futures) future.get();
    admitted = static_cast<std::int64_t>(futures.size());
  }
  std::cout << "\nAdmission control: " << admitted << " admitted, " << shed
            << " shed (queue depth 4, burst 128); all admitted completed.\n";
  report.add_info("burst_admitted", static_cast<double>(admitted));
  report.add_info("burst_shed", static_cast<double>(shed));

  report.add_info("scale", scale);
  report.add_info("clients", static_cast<double>(clients));
  report.add_info("pool_structures", static_cast<double>(pool.size()));
  report.add_info("hidden_dim", static_cast<double>(config.hidden_dim));
  report.write();
  return load_failed == 0 && hit_speedup >= 10.0 && batching_speedup > 1.0
             ? 0
             : 1;
}
