#pragma once

// Shared infrastructure for the paper-artifact bench binaries.
//
// Scale mapping: the paper trains on 0.1-1.2 TB with 0.1M-2B parameters on
// 128 A100s; this repository reproduces the experiment *shapes* on one CPU.
// One "paper TB" of data maps to kBytesPerPaperTB real bytes (the per-source
// mixture, graph statistics and byte accounting are faithful; only the
// volume is scaled), and the model-size axis is compressed onto widths this
// machine can train. Every bench prints both scales.

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "sgnn/sgnn.hpp"
#include "sgnn/util/parse.hpp"

namespace sgnn::bench {

/// Real bytes standing in for one paper terabyte (before SGNN_BENCH_SCALE).
inline constexpr double kBytesPerPaperTB = 4.0 * 1024 * 1024;

/// Multiplier from the environment: SGNN_BENCH_SCALE=0.25 runs a quick
/// smoke version, =4 a heavier one. Default 1.
inline double bench_scale() {
  if (const char* env = std::getenv("SGNN_BENCH_SCALE")) {
    double value = 0;
    if (util::parse_double(env, value) && value > 0) return value;
  }
  return 1.0;
}

inline std::uint64_t paper_tb_to_bytes(double paper_tb) {
  return static_cast<std::uint64_t>(paper_tb * kBytesPerPaperTB *
                                    bench_scale());
}

inline std::string paper_tb_label(double paper_tb) {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os.precision(1);
  os << std::fixed << paper_tb << " TB*";
  return os.str();
}

/// The shared experimental setup of Sec. IV: one aggregated dataset at the
/// "1.2 TB" point, one fixed held-out test set drawn from it.
struct Experiment {
  AggregatedDataset dataset;
  AggregatedDataset::Split split;  ///< test = fixed held-out set
};

inline Experiment make_experiment(std::uint64_t seed = 2025) {
  const ReferencePotential potential;
  DatasetOptions options;
  options.target_bytes = paper_tb_to_bytes(1.2);
  options.seed = seed;
  Experiment experiment{AggregatedDataset::generate(options, potential), {}};
  experiment.split = experiment.dataset.split(/*test_fraction=*/0.18, 4242);
  return experiment;
}

/// Training protocol shared by the scaling benches (paper Sec. III-B:
/// fixed 10-epoch budget; hyperparameters held constant across the grid).
inline SweepProtocol sweep_protocol() {
  SweepProtocol protocol;
  protocol.train.epochs = 10;
  protocol.train.batch_size = 8;
  protocol.train.adam.learning_rate = 2e-3;
  protocol.train.lr_decay = 0.9;
  return protocol;
}

/// Model-size grid of the sweeps: widths at depth 3 (the paper scales width
/// for the model-size axis). Paper labels compress the 0.1M-2B axis onto
/// this machine's feasible range.
struct ModelPoint {
  std::int64_t hidden;
  const char* paper_label;
};

inline const std::vector<ModelPoint>& model_grid() {
  static const std::vector<ModelPoint> grid = {
      {8, "0.1M*"}, {16, "1M*"}, {32, "10M*"}, {64, "100M*"}, {128, "2B*"}};
  return grid;
}

/// Dataset-size grid (paper: 0.1 to 1.2 TB). The 0.1 point is sampled
/// non-proportionally (cheap molecular sources first) — the distribution-
/// mismatch mechanism the paper conjectures for its 0.1 TB outlier.
struct DataPoint {
  double paper_tb;
  bool proportional;
};

inline const std::vector<DataPoint>& data_grid() {
  static const std::vector<DataPoint> grid = {{0.1, false},
                                              {0.2, true},
                                              {0.4, true},
                                              {0.8, true},
                                              {1.2, true}};
  return grid;
}

/// The full (model x data) grid is shared by Fig. 3 and Fig. 4; it is
/// computed once and cached on disk so the two bench binaries do not pay
/// for it twice. The cache key encodes every relevant knob.
std::vector<SweepPoint> shared_scaling_grid();

/// Grid layout: data-major, model-minor (the order shared_scaling_grid
/// produces and caches).
inline const SweepPoint& grid_at(const std::vector<SweepPoint>& grid,
                                 std::size_t data_index,
                                 std::size_t model_index) {
  return grid.at(data_index * model_grid().size() + model_index);
}

/// Writes a bench table as CSV next to the ASCII output (plotting input);
/// prints where it went. Honors SGNN_BENCH_OUT_DIR like the JSON reports.
inline void export_csv(const Table& table, const std::string& artifact) {
  const std::string path = bench_out_path("sgnn_" + artifact + ".csv");
  errno = 0;
  std::ofstream out(path);
  if (!out.is_open()) {
    std::cerr << "[bench] could not write " << path << ": "
              << std::strerror(errno) << "\n";
    return;
  }
  out << table.to_csv();
  std::cerr << "[bench] wrote " << path << "\n";
}

/// Formats a parameter count with its compressed paper-scale label.
inline std::string model_label(const SweepPoint& point) {
  for (const auto& m : model_grid()) {
    if (point.hidden_dim == m.hidden) {
      return std::string(m.paper_label) + " (" +
             Table::human_count(static_cast<double>(point.parameters)) +
             " actual)";
    }
  }
  return Table::human_count(static_cast<double>(point.parameters));
}

}  // namespace sgnn::bench
