// Micro-benchmarks of the sgnn::obs instrumentation primitives. The
// headline number is BM_SpanDisabled: with the recorder off, a TraceSpan
// must cost a single relaxed atomic load + branch, so instrumented hot
// paths (collectives, data loading, neighbor builds) are free in normal
// runs. Compare against BM_SpanEnabled for the cost of an actual record.

#include <benchmark/benchmark.h>

#include "bench_gbench_main.hpp"

#include "sgnn/obs/metrics.hpp"
#include "sgnn/obs/trace.hpp"

namespace {

using namespace sgnn;

void BM_SpanDisabled(benchmark::State& state) {
  obs::TraceRecorder::instance().disable();
  for (auto _ : state) {
    obs::TraceSpan span("bench", "micro");
    benchmark::DoNotOptimize(span.active());
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_TracingEnabledCheck(benchmark::State& state) {
  // The raw branch a disabled span reduces to.
  obs::TraceRecorder::instance().disable();
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::tracing_enabled());
  }
}
BENCHMARK(BM_TracingEnabledCheck);

void BM_SpanEnabled(benchmark::State& state) {
  obs::TraceRecorder::instance().clear();
  obs::TraceRecorder::instance().enable();
  for (auto _ : state) {
    obs::TraceSpan span("bench", "micro");
    benchmark::DoNotOptimize(span.active());
  }
  obs::TraceRecorder::instance().disable();
  obs::TraceRecorder::instance().clear();
}
BENCHMARK(BM_SpanEnabled);

void BM_SpanEnabledWithArgs(benchmark::State& state) {
  obs::TraceRecorder::instance().clear();
  obs::TraceRecorder::instance().enable();
  for (auto _ : state) {
    obs::TraceSpan span("bench", "micro");
    span.arg("bytes", std::int64_t{4096}).arg("rate", 2.5);
  }
  obs::TraceRecorder::instance().disable();
  obs::TraceRecorder::instance().clear();
}
BENCHMARK(BM_SpanEnabledWithArgs);

void BM_CounterAdd(benchmark::State& state) {
  obs::Counter& counter =
      obs::MetricsRegistry::instance().counter("micro.counter");
  for (auto _ : state) {
    counter.add(1);
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_CounterAdd)->Threads(1)->Threads(4);

void BM_CounterLookupAndAdd(benchmark::State& state) {
  // Cost when the call site re-resolves the name each time instead of
  // caching the Counter reference.
  for (auto _ : state) {
    obs::MetricsRegistry::instance().counter("micro.lookup").add(1);
  }
}
BENCHMARK(BM_CounterLookupAndAdd);

void BM_GaugeSet(benchmark::State& state) {
  obs::Gauge& gauge = obs::MetricsRegistry::instance().gauge("micro.gauge");
  double v = 0.0;
  for (auto _ : state) {
    gauge.set(v);
    v += 1.0;
  }
  benchmark::DoNotOptimize(gauge.value());
}
BENCHMARK(BM_GaugeSet);

void BM_HistogramObserve(benchmark::State& state) {
  obs::Histogram& histogram =
      obs::MetricsRegistry::instance().histogram("micro.hist");
  double v = 1e-6;
  for (auto _ : state) {
    histogram.observe(v);
    v = v < 100.0 ? v * 1.001 : 1e-6;
  }
}
BENCHMARK(BM_HistogramObserve)->Threads(1)->Threads(4);

}  // namespace

SGNN_GBENCH_MAIN("micro_obs");
