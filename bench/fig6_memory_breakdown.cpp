// Reproduces Fig. 6: peak-memory breakdown of GNN training under
//   (a) vanilla data-parallel training,
//   (b) + activation checkpointing,
//   (c) + ZeRO-1 optimizer sharding (4 ranks, the paper's 4xA100 node).
// Checked shapes:
//   (1) in (a) activations dominate the peak (~3/4 in the paper) and the
//       peak occurs at the start of the backward pass;
//   (2) checkpointing removes activations as the dominant term and moves
//       the peak to the weight-update (optimizer) phase;
//   (3) ZeRO cuts the optimizer-state term by ~num_ranks.

#include "bench_common.hpp"

namespace {

struct Setting {
  const char* name;
  bool checkpoint;
  sgnn::DistStrategy strategy;
};

}  // namespace

int main() {
  using namespace sgnn;
  using namespace sgnn::bench;

  BenchReport bench_report("fig6_memory_breakdown");
  const Experiment experiment = make_experiment();
  const auto subset = experiment.dataset.subsample(
      experiment.split.train, paper_tb_to_bytes(0.2), true, 91);

  const int kRanks = 4;
  const std::vector<Setting> settings = {
      {"Vanilla DDP", false, DistStrategy::kDDP},
      {"+ Activation ckpt", true, DistStrategy::kDDP},
      {"+ ZeRO optimizer", true, DistStrategy::kZeRO1},
  };

  ModelConfig config;
  config.hidden_dim = 96;
  config.num_layers = 4;

  Table breakdown({"Setting", "Peak total", "Activations", "Weights",
                   "Gradients", "Optimizer states", "Workspace",
                   "Peak phase"});
  Table phases({"Setting", "Peak in forward", "Peak in backward",
                "Peak in weight update"});
  Table telemetry({"Setting", "Steps", "p50 step", "p95 step", "Atoms/s",
                   "Peak mem (registry)"});
  std::vector<std::int64_t> peaks;

  for (const auto& setting : settings) {
    DistTrainOptions options;
    options.num_ranks = kRanks;
    options.strategy = setting.strategy;
    options.activation_checkpointing = setting.checkpoint;
    options.epochs = 1;
    options.per_rank_batch_size = 2;

    std::cerr << "[bench] fig6: running '" << setting.name << "'...\n";
    DDStore store(kRanks);
    {
      // Fresh copies of the subset graphs for the store.
      std::vector<MolecularGraph> graphs;
      for (const auto* g : experiment.dataset.view(subset)) {
        graphs.push_back(*g);
      }
      store.insert(std::move(graphs));
    }
    // Per-setting telemetry comes from the obs registry, which every
    // training step feeds; reset isolates this setting's run.
    obs::MetricsRegistry::instance().reset();
    DistributedTrainer trainer(config, options);
    const DistTrainReport report = trainer.train(store);
    peaks.push_back(report.peak_memory.total());

    const obs::MetricsSnapshot metrics =
        obs::MetricsRegistry::instance().snapshot();
    const obs::Histogram::Snapshot step_seconds =
        metrics.histograms.at("step.seconds");
    telemetry.add_row(
        {setting.name, std::to_string(metrics.counters.at("train.steps")),
         Table::scientific(step_seconds.quantile(0.50), 2) + " s",
         Table::scientific(step_seconds.quantile(0.95), 2) + " s",
         Table::human_count(metrics.gauges.at("train.atoms_per_sec")),
         Table::human_bytes(metrics.gauges.at("mem.peak_bytes"))});

    const auto pct = [&](MemCategory c) {
      return Table::fixed(100.0 * report.peak_memory.fraction(c), 1) + "%";
    };
    breakdown.add_row(
        {setting.name,
         Table::human_bytes(static_cast<double>(report.peak_memory.total())),
         pct(MemCategory::kActivation), pct(MemCategory::kWeight),
         pct(MemCategory::kGradient), pct(MemCategory::kOptimizerState),
         pct(MemCategory::kWorkspace), train_phase_name(report.peak_phase)});
    phases.add_row(
        {setting.name,
         Table::human_bytes(static_cast<double>(report.peak_forward)),
         Table::human_bytes(static_cast<double>(report.peak_backward)),
         Table::human_bytes(static_cast<double>(report.peak_optimizer))});
  }

  std::cout << phases.to_ascii(
      "Fig. 6(a) — peak memory per training stage");
  std::cout << "\n";
  std::cout << telemetry.to_ascii(
      "Per-step telemetry (from the sgnn::obs metrics registry)");
  std::cout << "\n";
  std::cout << breakdown.to_ascii(
      "Fig. 6 — Peak memory breakdown (4 simulated ranks, width " +
      std::to_string(config.hidden_dim) + ", " +
      std::to_string(config.num_layers) + " layers)");

  Table relative({"Setting", "Relative peak memory", "Paper reports"});
  const std::vector<const char*> paper_peak = {"100%", "42%", "27%"};
  for (std::size_t i = 0; i < settings.size(); ++i) {
    relative.add_row(
        {settings[i].name,
         Table::fixed(100.0 * static_cast<double>(peaks[i]) /
                          static_cast<double>(peaks[0]),
                      1) +
             "%",
         paper_peak[i]});
  }
  std::cout << "\n" << relative.to_ascii("Fig. 6 / Tab. II — relative peak");
  std::cout << "\nPaper claims: activations are 76.9% of the vanilla peak "
               "(peak at start of\nbackward); checkpointing shifts the peak "
               "to the weight update; ZeRO shards\noptimizer states across "
               "the 4 GPUs.\n";

  bench_report.add_table("phases", phases);
  bench_report.add_table("telemetry", telemetry);
  bench_report.add_table("breakdown", breakdown);
  bench_report.add_table("relative_peak", relative);
  bench_report.add_value("vanilla_peak_bytes", static_cast<double>(peaks[0]),
                         BenchReport::Better::kLower);
  bench_report.add_value("zero_peak_bytes", static_cast<double>(peaks.back()),
                         BenchReport::Better::kLower);
  bench_report.write();
  return 0;
}
