// Extension: quantifying the foundation-model premise. The paper's framing
// (Sec. II-B / VI) is that a large multi-source model transfers: its
// representations should adapt to a target domain with little data, beating
// a from-scratch model with the same adaptation budget. This bench sweeps
// the TARGET dataset size and reports fine-tuned vs from-scratch test loss
// — the transfer gap should be largest in the low-data regime.

#include "bench_common.hpp"
#include "sgnn/nn/model_io.hpp"

int main() {
  using namespace sgnn;
  using namespace sgnn::bench;

  BenchReport report("ext_transfer");
  const ReferencePotential potential;

  // Pretraining corpus = the standard experiment aggregate.
  const Experiment experiment = make_experiment();
  const auto pretrain_view = experiment.dataset.view(experiment.split.train);
  const EnergyBaseline baseline = EnergyBaseline::fit(pretrain_view);

  ModelConfig config;
  config.hidden_dim = 40;
  config.num_layers = 3;

  const std::string checkpoint = "ext_transfer_foundation.sgmd";
  {
    EGNNModel foundation(config);
    TrainOptions options = sweep_protocol().train;
    Trainer trainer(foundation, options);
    trainer.set_energy_baseline(baseline);
    DataLoader loader(pretrain_view, options.batch_size, 5);
    std::cerr << "[bench] pretraining foundation model on "
              << pretrain_view.size() << " graphs...\n";
    trainer.fit(loader);
    save_model(foundation, checkpoint);
  }

  // Target domain: held-out OC2022-style samples (fresh generator stream,
  // never seen in pretraining).
  Rng rng(0xBEEF);
  std::vector<MolecularGraph> target_pool;
  for (int i = 0; i < 48; ++i) {
    target_pool.push_back(
        generate_sample(DataSource::kOC2022, rng, potential));
  }
  std::vector<const MolecularGraph*> target_test;
  std::vector<const MolecularGraph*> target_train_pool;
  for (std::size_t i = 0; i < target_pool.size(); ++i) {
    (i < 12 ? target_test : target_train_pool).push_back(&target_pool[i]);
  }

  const auto adapt = [&](bool from_checkpoint, std::size_t train_count) {
    EGNNModel model(config);
    if (from_checkpoint) load_parameters_into(model, checkpoint);
    TrainOptions options;
    options.epochs = 6;
    options.batch_size = 4;
    options.adam.learning_rate = from_checkpoint ? 5e-4 : 2e-3;
    Trainer trainer(model, options);
    trainer.set_energy_baseline(baseline);
    const std::vector<const MolecularGraph*> train(
        target_train_pool.begin(),
        target_train_pool.begin() + static_cast<std::ptrdiff_t>(train_count));
    DataLoader loader(train, options.batch_size, 5);
    trainer.fit(loader);
    return trainer.evaluate(target_test, 8).loss;
  };

  Table table({"Target graphs", "Fine-tuned loss", "From-scratch loss",
               "Transfer advantage"});
  int wins = 0;
  const std::vector<std::size_t> budgets = {4, 9, 18, 36};
  for (const auto budget : budgets) {
    std::cerr << "[bench] target budget " << budget << " graphs...\n";
    const double finetuned = adapt(true, budget);
    const double scratch = adapt(false, budget);
    if (finetuned < scratch) ++wins;
    table.add_row({std::to_string(budget), Table::fixed(finetuned, 3),
                   Table::fixed(scratch, 3),
                   Table::fixed(scratch / finetuned, 2) + "x"});
  }
  std::cout << table.to_ascii(
      "Extension — transfer from the foundation checkpoint vs from-scratch "
      "(target: unseen OC2022 samples)");
  std::cout << "\nfine-tuning wins at " << wins << "/" << budgets.size()
            << " target budgets; the advantage should be largest when "
               "target data is scarcest\n(the foundation-model premise, "
               "paper Sec. II-B/VI).\n";

  std::remove(checkpoint.c_str());

  report.add_table("transfer", table);
  report.add_value("finetune_wins", static_cast<double>(wins),
                   BenchReport::Better::kHigher);
  report.write();
  return 0;
}
