#pragma once

// Drop-in replacement for BENCHMARK_MAIN() in the micro benches: runs
// google-benchmark with the normal console output, but also collects every
// per-iteration run into a BenchReport and writes BENCH_<name>.json
// (real seconds per iteration, items/s where reported) so the perf-smoke CI
// job can diff micro-bench runs with sgnn_bench_compare.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_report.hpp"

namespace sgnn::bench {

class CollectingReporter : public ::benchmark::ConsoleReporter {
 public:
  explicit CollectingReporter(BenchReport& report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      if (run.iterations <= 0) continue;
      const std::string key = "bm." + run.benchmark_name();
      report_.add_value(key + ".real_time_s",
                        run.real_accumulated_time /
                            static_cast<double>(run.iterations),
                        BenchReport::Better::kLower);
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        report_.add_value(key + ".items_per_s",
                          static_cast<double>(items->second),
                          BenchReport::Better::kHigher);
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  BenchReport& report_;
};

inline int run_gbench_main(int argc, char** argv, const char* report_name) {
  char arg0_default[] = "benchmark";
  char* args_default = arg0_default;
  if (argv == nullptr) {
    argc = 1;
    argv = &args_default;
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  BenchReport report(report_name);
  CollectingReporter reporter(report);
  ::benchmark::RunSpecifiedBenchmarks(&reporter);
  ::benchmark::Shutdown();
  report.write();
  return 0;
}

}  // namespace sgnn::bench

/// Expands to a main() that runs the registered benchmarks and writes
/// BENCH_<report_name>.json alongside the console output.
#define SGNN_GBENCH_MAIN(report_name)                               \
  int main(int argc, char** argv) {                                 \
    return ::sgnn::bench::run_gbench_main(argc, argv, report_name); \
  }                                                                 \
  int main(int, char**)
