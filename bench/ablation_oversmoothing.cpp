// Ablation: the residual node-update and over-smoothing — the design
// choice behind the Fig. 5 depth collapse. Sweeps depth with the residual
// connection enabled (Satorras' default, used in the main experiments) and
// disabled, reporting test loss and the node-feature spread (variance of
// h across nodes after the backbone). Over-smoothing [Chen et al., AAAI'20]
// predicts the spread collapses with depth, faster without residuals.

#include "bench_common.hpp"

int main() {
  using namespace sgnn;
  using namespace sgnn::bench;

  BenchReport report("ablation_oversmoothing");
  const Experiment experiment = make_experiment();
  SweepProtocol protocol = sweep_protocol();
  protocol.train.epochs = 6;  // the effect shows early
  const auto train_indices = experiment.dataset.subsample(
      experiment.split.train, paper_tb_to_bytes(0.2), true, 91);
  std::cerr << "[bench] oversmoothing ablation on " << train_indices.size()
            << " graphs\n";

  const std::vector<std::int64_t> depths = {1, 2, 3, 4, 6, 8};

  Table table({"Residual", "Layers", "Test loss", "Energy MAE/atom",
               "Force MAE", "Feature spread"});
  struct Series {
    std::vector<double> spread;
    std::vector<double> loss;
    std::vector<double> energy;
  };
  Series with_res;
  Series without_res;

  for (const bool residual : {true, false}) {
    for (const auto depth : depths) {
      ModelConfig config;
      config.hidden_dim = 24;
      config.num_layers = depth;
      config.residual = residual;
      std::cerr << "[bench] residual=" << residual << " depth=" << depth
                << "...\n";
      const SweepPoint point =
          run_scaling_point(experiment.dataset, train_indices,
                            experiment.split.test, config, protocol);
      table.add_row({residual ? "yes" : "no", std::to_string(depth),
                     Table::fixed(point.test_loss, 4),
                     Table::fixed(point.energy_mae_per_atom, 4),
                     Table::fixed(point.force_mae, 4),
                     Table::scientific(point.feature_spread, 2)});
      auto& series = residual ? with_res : without_res;
      series.spread.push_back(point.feature_spread);
      series.loss.push_back(point.test_loss);
      series.energy.push_back(point.energy_mae_per_atom);
    }
  }
  std::cout << table.to_ascii(
      "Ablation — residual connections vs over-smoothing across depth");

  Table verdict({"Check", "residual=yes", "residual=no"});
  verdict.add_row(
      {"feature spread, depth 1 -> 8",
       Table::scientific(with_res.spread.front(), 2) + " -> " +
           Table::scientific(with_res.spread.back(), 2),
       Table::scientific(without_res.spread.front(), 2) + " -> " +
           Table::scientific(without_res.spread.back(), 2)});
  verdict.add_row({"loss at depth 8 / best loss",
                   Table::fixed(with_res.loss.back() /
                                    *std::min_element(with_res.loss.begin(),
                                                      with_res.loss.end()),
                                2),
                   Table::fixed(without_res.loss.back() /
                                    *std::min_element(without_res.loss.begin(),
                                                      without_res.loss.end()),
                                2)});
  verdict.add_row(
      {"energy MAE at depth 8 / best energy MAE",
       Table::fixed(with_res.energy.back() /
                        *std::min_element(with_res.energy.begin(),
                                          with_res.energy.end()),
                    2),
       Table::fixed(without_res.energy.back() /
                        *std::min_element(without_res.energy.begin(),
                                          without_res.energy.end()),
                    2)});
  std::cout << "\n"
            << verdict.to_ascii(
                   "Over-smoothing diagnostics (spread collapse and deep-"
                   "model penalty)");
  std::cout << "\nPaper context (Sec. IV-C): the over-smoothing issue "
               "persists even at large\ndata/model scale, making width the "
               "productive scaling direction.\n";

  report.add_table("depth_sweep", table);
  report.add_table("verdict", verdict);
  report.write();
  return 0;
}
