// Reproduces Tab. II: relative peak memory and relative training time of
//   vanilla DDP -> + activation checkpointing -> + ZeRO optimizer.
// Checked shapes: peak memory strictly decreases down the table while
// training time strictly increases (recompute cost, then collective cost).
// Time = measured compute (max across rank threads) + modeled interconnect
// time from the exact collective payloads (see InterconnectModel).

#include "bench_common.hpp"

namespace {

struct Setting {
  const char* name;
  bool checkpoint;
  sgnn::DistStrategy strategy;
  const char* paper_memory;
  const char* paper_time;
};

}  // namespace

int main() {
  using namespace sgnn;
  using namespace sgnn::bench;

  BenchReport bench_report("tab2_memory_time");
  const Experiment experiment = make_experiment();
  const auto subset = experiment.dataset.subsample(
      experiment.split.train, paper_tb_to_bytes(0.2), true, 91);

  const int kRanks = 4;
  const std::vector<Setting> settings = {
      {"Vanilla PyTorch-style DDP", false, DistStrategy::kDDP, "100%",
       "100%"},
      {"+ Activation Checkpointing", true, DistStrategy::kDDP, "42%",
       "110%"},
      {"+ ZeRO Optimizer", true, DistStrategy::kZeRO1, "27%", "133%"},
  };

  ModelConfig config;
  config.hidden_dim = 96;
  config.num_layers = 4;

  struct Result {
    std::int64_t peak;
    double compute_s;
    double comm_s;
    double comm_exposed_s;
    double comm_overlapped_s;
    std::int64_t buckets;
    std::uint64_t collective_bytes;
    std::int64_t steps;
    double p50_step_s;
    double p95_step_s;
    double atoms_per_sec;
  };
  std::vector<Result> results;

  for (const auto& setting : settings) {
    DistTrainOptions options;
    options.num_ranks = kRanks;
    options.strategy = setting.strategy;
    options.activation_checkpointing = setting.checkpoint;
    options.epochs = 1;
    options.per_rank_batch_size = 2;

    std::cerr << "[bench] tab2: running '" << setting.name << "'...\n";
    DDStore store(kRanks);
    {
      std::vector<MolecularGraph> graphs;
      for (const auto* g : experiment.dataset.view(subset)) {
        graphs.push_back(*g);
      }
      store.insert(std::move(graphs));
    }
    // Step-time statistics come from the obs registry (step.seconds
    // histogram) rather than ad-hoc timers; reset isolates this setting.
    obs::MetricsRegistry::instance().reset();
    DistributedTrainer trainer(config, options);
    const DistTrainReport report = trainer.train(store);
    const obs::MetricsSnapshot metrics =
        obs::MetricsRegistry::instance().snapshot();
    const obs::Histogram::Snapshot step_seconds =
        metrics.histograms.at("step.seconds");
    results.push_back({report.peak_memory.total(), report.compute_seconds,
                       report.comm_seconds, report.comm_exposed_seconds,
                       report.comm_overlapped_seconds, report.comm_buckets,
                       report.collective_traffic.total_bytes(),
                       metrics.counters.at("train.steps"),
                       step_seconds.quantile(0.50),
                       step_seconds.quantile(0.95),
                       metrics.gauges.at("train.atoms_per_sec")});
  }

  const double base_time = results[0].compute_s + results[0].comm_s;
  Table table({"Setting", "Rel. peak memory", "(paper)", "Rel. training time",
               "(paper)", "Compute s", "Comm s (modeled)",
               "Collective payload"});
  Table overlap({"Setting", "Comm s (modeled)", "Exposed s", "Overlapped s",
                 "Buckets", "Total s (all-exposed)", "Total s (overlap)"});
  Table steps({"Setting", "Steps", "p50 step", "p95 step", "Atoms/s"});
  for (std::size_t i = 0; i < settings.size(); ++i) {
    const double total = results[i].compute_s + results[i].comm_s;
    table.add_row(
        {settings[i].name,
         Table::fixed(100.0 * static_cast<double>(results[i].peak) /
                          static_cast<double>(results[0].peak),
                      1) +
             "%",
         settings[i].paper_memory,
         Table::fixed(100.0 * total / base_time, 1) + "%",
         settings[i].paper_time, Table::fixed(results[i].compute_s, 2),
         Table::scientific(results[i].comm_s, 2),
         Table::human_bytes(static_cast<double>(results[i].collective_bytes))});
    overlap.add_row(
        {settings[i].name, Table::scientific(results[i].comm_s, 2),
         Table::scientific(results[i].comm_exposed_s, 2),
         Table::scientific(results[i].comm_overlapped_s, 2),
         std::to_string(results[i].buckets), Table::fixed(total, 2),
         Table::fixed(results[i].compute_s + results[i].comm_exposed_s, 2)});
    steps.add_row({settings[i].name, std::to_string(results[i].steps),
                   Table::scientific(results[i].p50_step_s, 2) + " s",
                   Table::scientific(results[i].p95_step_s, 2) + " s",
                   Table::human_count(results[i].atoms_per_sec)});
  }
  std::cout << table.to_ascii(
      "Tab. II — Peak memory vs training-time trade-off (4 simulated "
      "ranks)");
  std::cout << "\n";
  std::cout << overlap.to_ascii(
      "Exposed vs overlapped communication (bucketed non-blocking "
      "collectives, see docs/communication.md)");
  std::cout << "\n";
  std::cout << steps.to_ascii(
      "Step-time distribution per setting (sgnn::obs step.seconds "
      "histogram)");
  std::cout << "\nNote: compute is measured on this CPU; interconnect time "
               "is modeled from the\nexact collective payloads at NVLink-3 "
               "rates, so the memory column is the\nload-bearing comparison "
               "and the time ordering (100% < +ckpt < +ZeRO) is the\nshape "
               "being reproduced. 'Exposed s' is the comm time a rank "
               "actually stalls on\nafter overlapping buckets with backward "
               "— strictly below the all-exposed\naccounting whenever any "
               "bucket finishes under compute.\n";

  bench_report.add_table("tradeoff", table);
  bench_report.add_table("overlap", overlap);
  bench_report.add_table("steps", steps);
  bench_report.add_value("vanilla_peak_bytes",
                         static_cast<double>(results[0].peak),
                         BenchReport::Better::kLower);
  bench_report.add_value("vanilla_p95_step_s", results[0].p95_step_s,
                         BenchReport::Better::kLower);
  bench_report.add_value("vanilla_atoms_per_sec", results[0].atoms_per_sec,
                         BenchReport::Better::kHigher);
  bench_report.add_value("zero_comm_exposed_s", results.back().comm_exposed_s,
                         BenchReport::Better::kLower);
  bench_report.write();
  return 0;
}
