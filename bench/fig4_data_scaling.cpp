// Reproduces Fig. 4: final test loss versus DATASET size, one series per
// model size. Checked shapes:
//   (1) loss decreases as data grows, for every model size;
//   (2) the 0.1 TB -> 0.2 TB step shows an outsized drop — the 0.1 TB
//       subset is sampled non-proportionally (cheap molecular sources
//       first), so its training distribution mismatches the full-aggregate
//       test set, exactly the mechanism the paper conjectures;
//   (3) beyond 0.2 TB the decrease is steady and power-law-like.

#include "bench_common.hpp"

int main() {
  using namespace sgnn;
  using namespace sgnn::bench;

  BenchReport report("fig4_data_scaling");
  const auto grid = shared_scaling_grid();

  Table table({"Model (paper-scale*)", "Dataset", "Train graphs", "Test loss",
               "Energy MAE/atom", "Force MAE"});
  for (std::size_t m = 0; m < model_grid().size(); ++m) {
    for (std::size_t d = 0; d < data_grid().size(); ++d) {
      const SweepPoint& p = grid_at(grid, d, m);
      table.add_row({model_grid()[m].paper_label,
                     paper_tb_label(data_grid()[d].paper_tb),
                     std::to_string(p.train_graphs),
                     Table::fixed(p.test_loss, 4),
                     Table::fixed(p.energy_mae_per_atom, 4),
                     Table::fixed(p.force_mae, 4)});
    }
  }
  std::cout << table.to_ascii(
      "Fig. 4 — Test loss vs dataset size, per model size");
  export_csv(table, "fig4_data_scaling");

  // Shape analysis. The distribution-mismatch evidence for the 0.1 TB
  // point: it is sampled non-proportionally (cheap molecular sources
  // first), so it contains MORE graphs than the proportional 0.2 TB subset
  // yet must test worse against the full-aggregate test set. The tail
  // (>= 0.2 TB, proportional) is checked for steady power-law scaling.
  Table analysis({"Model", "0.1 TB: graphs/loss", "0.2 TB: graphs/loss",
                  "mismatch visible?", "monotone tail?", "tail alpha",
                  "tail R^2"});
  for (std::size_t m = 0; m < model_grid().size(); ++m) {
    std::vector<double> losses;
    std::vector<double> bytes;
    std::vector<std::int64_t> graphs;
    for (std::size_t d = 0; d < data_grid().size(); ++d) {
      losses.push_back(grid_at(grid, d, m).test_loss);
      bytes.push_back(static_cast<double>(grid_at(grid, d, m).dataset_bytes));
      graphs.push_back(grid_at(grid, d, m).train_graphs);
    }
    // Mismatch: more training graphs at 0.1 yet higher loss than 0.2.
    const bool mismatch = graphs[0] >= graphs[1] && losses[0] > losses[1];
    bool monotone = true;
    for (std::size_t d = 1; d + 1 < losses.size(); ++d) {
      if (losses[d + 1] > losses[d] * 1.10) monotone = false;  // 10% slack
    }
    const std::vector<double> tail_x(bytes.begin() + 1, bytes.end());
    const std::vector<double> tail_y(losses.begin() + 1, losses.end());
    const PowerLawFit fit = fit_power_law(tail_x, tail_y);
    analysis.add_row(
        {model_grid()[m].paper_label,
         std::to_string(graphs[0]) + " / " + Table::fixed(losses[0], 1),
         std::to_string(graphs[1]) + " / " + Table::fixed(losses[1], 1),
         mismatch ? "yes" : "no", monotone ? "yes" : "no",
         Table::fixed(fit.alpha, 3), Table::fixed(fit.r_squared, 3)});
  }
  std::cout << "\n"
            << analysis.to_ascii(
                   "Fig. 4 shape check — 0.1 TB distribution mismatch, then "
                   "steady scaling");
  std::cout << "\nPaper claim: a pronounced drop from 0.1 to 0.2 TB "
               "(distribution mismatch vs the\nfixed test set), then steady "
               "predictable decrease to 1.2 TB; at large scale,\nscaling "
               "data beats scaling the model.\n";

  report.add_table("loss_grid", table);
  report.add_table("shape_analysis", analysis);
  report.write();
  return 0;
}
