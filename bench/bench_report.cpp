#include "bench_report.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "sgnn/obs/metrics.hpp"
#include "sgnn/obs/prof.hpp"
#include "sgnn/tensor/kernels.hpp"
#include "sgnn/util/parse.hpp"
#include "sgnn/util/thread_pool.hpp"

namespace sgnn::bench {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_double(double value) { return util::format_double(value); }

const char* better_label(BenchReport::Better better) {
  switch (better) {
    case BenchReport::Better::kLower: return "lower";
    case BenchReport::Better::kHigher: return "higher";
    case BenchReport::Better::kNone: return "none";
  }
  return "none";
}

}  // namespace

std::string bench_out_dir() {
  if (const char* env = std::getenv("SGNN_BENCH_OUT_DIR")) {
    if (env[0] != '\0') return env;
  }
  return {};
}

std::string bench_out_path(const std::string& filename) {
  const std::string dir = bench_out_dir();
  if (dir.empty()) return filename;
  if (dir.back() == '/') return dir + filename;
  return dir + "/" + filename;
}

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {
  obs::prof::reset();
  obs::prof::enable();
  if (const char* env = std::getenv("SGNN_BENCH_SCALE")) {
    add_info("bench_scale", env);
  } else {
    add_info("bench_scale", "1");
  }
  add_info("threads", static_cast<double>(ThreadPool::instance().size()));
  // Reports from different kernel backends / compute dtypes are not
  // comparable; record both so bench_compare and readers can tell.
  add_info("kernel_backend", kernels::backend_name(kernels::active_backend()));
  add_info("compute_dtype",
           kernels::dtype_name(kernels::active_compute_dtype()));
}

void BenchReport::add_value(const std::string& key, double value,
                            Better better) {
  values_[key] = Value{value, better};
}

void BenchReport::add_info(const std::string& key, const std::string& value) {
  info_[key] = "\"" + json_escape(value) + "\"";
}

void BenchReport::add_info(const std::string& key, double value) {
  info_[key] = format_double(value);
}

void BenchReport::add_table(const std::string& key, const Table& table) {
  tables_.insert_or_assign(key, table);
}

std::string BenchReport::to_json() const {
  std::string out = "{";
  out += "\"schema\":\"sgnn.bench_report.v1\"";
  out += ",\"name\":\"" + json_escape(name_) + "\"";

  out += ",\"values\":{";
  bool first = true;
  for (const auto& [key, value] : values_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(key) + "\":{\"value\":" +
           format_double(value.value) + ",\"better\":\"" +
           better_label(value.better) + "\"}";
  }
  out += "}";

  out += ",\"info\":{";
  first = true;
  for (const auto& [key, value] : info_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(key) + "\":" + value;
  }
  out += "}";

  out += ",\"metrics\":" + obs::MetricsRegistry::instance().snapshot().to_json();
  out += ",\"profile\":" + obs::prof::report().to_json();

  out += ",\"tables\":{";
  first = true;
  for (const auto& [key, table] : tables_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(key) + "\":{\"headers\":[";
    bool first_cell = true;
    for (const auto& header : table.headers()) {
      if (!first_cell) out += ",";
      first_cell = false;
      out += "\"" + json_escape(header) + "\"";
    }
    out += "],\"rows\":[";
    bool first_row = true;
    for (const auto& row : table.cells()) {
      if (!first_row) out += ",";
      first_row = false;
      out += "[";
      first_cell = true;
      for (const auto& cell : row) {
        if (!first_cell) out += ",";
        first_cell = false;
        out += "\"" + json_escape(cell) + "\"";
      }
      out += "]";
    }
    out += "]}";
  }
  out += "}";

  out += "}";
  return out;
}

std::string BenchReport::write() const {
  const std::string path = bench_out_path("BENCH_" + name_ + ".json");
  errno = 0;
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    std::cerr << "[bench] could not write " << path << ": "
              << std::strerror(errno) << "\n";
    return {};
  }
  out << to_json() << "\n";
  out.close();
  if (out.fail()) {
    std::cerr << "[bench] write to " << path << " failed: "
              << std::strerror(errno) << "\n";
    return {};
  }
  std::cerr << "[bench] wrote " << path << "\n";
  return path;
}

}  // namespace sgnn::bench
