// Micro-benchmarks of the tensor-engine primitives that dominate EGNN
// training time (google-benchmark). Useful for regression-testing the
// kernels behind the paper-artifact benches.

#include <benchmark/benchmark.h>

#include "bench_gbench_main.hpp"

#include "sgnn/tensor/checkpoint.hpp"
#include "sgnn/tensor/kernels.hpp"
#include "sgnn/tensor/ops.hpp"
#include "sgnn/util/rng.hpp"
#include "sgnn/util/thread_pool.hpp"

namespace {

using namespace sgnn;

void BM_Matmul(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::randn(Shape{n, n}, rng);
  const Tensor b = Tensor::randn(Shape{n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b).data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

// Backend sweep on the dominant kernel. The simd:0 row is the committed
// scalar reference; the simd:1 row must hold the >= 2x items_per_second
// acceptance bar over it at the default bench scale (docs/kernels.md).
// Rows are skipped (not failed) on machines without the vector ISA.
void BM_MatmulBackend(benchmark::State& state) {
  const auto n = state.range(0);
  const bool simd = state.range(1) != 0;
  if (simd && !kernels::simd_available()) {
    state.SkipWithError("SIMD backend unavailable on this machine");
    return;
  }
  kernels::ScopedBackend scope(simd ? kernels::Backend::kSimd
                                    : kernels::Backend::kScalar);
  Rng rng(1);
  const Tensor a = Tensor::randn(Shape{n, n}, rng);
  const Tensor b = Tensor::randn(Shape{n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b).data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatmulBackend)
    ->ArgNames({"n", "simd"})
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({256, 0})
    ->Args({256, 1});

// Float32 compute path (fp64 storage, fp32 kernel arithmetic including the
// cast in/out of the scratch buffers — the honest end-to-end cost).
void BM_MatmulFp32(benchmark::State& state) {
  const auto n = state.range(0);
  kernels::ScopedComputeDtype scope(kernels::ComputeDtype::kFloat32);
  Rng rng(1);
  const Tensor a = Tensor::randn(Shape{n, n}, rng);
  const Tensor b = Tensor::randn(Shape{n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b).data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatmulFp32)->Arg(128)->Arg(256);

// Thread-pool scaling on the kernel that dominates wide-model training.
// Compare the threads:1 row against threads:8 at 2048 — the acceptance bar
// for the pool is >= 3x on an 8-core host. (Run standalone; resizing the
// pool is a bench/test-only hook.)
void BM_MatmulThreads(benchmark::State& state) {
  const auto n = state.range(0);
  const auto threads = static_cast<int>(state.range(1));
  ThreadPool::instance().resize(threads);
  Rng rng(1);
  const Tensor a = Tensor::randn(Shape{n, n}, rng);
  const Tensor b = Tensor::randn(Shape{n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b).data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  state.counters["threads"] = threads;
  ThreadPool::instance().resize(1);
}
BENCHMARK(BM_MatmulThreads)
    ->ArgNames({"n", "threads"})
    ->Args({512, 1})
    ->Args({512, 4})
    ->Args({512, 8})
    ->Args({2048, 1})
    ->Args({2048, 4})
    ->Args({2048, 8})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Scatter under thread-count sweep: receiver-range sharding must win on
// wide feature dims without losing bit-determinism.
void BM_ScatterAddThreads(benchmark::State& state) {
  const auto edges = state.range(0);
  const auto threads = static_cast<int>(state.range(1));
  ThreadPool::instance().resize(threads);
  Rng rng(3);
  const Tensor src = Tensor::randn(Shape{edges, 64}, rng);
  std::vector<std::int64_t> index;
  const std::int64_t nodes = edges / 16 + 1;
  for (std::int64_t i = 0; i < edges; ++i) {
    index.push_back(static_cast<std::int64_t>(
        rng.uniform_index(static_cast<std::uint64_t>(nodes))));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(scatter_add_rows(src, index, nodes).data());
  }
  state.SetItemsProcessed(state.iterations() * edges * 64);
  state.counters["threads"] = threads;
  ThreadPool::instance().resize(1);
}
BENCHMARK(BM_ScatterAddThreads)
    ->ArgNames({"edges", "threads"})
    ->Args({65536, 1})
    ->Args({65536, 4})
    ->Args({65536, 8})
    ->UseRealTime();

void BM_MatmulBackward(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(2);
  for (auto _ : state) {
    state.PauseTiming();
    Tensor a = Tensor::randn(Shape{n, n}, rng).set_requires_grad(true);
    Tensor b = Tensor::randn(Shape{n, n}, rng).set_requires_grad(true);
    Tensor loss = sum(matmul(a, b));
    state.ResumeTiming();
    loss.backward();
  }
}
BENCHMARK(BM_MatmulBackward)->Arg(64)->Arg(128);

void BM_ScatterAddRows(benchmark::State& state) {
  const auto edges = state.range(0);
  Rng rng(3);
  const Tensor src = Tensor::randn(Shape{edges, 64}, rng);
  std::vector<std::int64_t> index;
  const std::int64_t nodes = edges / 16 + 1;
  for (std::int64_t i = 0; i < edges; ++i) {
    index.push_back(static_cast<std::int64_t>(rng.uniform_index(
        static_cast<std::uint64_t>(nodes))));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(scatter_add_rows(src, index, nodes).data());
  }
  state.SetItemsProcessed(state.iterations() * edges * 64);
}
BENCHMARK(BM_ScatterAddRows)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_IndexSelectRows(benchmark::State& state) {
  const auto edges = state.range(0);
  Rng rng(4);
  const std::int64_t nodes = edges / 16 + 1;
  const Tensor table = Tensor::randn(Shape{nodes, 64}, rng);
  std::vector<std::int64_t> index;
  for (std::int64_t i = 0; i < edges; ++i) {
    index.push_back(static_cast<std::int64_t>(rng.uniform_index(
        static_cast<std::uint64_t>(nodes))));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(index_select_rows(table, index).data());
  }
  state.SetItemsProcessed(state.iterations() * edges * 64);
}
BENCHMARK(BM_IndexSelectRows)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_Silu(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(5);
  const Tensor x = Tensor::randn(Shape{n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(silu(x).data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Silu)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_BroadcastMul(benchmark::State& state) {
  const auto rows = state.range(0);
  Rng rng(6);
  const Tensor a = Tensor::randn(Shape{rows, 64}, rng);
  const Tensor b = Tensor::randn(Shape{rows, 1}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mul(a, b).data());
  }
  state.SetItemsProcessed(state.iterations() * rows * 64);
}
BENCHMARK(BM_BroadcastMul)->Arg(1024)->Arg(16384);

void BM_CheckpointOverhead(benchmark::State& state) {
  // Forward+backward of a 4-layer MLP, with/without checkpointing; the
  // ratio is the recompute overhead backing Tab. II's +10% step time.
  const bool use_ckpt = state.range(0) != 0;
  Rng rng(7);
  std::vector<Tensor> weights;
  for (int i = 0; i < 4; ++i) {
    weights.push_back(
        Tensor::randn(Shape{96, 96}, rng, 0.1).set_requires_grad(true));
  }
  const Tensor x = Tensor::randn(Shape{64, 96}, rng);
  const SegmentFn body = [](const std::vector<Tensor>& in) {
    Tensor h = in[0];
    for (std::size_t i = 1; i < in.size(); ++i) h = silu(matmul(h, in[i]));
    return h;
  };
  for (auto _ : state) {
    std::vector<Tensor> inputs = {x, weights[0], weights[1], weights[2],
                                  weights[3]};
    Tensor out = use_ckpt ? checkpoint(body, inputs) : body(inputs);
    sum(square(out)).backward();
    for (auto& w : weights) w.zero_grad();
  }
}
BENCHMARK(BM_CheckpointOverhead)->Arg(0)->Arg(1);

}  // namespace

SGNN_GBENCH_MAIN("micro_tensor");
