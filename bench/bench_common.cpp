#include "bench_common.hpp"

#include <iomanip>
#include <locale>

namespace sgnn::bench {

namespace {

std::string cache_path() {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << "sgnn_scaling_grid_scale" << std::fixed << std::setprecision(3)
     << bench_scale() << ".cache.csv";
  return os.str();
}

std::vector<SweepPoint> load_cache(const std::string& path,
                                   std::size_t expected_rows) {
  std::ifstream in(path);
  if (!in.is_open()) return {};
  std::vector<SweepPoint> points;
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    std::istringstream row(line);
    row.imbue(std::locale::classic());
    SweepPoint p;
    char comma;
    row >> p.parameters >> comma >> p.hidden_dim >> comma >> p.num_layers >>
        comma >> p.dataset_bytes >> comma >> p.train_graphs >> comma >>
        p.train_loss >> comma >> p.test_loss >> comma >>
        p.energy_mae_per_atom >> comma >> p.force_mae >> comma >>
        p.feature_spread >> comma >> p.seconds;
    if (!row.fail()) points.push_back(p);
  }
  if (points.size() != expected_rows) return {};
  return points;
}

void save_cache(const std::string& path,
                const std::vector<SweepPoint>& points) {
  std::ofstream out(path);
  out.imbue(std::locale::classic());
  out << "parameters,hidden,layers,bytes,train_graphs,train_loss,test_loss,"
         "energy_mae,force_mae,feature_spread,seconds\n";
  out << std::setprecision(17);
  for (const auto& p : points) {
    out << p.parameters << "," << p.hidden_dim << "," << p.num_layers << ","
        << p.dataset_bytes << "," << p.train_graphs << "," << p.train_loss
        << "," << p.test_loss << "," << p.energy_mae_per_atom << ","
        << p.force_mae << "," << p.feature_spread << "," << p.seconds << "\n";
  }
}

}  // namespace

std::vector<SweepPoint> shared_scaling_grid() {
  const std::size_t expected = model_grid().size() * data_grid().size();
  const std::string path = cache_path();
  if (auto cached = load_cache(path, expected); !cached.empty()) {
    std::cerr << "[bench] reusing scaling grid from " << path << "\n";
    return cached;
  }

  const Experiment experiment = make_experiment();
  const SweepProtocol protocol = sweep_protocol();

  std::vector<SweepPoint> points;
  points.reserve(expected);
  for (const auto& data : data_grid()) {
    const auto train_indices = experiment.dataset.subsample(
        experiment.split.train, paper_tb_to_bytes(data.paper_tb),
        data.proportional, /*seed=*/91);
    for (const auto& model : model_grid()) {
      ModelConfig config;
      config.hidden_dim = model.hidden;
      config.num_layers = 3;
      std::cerr << "[bench] grid point: width " << model.hidden << " ("
                << model.paper_label << "), data "
                << paper_tb_label(data.paper_tb) << " ("
                << train_indices.size() << " graphs)...\n";
      points.push_back(run_scaling_point(experiment.dataset, train_indices,
                                         experiment.split.test, config,
                                         protocol));
      std::cerr << "[bench]   test loss " << points.back().test_loss << " in "
                << points.back().seconds << " s\n";
    }
  }
  save_cache(path, points);
  return points;
}

}  // namespace sgnn::bench
