// Ablation: the per-species energy baseline (composition regression) the
// training pipeline subtracts before learning — standard MLIP practice
// (and part of the HydraGNN pipeline the paper builds on). Without it the
// model spends its optimization budget learning additive constants, which
// distorts every scaling measurement.

#include "bench_common.hpp"

int main() {
  using namespace sgnn;
  using namespace sgnn::bench;

  BenchReport report("ablation_baseline");
  const Experiment experiment = make_experiment();
  const auto train_indices = experiment.dataset.subsample(
      experiment.split.train, paper_tb_to_bytes(0.2), true, 91);
  const auto train_view = experiment.dataset.view(train_indices);
  const auto test_view = experiment.dataset.view(experiment.split.test);
  std::cerr << "[bench] baseline ablation on " << train_view.size()
            << " graphs\n";

  Table table({"Width", "Energy baseline", "Test loss", "Energy MAE/atom",
               "Force MAE"});
  std::vector<double> ratio;
  for (const std::int64_t width : {16, 32, 64}) {
    double with_baseline_loss = 0;
    for (const bool use_baseline : {true, false}) {
      ModelConfig config;
      config.hidden_dim = width;
      config.num_layers = 3;
      EGNNModel model(config);
      TrainOptions options = sweep_protocol().train;
      Trainer trainer(model, options);
      if (use_baseline) {
        trainer.set_energy_baseline(EnergyBaseline::fit(train_view));
      }
      std::cerr << "[bench] width " << width << " baseline=" << use_baseline
                << "...\n";
      DataLoader loader(train_view, options.batch_size, 3);
      trainer.fit(loader);
      const EvalMetrics metrics = trainer.evaluate(test_view, 16);
      table.add_row({std::to_string(width), use_baseline ? "yes" : "no",
                     Table::fixed(metrics.loss, 4),
                     Table::fixed(metrics.energy_mae_per_atom, 4),
                     Table::fixed(metrics.force_mae, 4)});
      if (use_baseline) {
        with_baseline_loss = metrics.loss;
      } else {
        ratio.push_back(metrics.loss / with_baseline_loss);
      }
    }
  }
  std::cout << table.to_ascii(
      "Ablation — per-species energy baseline on/off");
  std::cout << "\nwithout/with test-loss ratios:";
  for (const auto r : ratio) std::cout << " " << Table::fixed(r, 2) << "x";
  std::cout << "\n(NOTE: losses are comparable within a row pair only; the "
               "baseline changes the\nenergy target's scale, so the "
               "energy-MAE column is the apples-to-apples one.)\n";

  report.add_table("baseline_sweep", table);
  report.write();
  return 0;
}
