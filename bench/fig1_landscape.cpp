// Reproduces Fig. 1: the landscape of large-scale GNNs for materials
// modeling — training-set size versus parameter count — with the paper's
// foundational model (and this reproduction's scaled equivalent) marked.
//
// Literature coordinates are approximate public numbers for the models the
// paper's figure situates itself against; they are context, not measured
// results of this repository.

#include "bench_common.hpp"

int main() {
  using namespace sgnn;
  using namespace sgnn::bench;

  BenchReport report("fig1_landscape");

  struct Entry {
    const char* model;
    double dataset_bytes;
    double parameters;
    const char* note;
  };
  const double GB = 1024.0 * 1024 * 1024;
  const double TB = 1024.0 * GB;
  const std::vector<Entry> landscape = {
      {"SchNet (QM9)", 0.2 * GB, 1.7e6, "molecular benchmark era"},
      {"DimeNet++ (OC20)", 50 * GB, 1.8e6, "catalysis, 2020"},
      {"GemNet-OC (OC20)", 700 * GB, 39e6, "catalysis, 2022"},
      {"MACE-MP-0 (MPTrj)", 17 * GB, 4.7e6, "materials foundation, 2023"},
      {"EquiformerV2 (OC20)", 700 * GB, 153e6, "transformer-style, 2023"},
      {"HydraGNN-GFM", 800 * GB, 60e6, "multi-task GFM, 2024"},
      {"This work (paper)", 1.2 * TB, 2e9, "EGNN, 32 Perlmutter nodes"},
  };

  Table table({"Model", "Dataset size", "Parameters", "Note"});
  for (const auto& e : landscape) {
    table.add_row({e.model, Table::human_bytes(e.dataset_bytes),
                   Table::human_count(e.parameters), e.note});
  }

  // Where this reproduction actually sits after the scaled-down sweep.
  const std::uint64_t repro_bytes = paper_tb_to_bytes(1.2);
  ModelConfig largest;
  largest.hidden_dim = model_grid().back().hidden;
  largest.num_layers = 3;
  table.add_row({"This repo (scaled repro)",
                 Table::human_bytes(static_cast<double>(repro_bytes)),
                 Table::human_count(
                     static_cast<double>(largest.parameter_count())),
                 "1 CPU core; axes compressed (see DESIGN.md)"});

  std::cout << table.to_ascii(
      "Fig. 1 — Landscape of scaled GNNs for atomistic materials modeling");
  std::cout << "\n(*) The repro row maps the paper's 1.2 TB / 2 B-parameter "
               "point onto this\n    machine: 1 paper-TB == "
            << Table::human_bytes(kBytesPerPaperTB * bench_scale())
            << " here, model axis compressed to widths 8-128.\n";

  report.add_table("landscape", table);
  report.add_value("repro_bytes", static_cast<double>(repro_bytes),
                   BenchReport::Better::kNone);
  report.write();
  return 0;
}
