// Micro-benchmark of the model itself: forward, forward+backward, and the
// activation-checkpointed variant, per width. The ckpt/plain step-time
// ratio here is the direct measurement behind Tab. II's "+10% training
// time" row for activation checkpointing.

#include <benchmark/benchmark.h>

#include "bench_gbench_main.hpp"

#include "sgnn/data/sources.hpp"
#include "sgnn/graph/batch.hpp"
#include "sgnn/nn/egnn.hpp"
#include "sgnn/tensor/ops.hpp"
#include "sgnn/train/loss.hpp"
#include "sgnn/util/rng.hpp"
#include "sgnn/util/thread_pool.hpp"

namespace {

using namespace sgnn;

GraphBatch make_batch() {
  static const GraphBatch batch = [] {
    const ReferencePotential potential;
    Rng rng(11);
    std::vector<MolecularGraph> graphs;
    for (int i = 0; i < 4; ++i) {
      graphs.push_back(generate_sample(DataSource::kOC2020, rng, potential));
    }
    return GraphBatch::from_graphs(graphs);
  }();
  return batch;
}

void BM_EGNNForward(benchmark::State& state) {
  ModelConfig config;
  config.hidden_dim = state.range(0);
  config.num_layers = 3;
  const EGNNModel model(config);
  const GraphBatch batch = make_batch();
  const autograd::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forward(batch).energy.data());
  }
  state.counters["params"] =
      static_cast<double>(config.parameter_count());
  state.SetItemsProcessed(state.iterations() * batch.num_edges);
}
BENCHMARK(BM_EGNNForward)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_EGNNTrainStep(benchmark::State& state) {
  const bool use_ckpt = state.range(1) != 0;
  ModelConfig config;
  config.hidden_dim = state.range(0);
  config.num_layers = 3;
  EGNNModel model(config);
  const GraphBatch batch = make_batch();
  EGNNModel::ForwardOptions options;
  options.activation_checkpointing = use_ckpt;
  for (auto _ : state) {
    const auto out = model.forward(batch, options);
    LossTerms terms = multitask_loss(out, batch, LossWeights{});
    terms.total.backward();
    model.zero_grad();
  }
  state.SetLabel(use_ckpt ? "checkpointed" : "plain");
}
BENCHMARK(BM_EGNNTrainStep)
    ->Args({32, 0})
    ->Args({32, 1})
    ->Args({64, 0})
    ->Args({64, 1});

// End-to-end train-step scaling with the shared thread pool: the model-level
// view of the kernel speedups measured in micro_tensor. Wider hidden dims
// shift time into matmuls, where the pool bites hardest.
void BM_EGNNTrainStepThreads(benchmark::State& state) {
  const auto threads = static_cast<int>(state.range(1));
  ThreadPool::instance().resize(threads);
  ModelConfig config;
  config.hidden_dim = state.range(0);
  config.num_layers = 3;
  EGNNModel model(config);
  const GraphBatch batch = make_batch();
  for (auto _ : state) {
    const auto out = model.forward(batch);
    LossTerms terms = multitask_loss(out, batch, LossWeights{});
    terms.total.backward();
    model.zero_grad();
  }
  state.counters["threads"] = threads;
  state.counters["params"] = static_cast<double>(config.parameter_count());
  ThreadPool::instance().resize(1);
}
BENCHMARK(BM_EGNNTrainStepThreads)
    ->ArgNames({"hidden", "threads"})
    ->Args({128, 1})
    ->Args({128, 4})
    ->Args({128, 8})
    ->Args({256, 1})
    ->Args({256, 8})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

SGNN_GBENCH_MAIN("micro_egnn");
