// Micro-benchmarks of the storage substrate: graph (de)serialization, bp
// container random access, DDStore fetch, and the streaming loader's cache
// regimes (google-benchmark).

#include <benchmark/benchmark.h>

#include "bench_gbench_main.hpp"

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "sgnn/data/sources.hpp"
#include "sgnn/data/streaming.hpp"
#include "sgnn/store/bp_file.hpp"
#include "sgnn/store/ddstore.hpp"
#include "sgnn/store/serialize.hpp"
#include "sgnn/util/rng.hpp"

namespace {

using namespace sgnn;

const std::vector<MolecularGraph>& sample_graphs() {
  static const std::vector<MolecularGraph> graphs = [] {
    const ReferencePotential potential;
    Rng rng(1);
    std::vector<MolecularGraph> out;
    for (int i = 0; i < 32; ++i) {
      out.push_back(generate_sample(
          i % 2 == 0 ? DataSource::kANI1x : DataSource::kOC2020, rng,
          potential));
    }
    return out;
  }();
  return graphs;
}

std::string bp_path() {
  static const std::string path = [] {
    const std::string p =
        (std::filesystem::temp_directory_path() / "sgnn_micro_store.bp")
            .string();
    BpWriter writer(p);
    for (const auto& g : sample_graphs()) writer.append(g);
    writer.finalize();
    return p;
  }();
  return path;
}

void BM_SerializeGraph(benchmark::State& state) {
  const MolecularGraph& g = sample_graphs()[1];  // an OC-sized graph
  for (auto _ : state) {
    std::ostringstream out;
    write_graph_record(out, g);
    benchmark::DoNotOptimize(out.str().size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.serialized_bytes()));
}
BENCHMARK(BM_SerializeGraph);

void BM_DeserializeGraph(benchmark::State& state) {
  const MolecularGraph& g = sample_graphs()[1];
  std::ostringstream out;
  write_graph_record(out, g);
  const std::string payload = out.str();
  for (auto _ : state) {
    std::istringstream in(payload);
    benchmark::DoNotOptimize(read_graph_record(in).num_edges());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_DeserializeGraph);

void BM_BpRandomRead(benchmark::State& state) {
  const BpReader reader(bp_path());
  Rng rng(7);
  for (auto _ : state) {
    const auto record = rng.uniform_index(reader.size());
    benchmark::DoNotOptimize(reader.read(record).num_nodes());
  }
}
BENCHMARK(BM_BpRandomRead);

void BM_DDStoreFetch(benchmark::State& state) {
  const bool remote = state.range(0) != 0;
  DDStore store(2);
  store.insert(sample_graphs());
  for (auto _ : state) {
    // Even indices live on rank 0: fetching from rank 0 is local, from
    // rank 1 remote.
    benchmark::DoNotOptimize(store.fetch(remote ? 1 : 0, 0).num_nodes());
  }
  state.SetLabel(remote ? "remote" : "local");
}
BENCHMARK(BM_DDStoreFetch)->Arg(0)->Arg(1);

void BM_StreamingEpoch(benchmark::State& state) {
  const auto cache = static_cast<std::size_t>(state.range(0));
  const BpReader reader(bp_path());
  for (auto _ : state) {
    StreamingLoader loader(reader, 8, 5, cache);
    std::int64_t total = 0;
    while (loader.has_next()) total += loader.next().num_graphs;
    benchmark::DoNotOptimize(total);
  }
  state.SetLabel("cache=" + std::to_string(cache));
}
BENCHMARK(BM_StreamingEpoch)->Arg(0)->Arg(64);

}  // namespace

SGNN_GBENCH_MAIN("micro_store");
