// Extension: strong-scaling projection. The paper motivates HydraGNN by
// its "near-linear strong scaling performance" across thousands of GPUs
// (Sec. II-B); this bench measures a single-rank training epoch on this
// machine, then projects multi-rank step time with the same per-step
// collective payloads priced by the NVLink-3 interconnect model — the
// textbook compute/communication strong-scaling decomposition.
//
// (Threads on this 1-core host share the CPU, so multi-rank COMPUTE cannot
// be measured directly; the collectives and their payloads are real, the
// compute division is the projection.)

#include "bench_common.hpp"

int main() {
  using namespace sgnn;
  using namespace sgnn::bench;

  BenchReport report("ext_strong_scaling");
  const Experiment experiment = make_experiment();
  const auto subset = experiment.dataset.subsample(
      experiment.split.train, paper_tb_to_bytes(0.3), true, 91);

  ModelConfig config;
  config.hidden_dim = 64;
  config.num_layers = 3;
  const auto param_bytes =
      static_cast<std::uint64_t>(config.parameter_count()) * sizeof(real);

  // Measure single-rank compute.
  DistTrainOptions options;
  options.num_ranks = 1;
  options.epochs = 1;
  options.per_rank_batch_size = 4;
  DistributedTrainer trainer(config, options);
  DDStore store(1);
  {
    std::vector<MolecularGraph> graphs;
    for (const auto* g : experiment.dataset.view(subset)) graphs.push_back(*g);
    store.insert(std::move(graphs));
  }
  std::cerr << "[bench] measuring single-rank epoch...\n";
  const DistTrainReport base = trainer.train(store);
  const double single_compute = base.compute_seconds;
  const auto steps = static_cast<double>(base.steps);

  const InterconnectModel fabric;
  // With bucketed non-blocking all-reduce the gradient collectives are
  // posted DURING backward, so up to the backward share of the per-rank
  // compute can hide communication; only the shortfall is exposed stall
  // (see docs/communication.md). Backward is modeled at half the step.
  const double kBackwardShare = 0.5;
  Table table({"Ranks", "Compute s (projected)", "Comm s (modeled)",
               "Exposed s (overlap)", "Total s", "Total s (overlap)",
               "Speedup", "Efficiency", "Eff. (overlap)"});
  const auto project = [&](int ranks) {
    // Fixed global batch: per-rank compute divides; one all-reduce of the
    // full gradient per step regardless of rank count (DDP).
    const double compute = single_compute / ranks;
    const double comm =
        steps * fabric.all_reduce_seconds(param_bytes, ranks) +
        (ranks > 1 ? steps * fabric.latency_seconds : 0.0);
    const double exposed = std::max(0.0, comm - kBackwardShare * compute);
    return std::make_tuple(compute, comm, exposed);
  };
  const auto [c1, m1, e1] = project(1);
  const double t1 = c1 + m1;
  const double t1_overlap = c1 + e1;
  for (const int ranks : {1, 2, 4, 8, 16, 32, 128}) {
    const auto [compute, comm, exposed] = project(ranks);
    const double total = compute + comm;
    const double total_overlap = compute + exposed;
    table.add_row({std::to_string(ranks), Table::fixed(compute, 3),
                   Table::scientific(comm, 2), Table::scientific(exposed, 2),
                   Table::fixed(total, 3), Table::fixed(total_overlap, 3),
                   Table::fixed(t1 / total, 2) + "x",
                   Table::fixed(100.0 * t1 / total / ranks, 1) + "%",
                   Table::fixed(100.0 * t1_overlap / total_overlap / ranks,
                                1) +
                       "%"});
  }
  std::cout << table.to_ascii(
      "Extension — strong-scaling projection (measured 1-rank compute + "
      "modeled NVLink collectives, " +
      std::to_string(config.parameter_count()) + " params)");
  std::cout << "\nContext: HydraGNN-GFM reports near-linear strong scaling "
               "on Perlmutter/Frontier;\nthe projection shows the same "
               "regime — communication stays negligible until the\nper-rank "
               "compute share approaches the all-reduce time. The overlap "
               "columns price\nthe bucketed non-blocking path: gradient "
               "all-reduces hide behind the backward\nhalf of each step, so "
               "exposed comm is strictly below the all-exposed model at\n"
               "every multi-rank point and efficiency decays later.\n";

  report.add_table("projection", table);
  report.add_value("single_rank_compute_s", single_compute,
                   BenchReport::Better::kLower);
  report.write();
  return 0;
}
