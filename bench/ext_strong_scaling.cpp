// Extension: strong-scaling projection. The paper motivates HydraGNN by
// its "near-linear strong scaling performance" across thousands of GPUs
// (Sec. II-B); this bench measures a single-rank training epoch on this
// machine, then projects multi-rank step time with the same per-step
// collective payloads priced by the NVLink-3 interconnect model — the
// textbook compute/communication strong-scaling decomposition.
//
// (Threads on this 1-core host share the CPU, so multi-rank COMPUTE cannot
// be measured directly; the collectives and their payloads are real, the
// compute division is the projection.)

#include "bench_common.hpp"

int main() {
  using namespace sgnn;
  using namespace sgnn::bench;

  BenchReport report("ext_strong_scaling");
  const Experiment experiment = make_experiment();
  const auto subset = experiment.dataset.subsample(
      experiment.split.train, paper_tb_to_bytes(0.3), true, 91);

  ModelConfig config;
  config.hidden_dim = 64;
  config.num_layers = 3;
  const auto param_bytes =
      static_cast<std::uint64_t>(config.parameter_count()) * sizeof(real);

  // Measure single-rank compute.
  DistTrainOptions options;
  options.num_ranks = 1;
  options.epochs = 1;
  options.per_rank_batch_size = 4;
  DistributedTrainer trainer(config, options);
  DDStore store(1);
  {
    std::vector<MolecularGraph> graphs;
    for (const auto* g : experiment.dataset.view(subset)) graphs.push_back(*g);
    store.insert(std::move(graphs));
  }
  std::cerr << "[bench] measuring single-rank epoch...\n";
  const DistTrainReport base = trainer.train(store);
  const double single_compute = base.compute_seconds;
  const auto steps = static_cast<double>(base.steps);

  const InterconnectModel fabric;
  // With bucketed non-blocking all-reduce the gradient collectives are
  // posted DURING backward, so up to the backward share of the per-rank
  // compute can hide communication; only the shortfall is exposed stall
  // (see docs/communication.md). Backward is modeled at half the step.
  const double kBackwardShare = 0.5;
  Table table({"Ranks", "Compute s (projected)", "Comm s (modeled)",
               "Exposed s (overlap)", "Total s", "Total s (overlap)",
               "Speedup", "Efficiency", "Eff. (overlap)"});
  const auto project = [&](int ranks) {
    // Fixed global batch: per-rank compute divides; one all-reduce of the
    // full gradient per step regardless of rank count (DDP).
    const double compute = single_compute / ranks;
    const double comm =
        steps * fabric.all_reduce_seconds(param_bytes, ranks) +
        (ranks > 1 ? steps * fabric.latency_seconds : 0.0);
    const double exposed = std::max(0.0, comm - kBackwardShare * compute);
    return std::make_tuple(compute, comm, exposed);
  };
  const auto [c1, m1, e1] = project(1);
  const double t1 = c1 + m1;
  const double t1_overlap = c1 + e1;
  for (const int ranks : {1, 2, 4, 8, 16, 32, 128}) {
    const auto [compute, comm, exposed] = project(ranks);
    const double total = compute + comm;
    const double total_overlap = compute + exposed;
    table.add_row({std::to_string(ranks), Table::fixed(compute, 3),
                   Table::scientific(comm, 2), Table::scientific(exposed, 2),
                   Table::fixed(total, 3), Table::fixed(total_overlap, 3),
                   Table::fixed(t1 / total, 2) + "x",
                   Table::fixed(100.0 * t1 / total / ranks, 1) + "%",
                   Table::fixed(100.0 * t1_overlap / total_overlap / ranks,
                                1) +
                       "%"});
  }
  std::cout << table.to_ascii(
      "Extension — strong-scaling projection (measured 1-rank compute + "
      "modeled NVLink collectives, " +
      std::to_string(config.parameter_count()) + " params)");
  std::cout << "\nContext: HydraGNN-GFM reports near-linear strong scaling "
               "on Perlmutter/Frontier;\nthe projection shows the same "
               "regime — communication stays negligible until the\nper-rank "
               "compute share approaches the all-reduce time. The overlap "
               "columns price\nthe bucketed non-blocking path: gradient "
               "all-reduces hide behind the backward\nhalf of each step, so "
               "exposed comm is strictly below the all-exposed model at\n"
               "every multi-rank point and efficiency decays later.\n";

  report.add_table("projection", table);
  report.add_value("single_rank_compute_s", single_compute,
                   BenchReport::Better::kLower);

  // -- measured graph-parallel axis (sgnn::gpar) ---------------------------
  // Unlike the projection above, this axis RUNS the ranks: every step the
  // same global batch is spatially partitioned, one-hop halo rows are
  // exchanged through the Communicator, and ghost gradients fold back to
  // their owners. Atoms per rank SHRINK as ranks grow — the graph-parallel
  // strong-scaling axis the projection cannot model — while the halo
  // payload and its exposed/overlapped split are measured, not projected.
  // Training is bit-identical to the single-rank run at every rank count
  // (the partition-parity test wall), so the only thing that varies along
  // this axis is cost.
  std::cerr << "[bench] measuring graph-parallel halo axis...\n";
  std::vector<MolecularGraph> gp_graphs;
  double total_atoms = 0;
  for (const auto* g : experiment.dataset.view(subset)) {
    total_atoms += static_cast<double>(g->num_nodes());
    gp_graphs.push_back(*g);
  }
  const double atoms_per_graph =
      gp_graphs.empty() ? 0.0
                        : total_atoms / static_cast<double>(gp_graphs.size());

  Table gp_table({"Ranks", "Atoms/rank/step", "Halo KB/step", "Exch/step",
                  "Halo exposed s", "Halo overlapped s", "Hidden %"});
  for (const int ranks : {1, 2, 4}) {
    DistTrainOptions gp;
    gp.num_ranks = ranks;
    gp.epochs = 1;
    gp.per_rank_batch_size = 4;  // the GLOBAL batch under graph_parallel
    gp.strategy = DistStrategy::kDDP;
    gp.graph_parallel = true;
    gp.max_grad_norm = 0.0;
    DistributedTrainer gp_trainer(config, gp);
    DDStore gp_store(ranks);
    {
      std::vector<MolecularGraph> copy = gp_graphs;
      gp_store.insert(std::move(copy));
    }
    const DistTrainReport run = gp_trainer.train(gp_store);
    const double steps_d = std::max(1.0, static_cast<double>(run.steps));
    const double atoms_per_rank = 4.0 * atoms_per_graph / ranks;
    const double bytes_per_step =
        static_cast<double>(run.halo_bytes) / steps_d;
    const double exch_per_step =
        static_cast<double>(run.halo_exchanges) / steps_d;
    const double halo_total =
        run.halo_exposed_seconds + run.halo_overlapped_seconds;
    const double hidden =
        halo_total > 0 ? 100.0 * run.halo_overlapped_seconds / halo_total
                       : 0.0;
    gp_table.add_row({std::to_string(ranks), Table::fixed(atoms_per_rank, 1),
                      Table::fixed(bytes_per_step / 1024.0, 2),
                      Table::fixed(exch_per_step, 1),
                      Table::scientific(run.halo_exposed_seconds, 2),
                      Table::scientific(run.halo_overlapped_seconds, 2),
                      Table::fixed(hidden, 1) + "%"});
    const std::string prefix = "gp.r" + std::to_string(ranks) + ".";
    // Payload and exchange counts are pure functions of the (seeded)
    // dataset and the partition — deterministic, so the committed baseline
    // gates them hard: traffic growth is a partitioner regression.
    report.add_value(prefix + "halo_bytes_per_step", bytes_per_step,
                     BenchReport::Better::kLower);
    report.add_value(prefix + "halo_exchanges_per_step", exch_per_step,
                     BenchReport::Better::kLower);
    // Timing split is machine-noisy: informational only.
    report.add_value(prefix + "halo_exposed_s", run.halo_exposed_seconds,
                     BenchReport::Better::kNone);
    report.add_value(prefix + "halo_overlapped_s",
                     run.halo_overlapped_seconds,
                     BenchReport::Better::kNone);
    report.add_info(prefix + "atoms_per_rank_per_step", atoms_per_rank);
  }
  std::cout << "\n"
            << gp_table.to_ascii(
                   "Extension — graph-parallel halo axis (measured: spatial "
                   "partition + one-hop halo exchange, global batch 4)");
  std::cout << "\nContext: under sgnn::gpar the ranks cooperate on ONE "
               "batch, so per-rank atoms\nfall as 1/R while the halo "
               "payload the boundary exchange moves grows with the\ncut "
               "surface. The overlapped column is the share of modeled "
               "fabric time hidden\nbehind the distance/RBF compute window "
               "that separates the x and h waits.\n";
  report.add_table("graph_parallel", gp_table);

  report.write();
  return 0;
}
