// Reproduces Fig. 3: final test loss versus MODEL size, one series per
// dataset size. The paper's headline observations, checked here:
//   (1) loss decreases monotonically (modulo noise) with model size at
//       every dataset size;
//   (2) returns DIMINISH: the local log-log slope flattens as models grow
//       (unlike the near-straight log-log lines of LLM scaling), quantified
//       by comparing the saturating power-law fit against a pure one.

#include "bench_common.hpp"

int main() {
  using namespace sgnn;
  using namespace sgnn::bench;

  BenchReport report("fig3_model_scaling");
  const auto grid = shared_scaling_grid();

  Table table({"Dataset", "Model (paper-scale*)", "Params", "Test loss",
               "Energy MAE/atom", "Force MAE"});
  for (std::size_t d = 0; d < data_grid().size(); ++d) {
    for (std::size_t m = 0; m < model_grid().size(); ++m) {
      const SweepPoint& p = grid_at(grid, d, m);
      table.add_row({paper_tb_label(data_grid()[d].paper_tb),
                     model_grid()[m].paper_label,
                     Table::human_count(static_cast<double>(p.parameters)),
                     Table::fixed(p.test_loss, 4),
                     Table::fixed(p.energy_mae_per_atom, 4),
                     Table::fixed(p.force_mae, 4)});
    }
  }
  std::cout << table.to_ascii(
      "Fig. 3 — Test loss vs model size, per dataset size");
  export_csv(table, "fig3_model_scaling");

  // Shape analysis per dataset size. Diminishing returns can manifest two
  // ways within the measured range: the late-regime log-log slope is
  // flatter than the early one, or the saturating fit needs a sizable
  // irreducible floor c (the curve is already bending toward it). Slopes
  // use 3-point least squares to suppress single-step noise.
  const auto fit_slope = [](const std::vector<double>& x,
                            const std::vector<double>& y, std::size_t begin,
                            std::size_t end) {
    std::vector<double> xs(x.begin() + static_cast<std::ptrdiff_t>(begin),
                           x.begin() + static_cast<std::ptrdiff_t>(end));
    std::vector<double> ys(y.begin() + static_cast<std::ptrdiff_t>(begin),
                           y.begin() + static_cast<std::ptrdiff_t>(end));
    return -fit_pure_power_law(xs, ys).alpha;  // signed log-log slope
  };
  Table analysis({"Dataset", "alpha", "floor c", "floor share",
                  "early slope", "late slope", "diminishing?"});
  int diminishing_count = 0;
  for (std::size_t d = 0; d < data_grid().size(); ++d) {
    std::vector<double> params;
    std::vector<double> losses;
    for (std::size_t m = 0; m < model_grid().size(); ++m) {
      const SweepPoint& p = grid_at(grid, d, m);
      params.push_back(static_cast<double>(p.parameters));
      losses.push_back(p.test_loss);
    }
    const PowerLawFit fit = fit_power_law(params, losses);
    const double early = fit_slope(params, losses, 0, 3);
    const double late = fit_slope(params, losses, params.size() - 3,
                                  params.size());
    const double floor_share =
        fit.c / *std::min_element(losses.begin(), losses.end());
    const bool diminishing = late > early + 0.005 || floor_share > 0.3;
    diminishing_count += diminishing ? 1 : 0;
    analysis.add_row({paper_tb_label(data_grid()[d].paper_tb),
                      Table::fixed(fit.alpha, 3), Table::fixed(fit.c, 2),
                      Table::fixed(floor_share, 2), Table::fixed(early, 3),
                      Table::fixed(late, 3), diminishing ? "yes" : "no"});
  }
  std::cout << "\n"
            << analysis.to_ascii(
                   "Fig. 3 shape check — diminishing returns in model "
                   "scaling (slopes toward 0)");
  std::cout << "\nDiminishing returns detected at " << diminishing_count
            << "/" << data_grid().size() << " dataset sizes.\n"
            << "Paper claim: loss keeps falling with model size but with "
               "diminishing returns\n(GNN locality constraints), unlike the "
               "log-linear LLM scaling laws.\n";

  report.add_table("loss_grid", table);
  report.add_table("shape_analysis", analysis);
  report.add_value("diminishing_count", diminishing_count,
                   BenchReport::Better::kNone);
  report.write();
  return 0;
}
