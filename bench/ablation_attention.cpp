// Ablation: EGNN locality vs Transformer attention — the architecture
// question behind the paper's Sec. IV-A conjecture ("GNN architectures are
// inherently limited by their locality constraints ... when scaling beyond
// 2 billion parameters, the limitations of current GNN architectures may
// become a bottleneck").
//
// Both model families are trained across matched parameter budgets on the
// molecular sources (where all-pairs attention is exact), and the analysis
// compares how their test-loss slopes evolve with model size: the paper's
// hypothesis predicts the attention model retains a steeper late-regime
// slope than the locality-bound EGNN.

#include "bench_common.hpp"
#include "sgnn/nn/transformer.hpp"

namespace {

using namespace sgnn;
using namespace sgnn::bench;

struct AblationPoint {
  std::int64_t parameters = 0;
  double test_loss = 0;
  double force_mae = 0;
  double seconds = 0;
};

/// Shared mini training loop (Trainer is EGNN-bound; this generic runner
/// works for any model exposing forward(batch) -> {energy, forces}).
template <typename Model>
AblationPoint train_and_eval(Model& model,
                             const std::vector<const MolecularGraph*>& train,
                             const std::vector<const MolecularGraph*>& test,
                             const EnergyBaseline& baseline) {
  const WallTimer timer;
  Adam::Options adam_options;
  adam_options.learning_rate = 2e-3;
  Adam adam(model.parameters(), adam_options);
  LossWeights weights;

  DataLoader loader(train, /*batch_size=*/8, /*seed=*/3);
  for (int epoch = 0; epoch < 10; ++epoch) {
    loader.begin_epoch();
    while (loader.has_next()) {
      GraphBatch batch = loader.next();
      baseline.subtract_from(batch);
      adam.zero_grad();
      const auto out = model.forward(batch);
      LossTerms terms = multitask_loss(out.energy, out.forces, batch, weights);
      terms.total.backward();
      adam.step();
    }
  }

  AblationPoint point;
  point.parameters = model.num_parameters();
  // Evaluate.
  MetricAccumulator accumulator;
  std::size_t cursor = 0;
  while (cursor < test.size()) {
    std::vector<const MolecularGraph*> chunk;
    while (cursor < test.size() && chunk.size() < 16) {
      chunk.push_back(test[cursor++]);
    }
    GraphBatch batch = GraphBatch::from_graphs(chunk);
    baseline.subtract_from(batch);
    const autograd::NoGradGuard no_grad;
    const auto out = model.forward(batch);
    const LossTerms terms =
        multitask_loss(out.energy, out.forces, batch, weights);
    EvalMetrics m;
    m.loss = terms.total.item();
    m.num_graphs = batch.num_graphs;
    m.num_nodes = batch.num_nodes;
    const real* fp = out.forces.data();
    const real* ft = batch.forces.data();
    double abs_err = 0;
    for (std::int64_t i = 0; i < batch.num_nodes * 3; ++i) {
      abs_err += std::abs(fp[i] - ft[i]);
    }
    m.force_mae = abs_err / static_cast<double>(batch.num_nodes * 3);
    accumulator.add(m);
  }
  const EvalMetrics mean = accumulator.mean();
  point.test_loss = mean.loss;
  point.force_mae = mean.force_mae;
  point.seconds = timer.seconds();
  return point;
}

}  // namespace

int main() {
  BenchReport report("ablation_attention");
  // Molecular-only dataset (ANI1x + QM7X geometry class): small graphs keep
  // the all-pairs attention affordable and avoid the transformer's periodic
  // approximation.
  const ReferencePotential potential;
  Rng rng(31337);
  std::vector<MolecularGraph> graphs;
  const std::size_t kGraphs =
      static_cast<std::size_t>(220.0 * bench_scale());
  for (std::size_t i = 0; i < kGraphs; ++i) {
    graphs.push_back(generate_sample(
        i % 2 == 0 ? DataSource::kANI1x : DataSource::kQM7X, rng, potential));
  }
  std::vector<const MolecularGraph*> train;
  std::vector<const MolecularGraph*> test;
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    (i % 5 == 0 ? test : train).push_back(&graphs[i]);
  }
  const EnergyBaseline baseline = EnergyBaseline::fit(train);
  std::cerr << "[bench] attention ablation: " << train.size() << " train / "
            << test.size() << " test molecular graphs\n";

  const std::vector<std::int64_t> widths = {8, 16, 32, 64};

  Table table({"Architecture", "Width", "Params", "Test loss", "Force MAE",
               "Seconds"});
  std::vector<double> gnn_params;
  std::vector<double> gnn_loss;
  std::vector<double> att_params;
  std::vector<double> att_loss;

  for (const auto width : widths) {
    ModelConfig gnn_config;
    gnn_config.hidden_dim = width;
    gnn_config.num_layers = 3;
    EGNNModel gnn(gnn_config);
    std::cerr << "[bench] EGNN width " << width << "...\n";
    const AblationPoint g = train_and_eval(gnn, train, test, baseline);
    gnn_params.push_back(static_cast<double>(g.parameters));
    gnn_loss.push_back(g.test_loss);
    table.add_row({"EGNN (locality)", std::to_string(width),
                   Table::human_count(static_cast<double>(g.parameters)),
                   Table::fixed(g.test_loss, 4), Table::fixed(g.force_mae, 4),
                   Table::fixed(g.seconds, 1)});

    TransformerConfig att_config;
    att_config.hidden_dim = width;
    att_config.num_layers = 3;
    GraphTransformer attention(att_config);
    std::cerr << "[bench] Transformer width " << width << "...\n";
    const AblationPoint a = train_and_eval(attention, train, test, baseline);
    att_params.push_back(static_cast<double>(a.parameters));
    att_loss.push_back(a.test_loss);
    table.add_row({"GraphTransformer (attention)", std::to_string(width),
                   Table::human_count(static_cast<double>(a.parameters)),
                   Table::fixed(a.test_loss, 4), Table::fixed(a.force_mae, 4),
                   Table::fixed(a.seconds, 1)});
  }
  std::cout << table.to_ascii(
      "Ablation — EGNN locality vs graph-Transformer attention "
      "(molecular sources)");

  const auto gnn_slopes = sgnn::local_loglog_slopes(gnn_params, gnn_loss);
  const auto att_slopes = sgnn::local_loglog_slopes(att_params, att_loss);
  Table slopes({"Architecture", "early slope", "late slope",
                "flattening (late - early)"});
  slopes.add_row({"EGNN", Table::fixed(gnn_slopes.front(), 3),
                  Table::fixed(gnn_slopes.back(), 3),
                  Table::fixed(gnn_slopes.back() - gnn_slopes.front(), 3)});
  slopes.add_row({"GraphTransformer", Table::fixed(att_slopes.front(), 3),
                  Table::fixed(att_slopes.back(), 3),
                  Table::fixed(att_slopes.back() - att_slopes.front(), 3)});
  std::cout << "\n"
            << slopes.to_ascii(
                   "Scaling-slope comparison (less flattening = scales "
                   "further)");
  std::cout << "\nPaper context (Sec. IV-A): GNN locality is conjectured to "
               "cap model scaling\nbeyond ~2B params; attention can learn "
               "connections between any pair. This\nablation implements that "
               "comparison at reproduction scale.\n";

  report.add_table("comparison", table);
  report.add_table("slopes", slopes);
  report.write();
  return 0;
}
