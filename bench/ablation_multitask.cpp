// Ablation: multi-task learning — HydraGNN's defining capability (the
// paper adopts its architecture precisely for "multi-task learning
// capabilities", Sec. II-B). Trains the same backbone (a) on energy+forces
// only and (b) with the additional dipole-magnitude head, then compares
// the shared tasks' test metrics and the dipole error against the trivial
// predict-the-mean baseline.

#include "bench_common.hpp"

int main() {
  using namespace sgnn;
  using namespace sgnn::bench;

  BenchReport report("ablation_multitask");
  const Experiment experiment = make_experiment();
  const auto train_indices = experiment.dataset.subsample(
      experiment.split.train, paper_tb_to_bytes(0.4), true, 91);
  const auto train_view = experiment.dataset.view(train_indices);
  const auto test_view = experiment.dataset.view(experiment.split.test);
  std::cerr << "[bench] multitask ablation on " << train_view.size()
            << " graphs\n";

  // Trivial dipole baseline: predict the training-set mean.
  double mean_dipole = 0;
  for (const auto* g : train_view) mean_dipole += g->dipole;
  mean_dipole /= static_cast<double>(train_view.size());
  double baseline_mae = 0;
  for (const auto* g : test_view) {
    baseline_mae += std::abs(g->dipole - mean_dipole);
  }
  baseline_mae /= static_cast<double>(test_view.size());

  Table table({"Config", "Params", "Energy MAE/atom", "Force MAE",
               "Dipole MAE", "Seconds"});
  for (const bool multitask : {false, true}) {
    ModelConfig config;
    config.hidden_dim = 48;
    config.num_layers = 3;
    config.predict_dipole = multitask;
    EGNNModel model(config);
    TrainOptions options = sweep_protocol().train;
    Trainer trainer(model, options);
    trainer.set_energy_baseline(EnergyBaseline::fit(train_view));
    std::cerr << "[bench] multitask=" << multitask << "...\n";
    const WallTimer timer;
    DataLoader loader(train_view, options.batch_size, 3);
    trainer.fit(loader);
    const EvalMetrics metrics = trainer.evaluate(test_view, 16);
    table.add_row(
        {multitask ? "energy+forces+dipole" : "energy+forces",
         Table::human_count(static_cast<double>(model.num_parameters())),
         Table::fixed(metrics.energy_mae_per_atom, 4),
         Table::fixed(metrics.force_mae, 4),
         multitask ? Table::fixed(metrics.dipole_mae, 4) : std::string("-"),
         Table::fixed(timer.seconds(), 1)});
  }
  table.add_row({"predict-the-mean baseline", "-", "-", "-",
                 Table::fixed(baseline_mae, 4), "-"});
  std::cout << table.to_ascii(
      "Ablation — multi-task (third head: |dipole moment|) at " +
      paper_tb_label(0.4));
  std::cout << "\nChecks: the dipole head must beat predict-the-mean, and "
               "adding the third task\nmust not wreck the shared "
               "energy/force tasks (HydraGNN's multi-task premise).\n";

  report.add_table("multitask", table);
  report.add_value("dipole_baseline_mae", baseline_mae,
                   BenchReport::Better::kNone);
  report.write();
  return 0;
}
