#include "sgnn/ckpt/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <vector>

#include "sgnn/data/dataset.hpp"
#include "sgnn/nn/model_io.hpp"
#include "sgnn/obs/metrics.hpp"
#include "sgnn/train/distributed.hpp"
#include "sgnn/train/trainer.hpp"
#include "sgnn/train/zero.hpp"

namespace sgnn {
namespace {

/// Unique scratch directory, removed (recursively) on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_((std::filesystem::temp_directory_path() / name).string()) {
    std::filesystem::remove_all(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void spew(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

const ReferencePotential& shared_potential() {
  static const ReferencePotential potential;
  return potential;
}

const AggregatedDataset& tiny_dataset() {
  static const AggregatedDataset dataset = [] {
    DatasetOptions options;
    options.target_bytes = 600 << 10;
    options.seed = 23;
    return AggregatedDataset::generate(options, shared_potential());
  }();
  return dataset;
}

// -- container --------------------------------------------------------------

TEST(SnapshotContainerTest, PayloadRoundTripPreservesEverySectionType) {
  ckpt::SnapshotBuilder builder;
  builder.add_bytes("raw", std::string("\x00\x01payload", 9));
  builder.add_u64("unsigned", 0xDEADBEEFCAFEBABEULL);
  builder.add_i64("signed", -42);
  builder.add_f64("float", 2.5);
  const std::vector<real> values = {1.0, -2.0, 3.5};
  builder.add_reals("reals", values.data(), values.size());
  builder.add_u64s("indices", {7, 8, 9});

  const ckpt::SnapshotView view(builder.payload());
  EXPECT_EQ(view.bytes("raw"), std::string("\x00\x01payload", 9));
  EXPECT_EQ(view.u64("unsigned"), 0xDEADBEEFCAFEBABEULL);
  EXPECT_EQ(view.i64("signed"), -42);
  EXPECT_DOUBLE_EQ(view.f64("float"), 2.5);
  EXPECT_EQ(view.reals("reals"), values);
  EXPECT_EQ(view.u64s("indices"), (std::vector<std::uint64_t>{7, 8, 9}));
  EXPECT_TRUE(view.has("raw"));
  EXPECT_FALSE(view.has("absent"));
}

TEST(SnapshotContainerTest, PayloadBytesAreInsertionOrderIndependent) {
  ckpt::SnapshotBuilder forward;
  forward.add_u64("a", 1);
  forward.add_u64("b", 2);
  ckpt::SnapshotBuilder reversed;
  reversed.add_u64("b", 2);
  reversed.add_u64("a", 1);
  EXPECT_EQ(forward.payload(), reversed.payload());
}

TEST(SnapshotContainerTest, MissingSectionAndTypeMismatchThrow) {
  ckpt::SnapshotBuilder builder;
  builder.add_u64("counter", 3);
  builder.add_bytes("blob", "xyz");
  const ckpt::SnapshotView view(builder.payload());
  EXPECT_THROW(view.u64("absent"), Error);
  EXPECT_THROW(view.u64("blob"), Error);    // 3 bytes, not 8
  EXPECT_THROW(view.reals("blob"), Error);  // not a multiple of sizeof(real)
  EXPECT_THROW(ckpt::SnapshotBuilder(builder).add_u64("counter", 4), Error);
}

TEST(SnapshotContainerTest, FileRoundTripLeavesNoTemporary) {
  TempDir dir("sgnn_ckpt_file_test");
  std::filesystem::create_directories(dir.path());
  const std::string path =
      (std::filesystem::path(dir.path()) / "snap.sgck").string();
  ckpt::SnapshotBuilder builder;
  builder.add_i64("step", 12);
  const std::string payload = builder.payload();

  ckpt::write_snapshot_file(path, payload);
  EXPECT_EQ(ckpt::read_snapshot_file(path), payload);
  // The atomic-rename protocol must not leave the staging file behind.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  // Overwriting an existing snapshot is equally atomic.
  ckpt::SnapshotBuilder next;
  next.add_i64("step", 13);
  ckpt::write_snapshot_file(path, next.payload());
  EXPECT_EQ(ckpt::read_snapshot_file(path), next.payload());
}

// -- manager ----------------------------------------------------------------

std::string step_payload(std::int64_t step) {
  ckpt::SnapshotBuilder builder;
  builder.add_i64("meta.step", step);
  return builder.payload();
}

TEST(CheckpointManagerTest, RetentionKeepsOnlyTheNewestSnapshots) {
  TempDir dir("sgnn_ckpt_retention_test");
  ckpt::CheckpointManager manager(dir.path(), /*keep_last=*/2);
  for (std::uint64_t step = 1; step <= 5; ++step) {
    manager.save(step, step_payload(static_cast<std::int64_t>(step)));
  }
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir.path())) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 2u);
  const auto loaded = ckpt::CheckpointManager::load_latest(dir.path());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->step, 5u);
}

TEST(CheckpointManagerTest, RejectsRetentionWithoutAFallback) {
  EXPECT_THROW(ckpt::CheckpointManager("somewhere", /*keep_last=*/1), Error);
  EXPECT_THROW(ckpt::CheckpointManager("", /*keep_last=*/2), Error);
}

TEST(CheckpointManagerTest, LoadLatestFallsBackAcrossTruncatedSnapshot) {
  TempDir dir("sgnn_ckpt_truncate_test");
  ckpt::CheckpointManager manager(dir.path(), 2);
  manager.save(1, step_payload(1));
  const std::string newest = manager.save(2, step_payload(2));

  auto& skipped = obs::MetricsRegistry::instance().counter(
      "ckpt.corrupt_skipped");
  const std::int64_t skipped_before = skipped.value();
  std::filesystem::resize_file(newest,
                               std::filesystem::file_size(newest) / 2);

  const auto loaded = ckpt::CheckpointManager::load_latest(dir.path());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->step, 1u);
  EXPECT_EQ(ckpt::SnapshotView(loaded->payload).i64("meta.step"), 1);
  EXPECT_EQ(skipped.value(), skipped_before + 1);
}

TEST(CheckpointManagerTest, LoadLatestFallsBackAcrossBitFlippedSnapshot) {
  TempDir dir("sgnn_ckpt_bitflip_test");
  ckpt::CheckpointManager manager(dir.path(), 2);
  manager.save(3, step_payload(3));
  const std::string newest = manager.save(4, step_payload(4));

  std::string bytes = slurp(newest);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x20);
  spew(newest, bytes);

  const auto loaded = ckpt::CheckpointManager::load_latest(dir.path());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->step, 3u);
}

TEST(CheckpointManagerTest, LoadLatestReturnsNulloptWhenNothingReadable) {
  TempDir dir("sgnn_ckpt_empty_test");
  EXPECT_FALSE(ckpt::CheckpointManager::load_latest(dir.path()).has_value());
  // A directory of only corrupt snapshots also yields nullopt, not a throw.
  ckpt::CheckpointManager manager(dir.path(), 2);
  const std::string only = manager.save(1, step_payload(1));
  spew(only, "not a snapshot at all");
  EXPECT_FALSE(ckpt::CheckpointManager::load_latest(dir.path()).has_value());
}

TEST(CheckpointManagerTest, SaveAndRestoreRecordMetrics) {
  auto& registry = obs::MetricsRegistry::instance();
  const std::int64_t writes_before = registry.counter("ckpt.writes").value();
  const std::int64_t bytes_before = registry.counter("ckpt.bytes").value();
  const std::int64_t restores_before =
      registry.counter("ckpt.restores").value();

  TempDir dir("sgnn_ckpt_metrics_test");
  ckpt::CheckpointManager manager(dir.path(), 2);
  manager.save(1, step_payload(1));
  ASSERT_TRUE(ckpt::CheckpointManager::load_latest(dir.path()).has_value());

  EXPECT_EQ(registry.counter("ckpt.writes").value(), writes_before + 1);
  EXPECT_GT(registry.counter("ckpt.bytes").value(), bytes_before);
  EXPECT_EQ(registry.counter("ckpt.restores").value(), restores_before + 1);
}

// -- fault injection --------------------------------------------------------

TEST(SimulatedCrashTest, MaybeCrashHonorsThreshold) {
  ckpt::CheckpointOptions options;
  EXPECT_NO_THROW(ckpt::maybe_crash(options, 1000));  // disabled by default
  options.crash_after_step = 5;
  EXPECT_NO_THROW(ckpt::maybe_crash(options, 4));
  EXPECT_THROW(ckpt::maybe_crash(options, 5), ckpt::SimulatedCrash);
  try {
    ckpt::maybe_crash(options, 7);
    FAIL() << "expected SimulatedCrash";
  } catch (const ckpt::SimulatedCrash& crash) {
    EXPECT_EQ(crash.step(), 7);
  }
}

// -- single-process trainer resume ------------------------------------------

std::vector<real> trainer_run(const std::string& ckpt_dir,
                              std::int64_t every_steps,
                              std::int64_t crash_after,
                              const std::string& resume_from,
                              bool expect_crash) {
  const auto& dataset = tiny_dataset();
  const auto split = dataset.split(0.25, 5);

  ModelConfig config;
  config.hidden_dim = 10;
  config.num_layers = 2;
  EGNNModel model(config);

  TrainOptions options;
  options.epochs = 2;
  options.batch_size = 4;
  options.adam.learning_rate = 2e-3;
  options.max_grad_norm = 1.0;
  options.checkpoint.every_steps = every_steps;
  options.checkpoint.directory = ckpt_dir;
  options.checkpoint.crash_after_step = crash_after;
  options.checkpoint.resume_from = resume_from;

  Trainer trainer(model, options);
  DataLoader loader(dataset.view(split.train), options.batch_size, 11);
  if (expect_crash) {
    EXPECT_THROW(trainer.fit(loader), ckpt::SimulatedCrash);
  } else {
    trainer.fit(loader);
  }
  return flatten_parameters(model.parameters());
}

TEST(TrainerResumeTest, CrashAndResumeIsBitIdenticalToUninterruptedRun) {
  const auto& dataset = tiny_dataset();
  const auto split = dataset.split(0.25, 5);
  const std::int64_t steps_per_epoch =
      DataLoader(dataset.view(split.train), 4, 11).num_batches();
  ASSERT_GT(steps_per_epoch, 2);  // the crash step below must be reachable

  TempDir dir("sgnn_trainer_resume_test");
  // Reference: the same run with checkpointing but no crash.
  const std::vector<real> reference =
      trainer_run("", /*every_steps=*/0, /*crash_after=*/-1, "", false);

  // Crash mid-epoch-1 with snapshots every 2 steps: the newest good
  // snapshot precedes the crash, so the resume replays at least one step.
  trainer_run(dir.path(), 2, steps_per_epoch + 2, "", true);
  ASSERT_TRUE(ckpt::CheckpointManager::load_latest(dir.path()).has_value());

  // Resume and finish; parameters must match the reference byte for byte.
  const std::vector<real> resumed =
      trainer_run("", 0, -1, dir.path(), false);
  EXPECT_EQ(resumed, reference);
}

TEST(TrainerResumeTest, ResumeFromEpochBoundaryCheckpointIsBitIdentical) {
  const auto& dataset = tiny_dataset();
  const auto split = dataset.split(0.25, 5);
  const std::int64_t steps_per_epoch =
      DataLoader(dataset.view(split.train), 4, 11).num_batches();
  ASSERT_GT(steps_per_epoch, 1);

  TempDir dir("sgnn_trainer_boundary_test");
  const std::vector<real> reference = trainer_run("", 0, -1, "", false);
  // Snapshot lands exactly on the last step of epoch 0, then crash.
  trainer_run(dir.path(), steps_per_epoch, steps_per_epoch, "", true);
  const std::vector<real> resumed = trainer_run("", 0, -1, dir.path(), false);
  EXPECT_EQ(resumed, reference);
}

TEST(TrainerResumeTest, CorruptNewestCheckpointFallsBackToPreviousGood) {
  TempDir dir("sgnn_trainer_corrupt_test");
  const std::vector<real> reference = trainer_run("", 0, -1, "", false);

  // Snapshots every 2 steps, crash after 6: on-disk 4 and 6 (keep_last=2).
  trainer_run(dir.path(), 2, 6, "", true);
  const auto newest = ckpt::CheckpointManager::load_latest(dir.path());
  ASSERT_TRUE(newest.has_value());
  ASSERT_EQ(newest->step, 6u);
  std::string bytes = slurp(newest->path);
  bytes[bytes.size() / 3] = static_cast<char>(bytes[bytes.size() / 3] ^ 0x01);
  spew(newest->path, bytes);

  // Resume silently falls back to snapshot 4 and still converges to the
  // reference bit-for-bit (it just replays two more steps).
  const auto fallback = ckpt::CheckpointManager::load_latest(dir.path());
  ASSERT_TRUE(fallback.has_value());
  EXPECT_EQ(fallback->step, 4u);
  const std::vector<real> resumed = trainer_run("", 0, -1, dir.path(), false);
  EXPECT_EQ(resumed, reference);
}

// -- distributed trainer resume ---------------------------------------------

class DistributedResume : public ::testing::TestWithParam<DistStrategy> {};

std::vector<real> dist_run(DistStrategy strategy, const DDStore& store,
                           const std::string& ckpt_dir,
                           std::int64_t every_steps, std::int64_t crash_after,
                           const std::string& resume_from, bool expect_crash,
                           std::int64_t crash_in_overlap = -1) {
  ModelConfig config;
  config.hidden_dim = 10;
  config.num_layers = 2;
  DistTrainOptions options;
  options.num_ranks = 2;
  options.epochs = 2;
  options.per_rank_batch_size = 4;
  options.strategy = strategy;
  options.max_grad_norm = 1.0;
  options.schedule = LrSchedule::warmup_cosine(2e-3, 3, 40);
  options.checkpoint.every_steps = every_steps;
  options.checkpoint.directory = ckpt_dir;
  options.checkpoint.crash_after_step = crash_after;
  options.checkpoint.crash_in_overlap_step = crash_in_overlap;
  options.checkpoint.resume_from = resume_from;

  DistributedTrainer trainer(config, options);
  if (expect_crash) {
    EXPECT_THROW(trainer.train(store), ckpt::SimulatedCrash);
  } else {
    trainer.train(store);
    EXPECT_EQ(trainer.replica_divergence(), 0.0);
  }
  return flatten_parameters(
      const_cast<EGNNModel&>(trainer.model()).parameters());
}

TEST_P(DistributedResume, CrashAndResumeIsBitIdenticalToUninterruptedRun) {
  const DistStrategy strategy = GetParam();
  DDStore store(2);
  store.insert(tiny_dataset().graphs());
  const std::int64_t steps_per_epoch =
      store.size() / (2 * 4);
  ASSERT_GT(steps_per_epoch, 1);

  const std::vector<real> reference =
      dist_run(strategy, store, "", 0, -1, "", false);

  // Crash mid-epoch-1 (one step past the epoch boundary), snapshots every
  // step — the resume restores a mid-epoch position and replays from there.
  TempDir dir("sgnn_dist_resume_test");
  dist_run(strategy, store, dir.path(), 1, steps_per_epoch + 1, "", true);
  ASSERT_TRUE(ckpt::CheckpointManager::load_latest(dir.path()).has_value());

  const std::vector<real> resumed =
      dist_run(strategy, store, "", 0, -1, dir.path(), false);
  EXPECT_EQ(resumed, reference);
}

TEST_P(DistributedResume, EpochBoundaryCheckpointResumesBitIdentically) {
  const DistStrategy strategy = GetParam();
  DDStore store(2);
  store.insert(tiny_dataset().graphs());
  const std::int64_t steps_per_epoch = store.size() / (2 * 4);
  ASSERT_GT(steps_per_epoch, 1);

  const std::vector<real> reference =
      dist_run(strategy, store, "", 0, -1, "", false);
  TempDir dir("sgnn_dist_boundary_test");
  dist_run(strategy, store, dir.path(), steps_per_epoch, steps_per_epoch, "",
           true);
  const std::vector<real> resumed =
      dist_run(strategy, store, "", 0, -1, dir.path(), false);
  EXPECT_EQ(resumed, reference);
}

TEST_P(DistributedResume, CrashInsideOverlapWindowResumesBitIdentically) {
  // The hardest crash point the overlapped path introduces: every gradient
  // bucket of step N has been POSTED (the progress engine may already be
  // summing them) but nothing has been drained — no parameter or moment has
  // been touched. The crash must land symmetrically on all ranks (no rank
  // stranded in a collective), the bucketer teardown must retire the
  // in-flight posts, and resuming from step N-1's snapshot must replay to
  // the exact bytes of an uninterrupted run. Bucketing is on by default in
  // DistTrainOptions, so dist_run exercises the overlapped path as-is.
  const DistStrategy strategy = GetParam();
  DDStore store(2);
  store.insert(tiny_dataset().graphs());
  const std::int64_t steps_per_epoch = store.size() / (2 * 4);
  ASSERT_GT(steps_per_epoch, 1);

  const std::vector<real> reference =
      dist_run(strategy, store, "", 0, -1, "", false);

  TempDir dir("sgnn_dist_overlap_crash_test");
  dist_run(strategy, store, dir.path(), 1, -1, "", true,
           /*crash_in_overlap=*/steps_per_epoch + 1);
  const auto latest = ckpt::CheckpointManager::load_latest(dir.path());
  ASSERT_TRUE(latest.has_value());
  // The interrupted step never completed, so the newest snapshot is the
  // previous step's.
  EXPECT_EQ(latest->step,
            static_cast<std::uint64_t>(steps_per_epoch));

  const std::vector<real> resumed =
      dist_run(strategy, store, "", 0, -1, dir.path(), false);
  EXPECT_EQ(resumed, reference);
}

INSTANTIATE_TEST_SUITE_P(Strategies, DistributedResume,
                         ::testing::Values(DistStrategy::kDDP,
                                           DistStrategy::kZeRO1));

TEST(DistributedResumeTest, MismatchedTopologyIsRejected) {
  DDStore store2(2);
  store2.insert(tiny_dataset().graphs());
  TempDir dir("sgnn_dist_mismatch_test");
  dist_run(DistStrategy::kDDP, store2, dir.path(), 2, 3, "", true);

  // Wrong strategy for the stored optimizer state.
  ModelConfig config;
  config.hidden_dim = 10;
  config.num_layers = 2;
  DistTrainOptions options;
  options.num_ranks = 2;
  options.epochs = 1;
  options.per_rank_batch_size = 4;
  options.strategy = DistStrategy::kZeRO1;
  options.checkpoint.resume_from = dir.path();
  DistributedTrainer wrong_strategy(config, options);
  EXPECT_THROW(wrong_strategy.train(store2), Error);

  // Wrong rank count.
  DDStore store4(4);
  store4.insert(tiny_dataset().graphs());
  options.strategy = DistStrategy::kDDP;
  options.num_ranks = 4;
  DistributedTrainer wrong_ranks(config, options);
  EXPECT_THROW(wrong_ranks.train(store4), Error);
}

// -- graph-parallel resume ----------------------------------------------------

std::vector<real> gpar_run(const DDStore& store, const std::string& ckpt_dir,
                           std::int64_t every_steps,
                           const std::string& resume_from, bool expect_crash,
                           std::int64_t crash_in_overlap = -1) {
  ModelConfig config;
  config.hidden_dim = 10;
  config.num_layers = 2;
  DistTrainOptions options;
  options.num_ranks = 2;
  options.epochs = 2;
  options.per_rank_batch_size = 4;  // the GLOBAL batch under graph_parallel
  options.strategy = DistStrategy::kDDP;
  options.graph_parallel = true;
  options.max_grad_norm = 0.0;  // required by the bit-identity contract
  options.schedule = LrSchedule::warmup_cosine(2e-3, 3, 40);
  options.checkpoint.every_steps = every_steps;
  options.checkpoint.directory = ckpt_dir;
  options.checkpoint.crash_in_overlap_step = crash_in_overlap;
  options.checkpoint.resume_from = resume_from;

  DistributedTrainer trainer(config, options);
  if (expect_crash) {
    EXPECT_THROW(trainer.train(store), ckpt::SimulatedCrash);
  } else {
    trainer.train(store);
    EXPECT_EQ(trainer.replica_divergence(), 0.0);
  }
  return flatten_parameters(
      const_cast<EGNNModel&>(trainer.model()).parameters());
}

TEST(GraphParallelResumeTest, CrashInHaloExchangeWindowResumesBitIdentically) {
  // Graph-parallel twist on the overlap-crash test: the crash fires INSIDE
  // the halo-exchange window — boundary gathers for x and h are posted on
  // every rank, nothing has been waited on. All ranks throw together at the
  // same step, the exchanger destructors drain the symmetric in-flight
  // collectives, and resuming from the previous step's snapshot replays to
  // the exact bytes of an uninterrupted graph-parallel run.
  DDStore store(2);
  store.insert(tiny_dataset().graphs());
  // Under graph_parallel the ranks cooperate on ONE global batch per step.
  const std::int64_t steps_per_epoch = store.size() / 4;
  ASSERT_GT(steps_per_epoch, 1);

  const std::vector<real> reference = gpar_run(store, "", 0, "", false);

  TempDir dir("sgnn_gpar_halo_crash_test");
  gpar_run(store, dir.path(), 1, "", true,
           /*crash_in_overlap=*/steps_per_epoch + 1);
  const auto latest = ckpt::CheckpointManager::load_latest(dir.path());
  ASSERT_TRUE(latest.has_value());
  // The interrupted step never completed; the newest snapshot is mid-epoch.
  EXPECT_EQ(latest->step, static_cast<std::uint64_t>(steps_per_epoch));

  const std::vector<real> resumed = gpar_run(store, "", 0, dir.path(), false);
  EXPECT_EQ(resumed, reference);
}

TEST(GraphParallelResumeTest, SnapshotKindsAreMutuallyExclusive) {
  // Graph-parallel snapshots carry plain per-rank Adam state under
  // meta.kind "dist.gpar"; replicated runs write "dist" with DDP/ZeRO
  // layouts. Cross-mode resume must fail loudly in BOTH directions rather
  // than silently reinterpret moment buffers.
  DDStore store(2);
  store.insert(tiny_dataset().graphs());
  ModelConfig config;
  config.hidden_dim = 10;
  config.num_layers = 2;

  // A graph-parallel snapshot is rejected by a replicated resume.
  TempDir gpar_dir("sgnn_gpar_kind_test");
  gpar_run(store, gpar_dir.path(), 2, "", true, /*crash_in_overlap=*/3);
  ASSERT_TRUE(
      ckpt::CheckpointManager::load_latest(gpar_dir.path()).has_value());
  DistTrainOptions ddp_options;
  ddp_options.num_ranks = 2;
  ddp_options.epochs = 1;
  ddp_options.per_rank_batch_size = 4;
  ddp_options.strategy = DistStrategy::kDDP;
  ddp_options.checkpoint.resume_from = gpar_dir.path();
  DistributedTrainer ddp_trainer(config, ddp_options);
  EXPECT_THROW(ddp_trainer.train(store), Error);

  // And a replicated snapshot is rejected by a graph-parallel resume.
  TempDir ddp_dir("sgnn_dist_kind_for_gpar_test");
  dist_run(DistStrategy::kDDP, store, ddp_dir.path(), 2, 3, "", true);
  DistTrainOptions gpar_options;
  gpar_options.num_ranks = 2;
  gpar_options.epochs = 1;
  gpar_options.per_rank_batch_size = 4;
  gpar_options.strategy = DistStrategy::kDDP;
  gpar_options.graph_parallel = true;
  gpar_options.max_grad_norm = 0.0;
  gpar_options.checkpoint.resume_from = ddp_dir.path();
  DistributedTrainer gpar_trainer(config, gpar_options);
  EXPECT_THROW(gpar_trainer.train(store), Error);
}

TEST(DistributedResumeTest, TrainerSnapshotIsRejectedByDistributedTrainer) {
  TempDir dir("sgnn_dist_kind_test");
  trainer_run(dir.path(), 2, 4, "", true);  // writes "trainer" snapshots

  DDStore store(2);
  store.insert(tiny_dataset().graphs());
  ModelConfig config;
  config.hidden_dim = 10;
  config.num_layers = 2;
  DistTrainOptions options;
  options.num_ranks = 2;
  options.epochs = 1;
  options.per_rank_batch_size = 4;
  options.checkpoint.resume_from = dir.path();
  DistributedTrainer trainer(config, options);
  EXPECT_THROW(trainer.train(store), Error);
}

}  // namespace
}  // namespace sgnn
