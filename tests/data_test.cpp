#include "sgnn/data/dataset.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "sgnn/data/loader.hpp"
#include "sgnn/util/error.hpp"

namespace sgnn {
namespace {

const ReferencePotential& shared_potential() {
  static const ReferencePotential potential;
  return potential;
}

/// One small shared dataset for the read-only tests (generation dominates
/// test runtime, so build it once).
const AggregatedDataset& shared_dataset() {
  static const AggregatedDataset dataset = [] {
    DatasetOptions options;
    options.target_bytes = 3 << 20;
    options.seed = 7;
    return AggregatedDataset::generate(options, shared_potential());
  }();
  return dataset;
}

TEST(SourcesTest, SpecsCoverAllSourcesAndFractionsSumToOne) {
  double total = 0;
  for (const auto source : all_sources()) {
    const auto& spec = source_spec(source);
    EXPECT_FALSE(spec.name.empty());
    EXPECT_GT(spec.byte_fraction, 0);
    EXPECT_GT(spec.max_atoms, spec.min_atoms);
    total += spec.byte_fraction;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(SourcesTest, MolecularSourcesAreOpenPeriodicSourcesAreNot) {
  EXPECT_FALSE(source_spec(DataSource::kANI1x).periodic);
  EXPECT_FALSE(source_spec(DataSource::kQM7X).periodic);
  EXPECT_TRUE(source_spec(DataSource::kOC2020).periodic);
  EXPECT_TRUE(source_spec(DataSource::kOC2022).periodic);
  EXPECT_TRUE(source_spec(DataSource::kMPTrj).periodic);
}

TEST(SourcesTest, GeneratedStructuresAreValidAndMatchGeometryClass) {
  Rng rng(1);
  for (const auto source : all_sources()) {
    for (int i = 0; i < 3; ++i) {
      const AtomicStructure s = generate_structure(source, rng);
      s.validate();
      EXPECT_EQ(s.periodic, source_spec(source).periodic)
          << source_spec(source).name;
      EXPECT_GE(s.num_atoms(), 2) << source_spec(source).name;
    }
  }
}

TEST(SourcesTest, MoleculesAreConnectedAtCutoff) {
  Rng rng(2);
  const ReferencePotential& pot = shared_potential();
  for (int i = 0; i < 5; ++i) {
    const MolecularGraph g = generate_sample(DataSource::kANI1x, rng, pot);
    // BFS from node 0 must reach every atom.
    std::vector<char> seen(static_cast<std::size_t>(g.num_nodes()), 0);
    std::vector<std::int64_t> queue = {0};
    seen[0] = 1;
    while (!queue.empty()) {
      const std::int64_t node = queue.back();
      queue.pop_back();
      for (std::int64_t k = 0; k < g.num_edges(); ++k) {
        const auto ki = static_cast<std::size_t>(k);
        if (g.edges.src[ki] == node &&
            !seen[static_cast<std::size_t>(g.edges.dst[ki])]) {
          seen[static_cast<std::size_t>(g.edges.dst[ki])] = 1;
          queue.push_back(g.edges.dst[ki]);
        }
      }
    }
    EXPECT_EQ(std::count(seen.begin(), seen.end(), 1), g.num_nodes());
  }
}

TEST(SourcesTest, LabelsAreFiniteAndNoiseIsApplied) {
  Rng rng_a(3);
  Rng rng_b(3);
  const ReferencePotential& pot = shared_potential();
  LabelNoise no_noise;
  no_noise.energy_sigma_per_atom = 0;
  no_noise.force_sigma = 0;
  const MolecularGraph clean =
      generate_sample(DataSource::kMPTrj, rng_a, pot, no_noise);
  const MolecularGraph noisy = generate_sample(DataSource::kMPTrj, rng_b, pot);
  EXPECT_TRUE(std::isfinite(clean.energy));
  // Same structure (same rng stream), labels differ only by noise.
  EXPECT_EQ(clean.structure.species, noisy.structure.species);
  EXPECT_NE(clean.energy, noisy.energy);
}

TEST(SourcesTest, CleanLabelsMatchPotentialExactly) {
  Rng rng(4);
  const ReferencePotential& pot = shared_potential();
  LabelNoise no_noise;
  no_noise.energy_sigma_per_atom = 0;
  no_noise.force_sigma = 0;
  const MolecularGraph g =
      generate_sample(DataSource::kANI1x, rng, pot, no_noise);
  const PotentialResult reference = pot.evaluate(g.structure, g.edges);
  EXPECT_DOUBLE_EQ(g.energy, reference.energy);
  for (std::size_t i = 0; i < g.forces.size(); ++i) {
    EXPECT_EQ(g.forces[i], reference.forces[i]);
  }
}

TEST(DatasetTest, ByteSharesFollowTableI) {
  const auto& dataset = shared_dataset();
  EXPECT_GE(dataset.total_bytes(), 3u << 20);
  for (const auto source : all_sources()) {
    const auto& stats = dataset.stats(source);
    EXPECT_GT(stats.num_graphs, 0) << source_spec(source).name;
    const double share = static_cast<double>(stats.bytes) /
                         static_cast<double>(dataset.total_bytes());
    // One graph of slack on either side of the target share.
    EXPECT_NEAR(share, source_spec(source).byte_fraction, 0.05)
        << source_spec(source).name;
  }
}

TEST(DatasetTest, GenerationIsDeterministic) {
  DatasetOptions options;
  options.target_bytes = 256 << 10;
  options.seed = 11;
  const auto a = AggregatedDataset::generate(options, shared_potential());
  const auto b = AggregatedDataset::generate(options, shared_potential());
  ASSERT_EQ(a.graphs().size(), b.graphs().size());
  EXPECT_EQ(a.total_bytes(), b.total_bytes());
  for (std::size_t i = 0; i < a.graphs().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.graphs()[i].energy, b.graphs()[i].energy);
  }
}

TEST(DatasetTest, SplitIsDisjointAndCoversEverything) {
  const auto& dataset = shared_dataset();
  const auto split = dataset.split(0.2, 99);
  std::set<std::size_t> train(split.train.begin(), split.train.end());
  std::set<std::size_t> test(split.test.begin(), split.test.end());
  EXPECT_EQ(train.size() + test.size(), dataset.graphs().size());
  for (const auto t : test) EXPECT_FALSE(train.count(t));
  // Test share close to requested byte fraction.
  const double share = static_cast<double>(dataset.bytes_of(split.test)) /
                       static_cast<double>(dataset.total_bytes());
  EXPECT_NEAR(share, 0.2, 0.06);
}

TEST(DatasetTest, ProportionalSubsampleKeepsTheMix) {
  const auto& dataset = shared_dataset();
  const auto split = dataset.split(0.2, 99);
  const auto subset = dataset.subsample(
      split.train, dataset.total_bytes() / 3, /*proportional=*/true, 5);
  // OC2020 should still dominate the subset's bytes (it is 61% of the mix).
  std::uint64_t oc_bytes = 0;
  std::uint64_t total = 0;
  for (const auto index : subset) {
    const auto bytes = dataset.graphs()[index].serialized_bytes();
    total += bytes;
    if (dataset.source_of(index) == DataSource::kOC2020) oc_bytes += bytes;
  }
  EXPECT_GT(static_cast<double>(oc_bytes) / static_cast<double>(total), 0.4);
}

TEST(DatasetTest, BiasedSubsampleFavorsMolecularSources) {
  const auto& dataset = shared_dataset();
  const auto split = dataset.split(0.2, 99);
  const std::uint64_t budget = dataset.total_bytes() / 12;
  const auto biased =
      dataset.subsample(split.train, budget, /*proportional=*/false, 5);
  std::uint64_t molecular = 0;
  std::uint64_t total = 0;
  for (const auto index : biased) {
    const auto bytes = dataset.graphs()[index].serialized_bytes();
    total += bytes;
    const auto source = dataset.source_of(index);
    if (source == DataSource::kANI1x || source == DataSource::kQM7X ||
        source == DataSource::kMPTrj) {
      molecular += bytes;
    }
  }
  // In the proportional mix these sources are ~6% of bytes; the biased
  // subset should be dominated by them.
  EXPECT_GT(static_cast<double>(molecular) / static_cast<double>(total), 0.5);
}

TEST(DatasetTest, SubsampleRespectsBudget) {
  const auto& dataset = shared_dataset();
  const auto split = dataset.split(0.2, 99);
  const std::uint64_t budget = dataset.total_bytes() / 4;
  const auto subset = dataset.subsample(split.train, budget, true, 5);
  const std::uint64_t used = dataset.bytes_of(subset);
  // Budget may be exceeded by at most one (largest) graph.
  EXPECT_LT(used, budget + 200 * 1024);
  EXPECT_GT(used, budget / 2);
}

TEST(LoaderTest, CoversEveryGraphOncePerEpoch) {
  const auto& dataset = shared_dataset();
  const auto split = dataset.split(0.2, 99);
  auto subset_view = dataset.view(split.test);
  DataLoader loader(subset_view, 4, /*seed=*/3);
  std::size_t seen = 0;
  while (loader.has_next()) {
    seen += static_cast<std::size_t>(loader.next().num_graphs);
  }
  EXPECT_EQ(seen, subset_view.size());
  EXPECT_FALSE(loader.has_next());
  loader.begin_epoch();
  EXPECT_TRUE(loader.has_next());
}

TEST(LoaderTest, ShuffleChangesOrderButNotContents) {
  const auto& dataset = shared_dataset();
  const auto split = dataset.split(0.2, 99);
  auto subset_view = dataset.view(split.test);
  ASSERT_GE(subset_view.size(), 4u);

  DataLoader shuffled(subset_view, 1, 3, /*shuffle=*/true);
  DataLoader ordered(subset_view, 1, 3, /*shuffle=*/false);
  std::multiset<double> energies_shuffled;
  std::vector<double> order_shuffled;
  std::vector<double> order_plain;
  while (shuffled.has_next()) {
    const double e = shuffled.next().energy.item();
    energies_shuffled.insert(e);
    order_shuffled.push_back(e);
  }
  std::multiset<double> energies_plain;
  while (ordered.has_next()) {
    const double e = ordered.next().energy.item();
    energies_plain.insert(e);
    order_plain.push_back(e);
  }
  EXPECT_EQ(energies_shuffled, energies_plain);
  EXPECT_NE(order_shuffled, order_plain);
}

TEST(LoaderTest, BatchSizeBounds) {
  const auto& dataset = shared_dataset();
  const auto split = dataset.split(0.2, 99);
  auto subset_view = dataset.view(split.test);
  DataLoader loader(subset_view, 3, 3);
  EXPECT_EQ(loader.num_batches(),
            (static_cast<std::int64_t>(subset_view.size()) + 2) / 3);
  while (loader.has_next()) {
    EXPECT_LE(loader.next().num_graphs, 3);
  }
}

}  // namespace
}  // namespace sgnn
