// Tests for tools/sgnn_bench_compare: JSON parsing, report extraction,
// and the regression verdicts the CI perf-smoke job relies on.

#include <string>

#include <gtest/gtest.h>

#include "compare.hpp"

namespace {

using namespace sgnn::bench_compare;

std::string report_json(double time_s, double items_per_s) {
  return "{\"schema\":\"sgnn.bench_report.v1\",\"name\":\"demo\","
         "\"values\":{"
         "\"step.time_s\":{\"value\":" +
         std::to_string(time_s) +
         ",\"better\":\"lower\"},"
         "\"step.items_per_s\":{\"value\":" +
         std::to_string(items_per_s) +
         ",\"better\":\"higher\"},"
         "\"model.params\":{\"value\":1024,\"better\":\"none\"}}}";
}

// -- JSON parser ------------------------------------------------------------

TEST(BenchCompareJson, ParsesScalarsArraysObjects) {
  const Json v = parse_json(
      " { \"a\" : [1, -2.5e3, true, false, null, \"s\\u0041\\n\"] } ");
  ASSERT_EQ(v.type, Json::Type::kObject);
  const auto& arr = v.object.at("a");
  ASSERT_EQ(arr.type, Json::Type::kArray);
  ASSERT_EQ(arr.array.size(), 6u);
  EXPECT_DOUBLE_EQ(arr.array[0].number, 1.0);
  EXPECT_DOUBLE_EQ(arr.array[1].number, -2500.0);
  EXPECT_TRUE(arr.array[2].boolean);
  EXPECT_FALSE(arr.array[3].boolean);
  EXPECT_EQ(arr.array[4].type, Json::Type::kNull);
  EXPECT_EQ(arr.array[5].str, "sA\n");
}

TEST(BenchCompareJson, RejectsMalformedInput) {
  EXPECT_THROW(parse_json("{"), ParseError);
  EXPECT_THROW(parse_json("{\"a\":}"), ParseError);
  EXPECT_THROW(parse_json("[1,]"), ParseError);
  EXPECT_THROW(parse_json("{} trailing"), ParseError);
  EXPECT_THROW(parse_json("\"unterminated"), ParseError);
  EXPECT_THROW(parse_json("1.2.3"), ParseError);
}

TEST(BenchCompareJson, RoundTripsOurOwnReports) {
  const Report r = parse_report(report_json(0.5, 100.0));
  EXPECT_EQ(r.name, "demo");
  ASSERT_EQ(r.values.size(), 3u);
  EXPECT_DOUBLE_EQ(r.values.at("step.time_s").value, 0.5);
  EXPECT_EQ(r.values.at("step.time_s").better, "lower");
  EXPECT_EQ(r.values.at("model.params").better, "none");
}

TEST(BenchCompareJson, RejectsWrongSchema) {
  EXPECT_THROW(parse_report("{\"values\":{}}"), ParseError);
  EXPECT_THROW(
      parse_report("{\"schema\":\"sgnn.bench_report.v99\",\"values\":{}}"),
      ParseError);
  EXPECT_THROW(parse_report("{\"schema\":\"sgnn.bench_report.v1\"}"),
               ParseError);
}

// -- comparison verdicts ----------------------------------------------------

TEST(BenchCompare, NoChangeIsClean) {
  const Report base = parse_report(report_json(0.5, 100.0));
  const CompareResult result = compare(base, base, 0.10);
  EXPECT_FALSE(result.has_regression);
  ASSERT_EQ(result.deltas.size(), 3u);
  for (const auto& d : result.deltas) {
    EXPECT_FALSE(d.regression);
    EXPECT_DOUBLE_EQ(d.rel_change, 0.0);
  }
}

TEST(BenchCompare, SlowdownBeyondThresholdIsRegression) {
  const Report base = parse_report(report_json(0.5, 100.0));
  const Report cur = parse_report(report_json(0.5 * 1.5, 100.0));
  const CompareResult result = compare(base, cur, 0.10);
  EXPECT_TRUE(result.has_regression);
  for (const auto& d : result.deltas) {
    EXPECT_EQ(d.regression, d.key == "step.time_s") << d.key;
  }
}

TEST(BenchCompare, ThroughputDropIsRegressionHigherIsBetter) {
  const Report base = parse_report(report_json(0.5, 100.0));
  const Report cur = parse_report(report_json(0.5, 80.0));
  const CompareResult result = compare(base, cur, 0.10);
  EXPECT_TRUE(result.has_regression);
  for (const auto& d : result.deltas) {
    EXPECT_EQ(d.regression, d.key == "step.items_per_s") << d.key;
  }
}

TEST(BenchCompare, ImprovementAndNoneNeverRegress) {
  const Report base = parse_report(report_json(0.5, 100.0));
  // Faster, higher throughput — and `none` moved a lot.
  Report cur = parse_report(report_json(0.25, 200.0));
  cur.values.at("model.params").value = 999999;
  const CompareResult result = compare(base, cur, 0.10);
  EXPECT_FALSE(result.has_regression);
  for (const auto& d : result.deltas) {
    EXPECT_FALSE(d.regression) << d.key;
    if (d.key != "model.params") {
      EXPECT_TRUE(d.improvement) << d.key;
    }
  }
}

TEST(BenchCompare, WithinThresholdIsClean) {
  const Report base = parse_report(report_json(0.5, 100.0));
  const Report cur = parse_report(report_json(0.5 * 1.09, 100.0 * 0.92));
  EXPECT_FALSE(compare(base, cur, 0.10).has_regression);
  // The same drift fails a tighter gate.
  EXPECT_TRUE(compare(base, cur, 0.05).has_regression);
}

TEST(BenchCompare, DisjointKeysAreReportedNotFailed) {
  Report base = parse_report(report_json(0.5, 100.0));
  Report cur = parse_report(report_json(0.5, 100.0));
  base.values.insert_or_assign("old.metric", Value{1.0, "lower"});
  cur.values.insert_or_assign("new.metric", Value{1.0, "lower"});
  const CompareResult result = compare(base, cur, 0.10);
  EXPECT_FALSE(result.has_regression);
  ASSERT_EQ(result.only_baseline.size(), 1u);
  EXPECT_EQ(result.only_baseline[0], "old.metric");
  ASSERT_EQ(result.only_current.size(), 1u);
  EXPECT_EQ(result.only_current[0], "new.metric");
}

TEST(BenchCompare, ZeroBaselineDoesNotDivideByZero) {
  Report base = parse_report(report_json(0.5, 100.0));
  Report cur = parse_report(report_json(0.5, 100.0));
  base.values.insert_or_assign("z", Value{0.0, "lower"});
  cur.values.insert_or_assign("z", Value{1.0, "lower"});
  const CompareResult result = compare(base, cur, 0.10);
  EXPECT_TRUE(result.has_regression);  // 0 -> 1 with lower-is-better
}

}  // namespace
