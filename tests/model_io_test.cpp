#include "sgnn/nn/model_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "sgnn/data/sources.hpp"
#include "sgnn/graph/batch.hpp"
#include "sgnn/util/error.hpp"
#include "sgnn/util/rng.hpp"

namespace sgnn {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_((std::filesystem::temp_directory_path() / name).string()) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

GraphBatch test_batch() {
  const ReferencePotential potential;
  Rng rng(21);
  std::vector<MolecularGraph> graphs = {
      generate_sample(DataSource::kANI1x, rng, potential),
      generate_sample(DataSource::kMPTrj, rng, potential)};
  return GraphBatch::from_graphs(graphs);
}

ModelConfig small_config() {
  ModelConfig config;
  config.hidden_dim = 12;
  config.num_layers = 2;
  config.seed = 1234;
  return config;
}

TEST(ModelIoTest, SaveLoadRoundTripPreservesPredictions) {
  const TempFile file("sgnn_model_roundtrip.sgmd");
  const GraphBatch batch = test_batch();

  const EGNNModel original(small_config());
  const auto expected = original.forward(batch);
  save_model(original, file.path());

  const auto restored = load_model(file.path());
  const auto actual = restored->forward(batch);
  EXPECT_EQ(actual.energy.to_vector(), expected.energy.to_vector());
  EXPECT_EQ(actual.forces.to_vector(), expected.forces.to_vector());
  EXPECT_EQ(restored->num_parameters(), original.num_parameters());
}

TEST(ModelIoTest, PeekConfigReadsHeaderOnly) {
  const TempFile file("sgnn_model_peek.sgmd");
  ModelConfig config = small_config();
  config.cutoff = 4.25;
  const EGNNModel model(config);
  save_model(model, file.path());
  const ModelConfig peeked = peek_model_config(file.path());
  EXPECT_EQ(peeked.hidden_dim, 12);
  EXPECT_EQ(peeked.num_layers, 2);
  EXPECT_DOUBLE_EQ(peeked.cutoff, 4.25);
}

TEST(ModelIoTest, LoadParametersIntoExistingModel) {
  const TempFile file("sgnn_model_into.sgmd");
  const GraphBatch batch = test_batch();

  const EGNNModel source(small_config());
  save_model(source, file.path());

  ModelConfig other = small_config();
  other.seed = 9999;  // different init, same architecture
  EGNNModel target(other);
  EXPECT_NE(target.forward(batch).energy.at(0, 0),
            source.forward(batch).energy.at(0, 0));
  load_parameters_into(target, file.path());
  EXPECT_EQ(target.forward(batch).energy.to_vector(),
            source.forward(batch).energy.to_vector());
}

TEST(ModelIoTest, ArchitectureMismatchIsRejected) {
  const TempFile file("sgnn_model_mismatch.sgmd");
  const EGNNModel source(small_config());
  save_model(source, file.path());

  ModelConfig wider = small_config();
  wider.hidden_dim = 16;
  EGNNModel target(wider);
  EXPECT_THROW(load_parameters_into(target, file.path()), Error);
}

TEST(ModelIoTest, CorruptedFileIsRejected) {
  const TempFile file("sgnn_model_corrupt.sgmd");
  const EGNNModel model(small_config());
  save_model(model, file.path());
  {
    std::fstream f(file.path(),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(200);
    const char byte = 0x5A;
    f.write(&byte, 1);
  }
  EXPECT_THROW(load_model(file.path()), Error);
}

TEST(ModelIoTest, TruncatedFileIsRejected) {
  const TempFile file("sgnn_model_trunc.sgmd");
  const EGNNModel model(small_config());
  save_model(model, file.path());
  const auto full_size = std::filesystem::file_size(file.path());
  std::filesystem::resize_file(file.path(), full_size / 2);
  EXPECT_THROW(load_model(file.path()), Error);
}

TEST(ModelIoTest, TruncatedPayloadLeavesModelUnchanged) {
  // Restore is two-phase (stage everything, then commit): a payload that
  // fails validation partway through must not tear the target model.
  const GraphBatch batch = test_batch();
  const EGNNModel source(small_config());
  std::string payload = model_payload_bytes(source);

  ModelConfig other = small_config();
  other.seed = 4242;
  EGNNModel target(other);
  const auto before = target.forward(batch).energy.to_vector();

  payload.resize(payload.size() / 2);
  EXPECT_THROW(load_model_payload(target, payload), Error);
  EXPECT_EQ(target.forward(batch).energy.to_vector(), before);
}

TEST(ModelIoTest, MissingFileIsRejected) {
  EXPECT_THROW(load_model("/nonexistent/sgnn_model.sgmd"), Error);
}

TEST(ModelIoTest, NotAModelFileIsRejected) {
  const TempFile file("sgnn_model_garbage.sgmd");
  {
    std::ofstream f(file.path(), std::ios::binary);
    f << "garbage garbage garbage garbage garbage";
  }
  EXPECT_THROW(load_model(file.path()), Error);
}

}  // namespace
}  // namespace sgnn
