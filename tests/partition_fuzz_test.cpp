// Randomized property wall for the spatial partitioner (sgnn::gpar): across
// hundreds of random geometries, species mixes, cutoffs, and batch shapes,
// the union of the per-rank edge slices — decoded through each rank's
// owned-range + halo mapping — must reconstruct the reference neighbor list
// EDGE FOR EDGE. Degenerate layouts (all atoms coincident, planar slabs,
// exact-tie lattices that put atoms on partition planes) get dedicated
// iterations: those are the configurations where a sloppy partitioner drops
// or duplicates edges.

#include "sgnn/graph/partition.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "sgnn/graph/batch.hpp"
#include "sgnn/graph/graph.hpp"
#include "sgnn/util/rng.hpp"

namespace sgnn {
namespace {

enum class Layout : int {
  kRandom = 0,      ///< uniform cloud in a box
  kCoincident = 1,  ///< every atom in one cell-list bin (all at one point)
  kSlab = 2,        ///< planar: zero extent along one axis
  kLattice = 3,     ///< exact-tie grid — atoms land ON partition planes
  kWire = 4,        ///< one nonzero axis (two axes of zero extent)
};

AtomicStructure random_structure(Layout layout, Rng& rng) {
  AtomicStructure s;
  const int palette[] = {elements::kH, elements::kC, elements::kN,
                         elements::kO, elements::kCu};
  const std::int64_t atoms = 1 + static_cast<std::int64_t>(
                                     rng.uniform_index(40));
  const double box = rng.uniform(2.0, 8.0);
  for (std::int64_t i = 0; i < atoms; ++i) {
    s.species.push_back(palette[rng.uniform_index(5)]);
    switch (layout) {
      case Layout::kRandom:
        s.positions.push_back(
            {rng.uniform(0, box), rng.uniform(0, box), rng.uniform(0, box)});
        break;
      case Layout::kCoincident:
        s.positions.push_back({1.25, 0.5, 2.0});
        break;
      case Layout::kSlab:
        s.positions.push_back({rng.uniform(0, box), rng.uniform(0, box), 1.0});
        break;
      case Layout::kLattice:
        // Integer grid: many atoms share coordinates along every axis, so
        // spatial_order hits its tie-breaking path and partition boundaries
        // cut THROUGH planes of exactly-equal coordinates.
        s.positions.push_back({static_cast<double>(i % 4),
                               static_cast<double>((i / 4) % 4),
                               static_cast<double>(i / 16)});
        break;
      case Layout::kWire:
        s.positions.push_back({rng.uniform(0, box), 0.5, 0.5});
        break;
    }
  }
  return s;
}

/// Applies a node permutation to a structure (used with spatial_order so the
/// partitioner sees spatially contiguous slabs, like the trainer would).
AtomicStructure permuted(const AtomicStructure& s,
                         const std::vector<std::int64_t>& order) {
  AtomicStructure out;
  out.cell = s.cell;
  out.periodic = s.periodic;
  for (const std::int64_t i : order) {
    out.species.push_back(s.species[static_cast<std::size_t>(i)]);
    out.positions.push_back(s.positions[static_cast<std::size_t>(i)]);
  }
  return out;
}

TEST(PartitionFuzzTest, RankSlicesReconstructTheNeighborListEdgeForEdge) {
  constexpr int kIterations = 320;
  for (int it = 0; it < kIterations; ++it) {
    Rng rng(0xFADE + static_cast<std::uint64_t>(it));
    const auto layout = static_cast<Layout>(it % 5);
    const double cutoff = rng.uniform(1.0, 3.5);

    // Sometimes batch several graphs so partition boundaries also cross
    // graph boundaries (the batch offsets must not confuse the halo).
    const int graphs = 1 + static_cast<int>(rng.uniform_index(3));
    std::vector<MolecularGraph> storage;
    for (int g = 0; g < graphs; ++g) {
      AtomicStructure s = random_structure(layout, rng);
      if (rng.uniform() < 0.5) s = permuted(s, gpar::spatial_order(s));
      storage.push_back(MolecularGraph::from_structure(s, cutoff));
    }
    const GraphBatch batch = GraphBatch::from_graphs(storage);

    for (const int R : {1, 2, 3, 4}) {
      SCOPED_TRACE("it=" + std::to_string(it) + " layout=" +
                   std::to_string(static_cast<int>(layout)) +
                   " ranks=" + std::to_string(R));
      const auto part = gpar::GraphPartition::build(batch, R);

      // Ownership tiles [0, N): every node owned exactly once.
      std::int64_t covered = 0;
      for (const auto& rp : part.ranks) {
        ASSERT_LE(rp.owned_begin, rp.owned_end);
        ASSERT_EQ(rp.owned_begin, covered);
        covered = rp.owned_end;
      }
      ASSERT_EQ(covered, batch.num_nodes);

      // Decode every rank's local slice back to global ids, in slice order.
      // Concatenated across ranks this must BE the reference edge list:
      // exact sequence equality means no edge dropped, none duplicated,
      // none rerouted through the wrong ghost row.
      std::vector<std::int64_t> src, dst;
      for (const auto& rp : part.ranks) {
        ASSERT_EQ(rp.local_src.size(), rp.local_dst.size());
        for (std::size_t e = 0; e < rp.local_src.size(); ++e) {
          const std::int64_t ls = rp.local_src[e];
          ASSERT_GE(ls, 0);
          ASSERT_LT(ls, rp.num_owned() +
                            static_cast<std::int64_t>(rp.halo.size()));
          src.push_back(
              ls < rp.num_owned()
                  ? rp.owned_begin + ls
                  : rp.halo[static_cast<std::size_t>(ls - rp.num_owned())]);
          dst.push_back(rp.owned_begin + rp.local_dst[e]);
        }
      }
      ASSERT_EQ(src, batch.edge_src);
      ASSERT_EQ(dst, batch.edge_dst);

      // Halos never contain owned nodes and never reach past one hop: every
      // ghost id must actually occur as a source in the rank's slice.
      for (const auto& rp : part.ranks) {
        ASSERT_TRUE(std::is_sorted(rp.halo.begin(), rp.halo.end()));
        ASSERT_TRUE(
            std::adjacent_find(rp.halo.begin(), rp.halo.end()) ==
            rp.halo.end());
        for (const std::int64_t g : rp.halo) {
          ASSERT_TRUE(g < rp.owned_begin || g >= rp.owned_end);
        }
      }
    }
  }
}

TEST(PartitionFuzzTest, PeriodicStructuresPartitionExactly) {
  // Periodic cells route edges through minimum-image shifts; the partition
  // never looks at geometry, only at the edge list, so the reconstruction
  // property must hold just the same.
  constexpr int kIterations = 60;
  for (int it = 0; it < kIterations; ++it) {
    Rng rng(0xBEEF + static_cast<std::uint64_t>(it));
    AtomicStructure s;
    const double cell = rng.uniform(4.0, 8.0);
    const std::int64_t atoms =
        2 + static_cast<std::int64_t>(rng.uniform_index(30));
    for (std::int64_t i = 0; i < atoms; ++i) {
      s.species.push_back(elements::kSi);
      s.positions.push_back({rng.uniform(0, cell), rng.uniform(0, cell),
                             rng.uniform(0, cell)});
    }
    s.cell = {cell, cell, cell};
    s.periodic = true;
    const double cutoff = rng.uniform(1.0, 0.495 * cell);
    const MolecularGraph graph = MolecularGraph::from_structure(s, cutoff);
    const GraphBatch batch = GraphBatch::from_graphs(
        std::vector<const MolecularGraph*>{&graph});

    for (const int R : {2, 3, 4}) {
      SCOPED_TRACE("it=" + std::to_string(it) + " ranks=" +
                   std::to_string(R));
      const auto part = gpar::GraphPartition::build(batch, R);
      std::vector<std::int64_t> src, dst;
      for (const auto& rp : part.ranks) {
        for (std::size_t e = 0; e < rp.local_src.size(); ++e) {
          const std::int64_t ls = rp.local_src[e];
          src.push_back(
              ls < rp.num_owned()
                  ? rp.owned_begin + ls
                  : rp.halo[static_cast<std::size_t>(ls - rp.num_owned())]);
          dst.push_back(rp.owned_begin + rp.local_dst[e]);
        }
      }
      ASSERT_EQ(src, batch.edge_src);
      ASSERT_EQ(dst, batch.edge_dst);
    }
  }
}

}  // namespace
}  // namespace sgnn
