#include "sgnn/graph/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "sgnn/graph/batch.hpp"
#include "sgnn/graph/neighbor.hpp"
#include "sgnn/util/error.hpp"
#include "sgnn/util/rng.hpp"

namespace sgnn {
namespace {

AtomicStructure random_cluster(std::int64_t atoms, double box, Rng& rng,
                               bool periodic = false) {
  AtomicStructure s;
  const int palette[] = {elements::kH, elements::kC, elements::kN,
                         elements::kO, elements::kCu};
  for (std::int64_t i = 0; i < atoms; ++i) {
    s.species.push_back(palette[rng.uniform_index(5)]);
    s.positions.push_back(
        {rng.uniform(0, box), rng.uniform(0, box), rng.uniform(0, box)});
  }
  if (periodic) {
    s.cell = {box, box, box};
    s.periodic = true;
  }
  return s;
}

using EdgeSet = std::set<std::pair<std::int64_t, std::int64_t>>;

EdgeSet to_set(const EdgeList& edges) {
  EdgeSet set;
  for (std::int64_t k = 0; k < edges.size(); ++k) {
    set.emplace(edges.src[static_cast<std::size_t>(k)],
                edges.dst[static_cast<std::size_t>(k)]);
  }
  return set;
}

TEST(StructureTest, ValidateCatchesMismatchedArrays) {
  AtomicStructure s;
  s.species = {elements::kH, elements::kO};
  s.positions = {{0, 0, 0}};
  EXPECT_THROW(s.validate(), Error);
}

TEST(StructureTest, ValidateCatchesBadCell) {
  AtomicStructure s;
  s.species = {elements::kH};
  s.positions = {{0, 0, 0}};
  s.periodic = true;
  s.cell = {5, -1, 5};
  EXPECT_THROW(s.validate(), Error);
}

TEST(StructureTest, MinimumImageDisplacement) {
  AtomicStructure s;
  s.species = {elements::kH, elements::kH};
  s.positions = {{0.5, 0.5, 0.5}, {9.5, 0.5, 0.5}};
  s.cell = {10, 10, 10};
  s.periodic = true;
  const Vec3 d = s.displacement(0, 1);
  EXPECT_DOUBLE_EQ(d.x, -1.0);  // wraps through the boundary
  EXPECT_DOUBLE_EQ(d.y, 0.0);
}

TEST(StructureTest, WrapPositionsBringsAtomsIntoCell) {
  AtomicStructure s;
  s.species = {elements::kO};
  s.positions = {{-1.0, 12.0, 5.0}};
  s.cell = {10, 10, 10};
  s.periodic = true;
  s.wrap_positions();
  EXPECT_DOUBLE_EQ(s.positions[0].x, 9.0);
  EXPECT_DOUBLE_EQ(s.positions[0].y, 2.0);
  EXPECT_DOUBLE_EQ(s.positions[0].z, 5.0);
}

TEST(NeighborTest, BruteForceFindsKnownPair) {
  AtomicStructure s;
  s.species = {elements::kH, elements::kH, elements::kH};
  s.positions = {{0, 0, 0}, {1.0, 0, 0}, {5, 5, 5}};
  const EdgeList edges = brute_force_neighbors(s, 2.0);
  const EdgeSet set = to_set(edges);
  EXPECT_EQ(set.size(), 2u);  // both directions of the single pair
  EXPECT_TRUE(set.count({0, 1}));
  EXPECT_TRUE(set.count({1, 0}));
}

TEST(NeighborTest, EdgesComeInDirectedPairs) {
  Rng rng(7);
  const AtomicStructure s = random_cluster(40, 8.0, rng);
  const EdgeList edges = brute_force_neighbors(s, 3.0);
  const EdgeSet set = to_set(edges);
  for (const auto& [i, j] : set) {
    EXPECT_TRUE(set.count({j, i})) << "missing reverse of " << i << "->" << j;
  }
}

TEST(NeighborTest, CutoffTooLargeForCellThrows) {
  Rng rng(8);
  AtomicStructure s = random_cluster(10, 6.0, rng, /*periodic=*/true);
  EXPECT_THROW(brute_force_neighbors(s, 3.5), Error);
  EXPECT_NO_THROW(brute_force_neighbors(s, 3.0));
}

// Property: cell-list search must agree with the brute-force oracle across
// sizes, densities, and boundary conditions.
struct NeighborCase {
  std::int64_t atoms;
  double box;
  double cutoff;
  bool periodic;
  std::uint64_t seed;
};

class NeighborEquivalence : public ::testing::TestWithParam<NeighborCase> {};

TEST_P(NeighborEquivalence, CellListMatchesBruteForce) {
  const auto& c = GetParam();
  Rng rng(c.seed);
  const AtomicStructure s = random_cluster(c.atoms, c.box, rng, c.periodic);
  const EdgeList brute = brute_force_neighbors(s, c.cutoff);
  const EdgeList cell = cell_list_neighbors(s, c.cutoff);
  EXPECT_EQ(to_set(brute), to_set(cell));
  EXPECT_EQ(brute.size(), cell.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NeighborEquivalence,
    ::testing::Values(NeighborCase{1, 5.0, 2.0, false, 1},
                      NeighborCase{2, 3.0, 1.4, true, 2},
                      NeighborCase{30, 6.0, 2.5, false, 3},
                      NeighborCase{30, 6.0, 2.5, true, 4},
                      NeighborCase{120, 10.0, 3.0, false, 5},
                      NeighborCase{120, 10.0, 3.0, true, 6},
                      NeighborCase{250, 14.0, 4.5, true, 7},
                      NeighborCase{250, 30.0, 4.5, false, 8},
                      NeighborCase{64, 9.5, 4.7, true, 9},
                      NeighborCase{50, 40.0, 3.0, false, 10}));

TEST(NeighborTest, ZeroExtentBoundingBoxesSurviveCellBinning) {
  // Degenerate open-boundary geometries whose bounding box has zero extent
  // along one or more axes — a planar slab, a linear wire, and a fully
  // coincident cluster. The cell list must collapse each degenerate axis to
  // a single bin (never divide by a zero box length) and still agree with
  // the brute-force oracle. These are the same layouts the spatial
  // partitioner's `spatial_order` must survive (see partition_test).
  Rng rng(31);

  AtomicStructure slab;  // zero z-extent
  for (int i = 0; i < 24; ++i) {
    slab.species.push_back(elements::kC);
    slab.positions.push_back({rng.uniform(0, 7.0), rng.uniform(0, 7.0), 2.5});
  }
  EXPECT_EQ(to_set(brute_force_neighbors(slab, 2.5)),
            to_set(cell_list_neighbors(slab, 2.5)));

  AtomicStructure wire;  // zero extent along y AND z
  for (int i = 0; i < 20; ++i) {
    wire.species.push_back(elements::kCu);
    wire.positions.push_back({0.45 * i, 1.0, 1.0});
  }
  const EdgeList wire_edges = cell_list_neighbors(wire, 1.0);
  EXPECT_EQ(to_set(brute_force_neighbors(wire, 1.0)), to_set(wire_edges));
  EXPECT_GT(wire_edges.size(), 0);

  AtomicStructure point;  // zero extent along every axis
  for (int i = 0; i < 6; ++i) {
    point.species.push_back(elements::kH);
    point.positions.push_back({3.0, 1.0, 4.0});
  }
  const EdgeList point_edges = cell_list_neighbors(point, 1.5);
  EXPECT_EQ(to_set(brute_force_neighbors(point, 1.5)), to_set(point_edges));
  // All atoms pairwise at distance zero: complete directed graph.
  EXPECT_EQ(point_edges.size(), 6 * 5);

  // The degenerate geometries also survive graph + batch construction (the
  // path the graph-parallel partitioner consumes).
  const MolecularGraph slab_graph = MolecularGraph::from_structure(slab, 2.5);
  const MolecularGraph wire_graph = MolecularGraph::from_structure(wire, 1.0);
  const GraphBatch batch = GraphBatch::from_graphs(
      std::vector<const MolecularGraph*>{&slab_graph, &wire_graph});
  EXPECT_EQ(batch.num_nodes, 44);
  EXPECT_EQ(batch.num_edges,
            slab_graph.num_edges() + wire_graph.num_edges());
}

TEST(NeighborTest, CellListMatchesBruteForceOnWrapAliasedCells) {
  // Periodic cells small enough that an axis has only 2 bins: the ±1
  // neighborhood offsets wrap onto the same bin, exercising the sort+unique
  // deduplication of aliased bins. (cutoff <= cell/2 caps bins at >= 2, so
  // 2 bins is the tightest aliasing case reachable.)
  const struct {
    Vec3 cell;
    double cutoff;
    std::uint64_t seed;
  } cases[] = {
      {{5.0, 5.0, 5.0}, 2.45, 21},    // 2x2x2 bins: aliasing on every axis
      {{5.0, 12.0, 5.1}, 2.45, 22},   // 2x4x2: aliased and clean axes mixed
      {{4.9, 4.9, 16.0}, 2.40, 23},   // 2x2x6
      {{6.0, 6.0, 6.0}, 2.95, 24},    // 2x2x2 with near-half-cell cutoff
  };
  for (const auto& c : cases) {
    Rng rng(c.seed);
    AtomicStructure s;
    for (int i = 0; i < 40; ++i) {
      s.species.push_back(elements::kSi);
      s.positions.push_back({rng.uniform(0, c.cell.x),
                             rng.uniform(0, c.cell.y),
                             rng.uniform(0, c.cell.z)});
    }
    s.cell = c.cell;
    s.periodic = true;
    const EdgeList brute = brute_force_neighbors(s, c.cutoff);
    const EdgeList cell = cell_list_neighbors(s, c.cutoff);
    EXPECT_EQ(to_set(brute), to_set(cell))
        << "cell " << c.cell.x << "x" << c.cell.y << "x" << c.cell.z
        << " cutoff " << c.cutoff;
    EXPECT_EQ(brute.size(), cell.size());
  }
}

TEST(NeighborTest, DisplacementsMatchPositions) {
  Rng rng(11);
  const AtomicStructure s = random_cluster(25, 7.0, rng);
  const EdgeList edges = build_neighbors(s, 3.0);
  for (std::int64_t k = 0; k < edges.size(); ++k) {
    const auto ki = static_cast<std::size_t>(k);
    const Vec3 expected = s.displacement(edges.src[ki], edges.dst[ki]);
    EXPECT_EQ(edges.displacement[ki], expected);
  }
}

TEST(GraphTest, FromStructureBuildsValidGraph) {
  Rng rng(12);
  const AtomicStructure s = random_cluster(20, 6.0, rng);
  const MolecularGraph g = MolecularGraph::from_structure(s, 3.0);
  g.validate();
  EXPECT_EQ(g.num_nodes(), 20);
  EXPECT_EQ(g.forces.size(), 20u);
}

TEST(GraphTest, SerializedBytesScaleWithSize) {
  Rng rng(13);
  const MolecularGraph small =
      MolecularGraph::from_structure(random_cluster(5, 6.0, rng), 3.0);
  const MolecularGraph large =
      MolecularGraph::from_structure(random_cluster(50, 6.0, rng), 3.0);
  EXPECT_GT(large.serialized_bytes(), small.serialized_bytes());
  EXPECT_GT(small.serialized_bytes(), 0u);
}

TEST(BatchTest, SingleGraphRoundTrip) {
  Rng rng(14);
  AtomicStructure s = random_cluster(10, 5.0, rng);
  MolecularGraph g = MolecularGraph::from_structure(s, 2.5);
  g.energy = -7.5;
  const GraphBatch batch = GraphBatch::from_graphs(std::vector<const MolecularGraph*>{&g});
  EXPECT_EQ(batch.num_graphs, 1);
  EXPECT_EQ(batch.num_nodes, 10);
  EXPECT_EQ(batch.num_edges, g.num_edges());
  EXPECT_DOUBLE_EQ(batch.energy.item(), -7.5);
  EXPECT_EQ(batch.species, g.structure.species);
}

TEST(BatchTest, OffsetsAreAppliedPerGraph) {
  Rng rng(15);
  MolecularGraph a =
      MolecularGraph::from_structure(random_cluster(4, 4.0, rng), 3.0);
  MolecularGraph b =
      MolecularGraph::from_structure(random_cluster(6, 4.0, rng), 3.0);
  const GraphBatch batch = GraphBatch::from_graphs(std::vector<const MolecularGraph*>{&a, &b});
  EXPECT_EQ(batch.num_nodes, 10);
  // Every edge of graph b must point at nodes >= 4.
  for (std::size_t k = static_cast<std::size_t>(a.num_edges());
       k < batch.edge_src.size(); ++k) {
    EXPECT_GE(batch.edge_src[k], 4);
    EXPECT_GE(batch.edge_dst[k], 4);
  }
  // node_to_graph maps first 4 to 0, rest to 1.
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(batch.node_to_graph[i], i < 4 ? 0 : 1);
  }
}

TEST(BatchTest, ShiftReconstructsMinimumImage) {
  Rng rng(16);
  const AtomicStructure s = random_cluster(30, 6.0, rng, /*periodic=*/true);
  MolecularGraph g = MolecularGraph::from_structure(s, 2.9);
  const GraphBatch batch = GraphBatch::from_graphs(std::vector<const MolecularGraph*>{&g});
  const real* pos = batch.positions.data();
  const real* shift = batch.edge_shift.data();
  for (std::int64_t k = 0; k < batch.num_edges; ++k) {
    const std::int64_t i = batch.edge_src[static_cast<std::size_t>(k)];
    const std::int64_t j = batch.edge_dst[static_cast<std::size_t>(k)];
    for (int c = 0; c < 3; ++c) {
      const double reconstructed =
          pos[j * 3 + c] - pos[i * 3 + c] + shift[k * 3 + c];
      const Vec3 expected = g.edges.displacement[static_cast<std::size_t>(k)];
      const double e = c == 0 ? expected.x : (c == 1 ? expected.y : expected.z);
      EXPECT_NEAR(reconstructed, e, 1e-12);
    }
  }
}

TEST(BatchTest, EmptyBatchIsWellFormed) {
  // Zero graphs is a valid degenerate batch (a serving queue can drain to
  // nothing): all counts zero, all tensors zero-length, nothing to index.
  const GraphBatch batch =
      GraphBatch::from_graphs(std::vector<const MolecularGraph*>{});
  EXPECT_EQ(batch.num_graphs, 0);
  EXPECT_EQ(batch.num_nodes, 0);
  EXPECT_EQ(batch.num_edges, 0);
  EXPECT_TRUE(batch.species.empty());
  EXPECT_TRUE(batch.edge_src.empty());
  EXPECT_TRUE(batch.node_to_graph.empty());
  EXPECT_EQ(batch.positions.shape(), Shape({0, 3}));
  EXPECT_EQ(batch.energy.shape(), Shape({0, 1}));
  EXPECT_TRUE(batch.nodes_per_graph().empty());
}

TEST(BatchTest, SingleAtomGraphPacksWithZeroEdges) {
  // One atom, no neighbors: a legal request shape the forward path must
  // survive (zero-row edge tensors, not out-of-range indexing).
  AtomicStructure s;
  s.species = {elements::kCu};
  s.positions = {{0.0, 0.0, 0.0}};
  MolecularGraph g = MolecularGraph::from_structure(s, 3.0);
  const GraphBatch batch =
      GraphBatch::from_graphs(std::vector<const MolecularGraph*>{&g});
  EXPECT_EQ(batch.num_nodes, 1);
  EXPECT_EQ(batch.num_edges, 0);
  EXPECT_EQ(batch.edge_shift.shape(), Shape({0, 3}));
}

TEST(BatchTest, MixedZeroEdgeAndNormalGraphsPack) {
  Rng rng(23);
  AtomicStructure lone;
  lone.species = {elements::kCu};
  lone.positions = {{0.0, 0.0, 0.0}};
  MolecularGraph a = MolecularGraph::from_structure(lone, 3.0);
  MolecularGraph b =
      MolecularGraph::from_structure(random_cluster(5, 4.0, rng), 3.0);
  const GraphBatch batch =
      GraphBatch::from_graphs(std::vector<const MolecularGraph*>{&a, &b});
  EXPECT_EQ(batch.num_nodes, 6);
  EXPECT_EQ(batch.num_edges, b.num_edges());
  // All edges belong to graph b, so every endpoint is offset past atom 0.
  for (std::size_t k = 0; k < batch.edge_src.size(); ++k) {
    EXPECT_GE(batch.edge_src[k], 1);
    EXPECT_GE(batch.edge_dst[k], 1);
  }
  EXPECT_EQ(batch.nodes_per_graph(), (std::vector<std::int64_t>{1, 5}));
}

TEST(BatchTest, NodesPerGraphCounts) {
  Rng rng(17);
  MolecularGraph a =
      MolecularGraph::from_structure(random_cluster(3, 4.0, rng), 2.0);
  MolecularGraph b =
      MolecularGraph::from_structure(random_cluster(5, 4.0, rng), 2.0);
  const GraphBatch batch = GraphBatch::from_graphs(std::vector<const MolecularGraph*>{&a, &b});
  EXPECT_EQ(batch.nodes_per_graph(), (std::vector<std::int64_t>{3, 5}));
}

}  // namespace
}  // namespace sgnn
