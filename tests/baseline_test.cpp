#include "sgnn/train/baseline.hpp"

#include <gtest/gtest.h>

#include "sgnn/data/sources.hpp"
#include "sgnn/util/rng.hpp"

namespace sgnn {
namespace {

MolecularGraph graph_with(const std::vector<int>& species, double energy) {
  MolecularGraph g;
  g.structure.species = species;
  for (std::size_t i = 0; i < species.size(); ++i) {
    g.structure.positions.push_back({static_cast<double>(i) * 10, 0, 0});
  }
  g.edges = {};  // no edges needed for baseline fitting
  g.energy = energy;
  g.forces.assign(species.size(), Vec3{0, 0, 0});
  return g;
}

TEST(BaselineTest, DefaultIsIdentity) {
  const EnergyBaseline baseline;
  EXPECT_EQ(baseline.offset({elements::kC, elements::kO}), 0.0);
}

TEST(BaselineTest, RecoversExactLinearComposition) {
  // Energies are exactly 2*n_H + 5*n_O: the fit must recover e0 exactly.
  std::vector<MolecularGraph> graphs = {
      graph_with({elements::kH, elements::kH}, 4.0),
      graph_with({elements::kO}, 5.0),
      graph_with({elements::kH, elements::kO}, 7.0),
      graph_with({elements::kH, elements::kH, elements::kO}, 9.0),
  };
  std::vector<const MolecularGraph*> view;
  for (const auto& g : graphs) view.push_back(&g);
  const EnergyBaseline baseline = EnergyBaseline::fit(view);
  EXPECT_NEAR(baseline.species_energy(elements::kH), 2.0, 1e-4);
  EXPECT_NEAR(baseline.species_energy(elements::kO), 5.0, 1e-4);
  EXPECT_NEAR(baseline.offset({elements::kH, elements::kO, elements::kO}),
              12.0, 1e-5);
}

TEST(BaselineTest, UnseenSpeciesHasZeroEnergy) {
  std::vector<MolecularGraph> graphs = {graph_with({elements::kH}, 1.0)};
  std::vector<const MolecularGraph*> view = {&graphs[0]};
  const EnergyBaseline baseline = EnergyBaseline::fit(view);
  EXPECT_EQ(baseline.species_energy(elements::kPt), 0.0);
}

TEST(BaselineTest, SubtractFromBatchRemovesComposition) {
  std::vector<MolecularGraph> graphs = {
      graph_with({elements::kH, elements::kH}, 4.0),
      graph_with({elements::kO}, 5.0),
      graph_with({elements::kH, elements::kO}, 7.0),
  };
  std::vector<const MolecularGraph*> view;
  for (const auto& g : graphs) view.push_back(&g);
  const EnergyBaseline baseline = EnergyBaseline::fit(view);

  GraphBatch batch = GraphBatch::from_graphs(view);
  baseline.subtract_from(batch);
  const real* e = batch.energy.data();
  for (std::int64_t g = 0; g < batch.num_graphs; ++g) {
    EXPECT_NEAR(e[g], 0.0, 1e-5) << "graph " << g;
  }
}

TEST(BaselineTest, ShrinksResidualsOnRealGeneratedData) {
  const ReferencePotential potential;
  Rng rng(77);
  std::vector<MolecularGraph> graphs;
  for (int i = 0; i < 20; ++i) {
    graphs.push_back(generate_sample(DataSource::kANI1x, rng, potential));
    graphs.push_back(generate_sample(DataSource::kMPTrj, rng, potential));
  }
  std::vector<const MolecularGraph*> view;
  for (const auto& g : graphs) view.push_back(&g);
  const EnergyBaseline baseline = EnergyBaseline::fit(view);

  double raw = 0;
  double residual = 0;
  for (const auto& g : graphs) {
    raw += g.energy * g.energy;
    const double r = g.energy - baseline.offset(g.structure.species);
    residual += r * r;
  }
  // Composition explains the overwhelming majority of the energy variance.
  EXPECT_LT(residual, 0.05 * raw);
}

TEST(BaselineTest, FitOnEmptySetThrows) {
  EXPECT_THROW(EnergyBaseline::fit({}), Error);
}

}  // namespace
}  // namespace sgnn
