// Locale independence of every serialization path: telemetry JSONL, bench
// numbers and CLI argument parsing previously went through std::strtod /
// stream defaults, which read "3.14" as 3 under a comma-decimal locale.
// These tests flip the process into such a locale and round-trip.

#include <gtest/gtest.h>

#include <clocale>
#include <cstdio>
#include <locale>
#include <string>

#include "sgnn/obs/telemetry.hpp"
#include "sgnn/util/parse.hpp"

namespace sgnn {
namespace {

/// Switches the global C and C++ locales to a comma-decimal one for the
/// test body; restores in TearDown. Skips when the container has no such
/// locale installed (CI installs de_DE.UTF-8 — see .github/workflows).
class CommaLocaleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_c_ = std::setlocale(LC_ALL, nullptr);
    const char* candidates[] = {"de_DE.UTF-8", "de_DE.utf8", "fr_FR.UTF-8",
                                "fr_FR.utf8"};
    for (const char* name : candidates) {
      if (std::setlocale(LC_ALL, name) != nullptr) {
        try {
          previous_cpp_ = std::locale::global(std::locale(name));
        } catch (const std::runtime_error&) {
          continue;  // C locale exists but the C++ one does not
        }
        active_ = true;
        return;
      }
    }
    GTEST_SKIP() << "no comma-decimal locale installed";
  }

  void TearDown() override {
    if (active_) {
      std::locale::global(previous_cpp_);
      std::setlocale(LC_ALL, previous_c_.c_str());
    }
  }

  std::string previous_c_;
  std::locale previous_cpp_;
  bool active_ = false;
};

TEST_F(CommaLocaleTest, LocaleActuallyUsesCommas) {
  // Sanity: the fixture really changed number formatting, otherwise the
  // tests below prove nothing.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", 1.5);
  ASSERT_STREQ(buf, "1,5");
}

TEST_F(CommaLocaleTest, FormatDoubleEmitsPointDecimals) {
  const std::string text = util::format_double(1234.5678);
  EXPECT_NE(text.find('.'), std::string::npos) << text;
  EXPECT_EQ(text.find(','), std::string::npos) << text;
}

TEST_F(CommaLocaleTest, ParseDoubleReadsPointDecimals) {
  double value = 0;
  std::size_t consumed = 0;
  ASSERT_TRUE(util::parse_double("3.14159", value, &consumed));
  EXPECT_EQ(consumed, 7u);
  EXPECT_DOUBLE_EQ(value, 3.14159);
  // Scientific notation and negatives too.
  ASSERT_TRUE(util::parse_double("-2.5e-3", value));
  EXPECT_DOUBLE_EQ(value, -2.5e-3);
}

TEST_F(CommaLocaleTest, FormatParseRoundTripIsExact) {
  for (const double v : {0.1, -1234.5678, 2.718281828459045, 1e-300,
                         6.02214076e23}) {
    double back = 0;
    ASSERT_TRUE(util::parse_double(util::format_double(v), back));
    EXPECT_EQ(back, v);  // 17 significant digits round-trip doubles exactly
  }
}

TEST_F(CommaLocaleTest, TelemetryRoundTripsUnderCommaLocale) {
  obs::StepTelemetry step;
  step.step = 41;
  step.loss = 0.12345678901234567;
  step.grad_norm = 3.5;
  step.learning_rate = 2e-3;
  step.step_seconds = 0.25;
  step.kernel_seconds = 1.5e-4;
  step.kernel_backend = "simd";
  step.compute_dtype = "float32";

  const std::string line = step.to_json();
  // A locale leak would render 0.123... as "0,123...": the fractional loss
  // value must appear with a point decimal separator.
  EXPECT_NE(line.find("\"loss\":0.123"), std::string::npos) << line;
  EXPECT_EQ(line.find("0,123"), std::string::npos) << line;
  const obs::StepTelemetry back = obs::StepTelemetry::from_json(line);
  EXPECT_EQ(back.step, step.step);
  EXPECT_DOUBLE_EQ(back.loss, step.loss);
  EXPECT_DOUBLE_EQ(back.grad_norm, step.grad_norm);
  EXPECT_DOUBLE_EQ(back.learning_rate, step.learning_rate);
  EXPECT_DOUBLE_EQ(back.step_seconds, step.step_seconds);
  EXPECT_DOUBLE_EQ(back.kernel_seconds, step.kernel_seconds);
  EXPECT_EQ(back.kernel_backend, "simd");
  EXPECT_EQ(back.compute_dtype, "float32");
}

// -- behaviour independent of installed locales -----------------------------

TEST(ParseDoubleTest, RejectsGarbageAndReportsConsumption) {
  double value = 0;
  EXPECT_FALSE(util::parse_double("", value));
  EXPECT_FALSE(util::parse_double("abc", value));
  std::size_t consumed = 0;
  ASSERT_TRUE(util::parse_double("1.5x", value, &consumed));
  EXPECT_EQ(consumed, 3u);  // caller decides whether trailing junk is fatal
  EXPECT_DOUBLE_EQ(value, 1.5);
}

TEST(TelemetryCompatTest, LinesWithoutBackendFieldsStillParse) {
  // Logs written before the kernel backend layer lack the two string
  // fields; from_json must stay lenient and default them to "".
  obs::StepTelemetry step;
  step.loss = 1.25;
  std::string line = step.to_json();
  const auto at = line.find(",\"kernel_backend\"");
  ASSERT_NE(at, std::string::npos);
  line.erase(at, line.size() - at - 1);  // drop both fields, keep the '}'
  const obs::StepTelemetry back = obs::StepTelemetry::from_json(line);
  EXPECT_DOUBLE_EQ(back.loss, 1.25);
  EXPECT_TRUE(back.kernel_backend.empty());
  EXPECT_TRUE(back.compute_dtype.empty());
}

}  // namespace
}  // namespace sgnn
