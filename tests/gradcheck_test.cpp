// Property-based verification of every differentiable op against central
// finite differences, swept over shapes via parameterized gtest.

#include "sgnn/tensor/gradcheck.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "sgnn/tensor/ops.hpp"
#include "sgnn/util/rng.hpp"

namespace sgnn {
namespace {

using Fn = std::function<Tensor(const std::vector<Tensor>&)>;

struct OpCase {
  std::string name;
  Fn fn;
  std::vector<Shape> input_shapes;
  /// Inputs drawn uniformly from [lo, hi] (keeps log/sqrt in-domain).
  double lo = -2.0;
  double hi = 2.0;
};

void PrintTo(const OpCase& c, std::ostream* os) { *os << c.name; }

class GradcheckSuite : public ::testing::TestWithParam<OpCase> {};

TEST_P(GradcheckSuite, MatchesFiniteDifferences) {
  const OpCase& c = GetParam();
  Rng rng(0x5EED5EEDULL ^ std::hash<std::string>{}(c.name));
  std::vector<Tensor> inputs;
  inputs.reserve(c.input_shapes.size());
  for (const auto& shape : c.input_shapes) {
    Tensor t = Tensor::uniform(shape, rng, c.lo, c.hi);
    t.set_requires_grad(true);
    inputs.push_back(t);
  }
  const GradcheckResult r = gradcheck(c.fn, inputs, 1e-6, 1e-5);
  EXPECT_TRUE(r.ok) << c.name << ": max rel err " << r.max_rel_error << " ("
                    << r.detail << ")";
}

Fn unary(Tensor (*op)(const Tensor&)) {
  return [op](const std::vector<Tensor>& in) { return op(in[0]); };
}

Fn binary(Tensor (*op)(const Tensor&, const Tensor&)) {
  return [op](const std::vector<Tensor>& in) { return op(in[0], in[1]); };
}

std::vector<OpCase> make_cases() {
  std::vector<OpCase> cases;
  const std::vector<Shape> unary_shapes = {Shape{}, Shape{7}, Shape{3, 4},
                                           Shape{2, 3, 2}};
  for (const auto& s : unary_shapes) {
    const std::string suffix = "_" + s.to_string();
    cases.push_back({"neg" + suffix, unary(&neg), {s}});
    cases.push_back({"square" + suffix, unary(&square), {s}});
    cases.push_back({"sigmoid" + suffix, unary(&sigmoid), {s}});
    cases.push_back({"tanh" + suffix, unary(&tanh_op), {s}});
    cases.push_back({"silu" + suffix, unary(&silu), {s}});
    cases.push_back({"softplus" + suffix, unary(&softplus), {s}});
    cases.push_back({"exp" + suffix, unary(&exp_op), {s}});
    cases.push_back({"abs" + suffix, unary(&abs_op), {s}, 0.5, 2.0});
    cases.push_back({"log" + suffix, unary(&log_op), {s}, 0.5, 3.0});
    cases.push_back({"sqrt" + suffix, unary(&sqrt_op), {s}, 0.5, 3.0});
    // relu/clamp kinks avoided by sampling away from 0 / the bound.
    cases.push_back({"relu_pos" + suffix, unary(&relu), {s}, 0.5, 2.0});
    cases.push_back({"relu_neg" + suffix, unary(&relu), {s}, -2.0, -0.5});
    cases.push_back(
        {"clamp_min" + suffix,
         [](const std::vector<Tensor>& in) { return clamp_min(in[0], 1.0); },
         {s},
         1.5,
         3.0});
  }

  cases.push_back({"scale",
                   [](const std::vector<Tensor>& in) {
                     return scale(in[0], -1.75);
                   },
                   {Shape{3, 3}}});
  cases.push_back({"add_scalar",
                   [](const std::vector<Tensor>& in) {
                     return add_scalar(in[0], 0.5);
                   },
                   {Shape{4}}});
  cases.push_back({"pow_2.5",
                   [](const std::vector<Tensor>& in) {
                     return pow_scalar(in[0], 2.5);
                   },
                   {Shape{5}},
                   0.5,
                   2.0});

  // Binary ops across broadcast shape combinations.
  struct ShapePair {
    Shape a, b;
    std::string tag;
  };
  const std::vector<ShapePair> pairs = {
      {Shape{4}, Shape{4}, "same"},
      {Shape{2, 3}, Shape{3}, "row_bcast"},
      {Shape{2, 3}, Shape{2, 1}, "col_bcast"},
      {Shape{2, 3}, Shape{}, "scalar_bcast"},
      {Shape{1, 3}, Shape{4, 1}, "outer_bcast"},
  };
  for (const auto& p : pairs) {
    cases.push_back({"add_" + p.tag, binary(&add), {p.a, p.b}});
    cases.push_back({"sub_" + p.tag, binary(&sub), {p.a, p.b}});
    cases.push_back({"mul_" + p.tag, binary(&mul), {p.a, p.b}});
    cases.push_back({"div_" + p.tag, binary(&div), {p.a, p.b}, 0.5, 2.0});
  }

  cases.push_back({"matmul_2x3_3x4", binary(&matmul),
                   {Shape{2, 3}, Shape{3, 4}}});
  cases.push_back({"matmul_1x5_5x1", binary(&matmul),
                   {Shape{1, 5}, Shape{5, 1}}});
  cases.push_back({"transpose", unary(&transpose), {Shape{3, 4}}});

  cases.push_back({"sum_all", unary(static_cast<Tensor (*)(const Tensor&)>(&sum)),
                   {Shape{3, 4}}});
  cases.push_back({"mean_all",
                   unary(static_cast<Tensor (*)(const Tensor&)>(&mean)),
                   {Shape{3, 4}}});
  cases.push_back({"sum_axis0",
                   [](const std::vector<Tensor>& in) {
                     return sum(in[0], 0, false);
                   },
                   {Shape{3, 4}}});
  cases.push_back({"sum_axis1_keep",
                   [](const std::vector<Tensor>& in) {
                     return sum(in[0], 1, true);
                   },
                   {Shape{3, 4}}});
  cases.push_back({"mean_axis1",
                   [](const std::vector<Tensor>& in) {
                     return mean(in[0], 1, false);
                   },
                   {Shape{2, 5}}});

  cases.push_back({"reshape",
                   [](const std::vector<Tensor>& in) {
                     return reshape(in[0], Shape{6, 2});
                   },
                   {Shape{3, 4}}});
  cases.push_back({"concat_axis0",
                   [](const std::vector<Tensor>& in) {
                     return concat({in[0], in[1]}, 0);
                   },
                   {Shape{2, 3}, Shape{1, 3}}});
  cases.push_back({"concat_axis1",
                   [](const std::vector<Tensor>& in) {
                     return concat({in[0], in[1], in[2]}, 1);
                   },
                   {Shape{2, 2}, Shape{2, 1}, Shape{2, 3}}});
  cases.push_back({"narrow",
                   [](const std::vector<Tensor>& in) {
                     return narrow(in[0], 1, 1, 2);
                   },
                   {Shape{3, 4}}});

  cases.push_back({"index_select_rows",
                   [](const std::vector<Tensor>& in) {
                     return index_select_rows(in[0], {2, 0, 2, 1});
                   },
                   {Shape{3, 2}}});
  cases.push_back({"scatter_add_rows",
                   [](const std::vector<Tensor>& in) {
                     return scatter_add_rows(in[0], {1, 0, 1, 3}, 4);
                   },
                   {Shape{4, 2}}});

  cases.push_back({"row_norm_squared", unary(&row_norm_squared),
                   {Shape{4, 3}}});
  cases.push_back({"composite_mlp_like",
                   [](const std::vector<Tensor>& in) {
                     // silu(x @ w) @ w2 — a realistic two-layer compose.
                     return matmul(silu(matmul(in[0], in[1])), in[2]);
                   },
                   {Shape{3, 4}, Shape{4, 5}, Shape{5, 2}}});
  cases.push_back({"composite_message_passing",
                   [](const std::vector<Tensor>& in) {
                     // gather -> transform -> scatter, the EGNN inner loop.
                     const std::vector<std::int64_t> src = {0, 1, 2, 2};
                     const std::vector<std::int64_t> dst = {1, 2, 0, 1};
                     Tensor msg = silu(index_select_rows(in[0], src));
                     return scatter_add_rows(msg, dst, 3);
                   },
                   {Shape{3, 4}}});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllOps, GradcheckSuite,
                         ::testing::ValuesIn(make_cases()),
                         [](const ::testing::TestParamInfo<OpCase>& param_info) {
                           std::string name = param_info.param.name;
                           for (auto& ch : name) {
                             if (!std::isalnum(static_cast<unsigned char>(ch)))
                               ch = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace sgnn
