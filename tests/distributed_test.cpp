#include "sgnn/train/distributed.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>
#include <thread>

#include "sgnn/data/dataset.hpp"
#include "sgnn/obs/telemetry.hpp"
#include "sgnn/obs/trace.hpp"
#include "sgnn/tensor/ops.hpp"
#include "sgnn/train/zero.hpp"

namespace sgnn {
namespace {

const AggregatedDataset& tiny_dataset() {
  static const AggregatedDataset dataset = [] {
    DatasetOptions options;
    options.target_bytes = 700 << 10;
    options.seed = 31;
    static const ReferencePotential potential;
    return AggregatedDataset::generate(options, potential);
  }();
  return dataset;
}

std::unique_ptr<DDStore> make_store(int ranks) {
  auto store = std::make_unique<DDStore>(ranks);
  store->insert(tiny_dataset().graphs());
  return store;
}

template <typename Body>
void run_ranks(int num_ranks, Body body) {
  std::vector<std::thread> threads;
  for (int r = 0; r < num_ranks; ++r) threads.emplace_back(body, r);
  for (auto& t : threads) t.join();
}

TEST(FlattenTest, RoundTrip) {
  Rng rng(1);
  std::vector<Tensor> params = {
      Tensor::randn(Shape{3, 4}, rng).set_requires_grad(true),
      Tensor::randn(Shape{7}, rng).set_requires_grad(true)};
  const auto flat = flatten_parameters(params);
  ASSERT_EQ(flat.size(), 19u);
  std::vector<real> modified = flat;
  for (auto& v : modified) v += 1.0;
  unflatten_into_parameters(modified, params);
  EXPECT_DOUBLE_EQ(params[0].to_vector()[0], flat[0] + 1.0);
  EXPECT_DOUBLE_EQ(params[1].to_vector()[6], flat[18] + 1.0);
}

TEST(FlattenTest, UndefinedGradientsBecomeZeros) {
  Tensor with_grad = Tensor::scalar(2.0).set_requires_grad(true);
  Tensor without = Tensor::scalar(3.0).set_requires_grad(true);
  square(with_grad).backward();
  const auto flat = flatten_gradients({with_grad, without});
  EXPECT_DOUBLE_EQ(flat[0], 4.0);
  EXPECT_DOUBLE_EQ(flat[1], 0.0);
}

/// Property: R-rank DDP and ZeRO updates must equal a single-process Adam
/// step on the rank-averaged gradient.
class StrategyEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(StrategyEquivalence, DistributedUpdatesMatchSingleProcessAdam) {
  const int R = GetParam();
  Rng rng(42);
  const Tensor init_a = Tensor::randn(Shape{13}, rng);
  const Tensor init_b = Tensor::randn(Shape{3, 5}, rng);

  // Per-rank gradients, fixed by formula.
  const auto grad_for = [&](int rank, const Shape& shape, int salt) {
    Tensor g = Tensor::zeros(shape);
    real* p = g.data();
    for (std::int64_t i = 0; i < g.numel(); ++i) {
      p[i] = static_cast<real>(0.01) * static_cast<real>(rank + 1) *
             static_cast<real>(i + salt);
    }
    return g;
  };

  // Reference: single Adam on the averaged gradients for 3 steps.
  std::vector<Tensor> ref = {init_a.clone().set_requires_grad(true),
                             init_b.clone().set_requires_grad(true)};
  Adam::Options options;
  options.learning_rate = 0.05;
  {
    Tensor m_a = Tensor::zeros(Shape{13});
    Tensor v_a = Tensor::zeros(Shape{13});
    Tensor m_b = Tensor::zeros(Shape{3, 5});
    Tensor v_b = Tensor::zeros(Shape{3, 5});
    for (int step = 1; step <= 3; ++step) {
      for (int which = 0; which < 2; ++which) {
        const Shape shape = which == 0 ? Shape{13} : Shape{3, 5};
        Tensor avg = Tensor::zeros(shape);
        for (int r = 0; r < R; ++r) {
          const Tensor g = grad_for(r, shape, step + which);
          const real* pg = g.data();
          real* pa = avg.data();
          for (std::int64_t i = 0; i < avg.numel(); ++i) pa[i] += pg[i];
        }
        real* pa = avg.data();
        for (std::int64_t i = 0; i < avg.numel(); ++i) {
          pa[i] /= static_cast<real>(R);
        }
        Adam::update_flat(ref[static_cast<std::size_t>(which)].data(),
                          avg.data(),
                          which == 0 ? m_a.data() : m_b.data(),
                          which == 0 ? v_a.data() : v_b.data(),
                          static_cast<std::size_t>(avg.numel()), step,
                          options);
      }
    }
  }

  for (const bool use_zero : {false, true}) {
    Communicator comm(R);
    // Per-rank replicas of the two parameters.
    std::vector<std::vector<Tensor>> params(static_cast<std::size_t>(R));
    for (int r = 0; r < R; ++r) {
      params[static_cast<std::size_t>(r)] = {
          init_a.clone().set_requires_grad(true),
          init_b.clone().set_requires_grad(true)};
    }
    std::vector<std::unique_ptr<DDPAdam>> ddp(static_cast<std::size_t>(R));
    std::vector<std::unique_ptr<ZeroAdam>> zero(static_cast<std::size_t>(R));
    for (int r = 0; r < R; ++r) {
      if (use_zero) {
        zero[static_cast<std::size_t>(r)] = std::make_unique<ZeroAdam>(
            comm, params[static_cast<std::size_t>(r)], options);
      } else {
        ddp[static_cast<std::size_t>(r)] = std::make_unique<DDPAdam>(
            comm, params[static_cast<std::size_t>(r)], options);
      }
    }
    run_ranks(R, [&](int rank) {
      const auto ri = static_cast<std::size_t>(rank);
      for (int step = 1; step <= 3; ++step) {
        // Install gradients by differentiating a synthetic objective whose
        // gradient is exactly grad_for(...).
        for (int which = 0; which < 2; ++which) {
          Tensor& p = params[ri][static_cast<std::size_t>(which)];
          p.zero_grad();
          const Shape shape = which == 0 ? Shape{13} : Shape{3, 5};
          const Tensor coeff = grad_for(rank, shape, step + which);
          sum(p * coeff.detach()).backward();
        }
        if (use_zero) {
          zero[ri]->step(rank);
        } else {
          ddp[ri]->step(rank);
        }
      }
    });

    for (int r = 0; r < R; ++r) {
      for (int which = 0; which < 2; ++which) {
        const auto got =
            params[static_cast<std::size_t>(r)][static_cast<std::size_t>(which)]
                .to_vector();
        const auto want = ref[static_cast<std::size_t>(which)].to_vector();
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t i = 0; i < got.size(); ++i) {
          EXPECT_NEAR(got[i], want[i], 1e-12)
              << (use_zero ? "zero" : "ddp") << " rank " << r << " param "
              << which << " element " << i;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, StrategyEquivalence,
                         ::testing::Values(1, 2, 4));

TEST(ZeroAdamTest, Stage2MatchesStage1Updates) {
  // Gradient partitioning is a memory optimization only: stage 2 must be
  // numerically identical to stage 1.
  const int R = 2;
  Rng rng(99);
  const Tensor init = Tensor::randn(Shape{9}, rng);

  const auto run = [&](int stage) {
    Communicator comm(R);
    std::vector<std::vector<Tensor>> params(R);
    std::vector<std::unique_ptr<ZeroAdam>> opt(R);
    for (int r = 0; r < R; ++r) {
      params[static_cast<std::size_t>(r)] = {
          init.clone().set_requires_grad(true)};
      opt[static_cast<std::size_t>(r)] = std::make_unique<ZeroAdam>(
          comm, params[static_cast<std::size_t>(r)], Adam::Options{}, stage);
    }
    run_ranks(R, [&](int rank) {
      const auto ri = static_cast<std::size_t>(rank);
      for (int step = 0; step < 3; ++step) {
        Tensor& p = params[ri][0];
        p.zero_grad();
        sum(p * static_cast<real>(rank + 1)).backward();
        opt[ri]->step(rank);
      }
    });
    return params[0][0].to_vector();
  };

  EXPECT_EQ(run(1), run(2));
}

TEST(ZeroAdamTest, Stage2ReleasesGradientBuffers) {
  const int R = 2;
  Communicator comm(R);
  Rng rng(7);
  std::vector<std::vector<Tensor>> params(R);
  std::vector<std::unique_ptr<ZeroAdam>> opt(R);
  for (int r = 0; r < R; ++r) {
    params[static_cast<std::size_t>(r)] = {
        Tensor::randn(Shape{64}, rng).set_requires_grad(true)};
    opt[static_cast<std::size_t>(r)] = std::make_unique<ZeroAdam>(
        comm, params[static_cast<std::size_t>(r)], Adam::Options{},
        /*stage=*/2);
  }
  run_ranks(R, [&](int rank) {
    const auto ri = static_cast<std::size_t>(rank);
    Tensor& p = params[ri][0];
    sum(square(p)).backward();
    opt[ri]->step(rank);
  });
  // Stage 2 dropped every gradient during the step.
  for (int r = 0; r < R; ++r) {
    EXPECT_FALSE(params[static_cast<std::size_t>(r)][0].grad().defined());
  }
}

TEST(ZeroAdamTest, OptimizerStateIsShardedAcrossRanks) {
  const int R = 4;
  Communicator comm(R);
  Rng rng(7);
  const auto state_bytes = [&] {
    return MemoryTracker::instance().live().of(MemCategory::kOptimizerState);
  };

  std::vector<Tensor> params = {
      Tensor::randn(Shape{1000}, rng).set_requires_grad(true)};
  const auto before = state_bytes();
  const ZeroAdam sharded(comm, params, {});
  const auto shard_cost = state_bytes() - before;
  // 2 moments x 1000/4 elements (x sizeof real).
  EXPECT_EQ(shard_cost, static_cast<std::int64_t>(2 * 250 * sizeof(real)));
  EXPECT_EQ(sharded.shard_elements(), 250u);

  Communicator solo(1);
  const auto before_full = state_bytes();
  const DDPAdam full(solo, params, {});
  const auto full_cost = state_bytes() - before_full;
  EXPECT_EQ(full_cost, static_cast<std::int64_t>(2 * 1000 * sizeof(real)));
}

TEST(DistributedTrainerTest, DDPTrainsAndReplicasStayInSync) {
  ModelConfig config;
  config.hidden_dim = 12;
  config.num_layers = 2;
  DistTrainOptions options;
  options.num_ranks = 2;
  options.epochs = 1;
  options.per_rank_batch_size = 4;
  options.strategy = DistStrategy::kDDP;

  DistributedTrainer trainer(config, options);
  const auto store = make_store(2);
  const DistTrainReport report = trainer.train(*store);

  EXPECT_GT(report.steps, 0);
  EXPECT_GT(report.final_train_loss, 0);
  EXPECT_EQ(trainer.replica_divergence(), 0.0);
  EXPECT_GT(report.collective_traffic.all_reduce_bytes, 0u);
  EXPECT_EQ(report.collective_traffic.reduce_scatter_bytes, 0u);
  EXPECT_GT(report.comm_seconds, 0.0);
}

TEST(DistributedTrainerTest, ZeroUsesScatterGatherInsteadOfAllReduce) {
  ModelConfig config;
  config.hidden_dim = 12;
  config.num_layers = 2;
  DistTrainOptions options;
  options.num_ranks = 2;
  options.epochs = 1;
  options.per_rank_batch_size = 4;
  options.strategy = DistStrategy::kZeRO1;

  DistributedTrainer trainer(config, options);
  const auto store = make_store(2);
  const DistTrainReport report = trainer.train(*store);

  EXPECT_EQ(trainer.replica_divergence(), 0.0);
  EXPECT_EQ(report.collective_traffic.all_reduce_bytes, 0u);
  EXPECT_GT(report.collective_traffic.reduce_scatter_bytes, 0u);
  EXPECT_GT(report.collective_traffic.all_gather_bytes, 0u);
}

TEST(DistributedTrainerTest, DDPAndZeroLearnTheSameModel) {
  // Same seeds, same data, same schedule: the two strategies must produce
  // numerically equivalent models (ZeRO is an exact refactoring of Adam).
  const auto run = [&](DistStrategy strategy) {
    ModelConfig config;
    config.hidden_dim = 10;
    config.num_layers = 2;
    DistTrainOptions options;
    options.num_ranks = 2;
    options.epochs = 1;
    options.per_rank_batch_size = 4;
    options.strategy = strategy;
    DistributedTrainer trainer(config, options);
    const auto store = make_store(2);
    trainer.train(*store);
    return flatten_parameters(
        const_cast<EGNNModel&>(trainer.model()).parameters());
  };
  const auto ddp = run(DistStrategy::kDDP);
  const auto zero = run(DistStrategy::kZeRO1);
  ASSERT_EQ(ddp.size(), zero.size());
  for (std::size_t i = 0; i < ddp.size(); ++i) {
    EXPECT_NEAR(ddp[i], zero[i], 1e-10) << "element " << i;
  }
}

TEST(DistributedTrainerTest, TracingRecordsPerRankCollectiveSpans) {
  obs::TraceRecorder::instance().disable();
  obs::TraceRecorder::instance().clear();
  obs::TraceRecorder::instance().enable();

  ModelConfig config;
  config.hidden_dim = 10;
  config.num_layers = 2;
  DistTrainOptions options;
  options.num_ranks = 2;
  options.epochs = 1;
  options.per_rank_batch_size = 4;
  options.strategy = DistStrategy::kDDP;
  DistributedTrainer trainer(config, options);
  const auto store = make_store(2);
  trainer.train(*store);

  obs::TraceRecorder::instance().disable();
  const auto events = obs::TraceRecorder::instance().events();
  obs::TraceRecorder::instance().clear();

  // Every rank thread must have produced collective spans and the three
  // training-phase spans, each tagged with its own rank.
  std::set<int> collective_ranks;
  std::set<std::string> phase_names;
  for (const auto& event : events) {
    if (std::string(event.category) == "collective") {
      collective_ranks.insert(event.rank);
      EXPECT_GE(event.end_us, event.begin_us);
    } else if (std::string(event.category) == "train") {
      phase_names.insert(event.name);
    }
  }
  EXPECT_EQ(collective_ranks, (std::set<int>{0, 1}));
  EXPECT_TRUE(phase_names.count("forward"));
  EXPECT_TRUE(phase_names.count("backward"));
  EXPECT_TRUE(phase_names.count("optimizer"));
}

TEST(DistributedTrainerTest, DataTrafficReflectsShardLocality) {
  ModelConfig config;
  config.hidden_dim = 8;
  config.num_layers = 1;
  DistTrainOptions options;
  options.num_ranks = 2;
  options.epochs = 1;
  options.per_rank_batch_size = 2;
  DistributedTrainer trainer(config, options);
  const auto store = make_store(2);
  const DistTrainReport report = trainer.train(*store);
  // With random sampling over 2 shards, roughly half the fetches are
  // remote; require a sane nonzero split rather than an exact ratio.
  EXPECT_GT(report.data_traffic.local_hits, 0u);
  EXPECT_GT(report.data_traffic.remote_fetches, 0u);
  EXPECT_GT(report.data_traffic.remote_bytes, 0u);
}

/// Clipping property: distributed updates with max_grad_norm must equal a
/// single-process Adam step on the CLIPPED rank-averaged gradient, where
/// the clip norm is joint over all parameters (the same contract the
/// single Trainer's clip_grad_norm implements).
TEST_P(StrategyEquivalence, ClippedUpdatesMatchClippedSingleProcessAdam) {
  const int R = GetParam();
  const double max_norm = 0.05;  // small enough that every step clips
  Rng rng(43);
  const Tensor init_a = Tensor::randn(Shape{13}, rng);
  const Tensor init_b = Tensor::randn(Shape{3, 5}, rng);

  const auto grad_for = [&](int rank, const Shape& shape, int salt) {
    Tensor g = Tensor::zeros(shape);
    real* p = g.data();
    for (std::int64_t i = 0; i < g.numel(); ++i) {
      p[i] = static_cast<real>(0.01) * static_cast<real>(rank + 1) *
             static_cast<real>(i + salt);
    }
    return g;
  };

  // Reference: average per-rank gradients, clip jointly, then Adam.
  std::vector<Tensor> ref = {init_a.clone().set_requires_grad(true),
                             init_b.clone().set_requires_grad(true)};
  Adam::Options options;
  options.learning_rate = 0.05;
  {
    Tensor m_a = Tensor::zeros(Shape{13});
    Tensor v_a = Tensor::zeros(Shape{13});
    Tensor m_b = Tensor::zeros(Shape{3, 5});
    Tensor v_b = Tensor::zeros(Shape{3, 5});
    for (int step = 1; step <= 3; ++step) {
      std::vector<Tensor> avg;
      for (int which = 0; which < 2; ++which) {
        const Shape shape = which == 0 ? Shape{13} : Shape{3, 5};
        Tensor sum_grad = Tensor::zeros(shape);
        for (int r = 0; r < R; ++r) {
          const Tensor g = grad_for(r, shape, step + which);
          const real* pg = g.data();
          real* pa = sum_grad.data();
          for (std::int64_t i = 0; i < sum_grad.numel(); ++i) pa[i] += pg[i];
        }
        real* pa = sum_grad.data();
        for (std::int64_t i = 0; i < sum_grad.numel(); ++i) {
          pa[i] /= static_cast<real>(R);
        }
        avg.push_back(sum_grad);
      }
      double sum_sq = 0;
      for (const Tensor& g : avg) {
        const real* pg = g.data();
        for (std::int64_t i = 0; i < g.numel(); ++i) {
          sum_sq += static_cast<double>(pg[i]) * static_cast<double>(pg[i]);
        }
      }
      const double norm = std::sqrt(sum_sq);
      ASSERT_GT(norm, max_norm);  // the scenario must actually clip
      for (Tensor& g : avg) {
        real* pg = g.data();
        for (std::int64_t i = 0; i < g.numel(); ++i) {
          pg[i] *= static_cast<real>(max_norm / norm);
        }
      }
      for (int which = 0; which < 2; ++which) {
        Adam::update_flat(
            ref[static_cast<std::size_t>(which)].data(),
            avg[static_cast<std::size_t>(which)].data(),
            which == 0 ? m_a.data() : m_b.data(),
            which == 0 ? v_a.data() : v_b.data(),
            static_cast<std::size_t>(
                avg[static_cast<std::size_t>(which)].numel()),
            step, options);
      }
    }
  }

  for (const bool use_zero : {false, true}) {
    Communicator comm(R);
    std::vector<std::vector<Tensor>> params(static_cast<std::size_t>(R));
    for (int r = 0; r < R; ++r) {
      params[static_cast<std::size_t>(r)] = {
          init_a.clone().set_requires_grad(true),
          init_b.clone().set_requires_grad(true)};
    }
    std::vector<std::unique_ptr<DDPAdam>> ddp(static_cast<std::size_t>(R));
    std::vector<std::unique_ptr<ZeroAdam>> zero(static_cast<std::size_t>(R));
    for (int r = 0; r < R; ++r) {
      if (use_zero) {
        zero[static_cast<std::size_t>(r)] = std::make_unique<ZeroAdam>(
            comm, params[static_cast<std::size_t>(r)], options);
        zero[static_cast<std::size_t>(r)]->set_max_grad_norm(max_norm);
      } else {
        ddp[static_cast<std::size_t>(r)] = std::make_unique<DDPAdam>(
            comm, params[static_cast<std::size_t>(r)], options);
        ddp[static_cast<std::size_t>(r)]->set_max_grad_norm(max_norm);
      }
    }
    run_ranks(R, [&](int rank) {
      const auto ri = static_cast<std::size_t>(rank);
      for (int step = 1; step <= 3; ++step) {
        for (int which = 0; which < 2; ++which) {
          Tensor& p = params[ri][static_cast<std::size_t>(which)];
          p.zero_grad();
          const Shape shape = which == 0 ? Shape{13} : Shape{3, 5};
          const Tensor coeff = grad_for(rank, shape, step + which);
          sum(p * coeff.detach()).backward();
        }
        if (use_zero) {
          zero[ri]->step(rank);
        } else {
          ddp[ri]->step(rank);
        }
      }
    });

    for (int r = 0; r < R; ++r) {
      for (int which = 0; which < 2; ++which) {
        const auto got =
            params[static_cast<std::size_t>(r)][static_cast<std::size_t>(which)]
                .to_vector();
        const auto want = ref[static_cast<std::size_t>(which)].to_vector();
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t i = 0; i < got.size(); ++i) {
          EXPECT_NEAR(got[i], want[i], 1e-12)
              << (use_zero ? "zero" : "ddp") << " rank " << r << " param "
              << which << " element " << i;
        }
      }
    }
  }
}

TEST(DistributedTrainerTest, AggregateCommSecondsMatchesSumOfPerStepModel) {
  // Regression for the comm-time double count: the report's aggregate used
  // to re-add per-call latency that the bandwidth terms already contained.
  // Now one formula prices both views, so the per-step modeled times must
  // sum to the aggregate (up to fp summation order).
  ModelConfig config;
  config.hidden_dim = 10;
  config.num_layers = 2;
  DistTrainOptions options;
  options.num_ranks = 2;
  options.epochs = 2;
  options.per_rank_batch_size = 4;
  options.strategy = DistStrategy::kZeRO1;
  options.max_grad_norm = 1.0;  // adds the clip all-reduce to the traffic
  obs::RecordingTelemetrySink sink;
  options.telemetry = &sink;

  DistributedTrainer trainer(config, options);
  const auto store = make_store(2);
  const DistTrainReport report = trainer.train(*store);

  double per_step_sum = 0;
  std::int64_t rank0_steps = 0;
  for (const obs::StepTelemetry& step : sink.steps()) {
    if (step.rank != 0) {
      // Only the collective-counting rank attributes comm time.
      EXPECT_EQ(step.comm_seconds_modeled, 0.0);
      continue;
    }
    per_step_sum += step.comm_seconds_modeled;
    ++rank0_steps;
  }
  EXPECT_EQ(rank0_steps, report.steps);
  EXPECT_GT(report.comm_seconds, 0.0);
  EXPECT_NEAR(report.comm_seconds, per_step_sum,
              report.comm_seconds * 1e-9);
}

TEST(DistributedTrainerTest, TelemetryReportsEffectiveScheduledLearningRate) {
  ModelConfig config;
  config.hidden_dim = 10;
  config.num_layers = 2;
  DistTrainOptions options;
  options.num_ranks = 2;
  options.epochs = 1;
  options.per_rank_batch_size = 4;
  options.adam.learning_rate = 0.1;  // base value the telemetry must NOT echo
  options.schedule = LrSchedule::warmup_cosine(2e-3, 2, 32);
  obs::RecordingTelemetrySink sink;
  options.telemetry = &sink;

  DistributedTrainer trainer(config, options);
  const auto store = make_store(2);
  trainer.train(*store);

  ASSERT_FALSE(sink.steps().empty());
  for (const obs::StepTelemetry& step : sink.steps()) {
    EXPECT_DOUBLE_EQ(step.learning_rate, options.schedule->at_step(step.step))
        << "step " << step.step << " rank " << step.rank;
    EXPECT_NE(step.learning_rate, options.adam.learning_rate);
  }
}

}  // namespace
}  // namespace sgnn
