#include "sgnn/serve/server.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <future>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "sgnn/graph/batch.hpp"
#include "sgnn/graph/graph.hpp"
#include "sgnn/nn/model_io.hpp"
#include "sgnn/serve/cache.hpp"
#include "sgnn/tensor/ops.hpp"
#include "sgnn/util/error.hpp"
#include "sgnn/util/rng.hpp"

namespace sgnn::serve {
namespace {

ModelConfig serve_config() {
  ModelConfig config;
  config.hidden_dim = 8;
  config.num_layers = 2;
  config.seed = 7;
  return config;
}

AtomicStructure random_cluster(std::int64_t atoms, double box, Rng& rng) {
  AtomicStructure s;
  const int palette[] = {elements::kH, elements::kC, elements::kN,
                         elements::kO, elements::kCu};
  for (std::int64_t i = 0; i < atoms; ++i) {
    s.species.push_back(palette[rng.uniform_index(5)]);
    s.positions.push_back(
        {rng.uniform(0, box), rng.uniform(0, box), rng.uniform(0, box)});
  }
  return s;
}

AtomicStructure translated(AtomicStructure s, const Vec3& shift) {
  for (auto& p : s.positions) p = p + shift;
  return s;
}

AtomicStructure permuted(const AtomicStructure& s,
                         const std::vector<std::size_t>& order) {
  AtomicStructure out;
  for (const std::size_t i : order) {
    out.species.push_back(s.species[i]);
    out.positions.push_back(s.positions[i]);
  }
  out.cell = s.cell;
  out.periodic = s.periodic;
  return out;
}

/// Reference single-structure inference straight through the model, on the
/// same forward/backward path the server batches over.
std::pair<double, std::vector<Vec3>> reference_predict(
    const EGNNModel& model, const AtomicStructure& structure,
    bool want_forces) {
  const MolecularGraph graph =
      MolecularGraph::from_structure(structure, model.config().cutoff);
  GraphBatch batch =
      GraphBatch::from_graphs(std::vector<const MolecularGraph*>{&graph});
  std::vector<Vec3> forces;
  double energy = 0.0;
  if (want_forces) {
    batch.positions.set_requires_grad(true);
    const Tensor e = model.forward(batch).energy;
    energy = e.at(0, 0);
    sum(e).backward();
    const Tensor grad = batch.positions.grad();
    for (std::int64_t a = 0; a < structure.num_atoms(); ++a) {
      forces.push_back({-grad.data()[a * 3 + 0], -grad.data()[a * 3 + 1],
                        -grad.data()[a * 3 + 2]});
    }
  } else {
    const autograd::NoGradGuard guard;
    energy = model.forward(batch).energy.at(0, 0);
  }
  return {energy, forces};
}

// ---------------------------------------------------------------------------
// Canonicalization

TEST(CanonicalizeTest, TranslatedCopyHasIdenticalKey) {
  Rng rng(1);
  const AtomicStructure s = random_cluster(12, 5.0, rng);
  const CanonicalKey a = canonicalize(s);
  const CanonicalKey b = canonicalize(translated(s, {3.25, -1.5, 0.75}));
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.bytes, b.bytes);
}

TEST(CanonicalizeTest, PermutedCopyHasIdenticalKeyAndConsistentPerm) {
  Rng rng(2);
  const AtomicStructure s = random_cluster(10, 5.0, rng);
  std::vector<std::size_t> order(10);
  std::iota(order.begin(), order.end(), 0u);
  std::reverse(order.begin(), order.end());
  const AtomicStructure p = permuted(s, order);

  const CanonicalKey ka = canonicalize(s);
  const CanonicalKey kb = canonicalize(p);
  EXPECT_EQ(ka.hash, kb.hash);
  EXPECT_EQ(ka.bytes, kb.bytes);
  // perm maps request order to canonical order: atom i of `p` is atom
  // order[i] of `s`, so both must land on the same canonical slot.
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(kb.perm[i], ka.perm[order[i]]);
  }
}

TEST(CanonicalizeTest, PerturbationAboveQuantumChangesKey) {
  Rng rng(3);
  AtomicStructure s = random_cluster(8, 5.0, rng);
  const CanonicalKey before = canonicalize(s);
  s.positions[3].x += 10 * kCanonicalQuantum;
  const CanonicalKey after = canonicalize(s);
  EXPECT_NE(before.bytes, after.bytes);
}

TEST(CanonicalizeTest, SpeciesAndPeriodicityAreKeyed) {
  Rng rng(4);
  AtomicStructure s = random_cluster(8, 5.0, rng);
  const CanonicalKey base = canonicalize(s);

  AtomicStructure other_species = s;
  other_species.species[0] =
      other_species.species[0] == elements::kH ? elements::kC : elements::kH;
  EXPECT_NE(canonicalize(other_species).bytes, base.bytes);

  AtomicStructure periodic = s;
  periodic.cell = {20, 20, 20};
  periodic.periodic = true;
  EXPECT_NE(canonicalize(periodic).bytes, base.bytes);
}

// ---------------------------------------------------------------------------
// StructureCache

TEST(StructureCacheTest, HitRequiresMatchingBytesNotJustHash) {
  StructureCache cache(8);
  Rng rng(5);
  const CanonicalKey key = canonicalize(random_cluster(6, 5.0, rng));
  CachedResult result;
  result.energy = -3.5;
  cache.insert(key, result);

  CachedResult out;
  EXPECT_TRUE(cache.lookup(key, /*need_forces=*/false, out));
  EXPECT_DOUBLE_EQ(out.energy, -3.5);

  // Forced collision: same hash, different canonical bytes. Must be a
  // counted miss (recompute), never a wrong answer.
  CanonicalKey collider = key;
  collider.bytes += "#not-the-same-structure";
  EXPECT_FALSE(cache.lookup(collider, /*need_forces=*/false, out));
  EXPECT_EQ(cache.stats().collisions, 1);
}

TEST(StructureCacheTest, EnergyOnlyEntryCannotServeForceRequest) {
  StructureCache cache(8);
  Rng rng(6);
  const CanonicalKey key = canonicalize(random_cluster(6, 5.0, rng));
  CachedResult energy_only;
  energy_only.energy = 1.25;
  cache.insert(key, energy_only);

  CachedResult out;
  EXPECT_FALSE(cache.lookup(key, /*need_forces=*/true, out));
  EXPECT_TRUE(cache.lookup(key, /*need_forces=*/false, out));
}

TEST(StructureCacheTest, EvictsLeastRecentlyUsed) {
  StructureCache cache(2);
  Rng rng(7);
  const CanonicalKey a = canonicalize(random_cluster(4, 5.0, rng));
  const CanonicalKey b = canonicalize(random_cluster(5, 5.0, rng));
  const CanonicalKey c = canonicalize(random_cluster(6, 5.0, rng));
  cache.insert(a, CachedResult{});
  cache.insert(b, CachedResult{});

  CachedResult out;
  EXPECT_TRUE(cache.lookup(a, false, out));  // touch a; b is now LRU
  cache.insert(c, CachedResult{});
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.lookup(a, false, out));
  EXPECT_FALSE(cache.lookup(b, false, out));
  EXPECT_TRUE(cache.lookup(c, false, out));
  EXPECT_GE(cache.stats().evictions, 1);
}

TEST(StructureCacheTest, ZeroCapacityDisablesCaching) {
  StructureCache cache(0);
  Rng rng(8);
  const CanonicalKey key = canonicalize(random_cluster(4, 5.0, rng));
  cache.insert(key, CachedResult{});
  CachedResult out;
  EXPECT_FALSE(cache.lookup(key, false, out));
  EXPECT_EQ(cache.size(), 0u);
}

// ---------------------------------------------------------------------------
// Autograd tape discipline

TEST(ServeTest, GuardedForwardAllocatesNoTapeNodes) {
  // The energy-only serving path promises a tape-free forward even though
  // the model's parameters still require grad. Pin it: the live autograd
  // node count must be flat across the guarded forward.
  const EGNNModel model(serve_config());
  Rng rng(9);
  const MolecularGraph graph =
      MolecularGraph::from_structure(random_cluster(14, 5.0, rng), 3.5);
  const GraphBatch batch =
      GraphBatch::from_graphs(std::vector<const MolecularGraph*>{&graph});

  const std::int64_t before = autograd::live_node_count();
  {
    const autograd::NoGradGuard guard;
    const auto out = model.forward(batch);
    EXPECT_FALSE(out.energy.requires_grad());
    EXPECT_EQ(autograd::live_node_count(), before);
  }
  EXPECT_EQ(autograd::live_node_count(), before);

  // Sanity check on the instrument itself: an unguarded forward does
  // allocate tape nodes (otherwise the pin above proves nothing).
  {
    const auto out = model.forward(batch);
    EXPECT_GT(autograd::live_node_count(), before);
  }
  EXPECT_EQ(autograd::live_node_count(), before);
}

// ---------------------------------------------------------------------------
// Server end-to-end

TEST(ServerTest, BatchedResultsMatchSingleStructureInference) {
  const ModelConfig config = serve_config();
  const EGNNModel reference(config);
  ServerOptions options;
  options.num_workers = 2;
  options.cache_capacity = 0;  // exercise the compute path only
  Server server(config, model_payload_bytes(reference), options);

  Rng rng(10);
  std::vector<AtomicStructure> structures;
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 12; ++i) {
    structures.push_back(random_cluster(4 + i, 6.0, rng));
    futures.push_back(
        server.submit({structures.back(), /*compute_forces=*/i % 2 == 0}));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const InferenceResult result = futures[i].get();
    const bool want_forces = i % 2 == 0;
    const auto [energy, forces] =
        reference_predict(reference, structures[i], want_forces);
    EXPECT_NEAR(result.energy, energy, 1e-9) << "request " << i;
    ASSERT_EQ(result.forces.size(), forces.size());
    for (std::size_t a = 0; a < forces.size(); ++a) {
      EXPECT_NEAR(result.forces[a].x, forces[a].x, 1e-9);
      EXPECT_NEAR(result.forces[a].y, forces[a].y, 1e-9);
      EXPECT_NEAR(result.forces[a].z, forces[a].z, 1e-9);
    }
  }
}

TEST(ServerTest, CacheServesPermutedDuplicateWithMappedForces) {
  const ModelConfig config = serve_config();
  const EGNNModel reference(config);
  Server server(config, model_payload_bytes(reference), ServerOptions{});

  Rng rng(11);
  const AtomicStructure s = random_cluster(9, 5.0, rng);
  const InferenceResult first = server.submit({s, true}).get();
  EXPECT_FALSE(first.cache_hit);

  std::vector<std::size_t> order(9);
  std::iota(order.begin(), order.end(), 0u);
  std::swap(order[0], order[7]);
  std::swap(order[2], order[5]);
  const AtomicStructure dup =
      translated(permuted(s, order), {1.0, 2.0, -0.5});
  const InferenceResult second = server.submit({dup, true}).get();
  EXPECT_TRUE(second.cache_hit);
  EXPECT_DOUBLE_EQ(second.energy, first.energy);
  // Forces must come back in the duplicate's own atom order.
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(second.forces[i], first.forces[order[i]]);
  }
}

TEST(ServerTest, EnergyOnlyCacheEntryDoesNotServeForceRequest) {
  const ModelConfig config = serve_config();
  const EGNNModel reference(config);
  Server server(config, model_payload_bytes(reference), ServerOptions{});

  Rng rng(12);
  const AtomicStructure s = random_cluster(7, 5.0, rng);
  EXPECT_FALSE(server.submit({s, false}).get().cache_hit);
  const InferenceResult forced = server.submit({s, true}).get();
  EXPECT_FALSE(forced.cache_hit);  // recompute: cached entry had no forces
  EXPECT_EQ(forced.forces.size(), 7u);
  EXPECT_TRUE(server.submit({s, true}).get().cache_hit);
}

TEST(ServerTest, EmptyStructureIsServedDirectly) {
  const ModelConfig config = serve_config();
  const EGNNModel reference(config);
  Server server(config, model_payload_bytes(reference), ServerOptions{});
  const InferenceResult result = server.submit({AtomicStructure{}, true}).get();
  EXPECT_DOUBLE_EQ(result.energy, 0.0);
  EXPECT_TRUE(result.forces.empty());
}

TEST(ServerTest, InvalidSpeciesIsRejectedAtAdmission) {
  ModelConfig config = serve_config();
  config.num_species = 10;
  const EGNNModel reference(config);
  Server server(config, model_payload_bytes(reference), ServerOptions{});
  AtomicStructure s;
  s.species = {29};  // Cu, outside the 10-species vocabulary
  s.positions = {{0, 0, 0}};
  EXPECT_THROW(server.submit({s, false}), Error);
}

TEST(ServerTest, OverloadShedsWithTypedRejection) {
  const ModelConfig config = serve_config();
  const EGNNModel reference(config);
  ServerOptions options;
  options.num_workers = 1;
  options.max_queue = 2;
  options.max_batch_graphs = 1;  // serve one request at a time
  options.cache_capacity = 0;    // every request must be computed
  Server server(config, model_payload_bytes(reference), options);

  // Submission is orders of magnitude faster than inference, so a tiny
  // queue must shed under a burst. Every accepted request still completes.
  Rng rng(13);
  std::vector<std::future<InferenceResult>> accepted;
  std::int64_t shed = 0;
  for (int i = 0; i < 64; ++i) {
    try {
      accepted.push_back(
          server.submit({random_cluster(24, 6.0, rng), /*forces=*/true}));
    } catch (const RejectedError& e) {
      EXPECT_EQ(e.reason(), RejectReason::kQueueFull);
      ++shed;
    }
  }
  EXPECT_GT(shed, 0) << "burst of 64 never overflowed a 2-deep queue";
  for (auto& future : accepted) EXPECT_NO_THROW(future.get());
}

TEST(ServerTest, SubmitAfterStopIsRejectedAsShuttingDown) {
  const ModelConfig config = serve_config();
  const EGNNModel reference(config);
  ServerOptions options;
  options.cache_capacity = 0;
  Server server(config, model_payload_bytes(reference), options);
  server.stop();
  Rng rng(14);
  try {
    server.submit({random_cluster(5, 5.0, rng), false});
    FAIL() << "submit after stop() must throw";
  } catch (const RejectedError& e) {
    EXPECT_EQ(e.reason(), RejectReason::kShuttingDown);
  }
}

TEST(ServerTest, WeightSwapUnderLoadIsZeroDowntime) {
  const ModelConfig config = serve_config();
  const EGNNModel model_v1(config);
  ModelConfig v2_config = config;
  v2_config.seed = 999;  // same architecture, different weights
  const EGNNModel model_v2(v2_config);

  ServerOptions options;
  options.num_workers = 2;
  options.max_batch_graphs = 2;
  options.cache_capacity = 0;
  Server server(config, model_payload_bytes(model_v1), options);

  // Precompute what each weight set predicts for every structure: any
  // served energy must match one of them exactly, or the swap tore the
  // weights mid-request.
  Rng rng(15);
  std::vector<AtomicStructure> structures;
  std::vector<double> expect_v1;
  std::vector<double> expect_v2;
  for (int i = 0; i < 40; ++i) {
    structures.push_back(random_cluster(6 + i % 5, 6.0, rng));
    expect_v1.push_back(
        reference_predict(model_v1, structures.back(), false).first);
    expect_v2.push_back(
        reference_predict(model_v2, structures.back(), false).first);
  }

  std::vector<std::future<InferenceResult>> futures;
  const std::string v2_payload = model_payload_bytes(model_v2);
  for (std::size_t i = 0; i < structures.size(); ++i) {
    if (i == structures.size() / 2) {
      server.swap_weights(v2_payload);  // mid-stream, requests in flight
    }
    futures.push_back(server.submit({structures[i], false}));
  }

  std::size_t served_v2 = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const InferenceResult result = futures[i].get();  // no failed requests
    if (result.weights_version == 1) {
      EXPECT_NEAR(result.energy, expect_v1[i], 1e-9) << "request " << i;
    } else {
      EXPECT_EQ(result.weights_version, 2u);
      EXPECT_NEAR(result.energy, expect_v2[i], 1e-9) << "request " << i;
      ++served_v2;
    }
  }
  EXPECT_GT(served_v2, 0u) << "swap never took effect";
  EXPECT_EQ(server.weights_version(), 2u);

  // A corrupt payload must be rejected without touching the served weights.
  std::string torn = v2_payload;
  torn.resize(torn.size() / 2);
  EXPECT_THROW(server.swap_weights(torn), Error);
  EXPECT_EQ(server.weights_version(), 2u);
}

TEST(ServerTest, ConcurrentSubmittersAllComplete) {
  const ModelConfig config = serve_config();
  const EGNNModel reference(config);
  ServerOptions options;
  options.num_workers = 3;
  options.max_queue = 4096;
  Server server(config, model_payload_bytes(reference), options);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::atomic<int> completed{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      Rng rng(100 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        const InferenceResult result =
            server.submit({random_cluster(5, 5.0, rng), i % 3 == 0}).get();
        if (std::isfinite(result.energy)) completed.fetch_add(1);
      }
    });
  }
  for (auto& thread : submitters) thread.join();
  EXPECT_EQ(completed.load(), kThreads * kPerThread);
}

}  // namespace
}  // namespace sgnn::serve
