#include "sgnn/store/bp_file.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "sgnn/store/ddstore.hpp"
#include "sgnn/store/serialize.hpp"
#include "sgnn/util/error.hpp"
#include "sgnn/util/rng.hpp"

namespace sgnn {
namespace {

MolecularGraph sample_graph(std::uint64_t seed, bool periodic = false) {
  Rng rng(seed);
  AtomicStructure s;
  const int palette[] = {elements::kH, elements::kC, elements::kO};
  const std::int64_t atoms = 5 + static_cast<std::int64_t>(rng.uniform_index(10));
  for (std::int64_t i = 0; i < atoms; ++i) {
    s.species.push_back(palette[rng.uniform_index(3)]);
    s.positions.push_back(
        {rng.uniform(0, 7), rng.uniform(0, 7), rng.uniform(0, 7)});
  }
  if (periodic) {
    s.cell = {7, 7, 7};
    s.periodic = true;
  }
  MolecularGraph g = MolecularGraph::from_structure(s, 3.0);
  g.energy = rng.normal(0, 5);
  for (auto& f : g.forces) {
    f = {rng.normal(), rng.normal(), rng.normal()};
  }
  return g;
}

void expect_graphs_equal(const MolecularGraph& a, const MolecularGraph& b) {
  EXPECT_EQ(a.structure.species, b.structure.species);
  ASSERT_EQ(a.structure.positions.size(), b.structure.positions.size());
  for (std::size_t i = 0; i < a.structure.positions.size(); ++i) {
    EXPECT_EQ(a.structure.positions[i], b.structure.positions[i]);
    EXPECT_EQ(a.forces[i], b.forces[i]);
  }
  EXPECT_EQ(a.structure.periodic, b.structure.periodic);
  EXPECT_EQ(a.structure.cell, b.structure.cell);
  EXPECT_DOUBLE_EQ(a.energy, b.energy);
  EXPECT_EQ(a.edges.src, b.edges.src);
  EXPECT_EQ(a.edges.dst, b.edges.dst);
  for (std::size_t k = 0; k < a.edges.displacement.size(); ++k) {
    EXPECT_EQ(a.edges.displacement[k], b.edges.displacement[k]);
  }
}

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_((std::filesystem::temp_directory_path() / name).string()) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(SerializeTest, RoundTripOpenSystem) {
  const MolecularGraph g = sample_graph(1);
  std::stringstream buffer;
  write_graph_record(buffer, g);
  expect_graphs_equal(g, read_graph_record(buffer));
}

TEST(SerializeTest, RoundTripPeriodicSystem) {
  const MolecularGraph g = sample_graph(2, /*periodic=*/true);
  std::stringstream buffer;
  write_graph_record(buffer, g);
  expect_graphs_equal(g, read_graph_record(buffer));
}

TEST(SerializeTest, SerializedBytesMatchesActualRecordSize) {
  for (std::uint64_t seed = 3; seed < 8; ++seed) {
    const MolecularGraph g = sample_graph(seed, seed % 2 == 0);
    std::stringstream buffer;
    write_graph_record(buffer, g);
    EXPECT_EQ(buffer.str().size(), g.serialized_bytes()) << "seed " << seed;
  }
}

TEST(SerializeTest, TruncatedRecordThrows) {
  const MolecularGraph g = sample_graph(9);
  std::stringstream buffer;
  write_graph_record(buffer, g);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(read_graph_record(truncated), Error);
}

TEST(SerializeTest, GarbageHeaderThrows) {
  std::string garbage(64, '\xFF');
  std::stringstream stream(garbage);
  EXPECT_THROW(read_graph_record(stream), Error);
}

TEST(Crc32Test, KnownVectorAndSensitivity) {
  // Standard test vector: crc32("123456789") = 0xCBF43926.
  const char data[] = "123456789";
  EXPECT_EQ(crc32(data, 9), 0xCBF43926u);
  char mutated[] = "123456780";
  EXPECT_NE(crc32(mutated, 9), 0xCBF43926u);
  EXPECT_EQ(crc32(data, 0), 0u);
}

TEST(BpFileTest, WriteReadRoundTrip) {
  const TempFile file("sgnn_bp_roundtrip.bp");
  std::vector<MolecularGraph> graphs;
  {
    BpWriter writer(file.path());
    for (std::uint64_t seed = 10; seed < 16; ++seed) {
      graphs.push_back(sample_graph(seed, seed % 2 == 0));
      EXPECT_EQ(writer.append(graphs.back()), graphs.size() - 1);
    }
    writer.finalize();
  }
  const BpReader reader(file.path());
  ASSERT_EQ(reader.size(), graphs.size());
  // Random-access order, not sequential.
  for (const std::size_t i : {3u, 0u, 5u, 2u, 1u, 4u}) {
    expect_graphs_equal(graphs[i], reader.read(i));
    EXPECT_EQ(reader.record_bytes(i), graphs[i].serialized_bytes());
  }
}

TEST(BpFileTest, UnfinalizedFileIsRejected) {
  const TempFile file("sgnn_bp_unfinalized.bp");
  {
    BpWriter writer(file.path());
    writer.append(sample_graph(20));
    // no finalize: simulated crash
  }
  EXPECT_THROW(BpReader reader(file.path()), Error);
}

TEST(BpFileTest, CorruptedFooterIsDetected) {
  const TempFile file("sgnn_bp_corrupt.bp");
  {
    BpWriter writer(file.path());
    writer.append(sample_graph(21));
    writer.append(sample_graph(22));
    writer.finalize();
  }
  // Flip a byte inside the footer index region (near the end, before the
  // 16-byte trailer).
  {
    std::fstream f(file.path(),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(0, std::ios::end);
    const auto size = static_cast<std::streamoff>(f.tellg());
    f.seekp(size - 20);
    char byte;
    f.seekg(size - 20);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x55);
    f.seekp(size - 20);
    f.write(&byte, 1);
  }
  EXPECT_THROW(BpReader reader(file.path()), Error);
}

TEST(BpFileTest, NonBpFileIsRejected) {
  const TempFile file("sgnn_not_bp.bin");
  {
    std::ofstream f(file.path(), std::ios::binary);
    f << "this is not a bp file at all, just some text padding............";
  }
  EXPECT_THROW(BpReader reader(file.path()), Error);
}

TEST(BpFileTest, AppendAfterFinalizeThrows) {
  const TempFile file("sgnn_bp_after_finalize.bp");
  BpWriter writer(file.path());
  writer.append(sample_graph(23));
  writer.finalize();
  EXPECT_THROW(writer.append(sample_graph(24)), Error);
}

TEST(BpFileTest, PayloadBytesTracksRecords) {
  const TempFile file("sgnn_bp_payload.bp");
  BpWriter writer(file.path());
  const MolecularGraph g = sample_graph(25);
  writer.append(g);
  writer.append(g);
  EXPECT_EQ(writer.payload_bytes(), 2 * g.serialized_bytes());
  writer.finalize();
}

TEST(DDStoreTest, RoundRobinOwnership) {
  DDStore store(4);
  std::vector<MolecularGraph> graphs;
  for (std::uint64_t seed = 30; seed < 40; ++seed) {
    graphs.push_back(sample_graph(seed));
  }
  store.insert(graphs);
  EXPECT_EQ(store.size(), 10);
  EXPECT_EQ(store.owner_rank(0), 0);
  EXPECT_EQ(store.owner_rank(5), 1);
  EXPECT_EQ(store.shard_size(0), 3);  // indices 0, 4, 8
  EXPECT_EQ(store.shard_size(3), 2);  // indices 3, 7
}

TEST(DDStoreTest, FetchReturnsCorrectGraphAndCountsTraffic) {
  DDStore store(2);
  std::vector<MolecularGraph> graphs;
  for (std::uint64_t seed = 40; seed < 44; ++seed) {
    graphs.push_back(sample_graph(seed));
  }
  store.insert(graphs);

  expect_graphs_equal(graphs[1], store.fetch(1, 1));  // local to rank 1
  expect_graphs_equal(graphs[1], store.fetch(0, 1));  // remote for rank 0
  const auto stats = store.stats();
  EXPECT_EQ(stats.local_hits, 1u);
  EXPECT_EQ(stats.remote_fetches, 1u);
  EXPECT_EQ(stats.remote_bytes, graphs[1].serialized_bytes());

  store.reset_stats();
  EXPECT_EQ(store.stats().remote_fetches, 0u);
}

TEST(DDStoreTest, OutOfRangeFetchThrows) {
  DDStore store(2);
  store.insert({sample_graph(50)});
  EXPECT_THROW(store.fetch(0, 1), Error);
  EXPECT_THROW(store.fetch(5, 0), Error);
}

}  // namespace
}  // namespace sgnn
