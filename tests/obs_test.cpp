#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "sgnn/obs/metrics.hpp"
#include "sgnn/obs/telemetry.hpp"
#include "sgnn/obs/trace.hpp"
#include "sgnn/util/error.hpp"

namespace sgnn::obs {
namespace {

// ---------------------------------------------------------------- metrics

TEST(CounterTest, ConcurrentUpdatesAreLossless) {
  Counter counter;
  const int kThreads = 8;
  const int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kIncrements);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  gauge.set(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
  gauge.add(-1.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 1.5);
  gauge.reset();
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(HistogramTest, ConcurrentObservationsAreLossless) {
  Histogram histogram(Histogram::exponential_bounds(1e-3, 1e3, 10.0));
  const int kThreads = 8;
  const int kObservations = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kObservations; ++i) {
        histogram.observe(0.01 * (t + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto snap = histogram.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads * kObservations));
  // Sum of t in 1..8 of 0.01 * t * kObservations.
  EXPECT_NEAR(snap.sum, 0.01 * 36 * kObservations, 1e-6);
  std::uint64_t bucketed = 0;
  for (const auto b : snap.buckets) bucketed += b;
  EXPECT_EQ(bucketed, snap.count);
}

TEST(HistogramTest, QuantilesInterpolateSensibly) {
  Histogram histogram({1.0, 2.0, 4.0, 8.0});
  for (int i = 0; i < 100; ++i) histogram.observe(1.5);  // (1, 2]
  for (int i = 0; i < 100; ++i) histogram.observe(3.0);  // (2, 4]
  const auto snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 200u);
  EXPECT_DOUBLE_EQ(snap.min, 1.5);
  EXPECT_DOUBLE_EQ(snap.max, 3.0);
  const double p25 = snap.quantile(0.25);
  EXPECT_GE(p25, 1.0);
  EXPECT_LE(p25, 2.0);
  const double p75 = snap.quantile(0.75);
  EXPECT_GE(p75, 2.0);
  EXPECT_LE(p75, 4.0);
  // Quantiles are monotone and bounded by the observed extremes.
  EXPECT_LE(snap.quantile(0.0), snap.quantile(0.5));
  EXPECT_LE(snap.quantile(0.5), snap.quantile(1.0));
  EXPECT_LE(snap.quantile(1.0), snap.max);
}

TEST(HistogramTest, EmptyHistogramIsWellBehaved) {
  Histogram histogram({1.0, 2.0});
  const auto snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 0.0);
}

TEST(MetricsRegistryTest, SameNameReturnsSameInstrument) {
  MetricsRegistry& registry = MetricsRegistry::instance();
  Counter& a = registry.counter("obs_test.same_name");
  Counter& b = registry.counter("obs_test.same_name");
  EXPECT_EQ(&a, &b);
  a.reset();
  a.add(3);
  EXPECT_EQ(b.value(), 3);
}

TEST(MetricsRegistryTest, ConcurrentRegistrationAndUpdate) {
  MetricsRegistry& registry = MetricsRegistry::instance();
  registry.counter("obs_test.concurrent").reset();
  const int kThreads = 8;
  const int kIncrements = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kIncrements; ++i) {
        registry.counter("obs_test.concurrent").add(1);
        registry.histogram("obs_test.concurrent_hist").observe(0.001);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.counter("obs_test.concurrent").value(),
            kThreads * kIncrements);
}

TEST(MetricsRegistryTest, SnapshotAndTextDump) {
  MetricsRegistry& registry = MetricsRegistry::instance();
  registry.counter("obs_test.snap_counter").reset();
  registry.counter("obs_test.snap_counter").add(7);
  registry.gauge("obs_test.snap_gauge").set(1.25);
  registry.histogram("obs_test.snap_hist").reset();
  registry.histogram("obs_test.snap_hist").observe(0.5);

  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("obs_test.snap_counter"), 7);
  EXPECT_DOUBLE_EQ(snap.gauges.at("obs_test.snap_gauge"), 1.25);
  EXPECT_EQ(snap.histograms.at("obs_test.snap_hist").count, 1u);

  const std::string text = snap.to_text();
  EXPECT_NE(text.find("obs_test.snap_counter = 7"), std::string::npos);
  EXPECT_NE(text.find("obs_test.snap_gauge = 1.25"), std::string::npos);
  EXPECT_NE(text.find("obs_test.snap_hist: count=1"), std::string::npos);

  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"obs_test.snap_counter\":7"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

// ---------------------------------------------------------------- tracing

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::instance().disable();
    TraceRecorder::instance().clear();
  }
  void TearDown() override {
    TraceRecorder::instance().disable();
    TraceRecorder::instance().clear();
  }
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  {
    TraceSpan span("invisible", "test");
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(TraceRecorder::instance().size(), 0u);
}

TEST_F(TraceTest, NestedSpansAreOrderedAndContained) {
  TraceRecorder::instance().enable();
  {
    TraceSpan outer("outer", "test");
    {
      TraceSpan inner("inner", "test");
      inner.arg("key", std::string("value"));
    }
  }
  TraceRecorder::instance().disable();

  const auto events = TraceRecorder::instance().events();
  ASSERT_EQ(events.size(), 2u);
  const auto find = [&](const char* name) {
    return *std::find_if(events.begin(), events.end(),
                         [&](const TraceEvent& e) {
                           return std::string(e.name) == name;
                         });
  };
  const TraceEvent outer = find("outer");
  const TraceEvent inner = find("inner");
  EXPECT_LE(outer.begin_us, inner.begin_us);
  EXPECT_GE(outer.end_us, inner.end_us);
  EXPECT_EQ(outer.tid, inner.tid);
  ASSERT_EQ(inner.args.size(), 1u);
  EXPECT_EQ(inner.args[0].first, "key");
  EXPECT_EQ(inner.args[0].second, "value");
}

TEST_F(TraceTest, ChromeJsonExportHasCompleteEventsAndRankPids) {
  TraceRecorder::instance().enable();
  {
    const ScopedTraceRank rank(2);
    TraceSpan span("ranked_work", "test");
  }
  { TraceSpan span("unranked_work", "test"); }
  TraceRecorder::instance().disable();

  const std::string json = TraceRecorder::instance().to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"ranked_work\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rank 2\""), std::string::npos);
  // Braces and brackets balance — the cheap structural validity check.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST_F(TraceTest, ConcurrentSpansFromManyThreadsAllLand) {
  TraceRecorder::instance().enable();
  const int kThreads = 8;
  const int kSpans = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      const ScopedTraceRank rank(t);
      for (int i = 0; i < kSpans; ++i) {
        TraceSpan span("work", "test");
      }
    });
  }
  for (auto& t : threads) t.join();
  TraceRecorder::instance().disable();

  EXPECT_EQ(TraceRecorder::instance().size(),
            static_cast<std::size_t>(kThreads * kSpans));
  std::set<int> ranks;
  for (const auto& event : TraceRecorder::instance().events()) {
    ranks.insert(event.rank);
  }
  EXPECT_EQ(ranks.size(), static_cast<std::size_t>(kThreads));
}

TEST_F(TraceTest, ScopedRankRestoresPreviousRank) {
  EXPECT_EQ(TraceRecorder::current_rank(), -1);
  {
    const ScopedTraceRank outer(1);
    EXPECT_EQ(TraceRecorder::current_rank(), 1);
    {
      const ScopedTraceRank inner(2);
      EXPECT_EQ(TraceRecorder::current_rank(), 2);
    }
    EXPECT_EQ(TraceRecorder::current_rank(), 1);
  }
  EXPECT_EQ(TraceRecorder::current_rank(), -1);
}

// -------------------------------------------------------------- telemetry

StepTelemetry sample_step() {
  StepTelemetry t;
  t.step = 42;
  t.epoch = 3;
  t.rank = 1;
  t.loss = 0.125;
  t.grad_norm = 2.5;
  t.learning_rate = 1e-3;
  t.batch_graphs = 8;
  t.batch_atoms = 321;
  t.batch_edges = 4567;
  t.step_seconds = 0.25;
  t.atoms_per_sec = 1284.0;
  t.graphs_per_sec = 32.0;
  t.collective_bytes = 1048576;
  t.comm_seconds_modeled = 3.5e-5;
  t.halo_bytes = 262144;
  t.halo_exchanges = 12;
  t.halo_exposed_seconds = 1.5e-6;
  t.halo_overlapped_seconds = 2.5e-6;
  t.live_bytes = 123456;
  t.peak_bytes = 654321;
  t.kernel_seconds = 0.125;
  t.kernel_flops = 1000000;
  t.kernel_bytes = 2000000;
  return t;
}

TEST(TelemetryTest, JsonRoundTripPreservesEveryField) {
  const StepTelemetry original = sample_step();
  const StepTelemetry parsed = StepTelemetry::from_json(original.to_json());
  EXPECT_EQ(parsed.step, original.step);
  EXPECT_EQ(parsed.epoch, original.epoch);
  EXPECT_EQ(parsed.rank, original.rank);
  EXPECT_DOUBLE_EQ(parsed.loss, original.loss);
  EXPECT_DOUBLE_EQ(parsed.grad_norm, original.grad_norm);
  EXPECT_DOUBLE_EQ(parsed.learning_rate, original.learning_rate);
  EXPECT_EQ(parsed.batch_graphs, original.batch_graphs);
  EXPECT_EQ(parsed.batch_atoms, original.batch_atoms);
  EXPECT_EQ(parsed.batch_edges, original.batch_edges);
  EXPECT_DOUBLE_EQ(parsed.step_seconds, original.step_seconds);
  EXPECT_DOUBLE_EQ(parsed.atoms_per_sec, original.atoms_per_sec);
  EXPECT_DOUBLE_EQ(parsed.graphs_per_sec, original.graphs_per_sec);
  EXPECT_EQ(parsed.collective_bytes, original.collective_bytes);
  EXPECT_DOUBLE_EQ(parsed.comm_seconds_modeled,
                   original.comm_seconds_modeled);
  EXPECT_EQ(parsed.halo_bytes, original.halo_bytes);
  EXPECT_EQ(parsed.halo_exchanges, original.halo_exchanges);
  EXPECT_DOUBLE_EQ(parsed.halo_exposed_seconds,
                   original.halo_exposed_seconds);
  EXPECT_DOUBLE_EQ(parsed.halo_overlapped_seconds,
                   original.halo_overlapped_seconds);
  EXPECT_EQ(parsed.live_bytes, original.live_bytes);
  EXPECT_EQ(parsed.peak_bytes, original.peak_bytes);
  EXPECT_DOUBLE_EQ(parsed.kernel_seconds, original.kernel_seconds);
  EXPECT_EQ(parsed.kernel_flops, original.kernel_flops);
  EXPECT_EQ(parsed.kernel_bytes, original.kernel_bytes);
}

TEST(TelemetryTest, PreHaloLogsParseWithZeroHaloFields) {
  // Logs written before graph parallelism carry no halo_* fields; they must
  // read back as zeros, not as a parse error.
  std::string line = sample_step().to_json();
  const auto begin = line.find(",\"halo_bytes\"");
  const auto end = line.find(",\"live_bytes\"");
  ASSERT_NE(begin, std::string::npos);
  ASSERT_NE(end, std::string::npos);
  line.erase(begin, end - begin);
  const StepTelemetry parsed = StepTelemetry::from_json(line);
  EXPECT_EQ(parsed.step, 42);
  EXPECT_EQ(parsed.halo_bytes, 0u);
  EXPECT_EQ(parsed.halo_exchanges, 0);
  EXPECT_DOUBLE_EQ(parsed.halo_exposed_seconds, 0.0);
  EXPECT_DOUBLE_EQ(parsed.halo_overlapped_seconds, 0.0);
}

TEST(TelemetryTest, ReadJsonlParsesStreamAndSkipsBlankLines) {
  std::ostringstream out;
  JsonlTelemetrySink sink(out);
  sink.on_step(sample_step());
  StepTelemetry second = sample_step();
  second.step = 43;
  sink.on_step(second);

  std::istringstream in(out.str() + "\n   \n");
  const std::vector<StepTelemetry> steps = read_jsonl(in);
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_EQ(steps[0].step, 42);
  EXPECT_EQ(steps[1].step, 43);
  EXPECT_EQ(steps[1].kernel_flops, 1000000);
}

TEST(TelemetryTest, ReadJsonlReportsLineNumberOnMalformedInput) {
  std::istringstream in(sample_step().to_json() + "\n{not json}\n");
  try {
    read_jsonl(in);
    FAIL() << "expected a parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(TelemetryTest, JsonlSinkWritesOneParseableLinePerStep) {
  std::ostringstream out;
  JsonlTelemetrySink sink(out);
  sink.on_step(sample_step());
  StepTelemetry second = sample_step();
  second.step = 43;
  sink.on_step(second);
  EXPECT_EQ(sink.lines_written(), 2);

  std::istringstream in(out.str());
  std::string line;
  std::vector<StepTelemetry> parsed;
  while (std::getline(in, line)) {
    parsed.push_back(StepTelemetry::from_json(line));
  }
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].step, 42);
  EXPECT_EQ(parsed[1].step, 43);
}

TEST(TelemetryTest, ConcurrentSinkWritesStayLineAtomic) {
  std::ostringstream out;
  JsonlTelemetrySink sink(out);
  const int kThreads = 4;
  const int kSteps = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sink, t] {
      StepTelemetry step = sample_step();
      step.rank = t;
      for (int i = 0; i < kSteps; ++i) {
        step.step = i;
        sink.on_step(step);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(sink.lines_written(), kThreads * kSteps);

  std::istringstream in(out.str());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    const StepTelemetry parsed = StepTelemetry::from_json(line);
    EXPECT_GE(parsed.rank, 0);
    EXPECT_LT(parsed.rank, kThreads);
    ++lines;
  }
  EXPECT_EQ(lines, kThreads * kSteps);
}

TEST(TelemetryTest, RecordStepMetricsFeedsRegistry) {
  MetricsRegistry& registry = MetricsRegistry::instance();
  registry.reset();
  record_step_metrics(sample_step());
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("train.steps"), 1);
  EXPECT_EQ(snap.counters.at("train.atoms"), 321);
  EXPECT_DOUBLE_EQ(snap.gauges.at("train.atoms_per_sec"), 1284.0);
  EXPECT_EQ(snap.histograms.at("step.seconds").count, 1u);
  EXPECT_GT(snap.histograms.at("step.seconds").quantile(0.5), 0.0);
}

}  // namespace
}  // namespace sgnn::obs
