// End-to-end integration: data generation -> bp persistence -> reload ->
// training (single-process and distributed) -> evaluation, asserting the
// cross-module contracts the pipeline relies on.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "sgnn/sgnn.hpp"

namespace sgnn {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static const AggregatedDataset& dataset() {
    static const AggregatedDataset d = [] {
      const ReferencePotential potential;
      DatasetOptions options;
      options.target_bytes = 800 << 10;
      options.seed = 99;
      return AggregatedDataset::generate(options, potential);
    }();
    return d;
  }
};

TEST_F(IntegrationTest, PersistReloadTrainEvaluate) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "sgnn_integration.bp")
          .string();

  // Persist the full dataset.
  {
    BpWriter writer(path);
    for (const auto& g : dataset().graphs()) writer.append(g);
    writer.finalize();
  }

  // Reload and verify it matches.
  const BpReader reader(path);
  ASSERT_EQ(reader.size(), dataset().graphs().size());
  std::vector<MolecularGraph> reloaded;
  for (std::size_t i = 0; i < reader.size(); ++i) {
    reloaded.push_back(reader.read(i));
    EXPECT_DOUBLE_EQ(reloaded.back().energy, dataset().graphs()[i].energy);
  }
  std::remove(path.c_str());

  // Train a small model on the reloaded data.
  std::vector<const MolecularGraph*> view;
  for (const auto& g : reloaded) view.push_back(&g);
  ModelConfig config;
  config.hidden_dim = 16;
  config.num_layers = 2;
  EGNNModel model(config);
  TrainOptions options;
  options.epochs = 3;
  options.batch_size = 8;
  Trainer trainer(model, options);
  trainer.set_energy_baseline(EnergyBaseline::fit(view));
  DataLoader loader(view, options.batch_size, 5);
  const auto history = trainer.fit(loader);
  EXPECT_EQ(history.size(), 3u);

  // Evaluation on the same data must be finite and consistent.
  const EvalMetrics metrics = trainer.evaluate(view, 16);
  EXPECT_TRUE(std::isfinite(metrics.loss));
  EXPECT_GT(metrics.loss, 0);
}

TEST_F(IntegrationTest, SingleRankDistributedMatchesTrainerSemantics) {
  // A 1-rank DistributedTrainer is plain Adam training; it must produce a
  // model that actually learned (loss finite, replicas trivially in sync)
  // and zero collective traffic cost.
  ModelConfig config;
  config.hidden_dim = 12;
  config.num_layers = 2;
  DistTrainOptions options;
  options.num_ranks = 1;
  options.epochs = 1;
  options.per_rank_batch_size = 4;
  DistributedTrainer trainer(config, options);

  DDStore store(1);
  store.insert(dataset().graphs());
  const DistTrainReport report = trainer.train(store);
  EXPECT_TRUE(std::isfinite(report.final_train_loss));
  EXPECT_EQ(report.comm_seconds, 0.0);
  EXPECT_EQ(report.data_traffic.remote_fetches, 0u);
  EXPECT_EQ(trainer.replica_divergence(), 0.0);
}

TEST_F(IntegrationTest, SweepPointsRespondToDataSize) {
  // The core premise of the scaling study: a model trained on more data
  // must not test WORSE (up to noise) than the same model on much less
  // data, using the same fixed test set.
  const auto split = dataset().split(0.25, 7);
  SweepProtocol protocol;
  protocol.train.epochs = 4;
  protocol.train.batch_size = 8;

  ModelConfig config;
  config.hidden_dim = 24;
  config.num_layers = 2;

  const auto small = dataset().subsample(
      split.train, dataset().total_bytes() / 8, true, 3);
  const SweepPoint tiny = run_scaling_point(dataset(), small, split.test,
                                            config, protocol);
  const SweepPoint full = run_scaling_point(dataset(), split.train,
                                            split.test, config, protocol);
  EXPECT_LT(full.test_loss, tiny.test_loss * 1.15)
      << "more data should not substantially hurt";
  EXPECT_GT(tiny.train_graphs, 0);
  EXPECT_GT(full.train_graphs, tiny.train_graphs);
}

TEST_F(IntegrationTest, MemoryTrackerBalancesAfterFullPipeline) {
  // Leak check at the accounting level: after a scoped train run, live
  // activation/gradient bytes must return to their pre-run level.
  const auto before = MemoryTracker::instance().live();
  {
    std::vector<const MolecularGraph*> view;
    for (const auto& g : dataset().graphs()) view.push_back(&g);
    ModelConfig config;
    config.hidden_dim = 12;
    config.num_layers = 2;
    EGNNModel model(config);
    TrainOptions options;
    options.epochs = 1;
    options.batch_size = 8;
    Trainer trainer(model, options);
    DataLoader loader(view, options.batch_size, 5);
    trainer.fit(loader);
  }
  const auto after = MemoryTracker::instance().live();
  EXPECT_EQ(after.of(MemCategory::kActivation),
            before.of(MemCategory::kActivation));
  EXPECT_EQ(after.of(MemCategory::kGradient),
            before.of(MemCategory::kGradient));
  EXPECT_EQ(after.of(MemCategory::kWeight), before.of(MemCategory::kWeight));
  EXPECT_EQ(after.of(MemCategory::kOptimizerState),
            before.of(MemCategory::kOptimizerState));
}

}  // namespace
}  // namespace sgnn
