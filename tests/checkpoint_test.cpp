#include "sgnn/tensor/checkpoint.hpp"

#include <gtest/gtest.h>

#include "sgnn/tensor/memory_tracker.hpp"
#include "sgnn/tensor/ops.hpp"
#include "sgnn/util/rng.hpp"

namespace sgnn {
namespace {

/// A small three-layer segment with enough intermediates for checkpointing
/// to have a measurable memory effect.
Tensor segment(const std::vector<Tensor>& in) {
  Tensor h = silu(matmul(in[0], in[1]));
  h = silu(matmul(h, in[2]));
  return sum(square(h));
}

TEST(CheckpointTest, ForwardValueMatchesPlainExecution) {
  Rng rng(1);
  const Tensor x = Tensor::randn(Shape{4, 6}, rng);
  Tensor w1 = Tensor::randn(Shape{6, 8}, rng).set_requires_grad(true);
  Tensor w2 = Tensor::randn(Shape{8, 3}, rng).set_requires_grad(true);

  const Tensor plain = segment({x, w1, w2});
  const Tensor ckpt = checkpoint(segment, {x, w1, w2});
  EXPECT_DOUBLE_EQ(plain.item(), ckpt.item());
}

TEST(CheckpointTest, GradientsMatchPlainBackwardExactly) {
  Rng rng(2);
  const Tensor x = Tensor::randn(Shape{4, 6}, rng);
  Tensor w1 = Tensor::randn(Shape{6, 8}, rng).set_requires_grad(true);
  Tensor w2 = Tensor::randn(Shape{8, 3}, rng).set_requires_grad(true);

  segment({x, w1, w2}).backward();
  const auto g1_plain = w1.grad().to_vector();
  const auto g2_plain = w2.grad().to_vector();
  w1.zero_grad();
  w2.zero_grad();

  checkpoint(segment, {x, w1, w2}).backward();
  // Same ops in the same order on the same values: bitwise equality.
  EXPECT_EQ(w1.grad().to_vector(), g1_plain);
  EXPECT_EQ(w2.grad().to_vector(), g2_plain);
}

TEST(CheckpointTest, ChainedCheckpointsBackpropagateThroughBoth) {
  Rng rng(3);
  Tensor w1 = Tensor::randn(Shape{5, 5}, rng).set_requires_grad(true);
  Tensor w2 = Tensor::randn(Shape{5, 5}, rng).set_requires_grad(true);
  const Tensor x = Tensor::randn(Shape{2, 5}, rng);

  const SegmentFn layer = [](const std::vector<Tensor>& in) {
    return silu(matmul(in[0], in[1]));
  };
  Tensor h = checkpoint(layer, {x, w1});
  h = checkpoint(layer, {h, w2});
  sum(h).backward();
  EXPECT_TRUE(w1.grad().defined());
  EXPECT_TRUE(w2.grad().defined());

  // Reference without checkpointing.
  const auto g1 = w1.grad().to_vector();
  const auto g2 = w2.grad().to_vector();
  w1.zero_grad();
  w2.zero_grad();
  sum(silu(matmul(silu(matmul(x, w1)), w2))).backward();
  EXPECT_EQ(w1.grad().to_vector(), g1);
  EXPECT_EQ(w2.grad().to_vector(), g2);
}

TEST(CheckpointTest, InputNotRequiringGradGetsNoGradient) {
  Rng rng(4);
  Tensor x = Tensor::randn(Shape{2, 3}, rng);  // no grad
  Tensor w = Tensor::randn(Shape{3, 2}, rng).set_requires_grad(true);
  Tensor out = checkpoint(
      [](const std::vector<Tensor>& in) {
        return sum(matmul(in[0], in[1]));
      },
      {x, w});
  out.backward();
  EXPECT_FALSE(x.grad().defined());
  EXPECT_TRUE(w.grad().defined());
}

TEST(CheckpointTest, SegmentIgnoringAnInputYieldsZeroGradient) {
  Tensor used = Tensor::scalar(2.0).set_requires_grad(true);
  Tensor unused = Tensor::scalar(5.0).set_requires_grad(true);
  Tensor out = checkpoint(
      [](const std::vector<Tensor>& in) { return square(in[0]); },
      {used, unused});
  out.backward();
  EXPECT_DOUBLE_EQ(used.grad().item(), 4.0);
  ASSERT_TRUE(unused.grad().defined());
  EXPECT_DOUBLE_EQ(unused.grad().item(), 0.0);
}

TEST(CheckpointTest, ReducesPeakActivationMemory) {
  Rng rng(5);
  const std::int64_t width = 64;
  const std::int64_t depth = 8;
  std::vector<Tensor> weights;
  for (std::int64_t i = 0; i < depth; ++i) {
    ScopedMemCategory weight_scope(MemCategory::kWeight);
    weights.push_back(
        Tensor::randn(Shape{width, width}, rng, 0.1).set_requires_grad(true));
  }
  const Tensor x = Tensor::randn(Shape{32, width}, rng);

  // Four-layer segment (weights passed as explicit inputs so gradients flow
  // even when the data input itself does not require grad): with
  // checkpointing only the segment-boundary tensors stay alive through the
  // forward pass instead of all sixteen per-layer intermediates.
  const SegmentFn four_layers = [](const std::vector<Tensor>& in) {
    Tensor h = in[0];
    for (std::size_t i = 1; i < in.size(); ++i) {
      h = silu(matmul(h, in[i]));
    }
    return h;
  };

  const auto run = [&](bool use_checkpoint) {
    MemoryTracker::instance().reset_peak();
    Tensor h = x;
    for (std::size_t first = 0; first < static_cast<std::size_t>(depth);
         first += 4) {
      const std::vector<Tensor> seg_inputs = {h, weights[first],
                                              weights[first + 1],
                                              weights[first + 2],
                                              weights[first + 3]};
      h = use_checkpoint ? checkpoint(four_layers, seg_inputs)
                         : four_layers(seg_inputs);
    }
    Tensor loss = sum(square(h));
    const std::int64_t peak_fwd =
        MemoryTracker::instance().peak().of(MemCategory::kActivation);
    loss.backward();
    for (auto& w : weights) w.zero_grad();
    return peak_fwd;
  };

  const std::int64_t plain_peak = run(false);
  const std::int64_t ckpt_peak = run(true);
  EXPECT_LT(static_cast<double>(ckpt_peak),
            0.55 * static_cast<double>(plain_peak));
}

}  // namespace
}  // namespace sgnn
