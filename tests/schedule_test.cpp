#include "sgnn/train/schedule.hpp"

#include <gtest/gtest.h>

#include "sgnn/tensor/ops.hpp"
#include "sgnn/util/error.hpp"
#include "sgnn/util/rng.hpp"

namespace sgnn {
namespace {

TEST(ScheduleTest, ConstantIsConstant) {
  const LrSchedule s = LrSchedule::constant(1e-3);
  EXPECT_DOUBLE_EQ(s.at_step(0), 1e-3);
  EXPECT_DOUBLE_EQ(s.at_step(10000), 1e-3);
}

TEST(ScheduleTest, ExponentialDecaysPerEpoch) {
  const LrSchedule s = LrSchedule::exponential(1.0, 0.5, 10);
  EXPECT_DOUBLE_EQ(s.at_step(0), 1.0);
  EXPECT_DOUBLE_EQ(s.at_step(9), 1.0);    // still epoch 0
  EXPECT_DOUBLE_EQ(s.at_step(10), 0.5);   // epoch 1
  EXPECT_DOUBLE_EQ(s.at_step(25), 0.25);  // epoch 2
}

TEST(ScheduleTest, WarmupRampsLinearly) {
  const LrSchedule s = LrSchedule::warmup_cosine(1.0, 10, 100);
  EXPECT_NEAR(s.at_step(0), 0.1, 1e-12);
  EXPECT_NEAR(s.at_step(4), 0.5, 1e-12);
  EXPECT_NEAR(s.at_step(9), 1.0, 1e-12);
}

TEST(ScheduleTest, CosineDecaysToFinalFraction) {
  const LrSchedule s = LrSchedule::warmup_cosine(1.0, 10, 110, 0.1);
  // Midpoint of the cosine arc: halfway between peak and floor.
  EXPECT_NEAR(s.at_step(60), 0.55, 1e-9);
  EXPECT_NEAR(s.at_step(110), 0.1, 1e-12);
  EXPECT_NEAR(s.at_step(100000), 0.1, 1e-12);  // clamped
}

TEST(ScheduleTest, MonotoneAfterWarmup) {
  const LrSchedule s = LrSchedule::warmup_cosine(3e-3, 20, 200);
  double previous = s.at_step(20);
  for (std::int64_t step = 21; step <= 200; ++step) {
    const double lr = s.at_step(step);
    EXPECT_LE(lr, previous + 1e-15) << "step " << step;
    previous = lr;
  }
}

TEST(ScheduleTest, RejectsInvalidConfigs) {
  EXPECT_THROW(LrSchedule::constant(0.0), Error);
  EXPECT_THROW(LrSchedule::exponential(1.0, 1.5, 10), Error);
  EXPECT_THROW(LrSchedule::exponential(1.0, 0.5, 0), Error);
  EXPECT_THROW(LrSchedule::warmup_cosine(1.0, 100, 50), Error);
  EXPECT_THROW(LrSchedule::constant(1e-3).at_step(-1), Error);
}

TEST(ClipGradTest, ScalesDownLargeGradients) {
  Tensor a = Tensor::from_vector({3.0, 0.0}, Shape{2}).set_requires_grad(true);
  Tensor b = Tensor::from_vector({0.0, 4.0}, Shape{2}).set_requires_grad(true);
  // Gradients: d/da sum(a*a) = 2a = (6, 0); d/db = (0, 8). Joint norm = 10.
  (sum(square(a)) + sum(square(b))).backward();
  const double norm = clip_grad_norm({a, b}, 5.0);
  EXPECT_NEAR(norm, 10.0, 1e-12);
  EXPECT_NEAR(a.grad().to_vector()[0], 3.0, 1e-12);  // 6 * (5/10)
  EXPECT_NEAR(b.grad().to_vector()[1], 4.0, 1e-12);  // 8 * (5/10)
}

TEST(ClipGradTest, LeavesSmallGradientsUntouched) {
  Tensor a = Tensor::scalar(1.0).set_requires_grad(true);
  square(a).backward();  // grad = 2
  const double norm = clip_grad_norm({a}, 100.0);
  EXPECT_NEAR(norm, 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(a.grad().item(), 2.0);
}

TEST(ClipGradTest, IgnoresUndefinedGradients) {
  Tensor with = Tensor::scalar(1.0).set_requires_grad(true);
  Tensor without = Tensor::scalar(1.0).set_requires_grad(true);
  square(with).backward();
  EXPECT_NO_THROW(clip_grad_norm({with, without}, 1.0));
  EXPECT_FALSE(without.grad().defined());
}

}  // namespace
}  // namespace sgnn
