// The bit-identity wall around the overlapped communication path: bucketed
// DDP and ZeRO-1 (non-blocking collectives posted during backward via the
// autograd leaf-grad hook) must produce BYTE-identical parameters to the
// sequential blocking path, for any bucket size, any rank count, with and
// without activation checkpointing. EXPECT_EQ on the raw vectors — not
// EXPECT_NEAR — is the point: overlap is a scheduling change, never a
// numerics change. Runs with SGNN_NUM_THREADS=4 (see tests/CMakeLists.txt)
// so the intra-op pool races against the progress engine under TSan.

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "sgnn/data/dataset.hpp"
#include "sgnn/obs/telemetry.hpp"
#include "sgnn/tensor/ops.hpp"
#include "sgnn/train/bucketer.hpp"
#include "sgnn/train/distributed.hpp"
#include "sgnn/train/zero.hpp"

namespace sgnn {
namespace {

const AggregatedDataset& tiny_dataset() {
  static const AggregatedDataset dataset = [] {
    DatasetOptions options;
    options.target_bytes = 700 << 10;
    options.seed = 31;
    static const ReferencePotential potential;
    return AggregatedDataset::generate(options, potential);
  }();
  return dataset;
}

std::unique_ptr<DDStore> make_store(int ranks) {
  auto store = std::make_unique<DDStore>(ranks);
  store->insert(tiny_dataset().graphs());
  return store;
}

template <typename Body>
void run_ranks(int num_ranks, Body body) {
  std::vector<std::thread> threads;
  for (int r = 0; r < num_ranks; ++r) threads.emplace_back(body, r);
  for (auto& t : threads) t.join();
}

// -- optimizer-level parity ---------------------------------------------------

/// Three steps of DDPAdam or ZeroAdam over two 16-element parameters with
/// formulaic per-rank gradients, the bucketer armed around backward exactly
/// the way DistributedTrainer arms it. Returns rank 0's final parameters
/// (all ranks are checked identical first).
std::vector<real> optimizer_run(bool use_zero, int R,
                                std::size_t bucket_bytes) {
  Rng rng(11);
  const Tensor init_a = Tensor::randn(Shape{16}, rng);
  const Tensor init_b = Tensor::randn(Shape{4, 4}, rng);

  const auto coeff_for = [](int rank, const Shape& shape, int salt) {
    Tensor g = Tensor::zeros(shape);
    real* p = g.data();
    for (std::int64_t i = 0; i < g.numel(); ++i) {
      p[i] = static_cast<real>(0.01) * static_cast<real>(rank + 1) *
             static_cast<real>(i + salt);
    }
    return g;
  };

  Communicator comm(R);
  Adam::Options options;
  options.learning_rate = 0.05;
  std::vector<std::vector<Tensor>> params(static_cast<std::size_t>(R));
  std::vector<std::unique_ptr<DDPAdam>> ddp(static_cast<std::size_t>(R));
  std::vector<std::unique_ptr<ZeroAdam>> zero(static_cast<std::size_t>(R));
  for (int r = 0; r < R; ++r) {
    const auto ri = static_cast<std::size_t>(r);
    params[ri] = {init_a.clone().set_requires_grad(true),
                  init_b.clone().set_requires_grad(true)};
    if (use_zero) {
      zero[ri] = std::make_unique<ZeroAdam>(comm, params[ri], options,
                                            /*stage=*/1, bucket_bytes);
    } else {
      ddp[ri] =
          std::make_unique<DDPAdam>(comm, params[ri], options, bucket_bytes);
    }
  }

  run_ranks(R, [&](int rank) {
    const auto ri = static_cast<std::size_t>(rank);
    GradBucketer* const bucketer =
        use_zero ? zero[ri]->bucketer() : ddp[ri]->bucketer();
    for (int step = 1; step <= 3; ++step) {
      for (Tensor& p : params[ri]) p.zero_grad();
      // One joint objective so a single backward produces both leaf
      // gradients, exactly like a model loss.
      Tensor total =
          sum(params[ri][0] * coeff_for(rank, Shape{16}, step).detach()) +
          sum(params[ri][1] * coeff_for(rank, Shape{4, 4}, step + 1).detach());
      if (bucketer != nullptr) bucketer->begin_step(rank);
      {
        std::optional<autograd::ScopedLeafGradHook> hook;
        if (bucketer != nullptr) {
          hook.emplace(
              [bucketer](const void* leaf) { bucketer->on_leaf_grad(leaf); });
        }
        total.backward();
      }
      if (use_zero) {
        zero[ri]->step(rank);
      } else {
        ddp[ri]->step(rank);
      }
    }
  });

  const std::vector<real> flat0 = flatten_parameters(params[0]);
  for (int r = 1; r < R; ++r) {
    EXPECT_EQ(flatten_parameters(params[static_cast<std::size_t>(r)]), flat0)
        << "replica " << r << " diverged";
  }
  return flat0;
}

class OptimizerOverlapParity : public ::testing::TestWithParam<int> {};

TEST_P(OptimizerOverlapParity, BucketedUpdatesAreByteIdenticalToSequential) {
  const int R = GetParam();
  // Param-aligned buckets (both tensors hold 16 elements), an odd cap that
  // splits mid-tensor, and a cap larger than the whole model.
  const std::size_t caps[] = {16 * sizeof(real), 5 * sizeof(real),
                              std::size_t{1} << 30};
  for (const bool use_zero : {false, true}) {
    const std::vector<real> sequential = optimizer_run(use_zero, R, 0);
    for (const std::size_t cap : caps) {
      EXPECT_EQ(optimizer_run(use_zero, R, cap), sequential)
          << (use_zero ? "zero" : "ddp") << " ranks=" << R
          << " bucket_bytes=" << cap;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, OptimizerOverlapParity, ::testing::Values(1, 4));

// -- trainer-level parity -----------------------------------------------------

std::vector<real> trainer_run(DistStrategy strategy, std::size_t bucket_bytes,
                              bool activation_checkpointing, int ranks,
                              obs::TelemetrySink* sink = nullptr) {
  ModelConfig config;
  config.hidden_dim = 10;
  config.num_layers = 2;
  DistTrainOptions options;
  options.num_ranks = ranks;
  options.epochs = 1;
  options.per_rank_batch_size = 4;
  options.strategy = strategy;
  options.activation_checkpointing = activation_checkpointing;
  options.max_grad_norm = 1.0;  // mixes a blocking clip collective in
  options.bucket_bytes = bucket_bytes;
  options.telemetry = sink;
  DistributedTrainer trainer(config, options);
  const auto store = make_store(ranks);
  trainer.train(*store);
  EXPECT_EQ(trainer.replica_divergence(), 0.0);
  return flatten_parameters(
      const_cast<EGNNModel&>(trainer.model()).parameters());
}

class TrainerOverlapParity : public ::testing::TestWithParam<DistStrategy> {};

TEST_P(TrainerOverlapParity, BucketedTrainingMatchesSequentialByteForByte) {
  const DistStrategy strategy = GetParam();
  const std::vector<real> sequential = trainer_run(strategy, 0, false, 4);
  // A small cap (many buckets, mid-tensor splits) and the 25 MB default
  // (one bucket for this model) must both reproduce the sequential bytes.
  EXPECT_EQ(trainer_run(strategy, 1000, false, 4), sequential);
  EXPECT_EQ(
      trainer_run(strategy, GradBucketer::kDefaultBucketBytes, false, 4),
      sequential);
}

TEST_P(TrainerOverlapParity, BucketedTrainingMatchesUnderActivationCheckpointing) {
  // Checkpointed segments re-derive leaves in a nested backward, so their
  // parameters reach the bucketer only through the post_remaining sweep —
  // the overlap shrinks but the bytes must not move.
  const DistStrategy strategy = GetParam();
  EXPECT_EQ(trainer_run(strategy, 1000, true, 4),
            trainer_run(strategy, 0, true, 4));
}

INSTANTIATE_TEST_SUITE_P(Strategies, TrainerOverlapParity,
                         ::testing::Values(DistStrategy::kDDP,
                                           DistStrategy::kZeRO1));

TEST(TrainerOverlapParityTest, SingleRankBucketedMatchesSequential) {
  EXPECT_EQ(trainer_run(DistStrategy::kDDP, 1000, false, 1),
            trainer_run(DistStrategy::kDDP, 0, false, 1));
}

// -- overlap telemetry invariants ---------------------------------------------

TEST(OverlapTelemetryTest, ExposedPlusOverlappedEqualsModeledCommTime) {
  obs::RecordingTelemetrySink sink;
  ModelConfig config;
  config.hidden_dim = 10;
  config.num_layers = 2;
  DistTrainOptions options;
  options.num_ranks = 4;
  options.epochs = 1;
  options.per_rank_batch_size = 4;
  options.strategy = DistStrategy::kZeRO1;
  options.bucket_bytes = 1000;  // several buckets per step
  options.telemetry = &sink;
  DistributedTrainer trainer(config, options);
  const auto store = make_store(4);
  const DistTrainReport report = trainer.train(*store);

  std::int64_t buckets = 0;
  for (const obs::StepTelemetry& step : sink.steps()) {
    if (step.rank != 0) continue;  // only rank 0 attributes comm time
    EXPECT_DOUBLE_EQ(step.comm_exposed_seconds + step.comm_overlapped_seconds,
                     step.comm_seconds_modeled);
    EXPECT_GE(step.comm_exposed_seconds, 0.0);
    EXPECT_GE(step.comm_overlapped_seconds, 0.0);
    EXPECT_GT(step.comm_buckets, 0);
    buckets += step.comm_buckets;
  }
  EXPECT_EQ(report.comm_buckets, buckets);
  EXPECT_GT(report.comm_buckets, report.steps);  // more than one bucket/step
  EXPECT_NEAR(report.comm_exposed_seconds + report.comm_overlapped_seconds,
              report.comm_seconds, report.comm_seconds * 1e-9);
  // Overlap-honest accounting can only improve on all-exposed accounting.
  EXPECT_LE(report.overlapped_total_seconds(), report.total_seconds());
}

TEST(OverlapTelemetryTest, SequentialPathReportsEverythingExposed) {
  obs::RecordingTelemetrySink sink;
  ModelConfig config;
  config.hidden_dim = 10;
  config.num_layers = 2;
  DistTrainOptions options;
  options.num_ranks = 2;
  options.epochs = 1;
  options.per_rank_batch_size = 4;
  options.bucket_bytes = 0;  // blocking collectives only
  options.telemetry = &sink;
  DistributedTrainer trainer(config, options);
  const auto store = make_store(2);
  const DistTrainReport report = trainer.train(*store);

  for (const obs::StepTelemetry& step : sink.steps()) {
    if (step.rank != 0) continue;
    EXPECT_DOUBLE_EQ(step.comm_exposed_seconds, step.comm_seconds_modeled);
    EXPECT_DOUBLE_EQ(step.comm_overlapped_seconds, 0.0);
    EXPECT_EQ(step.comm_buckets, 0);
  }
  EXPECT_EQ(report.comm_buckets, 0);
  EXPECT_DOUBLE_EQ(report.comm_overlapped_seconds, 0.0);
  EXPECT_DOUBLE_EQ(report.overlapped_total_seconds(), report.total_seconds());
}

}  // namespace
}  // namespace sgnn
