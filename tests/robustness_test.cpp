// Robustness and stress tests across substrates: randomized failure
// injection for the storage formats, concurrency stress for the store and
// communicator, statistical checks on the dataset generators, and
// smoothness of the reference potential at the cutoff boundary.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "sgnn/comm/communicator.hpp"
#include "sgnn/data/sources.hpp"
#include "sgnn/nn/egnn.hpp"
#include "sgnn/store/bp_file.hpp"
#include "sgnn/store/ddstore.hpp"
#include "sgnn/util/rng.hpp"

namespace sgnn {
namespace {

MolecularGraph sample_graph(std::uint64_t seed) {
  const ReferencePotential potential;
  Rng rng(seed);
  return generate_sample(DataSource::kANI1x, rng, potential);
}

TEST(RobustnessTest, BpFileSurvivesRandomTruncationWithoutUb) {
  // Any truncation point must either yield a valid reader (impossible
  // here, the footer is gone) or a clean Error — never a crash or a
  // silently wrong record count.
  const std::string path =
      (std::filesystem::temp_directory_path() / "sgnn_trunc_fuzz.bp")
          .string();
  {
    BpWriter writer(path);
    for (std::uint64_t s = 1; s <= 4; ++s) writer.append(sample_graph(s));
    writer.finalize();
  }
  const auto full_size = std::filesystem::file_size(path);
  Rng rng(99);
  for (int trial = 0; trial < 24; ++trial) {
    const auto cut = 1 + rng.uniform_index(full_size - 1);
    const std::string clone =
        (std::filesystem::temp_directory_path() / "sgnn_trunc_clone.bp")
            .string();
    std::filesystem::copy_file(
        path, clone, std::filesystem::copy_options::overwrite_existing);
    std::filesystem::resize_file(clone, cut);
    EXPECT_THROW(BpReader reader(clone), Error) << "cut at " << cut;
    std::remove(clone.c_str());
  }
  std::remove(path.c_str());
}

TEST(RobustnessTest, BpFileSurvivesRandomByteFlips) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "sgnn_flip_fuzz.bp")
          .string();
  {
    BpWriter writer(path);
    for (std::uint64_t s = 1; s <= 3; ++s) writer.append(sample_graph(s));
    writer.finalize();
  }
  const auto full_size = std::filesystem::file_size(path);
  Rng rng(7);
  int detected = 0;
  const int trials = 20;
  for (int trial = 0; trial < trials; ++trial) {
    const std::string clone =
        (std::filesystem::temp_directory_path() / "sgnn_flip_clone.bp")
            .string();
    std::filesystem::copy_file(
        path, clone, std::filesystem::copy_options::overwrite_existing);
    {
      std::fstream f(clone, std::ios::in | std::ios::out | std::ios::binary);
      const auto offset = rng.uniform_index(full_size);
      f.seekg(static_cast<std::streamoff>(offset));
      char byte;
      f.read(&byte, 1);
      byte = static_cast<char>(
          static_cast<unsigned char>(byte) ^
          static_cast<unsigned char>(1 + rng.uniform_index(255)));
      f.seekp(static_cast<std::streamoff>(offset));
      f.write(&byte, 1);
    }
    // Opening may throw (header/footer damage) or succeed; reading any
    // record may throw (payload damage) — but nothing may crash, and a
    // record that does parse must still satisfy the graph invariants
    // (read_graph_record validates).
    try {
      const BpReader reader(clone);
      for (std::size_t r = 0; r < reader.size(); ++r) {
        try {
          reader.read(r).validate();
        } catch (const Error&) {
          ++detected;
          break;
        }
      }
    } catch (const Error&) {
      ++detected;
    }
    std::remove(clone.c_str());
  }
  // Most flips hit the payload (positions/forces are not CRC'd per record
  // by design — the footer CRC guards the index); at least the structural
  // flips must be caught.
  EXPECT_GT(detected, 0);
}

TEST(RobustnessTest, DDStoreConcurrentFetchIsSafeAndCountsEveryAccess) {
  DDStore store(4);
  {
    std::vector<MolecularGraph> graphs;
    for (std::uint64_t s = 1; s <= 16; ++s) graphs.push_back(sample_graph(s));
    store.insert(std::move(graphs));
  }
  constexpr int kThreads = 4;
  constexpr int kFetchesPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kFetchesPerThread; ++i) {
        const auto index = static_cast<std::int64_t>(rng.uniform_index(16));
        const MolecularGraph& g = store.fetch(t, index);
        ASSERT_GT(g.num_nodes(), 0);
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto stats = store.stats();
  EXPECT_EQ(stats.local_hits + stats.remote_fetches,
            static_cast<std::uint64_t>(kThreads * kFetchesPerThread));
}

TEST(RobustnessTest, CommunicatorHandlesManySmallCollectivesBackToBack) {
  // Stress the barrier/posting protocol: hundreds of collectives with no
  // pause between them must neither deadlock nor mix payloads.
  const int R = 3;
  Communicator comm(R);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int r = 0; r < R; ++r) {
    threads.emplace_back([&, r] {
      for (int round = 0; round < 300; ++round) {
        std::vector<real> data = {static_cast<real>(r + 1),
                                  static_cast<real>(round)};
        comm.all_reduce_sum(r, data);
        if (data[0] != real{6} ||
            data[1] != static_cast<real>(3 * round)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(RobustnessTest, GeneratedGraphStatisticsMatchTableOne) {
  // The generators must keep per-source statistics in the neighborhood of
  // Tab. I (nodes/graph most importantly — byte accounting depends on it).
  const ReferencePotential potential;
  struct Expectation {
    DataSource source;
    double min_nodes;
    double max_nodes;
  };
  const std::vector<Expectation> expectations = {
      {DataSource::kANI1x, 8, 24},
      {DataSource::kQM7X, 9, 26},
      {DataSource::kOC2020, 55, 90},
      {DataSource::kOC2022, 60, 100},
      {DataSource::kMPTrj, 24, 40},
  };
  Rng rng(31);
  for (const auto& e : expectations) {
    double nodes = 0;
    double edges = 0;
    const int samples = 6;
    for (int i = 0; i < samples; ++i) {
      const MolecularGraph g = generate_sample(e.source, rng, potential);
      g.validate();
      nodes += static_cast<double>(g.num_nodes());
      edges += static_cast<double>(g.num_edges());
    }
    nodes /= samples;
    edges /= samples;
    EXPECT_GE(nodes, e.min_nodes) << source_spec(e.source).name;
    EXPECT_LE(nodes, e.max_nodes) << source_spec(e.source).name;
    // Tab. I reports 11-27 edges/node across sources; require the right
    // order of magnitude.
    EXPECT_GT(edges / nodes, 5.0) << source_spec(e.source).name;
    EXPECT_LT(edges / nodes, 40.0) << source_spec(e.source).name;
  }
}

TEST(RobustnessTest, PotentialIsSmoothAtTheCutoff) {
  // Energy and force must go to zero continuously as a pair crosses the
  // cutoff — discontinuities would corrupt both labels and MD.
  ReferencePotential::Options options;
  options.cutoff = 3.0;
  options.angular_weight = 0;  // two atoms: no triplets anyway
  const ReferencePotential potential(options);
  AtomicStructure s;
  s.species = {elements::kCu, elements::kCu};
  s.positions = {{0, 0, 0}, {0, 0, 0}};

  double previous_energy = 0;
  bool first = true;
  for (double r = 2.80; r <= 3.05; r += 0.002) {
    s.positions[1] = {r, 0, 0};
    const PotentialResult result = potential.evaluate(s);
    if (!first) {
      EXPECT_LT(std::abs(result.energy - previous_energy), 5e-3)
          << "energy jump at r=" << r;
    }
    previous_energy = result.energy;
    first = false;
    if (r > 3.0) {
      const double isolated =
          potential.atomic_reference_energy(elements::kCu) * 2;
      EXPECT_NEAR(result.energy, isolated, 1e-12);
      EXPECT_NEAR(result.forces[0].norm(), 0.0, 1e-12);
    }
  }
}

TEST(RobustnessTest, ModelRejectsMalformedBatches) {
  ModelConfig config;
  config.hidden_dim = 8;
  config.num_layers = 1;
  const EGNNModel model(config);
  GraphBatch empty;
  EXPECT_THROW(model.forward(empty), Error);
}

}  // namespace
}  // namespace sgnn
