#include "sgnn/data/streaming.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>

#include "sgnn/data/dataset.hpp"
#include "sgnn/data/loader.hpp"

namespace sgnn {
namespace {

class StreamingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const ReferencePotential potential;
    DatasetOptions options;
    options.target_bytes = 400 << 10;
    options.seed = 61;
    dataset_ = std::make_unique<AggregatedDataset>(
        AggregatedDataset::generate(options, potential));
    path_ = (std::filesystem::temp_directory_path() / "sgnn_streaming.bp")
                .string();
    BpWriter writer(path_);
    for (const auto& g : dataset_->graphs()) writer.append(g);
    writer.finalize();
  }

  static void TearDownTestSuite() {
    std::remove(path_.c_str());
    dataset_.reset();
  }

  static std::unique_ptr<AggregatedDataset> dataset_;
  static std::string path_;
};

std::unique_ptr<AggregatedDataset> StreamingTest::dataset_;
std::string StreamingTest::path_;

TEST_F(StreamingTest, MatchesInMemoryLoaderBatchForBatch) {
  const BpReader reader(path_);
  std::vector<const MolecularGraph*> view;
  for (const auto& g : dataset_->graphs()) view.push_back(&g);

  DataLoader in_memory(view, 4, /*seed=*/9);
  StreamingLoader streaming(reader, 4, /*seed=*/9, /*cache_capacity=*/16);
  ASSERT_EQ(in_memory.num_batches(), streaming.num_batches());

  while (in_memory.has_next()) {
    ASSERT_TRUE(streaming.has_next());
    const GraphBatch a = in_memory.next();
    const GraphBatch b = streaming.next();
    EXPECT_EQ(a.num_graphs, b.num_graphs);
    EXPECT_EQ(a.species, b.species);
    EXPECT_EQ(a.energy.to_vector(), b.energy.to_vector());
    EXPECT_EQ(a.positions.to_vector(), b.positions.to_vector());
  }
  EXPECT_FALSE(streaming.has_next());
}

TEST_F(StreamingTest, CoversEveryRecordPerEpoch) {
  const BpReader reader(path_);
  StreamingLoader loader(reader, 3, 5, 8);
  std::int64_t seen = 0;
  while (loader.has_next()) seen += loader.next().num_graphs;
  EXPECT_EQ(seen, static_cast<std::int64_t>(reader.size()));
}

TEST_F(StreamingTest, CacheReducesRereads) {
  const BpReader reader(path_);
  // Cache big enough for the whole file: epoch 2 must be all hits.
  StreamingLoader loader(reader, 4, 5, /*cache_capacity=*/4096);
  while (loader.has_next()) loader.next();
  const auto first_epoch = loader.cache_stats();
  EXPECT_EQ(first_epoch.misses, reader.size());
  loader.begin_epoch();
  while (loader.has_next()) loader.next();
  const auto second_epoch = loader.cache_stats();
  EXPECT_EQ(second_epoch.misses, first_epoch.misses);  // no new misses
  EXPECT_GT(second_epoch.hits, first_epoch.hits);
}

TEST_F(StreamingTest, TinyCacheStillCorrect) {
  const BpReader reader(path_);
  StreamingLoader loader(reader, 6, 5, /*cache_capacity=*/1);
  double checksum = 0;
  std::int64_t graphs = 0;
  while (loader.has_next()) {
    const GraphBatch batch = loader.next();
    graphs += batch.num_graphs;
    for (const auto e : batch.energy.to_vector()) checksum += e;
  }
  EXPECT_EQ(graphs, static_cast<std::int64_t>(reader.size()));
  double expected = 0;
  for (const auto& g : dataset_->graphs()) expected += g.energy;
  EXPECT_NEAR(checksum, expected, 1e-9);
  // Everything had to be re-read: hit rate near zero.
  EXPECT_LT(loader.cache_stats().hit_rate(), 0.05);
}

TEST_F(StreamingTest, ZeroCapacityDisablesCaching) {
  const BpReader reader(path_);
  StreamingLoader loader(reader, 4, 5, /*cache_capacity=*/0);
  while (loader.has_next()) loader.next();
  loader.begin_epoch();
  while (loader.has_next()) loader.next();
  EXPECT_EQ(loader.cache_stats().hits, 0u);
  EXPECT_EQ(loader.cache_stats().misses, 2 * reader.size());
}

TEST_F(StreamingTest, UnshuffledOrderIsFileOrder) {
  const BpReader reader(path_);
  StreamingLoader loader(reader, 1, 5, 8, /*shuffle=*/false);
  std::size_t record = 0;
  while (loader.has_next()) {
    const GraphBatch batch = loader.next();
    EXPECT_DOUBLE_EQ(batch.energy.item(), dataset_->graphs()[record].energy);
    ++record;
  }
}

}  // namespace
}  // namespace sgnn
