// Tests for tools/sgnn_lint: every rule must fire on its bad fixture,
// stay quiet on its good fixture, and honor the suppression syntax.

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "lint.hpp"

namespace {

using sgnn::lint::Finding;
using sgnn::lint::lint_file;
using sgnn::lint::parse_source;

std::string fixture_dir() { return SGNN_LINT_FIXTURE_DIR; }

std::string read_fixture(const std::string& name) {
  std::ifstream in(fixture_dir() + "/" + name, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << name;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Lints a fixture file under a pretend tree path (rules are path-scoped).
std::vector<Finding> lint_fixture(const std::string& name,
                                  const std::string& pretend_path) {
  return lint_file(parse_source(pretend_path, read_fixture(name)));
}

std::set<std::string> rules_fired(const std::vector<Finding>& findings) {
  std::set<std::string> rules;
  for (const auto& f : findings) rules.insert(f.rule);
  return rules;
}

bool fired(const std::vector<Finding>& findings, const std::string& rule) {
  return rules_fired(findings).count(rule) > 0;
}

std::string describe(const std::vector<Finding>& findings) {
  std::ostringstream os;
  for (const auto& f : findings) {
    os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
       << "\n";
  }
  return os.str();
}

// -- R1: banned constructs --------------------------------------------------

TEST(LintR1, NakedNewDeleteFires) {
  const auto findings = lint_fixture("new_delete_bad.cpp", "src/x/y.cpp");
  EXPECT_TRUE(fired(findings, "new-delete")) << describe(findings);
  // Both the `new` and the `delete` are reported.
  EXPECT_GE(findings.size(), 2u) << describe(findings);
}

TEST(LintR1, SmartPointersAndSuppressionPass) {
  const auto findings = lint_fixture("new_delete_good.cpp", "src/x/y.cpp");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(LintR1, ThreadOutsideCommFires) {
  const auto findings = lint_fixture("thread_bad.cpp", "src/train/y.cpp");
  EXPECT_TRUE(fired(findings, "thread")) << describe(findings);
}

TEST(LintR1, ThreadInsideCommPasses) {
  const auto findings = lint_fixture("thread_bad.cpp", "src/comm/y.cpp");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(LintR1, ThreadInThreadPoolPasses) {
  const auto findings =
      lint_fixture("thread_bad.cpp", "src/util/thread_pool.cpp");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(LintR1, ThreadInTestsPasses) {
  const auto findings = lint_fixture("thread_bad.cpp", "tests/y_test.cpp");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(LintR1, RandFires) {
  const auto findings = lint_fixture("rand_bad.cpp", "src/x/y.cpp");
  EXPECT_TRUE(fired(findings, "rand")) << describe(findings);
  EXPECT_GE(findings.size(), 2u) << describe(findings);  // rand + srand
}

TEST(LintR1, MemberNamedRandPasses) {
  const auto findings = lint_fixture("rand_good.cpp", "src/x/y.cpp");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(LintR1, UnorderedIterationFires) {
  const auto findings = lint_fixture("unordered_bad.cpp", "src/x/y.cpp");
  EXPECT_TRUE(fired(findings, "unordered-iteration")) << describe(findings);
}

TEST(LintR1, UnorderedLookupAndOrderedIterationPass) {
  const auto findings = lint_fixture("unordered_good.cpp", "src/x/y.cpp");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(LintR1, WallClockInKernelFires) {
  const auto findings =
      lint_fixture("wallclock_bad.cpp", "src/tensor/y.cpp");
  EXPECT_TRUE(fired(findings, "wall-clock")) << describe(findings);
}

TEST(LintR1, WallClockOutsideKernelPasses) {
  const auto findings = lint_fixture("wallclock_bad.cpp", "src/obs/y.cpp");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(LintR1, SteadyClockInKernelPasses) {
  const auto findings =
      lint_fixture("wallclock_good.cpp", "src/tensor/y.cpp");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

// -- R2: precondition coverage ----------------------------------------------

TEST(LintR2, MissingPreconditionFires) {
  const auto findings = sgnn::lint::check_preconditions(
      fixture_dir() + "/r2_bad", "include/sgnn/tensor/ops.hpp");
  ASSERT_TRUE(fired(findings, "precondition")) << describe(findings);
  // relu's unchecked definition and missing_everywhere's absent definition
  // are both reported; add's checked definition is not.
  const auto text = describe(findings);
  EXPECT_NE(text.find("relu"), std::string::npos) << text;
  EXPECT_NE(text.find("missing_everywhere"), std::string::npos) << text;
  EXPECT_EQ(text.find("add"), std::string::npos) << text;
}

TEST(LintR2, CheckedDefinitionsPass) {
  const auto findings = sgnn::lint::check_preconditions(
      fixture_dir() + "/r2_good", "include/sgnn/tensor/ops.hpp");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(LintR2, RealHeadersAreConfigured) {
  const auto& headers = sgnn::lint::precondition_headers();
  EXPECT_NE(std::find(headers.begin(), headers.end(),
                      "include/sgnn/tensor/ops.hpp"),
            headers.end());
  EXPECT_NE(std::find(headers.begin(), headers.end(),
                      "include/sgnn/scaling/powerlaw.hpp"),
            headers.end());
}

// -- R3: reinterpret_cast ---------------------------------------------------

TEST(LintR3, ReinterpretCastFires) {
  const auto findings = lint_fixture("aliasing_bad.cpp", "src/x/y.cpp");
  EXPECT_TRUE(fired(findings, "aliasing")) << describe(findings);
}

TEST(LintR3, MemcpyAndTaggedCastPass) {
  const auto findings = lint_fixture("aliasing_good.cpp", "src/x/y.cpp");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

// -- R6: raw SIMD intrinsics ------------------------------------------------

TEST(LintR6, RawIntrinsicsOutsideWrapperFire) {
  const auto findings = lint_fixture("intrinsics_bad.cpp", "src/x/y.cpp");
  EXPECT_TRUE(fired(findings, "intrinsics")) << describe(findings);
  // The include, the __m256d/__m128d types and the _mm* calls all report.
  EXPECT_GE(findings.size(), 4u) << describe(findings);
}

TEST(LintR6, WrapperHeaderIsExempt) {
  const auto findings = lint_fixture("intrinsics_bad.cpp",
                                     "src/tensor/kernels/simd_wrapper.hpp");
  EXPECT_FALSE(fired(findings, "intrinsics")) << describe(findings);
}

TEST(LintR6, WrapperApiUsagePasses) {
  const auto findings = lint_fixture("intrinsics_good.cpp", "src/x/y.cpp");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

// -- R4: include hygiene ----------------------------------------------------

TEST(LintR4, MissingPragmaOnceFires) {
  const auto findings =
      lint_fixture("pragma_bad.hpp", "include/sgnn/x/y.hpp");
  EXPECT_TRUE(fired(findings, "pragma-once")) << describe(findings);
}

TEST(LintR4, PragmaOncePasses) {
  const auto findings =
      lint_fixture("pragma_good.hpp", "include/sgnn/x/y.hpp");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(LintR4, BadIncludePathsFire) {
  const auto findings =
      lint_fixture("include_bad.hpp", "include/sgnn/x/y.hpp");
  EXPECT_TRUE(fired(findings, "include-path")) << describe(findings);
  EXPECT_GE(findings.size(), 2u) << describe(findings);  // src/ and ../
}

TEST(LintR4, ProjectIncludePathsPass) {
  const auto findings =
      lint_fixture("include_good.hpp", "include/sgnn/x/y.hpp");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

// -- R5: TraceSpan discipline -----------------------------------------------

TEST(LintR5, DiscardedTraceSpanTemporaryFires) {
  // src/nn/, not src/train/: keeps the trainer balance rule out of the way.
  const auto findings = lint_fixture("trace_bad.cpp", "src/nn/y.cpp");
  EXPECT_TRUE(fired(findings, "trace-span")) << describe(findings);
}

TEST(LintR5, NamedTraceSpanPasses) {
  const auto findings = lint_fixture("trace_good.cpp", "src/nn/y.cpp");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(LintR5, UnbalancedPhaseInstrumentationFires) {
  const auto findings =
      lint_fixture("trace_balance_bad.cpp", "src/train/y.cpp");
  EXPECT_TRUE(fired(findings, "trace-balance")) << describe(findings);
}

TEST(LintR5, BalancedPhaseInstrumentationPasses) {
  const auto findings =
      lint_fixture("trace_balance_good.cpp", "src/train/y.cpp");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(LintR5, BalanceRuleOnlyAppliesToTrainers) {
  const auto findings =
      lint_fixture("trace_balance_bad.cpp", "src/obs/y.cpp");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

// -- suppression hygiene and comment/string immunity ------------------------

TEST(LintSuppression, ReasonlessTagIsItsOwnFinding) {
  const auto findings =
      lint_fixture("suppression_bad.cpp", "src/x/y.cpp");
  EXPECT_TRUE(fired(findings, "suppression")) << describe(findings);
  // The tag still silences the new-delete finding it covers.
  EXPECT_FALSE(fired(findings, "new-delete")) << describe(findings);
}

TEST(LintStripper, CommentsAndStringsAreInvisible) {
  const auto findings =
      lint_fixture("comments_good.cpp", "src/tensor/y.cpp");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(LintStripper, LineNumbersSurviveStripping) {
  const auto file = parse_source("src/x/y.cpp", read_fixture("rand_bad.cpp"));
  const auto findings = lint_file(file);
  ASSERT_FALSE(findings.empty());
  // std::rand() sits on line 3 of the fixture.
  EXPECT_EQ(findings.front().line, 3) << describe(findings);
}

// -- whole-tree walk --------------------------------------------------------

TEST(LintTree, WalksFixtureTreeAndSortsFindings) {
  const auto findings =
      sgnn::lint::lint_tree(fixture_dir() + "/r2_bad");
  ASSERT_TRUE(fired(findings, "precondition")) << describe(findings);
  EXPECT_TRUE(std::is_sorted(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return std::tie(a.file, a.line, a.rule) <
                                      std::tie(b.file, b.line, b.rule);
                             }))
      << describe(findings);
}

TEST(LintTree, RealTreeIsClean) {
  const auto findings = sgnn::lint::lint_tree(SGNN_LINT_SOURCE_ROOT);
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

}  // namespace
