// Tests for tools/sgnn_lint: every rule must fire on its bad fixture,
// stay quiet on its good fixture, and honor the suppression syntax.

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "lint.hpp"

namespace {

using sgnn::lint::Finding;
using sgnn::lint::lint_check_throw;
using sgnn::lint::lint_file;
using sgnn::lint::lint_kernel_prof;
using sgnn::lint::lint_layering;
using sgnn::lint::lint_spmd;
using sgnn::lint::parse_source;

std::string fixture_dir() { return SGNN_LINT_FIXTURE_DIR; }

std::string read_fixture(const std::string& name) {
  std::ifstream in(fixture_dir() + "/" + name, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << name;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Lints a fixture file under a pretend tree path (rules are path-scoped).
std::vector<Finding> lint_fixture(const std::string& name,
                                  const std::string& pretend_path) {
  return lint_file(parse_source(pretend_path, read_fixture(name)));
}

std::set<std::string> rules_fired(const std::vector<Finding>& findings) {
  std::set<std::string> rules;
  for (const auto& f : findings) rules.insert(f.rule);
  return rules;
}

bool fired(const std::vector<Finding>& findings, const std::string& rule) {
  return rules_fired(findings).count(rule) > 0;
}

std::string describe(const std::vector<Finding>& findings) {
  std::ostringstream os;
  for (const auto& f : findings) {
    os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
       << "\n";
  }
  return os.str();
}

// -- R1: banned constructs --------------------------------------------------

TEST(LintR1, NakedNewDeleteFires) {
  const auto findings = lint_fixture("new_delete_bad.cpp", "src/x/y.cpp");
  EXPECT_TRUE(fired(findings, "new-delete")) << describe(findings);
  // Both the `new` and the `delete` are reported.
  EXPECT_GE(findings.size(), 2u) << describe(findings);
}

TEST(LintR1, SmartPointersAndSuppressionPass) {
  const auto findings = lint_fixture("new_delete_good.cpp", "src/x/y.cpp");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(LintR1, ThreadOutsideCommFires) {
  const auto findings = lint_fixture("thread_bad.cpp", "src/train/y.cpp");
  EXPECT_TRUE(fired(findings, "thread")) << describe(findings);
}

TEST(LintR1, ThreadInsideCommPasses) {
  const auto findings = lint_fixture("thread_bad.cpp", "src/comm/y.cpp");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(LintR1, ThreadInThreadPoolPasses) {
  const auto findings =
      lint_fixture("thread_bad.cpp", "src/util/thread_pool.cpp");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(LintR1, ThreadInTestsPasses) {
  const auto findings = lint_fixture("thread_bad.cpp", "tests/y_test.cpp");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(LintR1, RandFires) {
  const auto findings = lint_fixture("rand_bad.cpp", "src/x/y.cpp");
  EXPECT_TRUE(fired(findings, "rand")) << describe(findings);
  EXPECT_GE(findings.size(), 2u) << describe(findings);  // rand + srand
}

TEST(LintR1, MemberNamedRandPasses) {
  const auto findings = lint_fixture("rand_good.cpp", "src/x/y.cpp");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(LintR1, UnorderedIterationFires) {
  const auto findings = lint_fixture("unordered_bad.cpp", "src/x/y.cpp");
  EXPECT_TRUE(fired(findings, "unordered-iteration")) << describe(findings);
}

TEST(LintR1, UnorderedLookupAndOrderedIterationPass) {
  const auto findings = lint_fixture("unordered_good.cpp", "src/x/y.cpp");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(LintR1, WallClockInKernelFires) {
  const auto findings =
      lint_fixture("wallclock_bad.cpp", "src/tensor/y.cpp");
  EXPECT_TRUE(fired(findings, "wall-clock")) << describe(findings);
}

TEST(LintR1, WallClockOutsideKernelPasses) {
  const auto findings = lint_fixture("wallclock_bad.cpp", "src/obs/y.cpp");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(LintR1, SteadyClockInKernelPasses) {
  const auto findings =
      lint_fixture("wallclock_good.cpp", "src/tensor/y.cpp");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

// -- R2: precondition coverage ----------------------------------------------

TEST(LintR2, MissingPreconditionFires) {
  const auto findings = sgnn::lint::check_preconditions(
      fixture_dir() + "/r2_bad", "include/sgnn/tensor/ops.hpp");
  ASSERT_TRUE(fired(findings, "precondition")) << describe(findings);
  // relu's unchecked definition and missing_everywhere's absent definition
  // are both reported; add's checked definition is not.
  const auto text = describe(findings);
  EXPECT_NE(text.find("relu"), std::string::npos) << text;
  EXPECT_NE(text.find("missing_everywhere"), std::string::npos) << text;
  EXPECT_EQ(text.find("add"), std::string::npos) << text;
}

TEST(LintR2, CheckedDefinitionsPass) {
  const auto findings = sgnn::lint::check_preconditions(
      fixture_dir() + "/r2_good", "include/sgnn/tensor/ops.hpp");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(LintR2, RealHeadersAreConfigured) {
  const auto& headers = sgnn::lint::precondition_headers();
  EXPECT_NE(std::find(headers.begin(), headers.end(),
                      "include/sgnn/tensor/ops.hpp"),
            headers.end());
  EXPECT_NE(std::find(headers.begin(), headers.end(),
                      "include/sgnn/scaling/powerlaw.hpp"),
            headers.end());
}

// -- R3: reinterpret_cast ---------------------------------------------------

TEST(LintR3, ReinterpretCastFires) {
  const auto findings = lint_fixture("aliasing_bad.cpp", "src/x/y.cpp");
  EXPECT_TRUE(fired(findings, "aliasing")) << describe(findings);
}

TEST(LintR3, MemcpyAndTaggedCastPass) {
  const auto findings = lint_fixture("aliasing_good.cpp", "src/x/y.cpp");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

// -- R6: raw SIMD intrinsics ------------------------------------------------

TEST(LintR6, RawIntrinsicsOutsideWrapperFire) {
  const auto findings = lint_fixture("intrinsics_bad.cpp", "src/x/y.cpp");
  EXPECT_TRUE(fired(findings, "intrinsics")) << describe(findings);
  // The include, the __m256d/__m128d types and the _mm* calls all report.
  EXPECT_GE(findings.size(), 4u) << describe(findings);
}

TEST(LintR6, WrapperHeaderIsExempt) {
  const auto findings = lint_fixture("intrinsics_bad.cpp",
                                     "src/tensor/kernels/simd_wrapper.hpp");
  EXPECT_FALSE(fired(findings, "intrinsics")) << describe(findings);
}

TEST(LintR6, WrapperApiUsagePasses) {
  const auto findings = lint_fixture("intrinsics_good.cpp", "src/x/y.cpp");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

// -- R4: include hygiene ----------------------------------------------------

TEST(LintR4, MissingPragmaOnceFires) {
  const auto findings =
      lint_fixture("pragma_bad.hpp", "include/sgnn/x/y.hpp");
  EXPECT_TRUE(fired(findings, "pragma-once")) << describe(findings);
}

TEST(LintR4, PragmaOncePasses) {
  const auto findings =
      lint_fixture("pragma_good.hpp", "include/sgnn/x/y.hpp");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(LintR4, BadIncludePathsFire) {
  const auto findings =
      lint_fixture("include_bad.hpp", "include/sgnn/x/y.hpp");
  EXPECT_TRUE(fired(findings, "include-path")) << describe(findings);
  EXPECT_GE(findings.size(), 2u) << describe(findings);  // src/ and ../
}

TEST(LintR4, ProjectIncludePathsPass) {
  const auto findings =
      lint_fixture("include_good.hpp", "include/sgnn/x/y.hpp");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

// -- R5: TraceSpan discipline -----------------------------------------------

TEST(LintR5, DiscardedTraceSpanTemporaryFires) {
  // src/nn/, not src/train/: keeps the trainer balance rule out of the way.
  const auto findings = lint_fixture("trace_bad.cpp", "src/nn/y.cpp");
  EXPECT_TRUE(fired(findings, "trace-span")) << describe(findings);
}

TEST(LintR5, NamedTraceSpanPasses) {
  const auto findings = lint_fixture("trace_good.cpp", "src/nn/y.cpp");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(LintR5, UnbalancedPhaseInstrumentationFires) {
  const auto findings =
      lint_fixture("trace_balance_bad.cpp", "src/train/y.cpp");
  EXPECT_TRUE(fired(findings, "trace-balance")) << describe(findings);
}

TEST(LintR5, BalancedPhaseInstrumentationPasses) {
  const auto findings =
      lint_fixture("trace_balance_good.cpp", "src/train/y.cpp");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(LintR5, BalanceRuleOnlyAppliesToTrainers) {
  const auto findings =
      lint_fixture("trace_balance_bad.cpp", "src/obs/y.cpp");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

// -- suppression hygiene and comment/string immunity ------------------------

TEST(LintSuppression, ReasonlessTagIsItsOwnFinding) {
  const auto findings =
      lint_fixture("suppression_bad.cpp", "src/x/y.cpp");
  EXPECT_TRUE(fired(findings, "suppression")) << describe(findings);
  // The tag still silences the new-delete finding it covers.
  EXPECT_FALSE(fired(findings, "new-delete")) << describe(findings);
}

TEST(LintStripper, CommentsAndStringsAreInvisible) {
  const auto findings =
      lint_fixture("comments_good.cpp", "src/tensor/y.cpp");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(LintStripper, LineNumbersSurviveStripping) {
  const auto file = parse_source("src/x/y.cpp", read_fixture("rand_bad.cpp"));
  const auto findings = lint_file(file);
  ASSERT_FALSE(findings.empty());
  // std::rand() sits on line 3 of the fixture.
  EXPECT_EQ(findings.front().line, 3) << describe(findings);
}

// -- whole-tree walk --------------------------------------------------------

TEST(LintTree, WalksFixtureTreeAndSortsFindings) {
  const auto findings =
      sgnn::lint::lint_tree(fixture_dir() + "/r2_bad");
  ASSERT_TRUE(fired(findings, "precondition")) << describe(findings);
  EXPECT_TRUE(std::is_sorted(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return std::tie(a.file, a.line, a.rule) <
                                      std::tie(b.file, b.line, b.rule);
                             }))
      << describe(findings);
}

TEST(LintTree, RealTreeIsClean) {
  const auto findings = sgnn::lint::lint_tree(SGNN_LINT_SOURCE_ROOT);
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

// -- lexer hardening --------------------------------------------------------

TEST(LintStripper, DigitSeparatorsAndRawStringsPass) {
  // 1'000'000 / 0xFF'FF / 0b1010'0101 must not open char literals, and
  // raw-string contents (rand(), barrier(), rank conditions, new[]) must be
  // invisible to every rule.
  const auto findings = lint_fixture("lexer_good.cpp", "src/x/y.cpp");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(LintStripper, CodeViewSurvivesSeparatorsAndRawStrings) {
  // After a digit-separated literal and a multi-line raw string, the code
  // view must still be aligned: std::rand() sits on line 7.
  const auto findings = lint_fixture("lexer_bad.cpp", "src/x/y.cpp");
  ASSERT_TRUE(fired(findings, "rand")) << describe(findings);
  EXPECT_EQ(findings.front().line, 7) << describe(findings);
}

// -- R7-R10: semantic rules over the cross-TU index -------------------------

sgnn::lint::ProjectIndex fixture_index(const std::string& tree) {
  return sgnn::lint::build_index(fixture_dir() + "/" + tree);
}

std::vector<Finding> in_file(const std::vector<Finding>& findings,
                             const std::string& file) {
  std::vector<Finding> out;
  for (const auto& f : findings) {
    if (f.file == file) out.push_back(f);
  }
  return out;
}

TEST(LintR7, UpwardIncludeFires) {
  const auto findings = lint_layering(fixture_index("r7_tree"));
  const auto up = in_file(findings, "src/tensor/upward.cpp");
  ASSERT_EQ(up.size(), 1u) << describe(findings);
  EXPECT_EQ(up.front().rule, "layering");
  EXPECT_EQ(up.front().line, 2);
  EXPECT_NE(up.front().message.find("upward"), std::string::npos)
      << up.front().message;
}

TEST(LintR7, SameLevelCycleFires) {
  const auto findings = lint_layering(fixture_index("r7_tree"));
  for (const auto* file : {"include/sgnn/graph/cycle_a.hpp",
                           "include/sgnn/obs/cycle_b.hpp"}) {
    const auto cyc = in_file(findings, file);
    ASSERT_EQ(cyc.size(), 1u) << file << "\n" << describe(findings);
    EXPECT_EQ(cyc.front().rule, "layering");
    EXPECT_NE(cyc.front().message.find("cycle"), std::string::npos)
        << cyc.front().message;
  }
}

TEST(LintR7, DownwardAndSuppressedPass) {
  const auto findings = lint_layering(fixture_index("r7_tree"));
  EXPECT_TRUE(in_file(findings, "src/graph/downward.cpp").empty())
      << describe(findings);
  EXPECT_TRUE(in_file(findings, "src/tensor/tagged.cpp").empty())
      << describe(findings);
}

TEST(LintR7, PrintDagRendersTheLayerTable) {
  // The docs embed --print-dag; every module of the single-source-of-truth
  // table must appear in the rendering.
  const std::string dag = sgnn::lint::print_dag();
  for (const auto& entry : sgnn::lint::layer_table()) {
    EXPECT_NE(dag.find(entry.module), std::string::npos) << entry.module;
  }
}

TEST(LintR8, RankConditionedCollectiveFires) {
  const auto findings = lint_spmd(fixture_index("r8_tree"));
  const auto div = in_file(findings, "src/comm/divergent.cpp");
  ASSERT_EQ(div.size(), 1u) << describe(findings);
  EXPECT_EQ(div.front().rule, "spmd-divergence");
}

TEST(LintR8, CollectiveUnderLockFires) {
  const auto findings = lint_spmd(fixture_index("r8_tree"));
  const auto locked = in_file(findings, "src/comm/locked.cpp");
  ASSERT_EQ(locked.size(), 1u) << describe(findings);
  EXPECT_EQ(locked.front().rule, "lock-across-wait");
}

TEST(LintR8, CrossFileDivergenceNeedsTheIndex) {
  // caller.cpp's rank branch calls sync_everyone(), whose barrier() lives
  // in helper.cpp: only the cross-TU call graph connects them.
  const auto findings = lint_spmd(fixture_index("r8_tree"));
  const auto cross = in_file(findings, "src/train/caller.cpp");
  ASSERT_EQ(cross.size(), 1u) << describe(findings);
  EXPECT_EQ(cross.front().rule, "spmd-divergence");
  // Per-file linting of the same file sees nothing.
  const auto alone = lint_fixture("r8_tree/src/train/caller.cpp",
                                  "src/train/caller.cpp");
  EXPECT_TRUE(alone.empty()) << describe(alone);
}

TEST(LintR8, SuppressedAndCleanPatternsPass) {
  const auto findings = lint_spmd(fixture_index("r8_tree"));
  EXPECT_TRUE(in_file(findings, "src/comm/suppressed.cpp").empty())
      << describe(findings);
  // good.cpp: rank branch without a collective, lock released before the
  // barrier, and a lambda boundary under a live lock.
  EXPECT_TRUE(in_file(findings, "src/comm/good.cpp").empty())
      << describe(findings);
  EXPECT_TRUE(in_file(findings, "src/train/helper.cpp").empty())
      << describe(findings);
}

TEST(LintR9, MissingKernelScopeFires) {
  const auto findings = lint_kernel_prof(fixture_index("r9_tree"));
  const auto missing = in_file(findings, "src/tensor/missing.cpp");
  ASSERT_EQ(missing.size(), 1u) << describe(findings);
  EXPECT_EQ(missing.front().rule, "kernel-prof");
}

TEST(LintR9, DelegatedScopePasses) {
  const auto findings = lint_kernel_prof(fixture_index("r9_tree"));
  EXPECT_TRUE(in_file(findings, "src/tensor/delegated.cpp").empty())
      << describe(findings);
}

TEST(LintR9, EarlyReturnBeforeScopeFires) {
  const auto findings = lint_kernel_prof(fixture_index("r9_tree"));
  const auto early = in_file(findings, "src/tensor/early.cpp");
  ASSERT_EQ(early.size(), 1u) << describe(findings);
  EXPECT_EQ(early.front().rule, "kernel-prof");
  EXPECT_NE(early.front().message.find("return"), std::string::npos)
      << early.front().message;
}

TEST(LintR9, SuppressedKernelPasses) {
  const auto findings = lint_kernel_prof(fixture_index("r9_tree"));
  EXPECT_TRUE(in_file(findings, "src/tensor/tagged.cpp").empty())
      << describe(findings);
}

TEST(LintR10, ReachableBareThrowFires) {
  // The throw sits in src/util/, but a src/comm/ root reaches it through
  // the call graph — another index-only finding.
  const auto findings = lint_check_throw(fixture_index("r10_tree"));
  const auto bare = in_file(findings, "src/util/payload.cpp");
  ASSERT_EQ(bare.size(), 1u) << describe(findings);
  EXPECT_EQ(bare.front().rule, "check-throw");
}

TEST(LintR10, UnreachableTypedAndSuppressedPass) {
  const auto findings = lint_check_throw(fixture_index("r10_tree"));
  EXPECT_TRUE(in_file(findings, "src/data/loader.cpp").empty())
      << describe(findings);
  EXPECT_TRUE(in_file(findings, "src/comm/checked.cpp").empty())
      << describe(findings);
  EXPECT_TRUE(in_file(findings, "src/comm/tagged.cpp").empty())
      << describe(findings);
}

// -- emitters and stats -----------------------------------------------------

TEST(LintEmit, FormatTextRendersOneLinePerFinding) {
  const std::vector<Finding> findings = {
      {"src/a.cpp", 3, "layering", "first"},
      {"src/b.cpp", 7, "kernel-prof", "second"},
  };
  EXPECT_EQ(sgnn::lint::format_text(findings),
            "src/a.cpp:3: [layering] first\n"
            "src/b.cpp:7: [kernel-prof] second\n");
}

TEST(LintEmit, FormatJsonEscapesAndCarriesStats) {
  sgnn::lint::LintResult result;
  result.findings = {{"src/a.cpp", 3, "layering", "say \"hi\"\nback\\slash"}};
  result.stats.files = 2;
  result.stats.bytes = 99;
  result.stats.functions = 4;
  result.stats.include_edges = 5;
  result.stats.total_seconds = 0.5;
  const std::string json = sgnn::lint::format_json(result, "/tmp/tree");
  EXPECT_NE(json.find("\"schema\": \"sgnn.lint_report.v1\""),
            std::string::npos) << json;
  EXPECT_NE(json.find("\"finding_count\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("say \\\"hi\\\"\\nback\\\\slash"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"total_ms\": 500"), std::string::npos) << json;
  // Integer milliseconds only: a locale-dependent decimal point must never
  // reach the report.
  EXPECT_EQ(json.find("0.5"), std::string::npos) << json;
}

TEST(LintEmit, FormatGithubEscapesAnnotations) {
  const std::vector<Finding> findings = {
      {"src/a,b.cpp", 3, "spmd-divergence", "50% done\nsecond line"},
  };
  const std::string gh = sgnn::lint::format_github(findings);
  EXPECT_NE(gh.find("::error file=src/a%2Cb.cpp,line=3"), std::string::npos)
      << gh;
  EXPECT_NE(gh.find("50%25 done%0Asecond line"), std::string::npos) << gh;
  EXPECT_NE(gh.find("sgnn-lint spmd-divergence"), std::string::npos) << gh;
}

TEST(LintStats, TreeRunCountsAndTimes) {
  const auto result =
      sgnn::lint::lint_tree_stats(fixture_dir() + "/r9_tree");
  EXPECT_GT(result.stats.files, 0);
  EXPECT_GT(result.stats.bytes, 0u);
  EXPECT_GT(result.stats.functions, 0);
  EXPECT_GT(result.stats.include_edges, 0);
  EXPECT_GE(result.stats.total_seconds, 0.0);
  EXPECT_GE(result.stats.total_seconds,
            result.stats.index_seconds + result.stats.rule_seconds - 1e-9);
}

}  // namespace
