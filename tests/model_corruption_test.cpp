// Corruption matrix over the two binary containers (SGMD model files and
// SGCK training snapshots): every mutation — truncation at any length,
// oversized payload_size, flipped CRC, wrong magic/version, random bit
// flips — must surface as a thrown sgnn::Error, never a crash, hang, or
// huge allocation.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "sgnn/ckpt/checkpoint.hpp"
#include "sgnn/nn/model_io.hpp"
#include "sgnn/util/rng.hpp"

namespace sgnn {
namespace {

// Shared container framing (SGMD and SGCK use the same layout).
constexpr std::size_t kHeaderBytes = 16;   // magic + u32 version + u64 size
constexpr std::size_t kPayloadSizeOffset = 8;
constexpr std::size_t kTrailerBytes = 8;   // u32 crc + magic

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_((std::filesystem::temp_directory_path() / name).string()) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void spew(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Pristine bytes of a tiny saved model, computed once.
const std::string& model_bytes() {
  static const std::string bytes = [] {
    ModelConfig config;
    config.hidden_dim = 4;
    config.num_layers = 1;
    const EGNNModel model(config);
    TempFile file("sgnn_corruption_model.sgmd");
    save_model(model, file.path());
    return slurp(file.path());
  }();
  return bytes;
}

/// Pristine bytes of a small snapshot container, computed once.
const std::string& snapshot_bytes() {
  static const std::string bytes = [] {
    ckpt::SnapshotBuilder builder;
    builder.add_bytes("meta.kind", "trainer");
    builder.add_i64("meta.step", 42);
    const std::vector<real> moments = {0.25, -1.5, 3.0};
    builder.add_reals("optim.m", moments.data(), moments.size());
    builder.add_u64s("loader.order", {5, 1, 3});
    TempFile file("sgnn_corruption_snap.sgck");
    ckpt::write_snapshot_file(file.path(), builder.payload());
    return slurp(file.path());
  }();
  return bytes;
}

void expect_model_load_throws(const std::string& bytes) {
  TempFile file("sgnn_corruption_case.sgmd");
  spew(file.path(), bytes);
  EXPECT_THROW(load_model(file.path()), Error);
  EXPECT_THROW(peek_model_config(file.path()), Error);
}

void expect_snapshot_load_throws(const std::string& bytes) {
  TempFile file("sgnn_corruption_case.sgck");
  spew(file.path(), bytes);
  EXPECT_THROW(ckpt::read_snapshot_file(file.path()), Error);
}

// -- truncation -------------------------------------------------------------

TEST(CorruptionMatrixTest, ModelFileTruncatedAtAnyLengthThrows) {
  const std::string& pristine = model_bytes();
  ASSERT_GT(pristine.size(), kHeaderBytes + kTrailerBytes);
  // Every length through the header and trailer regions, plus a stride
  // through the payload (a payload truncation always lands on the same
  // bounded-read code path, so sampling it is sufficient).
  std::vector<std::size_t> lengths;
  for (std::size_t n = 0; n <= kHeaderBytes + 16; ++n) lengths.push_back(n);
  const std::size_t stride = std::max<std::size_t>(1, pristine.size() / 64);
  for (std::size_t n = kHeaderBytes + 16; n < pristine.size(); n += stride) {
    lengths.push_back(n);
  }
  for (std::size_t n = pristine.size() - kTrailerBytes; n < pristine.size();
       ++n) {
    lengths.push_back(n);
  }
  for (const std::size_t n : lengths) {
    SCOPED_TRACE("truncated to " + std::to_string(n) + " bytes");
    expect_model_load_throws(pristine.substr(0, n));
  }
}

TEST(CorruptionMatrixTest, SnapshotTruncatedAtEveryLengthThrows) {
  const std::string& pristine = snapshot_bytes();
  ASSERT_GT(pristine.size(), kHeaderBytes + kTrailerBytes);
  for (std::size_t n = 0; n < pristine.size(); ++n) {
    SCOPED_TRACE("truncated to " + std::to_string(n) + " bytes");
    expect_snapshot_load_throws(pristine.substr(0, n));
  }
}

// -- header lies ------------------------------------------------------------

std::string with_payload_size(const std::string& pristine,
                              std::uint64_t payload_size) {
  std::string bytes = pristine;
  std::memcpy(bytes.data() + kPayloadSizeOffset, &payload_size,
              sizeof(payload_size));
  return bytes;
}

TEST(CorruptionMatrixTest, OversizedPayloadSizeThrowsInsteadOfAllocating) {
  // A payload_size far past the file must be rejected by the bound on the
  // remaining file size, not attempted as a (huge) allocation.
  for (const std::uint64_t lie :
       {std::uint64_t{1} << 60, std::uint64_t{0} - 1,
        std::uint64_t{1} << 32}) {
    SCOPED_TRACE("payload_size " + std::to_string(lie));
    expect_model_load_throws(with_payload_size(model_bytes(), lie));
    expect_snapshot_load_throws(with_payload_size(snapshot_bytes(), lie));
  }
  // Undersized lies shift the CRC read off its true position → CRC/trailer
  // mismatch.
  expect_model_load_throws(with_payload_size(model_bytes(), 0));
  expect_snapshot_load_throws(with_payload_size(snapshot_bytes(), 0));
}

TEST(CorruptionMatrixTest, FlippedCrcByteThrows) {
  for (const std::string* pristine : {&model_bytes(), &snapshot_bytes()}) {
    std::string bytes = *pristine;
    const std::size_t crc_pos = bytes.size() - kTrailerBytes;
    bytes[crc_pos] = static_cast<char>(bytes[crc_pos] ^ 0x01);
    if (pristine == &model_bytes()) {
      expect_model_load_throws(bytes);
    } else {
      expect_snapshot_load_throws(bytes);
    }
  }
}

TEST(CorruptionMatrixTest, WrongMagicThrows) {
  std::string model = model_bytes();
  model[0] = 'X';
  expect_model_load_throws(model);

  std::string snap = snapshot_bytes();
  snap[snap.size() - 1] = 'X';  // trailing magic
  expect_snapshot_load_throws(snap);
}

TEST(CorruptionMatrixTest, WrongVersionThrows) {
  for (const std::string* pristine : {&model_bytes(), &snapshot_bytes()}) {
    std::string bytes = *pristine;
    const std::uint32_t version = 0xFFu;
    std::memcpy(bytes.data() + 4, &version, sizeof(version));
    if (pristine == &model_bytes()) {
      expect_model_load_throws(bytes);
    } else {
      expect_snapshot_load_throws(bytes);
    }
  }
}

// -- snapshot payload structure ---------------------------------------------

std::string u64_bytes(std::uint64_t value) {
  std::string bytes(sizeof(value), '\0');
  std::memcpy(bytes.data(), &value, sizeof(value));
  return bytes;
}

TEST(CorruptionMatrixTest, MalformedSnapshotPayloadThrows) {
  // These corrupt the *payload* (pre-CRC), exercising SnapshotView's own
  // bounds checks — the layer that protects embedded payloads (e.g. the
  // model section inside a snapshot) that skip the file container.
  // Section count far beyond what the payload could hold.
  EXPECT_THROW(ckpt::SnapshotView(u64_bytes(std::uint64_t{1} << 58)), Error);
  // name_size overrunning the payload.
  std::string bad_name = u64_bytes(1);
  bad_name.append(u64_bytes(std::uint64_t{1} << 40));
  EXPECT_THROW(ckpt::SnapshotView{bad_name}, Error);
  // data_size overrunning the payload.
  std::string bad_data = u64_bytes(1);
  bad_data.append(u64_bytes(1));
  bad_data.append("a");
  bad_data.append(u64_bytes(std::uint64_t{1} << 40));
  EXPECT_THROW(ckpt::SnapshotView{bad_data}, Error);
  // Trailing garbage after the declared sections.
  ckpt::SnapshotBuilder builder;
  builder.add_u64("x", 7);
  std::string padded = builder.payload();
  padded.append("junk");
  EXPECT_THROW(ckpt::SnapshotView{padded}, Error);
  // Truncated payload handed straight to the view.
  const std::string payload = builder.payload();
  for (std::size_t n = 0; n < payload.size(); ++n) {
    SCOPED_TRACE("payload truncated to " + std::to_string(n));
    EXPECT_THROW(ckpt::SnapshotView(payload.substr(0, n)), Error);
  }
}

// -- randomized sweep -------------------------------------------------------

TEST(CorruptionMatrixTest, RandomBitFlipsAlwaysThrowCleanly) {
  Rng rng(2026);
  for (int round = 0; round < 128; ++round) {
    const bool on_model = (round % 2) == 0;
    const std::string& pristine = on_model ? model_bytes() : snapshot_bytes();
    std::string bytes = pristine;
    const std::size_t byte_index =
        static_cast<std::size_t>(rng.uniform_index(bytes.size()));
    const int bit = static_cast<int>(rng.uniform_index(8));
    bytes[byte_index] =
        static_cast<char>(bytes[byte_index] ^ (1 << bit));
    SCOPED_TRACE((on_model ? "model byte " : "snapshot byte ") +
                 std::to_string(byte_index) + " bit " + std::to_string(bit));
    if (on_model) {
      expect_model_load_throws(bytes);
    } else {
      expect_snapshot_load_throws(bytes);
    }
  }
}

}  // namespace
}  // namespace sgnn
