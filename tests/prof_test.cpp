// Tests for sgnn::obs::prof — the kernel-level profiler.
//
// The FLOP/byte expectations are hand-computed from the kernel cost model
// documented in docs/observability.md (W = sizeof(real) = 8 bytes). They
// are shape arithmetic only — no timing — so they hold bit-identically at
// any SGNN_NUM_THREADS (kernel hooks open on the calling thread, never on
// pool workers); CMake registers this binary a second time (prof_test_mt)
// with a 4-lane pool to pin that invariant.

#include "sgnn/obs/prof.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sgnn/tensor/ops.hpp"

namespace sgnn {
namespace {

namespace prof = obs::prof;

constexpr std::int64_t kW = static_cast<std::int64_t>(sizeof(real));

class ProfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prof::reset();
    prof::enable();
  }
  void TearDown() override {
    prof::disable();
    prof::reset();
  }
};

std::optional<prof::KernelRow> find_kernel(const prof::Report& report,
                                           const std::string& name) {
  for (const auto& row : report.kernels) {
    if (row.name == name) return row;
  }
  return std::nullopt;
}

// -- hand-computed kernel costs ---------------------------------------------

TEST_F(ProfTest, MatmulForwardCost) {
  prof::disable();  // exclude construction
  const Tensor a = Tensor::full(Shape{3, 4}, 1.0);
  const Tensor b = Tensor::full(Shape{4, 5}, 2.0);
  prof::enable();
  const Tensor c = matmul(a, b);
  const prof::Totals totals = prof::totals();
  // flops = 2*m*k*n, bytes = W*(m*k + k*n + m*n).
  EXPECT_EQ(totals.kernel_calls, 1);
  EXPECT_EQ(totals.flops, 2 * 3 * 4 * 5);
  EXPECT_EQ(totals.bytes, kW * (3 * 4 + 4 * 5 + 3 * 5));
  EXPECT_DOUBLE_EQ(c.to_vector()[0], 8.0);  // k=4 terms of 1.0 * 2.0
}

TEST_F(ProfTest, MatmulBackwardCost) {
  Tensor a = Tensor::full(Shape{3, 4}, 1.0);
  Tensor b = Tensor::full(Shape{4, 5}, 2.0);
  a.set_requires_grad(true);
  b.set_requires_grad(true);
  sum(matmul(a, b)).backward();
  const prof::Report report = prof::report(/*with_calibration=*/false);
  const auto fwd = find_kernel(report, "matmul");
  ASSERT_TRUE(fwd.has_value());
  EXPECT_EQ(fwd->calls, 1);
  EXPECT_EQ(fwd->flops, 2 * 3 * 4 * 5);
  // matmul.bwd computes dA and dB: 2x the forward flops each way.
  const auto bwd = find_kernel(report, "matmul.bwd");
  ASSERT_TRUE(bwd.has_value());
  EXPECT_EQ(bwd->calls, 1);
  EXPECT_EQ(bwd->flops, 4 * 3 * 4 * 5);
  EXPECT_EQ(bwd->bytes, 2 * kW * (3 * 4 + 4 * 5 + 3 * 5));
}

TEST_F(ProfTest, UnaryCost) {
  const Tensor x = Tensor::full(Shape{10}, -1.0);
  (void)relu(x);
  const prof::Report report = prof::report(/*with_calibration=*/false);
  const auto row = find_kernel(report, "relu");
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->flops, 10);       // one op per element
  EXPECT_EQ(row->bytes, 2 * kW * 10);  // read x, write out
}

TEST_F(ProfTest, UnaryBackwardCost) {
  Tensor x = Tensor::full(Shape{10}, 0.5);
  x.set_requires_grad(true);
  sum(relu(x)).backward();
  const prof::Report report = prof::report(/*with_calibration=*/false);
  const auto row = find_kernel(report, "relu.bwd");
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->flops, 2 * 10);       // dfdx and the product with grad
  EXPECT_EQ(row->bytes, 3 * kW * 10);  // read grad, read saved x, write dx
}

TEST_F(ProfTest, BinaryMulCosts) {
  Tensor a = Tensor::full(Shape{2, 3}, 2.0);
  Tensor b = Tensor::full(Shape{2, 3}, 3.0);
  a.set_requires_grad(true);
  b.set_requires_grad(true);
  sum(a * b).backward();
  const prof::Report report = prof::report(/*with_calibration=*/false);
  const auto fwd = find_kernel(report, "mul");
  ASSERT_TRUE(fwd.has_value());
  EXPECT_EQ(fwd->flops, 6);
  EXPECT_EQ(fwd->bytes, 3 * kW * 6);
  const auto bwd = find_kernel(report, "mul.bwd");
  ASSERT_TRUE(bwd.has_value());
  EXPECT_EQ(bwd->flops, 4 * 6);
  EXPECT_EQ(bwd->bytes, 5 * kW * 6);
  // Same shapes: the broadcast reducer must NOT have fired.
  EXPECT_FALSE(find_kernel(report, "reduce_to").has_value());
}

TEST_F(ProfTest, BroadcastBackwardFiresReduceTo) {
  Tensor a = Tensor::full(Shape{4, 3}, 2.0);
  Tensor b = Tensor::full(Shape{3}, 3.0);  // broadcast up the rows
  a.set_requires_grad(true);
  b.set_requires_grad(true);
  sum(a * b).backward();
  const prof::Report report = prof::report(/*with_calibration=*/false);
  const auto reduce = find_kernel(report, "reduce_to");
  ASSERT_TRUE(reduce.has_value());
  EXPECT_EQ(reduce->calls, 1);  // only b's gradient needs reducing
  EXPECT_EQ(reduce->flops, 12);  // one add per grad element
  EXPECT_EQ(reduce->bytes, kW * (12 + 3));
}

TEST_F(ProfTest, ReduceCosts) {
  const Tensor a = Tensor::full(Shape{10}, 1.0);
  (void)sum(a);
  const Tensor m = Tensor::full(Shape{2, 3}, 1.0);
  (void)sum(m, /*axis=*/0, /*keepdim=*/false);
  const prof::Report report = prof::report(/*with_calibration=*/false);
  const auto total = find_kernel(report, "sum");
  ASSERT_TRUE(total.has_value());
  EXPECT_EQ(total->flops, 10);
  EXPECT_EQ(total->bytes, kW * (10 + 1));
  const auto axis = find_kernel(report, "sum_axis");
  ASSERT_TRUE(axis.has_value());
  EXPECT_EQ(axis->flops, 6);
  EXPECT_EQ(axis->bytes, kW * (6 + 3));
}

// Thread-count bit-identity: the same expectations as above, at a size
// where the intra-op pool actually partitions the loops. Run under both
// prof_test and prof_test_mt (SGNN_NUM_THREADS=4).
TEST_F(ProfTest, CountsAreThreadCountInvariant) {
  constexpr std::int64_t n = 64;
  prof::disable();
  const Tensor a = Tensor::full(Shape{n, n}, 0.5);
  const Tensor b = Tensor::full(Shape{n, n}, 0.25);
  prof::enable();
  (void)matmul(a, b);
  (void)relu(a);
  (void)sum(a);
  const prof::Totals totals = prof::totals();
  EXPECT_EQ(totals.kernel_calls, 3);
  EXPECT_EQ(totals.flops, 2 * n * n * n + n * n + n * n);
  EXPECT_EQ(totals.bytes,
            kW * (3 * n * n) + 2 * kW * (n * n) + kW * (n * n + 1));
}

// -- call tree --------------------------------------------------------------

TEST_F(ProfTest, TreeNestsRegionsAndKernels) {
  {
    const prof::ProfRegion outer("outer");
    const Tensor a = Tensor::full(Shape{8, 8}, 1.0);
    {
      const prof::ProfRegion inner("inner");
      (void)matmul(a, a);
    }
  }
  const prof::Report report = prof::report(/*with_calibration=*/false);
  ASSERT_EQ(report.tree.size(), 3u);
  EXPECT_EQ(report.tree[0].path, "outer");
  EXPECT_EQ(report.tree[1].path, "outer;inner");
  EXPECT_EQ(report.tree[2].path, "outer;inner;matmul");
  EXPECT_EQ(report.tree[2].flops, 2 * 8 * 8 * 8);
}

TEST_F(ProfTest, InclusiveBoundsExclusive) {
  {
    const prof::ProfRegion outer("outer");
    const Tensor a = Tensor::full(Shape{32, 32}, 1.0);
    for (int i = 0; i < 4; ++i) (void)matmul(a, a);
  }
  const prof::Report report = prof::report(/*with_calibration=*/false);
  ASSERT_FALSE(report.tree.empty());
  double children_inclusive = 0;
  for (const auto& row : report.tree) {
    EXPECT_GE(row.inclusive_seconds, row.exclusive_seconds) << row.path;
    EXPECT_GE(row.exclusive_seconds, 0.0) << row.path;
    if (row.depth == 1) children_inclusive += row.inclusive_seconds;
  }
  const auto& top = report.tree.front();
  EXPECT_EQ(top.depth, 0);
  EXPECT_GE(top.inclusive_seconds, children_inclusive);
  // Exclusive times tile the profiled wall time exactly (by construction:
  // exclusive = inclusive - sum of children's inclusive).
  double exclusive_sum = 0;
  for (const auto& row : report.tree) exclusive_sum += row.exclusive_seconds;
  EXPECT_NEAR(exclusive_sum, report.total_seconds(),
              0.05 * report.total_seconds() + 1e-9);
}

// -- enable/disable/reset ---------------------------------------------------

TEST_F(ProfTest, DisabledRecordsNothing) {
  prof::disable();
  const Tensor a = Tensor::full(Shape{4, 4}, 1.0);
  (void)matmul(a, a);
  const prof::ProfRegion region("ghost");
  EXPECT_FALSE(region.active());
  const prof::Totals totals = prof::totals();
  EXPECT_EQ(totals.kernel_calls, 0);
  EXPECT_EQ(totals.flops, 0);
}

TEST_F(ProfTest, ResetZeroesCounts) {
  const Tensor a = Tensor::full(Shape{4, 4}, 1.0);
  (void)matmul(a, a);
  EXPECT_GT(prof::totals().flops, 0);
  prof::reset();
  const prof::Totals totals = prof::totals();
  EXPECT_EQ(totals.kernel_calls, 0);
  EXPECT_EQ(totals.flops, 0);
  EXPECT_EQ(totals.bytes, 0);
  EXPECT_DOUBLE_EQ(totals.kernel_seconds, 0.0);
}

// -- exports ----------------------------------------------------------------

TEST_F(ProfTest, CollapsedStackExport) {
  {
    const prof::ProfRegion step("step");
    // Large enough that the kernel takes >= 1 us on any backend; rows whose
    // exclusive time rounds to zero are dropped from the collapsed output.
    const Tensor a = Tensor::full(Shape{96, 96}, 1.0);
    (void)matmul(a, a);
  }
  const prof::Report report = prof::report(/*with_calibration=*/false);
  const std::string collapsed = report.to_collapsed();
  EXPECT_NE(collapsed.find("step;matmul "), std::string::npos) << collapsed;
  // Every line is "path<space>integer".
  std::size_t lines = 0;
  std::size_t pos = 0;
  while (pos < collapsed.size()) {
    const std::size_t eol = collapsed.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);
    const std::string line = collapsed.substr(pos, eol - pos);
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string weight = line.substr(space + 1);
    EXPECT_FALSE(weight.empty());
    EXPECT_TRUE(std::all_of(weight.begin(), weight.end(),
                            [](char c) { return c >= '0' && c <= '9'; }))
        << line;
    pos = eol + 1;
    ++lines;
  }
  EXPECT_EQ(lines, report.tree.size());
}

TEST_F(ProfTest, JsonAndTextExports) {
  {
    const prof::ProfRegion step("step");
    const Tensor a = Tensor::full(Shape{8, 8}, 1.0);
    (void)matmul(a, a);
  }
  const prof::Report report = prof::report(/*with_calibration=*/false);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"tree\""), std::string::npos);
  EXPECT_NE(json.find("\"kernels\""), std::string::npos);
  EXPECT_NE(json.find("\"matmul\""), std::string::npos);
  EXPECT_NE(json.find("\"roofline_fraction\""), std::string::npos);
  const std::string text = report.to_text(/*top_n=*/5);
  EXPECT_NE(text.find("matmul"), std::string::npos);
}

TEST_F(ProfTest, HotspotsSortedByExclusiveTime) {
  {
    const prof::ProfRegion step("step");
    const Tensor big = Tensor::full(Shape{48, 48}, 1.0);
    (void)matmul(big, big);
    (void)relu(big);
  }
  const prof::Report report = prof::report(/*with_calibration=*/false);
  const auto hot = report.hotspots(2);
  ASSERT_EQ(hot.size(), 2u);
  EXPECT_GE(hot[0].exclusive_seconds, hot[1].exclusive_seconds);
}

TEST_F(ProfTest, RooflineFractionIsSane) {
  const Tensor a = Tensor::full(Shape{64, 64}, 1.0);
  (void)matmul(a, a);
  const prof::Report report = prof::report(/*with_calibration=*/true);
  EXPECT_GT(report.machine.peak_gflops, 0.0);
  EXPECT_GT(report.machine.peak_gbps, 0.0);
  const auto row = find_kernel(report, "matmul");
  ASSERT_TRUE(row.has_value());
  EXPECT_GT(row->intensity, 0.0);
  EXPECT_GT(row->attainable_gflops, 0.0);
  EXPECT_GT(row->roofline_fraction, 0.0);
}

// -- disabled-path overhead -------------------------------------------------

// The ISSUE-level contract: a disabled hook costs one relaxed load and a
// branch — under 1% of any real kernel invocation. Pin it by comparing the
// per-hook cost (median of repeated batches) against one small matmul.
TEST(ProfOverheadTest, DisabledHookUnderOnePercentOfSmallKernel) {
  prof::disable();
  prof::reset();
  using clock = std::chrono::steady_clock;

  constexpr int kHooks = 1 << 18;
  std::vector<double> per_hook_ns;
  for (int rep = 0; rep < 5; ++rep) {
    const auto begin = clock::now();
    for (int i = 0; i < kHooks; ++i) {
      const prof::KernelScope scope("overhead_probe", 1, 1);
    }
    const auto end = clock::now();
    per_hook_ns.push_back(
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
                .count()) /
        kHooks);
  }
  std::sort(per_hook_ns.begin(), per_hook_ns.end());
  const double hook_ns = per_hook_ns[per_hook_ns.size() / 2];

  const Tensor a = Tensor::full(Shape{96, 96}, 1.0);
  (void)matmul(a, a);  // warm up
  const auto begin = clock::now();
  (void)matmul(a, a);
  const auto end = clock::now();
  const double matmul_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
          .count());

  EXPECT_LE(hook_ns * 100.0, matmul_ns)
      << "disabled hook costs " << hook_ns << " ns; reference kernel took "
      << matmul_ns << " ns";
  EXPECT_EQ(prof::totals().kernel_calls, 0);
}

}  // namespace
}  // namespace sgnn
