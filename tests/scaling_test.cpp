#include "sgnn/scaling/powerlaw.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sgnn/scaling/sweep.hpp"
#include "sgnn/util/error.hpp"
#include "sgnn/util/rng.hpp"

namespace sgnn {
namespace {

TEST(PowerLawTest, RecoversExactPureLaw) {
  // y = 3 x^-0.5
  std::vector<double> x;
  std::vector<double> y;
  for (const double v : {1.0, 10.0, 100.0, 1000.0, 10000.0}) {
    x.push_back(v);
    y.push_back(3.0 * std::pow(v, -0.5));
  }
  const PowerLawFit fit = fit_pure_power_law(x, y);
  EXPECT_NEAR(fit.a, 3.0, 1e-9);
  EXPECT_NEAR(fit.alpha, 0.5, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(PowerLawTest, RecoversSaturatingLawWithOffset) {
  // y = 5 x^-0.7 + 0.25
  std::vector<double> x;
  std::vector<double> y;
  for (const double v : {1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0}) {
    x.push_back(v);
    y.push_back(5.0 * std::pow(v, -0.7) + 0.25);
  }
  const PowerLawFit fit = fit_power_law(x, y);
  EXPECT_NEAR(fit.alpha, 0.7, 0.05);
  EXPECT_NEAR(fit.c, 0.25, 0.02);
  EXPECT_GT(fit.r_squared, 0.999);
  EXPECT_NEAR(fit.evaluate(64.0), 5.0 * std::pow(64.0, -0.7) + 0.25, 1e-3);
}

TEST(PowerLawTest, ToleratesNoise) {
  Rng rng(9);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 12; ++i) {
    const double v = std::pow(2.0, i);
    x.push_back(v);
    y.push_back((4.0 * std::pow(v, -0.4) + 0.1) *
                (1.0 + 0.02 * rng.normal()));
  }
  const PowerLawFit fit = fit_power_law(x, y);
  EXPECT_NEAR(fit.alpha, 0.4, 0.1);
  EXPECT_GT(fit.r_squared, 0.98);
}

TEST(PowerLawTest, RejectsDegenerateInputs) {
  EXPECT_THROW(fit_power_law({1.0, 2.0}, {1.0, 2.0}), Error);       // < 3 pts
  EXPECT_THROW(fit_power_law({1, 2, -3}, {1, 1, 1}), Error);        // x <= 0
  EXPECT_THROW(fit_power_law({1, 2, 3}, {1, -1, 1}), Error);        // y <= 0
  EXPECT_THROW(fit_power_law({1, 2}, {1, 2, 3}), Error);            // mismatch
}

TEST(PowerLawTest, ConstantSeriesIsNotAPerfectFit) {
  // Regression: a flat loss curve has zero total variance, and the R^2
  // guard used to report the vacuous fit as perfect (r_squared = 1.0).
  const std::vector<double> x = {1.0, 10.0, 100.0, 1000.0};
  const std::vector<double> y = {0.5, 0.5, 0.5, 0.5};
  const PowerLawFit fit = fit_power_law(x, y);
  EXPECT_EQ(fit.r_squared, 0.0);
  EXPECT_NEAR(fit.alpha, 0.0, 1e-9);  // flat curve: no scaling exponent

  const PowerLawFit pure = fit_pure_power_law(x, y);
  EXPECT_EQ(pure.r_squared, 0.0);
  EXPECT_NEAR(pure.alpha, 0.0, 1e-9);
}

TEST(PowerLawTest, PurePowerLawFailsLoudlyOnDegenerateInput) {
  // Regression: identical x values collapse the log-x spread; the fit used
  // to silently return a default-constructed (all-zero) PowerLawFit.
  EXPECT_THROW(fit_pure_power_law({2.0, 2.0}, {1.0, 2.0}), Error);
  EXPECT_THROW(fit_pure_power_law({3.0, 3.0, 3.0}, {1.0, 2.0, 3.0}), Error);
}

TEST(PowerLawTest, LocalSlopesConstantForPureLaw) {
  std::vector<double> x;
  std::vector<double> y;
  for (const double v : {1.0, 10.0, 100.0, 1000.0}) {
    x.push_back(v);
    y.push_back(2.0 * std::pow(v, -0.3));
  }
  const auto slopes = local_loglog_slopes(x, y);
  ASSERT_EQ(slopes.size(), 3u);
  for (const auto s : slopes) EXPECT_NEAR(s, -0.3, 1e-9);
}

TEST(PowerLawTest, LocalSlopesShrinkForSaturatingLaw) {
  // Diminishing returns: |slope| decreases as x grows when there is an
  // irreducible floor — the Fig. 3 signature.
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 8; ++i) {
    const double v = std::pow(4.0, i + 1);
    x.push_back(v);
    y.push_back(3.0 * std::pow(v, -0.6) + 0.5);
  }
  const auto slopes = local_loglog_slopes(x, y);
  for (std::size_t i = 0; i + 1 < slopes.size(); ++i) {
    EXPECT_GT(slopes[i + 1], slopes[i]);  // slopes rise toward zero
  }
}

TEST(SweepTest, RunScalingPointProducesSaneMetrics) {
  static const ReferencePotential potential;
  DatasetOptions options;
  options.target_bytes = 400 << 10;
  options.seed = 55;
  const auto dataset = AggregatedDataset::generate(options, potential);
  const auto split = dataset.split(0.25, 3);

  ModelConfig config;
  config.hidden_dim = 12;
  config.num_layers = 2;
  SweepProtocol protocol;
  protocol.train.epochs = 2;
  protocol.train.batch_size = 4;

  const SweepPoint point =
      run_scaling_point(dataset, split.train, split.test, config, protocol);
  EXPECT_EQ(point.parameters, config.parameter_count());
  EXPECT_EQ(point.hidden_dim, 12);
  EXPECT_EQ(point.num_layers, 2);
  EXPECT_EQ(point.dataset_bytes, dataset.bytes_of(split.train));
  EXPECT_GT(point.test_loss, 0);
  EXPECT_GT(point.train_loss, 0);
  EXPECT_GT(point.feature_spread, 0);
  EXPECT_GT(point.seconds, 0);
}

}  // namespace
}  // namespace sgnn
