#include "sgnn/nn/egnn.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "sgnn/graph/batch.hpp"
#include "sgnn/tensor/ops.hpp"
#include "sgnn/util/rng.hpp"

namespace sgnn {
namespace {

using Mat3 = std::array<std::array<double, 3>, 3>;

Vec3 rotate_vec(const Mat3& m, const Vec3& v) {
  return {m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z,
          m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z,
          m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z};
}

/// Random proper rotation via composed axis rotations.
Mat3 random_rotation(Rng& rng) {
  const double a = rng.uniform(0, 2 * M_PI);
  const double b = rng.uniform(0, 2 * M_PI);
  const double c = rng.uniform(0, 2 * M_PI);
  const Mat3 rz{{{std::cos(a), -std::sin(a), 0},
                 {std::sin(a), std::cos(a), 0},
                 {0, 0, 1}}};
  const Mat3 ry{{{std::cos(b), 0, std::sin(b)},
                 {0, 1, 0},
                 {-std::sin(b), 0, std::cos(b)}}};
  const Mat3 rx{{{1, 0, 0},
                 {0, std::cos(c), -std::sin(c)},
                 {0, std::sin(c), std::cos(c)}}};
  const auto matmul3 = [](const Mat3& p, const Mat3& q) {
    Mat3 r{};
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        for (int k = 0; k < 3; ++k) r[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] += p[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] * q[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)];
      }
    }
    return r;
  };
  return matmul3(rz, matmul3(ry, rx));
}

AtomicStructure random_molecule(std::int64_t atoms, Rng& rng) {
  AtomicStructure s;
  const int palette[] = {elements::kH, elements::kC, elements::kN,
                         elements::kO};
  for (std::int64_t i = 0; i < atoms; ++i) {
    s.species.push_back(palette[rng.uniform_index(4)]);
    for (;;) {
      const Vec3 p{rng.uniform(0, 6), rng.uniform(0, 6), rng.uniform(0, 6)};
      bool ok = true;
      for (const auto& q : s.positions) {
        if ((p - q).norm() < 0.9) {
          ok = false;
          break;
        }
      }
      if (ok) {
        s.positions.push_back(p);
        break;
      }
    }
  }
  return s;
}

GraphBatch batch_of(const AtomicStructure& s, double cutoff = 3.0) {
  MolecularGraph g = MolecularGraph::from_structure(s, cutoff);
  return GraphBatch::from_graphs(std::vector<const MolecularGraph*>{&g});
}

ModelConfig tiny_config() {
  ModelConfig config;
  config.hidden_dim = 16;
  config.num_layers = 3;
  config.seed = 99;
  return config;
}

TEST(ModelConfigTest, ClosedFormParameterCountMatchesModule) {
  for (const std::int64_t width : {4, 16, 40}) {
    for (const std::int64_t depth : {1, 3, 6}) {
      ModelConfig config;
      config.hidden_dim = width;
      config.num_layers = depth;
      const EGNNModel model(config);
      EXPECT_EQ(model.num_parameters(), config.parameter_count())
          << "width " << width << " depth " << depth;
    }
  }
}

TEST(ModelConfigTest, ParameterBudgetSearchIsAccurate) {
  for (const std::int64_t target : {50'000, 300'000, 2'000'000}) {
    const ModelConfig config = ModelConfig::for_parameter_budget(target, 3);
    const double ratio = static_cast<double>(config.parameter_count()) /
                         static_cast<double>(target);
    EXPECT_GT(ratio, 0.9) << target;
    EXPECT_LT(ratio, 1.1) << target;
  }
}

TEST(ModelConfigTest, BudgetGrowsWidthMonotonically) {
  const auto small = ModelConfig::for_parameter_budget(10'000, 3);
  const auto large = ModelConfig::for_parameter_budget(1'000'000, 3);
  EXPECT_LT(small.hidden_dim, large.hidden_dim);
}

TEST(EGNNTest, ForwardShapes) {
  Rng rng(31);
  const AtomicStructure s = random_molecule(12, rng);
  const GraphBatch batch = batch_of(s);
  const EGNNModel model(tiny_config());
  const auto out = model.forward(batch);
  EXPECT_EQ(out.energy.shape(), Shape({1, 1}));
  EXPECT_EQ(out.forces.shape(), Shape({12, 3}));
}

TEST(EGNNTest, DeterministicForGivenSeed) {
  Rng rng(32);
  const AtomicStructure s = random_molecule(10, rng);
  const GraphBatch batch = batch_of(s);
  const EGNNModel a(tiny_config());
  const EGNNModel b(tiny_config());
  EXPECT_EQ(a.forward(batch).energy.item(), b.forward(batch).energy.item());
}

TEST(EGNNTest, DifferentSeedsDiffer) {
  Rng rng(33);
  const GraphBatch batch = batch_of(random_molecule(10, rng));
  ModelConfig other = tiny_config();
  other.seed = 100;
  const EGNNModel a(tiny_config());
  const EGNNModel b(other);
  EXPECT_NE(a.forward(batch).energy.item(), b.forward(batch).energy.item());
}

TEST(EGNNTest, EnergyInvariantUnderTranslation) {
  Rng rng(34);
  AtomicStructure s = random_molecule(10, rng);
  const EGNNModel model(tiny_config());
  const double e0 = model.forward(batch_of(s)).energy.item();
  for (auto& p : s.positions) p += Vec3{5.3, -2.1, 0.7};
  EXPECT_NEAR(model.forward(batch_of(s)).energy.item(), e0, 1e-9);
}

TEST(EGNNTest, EnergyInvariantAndForcesEquivariantUnderRotation) {
  Rng rng(35);
  AtomicStructure s = random_molecule(10, rng);
  const EGNNModel model(tiny_config());
  const auto out0 = model.forward(batch_of(s));

  Rng rot_rng(36);
  const Mat3 rot = random_rotation(rot_rng);
  AtomicStructure rotated = s;
  for (auto& p : rotated.positions) p = rotate_vec(rot, p);
  const auto out1 = model.forward(batch_of(rotated));

  EXPECT_NEAR(out1.energy.item(), out0.energy.item(), 1e-9);
  const real* f0 = out0.forces.data();
  const real* f1 = out1.forces.data();
  for (std::int64_t i = 0; i < 10; ++i) {
    const Vec3 expected =
        rotate_vec(rot, Vec3{f0[i * 3], f0[i * 3 + 1], f0[i * 3 + 2]});
    EXPECT_NEAR(f1[i * 3 + 0], expected.x, 1e-9);
    EXPECT_NEAR(f1[i * 3 + 1], expected.y, 1e-9);
    EXPECT_NEAR(f1[i * 3 + 2], expected.z, 1e-9);
  }
}

TEST(EGNNTest, EnergyInvariantUnderReflection) {
  Rng rng(37);
  AtomicStructure s = random_molecule(9, rng);
  const EGNNModel model(tiny_config());
  const auto out0 = model.forward(batch_of(s));
  AtomicStructure mirrored = s;
  for (auto& p : mirrored.positions) p.x = -p.x;
  const auto out1 = model.forward(batch_of(mirrored));
  EXPECT_NEAR(out1.energy.item(), out0.energy.item(), 1e-9);
  // Forces reflect: x component flips, y/z stay.
  const real* f0 = out0.forces.data();
  const real* f1 = out1.forces.data();
  for (std::int64_t i = 0; i < 9; ++i) {
    EXPECT_NEAR(f1[i * 3 + 0], -f0[i * 3 + 0], 1e-9);
    EXPECT_NEAR(f1[i * 3 + 1], f0[i * 3 + 1], 1e-9);
  }
}

TEST(EGNNTest, PermutationEquivariance) {
  Rng rng(38);
  AtomicStructure s = random_molecule(8, rng);
  const EGNNModel model(tiny_config());
  const auto out0 = model.forward(batch_of(s));

  AtomicStructure swapped = s;
  std::swap(swapped.species[1], swapped.species[6]);
  std::swap(swapped.positions[1], swapped.positions[6]);
  const auto out1 = model.forward(batch_of(swapped));

  EXPECT_NEAR(out1.energy.item(), out0.energy.item(), 1e-9);
  const real* f0 = out0.forces.data();
  const real* f1 = out1.forces.data();
  for (int c = 0; c < 3; ++c) {
    EXPECT_NEAR(f1[1 * 3 + c], f0[6 * 3 + c], 1e-9);
    EXPECT_NEAR(f1[6 * 3 + c], f0[1 * 3 + c], 1e-9);
  }
}

TEST(EGNNTest, BatchingDoesNotChangePredictions) {
  Rng rng(39);
  MolecularGraph a = MolecularGraph::from_structure(random_molecule(7, rng), 3.0);
  MolecularGraph b = MolecularGraph::from_structure(random_molecule(11, rng), 3.0);
  const EGNNModel model(tiny_config());

  const auto solo_a = model.forward(
      GraphBatch::from_graphs(std::vector<const MolecularGraph*>{&a}));
  const auto solo_b = model.forward(
      GraphBatch::from_graphs(std::vector<const MolecularGraph*>{&b}));
  const auto joint = model.forward(
      GraphBatch::from_graphs(std::vector<const MolecularGraph*>{&a, &b}));

  EXPECT_NEAR(joint.energy.at(0, 0), solo_a.energy.item(), 1e-10);
  EXPECT_NEAR(joint.energy.at(1, 0), solo_b.energy.item(), 1e-10);
  // Forces of graph b occupy rows 7..17 of the joint output.
  const real* fj = joint.forces.data();
  const real* fb = solo_b.forces.data();
  for (std::int64_t i = 0; i < 11 * 3; ++i) {
    EXPECT_NEAR(fj[7 * 3 + i], fb[i], 1e-10);
  }
}

TEST(EGNNTest, CheckpointedForwardMatchesPlain) {
  Rng rng(40);
  const GraphBatch batch = batch_of(random_molecule(14, rng));
  const EGNNModel model(tiny_config());
  const auto plain = model.forward(batch);
  EGNNModel::ForwardOptions opts;
  opts.activation_checkpointing = true;
  const auto ckpt = model.forward(batch, opts);
  EXPECT_DOUBLE_EQ(ckpt.energy.item(), plain.energy.item());
  EXPECT_EQ(ckpt.forces.to_vector(), plain.forces.to_vector());
}

TEST(EGNNTest, CheckpointedGradientsMatchPlain) {
  Rng rng(41);
  const GraphBatch batch = batch_of(random_molecule(10, rng));
  const EGNNModel model(tiny_config());

  const auto run = [&](bool use_ckpt) {
    EGNNModel::ForwardOptions opts;
    opts.activation_checkpointing = use_ckpt;
    const auto out = model.forward(batch, opts);
    (sum(square(out.energy)) + sum(square(out.forces))).backward();
    std::vector<std::vector<real>> grads;
    for (auto& p : model.parameters()) {
      grads.push_back(p.grad().to_vector());
      p.zero_grad();
    }
    return grads;
  };

  const auto plain = run(false);
  const auto ckpt = run(true);
  ASSERT_EQ(plain.size(), ckpt.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i], ckpt[i]) << "parameter " << i;
  }
}

TEST(EGNNTest, GradientsReachEveryParameter) {
  Rng rng(42);
  const GraphBatch batch = batch_of(random_molecule(10, rng));
  const EGNNModel model(tiny_config());
  const auto out = model.forward(batch);
  (sum(square(out.energy)) + sum(square(out.forces))).backward();
  std::size_t nonzero = 0;
  for (const auto& p : model.parameters()) {
    ASSERT_TRUE(p.grad().defined());
    for (const auto g : p.grad().to_vector()) {
      if (g != 0) {
        ++nonzero;
        break;
      }
    }
  }
  // Every parameter tensor should receive gradient signal EXCEPT the last
  // layer's coordinate gate phi_x (2 Linears = 4 tensors): its coordinate
  // update feeds only the next layer's geometry, and there is no next
  // layer. This mirrors PyTorch semantics (unused path -> zero grad).
  EXPECT_EQ(nonzero, model.parameters().size() - 4);
}

TEST(EGNNTest, FeatureSpreadIsPopulatedAfterForward) {
  Rng rng(43);
  const GraphBatch batch = batch_of(random_molecule(10, rng));
  const EGNNModel model(tiny_config());
  (void)model.forward(batch);
  EXPECT_GT(model.last_feature_spread(), 0.0);
}

// Every interaction kernel must preserve the symmetry contract and keep
// graphs independent under batching.
class KernelSuite : public ::testing::TestWithParam<MessagePassingKernel> {};

TEST_P(KernelSuite, EnergyInvariantForcesEquivariant) {
  Rng rng(71);
  AtomicStructure s = random_molecule(9, rng);
  ModelConfig config = tiny_config();
  config.kernel = GetParam();
  const EGNNModel model(config);
  const auto out0 = model.forward(batch_of(s));

  Rng rot_rng(72);
  const Mat3 rot = random_rotation(rot_rng);
  AtomicStructure rotated = s;
  for (auto& p : rotated.positions) {
    p = rotate_vec(rot, p) + Vec3{1.5, -2.0, 0.25};
  }
  const auto out1 = model.forward(batch_of(rotated));
  EXPECT_NEAR(out1.energy.item(), out0.energy.item(), 1e-9)
      << kernel_name(GetParam());
  const real* f0 = out0.forces.data();
  const real* f1 = out1.forces.data();
  for (std::int64_t i = 0; i < 9; ++i) {
    const Vec3 expected =
        rotate_vec(rot, Vec3{f0[i * 3], f0[i * 3 + 1], f0[i * 3 + 2]});
    EXPECT_NEAR(f1[i * 3 + 0], expected.x, 1e-9);
    EXPECT_NEAR(f1[i * 3 + 1], expected.y, 1e-9);
    EXPECT_NEAR(f1[i * 3 + 2], expected.z, 1e-9);
  }
}

TEST_P(KernelSuite, ParameterCountMatchesClosedForm) {
  ModelConfig config = tiny_config();
  config.kernel = GetParam();
  const EGNNModel model(config);
  EXPECT_EQ(model.num_parameters(), config.parameter_count())
      << kernel_name(GetParam());
}

TEST_P(KernelSuite, BatchingIndependence) {
  Rng rng(73);
  MolecularGraph a =
      MolecularGraph::from_structure(random_molecule(6, rng), 3.0);
  MolecularGraph b =
      MolecularGraph::from_structure(random_molecule(8, rng), 3.0);
  ModelConfig config = tiny_config();
  config.kernel = GetParam();
  const EGNNModel model(config);
  const auto solo = model.forward(
      GraphBatch::from_graphs(std::vector<const MolecularGraph*>{&a}));
  const auto joint = model.forward(
      GraphBatch::from_graphs(std::vector<const MolecularGraph*>{&a, &b}));
  EXPECT_NEAR(joint.energy.at(0, 0), solo.energy.item(), 1e-10)
      << kernel_name(GetParam());
}

TEST_P(KernelSuite, GradientsFlowAndKernelsDiffer) {
  Rng rng(74);
  const GraphBatch batch = batch_of(random_molecule(8, rng));
  ModelConfig config = tiny_config();
  config.kernel = GetParam();
  const EGNNModel model(config);
  const auto out = model.forward(batch);
  (sum(square(out.energy)) + sum(square(out.forces))).backward();
  bool any = false;
  for (const auto& p : model.parameters()) {
    if (p.grad().defined()) any = true;
  }
  EXPECT_TRUE(any);

  // Each kernel is a genuinely different function.
  ModelConfig egnn_config = tiny_config();
  const EGNNModel reference(egnn_config);
  if (GetParam() != MessagePassingKernel::kEGNN) {
    EXPECT_NE(model.forward(batch).energy.item(),
              reference.forward(batch).energy.item());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, KernelSuite,
    ::testing::Values(MessagePassingKernel::kEGNN,
                      MessagePassingKernel::kSchNet,
                      MessagePassingKernel::kGAT),
    [](const ::testing::TestParamInfo<MessagePassingKernel>& param_info) {
      switch (param_info.param) {
        case MessagePassingKernel::kEGNN: return std::string("EGNN");
        case MessagePassingKernel::kSchNet: return std::string("SchNet");
        case MessagePassingKernel::kGAT: return std::string("GAT");
      }
      return std::string("unknown");
    });

TEST(EGNNTest, PeriodicPredictionsInvariantUnderCellTranslation) {
  // Translating every atom by an arbitrary vector and wrapping back into
  // the cell must not change predictions: edges are built from minimum-
  // image displacements, and the batch shift term reconstructs them.
  Rng rng(61);
  AtomicStructure s;
  s.cell = {8, 8, 8};
  s.periodic = true;
  const int palette[] = {elements::kFe, elements::kO};
  for (int i = 0; i < 16; ++i) {
    s.species.push_back(palette[i % 2]);
    s.positions.push_back(
        {rng.uniform(0, 8), rng.uniform(0, 8), rng.uniform(0, 8)});
  }
  const EGNNModel model(tiny_config());
  const auto out0 = model.forward(batch_of(s));

  AtomicStructure moved = s;
  for (auto& p : moved.positions) p += Vec3{3.1, -7.7, 12.4};
  moved.wrap_positions();
  const auto out1 = model.forward(batch_of(moved));
  EXPECT_NEAR(out1.energy.item(), out0.energy.item(), 1e-9);
  const auto f0 = out0.forces.to_vector();
  const auto f1 = out1.forces.to_vector();
  for (std::size_t i = 0; i < f0.size(); ++i) {
    EXPECT_NEAR(f1[i], f0[i], 1e-9);
  }
}

TEST(ForceHeadTest, NodeMlpHeadParameterCountMatches) {
  ModelConfig config = tiny_config();
  config.force_head = ForceHead::kNodeMLP;
  const EGNNModel model(config);
  EXPECT_EQ(model.num_parameters(), config.parameter_count());
}

TEST(ForceHeadTest, NodeMlpHeadIsNotEquivariantButEnergyStaysInvariant) {
  // The HydraGNN-style node-level force head maps invariant features to
  // vectors, which CANNOT rotate with the molecule — documenting the
  // faithful head's known limitation (and why the equivariant edge head is
  // the default here).
  Rng rng(81);
  AtomicStructure s = random_molecule(8, rng);
  ModelConfig config = tiny_config();
  config.force_head = ForceHead::kNodeMLP;
  const EGNNModel model(config);
  const auto out0 = model.forward(batch_of(s));

  AtomicStructure rotated = s;
  for (auto& p : rotated.positions) {
    p = {-p.y, p.x, p.z};  // 90-degree z rotation
  }
  const auto out1 = model.forward(batch_of(rotated));
  EXPECT_NEAR(out1.energy.item(), out0.energy.item(), 1e-9);
  // Forces are numerically IDENTICAL instead of rotated: invariant.
  EXPECT_EQ(out1.forces.to_vector(), out0.forces.to_vector());
}

TEST(ForceHeadTest, NodeMlpHeadTrainsAndGradsFlow) {
  Rng rng(82);
  const GraphBatch batch = batch_of(random_molecule(8, rng));
  ModelConfig config = tiny_config();
  config.force_head = ForceHead::kNodeMLP;
  const EGNNModel model(config);
  const auto out = model.forward(batch);
  EXPECT_EQ(out.forces.shape(), Shape({8, 3}));
  (sum(square(out.energy)) + sum(square(out.forces))).backward();
  std::size_t with_grad = 0;
  for (const auto& p : model.parameters()) {
    if (p.grad().defined()) ++with_grad;
  }
  EXPECT_EQ(with_grad, model.parameters().size());
}

TEST(EGNNTest, RejectsSpeciesOutsideVocabulary) {
  Rng rng(44);
  AtomicStructure s = random_molecule(4, rng);
  s.species[0] = 95;  // allowed: vocabulary is [0, 96)
  const GraphBatch ok_batch = batch_of(s);
  ModelConfig config = tiny_config();
  config.num_species = 10;  // now species 95 is out of range
  const EGNNModel model(config);
  EXPECT_THROW(model.forward(ok_batch), Error);
}

}  // namespace
}  // namespace sgnn
