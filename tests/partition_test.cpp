// The partition-parity test wall for graph parallelism (sgnn::gpar):
// structural invariants of the spatial partitioner (every node owned exactly
// once, halo = the exact one-hop boundary set, degenerate graphs survive,
// deterministic under concurrency) and the headline bit-identity contract —
// partitioned forward energies, forces, gradients, and post-step parameters
// are EXPECT_EQ-identical to the unpartitioned single-rank path for 1, 2,
// and 4 ranks, with and without activation checkpointing. EXPECT_EQ on raw
// vectors — not EXPECT_NEAR — is the point: partitioning is a placement
// change, never a numerics change. Runs with SGNN_NUM_THREADS=4 (see
// tests/CMakeLists.txt) so the intra-op pool races the halo exchanges under
// TSan.

#include "sgnn/graph/partition.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "sgnn/data/dataset.hpp"
#include "sgnn/graph/batch.hpp"
#include "sgnn/graph/graph.hpp"
#include "sgnn/obs/telemetry.hpp"
#include "sgnn/train/distributed.hpp"
#include "sgnn/train/halo.hpp"
#include "sgnn/train/loss.hpp"
#include "sgnn/train/zero.hpp"
#include "sgnn/util/rng.hpp"

namespace sgnn {
namespace {

const AggregatedDataset& tiny_dataset() {
  static const AggregatedDataset dataset = [] {
    DatasetOptions options;
    options.target_bytes = 700 << 10;
    options.seed = 31;
    static const ReferencePotential potential;
    return AggregatedDataset::generate(options, potential);
  }();
  return dataset;
}

std::unique_ptr<DDStore> make_store(int ranks) {
  auto store = std::make_unique<DDStore>(ranks);
  store->insert(tiny_dataset().graphs());
  return store;
}

template <typename Body>
void run_ranks(int num_ranks, Body body) {
  std::vector<std::thread> threads;
  for (int r = 0; r < num_ranks; ++r) threads.emplace_back(body, r);
  for (auto& t : threads) t.join();
}

AtomicStructure random_cluster(std::int64_t atoms, double box, Rng& rng) {
  AtomicStructure s;
  const int palette[] = {elements::kH, elements::kC, elements::kN,
                         elements::kO, elements::kCu};
  for (std::int64_t i = 0; i < atoms; ++i) {
    s.species.push_back(palette[rng.uniform_index(5)]);
    s.positions.push_back(
        {rng.uniform(0, box), rng.uniform(0, box), rng.uniform(0, box)});
  }
  return s;
}

GraphBatch dense_batch(std::uint64_t seed, int graphs = 3,
                       std::int64_t atoms = 18) {
  Rng rng(seed);
  std::vector<MolecularGraph> storage;
  for (int g = 0; g < graphs; ++g) {
    storage.push_back(
        MolecularGraph::from_structure(random_cluster(atoms, 5.0, rng), 3.0));
  }
  return GraphBatch::from_graphs(storage);
}

/// Full structural audit of one partition against its source batch: the
/// single place every invariant the halo exchange relies on is spelled out.
void check_invariants(const GraphBatch& batch, const gpar::GraphPartition& p) {
  const int R = p.num_ranks;
  ASSERT_EQ(static_cast<int>(p.ranks.size()), R);
  ASSERT_EQ(p.num_nodes, batch.num_nodes);
  ASSERT_EQ(p.num_edges, batch.num_edges);

  // Ownership: contiguous ranges that tile [0, N) exactly once, and the
  // closed-form owner() agrees with them.
  EXPECT_EQ(p.ranks.front().owned_begin, 0);
  EXPECT_EQ(p.ranks.back().owned_end, batch.num_nodes);
  for (int r = 0; r + 1 < R; ++r) {
    EXPECT_EQ(p.ranks[static_cast<std::size_t>(r)].owned_end,
              p.ranks[static_cast<std::size_t>(r) + 1].owned_begin);
  }
  for (std::int64_t node = 0; node < batch.num_nodes; ++node) {
    const int o = p.owner(node);
    const auto& rp = p.ranks[static_cast<std::size_t>(o)];
    EXPECT_GE(node, rp.owned_begin);
    EXPECT_LT(node, rp.owned_end);
  }

  // Edge slices: contiguous cover of [0, E) in rank order.
  EXPECT_EQ(p.ranks.front().edge_begin, 0);
  EXPECT_EQ(p.ranks.back().edge_end, batch.num_edges);
  for (int r = 0; r + 1 < R; ++r) {
    EXPECT_EQ(p.ranks[static_cast<std::size_t>(r)].edge_end,
              p.ranks[static_cast<std::size_t>(r) + 1].edge_begin);
  }

  std::vector<std::int64_t> boundary_concat;
  for (const auto& rp : p.ranks) {
    boundary_concat.insert(boundary_concat.end(), rp.boundary.begin(),
                           rp.boundary.end());
  }

  for (int r = 0; r < R; ++r) {
    const auto& rp = p.ranks[static_cast<std::size_t>(r)];

    // Halo = EXACTLY the sorted unique non-owned sources of the slice: no
    // dropped boundary node, no over-fetch past one hop.
    std::vector<std::int64_t> expected_halo;
    for (std::int64_t e = rp.edge_begin; e < rp.edge_end; ++e) {
      const std::int64_t src = batch.edge_src[static_cast<std::size_t>(e)];
      EXPECT_EQ(p.owner(batch.edge_dst[static_cast<std::size_t>(e)]), r);
      if (src < rp.owned_begin || src >= rp.owned_end) {
        expected_halo.push_back(src);
      }
    }
    std::sort(expected_halo.begin(), expected_halo.end());
    expected_halo.erase(
        std::unique(expected_halo.begin(), expected_halo.end()),
        expected_halo.end());
    EXPECT_EQ(rp.halo, expected_halo) << "rank " << r;

    // Local endpoints decode back to the exact global edge slice.
    ASSERT_EQ(static_cast<std::int64_t>(rp.local_src.size()),
              rp.num_local_edges());
    ASSERT_EQ(static_cast<std::int64_t>(rp.local_dst.size()),
              rp.num_local_edges());
    std::vector<std::int64_t> ghost_edges;
    for (std::int64_t e = 0; e < rp.num_local_edges(); ++e) {
      const auto ei = static_cast<std::size_t>(e);
      const std::int64_t ls = rp.local_src[ei];
      const std::int64_t global_src =
          ls < rp.num_owned()
              ? rp.owned_begin + ls
              : rp.halo[static_cast<std::size_t>(ls - rp.num_owned())];
      EXPECT_EQ(global_src,
                batch.edge_src[static_cast<std::size_t>(rp.edge_begin + e)]);
      EXPECT_EQ(rp.owned_begin + rp.local_dst[ei],
                batch.edge_dst[static_cast<std::size_t>(rp.edge_begin + e)]);
      if (ls >= rp.num_owned()) ghost_edges.push_back(e);
    }
    EXPECT_EQ(rp.ghost_edges, ghost_edges) << "rank " << r;

    // Boundary of rank r = sorted union of r-owned ids in the other ranks'
    // halos (exactly what r must post each exchange).
    std::vector<std::int64_t> expected_boundary;
    for (int o = 0; o < R; ++o) {
      if (o == r) continue;
      for (const std::int64_t g :
           p.ranks[static_cast<std::size_t>(o)].halo) {
        if (g >= rp.owned_begin && g < rp.owned_end) {
          expected_boundary.push_back(g);
        }
      }
    }
    std::sort(expected_boundary.begin(), expected_boundary.end());
    expected_boundary.erase(
        std::unique(expected_boundary.begin(), expected_boundary.end()),
        expected_boundary.end());
    EXPECT_EQ(rp.boundary, expected_boundary) << "rank " << r;

    // halo_fetch addresses the rank-order boundary concatenation.
    ASSERT_EQ(rp.halo_fetch.size(), rp.halo.size());
    for (std::size_t k = 0; k < rp.halo.size(); ++k) {
      ASSERT_GE(rp.halo_fetch[k], 0);
      ASSERT_LT(rp.halo_fetch[k],
                static_cast<std::int64_t>(boundary_concat.size()));
      EXPECT_EQ(boundary_concat[static_cast<std::size_t>(rp.halo_fetch[k])],
                rp.halo[k]);
    }

    // Backward merge schedules: rank r2's ghost block folds into r's owned
    // rows at the positions r2's slice order dictates.
    ASSERT_EQ(static_cast<int>(rp.inbound.size()), R);
    for (int r2 = 0; r2 < R; ++r2) {
      const auto& sender = p.ranks[static_cast<std::size_t>(r2)];
      std::int64_t last_pos = -1;
      for (const auto& [pos, target] :
           rp.inbound[static_cast<std::size_t>(r2)]) {
        EXPECT_GT(pos, last_pos);  // ascending: the fold continues in order
        last_pos = pos;
        ASSERT_GE(pos, 0);
        ASSERT_LT(pos,
                  static_cast<std::int64_t>(sender.ghost_edges.size()));
        const std::int64_t sender_edge =
            sender.edge_begin +
            sender.ghost_edges[static_cast<std::size_t>(pos)];
        EXPECT_EQ(batch.edge_src[static_cast<std::size_t>(sender_edge)],
                  rp.owned_begin + target);
      }
    }
  }
}

bool partitions_equal(const gpar::GraphPartition& a,
                      const gpar::GraphPartition& b) {
  if (a.num_ranks != b.num_ranks || a.num_nodes != b.num_nodes ||
      a.num_edges != b.num_edges || a.ranks.size() != b.ranks.size()) {
    return false;
  }
  for (std::size_t r = 0; r < a.ranks.size(); ++r) {
    const auto& x = a.ranks[r];
    const auto& y = b.ranks[r];
    if (x.owned_begin != y.owned_begin || x.owned_end != y.owned_end ||
        x.edge_begin != y.edge_begin || x.edge_end != y.edge_end ||
        x.halo != y.halo || x.local_src != y.local_src ||
        x.local_dst != y.local_dst || x.boundary != y.boundary ||
        x.halo_fetch != y.halo_fetch || x.ghost_edges != y.ghost_edges ||
        x.inbound != y.inbound) {
      return false;
    }
  }
  return true;
}

// -- partitioner invariants ---------------------------------------------------

TEST(PartitionTest, InvariantsHoldAcrossRankCounts) {
  const GraphBatch batch = dense_batch(41);
  ASSERT_GT(batch.num_edges, 0);
  for (const int R : {1, 2, 3, 4, 7}) {
    SCOPED_TRACE("ranks=" + std::to_string(R));
    check_invariants(batch, gpar::GraphPartition::build(batch, R));
  }
}

TEST(PartitionTest, MultiRankPartitionsActuallyHaveHalos) {
  // Guard against a vacuous wall: on a dense connected batch, splitting
  // across ranks MUST produce boundary traffic.
  const GraphBatch batch = dense_batch(42, /*graphs=*/1, /*atoms=*/24);
  for (const int R : {2, 4}) {
    const auto part = gpar::GraphPartition::build(batch, R);
    std::size_t halo_total = 0;
    for (const auto& rp : part.ranks) halo_total += rp.halo.size();
    EXPECT_GT(halo_total, 0u) << "ranks=" << R;
  }
}

TEST(PartitionTest, DegenerateBatchesSurvive) {
  // Empty batch: every rank owns nothing, exchanges nothing.
  const GraphBatch empty =
      GraphBatch::from_graphs(std::vector<const MolecularGraph*>{});
  for (const int R : {1, 2, 4}) {
    const auto part = gpar::GraphPartition::build(empty, R);
    check_invariants(empty, part);
    for (const auto& rp : part.ranks) {
      EXPECT_EQ(rp.num_owned(), 0);
      EXPECT_TRUE(rp.halo.empty());
      EXPECT_TRUE(rp.boundary.empty());
    }
  }

  // Single atom: one rank owns it, nobody needs a halo.
  AtomicStructure lone;
  lone.species = {elements::kCu};
  lone.positions = {{0.0, 0.0, 0.0}};
  const MolecularGraph lone_graph = MolecularGraph::from_structure(lone, 3.0);
  const GraphBatch single = GraphBatch::from_graphs(
      std::vector<const MolecularGraph*>{&lone_graph});
  for (const int R : {1, 2, 4}) {
    const auto part = gpar::GraphPartition::build(single, R);
    check_invariants(single, part);
    for (const auto& rp : part.ranks) EXPECT_TRUE(rp.halo.empty());
  }

  // Zero edges: two atoms beyond the cutoff. Partition survives with empty
  // edge slices everywhere.
  AtomicStructure apart;
  apart.species = {elements::kH, elements::kH};
  apart.positions = {{0.0, 0.0, 0.0}, {50.0, 0.0, 0.0}};
  const MolecularGraph apart_graph =
      MolecularGraph::from_structure(apart, 3.0);
  ASSERT_EQ(apart_graph.num_edges(), 0);
  const GraphBatch disconnected = GraphBatch::from_graphs(
      std::vector<const MolecularGraph*>{&apart_graph});
  for (const int R : {1, 2, 3}) {
    check_invariants(disconnected,
                     gpar::GraphPartition::build(disconnected, R));
  }

  // More ranks than nodes: trailing ranks own empty ranges.
  const auto part = gpar::GraphPartition::build(disconnected, 5);
  check_invariants(disconnected, part);
  std::int64_t owned_total = 0;
  for (const auto& rp : part.ranks) owned_total += rp.num_owned();
  EXPECT_EQ(owned_total, 2);
}

TEST(PartitionTest, BuildIsDeterministicUnderConcurrency) {
  // The partition is pure index arithmetic: rebuilding it — serially or from
  // four racing threads (this suite runs with SGNN_NUM_THREADS=4) — must
  // produce identical structures, or ranks would disagree about ownership.
  const GraphBatch batch = dense_batch(43);
  const auto reference = gpar::GraphPartition::build(batch, 4);
  EXPECT_TRUE(
      partitions_equal(reference, gpar::GraphPartition::build(batch, 4)));

  std::vector<gpar::GraphPartition> built(4);
  run_ranks(4, [&](int t) {
    built[static_cast<std::size_t>(t)] = gpar::GraphPartition::build(batch, 4);
  });
  for (int t = 0; t < 4; ++t) {
    EXPECT_TRUE(partitions_equal(reference,
                                 built[static_cast<std::size_t>(t)]))
        << "thread " << t;
  }
}

TEST(PartitionTest, SpatialOrderHandlesZeroExtentGeometry) {
  // Planar slab: zero z-extent. The longest axis (x) dominates the sort and
  // the degenerate axis only tie-breaks; the result is a permutation sorted
  // by x.
  AtomicStructure slab;
  for (int i = 0; i < 6; ++i) {
    slab.species.push_back(elements::kSi);
    slab.positions.push_back({static_cast<double>(5 - i),
                              0.25 * static_cast<double>(i % 2), 1.0});
  }
  const auto order = gpar::spatial_order(slab);
  ASSERT_EQ(order.size(), 6u);
  std::set<std::int64_t> seen(order.begin(), order.end());
  EXPECT_EQ(seen.size(), 6u);  // a permutation: nothing dropped or doubled
  for (std::size_t k = 0; k + 1 < order.size(); ++k) {
    EXPECT_LE(slab.positions[static_cast<std::size_t>(order[k])].x,
              slab.positions[static_cast<std::size_t>(order[k + 1])].x);
  }

  // All atoms coincident: every extent is zero, so the original index is
  // the only tiebreak left and the order is the identity.
  AtomicStructure point;
  for (int i = 0; i < 5; ++i) {
    point.species.push_back(elements::kC);
    point.positions.push_back({1.0, 2.0, 3.0});
  }
  const auto identity = gpar::spatial_order(point);
  for (std::int64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(identity[static_cast<std::size_t>(i)], i);
  }

  // Deterministic: same input, same order, every time.
  EXPECT_EQ(gpar::spatial_order(slab), gpar::spatial_order(slab));
  EXPECT_TRUE(gpar::spatial_order(AtomicStructure{}).empty());
}

// -- model-level bit-identity -------------------------------------------------

struct ForwardBackwardResult {
  std::vector<real> energy;
  std::vector<real> forces;
  std::vector<real> gradients;
};

ForwardBackwardResult reference_forward_backward(const ModelConfig& config,
                                                 const GraphBatch& batch,
                                                 bool checkpointing) {
  EGNNModel model(config);
  EGNNModel::ForwardOptions options;
  options.activation_checkpointing = checkpointing;
  const auto out = model.forward(batch, options);
  LossTerms terms = multitask_loss(out, batch, LossWeights{});
  terms.total.backward();
  return {out.energy.to_vector(), out.forces.to_vector(),
          flatten_gradients(model.parameters())};
}

TEST(PartitionParityTest, ForwardBackwardIsBitIdenticalToUnpartitioned) {
  ModelConfig config;
  config.hidden_dim = 10;
  config.num_layers = 2;
  const auto& graphs = tiny_dataset().graphs();
  ASSERT_GE(graphs.size(), 4u);
  std::vector<const MolecularGraph*> samples;
  for (std::size_t g = 0; g < 4; ++g) samples.push_back(&graphs[g]);

  for (const bool checkpointing : {false, true}) {
    const GraphBatch reference_batch = GraphBatch::from_graphs(samples);
    const ForwardBackwardResult reference =
        reference_forward_backward(config, reference_batch, checkpointing);
    ASSERT_FALSE(reference.energy.empty());
    ASSERT_FALSE(reference.gradients.empty());

    for (const int R : {1, 2, 4}) {
      SCOPED_TRACE(std::string("ranks=") + std::to_string(R) +
                   (checkpointing ? " ckpt" : ""));
      Communicator comm(R);
      std::vector<std::unique_ptr<EGNNModel>> models;
      for (int r = 0; r < R; ++r) {
        models.push_back(std::make_unique<EGNNModel>(config));
      }
      std::vector<ForwardBackwardResult> results(
          static_cast<std::size_t>(R));
      run_ranks(R, [&](int rank) {
        const auto ri = static_cast<std::size_t>(rank);
        // Each rank builds its own batch and partition, exactly like the
        // trainer: both are deterministic, so all ranks agree.
        const GraphBatch batch = GraphBatch::from_graphs(samples);
        const auto partition = gpar::GraphPartition::build(batch, R);
        gpar::HaloExchanger halo(comm, rank, partition, batch);
        EGNNModel::ForwardOptions options;
        options.activation_checkpointing = checkpointing;
        options.graph_parallel = &halo;
        const auto out = models[ri]->forward(batch, options);
        LossTerms terms = multitask_loss(out, batch, LossWeights{});
        terms.total.backward();
        results[ri] = {out.energy.to_vector(), out.forces.to_vector(),
                       flatten_gradients(models[ri]->parameters())};
      });
      for (int r = 0; r < R; ++r) {
        const auto& got = results[static_cast<std::size_t>(r)];
        EXPECT_EQ(got.energy, reference.energy) << "rank " << r;
        EXPECT_EQ(got.forces, reference.forces) << "rank " << r;
        EXPECT_EQ(got.gradients, reference.gradients) << "rank " << r;
      }
    }
  }
}

// -- trainer-level bit-identity -----------------------------------------------

std::vector<real> parity_train(int ranks, bool graph_parallel,
                               bool checkpointing,
                               obs::TelemetrySink* sink = nullptr,
                               DistTrainReport* report_out = nullptr) {
  ModelConfig config;
  config.hidden_dim = 10;
  config.num_layers = 2;
  DistTrainOptions options;
  options.num_ranks = ranks;
  options.epochs = 1;
  options.per_rank_batch_size = 4;  // the GLOBAL batch under graph_parallel
  options.strategy = DistStrategy::kDDP;
  options.graph_parallel = graph_parallel;
  options.activation_checkpointing = checkpointing;
  options.max_grad_norm = 0.0;
  options.bucket_bytes = 0;
  options.telemetry = sink;
  DistributedTrainer trainer(config, options);
  const auto store = make_store(ranks);
  const DistTrainReport report = trainer.train(*store);
  if (report_out != nullptr) *report_out = report;
  EXPECT_EQ(trainer.replica_divergence(), 0.0);
  return flatten_parameters(
      const_cast<EGNNModel&>(trainer.model()).parameters());
}

TEST(PartitionParityTest, TrainedParametersMatchSingleRankByteForByte) {
  // The headline wall: a full graph-parallel training run — partitioned
  // forward, halo exchanges, ghost-gradient reduction, plain per-rank Adam —
  // lands on the EXACT bytes of the unpartitioned single-rank run, for
  // every rank count, with and without activation checkpointing.
  for (const bool checkpointing : {false, true}) {
    const std::vector<real> reference =
        parity_train(1, /*graph_parallel=*/false, checkpointing);
    for (const int R : {1, 2, 4}) {
      EXPECT_EQ(parity_train(R, /*graph_parallel=*/true, checkpointing),
                reference)
          << "ranks=" << R << (checkpointing ? " ckpt" : "");
    }
  }
}

// -- halo telemetry -----------------------------------------------------------

TEST(GraphParallelTelemetryTest, HaloTrafficIsAccountedAndSplit) {
  obs::RecordingTelemetrySink sink;
  DistTrainReport report;
  parity_train(2, /*graph_parallel=*/true, /*checkpointing=*/false, &sink,
               &report);

  EXPECT_GT(report.halo_bytes, 0u);
  EXPECT_GT(report.halo_exchanges, 0);
  EXPECT_GT(report.steps, 0);

  std::uint64_t bytes = 0;
  std::int64_t exchanges = 0;
  double exposed = 0;
  double overlapped = 0;
  for (const obs::StepTelemetry& step : sink.steps()) {
    if (step.rank != 0) {
      // Only rank 0 attributes halo traffic (counted once per collective).
      EXPECT_EQ(step.halo_bytes, 0u);
      EXPECT_EQ(step.halo_exchanges, 0);
      continue;
    }
    EXPECT_GT(step.halo_bytes, 0u);
    EXPECT_GT(step.halo_exchanges, 0);
    // The halo split partitions the step's modeled comm time: what a rank
    // stalls on plus what the RBF compute window hid.
    EXPECT_GE(step.halo_exposed_seconds, 0.0);
    EXPECT_GE(step.halo_overlapped_seconds, 0.0);
    EXPECT_DOUBLE_EQ(
        step.halo_exposed_seconds + step.halo_overlapped_seconds,
        step.comm_seconds_modeled);
    // Every collective in a graph-parallel step IS halo traffic.
    EXPECT_EQ(step.comm_exposed_seconds, step.halo_exposed_seconds);
    EXPECT_EQ(step.comm_buckets, 0);
    bytes += step.halo_bytes;
    exchanges += step.halo_exchanges;
    exposed += step.halo_exposed_seconds;
    overlapped += step.halo_overlapped_seconds;
  }
  EXPECT_EQ(report.halo_bytes, bytes);
  EXPECT_EQ(report.halo_exchanges, exchanges);
  EXPECT_DOUBLE_EQ(report.halo_exposed_seconds, exposed);
  EXPECT_DOUBLE_EQ(report.halo_overlapped_seconds, overlapped);
}

TEST(GraphParallelTelemetryTest, ReplicatedRunsReportZeroHaloTraffic) {
  DistTrainReport report;
  parity_train(2, /*graph_parallel=*/false, /*checkpointing=*/false, nullptr,
               &report);
  EXPECT_EQ(report.halo_bytes, 0u);
  EXPECT_EQ(report.halo_exchanges, 0);
  EXPECT_EQ(report.halo_exposed_seconds, 0.0);
  EXPECT_EQ(report.halo_overlapped_seconds, 0.0);
}

// -- configuration guard rails ------------------------------------------------

TEST(GraphParallelOptionsTest, UnsupportedCombinationsFailLoudly) {
  ModelConfig config;
  config.hidden_dim = 10;
  config.num_layers = 2;
  const auto store = make_store(2);

  DistTrainOptions zero_opts;
  zero_opts.num_ranks = 2;
  zero_opts.graph_parallel = true;
  zero_opts.strategy = DistStrategy::kZeRO1;
  DistributedTrainer zero_trainer(config, zero_opts);
  EXPECT_THROW(zero_trainer.train(*store), Error);

  DistTrainOptions clip_opts;
  clip_opts.num_ranks = 2;
  clip_opts.graph_parallel = true;
  clip_opts.strategy = DistStrategy::kDDP;
  clip_opts.max_grad_norm = 1.0;
  DistributedTrainer clip_trainer(config, clip_opts);
  EXPECT_THROW(clip_trainer.train(*store), Error);
}

}  // namespace
}  // namespace sgnn
