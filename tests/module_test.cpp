#include "sgnn/nn/module.hpp"

#include <gtest/gtest.h>

#include "sgnn/nn/layers.hpp"
#include "sgnn/tensor/ops.hpp"
#include "sgnn/util/error.hpp"

namespace sgnn {
namespace {

TEST(LinearTest, ForwardShapeAndBias) {
  Rng rng(1);
  const Linear layer(4, 3, rng);
  const Tensor x = Tensor::ones(Shape{2, 4});
  const Tensor y = layer.forward(x);
  EXPECT_EQ(y.shape(), Shape({2, 3}));
  EXPECT_EQ(layer.parameters().size(), 2u);  // weight + bias
}

TEST(LinearTest, NoBiasVariant) {
  Rng rng(2);
  const Linear layer(4, 3, rng, /*bias=*/false);
  EXPECT_EQ(layer.parameters().size(), 1u);
  EXPECT_EQ(layer.num_parameters(), 12);
}

TEST(LinearTest, RejectsWrongRank) {
  Rng rng(3);
  const Linear layer(4, 3, rng);
  EXPECT_THROW(layer.forward(Tensor::ones(Shape{4})), Error);
}

TEST(LinearTest, GradientsFlowToWeightAndBias) {
  Rng rng(4);
  Linear layer(3, 2, rng);
  const Tensor x = Tensor::ones(Shape{5, 3});
  sum(layer.forward(x)).backward();
  for (const auto& p : layer.parameters()) {
    ASSERT_TRUE(p.grad().defined());
  }
  layer.zero_grad();
  for (const auto& p : layer.parameters()) {
    EXPECT_FALSE(p.grad().defined());
  }
}

TEST(MLPTest, ParameterCountAndDepth) {
  Rng rng(5);
  const MLP mlp({4, 8, 8, 2}, rng);
  // (4*8+8) + (8*8+8) + (8*2+2) = 40 + 72 + 18
  EXPECT_EQ(mlp.num_parameters(), 130);
}

TEST(MLPTest, OutputActivationApplied) {
  Rng rng(6);
  const MLP mlp({3, 4, 2}, rng, Activation::kSiLU, Activation::kTanh);
  const Tensor y = mlp.forward(Tensor::ones(Shape{10, 3}));
  for (const auto v : y.to_vector()) {
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(MLPTest, RequiresAtLeastTwoDims) {
  Rng rng(7);
  EXPECT_THROW(MLP({4}, rng), Error);
}

TEST(EmbeddingTest, LookupSelectsRows) {
  Rng rng(8);
  const Embedding emb(10, 4, rng);
  const Tensor out = emb.forward(std::vector<std::int64_t>{3, 3, 7});
  EXPECT_EQ(out.shape(), Shape({3, 4}));
  const auto v = out.to_vector();
  for (int c = 0; c < 4; ++c) EXPECT_EQ(v[static_cast<std::size_t>(c)], v[static_cast<std::size_t>(4 + c)]);
}

TEST(EmbeddingTest, GradientAccumulatesOnRepeatedIds) {
  Rng rng(9);
  Embedding emb(5, 2, rng);
  sum(emb.forward(std::vector<std::int64_t>{1, 1, 1})).backward();
  const Tensor g = emb.parameters()[0].grad();
  EXPECT_DOUBLE_EQ(g.at(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(g.at(0, 0), 0.0);
}

TEST(ModuleTest, CopyParametersFrom) {
  Rng rng_a(10);
  Rng rng_b(11);
  Linear a(3, 3, rng_a);
  Linear b(3, 3, rng_b);
  const Tensor x = Tensor::ones(Shape{1, 3});
  EXPECT_NE(a.forward(x).to_vector(), b.forward(x).to_vector());
  b.copy_parameters_from(a);
  EXPECT_EQ(a.forward(x).to_vector(), b.forward(x).to_vector());
}

TEST(ModuleTest, ParametersTaggedAsWeightMemory) {
  const auto before =
      MemoryTracker::instance().live().of(MemCategory::kWeight);
  Rng rng(12);
  const Linear layer(8, 8, rng);
  const auto after = MemoryTracker::instance().live().of(MemCategory::kWeight);
  EXPECT_EQ(after - before,
            static_cast<std::int64_t>((8 * 8 + 8) * sizeof(real)));
}

TEST(GlorotTest, BoundDependsOnFanInOut) {
  Rng rng(13);
  const Tensor w = glorot_uniform(100, 100, rng);
  const double bound = std::sqrt(6.0 / 200.0);
  for (const auto v : w.to_vector()) {
    EXPECT_GE(v, -bound);
    EXPECT_LE(v, bound);
  }
  EXPECT_TRUE(w.requires_grad());
}

}  // namespace
}  // namespace sgnn
