#include "sgnn/potential/potential.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sgnn/util/rng.hpp"

namespace sgnn {
namespace {

AtomicStructure random_molecule(std::int64_t atoms, Rng& rng,
                                bool periodic = false, double box = 8.0) {
  AtomicStructure s;
  const int palette[] = {elements::kH, elements::kC, elements::kN,
                         elements::kO};
  for (std::int64_t i = 0; i < atoms; ++i) {
    s.species.push_back(palette[rng.uniform_index(4)]);
    // Rejection-sample to avoid near-overlapping atoms (unphysical and
    // numerically harsh for finite differences).
    for (;;) {
      const Vec3 p{rng.uniform(0.5, box - 0.5), rng.uniform(0.5, box - 0.5),
                   rng.uniform(0.5, box - 0.5)};
      bool ok = true;
      for (const auto& q : s.positions) {
        if ((p - q).norm() < 0.8) {
          ok = false;
          break;
        }
      }
      if (ok) {
        s.positions.push_back(p);
        break;
      }
    }
  }
  if (periodic) {
    s.cell = {box, box, box};
    s.periodic = true;
  }
  return s;
}

Vec3 rotate_z(const Vec3& v, double angle) {
  const double c = std::cos(angle);
  const double s = std::sin(angle);
  return {c * v.x - s * v.y, s * v.x + c * v.y, v.z};
}

TEST(PotentialTest, IsolatedAtomsGiveReferenceEnergyOnly) {
  ReferencePotential pot;
  AtomicStructure s;
  s.species = {elements::kC, elements::kO};
  s.positions = {{0, 0, 0}, {100, 0, 0}};  // far beyond cutoff
  const PotentialResult r = pot.evaluate(s);
  const double expected = pot.atomic_reference_energy(elements::kC) +
                          pot.atomic_reference_energy(elements::kO);
  EXPECT_NEAR(r.energy, expected, 1e-12);
  EXPECT_NEAR(r.forces[0].norm(), 0.0, 1e-12);
  EXPECT_NEAR(r.forces[1].norm(), 0.0, 1e-12);
}

TEST(PotentialTest, BondedPairIsMoreStableThanIsolated) {
  ReferencePotential pot;
  AtomicStructure bonded;
  bonded.species = {elements::kC, elements::kC};
  const double r0 = 2 * elements::covalent_radius(elements::kC);
  bonded.positions = {{0, 0, 0}, {r0, 0, 0}};
  AtomicStructure isolated = bonded;
  isolated.positions[1].x = 100.0;
  EXPECT_LT(pot.evaluate(bonded).energy, pot.evaluate(isolated).energy);
}

TEST(PotentialTest, CloseApproachIsRepulsive) {
  ReferencePotential pot;
  AtomicStructure s;
  s.species = {elements::kO, elements::kO};
  s.positions = {{0, 0, 0}, {0.4, 0, 0}};
  const PotentialResult r = pot.evaluate(s);
  // Force on atom 1 must push it away (positive x).
  EXPECT_GT(r.forces[1].x, 0.0);
  EXPECT_LT(r.forces[0].x, 0.0);
}

TEST(PotentialTest, EnergyIsTranslationInvariant) {
  Rng rng(21);
  ReferencePotential pot;
  AtomicStructure s = random_molecule(12, rng);
  const double e0 = pot.evaluate(s).energy;
  for (auto& p : s.positions) p += Vec3{3.7, -1.2, 0.9};
  EXPECT_NEAR(pot.evaluate(s).energy, e0, 1e-10);
}

TEST(PotentialTest, EnergyIsRotationInvariantAndForcesEquivariant) {
  Rng rng(22);
  ReferencePotential pot;
  AtomicStructure s = random_molecule(10, rng);
  const PotentialResult r0 = pot.evaluate(s);
  const double angle = 0.83;
  AtomicStructure rotated = s;
  for (auto& p : rotated.positions) p = rotate_z(p, angle);
  const PotentialResult r1 = pot.evaluate(rotated);
  EXPECT_NEAR(r1.energy, r0.energy, 1e-9);
  for (std::size_t i = 0; i < s.positions.size(); ++i) {
    const Vec3 expected = rotate_z(r0.forces[i], angle);
    EXPECT_NEAR((r1.forces[i] - expected).norm(), 0.0, 1e-9);
  }
}

TEST(PotentialTest, PermutingAtomsPermutesForces) {
  Rng rng(23);
  ReferencePotential pot;
  AtomicStructure s = random_molecule(8, rng);
  const PotentialResult r0 = pot.evaluate(s);
  AtomicStructure swapped = s;
  std::swap(swapped.species[2], swapped.species[5]);
  std::swap(swapped.positions[2], swapped.positions[5]);
  const PotentialResult r1 = pot.evaluate(swapped);
  EXPECT_NEAR(r1.energy, r0.energy, 1e-10);
  EXPECT_NEAR((r1.forces[2] - r0.forces[5]).norm(), 0.0, 1e-10);
  EXPECT_NEAR((r1.forces[5] - r0.forces[2]).norm(), 0.0, 1e-10);
}

TEST(PotentialTest, NetForceIsZero) {
  // Newton's third law: internal forces must sum to zero (open system).
  Rng rng(24);
  ReferencePotential pot;
  const AtomicStructure s = random_molecule(15, rng);
  const PotentialResult r = pot.evaluate(s);
  Vec3 net{0, 0, 0};
  for (const auto& f : r.forces) net += f;
  EXPECT_NEAR(net.norm(), 0.0, 1e-9);
}

// Property: analytic forces match -dE/dx by central finite differences,
// for each term in isolation and combined, open and periodic.
struct ForceCase {
  std::string name;
  double pair_w;
  double embed_w;
  double ang_w;
  bool periodic;
};

void PrintTo(const ForceCase& c, std::ostream* os) { *os << c.name; }

class PotentialForceCheck : public ::testing::TestWithParam<ForceCase> {};

TEST_P(PotentialForceCheck, AnalyticForcesMatchFiniteDifferences) {
  const auto& c = GetParam();
  ReferencePotential::Options opt;
  opt.pair_weight = c.pair_w;
  opt.embed_weight = c.embed_w;
  opt.angular_weight = c.ang_w;
  opt.cutoff = 3.5;
  const ReferencePotential pot(opt);

  Rng rng(0xF0CE ^ std::hash<std::string>{}(c.name));
  AtomicStructure s = random_molecule(10, rng, c.periodic, 8.0);

  const PotentialResult analytic = pot.evaluate(s);
  const double eps = 1e-6;
  for (std::size_t a = 0; a < s.positions.size(); ++a) {
    double* coords[3] = {&s.positions[a].x, &s.positions[a].y,
                         &s.positions[a].z};
    const double analytic_f[3] = {analytic.forces[a].x, analytic.forces[a].y,
                                  analytic.forces[a].z};
    for (int axis = 0; axis < 3; ++axis) {
      const double original = *coords[axis];
      *coords[axis] = original + eps;
      const double ep = pot.evaluate(s).energy;
      *coords[axis] = original - eps;
      const double em = pot.evaluate(s).energy;
      *coords[axis] = original;
      const double numeric = -(ep - em) / (2 * eps);
      EXPECT_NEAR(analytic_f[axis], numeric, 1e-5)
          << c.name << ": atom " << a << " axis " << axis;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Terms, PotentialForceCheck,
    ::testing::Values(ForceCase{"pair_open", 1, 0, 0, false},
                      ForceCase{"pair_periodic", 1, 0, 0, true},
                      ForceCase{"embed_open", 0, 1, 0, false},
                      ForceCase{"embed_periodic", 0, 1, 0, true},
                      ForceCase{"angular_open", 0, 0, 1, false},
                      ForceCase{"angular_periodic", 0, 0, 1, true},
                      ForceCase{"combined_open", 1, 0.6, 0.3, false},
                      ForceCase{"combined_periodic", 1, 0.6, 0.3, true}),
    [](const ::testing::TestParamInfo<ForceCase>& param_info) {
      return param_info.param.name;
    });

TEST(PotentialTest, DeterministicAcrossInstances) {
  Rng rng(26);
  const AtomicStructure s = random_molecule(10, rng);
  const ReferencePotential a;
  const ReferencePotential b;
  EXPECT_DOUBLE_EQ(a.evaluate(s).energy, b.evaluate(s).energy);
}

TEST(PotentialTest, SeedChangesThePhysics) {
  Rng rng(27);
  const AtomicStructure s = random_molecule(10, rng);
  ReferencePotential::Options opt;
  opt.seed = 0xDEADBEEF;
  const ReferencePotential a;
  const ReferencePotential b(opt);
  EXPECT_NE(a.evaluate(s).energy, b.evaluate(s).energy);
}

}  // namespace
}  // namespace sgnn
