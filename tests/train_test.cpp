#include "sgnn/train/trainer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sgnn/data/dataset.hpp"
#include "sgnn/tensor/ops.hpp"
#include "sgnn/train/optim.hpp"

namespace sgnn {
namespace {

const ReferencePotential& shared_potential() {
  static const ReferencePotential potential;
  return potential;
}

const AggregatedDataset& tiny_dataset() {
  static const AggregatedDataset dataset = [] {
    DatasetOptions options;
    options.target_bytes = 600 << 10;
    options.seed = 23;
    return AggregatedDataset::generate(options, shared_potential());
  }();
  return dataset;
}

TEST(OptimTest, SgdDescendsQuadratic) {
  // Minimize f(w) = ||w - t||^2.
  Rng rng(1);
  Tensor w = Tensor::randn(Shape{4}, rng).set_requires_grad(true);
  const Tensor target = Tensor::from_vector({1, -2, 3, 0}, Shape{4});
  SGD sgd({w}, /*learning_rate=*/0.1);
  for (int i = 0; i < 200; ++i) {
    sgd.zero_grad();
    sum(square(w - target)).backward();
    sgd.step();
  }
  const auto values = w.to_vector();
  const auto expected = target.to_vector();
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_NEAR(values[i], expected[i], 1e-6);
  }
}

TEST(OptimTest, SgdMomentumConvergesFasterOnIllConditionedQuadratic) {
  const auto loss_after = [](double momentum) {
    Tensor w = Tensor::from_vector({5.0, 5.0}, Shape{2});
    w.set_requires_grad(true);
    // f = 10 x^2 + 0.1 y^2 via elementwise scale.
    const Tensor scales = Tensor::from_vector({10.0, 0.1}, Shape{2});
    SGD sgd({w}, 0.01, momentum);
    for (int i = 0; i < 100; ++i) {
      sgd.zero_grad();
      sum(scales * square(w)).backward();
      sgd.step();
    }
    const auto v = w.to_vector();
    return 10.0 * v[0] * v[0] + 0.1 * v[1] * v[1];
  };
  EXPECT_LT(loss_after(0.9), loss_after(0.0));
}

TEST(OptimTest, AdamMatchesReferenceImplementation) {
  // One Adam step on a known gradient, checked against hand-computed
  // values: m = 0.1 g, v = 0.001 g^2, update = lr * g/|g| (bias-corrected).
  Tensor w = Tensor::from_vector({1.0, -1.0}, Shape{2});
  w.set_requires_grad(true);
  Adam::Options options;
  options.learning_rate = 0.1;
  Adam adam({w}, options);
  // d/dw sum(2 w) = 2.
  sum(w * 2.0).backward();
  adam.step();
  // m_hat = g, v_hat = g^2, step = lr * g / (|g| + eps) = lr * sign(g).
  EXPECT_NEAR(w.to_vector()[0], 1.0 - 0.1, 1e-7);
  EXPECT_NEAR(w.to_vector()[1], -1.0 - 0.1, 1e-7);
}

TEST(OptimTest, AdamStatesAreOptimizerStateMemory) {
  const auto before =
      MemoryTracker::instance().live().of(MemCategory::kOptimizerState);
  Rng rng(2);
  Tensor w = Tensor::randn(Shape{128}, rng).set_requires_grad(true);
  Adam adam({w}, {});
  const auto after =
      MemoryTracker::instance().live().of(MemCategory::kOptimizerState);
  // Two moments, each the size of the parameters: the paper's "twice the
  // size of the model weights".
  EXPECT_EQ(after - before,
            static_cast<std::int64_t>(2 * 128 * sizeof(real)));
}

TEST(OptimTest, UndefinedGradientsAreSkipped) {
  Tensor used = Tensor::scalar(1.0).set_requires_grad(true);
  Tensor untouched = Tensor::scalar(5.0).set_requires_grad(true);
  Adam adam({used, untouched}, {});
  square(used).backward();
  adam.step();
  EXPECT_NE(used.item(), 1.0);
  EXPECT_EQ(untouched.item(), 5.0);
}

TEST(OptimTest, RejectsNonLeafParameters) {
  Tensor w = Tensor::scalar(1.0).set_requires_grad(true);
  Tensor derived = w * 2.0;
  EXPECT_THROW(SGD({derived}, 0.1), Error);
}

TEST(TrainerTest, LossDecreasesOverTraining) {
  const auto& dataset = tiny_dataset();
  const auto split = dataset.split(0.25, 5);

  ModelConfig config;
  config.hidden_dim = 24;
  config.num_layers = 2;
  EGNNModel model(config);

  TrainOptions options;
  options.epochs = 12;
  options.batch_size = 4;
  options.adam.learning_rate = 3e-3;
  options.lr_decay = 1.0;  // constant LR: this run is about raw progress
  Trainer trainer(model, options);
  trainer.set_energy_baseline(EnergyBaseline::fit(dataset.view(split.train)));

  DataLoader loader(dataset.view(split.train), options.batch_size, 77);
  const EvalMetrics before =
      trainer.evaluate(dataset.view(split.test), 8);
  const auto history = trainer.fit(loader);
  const EvalMetrics after = trainer.evaluate(dataset.view(split.test), 8);

  ASSERT_EQ(history.size(), 12u);
  EXPECT_LT(history.back().mean_train_loss, history.front().mean_train_loss);
  EXPECT_LT(after.loss, before.loss);
  EXPECT_LT(after.loss, 0.6 * before.loss) << "training barely improved";
}

TEST(TrainerTest, CheckpointedTrainingMatchesPlainLossTrajectory) {
  const auto& dataset = tiny_dataset();
  const auto split = dataset.split(0.25, 5);

  const auto run = [&](bool ckpt) {
    ModelConfig config;
    config.hidden_dim = 12;
    config.num_layers = 2;
    EGNNModel model(config);
    TrainOptions options;
    options.epochs = 2;
    options.batch_size = 4;
    options.activation_checkpointing = ckpt;
    Trainer trainer(model, options);
    DataLoader loader(dataset.view(split.train), options.batch_size, 11);
    const auto history = trainer.fit(loader);
    return history.back().mean_train_loss;
  };

  // Same arithmetic, same order: identical loss trajectories.
  EXPECT_DOUBLE_EQ(run(false), run(true));
}

TEST(TrainerTest, EvaluateIsIndependentOfBatchSize) {
  const auto& dataset = tiny_dataset();
  const auto split = dataset.split(0.25, 5);
  ModelConfig config;
  config.hidden_dim = 12;
  config.num_layers = 2;
  EGNNModel model(config);
  const Trainer trainer(model, TrainOptions{});
  const auto view = dataset.view(split.test);
  const EvalMetrics a = trainer.evaluate(view, 1);
  const EvalMetrics b = trainer.evaluate(view, 16);
  EXPECT_NEAR(a.energy_mae_per_atom, b.energy_mae_per_atom, 1e-9);
  EXPECT_NEAR(a.force_mae, b.force_mae, 1e-9);
}

TEST(TrainerTest, WarmupCosineScheduleDrivesTheOptimizer) {
  const auto& dataset = tiny_dataset();
  const auto split = dataset.split(0.25, 5);
  ModelConfig config;
  config.hidden_dim = 12;
  config.num_layers = 2;
  EGNNModel model(config);
  TrainOptions options;
  options.epochs = 8;
  options.batch_size = 4;
  options.schedule = LrSchedule::warmup_cosine(3e-3, 4, 24);
  options.max_grad_norm = 5.0;
  Trainer trainer(model, options);
  trainer.set_energy_baseline(EnergyBaseline::fit(dataset.view(split.train)));
  DataLoader loader(dataset.view(split.train), options.batch_size, 11);
  const auto history = trainer.fit(loader);
  ASSERT_EQ(history.size(), 8u);
  // Epoch-level train loss is noisy on this tiny set; the best late-run
  // epoch must still clearly beat the first (warmup) epoch.
  const double late_best = std::min(history[6].mean_train_loss,
                                    history[7].mean_train_loss);
  EXPECT_LT(late_best, history.front().mean_train_loss);
}

TEST(TrainerTest, GradClippingKeepsTrainingFiniteAtHighLr) {
  // An aggressively high learning rate with clipping must not blow up to
  // NaN within a few epochs (it may not learn much — the point is
  // stability).
  const auto& dataset = tiny_dataset();
  const auto split = dataset.split(0.25, 5);
  ModelConfig config;
  config.hidden_dim = 12;
  config.num_layers = 2;
  EGNNModel model(config);
  TrainOptions options;
  options.epochs = 2;
  options.batch_size = 4;
  options.adam.learning_rate = 5e-2;
  options.max_grad_norm = 1.0;
  Trainer trainer(model, options);
  trainer.set_energy_baseline(EnergyBaseline::fit(dataset.view(split.train)));
  DataLoader loader(dataset.view(split.train), options.batch_size, 11);
  const auto history = trainer.fit(loader);
  EXPECT_TRUE(std::isfinite(history.back().mean_train_loss));
  for (const auto& p : model.parameters()) {
    for (const auto v : p.to_vector()) {
      ASSERT_TRUE(std::isfinite(v));
    }
  }
}

TEST(LossTest, PerfectPredictionGivesZeroLoss) {
  const auto& dataset = tiny_dataset();
  const GraphBatch batch =
      GraphBatch::from_graphs(dataset.view({0, 1, 2}));
  EGNNModel::Output perfect;
  perfect.energy = batch.energy.clone();
  perfect.forces = batch.forces.clone();
  const LossTerms terms = multitask_loss(perfect, batch, LossWeights{});
  EXPECT_NEAR(terms.total.item(), 0.0, 1e-12);
  EXPECT_NEAR(terms.energy_mse, 0.0, 1e-12);
  EXPECT_NEAR(terms.force_mse, 0.0, 1e-12);
}

TEST(LossTest, WeightsScaleTheTasks) {
  const auto& dataset = tiny_dataset();
  const GraphBatch batch = GraphBatch::from_graphs(dataset.view({0, 1}));
  EGNNModel::Output off;
  off.energy = batch.energy + 1.0;  // constant energy error
  off.forces = batch.forces.clone();
  LossWeights weights;
  weights.energy = 2.0;
  weights.force = 100.0;
  const LossTerms terms = multitask_loss(off, batch, weights);
  // Force error is zero, so the total is exactly 2 x energy MSE.
  EXPECT_NEAR(terms.total.item(), 2.0 * terms.energy_mse, 1e-12);
}

TEST(LossTest, EnergyNormalizationUsesAtomCounts) {
  const auto& dataset = tiny_dataset();
  const GraphBatch batch = GraphBatch::from_graphs(dataset.view({0}));
  EGNNModel::Output off;
  const auto n = static_cast<double>(batch.num_nodes);
  off.energy = batch.energy + n;  // error of exactly 1 eV/atom
  off.forces = batch.forces.clone();
  const LossTerms terms = multitask_loss(off, batch, LossWeights{});
  EXPECT_NEAR(terms.energy_mse, 1.0, 1e-9);
}

TEST(LossTest, GradientFlowsThroughLoss) {
  const auto& dataset = tiny_dataset();
  const GraphBatch batch = GraphBatch::from_graphs(dataset.view({0, 1}));
  ModelConfig config;
  config.hidden_dim = 8;
  config.num_layers = 1;
  EGNNModel model(config);
  const auto out = model.forward(batch);
  LossTerms terms = multitask_loss(out, batch, LossWeights{});
  terms.total.backward();
  bool any = false;
  for (const auto& p : model.parameters()) {
    if (p.grad().defined()) any = true;
  }
  EXPECT_TRUE(any);
}

TEST(MetricsTest, AccumulatorWeightsBySize) {
  MetricAccumulator acc;
  EvalMetrics a;
  a.loss = 1.0;
  a.energy_mae_per_atom = 1.0;
  a.force_mae = 2.0;
  a.num_graphs = 1;
  a.num_nodes = 10;
  EvalMetrics b;
  b.loss = 3.0;
  b.energy_mae_per_atom = 3.0;
  b.force_mae = 4.0;
  b.num_graphs = 3;
  b.num_nodes = 30;
  acc.add(a);
  acc.add(b);
  const EvalMetrics mean = acc.mean();
  EXPECT_DOUBLE_EQ(mean.loss, 2.0);                       // per batch
  EXPECT_DOUBLE_EQ(mean.energy_mae_per_atom, 2.5);        // per graph
  EXPECT_DOUBLE_EQ(mean.force_mae, 3.5);                  // per node
}

}  // namespace
}  // namespace sgnn
