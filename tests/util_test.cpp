#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "sgnn/util/error.hpp"
#include "sgnn/util/logging.hpp"
#include "sgnn/util/rng.hpp"
#include "sgnn/util/table.hpp"
#include "sgnn/util/timer.hpp"

namespace sgnn {
namespace {

TEST(ErrorTest, CheckMacroThrowsWithContext) {
  try {
    SGNN_CHECK(1 == 2, "custom message " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom message 42"), std::string::npos);
    EXPECT_NE(what.find("util_test.cpp"), std::string::npos);
  }
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, UniformIndexCoversRangeWithoutBias) {
  Rng rng(8);
  std::vector<int> counts(5, 0);
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) {
    ++counts[rng.uniform_index(5)];
  }
  for (const auto c : counts) {
    EXPECT_NEAR(static_cast<double>(c), draws / 5.0, draws * 0.02);
  }
  EXPECT_THROW(rng.uniform_index(0), Error);
}

TEST(RngTest, NormalHasUnitMoments) {
  Rng rng(9);
  double sum = 0;
  double sum_sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, SplitProducesIndependentStreams) {
  Rng parent(42);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  // The two children and the parent should all produce distinct sequences.
  std::set<std::uint64_t> values;
  for (int i = 0; i < 16; ++i) {
    values.insert(parent.next_u64());
    values.insert(child1.next_u64());
    values.insert(child2.next_u64());
  }
  EXPECT_EQ(values.size(), 48u);
}

TEST(LoggerTest, ParseLevelAcceptsKnownNamesAndFallsBack) {
  EXPECT_EQ(Logger::parse_level("debug", LogLevel::kOff), LogLevel::kDebug);
  EXPECT_EQ(Logger::parse_level("info", LogLevel::kOff), LogLevel::kInfo);
  EXPECT_EQ(Logger::parse_level("warn", LogLevel::kOff), LogLevel::kWarn);
  EXPECT_EQ(Logger::parse_level("warning", LogLevel::kOff), LogLevel::kWarn);
  EXPECT_EQ(Logger::parse_level("error", LogLevel::kOff), LogLevel::kError);
  EXPECT_EQ(Logger::parse_level("off", LogLevel::kInfo), LogLevel::kOff);
  EXPECT_EQ(Logger::parse_level("none", LogLevel::kInfo), LogLevel::kOff);
  EXPECT_EQ(Logger::parse_level("bogus", LogLevel::kWarn), LogLevel::kWarn);
  EXPECT_EQ(Logger::parse_level("", LogLevel::kError), LogLevel::kError);
}

TEST(LoggerTest, FormatCarriesTimestampLevelAndRank) {
  Logger& logger = Logger::instance();
  const std::string plain = logger.format(LogLevel::kInfo, "hello");
  // ISO-8601 UTC timestamp prefix: "YYYY-MM-DDTHH:MM:SS.mmmZ [info ] hello".
  ASSERT_GE(plain.size(), 24u);
  EXPECT_EQ(plain[4], '-');
  EXPECT_EQ(plain[10], 'T');
  EXPECT_EQ(plain[23], 'Z');
  EXPECT_NE(plain.find("[info ]"), std::string::npos);
  EXPECT_NE(plain.find("hello"), std::string::npos);
  EXPECT_EQ(plain.find("[rank"), std::string::npos);

  Logger::set_thread_rank(3);
  const std::string ranked = logger.format(LogLevel::kWarn, "shard");
  EXPECT_NE(ranked.find("[warn ] [rank 3] shard"), std::string::npos);
  Logger::set_thread_rank(-1);
}

TEST(LoggerTest, ThreadRankIsPerThread) {
  Logger::set_thread_rank(7);
  int other_thread_rank = -2;
  std::thread worker([&] { other_thread_rank = Logger::thread_rank(); });
  worker.join();
  EXPECT_EQ(other_thread_rank, -1);
  EXPECT_EQ(Logger::thread_rank(), 7);
  Logger::set_thread_rank(-1);
}

TEST(LoggerTest, Iso8601NowIsWellFormed) {
  const std::string ts = Logger::iso8601_now();
  ASSERT_EQ(ts.size(), 24u);
  EXPECT_EQ(ts[4], '-');
  EXPECT_EQ(ts[7], '-');
  EXPECT_EQ(ts[10], 'T');
  EXPECT_EQ(ts[13], ':');
  EXPECT_EQ(ts[16], ':');
  EXPECT_EQ(ts[19], '.');
  EXPECT_EQ(ts[23], 'Z');
}

TEST(TableTest, AsciiLayoutAlignsColumns) {
  Table t({"A", "Long header"});
  t.add_row({"xxxxxxx", "1"});
  const std::string out = t.to_ascii("Title");
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("| A "), std::string::npos);
  EXPECT_NE(out.find("xxxxxxx"), std::string::npos);
  // Every rendered line between rules has the same width.
  std::size_t first_len = std::string::npos;
  std::istringstream stream(out);
  std::string line;
  std::getline(stream, line);  // title
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    if (first_len == std::string::npos) first_len = line.size();
    EXPECT_EQ(line.size(), first_len);
  }
}

TEST(TableTest, RowArityMismatchThrows) {
  Table t({"A", "B"});
  EXPECT_THROW(t.add_row({"only one"}), Error);
}

TEST(TableTest, CsvExport) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n3,4\n");
}

TEST(TableTest, HumanBytes) {
  EXPECT_EQ(Table::human_bytes(512), "512 B");
  EXPECT_EQ(Table::human_bytes(25.0 * 1024 * 1024 * 1024), "25.0 GB");
  EXPECT_EQ(Table::human_bytes(1.2 * 1024 * 1024 * 1024 * 1024), "1.20 TB");
}

TEST(TableTest, HumanCount) {
  EXPECT_EQ(Table::human_count(999), "999");
  EXPECT_EQ(Table::human_count(2.0e9), "2.00 B");
  EXPECT_EQ(Table::human_count(1.54e8), "154 M");
}

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(timer.milliseconds(), 15.0);
  timer.reset();
  EXPECT_LT(timer.milliseconds(), 15.0);
}

}  // namespace
}  // namespace sgnn
