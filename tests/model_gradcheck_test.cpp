// End-to-end gradient verification: the autograd gradient of the full
// training loss with respect to EVERY model parameter is compared against
// central finite differences, for the EGNN (all kernels and both force
// heads) and the GraphTransformer. This is the strongest correctness test
// in the suite — it exercises every op's backward in composition, exactly
// as training uses them.

#include <gtest/gtest.h>

#include <cmath>

#include "sgnn/data/sources.hpp"
#include "sgnn/graph/batch.hpp"
#include "sgnn/nn/egnn.hpp"
#include "sgnn/nn/transformer.hpp"
#include "sgnn/tensor/ops.hpp"
#include "sgnn/train/loss.hpp"
#include "sgnn/util/rng.hpp"

namespace sgnn {
namespace {

GraphBatch tiny_batch() {
  const ReferencePotential potential;
  Rng rng(17);
  std::vector<MolecularGraph> graphs = {
      generate_sample(DataSource::kANI1x, rng, potential),
      generate_sample(DataSource::kMPTrj, rng, potential)};
  return GraphBatch::from_graphs(graphs);
}

/// Checks d(loss)/d(theta) against central differences for every scalar
/// parameter of `model` (models are small enough to afford it).
template <typename Model, typename LossFn>
void check_model_gradients(const Model& model, const LossFn& loss_fn,
                           double eps = 1e-6, double tolerance = 2e-5) {
  // Analytic gradients.
  loss_fn().backward();
  auto params = model.parameters();

  std::int64_t checked = 0;
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    Tensor& p = params[pi];
    const Tensor grad = p.grad();
    // Parameters on dead paths (last layer's coordinate gate) have no
    // gradient; finite differences would also see ~0 slope — skip.
    if (!grad.defined()) continue;
    const real* g = grad.data();
    for (std::int64_t i = 0; i < p.numel(); ++i) {
      const real original = p.data()[i];
      p.data()[i] = original + static_cast<real>(eps);
      const double plus = [&] {
        const autograd::NoGradGuard no_grad;
        return loss_fn().item();
      }();
      p.data()[i] = original - static_cast<real>(eps);
      const double minus = [&] {
        const autograd::NoGradGuard no_grad;
        return loss_fn().item();
      }();
      p.data()[i] = original;
      const double numeric = (plus - minus) / (2 * eps);
      const double scale =
          std::max({std::abs(numeric), std::abs(double(g[i])), 1.0});
      ASSERT_NEAR(g[i] / scale, numeric / scale, tolerance)
          << "parameter tensor " << pi << " element " << i;
      ++checked;
    }
  }
  EXPECT_GT(checked, 100) << "suspiciously few parameters were checked";
  for (auto& p : params) p.zero_grad();
}

struct EgnnCase {
  std::string name;
  MessagePassingKernel kernel;
  ForceHead head;
  bool residual;
};

void PrintTo(const EgnnCase& c, std::ostream* os) { *os << c.name; }

class ModelGradcheck : public ::testing::TestWithParam<EgnnCase> {};

TEST_P(ModelGradcheck, LossGradientsMatchFiniteDifferences) {
  const EgnnCase& c = GetParam();
  ModelConfig config;
  config.hidden_dim = 5;
  config.num_layers = 2;
  config.kernel = c.kernel;
  config.force_head = c.head;
  config.residual = c.residual;
  config.predict_dipole = true;  // exercise all three heads
  config.num_species = 96;
  const EGNNModel model(config);
  const GraphBatch batch = tiny_batch();

  const auto loss_fn = [&] {
    LossTerms terms =
        multitask_loss(model.forward(batch), batch, LossWeights{});
    return terms.total;
  };
  check_model_gradients(model, loss_fn);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ModelGradcheck,
    ::testing::Values(
        EgnnCase{"egnn_edgehead_residual", MessagePassingKernel::kEGNN,
                 ForceHead::kEquivariantEdge, true},
        EgnnCase{"egnn_nodehead_plain", MessagePassingKernel::kEGNN,
                 ForceHead::kNodeMLP, false},
        EgnnCase{"schnet_edgehead", MessagePassingKernel::kSchNet,
                 ForceHead::kEquivariantEdge, true},
        EgnnCase{"gat_edgehead", MessagePassingKernel::kGAT,
                 ForceHead::kEquivariantEdge, true}),
    [](const ::testing::TestParamInfo<EgnnCase>& param_info) {
      return param_info.param.name;
    });

TEST(ModelGradcheckTest, TransformerLossGradientsMatchFiniteDifferences) {
  TransformerConfig config;
  config.hidden_dim = 5;
  config.num_layers = 2;
  const GraphTransformer model(config);
  const GraphBatch batch = tiny_batch();

  const auto loss_fn = [&] {
    const auto out = model.forward(batch);
    LossTerms terms =
        multitask_loss(out.energy, out.forces, batch, LossWeights{});
    return terms.total;
  };
  check_model_gradients(model, loss_fn);
}

TEST(ModelGradcheckTest, FrozenParameterPositionGradientsMatchFiniteDifferences) {
  // The serving force path: every parameter frozen, positions the only
  // leaf. Backward must produce a correct dE/dx and accumulate nothing
  // into the weights.
  ModelConfig config;
  config.hidden_dim = 5;
  config.num_layers = 2;
  const EGNNModel model(config);
  for (auto& p : model.parameters()) p.set_requires_grad(false);

  GraphBatch batch = tiny_batch();
  batch.positions.set_requires_grad(true);
  sum(model.forward(batch).energy).backward();

  const Tensor grad = batch.positions.grad();
  ASSERT_TRUE(grad.defined());
  for (const auto& p : model.parameters()) {
    EXPECT_FALSE(p.grad().defined()) << "frozen parameter accumulated grad";
  }

  const double eps = 1e-6;
  for (std::int64_t i = 0; i < batch.positions.numel(); ++i) {
    const real original = batch.positions.data()[i];
    const auto energy_at = [&](double x) {
      batch.positions.data()[i] = static_cast<real>(x);
      const autograd::NoGradGuard no_grad;
      return sum(model.forward(batch).energy).item();
    };
    const double plus = energy_at(original + eps);
    const double minus = energy_at(original - eps);
    batch.positions.data()[i] = original;
    const double numeric = (plus - minus) / (2 * eps);
    const double g = grad.data()[i];
    const double scale = std::max({std::abs(numeric), std::abs(g), 1.0});
    ASSERT_NEAR(g / scale, numeric / scale, 2e-5) << "coordinate " << i;
  }
}

TEST(ModelGradcheckTest, CheckpointedForwardHasIdenticalGradients) {
  // Not just close: the checkpointed path re-runs the same kernels on the
  // same values, so gradients are bitwise equal.
  ModelConfig config;
  config.hidden_dim = 6;
  config.num_layers = 3;
  const EGNNModel model(config);
  const GraphBatch batch = tiny_batch();

  const auto grads_with = [&](bool ckpt) {
    EGNNModel::ForwardOptions options;
    options.activation_checkpointing = ckpt;
    LossTerms terms =
        multitask_loss(model.forward(batch, options), batch, LossWeights{});
    terms.total.backward();
    std::vector<std::vector<real>> grads;
    for (auto& p : model.parameters()) {
      grads.push_back(p.grad().defined() ? p.grad().to_vector()
                                         : std::vector<real>{});
      p.zero_grad();
    }
    return grads;
  };
  EXPECT_EQ(grads_with(false), grads_with(true));
}

}  // namespace
}  // namespace sgnn
