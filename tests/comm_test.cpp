#include "sgnn/comm/communicator.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "sgnn/util/error.hpp"

namespace sgnn {
namespace {

/// Runs `body(rank)` on num_ranks threads and joins.
template <typename Body>
void run_ranks(int num_ranks, Body body) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) threads.emplace_back(body, r);
  for (auto& t : threads) t.join();
}

class CommRankSweep : public ::testing::TestWithParam<int> {};

TEST_P(CommRankSweep, AllReduceMatchesSequentialSum) {
  const int R = GetParam();
  Communicator comm(R);
  const std::size_t n = 37;  // deliberately not divisible by R
  std::vector<std::vector<real>> data(static_cast<std::size_t>(R));
  for (int r = 0; r < R; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      data[static_cast<std::size_t>(r)].push_back(
          static_cast<real>(r * 100) + static_cast<real>(i));
    }
  }
  run_ranks(R, [&](int rank) {
    comm.all_reduce_sum(rank, data[static_cast<std::size_t>(rank)]);
  });
  for (std::size_t i = 0; i < n; ++i) {
    real expected = 0;
    for (int r = 0; r < R; ++r) {
      expected += static_cast<real>(r * 100) + static_cast<real>(i);
    }
    for (int r = 0; r < R; ++r) {
      EXPECT_DOUBLE_EQ(data[static_cast<std::size_t>(r)][i], expected)
          << "rank " << r << " element " << i;
    }
  }
}

TEST_P(CommRankSweep, ReduceScatterThenAllGatherReconstructsSum) {
  const int R = GetParam();
  Communicator comm(R);
  const std::size_t n = 41;
  std::vector<std::vector<real>> input(static_cast<std::size_t>(R));
  for (int r = 0; r < R; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      input[static_cast<std::size_t>(r)].push_back(
          static_cast<real>((r + 1)) * static_cast<real>(i));
    }
  }
  std::vector<std::vector<real>> reconstructed(static_cast<std::size_t>(R));
  run_ranks(R, [&](int rank) {
    const auto shard =
        comm.reduce_scatter_sum(rank, input[static_cast<std::size_t>(rank)]);
    reconstructed[static_cast<std::size_t>(rank)] =
        comm.all_gather(rank, shard);
  });
  for (int r = 0; r < R; ++r) {
    ASSERT_EQ(reconstructed[static_cast<std::size_t>(r)].size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      real expected = 0;
      for (int s = 0; s < R; ++s) {
        expected += static_cast<real>(s + 1) * static_cast<real>(i);
      }
      EXPECT_DOUBLE_EQ(reconstructed[static_cast<std::size_t>(r)][i],
                       expected);
    }
  }
}

TEST_P(CommRankSweep, BroadcastReplicatesRoot) {
  const int R = GetParam();
  Communicator comm(R);
  const int root = R - 1;
  std::vector<std::vector<real>> data(static_cast<std::size_t>(R));
  for (int r = 0; r < R; ++r) {
    data[static_cast<std::size_t>(r)] = {static_cast<real>(r),
                                         static_cast<real>(r * 2)};
  }
  run_ranks(R, [&](int rank) {
    comm.broadcast(rank, data[static_cast<std::size_t>(rank)], root);
  });
  for (int r = 0; r < R; ++r) {
    EXPECT_EQ(data[static_cast<std::size_t>(r)],
              (std::vector<real>{static_cast<real>(root),
                                 static_cast<real>(root * 2)}));
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, CommRankSweep, ::testing::Values(1, 2, 3, 4, 7));

TEST(CommTest, ShardRangeBalancedPartition) {
  // 10 elements over 4 ranks: 3, 3, 2, 2.
  EXPECT_EQ(Communicator::shard_range(10, 0, 4), (std::pair<std::size_t, std::size_t>{0, 3}));
  EXPECT_EQ(Communicator::shard_range(10, 1, 4), (std::pair<std::size_t, std::size_t>{3, 6}));
  EXPECT_EQ(Communicator::shard_range(10, 2, 4), (std::pair<std::size_t, std::size_t>{6, 8}));
  EXPECT_EQ(Communicator::shard_range(10, 3, 4), (std::pair<std::size_t, std::size_t>{8, 10}));
  // Full coverage property across sizes and rank counts.
  for (const std::size_t n : {0u, 1u, 5u, 16u, 97u}) {
    for (const int ranks : {1, 2, 3, 8}) {
      std::size_t covered = 0;
      std::size_t expected_begin = 0;
      for (int r = 0; r < ranks; ++r) {
        const auto [begin, end] = Communicator::shard_range(n, r, ranks);
        EXPECT_EQ(begin, expected_begin);
        covered += end - begin;
        expected_begin = end;
      }
      EXPECT_EQ(covered, n);
    }
  }
}

TEST(CommTest, TrafficCountsPayloadOncePerCall) {
  const int R = 4;
  Communicator comm(R);
  std::vector<std::vector<real>> data(
      R, std::vector<real>(100, real{1}));
  run_ranks(R, [&](int rank) {
    comm.all_reduce_sum(rank, data[static_cast<std::size_t>(rank)]);
    comm.all_reduce_sum(rank, data[static_cast<std::size_t>(rank)]);
  });
  const auto traffic = comm.traffic();
  EXPECT_EQ(traffic.all_reduce_bytes, 2 * 100 * sizeof(real));
  EXPECT_EQ(traffic.collective_calls, 2u);
  comm.reset_traffic();
  EXPECT_EQ(comm.traffic().total_bytes(), 0u);
}

TEST(CommTest, BarrierSynchronizesPhases) {
  const int R = 3;
  Communicator comm(R);
  std::atomic<int> phase_counter{0};
  std::atomic<bool> violated{false};
  run_ranks(R, [&](int) {
    phase_counter.fetch_add(1);
    comm.barrier();
    // After the barrier every rank must observe all R arrivals.
    if (phase_counter.load() != R) violated = true;
    comm.barrier();
  });
  EXPECT_FALSE(violated.load());
}

TEST(InterconnectModelTest, SecondsMatchesHandComputedKnownTraffic) {
  // Pins the comm-time model against hand-derived numbers so the
  // bandwidth/latency split cannot silently regress (the aggregate report
  // used to fold per-call latency into the bandwidth terms AND add it
  // again from the call counts, double-counting it).
  InterconnectModel model;
  model.link_bandwidth_bytes_per_s = 100.0;
  model.latency_seconds = 0.5;
  const int R = 4;

  // Bandwidth terms are pure: zero bytes cost zero regardless of latency.
  EXPECT_DOUBLE_EQ(model.all_reduce_seconds(0, R), 0.0);
  EXPECT_DOUBLE_EQ(model.broadcast_seconds(0, R), 0.0);
  // Ring all-reduce: 2(R-1) steps of n/R bytes = 6 * (400/4/100) = 6 s.
  EXPECT_DOUBLE_EQ(model.all_reduce_seconds(400, R), 6.0);
  // Ring reduce-scatter / all-gather: (R-1) steps of n/R bytes.
  EXPECT_DOUBLE_EQ(model.reduce_scatter_seconds(200, R), 1.5);
  EXPECT_DOUBLE_EQ(model.all_gather_seconds(100, R), 0.75);
  EXPECT_DOUBLE_EQ(model.broadcast_seconds(50, R), 0.5);
  // Per-call launch latency: steps x latency_seconds.
  EXPECT_DOUBLE_EQ(model.all_reduce_latency_seconds(R), 3.0);
  EXPECT_DOUBLE_EQ(model.reduce_scatter_latency_seconds(R), 1.5);
  EXPECT_DOUBLE_EQ(model.all_gather_latency_seconds(R), 1.5);
  EXPECT_DOUBLE_EQ(model.broadcast_latency_seconds(R), 1.5);

  Communicator::Traffic traffic;
  traffic.all_reduce_bytes = 400;
  traffic.all_reduce_calls = 2;
  traffic.reduce_scatter_bytes = 200;
  traffic.reduce_scatter_calls = 1;
  traffic.all_gather_bytes = 100;
  traffic.all_gather_calls = 3;
  traffic.broadcast_bytes = 50;
  traffic.broadcast_calls = 1;
  // bandwidth: 6 + 1.5 + 0.75 + 0.5 = 8.75
  // latency:   2*3 + 1*1.5 + 3*1.5 + 1*1.5 = 13.5
  EXPECT_DOUBLE_EQ(model.seconds(traffic, R), 8.75 + 13.5);
  // A single rank never touches the fabric.
  EXPECT_DOUBLE_EQ(model.seconds(traffic, 1), 0.0);
}

TEST(InterconnectModelTest, SecondsIsAdditiveOverTrafficDeltas) {
  // The per-step accounting sums seconds(delta) over steps and must equal
  // seconds(aggregate) — the property the trainer report relies on.
  InterconnectModel model;
  model.link_bandwidth_bytes_per_s = 977.0;
  model.latency_seconds = 1.0e-3;
  Communicator::Traffic first;
  first.all_reduce_bytes = 1234;
  first.all_reduce_calls = 3;
  first.broadcast_bytes = 77;
  first.broadcast_calls = 1;
  Communicator::Traffic total = first;
  total.all_reduce_bytes += 555;
  total.all_reduce_calls += 1;
  total.all_gather_bytes += 901;
  total.all_gather_calls += 2;
  const Communicator::Traffic delta = total.since(first);
  EXPECT_EQ(delta.all_reduce_bytes, 555u);
  EXPECT_EQ(delta.all_reduce_calls, 1u);
  EXPECT_EQ(delta.all_gather_bytes, 901u);
  EXPECT_EQ(delta.broadcast_bytes, 0u);
  EXPECT_DOUBLE_EQ(model.seconds(first, 8) + model.seconds(delta, 8),
                   model.seconds(total, 8));
}

TEST(CommunicatorTest, CollectivesRejectOutOfRangeRanks) {
  // The bounds checks fire before any barrier is entered, so a bad rank
  // fails fast instead of deadlocking the collective.
  Communicator comm(2);
  std::vector<real> data(4, 1.0);
  EXPECT_THROW(comm.all_reduce_sum(-1, data), Error);
  EXPECT_THROW(comm.all_reduce_sum(2, data), Error);
  EXPECT_THROW(comm.reduce_scatter_sum(5, data), Error);
  EXPECT_THROW(comm.all_gather(-3, data), Error);
  EXPECT_THROW(comm.broadcast(2, data, 0), Error);
  EXPECT_THROW(comm.broadcast(-1, data, 0), Error);
  // A valid rank with an out-of-range root is rejected the same way.
  EXPECT_THROW(comm.broadcast(0, data, 7), Error);
  EXPECT_THROW(comm.broadcast(0, data, -1), Error);
}

// -- non-blocking collectives -------------------------------------------------

TEST(NonBlockingCommTest, IallReduceMatchesBlockingAndCountsOncePerOp) {
  const int R = 3;
  Communicator comm(R);
  const std::size_t n = 50;
  std::vector<std::vector<real>> data(static_cast<std::size_t>(R));
  for (int r = 0; r < R; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      data[static_cast<std::size_t>(r)].push_back(
          static_cast<real>(r * 10) + static_cast<real>(i));
    }
  }
  run_ranks(R, [&](int rank) {
    CollectiveHandle handle =
        comm.iall_reduce_sum(rank, data[static_cast<std::size_t>(rank)]);
    ASSERT_TRUE(handle.valid());
    handle.wait();
    EXPECT_TRUE(handle.test());  // complete and still queryable after wait
  });
  for (std::size_t i = 0; i < n; ++i) {
    real expected = 0;
    for (int r = 0; r < R; ++r) {
      expected += static_cast<real>(r * 10) + static_cast<real>(i);
    }
    for (int r = 0; r < R; ++r) {
      EXPECT_DOUBLE_EQ(data[static_cast<std::size_t>(r)][i], expected);
    }
  }
  // One logical collective: the payload is counted once at execution, not
  // once per posting rank and not again at wait().
  const auto traffic = comm.traffic();
  EXPECT_EQ(traffic.all_reduce_bytes, n * sizeof(real));
  EXPECT_EQ(traffic.all_reduce_calls, 1u);
  EXPECT_EQ(traffic.collective_calls, 1u);
}

TEST(NonBlockingCommTest, ScatterGatherCountsTileTheVectorAndCountOnce) {
  const int R = 4;
  Communicator comm(R);
  const std::size_t n = 10;
  std::vector<std::size_t> counts;
  for (int r = 0; r < R; ++r) {
    const auto [begin, end] = Communicator::shard_range(n, r, R);
    counts.push_back(end - begin);
  }
  std::vector<std::vector<real>> input(static_cast<std::size_t>(R));
  for (int r = 0; r < R; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      input[static_cast<std::size_t>(r)].push_back(
          static_cast<real>(r + 1) * static_cast<real>(i));
    }
  }
  std::vector<real> full_sum(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (int r = 0; r < R; ++r) {
      full_sum[i] += static_cast<real>(r + 1) * static_cast<real>(i);
    }
  }
  std::vector<std::vector<real>> gathered(static_cast<std::size_t>(R));
  run_ranks(R, [&](int rank) {
    const auto ri = static_cast<std::size_t>(rank);
    std::vector<real> piece(counts[ri]);
    comm.ireduce_scatter_counts(rank, input[ri], counts, piece).wait();
    const auto [begin, end] = Communicator::shard_range(n, rank, R);
    ASSERT_EQ(piece.size(), end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      EXPECT_DOUBLE_EQ(piece[i - begin], full_sum[i]);
    }
    comm.iall_gather_counts(rank, piece, counts, gathered[ri]).wait();
  });
  for (int r = 0; r < R; ++r) {
    EXPECT_EQ(gathered[static_cast<std::size_t>(r)], full_sum);
  }
  const auto traffic = comm.traffic();
  EXPECT_EQ(traffic.reduce_scatter_bytes, n * sizeof(real));
  EXPECT_EQ(traffic.reduce_scatter_calls, 1u);
  EXPECT_EQ(traffic.all_gather_bytes, n * sizeof(real));
  EXPECT_EQ(traffic.all_gather_calls, 1u);
  EXPECT_EQ(traffic.collective_calls, 2u);
}

TEST(NonBlockingCommTest, MismatchedPostsFailTheHandlesInsteadOfDeadlocking) {
  // Size mismatch: the i-th posts of the two ranks form one logical op, so
  // differing lengths are an SPMD protocol violation — the engine must fail
  // both handles (deferred Error at wait) rather than hang.
  {
    Communicator comm(2);
    run_ranks(2, [&](int rank) {
      std::vector<real> data(static_cast<std::size_t>(4 + rank), real{1});
      CollectiveHandle handle = comm.iall_reduce_sum(rank, data);
      EXPECT_THROW(handle.wait(), Error);
    });
    EXPECT_EQ(comm.traffic().total_bytes(), 0u);  // rejected ops don't count
  }
  // Kind mismatch: all-reduce matched against reduce-scatter.
  {
    Communicator comm(2);
    run_ranks(2, [&](int rank) {
      if (rank == 0) {
        std::vector<real> data(4, real{1});
        EXPECT_THROW(comm.iall_reduce_sum(rank, data).wait(), Error);
      } else {
        const std::vector<real> input(4, real{1});
        std::vector<real> piece(2);
        EXPECT_THROW(
            comm.ireduce_scatter_counts(rank, input, {2, 2}, piece).wait(),
            Error);
      }
    });
  }
}

TEST(NonBlockingCommTest, DestroyingCommunicatorFailsOrphanedPosts) {
  std::vector<real> data(3, real{1});
  CollectiveHandle orphan;
  {
    Communicator comm(2);
    orphan = comm.iall_reduce_sum(0, data);  // rank 1 never posts
  }
  ASSERT_TRUE(orphan.valid());
  EXPECT_THROW(orphan.wait(), Error);
}

TEST(CommTest, TrafficSinceRejectsSnapshotFromTheFuture) {
  Communicator::Traffic earlier;
  earlier.all_reduce_bytes = 100;
  earlier.all_reduce_calls = 2;
  Communicator::Traffic later = earlier;
  later.all_reduce_bytes += 50;
  later.all_reduce_calls += 1;
  EXPECT_EQ(later.since(earlier).all_reduce_bytes, 50u);
  // Swapped arguments would "wrap" the unsigned subtraction into garbage;
  // the contract is to fail loudly instead.
  EXPECT_THROW(earlier.since(later), Error);
}

TEST(InterconnectModelTest, CallSecondsMatchesPerKindFormulas) {
  InterconnectModel model;
  model.link_bandwidth_bytes_per_s = 100.0;
  model.latency_seconds = 0.5;
  const int R = 4;
  // Each kind = its bandwidth term + its launch latency (hand numbers from
  // SecondsMatchesHandComputedKnownTraffic above).
  EXPECT_DOUBLE_EQ(model.call_seconds(CollectiveKind::kAllReduce, 400, R),
                   6.0 + 3.0);
  EXPECT_DOUBLE_EQ(model.call_seconds(CollectiveKind::kReduceScatter, 200, R),
                   1.5 + 1.5);
  EXPECT_DOUBLE_EQ(model.call_seconds(CollectiveKind::kAllGather, 100, R),
                   0.75 + 1.5);
  EXPECT_DOUBLE_EQ(model.call_seconds(CollectiveKind::kBroadcast, 50, R),
                   0.5 + 1.5);
}

TEST(InterconnectModelTest, OverlapCostSplitsExposedAndHiddenTime) {
  InterconnectModel model;
  model.link_bandwidth_bytes_per_s = 100.0;
  model.latency_seconds = 0.5;
  const int R = 4;
  // One 400-byte all-reduce models 9 s of fabric time (6 bandwidth + 3
  // latency; see CallSecondsMatchesPerKindFormulas).
  using Event = InterconnectModel::OverlapEvent;

  // Fully overlapped: the wait arrives 20 s after the post, far past the
  // modeled finish at t=9 — no stall.
  {
    const auto cost = model.overlap_cost(
        {Event{CollectiveKind::kAllReduce, 400, 0.0, 20.0}}, R);
    EXPECT_EQ(cost.ops, 1);
    EXPECT_DOUBLE_EQ(cost.total_seconds, 9.0);
    EXPECT_DOUBLE_EQ(cost.exposed_seconds, 0.0);
    EXPECT_DOUBLE_EQ(cost.overlapped_seconds, 9.0);
  }
  // Fully exposed: wait immediately at the post — the rank stalls for the
  // whole duration, like a blocking call.
  {
    const auto cost = model.overlap_cost(
        {Event{CollectiveKind::kAllReduce, 400, 0.0, 0.0}}, R);
    EXPECT_DOUBLE_EQ(cost.exposed_seconds, 9.0);
    EXPECT_DOUBLE_EQ(cost.overlapped_seconds, 0.0);
  }
  // Serial fabric: the second op cannot start before the first finishes
  // (t=9), so its finish is t=18 and a wait at t=10 exposes 8 s; the first
  // op's wait at t=10 is fully covered.
  {
    const auto cost = model.overlap_cost(
        {Event{CollectiveKind::kAllReduce, 400, 0.0, 10.0},
         Event{CollectiveKind::kAllReduce, 400, 1.0, 10.0}},
        R);
    EXPECT_EQ(cost.ops, 2);
    EXPECT_DOUBLE_EQ(cost.total_seconds, 18.0);
    EXPECT_DOUBLE_EQ(cost.exposed_seconds, 8.0);
    EXPECT_DOUBLE_EQ(cost.overlapped_seconds, 10.0);
  }
  // An earlier stall shifts every later measured timestamp: two immediate
  // back-to-back waits expose everything.
  {
    const auto cost = model.overlap_cost(
        {Event{CollectiveKind::kAllReduce, 400, 0.0, 0.0},
         Event{CollectiveKind::kAllReduce, 400, 0.0, 0.0}},
        R);
    EXPECT_DOUBLE_EQ(cost.exposed_seconds, 18.0);
    EXPECT_DOUBLE_EQ(cost.overlapped_seconds, 0.0);
  }
  // Malformed event streams fail loudly: wait before post, posts that go
  // backwards in time.
  EXPECT_THROW(model.overlap_cost(
                   {Event{CollectiveKind::kAllReduce, 400, 5.0, 1.0}}, R),
               Error);
  EXPECT_THROW(model.overlap_cost(
                   {Event{CollectiveKind::kAllReduce, 400, 5.0, 6.0},
                    Event{CollectiveKind::kAllReduce, 400, 2.0, 7.0}},
                   R),
               Error);
}

TEST(InterconnectModelTest, CostScalesWithBytesAndRanks) {
  const InterconnectModel model;
  EXPECT_EQ(model.all_reduce_seconds(1 << 20, 1), 0.0);
  const double t4 = model.all_reduce_seconds(1 << 20, 4);
  const double t4_big = model.all_reduce_seconds(1 << 24, 4);
  EXPECT_GT(t4, 0.0);
  EXPECT_GT(t4_big, t4);
  // All-reduce moves twice the data of a reduce-scatter.
  EXPECT_GT(model.all_reduce_seconds(1 << 24, 4),
            model.reduce_scatter_seconds(1 << 24, 4));
}

}  // namespace
}  // namespace sgnn
