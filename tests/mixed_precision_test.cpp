// Mixed-precision training: the float32 compute path must carry gradcheck
// (at float-sized tolerances) and land within tolerance of the fp64 loss
// trajectory, and the dynamic loss scaler must implement the AMP recipe —
// backoff on overflow, growth after clean intervals, exact no-op under fp64
// because every scale is a power of two.

#include "sgnn/train/loss_scaler.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "sgnn/data/dataset.hpp"
#include "sgnn/tensor/gradcheck.hpp"
#include "sgnn/tensor/kernels.hpp"
#include "sgnn/tensor/ops.hpp"
#include "sgnn/train/trainer.hpp"
#include "sgnn/util/rng.hpp"

namespace sgnn {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// -- LossScaler unit behaviour ----------------------------------------------

LossScaler::Options small_options() {
  LossScaler::Options options;
  options.enabled = true;
  options.init_scale = 8.0;
  options.growth_factor = 2.0;
  options.backoff_factor = 0.5;
  options.growth_interval = 2;
  options.min_scale = 1.0;
  return options;
}

TEST(LossScalerTest, BacksOffOnOverflowAndSkipsTheStep) {
  LossScaler scaler(small_options());
  EXPECT_DOUBLE_EQ(scaler.scale(), 8.0);
  EXPECT_FALSE(scaler.update(/*overflowed=*/true));
  EXPECT_DOUBLE_EQ(scaler.scale(), 4.0);
  EXPECT_EQ(scaler.skipped_steps(), 1);
  EXPECT_EQ(scaler.good_steps(), 0);
}

TEST(LossScalerTest, GrowsAfterCleanInterval) {
  LossScaler scaler(small_options());
  EXPECT_TRUE(scaler.update(false));
  EXPECT_DOUBLE_EQ(scaler.scale(), 8.0);  // interval not reached yet
  EXPECT_TRUE(scaler.update(false));
  EXPECT_DOUBLE_EQ(scaler.scale(), 16.0);
  EXPECT_EQ(scaler.good_steps(), 0);  // counter resets on growth
}

TEST(LossScalerTest, OverflowResetsTheGrowthCounter) {
  LossScaler scaler(small_options());
  EXPECT_TRUE(scaler.update(false));
  EXPECT_FALSE(scaler.update(true));
  // The clean step before the overflow no longer counts toward growth.
  EXPECT_TRUE(scaler.update(false));
  EXPECT_DOUBLE_EQ(scaler.scale(), 4.0);
}

TEST(LossScalerTest, BackoffClampsAtMinScale) {
  auto options = small_options();
  options.init_scale = 2.0;
  LossScaler scaler(options);
  EXPECT_FALSE(scaler.update(true));
  EXPECT_DOUBLE_EQ(scaler.scale(), 1.0);
  EXPECT_FALSE(scaler.update(true));
  EXPECT_DOUBLE_EQ(scaler.scale(), 1.0);  // floor holds
}

TEST(LossScalerTest, DisabledScalerOnlyVetoesNonFiniteSteps) {
  LossScaler scaler(LossScaler::Options{});
  EXPECT_FALSE(scaler.enabled());
  EXPECT_DOUBLE_EQ(scaler.scale(), 1.0);
  EXPECT_TRUE(scaler.update(false));
  EXPECT_FALSE(scaler.update(true));
  EXPECT_DOUBLE_EQ(scaler.scale(), 1.0);
}

TEST(LossScalerTest, RejectsBadOptions) {
  auto options = small_options();
  options.backoff_factor = 1.5;
  EXPECT_THROW(LossScaler{options}, Error);
  options = small_options();
  options.init_scale = 0;
  EXPECT_THROW(LossScaler{options}, Error);
}

TEST(LossScalerTest, DetectsNonFiniteGradients) {
  Tensor w = Tensor::from_vector({1.0, 2.0}, Shape{2});
  w.set_requires_grad(true);
  Tensor no_grad = Tensor::from_vector({3.0}, Shape{1});
  no_grad.set_requires_grad(true);  // leaf with no backward yet

  sum(w * 2.0).backward();
  EXPECT_FALSE(LossScaler::grads_overflowed({w, no_grad}));

  Tensor v = Tensor::from_vector({1.0, 2.0}, Shape{2});
  v.set_requires_grad(true);
  sum(v * kInf).backward();
  EXPECT_TRUE(LossScaler::grads_overflowed({v}));
}

TEST(LossScalerTest, UnscaleDividesGradientsInPlace) {
  auto options = small_options();
  options.init_scale = 4.0;
  const LossScaler scaler(options);

  Tensor w = Tensor::from_vector({1.0, -1.0, 0.5}, Shape{3});
  w.set_requires_grad(true);
  sum(w * 8.0).backward();  // grad == 8 everywhere
  scaler.unscale({w});
  for (const double g : w.grad().to_vector()) {
    EXPECT_DOUBLE_EQ(g, 2.0);
  }
}

// -- training integration ---------------------------------------------------

const AggregatedDataset& tiny_dataset() {
  static const AggregatedDataset dataset = [] {
    const ReferencePotential potential;
    DatasetOptions options;
    options.target_bytes = 400 << 10;
    options.seed = 31;
    return AggregatedDataset::generate(options, potential);
  }();
  return dataset;
}

std::vector<Trainer::EpochResult> run_training(
    const LossScaler::Options& scaling) {
  const auto& dataset = tiny_dataset();
  const auto split = dataset.split(0.25, 7);

  ModelConfig config;
  config.hidden_dim = 16;
  config.num_layers = 2;
  EGNNModel model(config);

  TrainOptions options;
  options.epochs = 5;
  options.batch_size = 4;
  options.adam.learning_rate = 2e-3;
  options.loss_scaling = scaling;
  Trainer trainer(model, options);
  trainer.set_energy_baseline(EnergyBaseline::fit(dataset.view(split.train)));
  DataLoader loader(dataset.view(split.train), options.batch_size, 99);
  return trainer.fit(loader);
}

TEST(MixedPrecisionTest, LossScalingIsExactUnderFp64) {
  // Every scale the scaler ever uses is a power of two, so scaling the loss
  // and dividing the gradients back is exact in binary floating point: the
  // scaled fp64 run must reproduce the plain trajectory bit-for-bit.
  const auto plain = run_training(LossScaler::Options{});
  auto scaling = LossScaler::Options{};
  scaling.enabled = true;
  const auto scaled = run_training(scaling);
  ASSERT_EQ(plain.size(), scaled.size());
  for (std::size_t e = 0; e < plain.size(); ++e) {
    EXPECT_DOUBLE_EQ(plain[e].mean_train_loss, scaled[e].mean_train_loss)
        << "epoch " << e;
  }
}

TEST(MixedPrecisionTest, Fp32TrainingTracksFp64LossWithinTolerance) {
  const auto fp64 = run_training(LossScaler::Options{});
  std::vector<Trainer::EpochResult> fp32;
  {
    kernels::ScopedComputeDtype scope(kernels::ComputeDtype::kFloat32);
    auto scaling = LossScaler::Options{};
    scaling.enabled = true;
    fp32 = run_training(scaling);
  }
  ASSERT_EQ(fp64.size(), fp32.size());
  // Both runs must make real progress...
  EXPECT_LT(fp64.back().mean_train_loss, fp64.front().mean_train_loss);
  EXPECT_LT(fp32.back().mean_train_loss, fp32.front().mean_train_loss);
  // ...and the fp32 trajectory stays within a few percent of fp64: float
  // rounding perturbs each step by ~1e-7 relative, and five epochs of a
  // stable optimizer do not amplify that into a divergent path.
  for (std::size_t e = 0; e < fp64.size(); ++e) {
    const double a = fp64[e].mean_train_loss;
    const double b = fp32[e].mean_train_loss;
    EXPECT_TRUE(std::isfinite(b)) << "epoch " << e;
    EXPECT_LE(std::abs(a - b) / std::max(std::abs(a), 1e-6), 0.05)
        << "epoch " << e << ": fp64 " << a << " vs fp32 " << b;
  }
}

// -- fp32 gradcheck ---------------------------------------------------------
//
// The gradcheck matrix over backends runs the full gradcheck_test binary
// under SGNN_BACKEND={scalar,simd} (tests/CMakeLists.txt); here we pin the
// dtype axis with float-sized steps and tolerances.

TEST(MixedPrecisionTest, GradcheckPassesUnderFp32Compute) {
  kernels::ScopedComputeDtype scope(kernels::ComputeDtype::kFloat32);
  Rng rng(0xF32F32ULL);

  const auto check = [&](const char* name, auto fn,
                         std::vector<Tensor> inputs) {
    for (auto& t : inputs) t.set_requires_grad(true);
    // eps 1e-3: big enough that f(x+eps)-f(x-eps) survives float rounding,
    // small enough for the central-difference truncation term; tol 2e-2
    // absorbs the fp32 noise floor of eps^-1 * 2^-24.
    const GradcheckResult r = gradcheck(fn, inputs, 1e-3, 2e-2);
    EXPECT_TRUE(r.ok) << name << ": max rel err " << r.max_rel_error << " ("
                      << r.detail << ")";
  };

  check("matmul",
        [](const std::vector<Tensor>& in) { return matmul(in[0], in[1]); },
        {Tensor::uniform(Shape{3, 4}, rng, -1.0, 1.0),
         Tensor::uniform(Shape{4, 2}, rng, -1.0, 1.0)});
  check("mul",
        [](const std::vector<Tensor>& in) { return in[0] * in[1]; },
        {Tensor::uniform(Shape{5}, rng, 0.5, 2.0),
         Tensor::uniform(Shape{5}, rng, 0.5, 2.0)});
  check("sigmoid",
        [](const std::vector<Tensor>& in) { return sigmoid(in[0]); },
        {Tensor::uniform(Shape{7}, rng, -2.0, 2.0)});
  check("sum_axis",
        [](const std::vector<Tensor>& in) { return sum(in[0], 0, false); },
        {Tensor::uniform(Shape{4, 3}, rng, -1.0, 1.0)});
}

}  // namespace
}  // namespace sgnn
