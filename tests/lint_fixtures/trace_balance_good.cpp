#include "sgnn/obs/trace.hpp"

void train_step() {
  {
    const obs::TraceSpan span("forward", "train");
    const ScopedTrainPhase phase(TrainPhase::kForward);
    (void)span;
    (void)phase;
  }
  {
    const obs::TraceSpan span("backward", "train");
    const ScopedTrainPhase phase(TrainPhase::kBackward);
    (void)span;
    (void)phase;
  }
}
