#include "sgnn/tensor/ops.hpp"

namespace sgnn {
namespace {
void scale_impl(double* x, long n, double a) {
  obs::prof::KernelScope prof("scale", n, 16 * n);
  for (long i = 0; i < n; ++i) x[i] *= a;
}
}  // namespace

// Covered by delegation: the callee owns the scope.
void scale_apply(double* x, long n, double a) { scale_impl(x, n, a); }
}  // namespace sgnn
