#include "sgnn/tensor/ops.hpp"

namespace sgnn {
void relu_apply(double* x, long n) {
  for (long i = 0; i < n; ++i) {
    if (x[i] < 0) x[i] = 0;  // no KernelScope anywhere on this path
  }
}
}  // namespace sgnn
