#include "sgnn/tensor/ops.hpp"

namespace sgnn {
// sgnn-lint: allow(kernel-prof): fixture suppression case.
void tagged_apply(double* x, long n) {
  for (long i = 0; i < n; ++i) x[i] -= 1.0;
}
}  // namespace sgnn
