#include "sgnn/tensor/ops.hpp"

namespace sgnn {
void early_apply(double* x, long n) {
  if (n == 0) return;  // escapes before the scope below opens
  obs::prof::KernelScope prof("early", n, 16 * n);
  for (long i = 0; i < n; ++i) x[i] += 1.0;
}
}  // namespace sgnn
