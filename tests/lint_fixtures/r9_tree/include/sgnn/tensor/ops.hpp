#pragma once

namespace sgnn {
void relu_apply(double* x, long n);
void scale_apply(double* x, long n, double a);
void early_apply(double* x, long n);
void tagged_apply(double* x, long n);
}  // namespace sgnn
