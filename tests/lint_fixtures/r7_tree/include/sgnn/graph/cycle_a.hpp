#pragma once

// Half of a same-level cycle: graph (L2) <-> obs (L2).
#include "sgnn/obs/cycle_b.hpp"

namespace sgnn {
int cycle_a();
}  // namespace sgnn
