#pragma once

// The other half of the cycle.
#include "sgnn/graph/cycle_a.hpp"

namespace sgnn {
int cycle_b();
}  // namespace sgnn
