// Downward include: graph (L2) over tensor (L1) — always legal.
#include "sgnn/tensor/shape_decl.hpp"

namespace sgnn {
int graph_uses_tensor() { return 2; }
}  // namespace sgnn
