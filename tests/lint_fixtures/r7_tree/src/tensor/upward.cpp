// Upward include: tensor (L1) reaching into train (L4).
#include "sgnn/train/loop.hpp"

namespace sgnn {
int tensor_peeks_at_trainer() { return 1; }
}  // namespace sgnn
