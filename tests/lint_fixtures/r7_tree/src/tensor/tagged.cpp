// The same upward edge, but with a reasoned escape hatch.
// sgnn-lint: allow(layering): fixture exercising the suppression path.
#include "sgnn/train/loop.hpp"

namespace sgnn {
int tensor_peeks_with_permission() { return 3; }
}  // namespace sgnn
