#pragma once

#include <vector>

#include "sgnn/util/error.hpp"

inline int answer() { return 42; }
