#include <cstdint>

double punned(std::uint64_t bits) {
  return *reinterpret_cast<double*>(&bits);
}
