#include <chrono>

long long elapsed(std::chrono::steady_clock::time_point since) {
  return (std::chrono::steady_clock::now() - since).count();
}
