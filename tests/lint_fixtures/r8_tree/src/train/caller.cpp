#include "sgnn/comm/communicator_decl.hpp"

namespace sgnn {
void sync_everyone(Communicator& comm);

void finalize_epoch(Communicator& comm, int world_rank) {
  if (world_rank == 0) {
    sync_everyone(comm);  // reaches barrier() defined in helper.cpp
  }
}
}  // namespace sgnn
