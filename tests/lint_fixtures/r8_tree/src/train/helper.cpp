#include "sgnn/comm/communicator_decl.hpp"

namespace sgnn {
// Blocks, but is itself unconditioned — clean in isolation. Only the
// cross-TU call graph connects it to the rank branch in caller.cpp.
void sync_everyone(Communicator& comm) { comm.barrier(); }
}  // namespace sgnn
