#include "sgnn/comm/communicator_decl.hpp"

namespace sgnn {
void rank_branch_then_sync(Communicator& comm, std::mutex& mu) {
  if (comm.rank() == 0) {
    log_line("root writes the report");  // no collective in the branch
  }
  {
    const std::lock_guard<std::mutex> lock(mu);
    update_counters();  // lock released before the collective
  }
  comm.barrier();
  // A lambda body runs later: neither the lock nor a rank condition
  // taken here leaks into it.
  const std::lock_guard<std::mutex> lock(mu);
  enqueue([&comm] { comm.barrier(); });
}
}  // namespace sgnn
