#include "sgnn/comm/communicator_decl.hpp"

namespace sgnn {
void sync_on_root_only(Communicator& comm) {
  if (comm.rank() == 0) {
    comm.barrier();  // only rank 0 arrives: deadlock
  }
}
}  // namespace sgnn
