#include "sgnn/comm/communicator_decl.hpp"

namespace sgnn {
void deliberate_split(Communicator& comm) {
  if (comm.rank() == 0) {
    // sgnn-lint: allow(spmd-divergence): fixture suppression case.
    comm.barrier();
  }
}
}  // namespace sgnn
