#include "sgnn/comm/communicator_decl.hpp"

namespace sgnn {
void reduce_under_lock(Communicator& comm, std::mutex& mu, double* x) {
  const std::lock_guard<std::mutex> lock(mu);
  comm.all_reduce_sum(x, 1);  // blocks while holding mu
}
}  // namespace sgnn
