#include <cstdio>
#include <unordered_map>

void dump(const std::unordered_map<int, double>& scores) {
  for (const auto& kv : scores) {
    std::printf("%d %f\n", kv.first, kv.second);
  }
}
