#include <memory>

struct Widget {
  int value = 0;
  Widget(const Widget&) = delete;
  Widget& operator=(const Widget&) = delete;
};

std::unique_ptr<Widget> make() { return std::make_unique<Widget>(); }

// sgnn-lint: allow(new-delete): exercising the suppression syntax
Widget* make_raw() { return new Widget; }
