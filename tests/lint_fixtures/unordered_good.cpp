#include <map>
#include <unordered_map>

double lookup(const std::unordered_map<int, double>& scores, int key) {
  const auto it = scores.find(key);
  return it == scores.end() ? 0.0 : it->second;
}

double first(const std::map<int, double>& ordered) {
  // Ordered containers iterate deterministically.
  double total = 0;
  for (const auto& kv : ordered) total += kv.second;
  return total;
}
