namespace sgnn {
int literal_soup(int* p, int* q) {
  const int big = 1'000'000;
  const int mask = 0xFF'FF;
  const unsigned bits = 0b1010'0101u;
  const double tiny = 1'000.000'1;
  const char c = 'a';
  const wchar_t w = L'a';
  // Raw-string contents must be invisible to every rule:
  const char* r = R"(std::rand(); comm.barrier(); if (rank == 0) {)";
  const char* r2 = u8R"tag(new int[3]; reinterpret_cast<int*>(p))tag";
  return big + mask + static_cast<int>(bits + tiny) + c +
         static_cast<int>(w) + (r == r2 ? 1 : 0) + (p == q ? 1 : 0);
}
}  // namespace sgnn
