#include "sgnn/obs/trace.hpp"

void step() {
  sgnn::obs::TraceSpan("forward");
}
