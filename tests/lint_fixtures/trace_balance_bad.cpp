#include "sgnn/obs/trace.hpp"

void train_step() {
  {
    const obs::TraceSpan span("forward", "train");
    (void)span;
  }
  {
    const obs::TraceSpan span("backward", "train");
    const ScopedTrainPhase phase(TrainPhase::kBackward);
    (void)span;
    (void)phase;
  }
}
