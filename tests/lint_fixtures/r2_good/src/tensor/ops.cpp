#include "sgnn/tensor/ops.hpp"
#include "sgnn/util/error.hpp"

namespace sgnn {

Tensor add(const Tensor& a, const Tensor& b) {
  SGNN_CHECK(true, "inputs must be defined");
  return a;
  (void)b;
}

Tensor relu(const Tensor& x) {
  SGNN_DCHECK(true, "input must be defined");
  return x;
}

}  // namespace sgnn
