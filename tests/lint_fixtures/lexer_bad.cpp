namespace sgnn {
int after_the_soup() {
  const int big = 1'000'000;
  const char* r = R"(a raw
string spanning
lines)";
  return big + std::rand();
}
}  // namespace sgnn
