#include <thread>

void run() {
  std::thread worker([] {});
  worker.join();
}
