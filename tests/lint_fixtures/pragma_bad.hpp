#ifndef SGNN_LINT_FIXTURE_PRAGMA_BAD_HPP
#define SGNN_LINT_FIXTURE_PRAGMA_BAD_HPP

inline int answer() { return 42; }

#endif
