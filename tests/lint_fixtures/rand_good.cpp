struct Rng {
  unsigned long long state = 0x9E3779B97F4A7C15ull;
  unsigned long long next() {
    state ^= state << 13;
    return state;
  }
};

// A member named rand() is not the C library call.
struct Table {
  int rand() const { return 4; }
};

int roll(Rng& rng, const Table& t) {
  return static_cast<int>(rng.next() % 6) + t.rand();
}
