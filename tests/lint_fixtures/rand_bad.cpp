#include <cstdlib>

int roll() { return std::rand() % 6; }

void reseed() { srand(42); }
