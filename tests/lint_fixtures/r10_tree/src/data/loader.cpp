#include "sgnn/util/payload_decl.hpp"

namespace sgnn {
// Not reachable from any src/comm/ definition: out of R10's scope.
void load_shard() { throw std::runtime_error("data-layer throw"); }
}  // namespace sgnn
