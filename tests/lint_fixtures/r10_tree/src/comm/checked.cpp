#include "sgnn/util/payload_decl.hpp"

namespace sgnn {
void progress_checked(bool ok) {
  if (!ok) throw Error("typed error is the sanctioned channel");
}
}  // namespace sgnn
