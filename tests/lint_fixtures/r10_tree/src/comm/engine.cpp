#include "sgnn/util/payload_decl.hpp"

namespace sgnn {
// Comm-layer root: everything it reaches must route failures through
// SGNN_CHECK / sgnn::Error.
void progress_once() { deliver_payload(); }
}  // namespace sgnn
