#include "sgnn/util/payload_decl.hpp"

namespace sgnn {
void progress_tagged(bool ok) {
  // sgnn-lint: allow(check-throw): fixture suppression case.
  if (!ok) throw std::runtime_error("tagged escape");
}
}  // namespace sgnn
