#include "sgnn/util/payload_decl.hpp"

namespace sgnn {
void deliver_payload() {
  throw std::runtime_error("bare throw, reachable from comm");
}
}  // namespace sgnn
