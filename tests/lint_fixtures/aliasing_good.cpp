#include <cstdint>
#include <cstring>
#include <ostream>

double punned(std::uint64_t bits) {
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

void write_bulk(std::ostream& out, const double* data, std::size_t count) {
  out.write(
      // sgnn-lint: allow(aliasing): byte view of a trivially-copyable buffer
      reinterpret_cast<const char*>(data),
      static_cast<std::streamsize>(count * sizeof(double)));
}
