#pragma once

#include "src/tensor/ops_common.hpp"
#include "../util/error.hpp"

inline int answer() { return 42; }
