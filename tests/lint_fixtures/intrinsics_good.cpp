// Vector code written against the portable wrapper API: no vendor headers,
// no raw intrinsics. Identifiers that merely *contain* an intrinsic-like
// substring (comm_mm_bytes) must not fire.

namespace sd {
struct vd {};
inline vd load(const double*) { return {}; }
inline vd vadd(vd, vd) { return {}; }
inline void store(double*, vd) {}
}  // namespace sd

void add4(const double* a, const double* b, double* out) {
  sd::store(out, sd::vadd(sd::load(a), sd::load(b)));
}

long comm_mm_bytes = 0;
