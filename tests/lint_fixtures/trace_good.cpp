#include "sgnn/obs/trace.hpp"

void step() {
  sgnn::obs::TraceSpan span("forward");
  (void)span;
}
