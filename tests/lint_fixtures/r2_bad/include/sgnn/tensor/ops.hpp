#pragma once

namespace sgnn {

class Tensor;

Tensor add(const Tensor& a, const Tensor& b);
Tensor relu(const Tensor& x);
Tensor missing_everywhere(const Tensor& x);

}  // namespace sgnn
