#include "sgnn/tensor/ops.hpp"
#include "sgnn/util/error.hpp"

namespace sgnn {

Tensor add(const Tensor& a, const Tensor& b) {
  SGNN_CHECK(true, "inputs must be defined");
  return a;
  (void)b;
}

// relu has a definition but no precondition check: must be flagged.
Tensor relu(const Tensor& x) { return x; }

// missing_everywhere has no definition anywhere: must be flagged.

}  // namespace sgnn
