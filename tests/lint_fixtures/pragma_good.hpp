#pragma once

inline int answer() { return 42; }
