struct Widget {
  int value = 0;
};

// sgnn-lint: allow(new-delete)
Widget* make() { return new Widget; }
