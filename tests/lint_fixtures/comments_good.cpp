// This file mentions banned constructs only in comments and strings;
// the lint tool must not fire on any of them.
//
//   new Widget; delete w; std::thread t; rand(); reinterpret_cast<int*>(p);
//   std::chrono::system_clock::now();

/* block comment: new delete std::thread rand() */

const char* kDoc =
    "call new, delete, rand(), spawn std::thread, reinterpret_cast away";

const char* kRaw = R"(new delete rand() std::thread reinterpret_cast)";

char kNewline = '\n';

int answer() { return 42; }
