struct Widget {
  int value = 0;
};

Widget* make() {
  return new Widget;  // naked allocation
}

void destroy(Widget* w) {
  delete w;
}
