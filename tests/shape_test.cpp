#include "sgnn/tensor/shape.hpp"

#include <gtest/gtest.h>

#include "sgnn/util/error.hpp"

namespace sgnn {
namespace {

TEST(ShapeTest, ScalarHasRankZeroAndOneElement) {
  const Shape s{};
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_EQ(s.numel(), 1);
}

TEST(ShapeTest, NumelMultipliesDimensions) {
  const Shape s{3, 4, 5};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.numel(), 60);
  EXPECT_EQ(s.dim(0), 3);
  EXPECT_EQ(s.dim(2), 5);
}

TEST(ShapeTest, ZeroDimensionGivesZeroNumel) {
  const Shape s{4, 0, 2};
  EXPECT_EQ(s.numel(), 0);
}

TEST(ShapeTest, NegativeDimensionThrows) {
  EXPECT_THROW(Shape({-1, 2}), Error);
}

TEST(ShapeTest, DimOutOfRangeThrows) {
  const Shape s{2, 3};
  EXPECT_THROW(s.dim(2), Error);
}

TEST(ShapeTest, EqualityComparesDimensions) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
}

TEST(ShapeTest, RowMajorStrides) {
  const Shape s{2, 3, 4};
  const auto strides = s.strides();
  ASSERT_EQ(strides.size(), 3u);
  EXPECT_EQ(strides[0], 12);
  EXPECT_EQ(strides[1], 4);
  EXPECT_EQ(strides[2], 1);
}

TEST(ShapeTest, BroadcastEqualShapes) {
  EXPECT_EQ(Shape::broadcast(Shape{2, 3}, Shape{2, 3}), Shape({2, 3}));
}

TEST(ShapeTest, BroadcastScalarAgainstMatrix) {
  EXPECT_EQ(Shape::broadcast(Shape{}, Shape{4, 5}), Shape({4, 5}));
  EXPECT_EQ(Shape::broadcast(Shape{4, 5}, Shape{}), Shape({4, 5}));
}

TEST(ShapeTest, BroadcastSizeOneDimensions) {
  EXPECT_EQ(Shape::broadcast(Shape{4, 1}, Shape{4, 3}), Shape({4, 3}));
  EXPECT_EQ(Shape::broadcast(Shape{1, 3}, Shape{4, 1}), Shape({4, 3}));
}

TEST(ShapeTest, BroadcastRankExtension) {
  EXPECT_EQ(Shape::broadcast(Shape{3}, Shape{4, 3}), Shape({4, 3}));
}

TEST(ShapeTest, BroadcastZeroAgainstOneKeepsZero) {
  // NumPy semantics: a 0-extent dim broadcasts against 1 and wins — an
  // empty batch stays empty instead of being resurrected to size 1.
  EXPECT_EQ(Shape::broadcast(Shape{0, 3}, Shape{1, 3}), Shape({0, 3}));
  EXPECT_EQ(Shape::broadcast(Shape{1, 3}, Shape{0, 3}), Shape({0, 3}));
  EXPECT_EQ(Shape::broadcast(Shape{0, 1}, Shape{1, 5}), Shape({0, 5}));
  EXPECT_THROW(Shape::broadcast(Shape{0, 3}, Shape{2, 3}), Error);
}

TEST(ShapeTest, BroadcastIncompatibleThrows) {
  EXPECT_THROW(Shape::broadcast(Shape{2, 3}, Shape{2, 4}), Error);
}

TEST(ShapeTest, BroadcastableTo) {
  EXPECT_TRUE(Shape::broadcastable_to(Shape{1, 3}, Shape{5, 3}));
  EXPECT_TRUE(Shape::broadcastable_to(Shape{}, Shape{5, 3}));
  EXPECT_FALSE(Shape::broadcastable_to(Shape{5, 3}, Shape{1, 3}));
  EXPECT_FALSE(Shape::broadcastable_to(Shape{2, 3, 4}, Shape{3, 4}));
}

TEST(ShapeTest, ToStringFormatsDims) {
  EXPECT_EQ(Shape({2, 3}).to_string(), "[2, 3]");
  EXPECT_EQ(Shape{}.to_string(), "[]");
}

}  // namespace
}  // namespace sgnn
