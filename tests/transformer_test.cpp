#include "sgnn/nn/transformer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "sgnn/nn/egnn.hpp"
#include "sgnn/potential/potential.hpp"
#include "sgnn/train/optim.hpp"
#include "sgnn/tensor/ops.hpp"
#include "sgnn/util/rng.hpp"

namespace sgnn {
namespace {

AtomicStructure random_molecule(std::int64_t atoms, Rng& rng,
                                double box = 6.0) {
  AtomicStructure s;
  const int palette[] = {elements::kH, elements::kC, elements::kN,
                         elements::kO};
  for (std::int64_t i = 0; i < atoms; ++i) {
    s.species.push_back(palette[rng.uniform_index(4)]);
    for (;;) {
      const Vec3 p{rng.uniform(0, box), rng.uniform(0, box),
                   rng.uniform(0, box)};
      bool ok = true;
      for (const auto& q : s.positions) {
        if ((p - q).norm() < 0.9) {
          ok = false;
          break;
        }
      }
      if (ok) {
        s.positions.push_back(p);
        break;
      }
    }
  }
  return s;
}

GraphBatch batch_of(const AtomicStructure& s, double cutoff = 3.0) {
  MolecularGraph g = MolecularGraph::from_structure(s, cutoff);
  return GraphBatch::from_graphs(std::vector<const MolecularGraph*>{&g});
}

TransformerConfig tiny_config() {
  TransformerConfig config;
  config.hidden_dim = 16;
  config.num_layers = 2;
  config.seed = 7;
  return config;
}

TEST(TransformerTest, ParameterCountMatchesClosedForm) {
  for (const std::int64_t width : {8, 16, 32}) {
    TransformerConfig config = tiny_config();
    config.hidden_dim = width;
    const GraphTransformer model(config);
    EXPECT_EQ(model.num_parameters(), config.parameter_count()) << width;
  }
}

TEST(TransformerTest, ForwardShapes) {
  Rng rng(1);
  const GraphBatch batch = batch_of(random_molecule(9, rng));
  const GraphTransformer model(tiny_config());
  const auto out = model.forward(batch);
  EXPECT_EQ(out.energy.shape(), Shape({1, 1}));
  EXPECT_EQ(out.forces.shape(), Shape({9, 3}));
}

TEST(TransformerTest, AttentionRowsSumToOne) {
  Rng rng(2);
  const GraphBatch batch = batch_of(random_molecule(7, rng));
  const GraphTransformer model(tiny_config());
  (void)model.forward(batch);
  std::map<std::int64_t, double> sums;
  const auto& attention = model.last_attention();
  const auto& dst = model.last_pair_dst();
  ASSERT_EQ(attention.size(), dst.size());
  for (std::size_t k = 0; k < attention.size(); ++k) {
    EXPECT_GT(attention[k], 0.0);
    sums[dst[k]] += attention[k];
  }
  ASSERT_EQ(sums.size(), 7u);
  for (const auto& [node, total] : sums) {
    EXPECT_NEAR(total, 1.0, 1e-12) << "node " << node;
  }
}

TEST(TransformerTest, EnergyInvariantUnderRotationAndTranslation) {
  Rng rng(3);
  AtomicStructure s = random_molecule(8, rng);
  const GraphTransformer model(tiny_config());
  const double e0 = model.forward(batch_of(s)).energy.item();

  AtomicStructure moved = s;
  const double angle = 1.1;
  for (auto& p : moved.positions) {
    const Vec3 r{std::cos(angle) * p.x - std::sin(angle) * p.y,
                 std::sin(angle) * p.x + std::cos(angle) * p.y, p.z};
    p = r + Vec3{4.2, -1.0, 2.5};
  }
  EXPECT_NEAR(model.forward(batch_of(moved)).energy.item(), e0, 1e-9);
}

TEST(TransformerTest, ForcesEquivariantUnderRotation) {
  Rng rng(4);
  AtomicStructure s = random_molecule(8, rng);
  const GraphTransformer model(tiny_config());
  const auto out0 = model.forward(batch_of(s));

  const double angle = 0.6;
  AtomicStructure rotated = s;
  for (auto& p : rotated.positions) {
    p = {std::cos(angle) * p.x - std::sin(angle) * p.y,
         std::sin(angle) * p.x + std::cos(angle) * p.y, p.z};
  }
  const auto out1 = model.forward(batch_of(rotated));
  const real* f0 = out0.forces.data();
  const real* f1 = out1.forces.data();
  for (std::int64_t i = 0; i < 8; ++i) {
    const double fx = std::cos(angle) * f0[i * 3] - std::sin(angle) * f0[i * 3 + 1];
    const double fy = std::sin(angle) * f0[i * 3] + std::cos(angle) * f0[i * 3 + 1];
    EXPECT_NEAR(f1[i * 3 + 0], fx, 1e-9);
    EXPECT_NEAR(f1[i * 3 + 1], fy, 1e-9);
    EXPECT_NEAR(f1[i * 3 + 2], f0[i * 3 + 2], 1e-9);
  }
}

TEST(TransformerTest, BatchingDoesNotMixGraphs) {
  Rng rng(5);
  MolecularGraph a = MolecularGraph::from_structure(random_molecule(6, rng), 3.0);
  MolecularGraph b = MolecularGraph::from_structure(random_molecule(9, rng), 3.0);
  const GraphTransformer model(tiny_config());
  const auto solo_a = model.forward(
      GraphBatch::from_graphs(std::vector<const MolecularGraph*>{&a}));
  const auto joint = model.forward(
      GraphBatch::from_graphs(std::vector<const MolecularGraph*>{&a, &b}));
  EXPECT_NEAR(joint.energy.at(0, 0), solo_a.energy.item(), 1e-10);
}

TEST(TransformerTest, SeesBeyondTheGnnHorizon) {
  // The conceptual difference the paper conjectures about: an L-layer GNN
  // on a radius graph cannot react to atoms farther than L x cutoff, while
  // attention covers every pair. Move an atom from 20 A to 25 A away: the
  // EGNN's output is bitwise unchanged (no edge ever forms), the
  // transformer's energy responds.
  AtomicStructure near_far;
  near_far.species = {elements::kC, elements::kO, elements::kH};
  near_far.positions = {{0, 0, 0}, {1.2, 0, 0}, {20.0, 0, 0}};
  AtomicStructure moved = near_far;
  moved.positions[2].x = 25.0;

  ModelConfig gnn_config;
  gnn_config.hidden_dim = 16;
  gnn_config.num_layers = 2;
  const EGNNModel gnn(gnn_config);
  EXPECT_EQ(gnn.forward(batch_of(near_far)).energy.item(),
            gnn.forward(batch_of(moved)).energy.item());

  const GraphTransformer transformer(tiny_config());
  EXPECT_NE(transformer.forward(batch_of(near_far)).energy.item(),
            transformer.forward(batch_of(moved)).energy.item());
}

TEST(TransformerTest, GradientsFlowToAllLayers) {
  Rng rng(6);
  const GraphBatch batch = batch_of(random_molecule(6, rng));
  const GraphTransformer model(tiny_config());
  const auto out = model.forward(batch);
  (sum(square(out.energy)) + sum(square(out.forces))).backward();
  std::size_t with_grad = 0;
  for (const auto& p : model.parameters()) {
    if (p.grad().defined()) ++with_grad;
  }
  EXPECT_EQ(with_grad, model.parameters().size());
}

TEST(TransformerTest, TrainsOnASmallProblem) {
  // A few steps of Adam must reduce the loss on a fixed batch.
  Rng rng(8);
  AtomicStructure s = random_molecule(8, rng);
  MolecularGraph g = MolecularGraph::from_structure(s, 3.0);
  const ReferencePotential potential;
  const PotentialResult labels = potential.evaluate(g.structure, g.edges);
  g.energy = labels.energy - (-4.0) * static_cast<double>(g.num_nodes());
  g.forces = labels.forces;
  const GraphBatch batch =
      GraphBatch::from_graphs(std::vector<const MolecularGraph*>{&g});

  GraphTransformer model(tiny_config());
  Adam::Options adam_options;
  adam_options.learning_rate = 5e-3;
  Adam adam(model.parameters(), adam_options);

  double first = 0;
  double last = 0;
  for (int step = 0; step < 30; ++step) {
    adam.zero_grad();
    const auto out = model.forward(batch);
    Tensor loss = mse_loss(out.energy, batch.energy) +
                  mse_loss(out.forces, batch.forces) * 10.0;
    if (step == 0) first = loss.item();
    last = loss.item();
    loss.backward();
    adam.step();
  }
  EXPECT_LT(last, 0.5 * first);
}

}  // namespace
}  // namespace sgnn
