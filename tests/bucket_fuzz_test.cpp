// Randomized property suite for the gradient bucketer (FUZZ label, run
// under ASan/UBSan in CI): for random shape lists and bucket caps, the
// layout must tile the flat vector exactly, the bucketed collectives must
// reproduce the blocking ones bit-for-bit, and degenerate inputs (empty
// parameter list, fewer elements than ranks, double begin_step) must throw
// or no-op cleanly — never deadlock. Everything is seeded, so a failure
// reproduces deterministically.

#include "sgnn/train/bucketer.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "sgnn/tensor/ops.hpp"
#include "sgnn/train/zero.hpp"
#include "sgnn/util/error.hpp"
#include "sgnn/util/rng.hpp"

namespace sgnn {
namespace {

template <typename Body>
void run_ranks(int num_ranks, Body body) {
  std::vector<std::thread> threads;
  for (int r = 0; r < num_ranks; ++r) threads.emplace_back(body, r);
  for (auto& t : threads) t.join();
}

// -- plan() layout properties -------------------------------------------------

TEST(BucketPlanFuzz, EveryElementLandsInExactlyOneBucket) {
  Rng rng(2024);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t n = rng.uniform_index(5000);
    const std::size_t bytes = 1 + rng.uniform_index(64 * 1024);
    const auto buckets = GradBucketer::plan(n, bytes);
    if (n == 0) {
      EXPECT_TRUE(buckets.empty());
      continue;
    }
    const std::size_t cap =
        bytes / sizeof(real) == 0 ? 1 : bytes / sizeof(real);
    // Descending contiguous tiling of [0, n): bucket i+1 ends exactly where
    // bucket i begins, the first bucket reaches n, the last reaches 0.
    ASSERT_FALSE(buckets.empty()) << "n=" << n << " bytes=" << bytes;
    EXPECT_EQ(buckets.front().end, n);
    EXPECT_EQ(buckets.back().begin, 0u);
    std::size_t covered = 0;
    std::size_t prev_begin = n;
    for (const auto& bucket : buckets) {
      EXPECT_LT(bucket.begin, bucket.end) << "n=" << n << " bytes=" << bytes;
      EXPECT_EQ(bucket.end, prev_begin) << "n=" << n << " bytes=" << bytes;
      EXPECT_LE(bucket.end - bucket.begin, cap)
          << "n=" << n << " bytes=" << bytes;
      covered += bucket.end - bucket.begin;
      prev_begin = bucket.begin;
    }
    EXPECT_EQ(covered, n);
  }
}

TEST(BucketPlanFuzz, SubElementCapClampsToOneElementPerBucket) {
  const auto buckets = GradBucketer::plan(5, 0);
  ASSERT_EQ(buckets.size(), 5u);
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    EXPECT_EQ(buckets[i].end - buckets[i].begin, 1u);
  }
  EXPECT_TRUE(GradBucketer::plan(0, 0).empty());
  EXPECT_TRUE(GradBucketer::plan(0, 1 << 20).empty());
}

// -- randomized end-to-end parity against the blocking collectives ------------

/// Per-rank clones of `num_params` randomly shaped parameters.
std::vector<std::vector<Tensor>> make_random_params(Rng& rng, int ranks,
                                                    std::size_t num_params) {
  Rng init_rng = rng.split();
  std::vector<Tensor> prototypes;
  for (std::size_t p = 0; p < num_params; ++p) {
    const auto len = static_cast<std::int64_t>(1 + rng.uniform_index(40));
    const Shape shape =
        rng.uniform() < 0.5 ? Shape{len} : Shape{2, (len + 1) / 2};
    prototypes.push_back(Tensor::randn(shape, init_rng));
  }
  std::vector<std::vector<Tensor>> params(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    for (const Tensor& proto : prototypes) {
      params[static_cast<std::size_t>(r)].push_back(
          proto.clone().set_requires_grad(true));
    }
  }
  return params;
}

/// Installs grad(param p, element i) = (rank+1) * (p+1) * (i+1) / 64 by
/// differentiating a linear objective.
void install_grads(std::vector<Tensor>& params, int rank) {
  for (std::size_t p = 0; p < params.size(); ++p) {
    Tensor coeff = Tensor::zeros(params[p].shape());
    real* c = coeff.data();
    for (std::int64_t i = 0; i < coeff.numel(); ++i) {
      c[i] = static_cast<real>(rank + 1) * static_cast<real>(p + 1) *
             static_cast<real>(i + 1) / static_cast<real>(64);
    }
    params[p].zero_grad();
    sum(params[p] * coeff).backward();
  }
}

/// Fixed rank-order elementwise sum of the per-rank flat gradients — the
/// exact reduction order both the blocking path and the engine use.
std::vector<real> rank_order_sum(
    const std::vector<std::vector<Tensor>>& params) {
  std::vector<real> total = flatten_gradients(params[0]);
  for (std::size_t r = 1; r < params.size(); ++r) {
    const std::vector<real> g = flatten_gradients(params[r]);
    for (std::size_t i = 0; i < total.size(); ++i) total[i] += g[i];
  }
  return total;
}

TEST(BucketerFuzz, BucketedAllReduceMatchesBlockingForRandomShapes) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const int R = 1 + static_cast<int>(rng.uniform_index(4));
    const std::size_t num_params = 1 + rng.uniform_index(5);
    const std::size_t bucket_bytes = 1 + rng.uniform_index(50 * sizeof(real));
    auto params = make_random_params(rng, R, num_params);
    for (int r = 0; r < R; ++r) {
      install_grads(params[static_cast<std::size_t>(r)], r);
    }
    const std::vector<real> expected = rank_order_sum(params);

    Communicator comm(R);
    std::vector<std::unique_ptr<GradBucketer>> bucketers;
    for (int r = 0; r < R; ++r) {
      bucketers.push_back(std::make_unique<GradBucketer>(
          comm, params[static_cast<std::size_t>(r)],
          CollectiveKind::kAllReduce, bucket_bytes));
    }
    std::vector<std::vector<real>> drained(static_cast<std::size_t>(R));
    run_ranks(R, [&](int rank) {
      const auto ri = static_cast<std::size_t>(rank);
      bucketers[ri]->begin_step(rank);
      bucketers[ri]->post_remaining();
      bucketers[ri]->drain_all_reduce(drained[ri]);
      bucketers[ri]->end_step();
    });
    for (int r = 0; r < R; ++r) {
      EXPECT_EQ(drained[static_cast<std::size_t>(r)], expected)
          << "trial " << trial << " rank " << r << " R=" << R
          << " bucket_bytes=" << bucket_bytes;
    }
  }
}

TEST(BucketerFuzz, BucketedReduceScatterAndAllGatherMatchBlockingShards) {
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    const int R = 1 + static_cast<int>(rng.uniform_index(4));
    const std::size_t num_params = 1 + rng.uniform_index(5);
    const std::size_t bucket_bytes = 1 + rng.uniform_index(50 * sizeof(real));
    auto params = make_random_params(rng, R, num_params);
    for (int r = 0; r < R; ++r) {
      install_grads(params[static_cast<std::size_t>(r)], r);
    }
    const std::vector<real> expected = rank_order_sum(params);
    const std::size_t n = expected.size();

    Communicator comm(R);
    std::vector<std::unique_ptr<GradBucketer>> bucketers;
    for (int r = 0; r < R; ++r) {
      bucketers.push_back(std::make_unique<GradBucketer>(
          comm, params[static_cast<std::size_t>(r)],
          CollectiveKind::kReduceScatter, bucket_bytes));
    }
    // The refreshed parameters every rank must end up holding.
    std::vector<real> updated(n);
    for (std::size_t i = 0; i < n; ++i) {
      updated[i] = static_cast<real>(i) * static_cast<real>(0.5) -
                   static_cast<real>(1);
    }
    run_ranks(R, [&](int rank) {
      const auto ri = static_cast<std::size_t>(rank);
      bucketers[ri]->begin_step(rank);
      bucketers[ri]->post_remaining();
      std::vector<real> shard;
      bucketers[ri]->drain_reduce_scatter(shard);
      // The drained shard is exactly this rank's slice of the global sum —
      // shard boundaries never depend on the bucket size.
      const auto [begin, end] = Communicator::shard_range(n, rank, R);
      ASSERT_EQ(shard.size(), end - begin);
      for (std::size_t i = begin; i < end; ++i) {
        EXPECT_EQ(shard[i - begin], expected[i])
            << "trial " << trial << " rank " << rank << " element " << i;
      }
      // Overlapped all-gather of the updated shard ends the step.
      const std::vector<real> shard_update(updated.begin() + static_cast<std::ptrdiff_t>(begin),
                                           updated.begin() + static_cast<std::ptrdiff_t>(end));
      bucketers[ri]->all_gather_params(shard_update);
    });
    for (int r = 0; r < R; ++r) {
      EXPECT_EQ(flatten_parameters(params[static_cast<std::size_t>(r)]),
                updated)
          << "trial " << trial << " rank " << r;
    }
  }
}

// -- degenerate inputs --------------------------------------------------------

TEST(BucketerDegenerateTest, FewerElementsThanRanksLeavesEmptyShards) {
  const int R = 4;
  Communicator comm(R);
  std::vector<std::vector<Tensor>> params(R);
  std::vector<std::unique_ptr<GradBucketer>> bucketers;
  for (int r = 0; r < R; ++r) {
    Tensor p = Tensor::zeros(Shape{2}).set_requires_grad(true);
    params[static_cast<std::size_t>(r)] = {p};
    install_grads(params[static_cast<std::size_t>(r)], r);
    bucketers.push_back(std::make_unique<GradBucketer>(
        comm, params[static_cast<std::size_t>(r)],
        CollectiveKind::kReduceScatter, sizeof(real)));
  }
  const std::vector<real> expected = rank_order_sum(params);
  run_ranks(R, [&](int rank) {
    const auto ri = static_cast<std::size_t>(rank);
    bucketers[ri]->begin_step(rank);
    bucketers[ri]->post_remaining();
    std::vector<real> shard;
    bucketers[ri]->drain_reduce_scatter(shard);
    const auto [begin, end] = Communicator::shard_range(2, rank, R);
    ASSERT_EQ(shard.size(), end - begin);  // ranks 2 and 3 own nothing
    for (std::size_t i = begin; i < end; ++i) {
      EXPECT_EQ(shard[i - begin], expected[i]);
    }
    bucketers[ri]->all_gather_params(
        std::vector<real>(expected.begin() + static_cast<std::ptrdiff_t>(begin),
                          expected.begin() + static_cast<std::ptrdiff_t>(end)));
  });
  for (int r = 0; r < R; ++r) {
    EXPECT_EQ(flatten_parameters(params[static_cast<std::size_t>(r)]),
              expected);
  }
}

TEST(BucketerDegenerateTest, EmptyParameterListIsACleanNoOp) {
  const int R = 2;
  Communicator comm(R);
  std::vector<std::unique_ptr<GradBucketer>> bucketers;
  for (int r = 0; r < R; ++r) {
    bucketers.push_back(std::make_unique<GradBucketer>(
        comm, std::vector<Tensor>{}, CollectiveKind::kAllReduce, 1024));
    EXPECT_EQ(bucketers.back()->num_buckets(), 0u);
    EXPECT_EQ(bucketers.back()->total_elements(), 0u);
  }
  run_ranks(R, [&](int rank) {
    const auto ri = static_cast<std::size_t>(rank);
    bucketers[ri]->begin_step(rank);
    bucketers[ri]->post_remaining();
    std::vector<real> flat = {real{99}};  // must come back empty
    bucketers[ri]->drain_all_reduce(flat);
    EXPECT_TRUE(flat.empty());
    bucketers[ri]->end_step();
  });
  EXPECT_EQ(comm.traffic().total_bytes(), 0u);
}

TEST(BucketerDegenerateTest, BeginStepWhileActiveThrows) {
  Communicator comm(1);
  std::vector<Tensor> params = {
      Tensor::zeros(Shape{3}).set_requires_grad(true)};
  GradBucketer bucketer(comm, params, CollectiveKind::kAllReduce, 1024);
  bucketer.begin_step(0);
  EXPECT_THROW(bucketer.begin_step(0), Error);
  // The original step is still live and completes normally (the undefined
  // gradient drains as zeros).
  bucketer.post_remaining();
  std::vector<real> flat;
  bucketer.drain_all_reduce(flat);
  EXPECT_EQ(flat, (std::vector<real>{0, 0, 0}));
  bucketer.end_step();
}

}  // namespace
}  // namespace sgnn
