// Randomized differential testing of the broadcasting machinery: every op
// result is compared against an independent naive reference that computes
// multi-indices explicitly. Catches stride/offset bugs that fixed-shape
// unit tests can miss.

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "sgnn/tensor/ops.hpp"
#include "sgnn/util/rng.hpp"

namespace sgnn {
namespace {

/// Multi-index into a shape from a flat index.
std::vector<std::int64_t> unravel(std::int64_t flat, const Shape& shape) {
  std::vector<std::int64_t> index(shape.rank());
  const auto strides = shape.strides();
  for (std::size_t axis = 0; axis < shape.rank(); ++axis) {
    index[axis] = flat / strides[axis];
    flat -= index[axis] * strides[axis];
  }
  return index;
}

/// Value of `t` at the broadcast position `out_index` (right-aligned).
real broadcast_at(const Tensor& t, const std::vector<std::int64_t>& out_index,
                  const Shape& out_shape) {
  const Shape& shape = t.shape();
  std::int64_t offset = 0;
  const auto strides = shape.strides();
  for (std::size_t i = 0; i < shape.rank(); ++i) {
    const std::size_t out_axis = out_shape.rank() - shape.rank() + i;
    const std::int64_t coord =
        shape.dim(i) == 1 ? 0 : out_index[out_axis];
    offset += coord * strides[i];
  }
  return t.data()[offset];
}

/// Random shape pair that broadcasts, with skewed rank/size distribution.
std::pair<Shape, Shape> random_broadcast_pair(Rng& rng) {
  const std::size_t rank = 1 + rng.uniform_index(3);
  std::vector<std::int64_t> out_dims;
  for (std::size_t i = 0; i < rank; ++i) {
    out_dims.push_back(1 + static_cast<std::int64_t>(rng.uniform_index(5)));
  }
  const auto derive = [&](std::size_t drop_prob_pct) {
    std::vector<std::int64_t> dims;
    // Possibly drop leading axes.
    std::size_t start = 0;
    while (start + 1 < rank && rng.uniform_index(100) < drop_prob_pct) {
      ++start;
    }
    for (std::size_t i = start; i < rank; ++i) {
      dims.push_back(rng.uniform_index(100) < 40 ? 1 : out_dims[i]);
    }
    return Shape(std::move(dims));
  };
  return {derive(30), derive(30)};
}

using BinaryOp = std::function<Tensor(const Tensor&, const Tensor&)>;
using ScalarOp = std::function<real(real, real)>;

struct FuzzCase {
  std::string name;
  BinaryOp op;
  ScalarOp reference;
  bool positive_rhs = false;
};

class BroadcastFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(BroadcastFuzz, MatchesNaiveReferenceOnRandomShapes) {
  const FuzzCase& c = GetParam();
  Rng rng(0xF422 ^ std::hash<std::string>{}(c.name));
  for (int trial = 0; trial < 60; ++trial) {
    const auto [shape_a, shape_b] = random_broadcast_pair(rng);
    const Tensor a = Tensor::uniform(shape_a, rng, -2.0, 2.0);
    const Tensor b = c.positive_rhs
                         ? Tensor::uniform(shape_b, rng, 0.5, 2.5)
                         : Tensor::uniform(shape_b, rng, -2.0, 2.0);
    const Shape out_shape = Shape::broadcast(shape_a, shape_b);
    const Tensor out = c.op(a, b);
    ASSERT_EQ(out.shape(), out_shape)
        << c.name << ": " << shape_a.to_string() << " x "
        << shape_b.to_string();
    for (std::int64_t flat = 0; flat < out_shape.numel(); ++flat) {
      const auto index = unravel(flat, out_shape);
      const real expected = c.reference(broadcast_at(a, index, out_shape),
                                        broadcast_at(b, index, out_shape));
      ASSERT_DOUBLE_EQ(out.data()[flat], expected)
          << c.name << " at flat index " << flat << " of "
          << out_shape.to_string() << " (" << shape_a.to_string() << " x "
          << shape_b.to_string() << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ops, BroadcastFuzz,
    ::testing::Values(
        FuzzCase{"add", [](const Tensor& a, const Tensor& b) { return add(a, b); },
                 [](real x, real y) { return x + y; }},
        FuzzCase{"sub", [](const Tensor& a, const Tensor& b) { return sub(a, b); },
                 [](real x, real y) { return x - y; }},
        FuzzCase{"mul", [](const Tensor& a, const Tensor& b) { return mul(a, b); },
                 [](real x, real y) { return x * y; }},
        FuzzCase{"div", [](const Tensor& a, const Tensor& b) { return div(a, b); },
                 [](real x, real y) { return x / y; }, true}),
    [](const ::testing::TestParamInfo<FuzzCase>& param_info) {
      return param_info.param.name;
    });

TEST(ReductionFuzz, AxisSumsMatchNaiveReference) {
  Rng rng(404);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t rank = 1 + rng.uniform_index(3);
    std::vector<std::int64_t> dims;
    for (std::size_t i = 0; i < rank; ++i) {
      dims.push_back(1 + static_cast<std::int64_t>(rng.uniform_index(5)));
    }
    const Shape shape(std::move(dims));
    const Tensor x = Tensor::uniform(shape, rng, -1.0, 1.0);
    const std::size_t axis = rng.uniform_index(rank);
    const Tensor reduced = sum(x, axis, /*keepdim=*/false);

    // Naive reference.
    for (std::int64_t flat = 0; flat < reduced.numel(); ++flat) {
      std::vector<std::int64_t> out_index =
          unravel(flat, reduced.shape());
      real expected = 0;
      for (std::int64_t k = 0; k < shape.dim(axis); ++k) {
        std::vector<std::int64_t> full_index;
        std::size_t out_axis = 0;
        for (std::size_t i = 0; i < rank; ++i) {
          if (i == axis) {
            full_index.push_back(k);
          } else {
            full_index.push_back(out_index[out_axis++]);
          }
        }
        std::int64_t offset = 0;
        const auto strides = shape.strides();
        for (std::size_t i = 0; i < rank; ++i) {
          offset += full_index[i] * strides[i];
        }
        expected += x.data()[offset];
      }
      ASSERT_NEAR(reduced.data()[flat], expected, 1e-12)
          << "shape " << shape.to_string() << " axis " << axis;
    }
  }
}

TEST(IndexFuzz, GatherScatterRoundTripIsDegreeWeighted) {
  // scatter_add(index_select(x, idx), idx) multiplies each row of x by its
  // multiplicity in idx — a sharp joint property of both ops.
  Rng rng(505);
  for (int trial = 0; trial < 30; ++trial) {
    const std::int64_t rows = 2 + static_cast<std::int64_t>(rng.uniform_index(8));
    const std::int64_t cols = 1 + static_cast<std::int64_t>(rng.uniform_index(5));
    const Tensor x = Tensor::uniform(Shape{rows, cols}, rng, -1, 1);
    const std::size_t picks = 1 + rng.uniform_index(20);
    std::vector<std::int64_t> index;
    std::vector<std::int64_t> multiplicity(static_cast<std::size_t>(rows), 0);
    for (std::size_t k = 0; k < picks; ++k) {
      const auto row = static_cast<std::int64_t>(
          rng.uniform_index(static_cast<std::uint64_t>(rows)));
      index.push_back(row);
      ++multiplicity[static_cast<std::size_t>(row)];
    }
    const Tensor round =
        scatter_add_rows(index_select_rows(x, index), index, rows);
    for (std::int64_t r = 0; r < rows; ++r) {
      for (std::int64_t col = 0; col < cols; ++col) {
        ASSERT_NEAR(round.at(r, col),
                    x.at(r, col) * static_cast<real>(
                                       multiplicity[static_cast<std::size_t>(r)]),
                    1e-12);
      }
    }
  }
}

}  // namespace
}  // namespace sgnn
