#include "sgnn/tensor/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sgnn/util/error.hpp"

namespace sgnn {
namespace {

TEST(OpsTest, AddSameShape) {
  const Tensor a = Tensor::from_vector({1, 2, 3}, Shape{3});
  const Tensor b = Tensor::from_vector({10, 20, 30}, Shape{3});
  const auto c = (a + b).to_vector();
  EXPECT_EQ(c, (std::vector<real>{11, 22, 33}));
}

TEST(OpsTest, AddBroadcastRowVector) {
  const Tensor a = Tensor::from_vector({1, 2, 3, 4, 5, 6}, Shape{2, 3});
  const Tensor b = Tensor::from_vector({10, 20, 30}, Shape{3});
  const auto c = (a + b).to_vector();
  EXPECT_EQ(c, (std::vector<real>{11, 22, 33, 14, 25, 36}));
}

TEST(OpsTest, AddBroadcastColumnVector) {
  const Tensor a = Tensor::from_vector({1, 2, 3, 4, 5, 6}, Shape{2, 3});
  const Tensor b = Tensor::from_vector({100, 200}, Shape{2, 1});
  const auto c = (a + b).to_vector();
  EXPECT_EQ(c, (std::vector<real>{101, 102, 103, 204, 205, 206}));
}

TEST(OpsTest, MulBroadcastScalarTensor) {
  const Tensor a = Tensor::from_vector({1, 2, 3}, Shape{3});
  const auto c = (a * Tensor::scalar(4.0)).to_vector();
  EXPECT_EQ(c, (std::vector<real>{4, 8, 12}));
}

TEST(OpsTest, IncompatibleBroadcastThrows) {
  const Tensor a = Tensor::zeros(Shape{2, 3});
  const Tensor b = Tensor::zeros(Shape{2, 4});
  EXPECT_THROW(a + b, Error);
}

TEST(OpsTest, DivComputesQuotient) {
  const Tensor a = Tensor::from_vector({8, 27}, Shape{2});
  const Tensor b = Tensor::from_vector({2, 3}, Shape{2});
  const auto c = div(a, b).to_vector();
  EXPECT_DOUBLE_EQ(c[0], 4);
  EXPECT_DOUBLE_EQ(c[1], 9);
}

TEST(OpsTest, UnaryForwardValues) {
  const Tensor x = Tensor::from_vector({-2, 0, 3}, Shape{3});
  EXPECT_EQ(relu(x).to_vector(), (std::vector<real>{0, 0, 3}));
  EXPECT_EQ(neg(x).to_vector(), (std::vector<real>{2, 0, -3}));
  EXPECT_EQ(abs_op(x).to_vector(), (std::vector<real>{2, 0, 3}));
  EXPECT_EQ(square(x).to_vector(), (std::vector<real>{4, 0, 9}));
  EXPECT_EQ(clamp_min(x, 1.0).to_vector(), (std::vector<real>{1, 1, 3}));
}

TEST(OpsTest, SigmoidAndSiluValues) {
  const Tensor x = Tensor::scalar(0.0);
  EXPECT_DOUBLE_EQ(sigmoid(x).item(), 0.5);
  EXPECT_DOUBLE_EQ(silu(x).item(), 0.0);
  const Tensor y = Tensor::scalar(100.0);
  EXPECT_NEAR(sigmoid(y).item(), 1.0, 1e-12);
  EXPECT_NEAR(silu(y).item(), 100.0, 1e-12);
}

TEST(OpsTest, SoftplusIsStableForLargeInputs) {
  EXPECT_NEAR(softplus(Tensor::scalar(500.0)).item(), 500.0, 1e-9);
  EXPECT_NEAR(softplus(Tensor::scalar(-500.0)).item(), 0.0, 1e-9);
  EXPECT_NEAR(softplus(Tensor::scalar(0.0)).item(), std::log(2.0), 1e-12);
}

TEST(OpsTest, MatmulKnownProduct) {
  const Tensor a = Tensor::from_vector({1, 2, 3, 4}, Shape{2, 2});
  const Tensor b = Tensor::from_vector({5, 6, 7, 8}, Shape{2, 2});
  const auto c = matmul(a, b).to_vector();
  EXPECT_EQ(c, (std::vector<real>{19, 22, 43, 50}));
}

TEST(OpsTest, MatmulRectangular) {
  const Tensor a = Tensor::from_vector({1, 2, 3, 4, 5, 6}, Shape{2, 3});
  const Tensor b = Tensor::from_vector({1, 0, 0, 1, 1, 1}, Shape{3, 2});
  const auto c = matmul(a, b).to_vector();
  EXPECT_EQ(c, (std::vector<real>{4, 5, 10, 11}));
}

TEST(OpsTest, MatmulDimensionMismatchThrows) {
  EXPECT_THROW(matmul(Tensor::zeros(Shape{2, 3}), Tensor::zeros(Shape{2, 3})),
               Error);
}

TEST(OpsTest, TransposeSwapsAxes) {
  const Tensor a = Tensor::from_vector({1, 2, 3, 4, 5, 6}, Shape{2, 3});
  const Tensor t = transpose(a);
  EXPECT_EQ(t.shape(), Shape({3, 2}));
  EXPECT_EQ(t.to_vector(), (std::vector<real>{1, 4, 2, 5, 3, 6}));
}

TEST(OpsTest, SumAllAndMeanAll) {
  const Tensor a = Tensor::from_vector({1, 2, 3, 4}, Shape{2, 2});
  EXPECT_DOUBLE_EQ(sum(a).item(), 10.0);
  EXPECT_DOUBLE_EQ(mean(a).item(), 2.5);
}

TEST(OpsTest, SumAlongAxes) {
  const Tensor a = Tensor::from_vector({1, 2, 3, 4, 5, 6}, Shape{2, 3});
  EXPECT_EQ(sum(a, 0, false).to_vector(), (std::vector<real>{5, 7, 9}));
  EXPECT_EQ(sum(a, 1, false).to_vector(), (std::vector<real>{6, 15}));
  const Tensor keep = sum(a, 1, true);
  EXPECT_EQ(keep.shape(), Shape({2, 1}));
}

TEST(OpsTest, MeanAlongAxis) {
  const Tensor a = Tensor::from_vector({2, 4, 6, 8}, Shape{2, 2});
  EXPECT_EQ(mean(a, 0, false).to_vector(), (std::vector<real>{4, 6}));
}

TEST(OpsTest, ReshapePreservesData) {
  const Tensor a = Tensor::from_vector({1, 2, 3, 4, 5, 6}, Shape{2, 3});
  const Tensor r = reshape(a, Shape{3, 2});
  EXPECT_EQ(r.to_vector(), a.to_vector());
  EXPECT_THROW(reshape(a, Shape{4, 2}), Error);
}

TEST(OpsTest, ConcatAxis0) {
  const Tensor a = Tensor::from_vector({1, 2}, Shape{1, 2});
  const Tensor b = Tensor::from_vector({3, 4, 5, 6}, Shape{2, 2});
  const Tensor c = concat({a, b}, 0);
  EXPECT_EQ(c.shape(), Shape({3, 2}));
  EXPECT_EQ(c.to_vector(), (std::vector<real>{1, 2, 3, 4, 5, 6}));
}

TEST(OpsTest, ConcatAxis1) {
  const Tensor a = Tensor::from_vector({1, 2, 3, 4}, Shape{2, 2});
  const Tensor b = Tensor::from_vector({5, 6}, Shape{2, 1});
  const Tensor c = concat({a, b}, 1);
  EXPECT_EQ(c.shape(), Shape({2, 3}));
  EXPECT_EQ(c.to_vector(), (std::vector<real>{1, 2, 5, 3, 4, 6}));
}

TEST(OpsTest, ConcatShapeMismatchThrows) {
  EXPECT_THROW(
      concat({Tensor::zeros(Shape{2, 2}), Tensor::zeros(Shape{3, 3})}, 0),
      Error);
}

TEST(OpsTest, NarrowExtractsRange) {
  const Tensor a = Tensor::from_vector({1, 2, 3, 4, 5, 6}, Shape{2, 3});
  const Tensor n0 = narrow(a, 1, 1, 2);
  EXPECT_EQ(n0.shape(), Shape({2, 2}));
  EXPECT_EQ(n0.to_vector(), (std::vector<real>{2, 3, 5, 6}));
  const Tensor n1 = narrow(a, 0, 1, 1);
  EXPECT_EQ(n1.to_vector(), (std::vector<real>{4, 5, 6}));
  EXPECT_THROW(narrow(a, 1, 2, 2), Error);
}

TEST(OpsTest, IndexSelectRowsGathers) {
  const Tensor a = Tensor::from_vector({1, 2, 3, 4, 5, 6}, Shape{3, 2});
  const Tensor g = index_select_rows(a, {2, 0, 2});
  EXPECT_EQ(g.shape(), Shape({3, 2}));
  EXPECT_EQ(g.to_vector(), (std::vector<real>{5, 6, 1, 2, 5, 6}));
  EXPECT_THROW(index_select_rows(a, {3}), Error);
}

TEST(OpsTest, ScatterAddRowsAggregates) {
  const Tensor src = Tensor::from_vector({1, 1, 2, 2, 4, 4}, Shape{3, 2});
  const Tensor out = scatter_add_rows(src, {1, 1, 0}, 2);
  EXPECT_EQ(out.shape(), Shape({2, 2}));
  EXPECT_EQ(out.to_vector(), (std::vector<real>{4, 4, 3, 3}));
  EXPECT_THROW(scatter_add_rows(src, {0, 1}, 2), Error);
  EXPECT_THROW(scatter_add_rows(src, {0, 1, 2}, 2), Error);
}

TEST(OpsTest, RowNormSquared) {
  const Tensor a = Tensor::from_vector({3, 4, 0, 5}, Shape{2, 2});
  const Tensor n = row_norm_squared(a);
  EXPECT_EQ(n.shape(), Shape({2, 1}));
  EXPECT_EQ(n.to_vector(), (std::vector<real>{25, 25}));
}

TEST(OpsTest, MseLossValue) {
  const Tensor p = Tensor::from_vector({1, 2}, Shape{2});
  const Tensor t = Tensor::from_vector({0, 4}, Shape{2});
  EXPECT_DOUBLE_EQ(mse_loss(p, t).item(), (1.0 + 4.0) / 2.0);
}

}  // namespace
}  // namespace sgnn
