// Physics-substrate property tests: velocity-Verlet molecular dynamics
// under the reference potential. A symplectic integrator with a smooth,
// conservative force field must (a) conserve total energy to O(dt^2) and
// (b) conserve momentum exactly — sharp checks that the analytic forces
// ARE the gradient of the energy across the full composite potential.

#include <gtest/gtest.h>

#include <cmath>

#include "sgnn/graph/neighbor.hpp"
#include "sgnn/potential/potential.hpp"
#include "sgnn/util/rng.hpp"

namespace sgnn {
namespace {

struct MdState {
  AtomicStructure structure;
  std::vector<Vec3> velocity;
};

double kinetic_energy(const MdState& state) {
  double twice_ke = 0;
  for (std::size_t i = 0; i < state.velocity.size(); ++i) {
    // Unit system: mass in amu, velocity in A/tau with tau chosen so that
    // 1 amu * (A/tau)^2 = 1 eV (keeps the test free of unit constants).
    twice_ke += elements::atomic_mass(state.structure.species[i]) *
                state.velocity[i].norm_squared();
  }
  return 0.5 * twice_ke;
}

Vec3 total_momentum(const MdState& state) {
  Vec3 p{0, 0, 0};
  for (std::size_t i = 0; i < state.velocity.size(); ++i) {
    p += state.velocity[i] *
         elements::atomic_mass(state.structure.species[i]);
  }
  return p;
}

/// One velocity-Verlet step; returns the new forces.
std::vector<Vec3> verlet_step(MdState& state, std::vector<Vec3>& forces,
                              const ReferencePotential& potential,
                              double dt) {
  for (std::size_t i = 0; i < state.velocity.size(); ++i) {
    const double inv_m =
        1.0 / elements::atomic_mass(state.structure.species[i]);
    state.velocity[i] += forces[i] * (0.5 * dt * inv_m);
    state.structure.positions[i] += state.velocity[i] * dt;
  }
  std::vector<Vec3> new_forces = potential.evaluate(state.structure).forces;
  for (std::size_t i = 0; i < state.velocity.size(); ++i) {
    const double inv_m =
        1.0 / elements::atomic_mass(state.structure.species[i]);
    state.velocity[i] += new_forces[i] * (0.5 * dt * inv_m);
  }
  return new_forces;
}

MdState equilibrated_cluster(std::int64_t atoms, std::uint64_t seed) {
  Rng rng(seed);
  MdState state;
  const int palette[] = {elements::kCu, elements::kNi};
  for (std::int64_t i = 0; i < atoms; ++i) {
    for (;;) {
      const Vec3 p{rng.uniform(0, 8), rng.uniform(0, 8), rng.uniform(0, 8)};
      bool ok = true;
      for (const auto& q : state.structure.positions) {
        if ((p - q).norm() < 2.2) {
          ok = false;
          break;
        }
      }
      if (ok) {
        state.structure.positions.push_back(p);
        state.structure.species.push_back(palette[rng.uniform_index(2)]);
        break;
      }
    }
  }
  // Small random velocities, net momentum removed.
  state.velocity.resize(static_cast<std::size_t>(atoms));
  Vec3 mean{0, 0, 0};
  for (auto& v : state.velocity) {
    v = {rng.normal(0, 0.02), rng.normal(0, 0.02), rng.normal(0, 0.02)};
    mean += v;
  }
  mean = mean / static_cast<double>(atoms);
  for (auto& v : state.velocity) v -= mean;
  return state;
}

TEST(MdTest, VelocityVerletConservesEnergy) {
  const ReferencePotential potential;
  MdState state = equilibrated_cluster(12, 5);
  std::vector<Vec3> forces = potential.evaluate(state.structure).forces;

  const double e0 =
      potential.evaluate(state.structure).energy + kinetic_energy(state);
  const double dt = 2e-3;
  double max_drift = 0;
  for (int step = 0; step < 500; ++step) {
    forces = verlet_step(state, forces, potential, dt);
    if (step % 50 == 0) {
      const double e = potential.evaluate(state.structure).energy +
                       kinetic_energy(state);
      max_drift = std::max(max_drift, std::abs(e - e0));
    }
  }
  // Symplectic integration with a C1 potential: energy stays within a small
  // bounded oscillation of the initial value.
  EXPECT_LT(max_drift, 5e-3 * std::abs(e0));
}

TEST(MdTest, EnergyErrorShrinksQuadraticallyWithTimestep) {
  const ReferencePotential potential;
  const auto drift_for = [&](double dt) {
    MdState state = equilibrated_cluster(10, 6);
    std::vector<Vec3> forces = potential.evaluate(state.structure).forces;
    const double e0 =
        potential.evaluate(state.structure).energy + kinetic_energy(state);
    const double horizon = 0.4;  // fixed physical time
    const int steps = static_cast<int>(horizon / dt);
    for (int step = 0; step < steps; ++step) {
      forces = verlet_step(state, forces, potential, dt);
    }
    return std::abs(potential.evaluate(state.structure).energy +
                    kinetic_energy(state) - e0);
  };
  const double coarse = drift_for(4e-3);
  const double fine = drift_for(1e-3);
  // O(dt^2) global energy error: 4x smaller dt -> ~16x smaller drift.
  // Allow generous slack for the chaotic trajectory.
  EXPECT_LT(fine, coarse / 4.0);
}

TEST(MdTest, MomentumIsConservedExactly) {
  const ReferencePotential potential;
  MdState state = equilibrated_cluster(14, 7);
  std::vector<Vec3> forces = potential.evaluate(state.structure).forces;
  const Vec3 p0 = total_momentum(state);
  for (int step = 0; step < 200; ++step) {
    forces = verlet_step(state, forces, potential, 2e-3);
  }
  // Newton's third law in the force field => momentum conserved to
  // round-off.
  EXPECT_NEAR((total_momentum(state) - p0).norm(), 0.0, 1e-10);
}

TEST(MdTest, PeriodicSystemStaysBounded) {
  const ReferencePotential potential;
  Rng rng(8);
  MdState state;
  state.structure.cell = {9, 9, 9};
  state.structure.periodic = true;
  for (std::int64_t i = 0; i < 3; ++i) {
    for (std::int64_t j = 0; j < 3; ++j) {
      for (std::int64_t k = 0; k < 3; ++k) {
        state.structure.species.push_back(elements::kCu);
        state.structure.positions.push_back(
            {3.0 * static_cast<double>(i) + 1.5 + rng.normal(0, 0.05),
             3.0 * static_cast<double>(j) + 1.5 + rng.normal(0, 0.05),
             3.0 * static_cast<double>(k) + 1.5 + rng.normal(0, 0.05)});
      }
    }
  }
  state.velocity.assign(27, Vec3{0, 0, 0});
  std::vector<Vec3> forces = potential.evaluate(state.structure).forces;
  const double e0 =
      potential.evaluate(state.structure).energy + kinetic_energy(state);
  for (int step = 0; step < 300; ++step) {
    forces = verlet_step(state, forces, potential, 2e-3);
    state.structure.wrap_positions();
  }
  const double e1 =
      potential.evaluate(state.structure).energy + kinetic_energy(state);
  EXPECT_LT(std::abs(e1 - e0), 5e-3 * std::abs(e0));
  for (const auto& p : state.structure.positions) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 9.0);
  }
}

}  // namespace
}  // namespace sgnn
