// sgnn::kernels backend layer: dispatch plumbing, the IEEE-754 matmul
// regression (no zero-skip), scalar<->SIMD agreement at the documented
// tolerances, the fp32 compute flavour, and the saturating KernelScope
// cost arithmetic.

#include "sgnn/tensor/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "sgnn/obs/prof.hpp"
#include "sgnn/tensor/ops.hpp"
#include "sgnn/tensor/tensor.hpp"
#include "sgnn/util/rng.hpp"

namespace sgnn {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

std::vector<real> random_vector(std::int64_t n, std::uint64_t seed,
                                double lo = -2.0, double hi = 2.0) {
  Rng rng(seed);
  return Tensor::uniform(Shape{n}, rng, lo, hi).to_vector();
}

/// Backends to sweep: scalar always, SIMD when this machine has it.
std::vector<kernels::Backend> available_backends() {
  std::vector<kernels::Backend> backends = {kernels::Backend::kScalar};
  if (kernels::simd_available()) {
    backends.push_back(kernels::Backend::kSimd);
  }
  return backends;
}

// -- dispatch ---------------------------------------------------------------

TEST(KernelDispatch, NamesAreStable) {
  EXPECT_STREQ(kernels::backend_name(kernels::Backend::kScalar), "scalar");
  EXPECT_STREQ(kernels::backend_name(kernels::Backend::kSimd), "simd");
  EXPECT_STREQ(kernels::dtype_name(kernels::ComputeDtype::kFloat64),
               "float64");
  EXPECT_STREQ(kernels::dtype_name(kernels::ComputeDtype::kFloat32),
               "float32");
}

TEST(KernelDispatch, ScopedBackendOverridesSelection) {
  {
    kernels::ScopedBackend scope(kernels::Backend::kScalar);
    EXPECT_EQ(kernels::active_backend(), kernels::Backend::kScalar);
    EXPECT_EQ(&kernels::active_table(), &kernels::scalar_table());
  }
  if (kernels::simd_available()) {
    kernels::ScopedBackend scope(kernels::Backend::kSimd);
    EXPECT_EQ(kernels::active_backend(), kernels::Backend::kSimd);
    EXPECT_EQ(&kernels::active_table(), &kernels::simd_table());
  }
}

TEST(KernelDispatch, ScopedComputeDtypeControlsElementSize) {
  // Pin the ambient dtype: the CI fp32-smoke leg runs this binary with
  // SGNN_COMPUTE_DTYPE=float32 exported.
  kernels::ScopedComputeDtype ambient(kernels::ComputeDtype::kFloat64);
  EXPECT_EQ(kernels::compute_element_size(), 8);
  {
    kernels::ScopedComputeDtype scope(kernels::ComputeDtype::kFloat32);
    EXPECT_EQ(kernels::active_compute_dtype(),
              kernels::ComputeDtype::kFloat32);
    EXPECT_EQ(kernels::compute_element_size(), 4);
  }
  EXPECT_EQ(kernels::compute_element_size(), 8);
}

TEST(KernelDispatch, TablesAreFullyPopulated) {
  for (const auto* table : {&kernels::scalar_table(),
                            &kernels::simd_table()}) {
    EXPECT_NE(table->matmul_rows_f64, nullptr);
    EXPECT_NE(table->matmul_rows_f32, nullptr);
    EXPECT_NE(table->matmul_at_b_band_f64, nullptr);
    EXPECT_NE(table->matmul_a_bt_rows_f64, nullptr);
    EXPECT_NE(table->binary_f64, nullptr);
    EXPECT_NE(table->binary_bwd_f64, nullptr);
    EXPECT_NE(table->unary_f64, nullptr);
    EXPECT_NE(table->unary_bwd_f64, nullptr);
    EXPECT_NE(table->sum_chunk_f64, nullptr);
    EXPECT_NE(table->accumulate_f64, nullptr);
  }
}

// -- IEEE-754 regression: matmul must not skip zero operands ----------------
//
// The old inner loop had `if (av == 0) continue;`, which silently turned
// 0 * Inf and 0 * NaN into 0 instead of NaN. Pin the correct semantics on
// every backend, through the autograd op and the raw drivers.

TEST(KernelIeee, MatmulPropagatesZeroTimesInfAsNan) {
  for (const auto backend : available_backends()) {
    kernels::ScopedBackend scope(backend);
    // [0 1] @ [[inf] [2]]: the zero row entry meets Inf -> NaN, which must
    // not be masked by the finite 1*2 term.
    const Tensor a = Tensor::from_vector({0.0, 1.0}, Shape{1, 2});
    const Tensor b = Tensor::from_vector({kInf, 2.0}, Shape{2, 1});
    const auto c = matmul(a, b).to_vector();
    EXPECT_TRUE(std::isnan(c[0]))
        << "backend " << kernels::backend_name(backend) << " produced "
        << c[0];
  }
}

TEST(KernelIeee, MatmulPropagatesNanThroughZeroRows) {
  for (const auto backend : available_backends()) {
    kernels::ScopedBackend scope(backend);
    const Tensor a = Tensor::from_vector({0.0, 0.0}, Shape{1, 2});
    const Tensor b = Tensor::from_vector({kNaN, 7.0}, Shape{2, 1});
    const auto c = matmul(a, b).to_vector();
    EXPECT_TRUE(std::isnan(c[0]))
        << "backend " << kernels::backend_name(backend) << " produced "
        << c[0];
  }
}

TEST(KernelIeee, MatmulKeepsInfinityWhenUnmasked) {
  for (const auto backend : available_backends()) {
    kernels::ScopedBackend scope(backend);
    const Tensor a = Tensor::from_vector({1.0, 0.0, 3.0}, Shape{1, 3});
    const Tensor b = Tensor::from_vector({kInf, 5.0, 1.0}, Shape{3, 1});
    const auto c = matmul(a, b).to_vector();
    // 1*Inf + 0*5 + 3*1: the 0*5 term is finite, so the Inf survives.
    EXPECT_TRUE(std::isinf(c[0]) && c[0] > 0)
        << "backend " << kernels::backend_name(backend) << " produced "
        << c[0];
  }
}

TEST(KernelIeee, TransposedVariantsPropagateNonFinites) {
  for (const auto backend : available_backends()) {
    kernels::ScopedBackend scope(backend);
    // a(2,1), b(2,1): a^T b = 0*Inf + 1*2 -> NaN.
    const std::vector<real> a = {0.0, 1.0};
    const std::vector<real> b = {kInf, 2.0};
    real at_b = 0;
    kernels::matmul_at_b(a.data(), b.data(), &at_b, 2, 1, 1);
    EXPECT_TRUE(std::isnan(at_b))
        << "at_b on " << kernels::backend_name(backend) << ": " << at_b;
    // a(1,2) @ b(1,2)^T: same dot product through the a_bt kernel.
    real a_bt = 0;
    kernels::matmul_a_bt(a.data(), b.data(), &a_bt, 1, 2, 1);
    EXPECT_TRUE(std::isnan(a_bt))
        << "a_bt on " << kernels::backend_name(backend) << ": " << a_bt;
  }
}

// -- scalar <-> SIMD agreement ----------------------------------------------
//
// matmul, matmul_at_b, elementwise and accumulate are bit-identical across
// backends (same per-element mul+add order, FMA disabled); matmul_a_bt and
// the full sum split dot products across lanes and carry a 1e-12 relative
// tolerance (see docs/kernels.md).

class KernelAgreement : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kernels::simd_available()) {
      GTEST_SKIP() << "SIMD backend not available on this machine";
    }
  }
};

TEST_F(KernelAgreement, MatmulIsBitIdentical) {
  const std::int64_t m = 17, k = 23, n = 19;  // odd: exercises vector tails
  const auto a = random_vector(m * k, 101);
  const auto b = random_vector(k * n, 202);
  std::vector<real> scalar_c(m * n), simd_c(m * n);
  {
    kernels::ScopedBackend scope(kernels::Backend::kScalar);
    kernels::matmul(a.data(), b.data(), scalar_c.data(), m, k, n);
  }
  {
    kernels::ScopedBackend scope(kernels::Backend::kSimd);
    kernels::matmul(a.data(), b.data(), simd_c.data(), m, k, n);
  }
  for (std::size_t i = 0; i < scalar_c.size(); ++i) {
    ASSERT_EQ(scalar_c[i], simd_c[i]) << "element " << i;
  }
}

TEST_F(KernelAgreement, MatmulAtBIsBitIdentical) {
  const std::int64_t m = 23, k = 17, n = 19;
  const auto a = random_vector(m * k, 303);
  const auto b = random_vector(m * n, 404);
  std::vector<real> scalar_c(k * n), simd_c(k * n);
  {
    kernels::ScopedBackend scope(kernels::Backend::kScalar);
    kernels::matmul_at_b(a.data(), b.data(), scalar_c.data(), m, k, n);
  }
  {
    kernels::ScopedBackend scope(kernels::Backend::kSimd);
    kernels::matmul_at_b(a.data(), b.data(), simd_c.data(), m, k, n);
  }
  for (std::size_t i = 0; i < scalar_c.size(); ++i) {
    ASSERT_EQ(scalar_c[i], simd_c[i]) << "element " << i;
  }
}

TEST_F(KernelAgreement, MatmulABtAgreesToDocumentedTolerance) {
  const std::int64_t m = 17, n = 23, k = 19;
  const auto a = random_vector(m * n, 505);
  const auto b = random_vector(k * n, 606);
  std::vector<real> scalar_c(m * k), simd_c(m * k);
  {
    kernels::ScopedBackend scope(kernels::Backend::kScalar);
    kernels::matmul_a_bt(a.data(), b.data(), scalar_c.data(), m, n, k);
  }
  {
    kernels::ScopedBackend scope(kernels::Backend::kSimd);
    kernels::matmul_a_bt(a.data(), b.data(), simd_c.data(), m, n, k);
  }
  for (std::size_t i = 0; i < scalar_c.size(); ++i) {
    const double denom = std::max(std::abs(scalar_c[i]), 1.0);
    ASSERT_LE(std::abs(scalar_c[i] - simd_c[i]) / denom, 1e-12)
        << "element " << i << ": " << scalar_c[i] << " vs " << simd_c[i];
  }
}

TEST_F(KernelAgreement, ElementwiseForwardAndBackwardAreBitIdentical) {
  const std::int64_t n = 10007;  // prime: never a multiple of the lane width
  const auto a = random_vector(n, 707, 0.5, 2.0);
  const auto b = random_vector(n, 808, 0.5, 2.0);
  const auto g = random_vector(n, 909);

  using kernels::BinaryOp;
  using kernels::UnaryOp;
  for (const auto op : {BinaryOp::kAdd, BinaryOp::kSub, BinaryOp::kMul,
                        BinaryOp::kDiv}) {
    std::vector<real> scalar_out(n), simd_out(n);
    std::vector<real> scalar_ga(n), scalar_gb(n), simd_ga(n), simd_gb(n);
    {
      kernels::ScopedBackend scope(kernels::Backend::kScalar);
      kernels::binary(op, a.data(), b.data(), scalar_out.data(), n);
      kernels::binary_backward(op, a.data(), b.data(), g.data(),
                               scalar_ga.data(), scalar_gb.data(), n);
    }
    {
      kernels::ScopedBackend scope(kernels::Backend::kSimd);
      kernels::binary(op, a.data(), b.data(), simd_out.data(), n);
      kernels::binary_backward(op, a.data(), b.data(), g.data(),
                               simd_ga.data(), simd_gb.data(), n);
    }
    for (std::size_t i = 0; i < scalar_out.size(); ++i) {
      ASSERT_EQ(scalar_out[i], simd_out[i]) << "binary op " << static_cast<int>(op);
      ASSERT_EQ(scalar_ga[i], simd_ga[i]) << "binary bwd ga " << static_cast<int>(op);
      ASSERT_EQ(scalar_gb[i], simd_gb[i]) << "binary bwd gb " << static_cast<int>(op);
    }
  }

  const struct {
    UnaryOp op;
    real c;
  } unary_cases[] = {
      {UnaryOp::kNeg, 0},        {UnaryOp::kScale, 1.7},
      {UnaryOp::kAddScalar, .5}, {UnaryOp::kPow, 3.0},
      {UnaryOp::kSquare, 0},     {UnaryOp::kSqrt, 0},
      {UnaryOp::kExp, 0},        {UnaryOp::kLog, 0},
      {UnaryOp::kAbs, 0},        {UnaryOp::kClampMin, 1.0},
      {UnaryOp::kRelu, 0},       {UnaryOp::kSigmoid, 0},
      {UnaryOp::kTanh, 0},       {UnaryOp::kSilu, 0},
      {UnaryOp::kSoftplus, 0},
  };
  for (const auto& c : unary_cases) {
    std::vector<real> scalar_out(n), simd_out(n), scalar_gx(n), simd_gx(n);
    {
      kernels::ScopedBackend scope(kernels::Backend::kScalar);
      kernels::unary(c.op, a.data(), scalar_out.data(), c.c, n);
      kernels::unary_backward(c.op, a.data(), g.data(), scalar_gx.data(),
                              c.c, n);
    }
    {
      kernels::ScopedBackend scope(kernels::Backend::kSimd);
      kernels::unary(c.op, a.data(), simd_out.data(), c.c, n);
      kernels::unary_backward(c.op, a.data(), g.data(), simd_gx.data(), c.c,
                              n);
    }
    for (std::size_t i = 0; i < scalar_out.size(); ++i) {
      ASSERT_EQ(scalar_out[i], simd_out[i]) << "unary op " << static_cast<int>(c.op);
      ASSERT_EQ(scalar_gx[i], simd_gx[i]) << "unary bwd " << static_cast<int>(c.op);
    }
  }
}

TEST_F(KernelAgreement, ReductionsAgree) {
  const std::int64_t n = 4099;
  const auto x = random_vector(n, 1111);
  double scalar_sum = 0, simd_sum = 0;
  std::vector<real> scalar_acc(257, 0.25), simd_acc(257, 0.25);
  {
    kernels::ScopedBackend scope(kernels::Backend::kScalar);
    scalar_sum = kernels::reduce_sum(x.data(), n);
    kernels::accumulate(x.data(), scalar_acc.data(), 257);
  }
  {
    kernels::ScopedBackend scope(kernels::Backend::kSimd);
    simd_sum = kernels::reduce_sum(x.data(), n);
    kernels::accumulate(x.data(), simd_acc.data(), 257);
  }
  // Full sum splits across lanes: documented 1e-12 relative tolerance.
  EXPECT_LE(std::abs(scalar_sum - simd_sum) /
                std::max(std::abs(scalar_sum), 1.0),
            1e-12);
  // accumulate is a pure elementwise add: bit-identical.
  for (std::size_t i = 0; i < scalar_acc.size(); ++i) {
    ASSERT_EQ(scalar_acc[i], simd_acc[i]) << "accumulate element " << i;
  }
}

// -- fp32 compute flavour ---------------------------------------------------

TEST(KernelFp32, MatmulMatchesFp64WithinRoundingTolerance) {
  const std::int64_t m = 13, k = 29, n = 11;
  const auto a = random_vector(m * k, 1212);
  const auto b = random_vector(k * n, 1313);
  std::vector<real> c64(m * n), c32(m * n);
  kernels::matmul(a.data(), b.data(), c64.data(), m, k, n);
  {
    kernels::ScopedComputeDtype scope(kernels::ComputeDtype::kFloat32);
    kernels::matmul(a.data(), b.data(), c32.data(), m, k, n);
  }
  for (std::size_t i = 0; i < c64.size(); ++i) {
    const double denom = std::max(std::abs(c64[i]), 1.0);
    // float has a 2^-24 epsilon; a k=29 dot product stays well under 1e-4.
    ASSERT_LE(std::abs(c64[i] - c32[i]) / denom, 1e-4)
        << "element " << i << ": " << c64[i] << " vs " << c32[i];
    // And the rounding must actually happen: the result is representable
    // arithmetic over floats, not the fp64 result relabeled.
    ASSERT_EQ(c32[i], c32[i]);  // no NaNs from the scratch plumbing
  }
}

TEST(KernelFp32, ElementwiseRoundsOperandsThroughFloat) {
  // 1 + 2^-40 is invisible in float: the fp32 flavour must return exactly
  // 1 + 2 = 3 with the tiny addend rounded away, fp64 must keep it.
  const real tiny = 1.0 + std::pow(2.0, -40);
  const std::vector<real> a = {tiny};
  const std::vector<real> b = {2.0};
  real out64 = 0, out32 = 0;
  {
    kernels::ScopedComputeDtype scope(kernels::ComputeDtype::kFloat64);
    kernels::binary(kernels::BinaryOp::kAdd, a.data(), b.data(), &out64, 1);
  }
  {
    kernels::ScopedComputeDtype scope(kernels::ComputeDtype::kFloat32);
    kernels::binary(kernels::BinaryOp::kAdd, a.data(), b.data(), &out32, 1);
  }
  EXPECT_GT(out64, 3.0);
  EXPECT_EQ(out32, 3.0);
}

// -- saturating KernelScope cost arithmetic ---------------------------------

TEST(SatArith, ProductsClampAtInt64Max) {
  using obs::prof::sat_add;
  using obs::prof::sat_mul;
  const std::int64_t max = std::numeric_limits<std::int64_t>::max();

  // Exact below the boundary.
  EXPECT_EQ(sat_mul(std::int64_t{1} << 31, std::int64_t{1} << 31),
            std::int64_t{1} << 62);
  EXPECT_EQ(sat_mul(3, 5, 7), 105);
  EXPECT_EQ(sat_mul(2, 3, 5, 7), 210);
  EXPECT_EQ(sat_add(max - 1, 1), max);

  // Clamped at and past it. 3037000500^2 is the first square past 2^63.
  EXPECT_EQ(sat_mul(3037000500LL, 3037000500LL), max);
  EXPECT_EQ(sat_mul(max, 2), max);
  EXPECT_EQ(sat_add(max, 1), max);
  EXPECT_EQ(sat_add(max, max, max), max);
  // A clamped partial product stays clamped through further factors.
  EXPECT_EQ(sat_mul(max, 2, 3), max);
  EXPECT_EQ(sat_mul(std::int64_t{1} << 40, std::int64_t{1} << 40, 2), max);
}

TEST(SatArith, MatmulCostsSurviveHugeShapes) {
  // The expressions ops_linalg.cpp feeds KernelScope: 2*m*k*n FLOPs for a
  // shape whose product overflows int64 must clamp, not wrap negative.
  using obs::prof::sat_mul;
  const std::int64_t huge = std::int64_t{1} << 31;
  EXPECT_EQ(sat_mul(2, huge, huge, huge),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_GT(sat_mul(2, huge, huge, huge), 0);
}

}  // namespace
}  // namespace sgnn
