// Multi-task learning: the third (dipole-magnitude) prediction target,
// end-to-end — teacher labels, serialization, batching, the extra head,
// and the composite loss.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "sgnn/data/sources.hpp"
#include "sgnn/graph/batch.hpp"
#include "sgnn/nn/egnn.hpp"
#include "sgnn/store/serialize.hpp"
#include "sgnn/tensor/ops.hpp"
#include "sgnn/train/loss.hpp"
#include "sgnn/train/optim.hpp"
#include "sgnn/util/rng.hpp"

namespace sgnn {
namespace {

AtomicStructure water_like() {
  AtomicStructure s;
  s.species = {elements::kO, elements::kH, elements::kH};
  s.positions = {{0, 0, 0}, {0.96, 0, 0}, {-0.24, 0.93, 0}};
  return s;
}

TEST(DipoleLabelTest, InvariantUnderRotationAndTranslation) {
  const ReferencePotential potential;
  AtomicStructure s = water_like();
  const double d0 = potential.dipole_magnitude(s);
  EXPECT_GT(d0, 0.0);

  for (auto& p : s.positions) {
    const Vec3 rotated{-p.y, p.x, p.z};
    p = rotated + Vec3{10, -3, 2};
  }
  EXPECT_NEAR(potential.dipole_magnitude(s), d0, 1e-12);
}

TEST(DipoleLabelTest, SymmetricStructureHasZeroDipole) {
  // Two identical atoms: charges equal, centroid-symmetric -> zero dipole.
  const ReferencePotential potential;
  AtomicStructure s;
  s.species = {elements::kO, elements::kO};
  s.positions = {{0, 0, 0}, {2, 0, 0}};
  EXPECT_NEAR(potential.dipole_magnitude(s), 0.0, 1e-12);
}

TEST(DipoleLabelTest, GeneratedSamplesCarryDipoleLabels) {
  const ReferencePotential potential;
  Rng rng(5);
  const MolecularGraph g =
      generate_sample(DataSource::kANI1x, rng, potential);
  EXPECT_GT(g.dipole, 0.0);
  EXPECT_TRUE(std::isfinite(g.dipole));
}

TEST(DipoleLabelTest, SurvivesSerializationRoundTrip) {
  const ReferencePotential potential;
  Rng rng(6);
  const MolecularGraph g =
      generate_sample(DataSource::kQM7X, rng, potential);
  std::stringstream buffer;
  write_graph_record(buffer, g);
  const MolecularGraph back = read_graph_record(buffer);
  EXPECT_DOUBLE_EQ(back.dipole, g.dipole);
  EXPECT_EQ(buffer.str().size(), g.serialized_bytes());
}

TEST(DipoleLabelTest, BatchCarriesDipoleColumn) {
  const ReferencePotential potential;
  Rng rng(7);
  std::vector<MolecularGraph> graphs = {
      generate_sample(DataSource::kANI1x, rng, potential),
      generate_sample(DataSource::kMPTrj, rng, potential)};
  const GraphBatch batch = GraphBatch::from_graphs(graphs);
  EXPECT_EQ(batch.dipole.shape(), Shape({2, 1}));
  EXPECT_DOUBLE_EQ(batch.dipole.at(0, 0), graphs[0].dipole);
  EXPECT_DOUBLE_EQ(batch.dipole.at(1, 0), graphs[1].dipole);
}

TEST(MultitaskModelTest, DipoleHeadShapeAndParameterCount) {
  ModelConfig config;
  config.hidden_dim = 16;
  config.num_layers = 2;
  config.predict_dipole = true;
  const EGNNModel model(config);
  EXPECT_EQ(model.num_parameters(), config.parameter_count());

  ModelConfig without = config;
  without.predict_dipole = false;
  EXPECT_GT(config.parameter_count(), without.parameter_count());

  const ReferencePotential potential;
  Rng rng(8);
  const MolecularGraph g =
      generate_sample(DataSource::kANI1x, rng, potential);
  const GraphBatch batch =
      GraphBatch::from_graphs(std::vector<const MolecularGraph*>{&g});
  const auto out = model.forward(batch);
  ASSERT_TRUE(out.dipole.defined());
  EXPECT_EQ(out.dipole.shape(), Shape({1, 1}));
  EXPECT_GE(out.dipole.item(), 0.0);  // softplus head is non-negative

  const EGNNModel single(without);
  EXPECT_FALSE(single.forward(batch).dipole.defined());
}

TEST(MultitaskModelTest, LossIncludesDipoleTermOnlyWhenPredicted) {
  const ReferencePotential potential;
  Rng rng(9);
  const MolecularGraph g =
      generate_sample(DataSource::kANI1x, rng, potential);
  const GraphBatch batch =
      GraphBatch::from_graphs(std::vector<const MolecularGraph*>{&g});

  ModelConfig config;
  config.hidden_dim = 12;
  config.num_layers = 2;
  config.predict_dipole = true;
  const EGNNModel multi(config);
  const LossTerms with_dipole =
      multitask_loss(multi.forward(batch), batch, LossWeights{});
  EXPECT_GT(with_dipole.dipole_mse, 0.0);

  config.predict_dipole = false;
  const EGNNModel single(config);
  const LossTerms without =
      multitask_loss(single.forward(batch), batch, LossWeights{});
  EXPECT_EQ(without.dipole_mse, 0.0);

  // Weight scales the term.
  LossWeights heavy;
  heavy.dipole = 100.0;
  const LossTerms weighted =
      multitask_loss(multi.forward(batch), batch, heavy);
  EXPECT_GT(weighted.total.item(), with_dipole.total.item());
}

TEST(MultitaskModelTest, DipoleTaskIsLearnable) {
  // Fixed batch, many steps: dipole MSE must drop substantially.
  const ReferencePotential potential;
  Rng rng(10);
  std::vector<MolecularGraph> graphs;
  for (int i = 0; i < 6; ++i) {
    graphs.push_back(generate_sample(DataSource::kANI1x, rng, potential));
  }
  const GraphBatch batch = GraphBatch::from_graphs(graphs);

  ModelConfig config;
  config.hidden_dim = 16;
  config.num_layers = 2;
  config.predict_dipole = true;
  const EGNNModel model(config);
  Adam::Options adam_options;
  adam_options.learning_rate = 5e-3;
  Adam adam(model.parameters(), adam_options);

  double first = 0;
  double last = 0;
  for (int step = 0; step < 60; ++step) {
    adam.zero_grad();
    const auto out = model.forward(batch);
    Tensor loss = mse_loss(out.dipole, batch.dipole);
    if (step == 0) first = loss.item();
    last = loss.item();
    loss.backward();
    adam.step();
  }
  EXPECT_LT(last, 0.3 * first);
}

}  // namespace
}  // namespace sgnn
