#include "sgnn/tensor/tensor.hpp"

#include <gtest/gtest.h>

#include "sgnn/tensor/ops.hpp"
#include "sgnn/util/error.hpp"

namespace sgnn {
namespace {

TEST(TensorTest, DefaultConstructedIsUndefined) {
  const Tensor t;
  EXPECT_FALSE(t.defined());
  EXPECT_THROW(t.shape(), Error);
}

TEST(TensorTest, ZerosInitializesToZero) {
  const Tensor t = Tensor::zeros(Shape{2, 3});
  for (const auto v : t.to_vector()) EXPECT_EQ(v, 0.0);
  EXPECT_EQ(t.numel(), 6);
}

TEST(TensorTest, FullFillsValue) {
  const Tensor t = Tensor::full(Shape{4}, 2.5);
  for (const auto v : t.to_vector()) EXPECT_EQ(v, 2.5);
}

TEST(TensorTest, ScalarItemRoundTrip) {
  EXPECT_DOUBLE_EQ(Tensor::scalar(-3.25).item(), -3.25);
}

TEST(TensorTest, ItemOnNonScalarThrows) {
  EXPECT_THROW(Tensor::zeros(Shape{2}).item(), Error);
}

TEST(TensorTest, FromVectorPreservesOrder) {
  const Tensor t = Tensor::from_vector({1, 2, 3, 4, 5, 6}, Shape{2, 3});
  EXPECT_DOUBLE_EQ(t.at(0, 0), 1);
  EXPECT_DOUBLE_EQ(t.at(0, 2), 3);
  EXPECT_DOUBLE_EQ(t.at(1, 0), 4);
  EXPECT_DOUBLE_EQ(t.at(1, 2), 6);
}

TEST(TensorTest, FromVectorSizeMismatchThrows) {
  EXPECT_THROW(Tensor::from_vector({1, 2, 3}, Shape{2, 2}), Error);
}

TEST(TensorTest, RandnIsDeterministicPerSeed) {
  Rng rng1(42);
  Rng rng2(42);
  const auto a = Tensor::randn(Shape{8}, rng1).to_vector();
  const auto b = Tensor::randn(Shape{8}, rng2).to_vector();
  EXPECT_EQ(a, b);
}

TEST(TensorTest, CopyAliasesStorage) {
  Tensor a = Tensor::zeros(Shape{3});
  const Tensor b = a;  // NOLINT: aliasing is the point
  a.data()[1] = 7.0;
  EXPECT_DOUBLE_EQ(b.to_vector()[1], 7.0);
}

TEST(TensorTest, CloneCopiesStorage) {
  Tensor a = Tensor::full(Shape{3}, 1.0);
  Tensor b = a.clone();
  b.data()[0] = 9.0;
  EXPECT_DOUBLE_EQ(a.to_vector()[0], 1.0);
}

TEST(TensorTest, DetachSharesDataButDropsGraph) {
  Tensor a = Tensor::ones(Shape{2}).set_requires_grad(true);
  const Tensor y = a * 2.0;
  ASSERT_TRUE(y.requires_grad());
  const Tensor d = y.detach();
  EXPECT_FALSE(d.requires_grad());
  EXPECT_EQ(d.to_vector(), y.to_vector());
}

TEST(TensorTest, RequiresGradOnlyOnLeaves) {
  Tensor a = Tensor::ones(Shape{2}).set_requires_grad(true);
  Tensor y = a + a;
  EXPECT_FALSE(y.is_leaf());
  EXPECT_THROW(y.set_requires_grad(true), Error);
}

TEST(TensorTest, BackwardScalarChain) {
  Tensor x = Tensor::scalar(3.0).set_requires_grad(true);
  Tensor y = square(x) * 2.0;  // y = 2 x^2, dy/dx = 4x = 12
  y.backward();
  ASSERT_TRUE(x.grad().defined());
  EXPECT_DOUBLE_EQ(x.grad().item(), 12.0);
}

TEST(TensorTest, BackwardAccumulatesAcrossCalls) {
  Tensor x = Tensor::scalar(1.0).set_requires_grad(true);
  (x * 3.0).backward();
  (x * 4.0).backward();
  EXPECT_DOUBLE_EQ(x.grad().item(), 7.0);
}

TEST(TensorTest, ZeroGradClearsAccumulator) {
  Tensor x = Tensor::scalar(1.0).set_requires_grad(true);
  (x * 3.0).backward();
  x.zero_grad();
  EXPECT_FALSE(x.grad().defined());
  (x * 4.0).backward();
  EXPECT_DOUBLE_EQ(x.grad().item(), 4.0);
}

TEST(TensorTest, BackwardDiamondAccumulatesBothPaths) {
  // y = x*x + x*x uses x through two paths sharing a node.
  Tensor x = Tensor::scalar(2.0).set_requires_grad(true);
  Tensor s = square(x);
  Tensor y = s + s;  // y = 2x^2, dy/dx = 4x = 8
  y.backward();
  EXPECT_DOUBLE_EQ(x.grad().item(), 8.0);
}

TEST(TensorTest, BackwardSameTensorBothOperands) {
  // add's backward returns the identical buffer twice; accumulation must
  // not corrupt it (regression test for in-place aliasing).
  Tensor x = Tensor::scalar(5.0).set_requires_grad(true);
  Tensor y = x + x;  // dy/dx = 2
  y.backward();
  EXPECT_DOUBLE_EQ(x.grad().item(), 2.0);
}

TEST(TensorTest, BackwardOnNonScalarRequiresGradOutput) {
  Tensor x = Tensor::ones(Shape{3}).set_requires_grad(true);
  Tensor y = x * 2.0;
  EXPECT_THROW(y.backward(), Error);
  y.backward(Tensor::from_vector({1, 10, 100}, Shape{3}));
  const auto g = x.grad().to_vector();
  EXPECT_DOUBLE_EQ(g[0], 2.0);
  EXPECT_DOUBLE_EQ(g[1], 20.0);
  EXPECT_DOUBLE_EQ(g[2], 200.0);
}

TEST(TensorTest, NoGradGuardSuppressesGraph) {
  Tensor x = Tensor::scalar(1.0).set_requires_grad(true);
  autograd::NoGradGuard guard;
  Tensor y = x * 2.0;
  EXPECT_FALSE(y.requires_grad());
}

TEST(TensorTest, EnableGradGuardRestoresRecording) {
  Tensor x = Tensor::scalar(1.0).set_requires_grad(true);
  autograd::NoGradGuard no_grad;
  {
    autograd::EnableGradGuard enable;
    EXPECT_TRUE((x * 2.0).requires_grad());
  }
  EXPECT_FALSE((x * 2.0).requires_grad());
}

TEST(TensorTest, GraphIsConsumedByBackward) {
  Tensor x = Tensor::scalar(2.0).set_requires_grad(true);
  Tensor y = square(x);
  y.backward();
  // Second backward on the consumed graph must fail loudly, not silently
  // produce wrong gradients.
  EXPECT_THROW(y.backward(), Error);
}

TEST(TensorTest, ToStringRendersShapeAndValues) {
  EXPECT_EQ(Tensor().to_string(), "Tensor(undefined)");
  const Tensor v = Tensor::from_vector({1, 2, 3}, Shape{3});
  EXPECT_EQ(v.to_string(), "Tensor[3] {1, 2, 3}");
  const Tensor m = Tensor::from_vector({1, 2, 3, 4}, Shape{2, 2});
  EXPECT_EQ(m.to_string(), "Tensor[2, 2] {{1, 2}, {3, 4}}");
}

TEST(TensorTest, ToStringElidesLargeTensors) {
  const Tensor big = Tensor::ones(Shape{100});
  const std::string s = big.to_string(4);
  EXPECT_NE(s.find("... (96 more)"), std::string::npos);
}

TEST(TensorTest, LongChainBackwardDoesNotOverflowStack) {
  Tensor x = Tensor::scalar(1.0).set_requires_grad(true);
  Tensor y = x;
  for (int i = 0; i < 20000; ++i) y = y + 0.0;
  y.backward();
  EXPECT_DOUBLE_EQ(x.grad().item(), 1.0);
}

}  // namespace
}  // namespace sgnn
