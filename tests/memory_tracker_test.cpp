#include "sgnn/tensor/memory_tracker.hpp"

#include <gtest/gtest.h>

#include "sgnn/tensor/ops.hpp"
#include "sgnn/tensor/tensor.hpp"

namespace sgnn {
namespace {

TEST(MemoryTrackerTest, AllocationRegistersUnderCurrentCategory) {
  auto& tracker = MemoryTracker::instance();
  const std::int64_t before = tracker.live().of(MemCategory::kWeight);
  {
    const ScopedMemCategory scope(MemCategory::kWeight);
    const Tensor t = Tensor::zeros(Shape{128});
    EXPECT_EQ(tracker.live().of(MemCategory::kWeight),
              before + 128 * static_cast<std::int64_t>(sizeof(real)));
  }
  EXPECT_EQ(tracker.live().of(MemCategory::kWeight), before);
}

TEST(MemoryTrackerTest, FreeRestoresOriginalCategoryEvenAfterScopeExit) {
  auto& tracker = MemoryTracker::instance();
  const std::int64_t before = tracker.live().of(MemCategory::kOptimizerState);
  Tensor t;
  {
    const ScopedMemCategory scope(MemCategory::kOptimizerState);
    t = Tensor::zeros(Shape{64});
  }
  // Freed outside the scope: bytes must come off the category they were
  // charged to, not the ambient one.
  EXPECT_GT(tracker.live().of(MemCategory::kOptimizerState), before);
  t = Tensor();
  EXPECT_EQ(tracker.live().of(MemCategory::kOptimizerState), before);
}

TEST(MemoryTrackerTest, ScopesNest) {
  const ScopedMemCategory outer(MemCategory::kWeight);
  EXPECT_EQ(MemoryTracker::current_category(), MemCategory::kWeight);
  {
    const ScopedMemCategory inner(MemCategory::kGradient);
    EXPECT_EQ(MemoryTracker::current_category(), MemCategory::kGradient);
  }
  EXPECT_EQ(MemoryTracker::current_category(), MemCategory::kWeight);
}

TEST(MemoryTrackerTest, PeakCapturesHighWaterMark) {
  auto& tracker = MemoryTracker::instance();
  tracker.reset_peak();
  const std::int64_t base = tracker.peak_total();
  {
    const Tensor big = Tensor::zeros(Shape{1024});
    EXPECT_GE(tracker.peak_total(),
              base + 1024 * static_cast<std::int64_t>(sizeof(real)));
  }
  // Peak persists after the allocation is freed.
  EXPECT_GE(tracker.peak_total(),
            base + 1024 * static_cast<std::int64_t>(sizeof(real)));
  tracker.reset_peak();
  EXPECT_LT(tracker.peak_total(),
            base + 1024 * static_cast<std::int64_t>(sizeof(real)));
}

TEST(MemoryTrackerTest, PeakPhaseAttribution) {
  auto& tracker = MemoryTracker::instance();
  tracker.reset_peak();
  {
    const ScopedTrainPhase phase(TrainPhase::kBackward);
    const Tensor spike = Tensor::zeros(Shape{1 << 16});
    (void)spike;
  }
  EXPECT_EQ(tracker.peak_phase(), TrainPhase::kBackward);
}

TEST(MemoryTrackerTest, PerPhasePeaksAreTrackedIndependently) {
  auto& tracker = MemoryTracker::instance();
  tracker.reset_peak();
  {
    const ScopedTrainPhase phase(TrainPhase::kForward);
    const Tensor forward_spike = Tensor::zeros(Shape{4096});
    (void)forward_spike;
  }
  {
    const ScopedTrainPhase phase(TrainPhase::kOptimizer);
    const Tensor small = Tensor::zeros(Shape{16});
    (void)small;
  }
  const auto fwd = tracker.peak_during(TrainPhase::kForward);
  const auto opt = tracker.peak_during(TrainPhase::kOptimizer);
  EXPECT_GT(fwd, opt);
  EXPECT_GE(fwd, 4096 * static_cast<std::int64_t>(sizeof(real)));
  // Backward never ran after the reset.
  EXPECT_EQ(tracker.peak_during(TrainPhase::kBackward), 0);
}

TEST(MemoryTrackerTest, FractionSumsToOne) {
  MemBreakdown b;
  b.bytes[0] = 300;
  b.bytes[1] = 700;
  EXPECT_EQ(b.total(), 1000);
  EXPECT_DOUBLE_EQ(b.fraction(MemCategory::kActivation), 0.3);
  EXPECT_DOUBLE_EQ(b.fraction(MemCategory::kWeight), 0.7);
}

TEST(MemoryTrackerTest, CategoryNamesAreStable) {
  EXPECT_STREQ(mem_category_name(MemCategory::kActivation), "activations");
  EXPECT_STREQ(mem_category_name(MemCategory::kOptimizerState),
               "optimizer states");
  EXPECT_STREQ(train_phase_name(TrainPhase::kOptimizer),
               "optimizer (weight update)");
}

TEST(MemoryTrackerTest, GradientsAccountedAsGradientMemory) {
  auto& tracker = MemoryTracker::instance();
  Tensor w;
  {
    const ScopedMemCategory scope(MemCategory::kWeight);
    w = Tensor::zeros(Shape{256});
    w.set_requires_grad(true);
  }
  const std::int64_t grad_before = tracker.live().of(MemCategory::kGradient);
  sum(square(w)).backward();
  // The persistent .grad buffer (at least) must be charged to gradients.
  EXPECT_GE(tracker.live().of(MemCategory::kGradient),
            grad_before + 256 * static_cast<std::int64_t>(sizeof(real)));
  w.zero_grad();
  w = Tensor();
}

}  // namespace
}  // namespace sgnn
