// Determinism and correctness of the shared ThreadPool: results of the
// parallel tensor kernels must be bit-identical for every pool size.

#include "sgnn/util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sgnn/data/sources.hpp"
#include "sgnn/graph/batch.hpp"
#include "sgnn/nn/egnn.hpp"
#include "sgnn/obs/metrics.hpp"
#include "sgnn/potential/potential.hpp"
#include "sgnn/tensor/ops.hpp"
#include "sgnn/train/optim.hpp"
#include "sgnn/train/schedule.hpp"
#include "sgnn/util/error.hpp"
#include "sgnn/util/rng.hpp"

namespace sgnn {
namespace {

/// Runs `body` at the given pool size, restoring the previous size after.
template <typename Fn>
auto with_pool_size(int num_threads, Fn body) {
  ThreadPool& pool = ThreadPool::instance();
  const int previous = pool.size();
  pool.resize(num_threads);
  auto result = body();
  pool.resize(previous);
  return result;
}

TEST(ThreadPoolTest, CoversRangeExactlyOnce) {
  ThreadPool& pool = ThreadPool::instance();
  pool.resize(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, 7, [&](std::int64_t begin, std::int64_t end) {
    EXPECT_LT(begin, end);
    EXPECT_LE(end - begin, 7);
    for (std::int64_t i = begin; i < end; ++i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, EmptyRangeAndBadGrain) {
  ThreadPool& pool = ThreadPool::instance();
  bool called = false;
  pool.parallel_for(5, 5, 1, [&](std::int64_t, std::int64_t) {
    called = true;
  });
  EXPECT_FALSE(called);
  EXPECT_THROW(pool.parallel_for(0, 10, 0, [](std::int64_t, std::int64_t) {}),
               Error);
}

TEST(ThreadPoolTest, PublishesSizeGauge) {
  ThreadPool& pool = ThreadPool::instance();
  pool.resize(3);
  EXPECT_EQ(obs::MetricsRegistry::instance().gauge("threadpool.size").value(),
            3.0);
  pool.resize(1);
}

TEST(ThreadPoolTest, ConcurrentCallersFromRankThreads) {
  // Several threads (like sgnn::comm ranks) issue parallel_for calls into
  // the shared pool at once; each call must see exactly its own range.
  ThreadPool::instance().resize(4);
  constexpr int kRanks = 4;
  std::vector<std::int64_t> totals(kRanks, 0);
  std::vector<std::thread> ranks;
  ranks.reserve(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    ranks.emplace_back([r, &totals] {
      std::vector<std::atomic<std::int64_t>> cells(512);
      parallel_for(0, 512, 16, [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
          cells[static_cast<std::size_t>(i)].fetch_add(i);
        }
      });
      std::int64_t total = 0;
      for (auto& c : cells) total += c.load();
      totals[static_cast<std::size_t>(r)] = total;
    });
  }
  for (auto& t : ranks) t.join();
  for (const auto total : totals) EXPECT_EQ(total, 512 * 511 / 2);
  ThreadPool::instance().resize(1);
}

TEST(ThreadPoolTest, ReduceSumBitIdenticalAcrossPoolSizes) {
  Rng rng(17);
  std::vector<double> values(100000);
  for (auto& v : values) v = rng.normal();
  const auto reduce = [&] {
    return parallel_reduce_sum(0, static_cast<std::int64_t>(values.size()),
                               1024,
                               [&](std::int64_t begin, std::int64_t end) {
                                 double acc = 0;
                                 for (std::int64_t i = begin; i < end; ++i) {
                                   acc += values[static_cast<std::size_t>(i)];
                                 }
                                 return acc;
                               });
  };
  const double serial = with_pool_size(1, reduce);
  const double threaded = with_pool_size(4, reduce);
  EXPECT_EQ(serial, threaded);  // bit-identical, not just close
}

TEST(ThreadingDeterminismTest, MatmulForwardBackwardBitIdentical) {
  const auto run = [] {
    Rng rng(3);
    Tensor a = Tensor::randn(Shape{67, 41}, rng).set_requires_grad(true);
    Tensor b = Tensor::randn(Shape{41, 53}, rng).set_requires_grad(true);
    const Tensor out = matmul(a, b);
    sum(square(out)).backward();
    std::vector<real> flat = out.to_vector();
    const auto ga = a.grad().to_vector();
    const auto gb = b.grad().to_vector();
    flat.insert(flat.end(), ga.begin(), ga.end());
    flat.insert(flat.end(), gb.begin(), gb.end());
    return flat;
  };
  const auto serial = with_pool_size(1, run);
  const auto threaded = with_pool_size(4, run);
  EXPECT_EQ(serial, threaded);
}

TEST(ThreadingDeterminismTest, ScatterAddDuplicateIndicesBitIdentical) {
  // Duplicate receivers are where a naive parallel scatter loses
  // determinism; receiver-range sharding must keep input order.
  const auto run = [] {
    Rng rng(5);
    Tensor src = Tensor::randn(Shape{4096, 32}, rng).set_requires_grad(true);
    std::vector<std::int64_t> index;
    index.reserve(4096);
    for (int i = 0; i < 4096; ++i) {
      index.push_back(static_cast<std::int64_t>(
          rng.uniform_index(7)));  // 7 rows, heavy collisions
    }
    const Tensor out = scatter_add_rows(src, index, 7);
    sum(square(out)).backward();
    std::vector<real> flat = out.to_vector();
    const auto gs = src.grad().to_vector();
    flat.insert(flat.end(), gs.begin(), gs.end());
    return flat;
  };
  const auto serial = with_pool_size(1, run);
  const auto threaded = with_pool_size(4, run);
  EXPECT_EQ(serial, threaded);
}

TEST(ThreadingDeterminismTest, ReductionsAndElementwiseBitIdentical) {
  const auto run = [] {
    Rng rng(7);
    Tensor x = Tensor::randn(Shape{513, 129}, rng).set_requires_grad(true);
    Tensor loss =
        sum(silu(x)) + sum(mean(square(x), 0, false)) +
        sum(sum(exp_op(scale(x, real{0.01})), 1, true));
    loss.backward();
    std::vector<real> flat = {loss.item()};
    const auto gx = x.grad().to_vector();
    flat.insert(flat.end(), gx.begin(), gx.end());
    return flat;
  };
  const auto serial = with_pool_size(1, run);
  const auto threaded = with_pool_size(4, run);
  EXPECT_EQ(serial, threaded);
}

TEST(ThreadingDeterminismTest, EgnnTrainStepBitIdentical) {
  // Full model forward + backward + grad-norm clip + Adam step under 1 and
  // 4 threads: parameters after the step must match bit-for-bit.
  const auto run = [] {
    const ReferencePotential potential;
    Rng data_rng(11);
    std::vector<MolecularGraph> graphs;
    for (int i = 0; i < 2; ++i) {
      graphs.push_back(
          generate_sample(DataSource::kANI1x, data_rng, potential));
    }
    const GraphBatch batch = GraphBatch::from_graphs(graphs);

    ModelConfig config;
    config.hidden_dim = 16;
    config.num_layers = 2;
    const EGNNModel model(config);
    Adam optimizer(model.parameters(), Adam::Options{});

    const auto out = model.forward(batch);
    Tensor loss = sum(square(out.energy)) + sum(square(out.forces));
    loss.backward();
    clip_grad_norm(model.parameters(), 1.0);
    optimizer.step();

    std::vector<real> flat = {loss.item()};
    for (const auto& p : model.parameters()) {
      const auto values = p.to_vector();
      flat.insert(flat.end(), values.begin(), values.end());
    }
    return flat;
  };
  const auto serial = with_pool_size(1, run);
  const auto threaded = with_pool_size(4, run);
  ASSERT_EQ(serial.size(), threaded.size());
  EXPECT_EQ(serial, threaded);
}

}  // namespace
}  // namespace sgnn
