// The foundation-model workflow the paper positions itself in (Sec. II-B,
// VI): pretrain on the multi-source aggregate, persist the checkpoint,
// then FINE-TUNE the restored model on one target domain (here: OC2022
// oxide catalysis) and compare against training from scratch on the same
// small target dataset.
//
//   ./build/examples/finetune [pretrain_MiB] [target_graphs]

#include <cstdlib>
#include <iostream>

#include "sgnn/nn/model_io.hpp"
#include "sgnn/sgnn.hpp"

int main(int argc, char** argv) {
  using namespace sgnn;

  const std::uint64_t pretrain_mib =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;
  const std::size_t target_graphs =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 24;

  const ReferencePotential potential;

  // --- Pretraining corpus: the full aggregate -----------------------------
  DatasetOptions data_options;
  data_options.target_bytes = pretrain_mib << 20;
  data_options.seed = 321;
  std::cout << "generating ~" << pretrain_mib
            << " MiB multi-source pretraining corpus...\n";
  const AggregatedDataset pretrain =
      AggregatedDataset::generate(data_options, potential);
  std::vector<const MolecularGraph*> pretrain_view;
  for (const auto& g : pretrain.graphs()) pretrain_view.push_back(&g);

  // --- Target domain: a small OC2022-only dataset -------------------------
  Rng rng(99);
  std::vector<MolecularGraph> target;
  for (std::size_t i = 0; i < target_graphs; ++i) {
    target.push_back(generate_sample(DataSource::kOC2022, rng, potential));
  }
  std::vector<const MolecularGraph*> target_train;
  std::vector<const MolecularGraph*> target_test;
  for (std::size_t i = 0; i < target.size(); ++i) {
    (i % 3 == 0 ? target_test : target_train).push_back(&target[i]);
  }
  std::cout << "target domain: " << target_train.size() << " train / "
            << target_test.size() << " test OC2022 graphs\n\n";

  ModelConfig config;
  config.hidden_dim = 40;
  config.num_layers = 3;

  // --- Pretrain and checkpoint the foundation model -----------------------
  const std::string checkpoint = "finetune_foundation.sgmd";
  const EnergyBaseline baseline = EnergyBaseline::fit(pretrain_view);
  {
    EGNNModel foundation(config);
    TrainOptions options;
    options.epochs = 8;
    options.batch_size = 8;
    options.adam.learning_rate = 2e-3;
    Trainer trainer(foundation, options);
    trainer.set_energy_baseline(baseline);
    DataLoader loader(pretrain_view, options.batch_size, 5);
    std::cout << "pretraining foundation model ("
              << foundation.num_parameters() << " params)...\n";
    const auto history = trainer.fit(loader);
    std::cout << "pretrain loss: " << history.front().mean_train_loss
              << " -> " << history.back().mean_train_loss << "\n\n";
    save_model(foundation, checkpoint);
  }

  // --- Fine-tune vs from-scratch on the target domain ---------------------
  const auto adapt = [&](bool from_checkpoint) {
    EGNNModel model(config);
    if (from_checkpoint) load_parameters_into(model, checkpoint);
    TrainOptions options;
    options.epochs = 6;
    options.batch_size = 4;
    options.adam.learning_rate = from_checkpoint ? 5e-4 : 2e-3;
    Trainer trainer(model, options);
    trainer.set_energy_baseline(baseline);
    DataLoader loader(target_train, options.batch_size, 5);
    const EvalMetrics before = trainer.evaluate(target_test, 8);
    trainer.fit(loader);
    const EvalMetrics after = trainer.evaluate(target_test, 8);
    return std::make_pair(before, after);
  };

  std::cout << "adapting to OC2022 (fine-tune vs from scratch)...\n";
  const auto [ft_before, ft_after] = adapt(true);
  const auto [fs_before, fs_after] = adapt(false);

  Table table({"Setting", "Test loss before", "Test loss after",
               "Force MAE after"});
  table.add_row({"fine-tuned from foundation", Table::fixed(ft_before.loss, 3),
                 Table::fixed(ft_after.loss, 3),
                 Table::fixed(ft_after.force_mae, 4)});
  table.add_row({"from scratch", Table::fixed(fs_before.loss, 3),
                 Table::fixed(fs_after.loss, 3),
                 Table::fixed(fs_after.force_mae, 4)});
  std::cout << "\n" << table.to_ascii("Transfer to the OC2022 domain");
  std::cout << "\nThe foundation checkpoint starts far ahead (its zero-shot "
               "loss reflects the\npretraining) and typically stays ahead "
               "after the same adaptation budget —\nthe premise of graph "
               "foundation models (paper Sec. II-B).\n";

  std::remove(checkpoint.c_str());
  return 0;
}
