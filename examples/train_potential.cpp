// Full training pipeline on the multi-source aggregated dataset: generate
// data, persist it to an ADIOS-style bp container, reload, train with a
// learning-rate schedule, report test metrics per source, and save the run
// summary. This is the single-process version of the paper's training
// loop (see distributed_training.cpp for the multi-rank one).
//
//   ./build/examples/train_potential [dataset_MiB] [epochs] [width]

#include <cstdlib>
#include <iostream>

#include "sgnn/nn/model_io.hpp"
#include "sgnn/sgnn.hpp"

int main(int argc, char** argv) {
  using namespace sgnn;

  const std::uint64_t dataset_mib =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;
  const std::int64_t epochs = argc > 2 ? std::atoll(argv[2]) : 10;
  const std::int64_t width = argc > 3 ? std::atoll(argv[3]) : 48;

  // --- Data: generate, persist, reload (exercising the storage layer) ----
  const ReferencePotential potential;
  DatasetOptions data_options;
  data_options.target_bytes = dataset_mib << 20;
  data_options.seed = 2025;
  std::cout << "generating ~" << dataset_mib << " MiB aggregated dataset...\n";
  const AggregatedDataset dataset =
      AggregatedDataset::generate(data_options, potential);

  const std::string path = "train_potential_dataset.bp";
  {
    BpWriter writer(path);
    for (const auto& g : dataset.graphs()) writer.append(g);
    writer.finalize();
    std::cout << "persisted " << writer.record_count() << " graphs ("
              << Table::human_bytes(static_cast<double>(writer.payload_bytes()))
              << ") to " << path << "\n";
  }
  const BpReader reader(path);
  std::vector<MolecularGraph> graphs;
  graphs.reserve(reader.size());
  for (std::size_t i = 0; i < reader.size(); ++i) {
    graphs.push_back(reader.read(i));
  }

  std::vector<const MolecularGraph*> all;
  for (const auto& g : graphs) all.push_back(&g);

  // --- Split, baseline, model -------------------------------------------
  const auto split = dataset.split(0.2, 99);
  std::vector<const MolecularGraph*> train;
  std::vector<const MolecularGraph*> test;
  for (const auto i : split.train) train.push_back(&graphs[i]);
  for (const auto i : split.test) test.push_back(&graphs[i]);
  std::cout << "split: " << train.size() << " train / " << test.size()
            << " test graphs\n";

  ModelConfig config;
  config.hidden_dim = width;
  config.num_layers = 3;
  EGNNModel model(config);
  std::cout << "model: " << model.num_parameters() << " parameters\n\n";

  TrainOptions options;
  options.epochs = epochs;
  options.batch_size = 8;
  options.adam.learning_rate = 2e-3;
  options.lr_decay = 0.9;
  Trainer trainer(model, options);
  trainer.set_energy_baseline(EnergyBaseline::fit(train));

  // --- Train with per-epoch reporting ------------------------------------
  DataLoader loader(train, options.batch_size, /*seed=*/7);
  Table progress({"Epoch", "Train loss", "Test loss", "Energy MAE/atom",
                  "Force MAE", "Seconds"});
  for (std::int64_t epoch = 0; epoch < options.epochs; ++epoch) {
    const auto result = trainer.train_epoch(loader);
    const EvalMetrics metrics = trainer.evaluate(test, 16);
    progress.add_row({std::to_string(epoch + 1),
                      Table::fixed(result.mean_train_loss, 4),
                      Table::fixed(metrics.loss, 4),
                      Table::fixed(metrics.energy_mae_per_atom, 4),
                      Table::fixed(metrics.force_mae, 4),
                      Table::fixed(result.seconds, 1)});
  }
  std::cout << progress.to_ascii("Training progress");

  // --- Per-source test breakdown -----------------------------------------
  Table by_source({"Source", "Test graphs", "Loss", "Energy MAE/atom",
                   "Force MAE"});
  for (const auto source : all_sources()) {
    std::vector<const MolecularGraph*> subset;
    for (const auto i : split.test) {
      if (dataset.source_of(i) == source) subset.push_back(&graphs[i]);
    }
    if (subset.empty()) continue;
    const EvalMetrics m = trainer.evaluate(subset, 16);
    by_source.add_row({source_spec(source).name,
                       std::to_string(subset.size()),
                       Table::fixed(m.loss, 4),
                       Table::fixed(m.energy_mae_per_atom, 4),
                       Table::fixed(m.force_mae, 4)});
  }
  std::cout << "\n" << by_source.to_ascii("Test metrics per data source");

  // --- Checkpoint the trained model and verify the round trip -------------
  const std::string model_path = "train_potential_model.sgmd";
  save_model(model, model_path);
  const auto restored = load_model(model_path);
  const EvalMetrics original_metrics = trainer.evaluate(test, 16);
  Trainer restored_trainer(*restored, options);
  restored_trainer.set_energy_baseline(EnergyBaseline::fit(train));
  const EvalMetrics restored_metrics = restored_trainer.evaluate(test, 16);
  std::cout << "\nsaved model to " << model_path << "; reloaded test loss "
            << restored_metrics.loss << " (original "
            << original_metrics.loss << ")\n";

  std::remove(model_path.c_str());
  std::remove(path.c_str());
  return 0;
}
