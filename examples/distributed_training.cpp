// The paper's training infrastructure end-to-end: a DDStore-sharded
// dataset, four simulated GPUs training data-parallel, with all three
// configurations from Sec. V (vanilla DDP, +activation checkpointing,
// +ZeRO-1), printing memory, traffic, and time accounting for each.
//
//   ./build/examples/distributed_training [dataset_MiB] [trace.json]
//
// When a trace path is given (or SGNN_TRACE names one), the whole run is
// traced and exported as Chrome trace-event JSON — load it in
// chrome://tracing or https://ui.perfetto.dev to see one timeline per rank
// with forward/backward/optimizer/collective spans. Per-step telemetry goes
// to <trace path>.telemetry.jsonl, and the global metrics snapshot
// (throughput, collective bytes, step-time quantiles) is printed at the end.

#include <cstdlib>
#include <iostream>
#include <memory>

#include "sgnn/sgnn.hpp"

int main(int argc, char** argv) {
  using namespace sgnn;

  const std::uint64_t dataset_mib =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;
  std::string trace_path = argc > 2 ? argv[2] : "";
  if (trace_path.empty()) {
    if (const char* env = std::getenv("SGNN_TRACE")) trace_path = env;
  }
  if (!trace_path.empty()) {
    obs::TraceRecorder::instance().enable();
    std::cout << "tracing enabled -> " << trace_path << "\n";
  }
  std::unique_ptr<obs::JsonlTelemetrySink> telemetry;
  if (!trace_path.empty()) {
    telemetry = std::make_unique<obs::JsonlTelemetrySink>(
        trace_path + ".telemetry.jsonl");
  }
  const int kRanks = 4;

  const ReferencePotential potential;
  DatasetOptions data_options;
  data_options.target_bytes = dataset_mib << 20;
  data_options.seed = 77;
  std::cout << "generating dataset and sharding across " << kRanks
            << " ranks (DDStore layout)...\n";
  const AggregatedDataset dataset =
      AggregatedDataset::generate(data_options, potential);

  ModelConfig config;
  config.hidden_dim = 48;
  config.num_layers = 3;
  std::cout << "model: " << config.parameter_count() << " parameters\n\n";

  struct Setting {
    const char* name;
    bool ckpt;
    DistStrategy strategy;
  };
  const std::vector<Setting> settings = {
      {"Vanilla DDP", false, DistStrategy::kDDP},
      {"+ ckpt", true, DistStrategy::kDDP},
      {"+ ckpt + ZeRO-1", true, DistStrategy::kZeRO1},
  };

  Table table({"Setting", "Final loss", "Steps", "Compute s",
               "Comm s (model)", "Collective payload", "Remote data",
               "Peak mem", "Peak phase"});
  for (const auto& setting : settings) {
    DDStore store(kRanks);
    {
      std::vector<MolecularGraph> graphs = dataset.graphs();
      store.insert(std::move(graphs));
    }
    std::cout << "running '" << setting.name << "' (" << store.size()
              << " graphs, " << store.shard_size(0)
              << " on rank 0)...\n";

    DistTrainOptions options;
    options.num_ranks = kRanks;
    options.strategy = setting.strategy;
    options.activation_checkpointing = setting.ckpt;
    options.epochs = 2;
    options.per_rank_batch_size = 4;
    options.telemetry = telemetry.get();

    DistributedTrainer trainer(config, options);
    const DistTrainReport report = trainer.train(store);

    table.add_row(
        {setting.name, Table::fixed(report.final_train_loss, 3),
         std::to_string(report.steps), Table::fixed(report.compute_seconds, 2),
         Table::scientific(report.comm_seconds, 2),
         Table::human_bytes(
             static_cast<double>(report.collective_traffic.total_bytes())),
         Table::human_bytes(
             static_cast<double>(report.data_traffic.remote_bytes)),
         Table::human_bytes(static_cast<double>(report.peak_memory.total())),
         train_phase_name(report.peak_phase)});
  }
  std::cout << "\n"
            << table.to_ascii(
                   "Distributed training on 4 simulated ranks (replicas "
                   "verified bit-identical)");
  std::cout << "\nComm time is modeled from exact collective payloads at "
               "NVLink-3 rates; data\ntraffic counts DDStore remote "
               "fetches.\n";

  std::cout << "\nMetrics snapshot (sgnn::obs registry):\n"
            << obs::MetricsRegistry::instance().snapshot().to_text();

  if (!trace_path.empty()) {
    obs::TraceRecorder::instance().disable();
    obs::TraceRecorder::instance().write_chrome_json(trace_path);
    std::cout << "\nwrote " << obs::TraceRecorder::instance().size()
              << " trace spans to " << trace_path << " ("
              << telemetry->lines_written() << " telemetry lines in "
              << trace_path << ".telemetry.jsonl)\n"
              << "load the trace in chrome://tracing or "
                 "https://ui.perfetto.dev\n";
  }
  return 0;
}
