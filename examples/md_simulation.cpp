// Molecular dynamics with a trained EGNN as the force field — the
// downstream application the paper's introduction motivates (replacing
// first-principles force evaluations with a learned surrogate).
//
// A small EGNN is trained on perturbed configurations of a copper cluster,
// then drives a velocity-Verlet loop; the same trajectory is integrated
// with the reference potential, and the example reports force fidelity and
// energy drift of the learned dynamics.
//
//   ./build/examples/md_simulation [steps]

#include <cmath>
#include <cstdlib>
#include <iostream>

#include "sgnn/sgnn.hpp"

namespace {

using namespace sgnn;

/// Forces from the trained model for the current positions.
std::vector<Vec3> model_forces(const EGNNModel& model,
                               const AtomicStructure& structure,
                               double cutoff) {
  const MolecularGraph graph =
      MolecularGraph::from_structure(structure, cutoff);
  const GraphBatch batch =
      GraphBatch::from_graphs(std::vector<const MolecularGraph*>{&graph});
  const autograd::NoGradGuard no_grad;
  const auto out = model.forward(batch);
  std::vector<Vec3> forces(structure.species.size());
  const real* f = out.forces.data();
  for (std::size_t i = 0; i < forces.size(); ++i) {
    forces[i] = {f[i * 3], f[i * 3 + 1], f[i * 3 + 2]};
  }
  return forces;
}

}  // namespace

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 200;

  // --- A 32-atom copper cluster ------------------------------------------
  Rng rng(3);
  AtomicStructure cluster;
  for (int i = 0; i < 32; ++i) {
    for (;;) {
      const Vec3 p{rng.uniform(0, 7), rng.uniform(0, 7), rng.uniform(0, 7)};
      bool ok = true;
      for (const auto& q : cluster.positions) {
        if ((p - q).norm() < 2.0) {
          ok = false;
          break;
        }
      }
      if (ok) {
        cluster.positions.push_back(p);
        cluster.species.push_back(elements::kCu);
        break;
      }
    }
  }

  const ReferencePotential potential;

  // --- Train a surrogate on perturbed configurations ----------------------
  std::cout << "training surrogate force field on 64 perturbed clusters...\n";
  std::vector<MolecularGraph> dataset;
  for (int i = 0; i < 64; ++i) {
    AtomicStructure perturbed = cluster;
    for (auto& p : perturbed.positions) {
      p += Vec3{rng.normal(0, 0.10), rng.normal(0, 0.10),
                rng.normal(0, 0.10)};
    }
    MolecularGraph g =
        MolecularGraph::from_structure(perturbed, potential.cutoff());
    const PotentialResult y = potential.evaluate(g.structure, g.edges);
    g.energy = y.energy;
    g.forces = y.forces;
    dataset.push_back(std::move(g));
  }
  std::vector<const MolecularGraph*> view;
  for (const auto& g : dataset) view.push_back(&g);

  ModelConfig config;
  config.hidden_dim = 32;
  config.num_layers = 3;
  EGNNModel model(config);
  TrainOptions options;
  options.epochs = 40;
  options.batch_size = 8;
  options.adam.learning_rate = 3e-3;
  options.lr_decay = 0.95;
  options.loss_weights.force = 50.0;  // MD cares about forces
  Trainer trainer(model, options);
  trainer.set_energy_baseline(EnergyBaseline::fit(view));
  DataLoader loader(view, options.batch_size, 13);
  const auto history = trainer.fit(loader);
  std::cout << "surrogate train loss: " << history.front().mean_train_loss
            << " -> " << history.back().mean_train_loss << "\n\n";

  // --- Velocity-Verlet under the learned force field ----------------------
  const double dt = 0.5e-3;  // ps-scale units (mass in amu, E in eV)
  // Conversion constant: a [A/ps^2] = f [eV/A] / m [amu] * 9648.5 — folded
  // into an effective dt^2 factor here to keep the loop readable.
  const double kForceUnit = 9648.5;

  AtomicStructure state = cluster;
  std::vector<Vec3> velocity(state.species.size(), Vec3{0, 0, 0});
  std::vector<Vec3> forces = model_forces(model, state, potential.cutoff());

  double max_force_err = 0;
  double sum_force_err = 0;
  Table trace({"Step", "Model E (eV)", "Reference E (eV)",
               "Force RMSE vs ref", "Max |v|"});
  for (int step = 0; step <= steps; ++step) {
    // Half-kick + drift.
    for (std::size_t i = 0; i < velocity.size(); ++i) {
      const double inv_mass =
          kForceUnit / elements::atomic_mass(state.species[i]);
      velocity[i] += forces[i] * (0.5 * dt * inv_mass);
      state.positions[i] += velocity[i] * dt;
    }
    // New forces from the surrogate, second half-kick.
    forces = model_forces(model, state, potential.cutoff());
    for (std::size_t i = 0; i < velocity.size(); ++i) {
      const double inv_mass =
          kForceUnit / elements::atomic_mass(state.species[i]);
      velocity[i] += forces[i] * (0.5 * dt * inv_mass);
    }

    if (step % (steps / 10 > 0 ? steps / 10 : 1) == 0) {
      const PotentialResult reference = potential.evaluate(state);
      double rmse = 0;
      double vmax = 0;
      for (std::size_t i = 0; i < forces.size(); ++i) {
        rmse += (forces[i] - reference.forces[i]).norm_squared();
        vmax = std::max(vmax, velocity[i].norm());
        const double err = (forces[i] - reference.forces[i]).norm();
        max_force_err = std::max(max_force_err, err);
        sum_force_err += err;
      }
      rmse = std::sqrt(rmse / (3.0 * static_cast<double>(forces.size())));

      const MolecularGraph g =
          MolecularGraph::from_structure(state, potential.cutoff());
      const GraphBatch batch =
          GraphBatch::from_graphs(std::vector<const MolecularGraph*>{&g});
      const autograd::NoGradGuard no_grad;
      const double model_energy = model.forward(batch).energy.item() +
                                  EnergyBaseline::fit(view).offset(
                                      state.species);
      trace.add_row({std::to_string(step), Table::fixed(model_energy, 2),
                     Table::fixed(reference.energy, 2),
                     Table::fixed(rmse, 3), Table::fixed(vmax, 3)});
    }
  }
  std::cout << trace.to_ascii("MD trajectory (surrogate-driven, " +
                              std::to_string(steps) + " steps)");
  std::cout << "\nmax per-atom force error along trajectory: "
            << max_force_err << " eV/A\n";
  return 0;
}
