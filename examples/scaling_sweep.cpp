// The paper's methodology in one file: a miniature model-size sweep at
// fixed data, a power-law fit of the resulting losses, and the
// diminishing-returns diagnostic (Sec. IV-A) — a fast, self-contained
// version of bench/fig3_model_scaling.
//
//   ./build/examples/scaling_sweep [dataset_MiB]

#include <cstdlib>
#include <iostream>

#include "sgnn/sgnn.hpp"

int main(int argc, char** argv) {
  using namespace sgnn;

  const std::uint64_t dataset_mib =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2;

  const ReferencePotential potential;
  DatasetOptions data_options;
  data_options.target_bytes = dataset_mib << 20;
  data_options.seed = 404;
  std::cout << "generating ~" << dataset_mib << " MiB dataset...\n";
  const AggregatedDataset dataset =
      AggregatedDataset::generate(data_options, potential);
  const auto split = dataset.split(0.2, 11);

  SweepProtocol protocol;
  protocol.train.epochs = 6;
  protocol.train.batch_size = 8;
  protocol.train.adam.learning_rate = 2e-3;

  const std::vector<std::int64_t> widths = {8, 16, 32, 64};
  std::vector<double> params;
  std::vector<double> losses;

  Table table({"Width", "Params", "Test loss", "Force MAE", "Seconds"});
  for (const auto width : widths) {
    ModelConfig config;
    config.hidden_dim = width;
    config.num_layers = 3;
    std::cout << "training width " << width << "...\n";
    const SweepPoint point = run_scaling_point(dataset, split.train,
                                               split.test, config, protocol);
    params.push_back(static_cast<double>(point.parameters));
    losses.push_back(point.test_loss);
    table.add_row({std::to_string(width),
                   Table::human_count(static_cast<double>(point.parameters)),
                   Table::fixed(point.test_loss, 4),
                   Table::fixed(point.force_mae, 4),
                   Table::fixed(point.seconds, 1)});
  }
  std::cout << "\n" << table.to_ascii("Mini model-scaling sweep");

  const PowerLawFit saturating = fit_power_law(params, losses);
  const PowerLawFit pure = fit_pure_power_law(params, losses);
  std::cout << "\nsaturating fit: L(N) = " << saturating.a << " * N^-"
            << saturating.alpha << " + " << saturating.c
            << "  (R^2 = " << saturating.r_squared << ")\n";
  std::cout << "pure power law: L(N) = " << pure.a << " * N^-" << pure.alpha
            << "  (R^2 = " << pure.r_squared << ")\n";
  const auto slopes = local_loglog_slopes(params, losses);
  std::cout << "local log-log slopes:";
  for (const auto s : slopes) std::cout << " " << s;
  std::cout << "\n=> slopes moving toward 0 with model size indicate the "
               "diminishing returns the paper\n   reports for GNN model "
               "scaling (Sec. IV-A).\n";
  return 0;
}
