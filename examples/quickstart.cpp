// Quickstart: build a molecule, turn it into a graph, train a small EGNN
// on a handful of reference-potential labels, and predict energy + forces.
//
//   ./build/examples/quickstart

#include <iostream>

#include "sgnn/sgnn.hpp"

int main() {
  using namespace sgnn;

  // 1. An atomistic structure: a methanol-ish molecule (CH3OH layout).
  AtomicStructure methanol;
  methanol.species = {elements::kC, elements::kO, elements::kH, elements::kH,
                      elements::kH, elements::kH};
  methanol.positions = {{0.00, 0.00, 0.00}, {1.40, 0.00, 0.00},
                        {-0.45, 0.95, 0.30}, {-0.45, -0.60, 0.80},
                        {-0.45, -0.40, -0.95}, {1.75, 0.85, 0.30}};

  // 2. Radius graph + teacher labels (stand-in for a DFT calculation).
  const ReferencePotential potential;
  MolecularGraph graph =
      MolecularGraph::from_structure(methanol, potential.cutoff());
  const PotentialResult labels = potential.evaluate(graph.structure,
                                                    graph.edges);
  graph.energy = labels.energy;
  graph.forces = labels.forces;
  std::cout << "molecule: " << graph.num_nodes() << " atoms, "
            << graph.num_edges() << " directed edges\n"
            << "reference energy: " << graph.energy << " eV\n\n";

  // 3. A small E(3)-equivariant model.
  ModelConfig config;
  config.hidden_dim = 32;
  config.num_layers = 3;
  EGNNModel model(config);
  std::cout << "model: " << model.num_parameters() << " parameters ("
            << config.num_layers << " layers x " << config.hidden_dim
            << " hidden)\n\n";

  // 4. Train on perturbed copies of the molecule (a miniature dataset).
  Rng rng(7);
  std::vector<MolecularGraph> dataset;
  for (int i = 0; i < 32; ++i) {
    AtomicStructure perturbed = methanol;
    for (auto& p : perturbed.positions) {
      p += Vec3{rng.normal(0, 0.06), rng.normal(0, 0.06),
                rng.normal(0, 0.06)};
    }
    MolecularGraph sample =
        MolecularGraph::from_structure(perturbed, potential.cutoff());
    const PotentialResult y = potential.evaluate(sample.structure,
                                                 sample.edges);
    sample.energy = y.energy;
    sample.forces = y.forces;
    dataset.push_back(std::move(sample));
  }

  std::vector<const MolecularGraph*> view;
  for (const auto& g : dataset) view.push_back(&g);

  TrainOptions options;
  options.epochs = 30;
  options.batch_size = 8;
  options.adam.learning_rate = 3e-3;
  options.lr_decay = 0.95;
  Trainer trainer(model, options);
  trainer.set_energy_baseline(EnergyBaseline::fit(view));

  DataLoader loader(view, options.batch_size, /*seed=*/5);
  const auto history = trainer.fit(loader);
  std::cout << "training loss: " << history.front().mean_train_loss << " -> "
            << history.back().mean_train_loss << " over "
            << history.size() << " epochs\n\n";

  // 5. Predict on the original geometry.
  const GraphBatch batch =
      GraphBatch::from_graphs(std::vector<const MolecularGraph*>{&graph});
  const autograd::NoGradGuard no_grad;
  const auto prediction = model.forward(batch);
  const EnergyBaseline baseline = EnergyBaseline::fit(view);
  const double predicted_energy =
      prediction.energy.item() + baseline.offset(methanol.species);
  std::cout << "predicted energy: " << predicted_energy << " eV (reference "
            << graph.energy << ")\n";
  std::cout << "forces (predicted vs reference), eV/A:\n";
  const real* f = prediction.forces.data();
  for (std::int64_t i = 0; i < graph.num_nodes(); ++i) {
    const Vec3 ref = labels.forces[static_cast<std::size_t>(i)];
    std::cout << "  " << elements::symbol(methanol.species[
                             static_cast<std::size_t>(i)])
              << ": (" << f[i * 3] << ", " << f[i * 3 + 1] << ", "
              << f[i * 3 + 2] << ")  vs  (" << ref.x << ", " << ref.y << ", "
              << ref.z << ")\n";
  }
  return 0;
}
