// Crash-safe training end-to-end: trains the single-process Trainer with
// periodic SGCK snapshots, kills it mid-run with the built-in fault
// injector, then resumes from the last good checkpoint and verifies the
// final parameters are bit-identical to an uninterrupted run — the
// "train N == train k, crash, resume, train N-k" contract from
// docs/fault-tolerance.md.
//
//   ./build/examples/checkpoint_restart [ckpt_dir]

#include <filesystem>
#include <iostream>
#include <vector>

#include "sgnn/sgnn.hpp"

int main(int argc, char** argv) {
  using namespace sgnn;

  const std::string ckpt_dir =
      argc > 1 ? argv[1]
               : (std::filesystem::temp_directory_path() / "sgnn_ckpt_demo")
                     .string();
  std::filesystem::remove_all(ckpt_dir);

  DatasetOptions data_options;
  data_options.target_bytes = 1 << 20;
  data_options.seed = 7;
  const ReferencePotential potential;
  const AggregatedDataset dataset =
      AggregatedDataset::generate(data_options, potential);
  const auto split = dataset.split(0.2, 3);

  ModelConfig config;
  config.hidden_dim = 16;
  config.num_layers = 2;

  TrainOptions options;
  options.epochs = 2;
  options.batch_size = 8;
  options.max_grad_norm = 1.0;

  const auto run = [&](const TrainOptions& run_options) {
    EGNNModel model(config);
    Trainer trainer(model, run_options);
    DataLoader loader(dataset.view(split.train), run_options.batch_size, 19);
    trainer.fit(loader);
    return flatten_parameters(model.parameters());
  };

  // 1. The reference: an uninterrupted run.
  std::cout << "reference run (no crash)...\n";
  const std::vector<real> reference = run(options);

  // 2. The same run, checkpointing every 3 steps and crashing after 7.
  TrainOptions crashing = options;
  crashing.checkpoint.every_steps = 3;
  crashing.checkpoint.directory = ckpt_dir;
  crashing.checkpoint.crash_after_step = 7;
  std::cout << "crashing run (snapshot every 3 steps, crash after 7)...\n";
  try {
    run(crashing);
    std::cout << "run finished before the crash step (dataset too small)\n";
  } catch (const ckpt::SimulatedCrash& crash) {
    std::cout << "  crashed: " << crash.what() << "\n";
  }

  // 3. Resume from the newest good snapshot and finish the run.
  const auto latest = ckpt::CheckpointManager::load_latest(ckpt_dir);
  if (!latest) {
    std::cerr << "no checkpoint found under " << ckpt_dir << "\n";
    return 1;
  }
  std::cout << "resuming from " << latest->path << " (step " << latest->step
            << ")...\n";
  TrainOptions resuming = options;
  resuming.checkpoint.resume_from = ckpt_dir;
  const std::vector<real> resumed = run(resuming);

  const bool identical = resumed == reference;
  std::cout << (identical ? "resumed parameters are BIT-IDENTICAL to the "
                            "uninterrupted run\n"
                          : "MISMATCH: resumed parameters differ!\n");

  auto& registry = obs::MetricsRegistry::instance();
  std::cout << "ckpt.writes   = " << registry.counter("ckpt.writes").value()
            << "\nckpt.bytes    = " << registry.counter("ckpt.bytes").value()
            << "\nckpt.restores = "
            << registry.counter("ckpt.restores").value() << "\n";
  return identical ? 0 : 1;
}
