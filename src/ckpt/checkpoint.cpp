#include "sgnn/ckpt/checkpoint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define SGNN_CKPT_HAS_FSYNC 1
#endif

#include "sgnn/obs/metrics.hpp"
#include "sgnn/store/serialize.hpp"
#include "sgnn/util/logging.hpp"
#include "sgnn/util/timer.hpp"

namespace sgnn::ckpt {

namespace {

constexpr char kMagic[4] = {'S', 'G', 'C', 'K'};
constexpr std::uint32_t kVersion = 1;
// Header: magic + u32 version + u64 payload_size. Trailer: u32 crc + magic.
constexpr std::uint64_t kHeaderBytes = 4 + 4 + 8;
constexpr std::uint64_t kTrailerBytes = 4 + 4;

constexpr char kFilePrefix[] = "ckpt-";
constexpr char kFileSuffix[] = ".sgck";

template <typename T>
void write_raw(std::ostream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out.write(bytes, sizeof(T));
}

template <typename T>
T read_raw(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  char bytes[sizeof(T)];
  in.read(bytes, sizeof(T));
  SGNN_CHECK(in.good(), "truncated snapshot");
  T value;
  std::memcpy(&value, bytes, sizeof(T));
  return value;
}

/// Step-stamped, lexicographically sortable file name.
std::string snapshot_file_name(std::uint64_t step) {
  std::ostringstream os;
  os << kFilePrefix;
  os.width(20);
  os.fill('0');
  os << step << kFileSuffix;
  return os.str();
}

/// Parses the step out of a snapshot file name; nullopt for foreign files.
std::optional<std::uint64_t> parse_snapshot_step(const std::string& name) {
  const std::string prefix(kFilePrefix);
  const std::string suffix(kFileSuffix);
  if (name.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return std::nullopt;
  }
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  std::uint64_t step = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    step = step * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return step;
}

/// Snapshot files in `directory`, sorted by step ascending.
std::vector<std::pair<std::uint64_t, std::filesystem::path>> list_snapshots(
    const std::filesystem::path& directory) {
  std::vector<std::pair<std::uint64_t, std::filesystem::path>> found;
  if (!std::filesystem::is_directory(directory)) return found;
  for (const auto& entry : std::filesystem::directory_iterator(directory)) {
    if (!entry.is_regular_file()) continue;
    if (const auto step = parse_snapshot_step(entry.path().filename().string())) {
      found.emplace_back(*step, entry.path());
    }
  }
  std::sort(found.begin(), found.end());
  return found;
}

/// Flushes file (or directory) contents to stable storage where the
/// platform supports it; the write path remains correct without it, just
/// not power-failure-proof.
void fsync_path(const std::string& path) {
#ifdef SGNN_CKPT_HAS_FSYNC
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

}  // namespace

// -- SnapshotBuilder --------------------------------------------------------

void SnapshotBuilder::add_bytes(const std::string& name, std::string bytes) {
  SGNN_CHECK(!name.empty(), "snapshot section needs a name");
  SGNN_CHECK(sections_.find(name) == sections_.end(),
             "duplicate snapshot section '" << name << "'");
  sections_[name] = std::move(bytes);
}

void SnapshotBuilder::add_u64(const std::string& name, std::uint64_t value) {
  add_bytes(name, pod_bytes(value));
}

void SnapshotBuilder::add_i64(const std::string& name, std::int64_t value) {
  add_bytes(name, pod_bytes(value));
}

void SnapshotBuilder::add_f64(const std::string& name, double value) {
  add_bytes(name, pod_bytes(value));
}

void SnapshotBuilder::add_reals(const std::string& name, const real* data,
                                std::size_t count) {
  SGNN_CHECK(data != nullptr || count == 0, "null data in snapshot section");
  std::string bytes(count * sizeof(real), '\0');
  std::memcpy(bytes.data(), data, bytes.size());
  add_bytes(name, std::move(bytes));
}

void SnapshotBuilder::add_u64s(const std::string& name,
                               const std::vector<std::uint64_t>& values) {
  std::string bytes(values.size() * sizeof(std::uint64_t), '\0');
  std::memcpy(bytes.data(), values.data(), bytes.size());
  add_bytes(name, std::move(bytes));
}

std::string SnapshotBuilder::payload() const {
  std::ostringstream out;
  write_raw(out, static_cast<std::uint64_t>(sections_.size()));
  for (const auto& [name, bytes] : sections_) {
    write_raw(out, static_cast<std::uint64_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_raw(out, static_cast<std::uint64_t>(bytes.size()));
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  return out.str();
}

// -- SnapshotView -----------------------------------------------------------

SnapshotView::SnapshotView(const std::string& payload) {
  std::size_t cursor = 0;
  const auto take = [&](std::size_t count) {
    SGNN_CHECK(cursor + count <= payload.size(),
               "snapshot payload truncated at byte " << cursor);
    const char* begin = payload.data() + cursor;
    cursor += count;
    return begin;
  };
  const auto take_u64 = [&] {
    std::uint64_t value;
    std::memcpy(&value, take(sizeof(value)), sizeof(value));
    return value;
  };
  const std::uint64_t count = take_u64();
  // Each section costs at least 16 bytes of framing; a corrupt count can
  // therefore never drive more iterations than the payload could hold.
  SGNN_CHECK(count <= payload.size() / 16,
             "snapshot section count " << count << " exceeds payload bounds");
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t name_size = take_u64();
    SGNN_CHECK(name_size > 0 && name_size <= payload.size(),
               "snapshot section name out of bounds");
    std::string name(take(name_size), name_size);
    const std::uint64_t data_size = take_u64();
    SGNN_CHECK(data_size <= payload.size() - cursor,
               "snapshot section '" << name << "' data out of bounds");
    std::string bytes(take(data_size), data_size);
    SGNN_CHECK(sections_.emplace(std::move(name), std::move(bytes)).second,
               "snapshot carries a duplicate section");
  }
  SGNN_CHECK(cursor == payload.size(),
             "snapshot payload has " << payload.size() - cursor
                                     << " trailing bytes");
}

bool SnapshotView::has(const std::string& name) const {
  return sections_.find(name) != sections_.end();
}

const std::string& SnapshotView::bytes(const std::string& name) const {
  const auto it = sections_.find(name);
  SGNN_CHECK(it != sections_.end(),
             "snapshot is missing section '" << name << "'");
  return it->second;
}

std::uint64_t SnapshotView::u64(const std::string& name) const {
  return pod_from_bytes<std::uint64_t>(bytes(name));
}

std::int64_t SnapshotView::i64(const std::string& name) const {
  return pod_from_bytes<std::int64_t>(bytes(name));
}

double SnapshotView::f64(const std::string& name) const {
  return pod_from_bytes<double>(bytes(name));
}

std::vector<real> SnapshotView::reals(const std::string& name) const {
  const std::string& raw = bytes(name);
  SGNN_CHECK(raw.size() % sizeof(real) == 0,
             "snapshot section '" << name << "' is not a real[] image");
  std::vector<real> values(raw.size() / sizeof(real));
  std::memcpy(values.data(), raw.data(), raw.size());
  return values;
}

std::vector<std::uint64_t> SnapshotView::u64s(const std::string& name) const {
  const std::string& raw = bytes(name);
  SGNN_CHECK(raw.size() % sizeof(std::uint64_t) == 0,
             "snapshot section '" << name << "' is not a u64[] image");
  std::vector<std::uint64_t> values(raw.size() / sizeof(std::uint64_t));
  std::memcpy(values.data(), raw.data(), raw.size());
  return values;
}

// -- container file IO ------------------------------------------------------

void write_snapshot_file(const std::string& path, const std::string& payload) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    SGNN_CHECK(out.is_open(), "cannot open '" << tmp << "' for writing");
    out.write(kMagic, 4);
    write_raw(out, kVersion);
    write_raw(out, static_cast<std::uint64_t>(payload.size()));
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    write_raw(out, crc32(payload.data(), payload.size()));
    out.write(kMagic, 4);
    out.flush();
    SGNN_CHECK(out.good(), "write failure while saving snapshot '" << tmp
                                                                   << "'");
  }
  // Data must be durable BEFORE the rename publishes the file: rename is
  // atomic on POSIX, so after it the name always refers to complete bytes.
  fsync_path(tmp);
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  SGNN_CHECK(!ec, "cannot publish snapshot '" << path << "': " << ec.message());
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) fsync_path(parent.string());
}

std::string read_snapshot_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SGNN_CHECK(in.is_open(), "cannot open snapshot '" << path << "'");
  in.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  SGNN_CHECK(file_size >= kHeaderBytes + kTrailerBytes,
             "'" << path << "' too small to be a snapshot");
  char magic[4];
  in.read(magic, 4);
  SGNN_CHECK(in.good() && std::equal(magic, magic + 4, kMagic),
             "'" << path << "' is not a snapshot file");
  const auto version = read_raw<std::uint32_t>(in);
  SGNN_CHECK(version == kVersion,
             "'" << path << "' has unsupported snapshot version " << version);
  const auto payload_size = read_raw<std::uint64_t>(in);
  // Bound the allocation by what the file can actually hold — a flipped
  // header byte must produce a clean Error, not a huge allocation.
  SGNN_CHECK(payload_size <= file_size - kHeaderBytes - kTrailerBytes,
             "'" << path << "' declares " << payload_size
                 << " payload bytes but holds only "
                 << file_size - kHeaderBytes - kTrailerBytes);
  std::string payload(payload_size, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(payload_size));
  SGNN_CHECK(in.good(), "'" << path << "' truncated payload");
  const auto stored_crc = read_raw<std::uint32_t>(in);
  char tail[4];
  in.read(tail, 4);
  SGNN_CHECK(in.good() && std::equal(tail, tail + 4, kMagic),
             "'" << path << "' missing trailer");
  SGNN_CHECK(crc32(payload.data(), payload.size()) == stored_crc,
             "'" << path << "' CRC mismatch (corrupt snapshot)");
  return payload;
}

// -- CheckpointManager ------------------------------------------------------

CheckpointManager::CheckpointManager(std::string directory, int keep_last)
    : directory_(std::move(directory)), keep_last_(keep_last) {
  SGNN_CHECK(!directory_.empty(), "checkpoint directory must be set");
  SGNN_CHECK(keep_last_ >= 2,
             "keep_last must be >= 2 so a corrupt newest checkpoint always "
             "leaves a good fallback");
}

std::string CheckpointManager::save(std::uint64_t step,
                                    const std::string& payload) {
  const WallTimer timer;
  std::filesystem::create_directories(directory_);
  const std::string path =
      (std::filesystem::path(directory_) / snapshot_file_name(step)).string();
  write_snapshot_file(path, payload);

  // Retention: prune oldest beyond keep_last. The newly written file is in
  // the listing, so keep_last bounds what survives on disk.
  auto snapshots = list_snapshots(directory_);
  const std::size_t keep = static_cast<std::size_t>(keep_last_);
  if (snapshots.size() > keep) {
    for (std::size_t i = 0; i + keep < snapshots.size(); ++i) {
      std::error_code ec;
      std::filesystem::remove(snapshots[i].second, ec);
    }
  }

  const std::uint64_t file_bytes =
      kHeaderBytes + payload.size() + kTrailerBytes;
  obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
  registry.counter("ckpt.writes").add(1);
  registry.counter("ckpt.bytes").add(static_cast<std::int64_t>(file_bytes));
  registry.histogram("ckpt.write_seconds").observe(timer.seconds());
  SGNN_LOG_DEBUG << "checkpoint step " << step << " -> " << path << " ("
                 << file_bytes << " bytes)";
  return path;
}

std::optional<CheckpointManager::Loaded> CheckpointManager::load_latest(
    const std::string& location) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
  std::vector<std::pair<std::uint64_t, std::filesystem::path>> candidates;
  if (std::filesystem::is_directory(location)) {
    candidates = list_snapshots(location);
  } else if (std::filesystem::is_regular_file(location)) {
    const auto step =
        parse_snapshot_step(std::filesystem::path(location).filename().string());
    candidates.emplace_back(step.value_or(0), location);
  }
  // Newest first; fall back across corrupt files to the last good one.
  for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
    try {
      Loaded loaded;
      loaded.payload = read_snapshot_file(it->second.string());
      loaded.step = it->first;
      loaded.path = it->second.string();
      registry.counter("ckpt.restores").add(1);
      return loaded;
    } catch (const Error& error) {
      registry.counter("ckpt.corrupt_skipped").add(1);
      SGNN_LOG_WARN << "skipping unreadable checkpoint " << it->second
                    << ": " << error.what();
    }
  }
  return std::nullopt;
}

}  // namespace sgnn::ckpt
