#include "sgnn/potential/potential.hpp"

#include <cmath>

#include "sgnn/util/error.hpp"
#include "sgnn/util/rng.hpp"

namespace sgnn {

namespace {

/// Deterministic coefficient in [lo, hi] derived from a key; gives every
/// element/pair its own physics without tables.
double procedural_coeff(std::uint64_t seed, std::uint64_t key, double lo,
                        double hi) {
  Rng rng(seed ^ (key * 0x9E3779B97F4A7C15ULL));
  return rng.uniform(lo, hi);
}

std::uint64_t pair_key(int zi, int zj) {
  const auto a = static_cast<std::uint64_t>(zi < zj ? zi : zj);
  const auto b = static_cast<std::uint64_t>(zi < zj ? zj : zi);
  return a * 1000 + b;
}

/// Cosine switching function: 1 at r=0, 0 at r=cutoff, C1-continuous.
double switch_fn(double r, double cutoff) {
  if (r >= cutoff) return 0.0;
  return 0.5 * (std::cos(M_PI * r / cutoff) + 1.0);
}

double switch_fn_deriv(double r, double cutoff) {
  if (r >= cutoff) return 0.0;
  return -0.5 * M_PI / cutoff * std::sin(M_PI * r / cutoff);
}

/// Electron-density contribution for the embedding term; vanishes smoothly
/// at the cutoff (value and slope).
double density_fn(double r, double cutoff) {
  if (r >= cutoff) return 0.0;
  const double t = 1.0 - r / cutoff;
  return t * t;
}

double density_fn_deriv(double r, double cutoff) {
  if (r >= cutoff) return 0.0;
  return -2.0 * (1.0 - r / cutoff) / cutoff;
}

}  // namespace

ReferencePotential::ReferencePotential(Options options)
    : options_(options) {
  SGNN_CHECK(options_.cutoff > 0, "potential cutoff must be positive");
}

double ReferencePotential::atomic_reference_energy(int atomic_number) const {
  return -procedural_coeff(options_.seed, static_cast<std::uint64_t>(atomic_number),
                           1.0, 6.0);
}

PotentialResult ReferencePotential::evaluate(
    const AtomicStructure& structure) const {
  return evaluate(structure, build_neighbors(structure, options_.cutoff));
}

double ReferencePotential::partial_charge(int atomic_number) const {
  return procedural_coeff(options_.seed,
                          static_cast<std::uint64_t>(atomic_number) + 424242,
                          -0.8, 0.8);
}

double ReferencePotential::dipole_magnitude(
    const AtomicStructure& structure) const {
  structure.validate();
  if (structure.num_atoms() == 0) return 0.0;
  Vec3 centroid{0, 0, 0};
  for (const auto& p : structure.positions) centroid += p;
  centroid = centroid / static_cast<double>(structure.num_atoms());
  Vec3 dipole{0, 0, 0};
  for (std::size_t i = 0; i < structure.positions.size(); ++i) {
    dipole += (structure.positions[i] - centroid) *
              partial_charge(structure.species[i]);
  }
  return dipole.norm();
}

PotentialResult ReferencePotential::evaluate(const AtomicStructure& structure,
                                             const EdgeList& edges) const {
  structure.validate();
  const std::int64_t n = structure.num_atoms();
  PotentialResult result;
  result.forces.assign(static_cast<std::size_t>(n), Vec3{0, 0, 0});
  const double rc = options_.cutoff;
  const std::uint64_t seed = options_.seed;

  // Isolated-atom reference energies.
  for (const auto z : structure.species) {
    result.energy += atomic_reference_energy(z);
  }

  // ---- Pair term (Morse with smooth cutoff), over undirected pairs -------
  // The edge list is directed; process each pair once via src < dst.
  if (options_.pair_weight != 0.0) {
    for (std::int64_t k = 0; k < edges.size(); ++k) {
      const auto ki = static_cast<std::size_t>(k);
      const std::int64_t i = edges.src[ki];
      const std::int64_t j = edges.dst[ki];
      if (i >= j) continue;
      const Vec3 d = edges.displacement[ki];  // r_j - r_i
      const double r = d.norm();
      if (r >= rc || r <= 1e-12) continue;

      const int zi = structure.species[static_cast<std::size_t>(i)];
      const int zj = structure.species[static_cast<std::size_t>(j)];
      const std::uint64_t key = pair_key(zi, zj);
      const double depth = procedural_coeff(seed, key * 3 + 0, 0.5, 2.5);
      const double stiffness = procedural_coeff(seed, key * 3 + 1, 1.2, 2.2);
      const double r0 = elements::covalent_radius(zi) +
                        elements::covalent_radius(zj) +
                        procedural_coeff(seed, key * 3 + 2, -0.1, 0.1);

      const double expo = std::exp(-stiffness * (r - r0));
      const double morse = depth * ((1 - expo) * (1 - expo) - 1.0);
      const double morse_deriv = 2.0 * depth * stiffness * (1 - expo) * expo;
      const double s = switch_fn(r, rc);
      const double sd = switch_fn_deriv(r, rc);

      result.energy += options_.pair_weight * morse * s;
      // dE/dr along the bond; force on j is -dE/dr * d/r, on i the opposite.
      const double de_dr = options_.pair_weight * (morse_deriv * s + morse * sd);
      const Vec3 f = d * (de_dr / r);
      result.forces[static_cast<std::size_t>(j)] -= f;
      result.forces[static_cast<std::size_t>(i)] += f;
    }
  }

  // ---- Embedding term (EAM-like): E_i = -C_zi * sqrt(rho_i + eps) --------
  if (options_.embed_weight != 0.0) {
    constexpr double kEps = 1e-3;
    std::vector<double> rho(static_cast<std::size_t>(n), 0.0);
    for (std::int64_t k = 0; k < edges.size(); ++k) {
      const auto ki = static_cast<std::size_t>(k);
      const double r = edges.displacement[ki].norm();
      // Directed edges: each (i,j) and (j,i) appears once, so this sums
      // psi(r_ij) over all neighbors j of src.
      rho[static_cast<std::size_t>(edges.src[ki])] += density_fn(r, rc);
    }
    std::vector<double> dF(static_cast<std::size_t>(n), 0.0);
    for (std::int64_t i = 0; i < n; ++i) {
      const auto ii = static_cast<std::size_t>(i);
      const int z = structure.species[ii];
      const double c = procedural_coeff(
          seed, static_cast<std::uint64_t>(z) + 7777, 0.8, 2.0);
      // Subtract the rho=0 value so isolated atoms carry no embedding
      // energy (the per-species reference energy handles that offset).
      const double root = std::sqrt(rho[ii] + kEps);
      result.energy +=
          options_.embed_weight * (-c * (root - std::sqrt(kEps)));
      dF[ii] = options_.embed_weight * (-c * 0.5 / root);
    }
    for (std::int64_t k = 0; k < edges.size(); ++k) {
      const auto ki = static_cast<std::size_t>(k);
      const std::int64_t i = edges.src[ki];
      const std::int64_t j = edges.dst[ki];
      if (i >= j) continue;  // handle each undirected pair once
      const Vec3 d = edges.displacement[ki];
      const double r = d.norm();
      if (r >= rc || r <= 1e-12) continue;
      // rho_i and rho_j both depend on r_ij.
      const double de_dr = (dF[static_cast<std::size_t>(i)] +
                            dF[static_cast<std::size_t>(j)]) *
                           density_fn_deriv(r, rc);
      const Vec3 f = d * (de_dr / r);
      result.forces[static_cast<std::size_t>(j)] -= f;
      result.forces[static_cast<std::size_t>(i)] += f;
    }
  }

  // ---- Angular term: sum over triplets j-i-k of lambda*(cos - c0)^2 ------
  if (options_.angular_weight != 0.0) {
    // Adjacency from the directed edge list.
    std::vector<std::vector<std::size_t>> incident(
        static_cast<std::size_t>(n));
    for (std::int64_t k = 0; k < edges.size(); ++k) {
      const auto ki = static_cast<std::size_t>(k);
      incident[static_cast<std::size_t>(edges.src[ki])].push_back(ki);
    }
    for (std::int64_t i = 0; i < n; ++i) {
      const auto ii = static_cast<std::size_t>(i);
      const auto& inc = incident[ii];
      const int zi = structure.species[ii];
      const double lambda =
          options_.angular_weight *
          procedural_coeff(seed, static_cast<std::uint64_t>(zi) + 333, 0.2,
                           1.0);
      const double c0 = procedural_coeff(
          seed, static_cast<std::uint64_t>(zi) + 555, -0.6, 0.2);
      for (std::size_t a = 0; a < inc.size(); ++a) {
        for (std::size_t b = a + 1; b < inc.size(); ++b) {
          const Vec3 u = edges.displacement[inc[a]];  // r_j - r_i
          const Vec3 v = edges.displacement[inc[b]];  // r_k - r_i
          const std::int64_t j = edges.dst[inc[a]];
          const std::int64_t kk = edges.dst[inc[b]];
          const double ru = u.norm();
          const double rv = v.norm();
          if (ru <= 1e-12 || rv <= 1e-12 || ru >= rc || rv >= rc) continue;

          const double inv = 1.0 / (ru * rv);
          const double cosang = u.dot(v) * inv;
          const double g = lambda * (cosang - c0) * (cosang - c0);
          const double gprime = 2.0 * lambda * (cosang - c0);
          const double su = switch_fn(ru, rc);
          const double sv = switch_fn(rv, rc);
          const double sud = switch_fn_deriv(ru, rc);
          const double svd = switch_fn_deriv(rv, rc);

          result.energy += g * su * sv;

          // dcos/du and dcos/dv.
          const Vec3 dcos_du = v * inv - u * (cosang / (ru * ru));
          const Vec3 dcos_dv = u * inv - v * (cosang / (rv * rv));
          // dE/du = g'(c) dcos/du * su sv + g * su' (u/ru) * sv; same for v.
          const Vec3 de_du = dcos_du * (gprime * su * sv) +
                             u * (g * sud * sv / ru);
          const Vec3 de_dv = dcos_dv * (gprime * su * sv) +
                             v * (g * su * svd / rv);
          result.forces[static_cast<std::size_t>(j)] -= de_du;
          result.forces[static_cast<std::size_t>(kk)] -= de_dv;
          result.forces[ii] += de_du + de_dv;
        }
      }
    }
  }

  return result;
}

}  // namespace sgnn
