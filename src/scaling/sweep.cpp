#include "sgnn/scaling/sweep.hpp"

#include "sgnn/obs/metrics.hpp"
#include "sgnn/obs/trace.hpp"
#include "sgnn/util/logging.hpp"
#include "sgnn/util/timer.hpp"

namespace sgnn {

SweepPoint run_scaling_point(const AggregatedDataset& dataset,
                             const std::vector<std::size_t>& train_indices,
                             const std::vector<std::size_t>& test_indices,
                             const ModelConfig& model_config,
                             const SweepProtocol& protocol) {
  const WallTimer timer;
  obs::TraceSpan span("scaling_point", "scaling");

  EGNNModel model(model_config);
  Trainer trainer(model, protocol.train);
  // Composition baseline fitted on the TRAINING subset only (no test
  // leakage); applied to train and test targets alike.
  trainer.set_energy_baseline(
      EnergyBaseline::fit(dataset.view(train_indices)));
  DataLoader loader(dataset.view(train_indices), protocol.train.batch_size,
                    /*seed=*/model_config.seed ^ 0xD47A, /*shuffle=*/true);

  const auto history = trainer.fit(loader);
  const EvalMetrics test =
      trainer.evaluate(dataset.view(test_indices), protocol.eval_batch_size);

  SweepPoint point;
  point.parameters = model.num_parameters();
  point.hidden_dim = model_config.hidden_dim;
  point.num_layers = model_config.num_layers;
  point.dataset_bytes = dataset.bytes_of(train_indices);
  point.train_graphs = static_cast<std::int64_t>(train_indices.size());
  point.train_loss = history.back().mean_train_loss;
  point.test_loss = test.loss;
  point.energy_mae_per_atom = test.energy_mae_per_atom;
  point.force_mae = test.force_mae;
  point.feature_spread = model.last_feature_spread();
  point.seconds = timer.seconds();

  if (span.active()) {
    span.arg("parameters", point.parameters)
        .arg("dataset_bytes", point.dataset_bytes)
        .arg("test_loss", point.test_loss);
  }
  obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
  registry.counter("scaling.points").add(1);
  registry.histogram("scaling.point_seconds").observe(point.seconds);
  registry.gauge("scaling.last_test_loss").set(point.test_loss);

  SGNN_LOG_DEBUG << "sweep point: " << point.parameters << " params, "
                 << point.dataset_bytes << " bytes -> test loss "
                 << point.test_loss;
  return point;
}

}  // namespace sgnn
