#include "sgnn/scaling/powerlaw.hpp"

#include <algorithm>
#include <cmath>

#include "sgnn/util/error.hpp"

namespace sgnn {

double PowerLawFit::evaluate(double x) const {
  SGNN_CHECK(x > 0, "power law evaluated at non-positive x = " << x);
  return a * std::pow(x, -alpha) + c;
}

namespace {

/// Least squares of log(y - c) = log(a) - alpha * log(x). Returns false
/// (leaving `out` untouched) when the system is degenerate: collapsed
/// log-x spread (duplicate x after logging) admits no slope. A constant-y
/// series (zero total variance) fits with r_squared = 0 rather than the
/// vacuous 1.0 — a flat loss curve is not a perfect power law.
bool fit_with_offset(const std::vector<double>& x,
                     const std::vector<double>& y, double c,
                     PowerLawFit& out) {
  const std::size_t n = x.size();
  double sx = 0;
  double sy = 0;
  double sxx = 0;
  double sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i] - c);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) return false;
  const double slope = (dn * sxy - sx * sy) / denom;
  const double intercept = (sy - slope * sx) / dn;

  out.alpha = -slope;
  out.a = std::exp(intercept);
  out.c = c;

  // Centered forms for both sums: the textbook syy - sy^2/n expression
  // cancels catastrophically on near-constant series and can report a
  // spurious nonzero variance.
  const double mean_ly = sy / dn;
  double ss_tot = 0;
  double ss_res = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double ly = std::log(y[i] - c);
    const double predicted = intercept + slope * std::log(x[i]);
    ss_tot += (ly - mean_ly) * (ly - mean_ly);
    ss_res += (ly - predicted) * (ly - predicted);
  }
  out.r_squared = ss_tot > 1e-15 ? 1.0 - ss_res / ss_tot : 0.0;
  return true;
}

void validate_series(const std::vector<double>& x,
                     const std::vector<double>& y, std::size_t min_points) {
  SGNN_CHECK(x.size() == y.size(), "x/y length mismatch");
  SGNN_CHECK(x.size() >= min_points,
             "need at least " << min_points << " points, got " << x.size());
  for (const auto v : x) SGNN_CHECK(v > 0, "x values must be positive");
}

}  // namespace

PowerLawFit fit_power_law(const std::vector<double>& x,
                          const std::vector<double>& y) {
  validate_series(x, y, 3);
  const double y_min = *std::min_element(y.begin(), y.end());
  for (const auto v : y) {
    SGNN_CHECK(v > 0, "y values must be positive for a loss power law");
  }

  PowerLawFit best;
  bool have_best = false;
  // Profile the offset on a fine grid in [0, y_min); the grid endpoint is
  // excluded because log(y_min - c) must stay finite. Degenerate offsets
  // (fit_with_offset returning false) simply drop out of the profile.
  constexpr int kGrid = 200;
  for (int g = 0; g < kGrid; ++g) {
    const double c = y_min * static_cast<double>(g) / kGrid * 0.999;
    PowerLawFit candidate;
    if (!fit_with_offset(x, y, c, candidate)) continue;
    if (!have_best || candidate.r_squared > best.r_squared) {
      best = candidate;
      have_best = true;
    }
  }
  SGNN_CHECK(have_best, "power-law fit failed (degenerate inputs)");
  return best;
}

PowerLawFit fit_pure_power_law(const std::vector<double>& x,
                               const std::vector<double>& y) {
  validate_series(x, y, 2);
  for (const auto v : y) SGNN_CHECK(v > 0, "y values must be positive");
  PowerLawFit fit;
  SGNN_CHECK(fit_with_offset(x, y, 0.0, fit),
             "pure power-law fit is degenerate (no spread in log x)");
  return fit;
}

std::vector<double> local_loglog_slopes(const std::vector<double>& x,
                                        const std::vector<double>& y) {
  validate_series(x, y, 2);
  std::vector<double> slopes;
  slopes.reserve(x.size() - 1);
  for (std::size_t i = 0; i + 1 < x.size(); ++i) {
    const double dx = std::log(x[i + 1]) - std::log(x[i]);
    SGNN_CHECK(std::abs(dx) > 1e-12, "duplicate x values");
    slopes.push_back((std::log(y[i + 1]) - std::log(y[i])) / dx);
  }
  return slopes;
}

}  // namespace sgnn
