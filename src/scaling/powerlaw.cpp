#include "sgnn/scaling/powerlaw.hpp"

#include <algorithm>
#include <cmath>

#include "sgnn/util/error.hpp"

namespace sgnn {

double PowerLawFit::evaluate(double x) const {
  return a * std::pow(x, -alpha) + c;
}

namespace {

/// Least squares of log(y - c) = log(a) - alpha * log(x); returns R^2.
double fit_with_offset(const std::vector<double>& x,
                       const std::vector<double>& y, double c,
                       PowerLawFit& out) {
  const std::size_t n = x.size();
  double sx = 0;
  double sy = 0;
  double sxx = 0;
  double sxy = 0;
  double syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i] - c);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    syy += ly * ly;
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) return -1;
  const double slope = (dn * sxy - sx * sy) / denom;
  const double intercept = (sy - slope * sx) / dn;

  out.alpha = -slope;
  out.a = std::exp(intercept);
  out.c = c;

  const double ss_tot = syy - sy * sy / dn;
  double ss_res = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double predicted = intercept + slope * std::log(x[i]);
    const double residual = std::log(y[i] - c) - predicted;
    ss_res += residual * residual;
  }
  out.r_squared = ss_tot > 1e-15 ? 1.0 - ss_res / ss_tot : 1.0;
  return out.r_squared;
}

void validate_series(const std::vector<double>& x,
                     const std::vector<double>& y, std::size_t min_points) {
  SGNN_CHECK(x.size() == y.size(), "x/y length mismatch");
  SGNN_CHECK(x.size() >= min_points,
             "need at least " << min_points << " points, got " << x.size());
  for (const auto v : x) SGNN_CHECK(v > 0, "x values must be positive");
}

}  // namespace

PowerLawFit fit_power_law(const std::vector<double>& x,
                          const std::vector<double>& y) {
  validate_series(x, y, 3);
  const double y_min = *std::min_element(y.begin(), y.end());
  for (const auto v : y) {
    SGNN_CHECK(v > 0, "y values must be positive for a loss power law");
  }

  PowerLawFit best;
  double best_r2 = -2;
  // Profile the offset on a fine grid in [0, y_min); the grid endpoint is
  // excluded because log(y_min - c) must stay finite.
  constexpr int kGrid = 200;
  for (int g = 0; g < kGrid; ++g) {
    const double c = y_min * static_cast<double>(g) / kGrid * 0.999;
    PowerLawFit candidate;
    const double r2 = fit_with_offset(x, y, c, candidate);
    if (r2 > best_r2) {
      best_r2 = r2;
      best = candidate;
    }
  }
  SGNN_CHECK(best_r2 > -2, "power-law fit failed (degenerate inputs)");
  return best;
}

PowerLawFit fit_pure_power_law(const std::vector<double>& x,
                               const std::vector<double>& y) {
  validate_series(x, y, 2);
  for (const auto v : y) SGNN_CHECK(v > 0, "y values must be positive");
  PowerLawFit fit;
  fit_with_offset(x, y, 0.0, fit);
  return fit;
}

std::vector<double> local_loglog_slopes(const std::vector<double>& x,
                                        const std::vector<double>& y) {
  validate_series(x, y, 2);
  std::vector<double> slopes;
  slopes.reserve(x.size() - 1);
  for (std::size_t i = 0; i + 1 < x.size(); ++i) {
    const double dx = std::log(x[i + 1]) - std::log(x[i]);
    SGNN_CHECK(std::abs(dx) > 1e-12, "duplicate x values");
    slopes.push_back((std::log(y[i + 1]) - std::log(y[i])) / dx);
  }
  return slopes;
}

}  // namespace sgnn
