#include "sgnn/comm/communicator.hpp"

#include "sgnn/obs/metrics.hpp"
#include "sgnn/obs/trace.hpp"
#include "sgnn/util/error.hpp"

namespace sgnn {

Communicator::Communicator(int num_ranks) : num_ranks_(num_ranks) {
  SGNN_CHECK(num_ranks > 0, "communicator needs at least one rank");
  posted_.assign(static_cast<std::size_t>(num_ranks), nullptr);
}

void Communicator::barrier() {
  std::unique_lock<std::mutex> lock(mutex_);
  const std::uint64_t generation = generation_;
  if (++arrived_ == num_ranks_) {
    arrived_ = 0;
    ++generation_;
    cv_.notify_all();
  } else {
    cv_.wait(lock, [&] { return generation_ != generation; });
  }
}

std::pair<std::size_t, std::size_t> Communicator::shard_range(std::size_t n,
                                                              int rank,
                                                              int num_ranks) {
  const std::size_t r = static_cast<std::size_t>(rank);
  const std::size_t R = static_cast<std::size_t>(num_ranks);
  const std::size_t base = n / R;
  const std::size_t extra = n % R;
  const std::size_t begin = r * base + std::min(r, extra);
  const std::size_t size = base + (r < extra ? 1 : 0);
  return {begin, begin + size};
}

void Communicator::all_reduce_sum(int rank, std::vector<real>& data) {
  SGNN_CHECK(rank >= 0 && rank < num_ranks_, "invalid rank " << rank);
  obs::TraceSpan span("all_reduce", "collective");
  if (span.active()) {
    span.arg("bytes",
             static_cast<std::uint64_t>(data.size() * sizeof(real)));
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    posted_[static_cast<std::size_t>(rank)] = &data;
  }
  barrier();
  // Every rank reduces the full vector; results are bit-identical across
  // ranks because the summation order is fixed (rank 0, 1, ..., R-1).
  std::vector<real> total(data.size(), real{0});
  for (int r = 0; r < num_ranks_; ++r) {
    const auto& src = *posted_[static_cast<std::size_t>(r)];
    SGNN_CHECK(src.size() == data.size(),
               "all_reduce size mismatch: rank " << r << " has " << src.size()
                                                 << ", rank " << rank
                                                 << " has " << data.size());
    for (std::size_t i = 0; i < total.size(); ++i) total[i] += src[i];
  }
  barrier();
  data = std::move(total);
  if (rank == 0) {
    const std::uint64_t bytes = data.size() * sizeof(real);
    all_reduce_bytes_.fetch_add(bytes);
    all_reduce_calls_.fetch_add(1);
    collective_calls_.fetch_add(1);
    obs::MetricsRegistry::instance()
        .counter("comm.all_reduce_bytes")
        .add(static_cast<std::int64_t>(bytes));
    obs::MetricsRegistry::instance().counter("comm.collective_calls").add(1);
  }
}

void Communicator::broadcast(int rank, std::vector<real>& data, int root) {
  SGNN_CHECK(rank >= 0 && rank < num_ranks_, "invalid rank " << rank);
  SGNN_CHECK(root >= 0 && root < num_ranks_, "invalid broadcast root");
  obs::TraceSpan span("broadcast", "collective");
  if (span.active()) {
    span.arg("bytes",
             static_cast<std::uint64_t>(data.size() * sizeof(real)));
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    posted_[static_cast<std::size_t>(rank)] = &data;
  }
  barrier();
  const auto& src = *posted_[static_cast<std::size_t>(root)];
  std::vector<real> copy;
  if (rank != root) {
    copy = src;  // read while the root's buffer is pinned between barriers
  }
  barrier();
  if (rank != root) data = std::move(copy);
  if (rank == 0) {
    const std::uint64_t bytes = data.size() * sizeof(real);
    broadcast_bytes_.fetch_add(bytes);
    broadcast_calls_.fetch_add(1);
    collective_calls_.fetch_add(1);
    obs::MetricsRegistry::instance()
        .counter("comm.broadcast_bytes")
        .add(static_cast<std::int64_t>(bytes));
    obs::MetricsRegistry::instance().counter("comm.collective_calls").add(1);
  }
}

std::vector<real> Communicator::reduce_scatter_sum(
    int rank, const std::vector<real>& input) {
  SGNN_CHECK(rank >= 0 && rank < num_ranks_, "invalid rank " << rank);
  obs::TraceSpan span("reduce_scatter", "collective");
  if (span.active()) {
    span.arg("bytes",
             static_cast<std::uint64_t>(input.size() * sizeof(real)));
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    posted_[static_cast<std::size_t>(rank)] = &input;
  }
  barrier();
  const auto [begin, end] = shard_range(input.size(), rank, num_ranks_);
  std::vector<real> shard(end - begin, real{0});
  for (int r = 0; r < num_ranks_; ++r) {
    const auto& src = *posted_[static_cast<std::size_t>(r)];
    SGNN_CHECK(src.size() == input.size(), "reduce_scatter size mismatch");
    for (std::size_t i = begin; i < end; ++i) shard[i - begin] += src[i];
  }
  barrier();
  if (rank == 0) {
    const std::uint64_t bytes = input.size() * sizeof(real);
    reduce_scatter_bytes_.fetch_add(bytes);
    reduce_scatter_calls_.fetch_add(1);
    collective_calls_.fetch_add(1);
    obs::MetricsRegistry::instance()
        .counter("comm.reduce_scatter_bytes")
        .add(static_cast<std::int64_t>(bytes));
    obs::MetricsRegistry::instance().counter("comm.collective_calls").add(1);
  }
  return shard;
}

std::vector<real> Communicator::all_gather(int rank,
                                           const std::vector<real>& shard) {
  SGNN_CHECK(rank >= 0 && rank < num_ranks_, "invalid rank " << rank);
  obs::TraceSpan span("all_gather", "collective");
  if (span.active()) {
    span.arg("bytes",
             static_cast<std::uint64_t>(shard.size() * sizeof(real)));
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    posted_[static_cast<std::size_t>(rank)] = &shard;
  }
  barrier();
  std::vector<real> gathered;
  for (int r = 0; r < num_ranks_; ++r) {
    const auto& src = *posted_[static_cast<std::size_t>(r)];
    gathered.insert(gathered.end(), src.begin(), src.end());
  }
  barrier();
  if (rank == 0) {
    const std::uint64_t bytes = gathered.size() * sizeof(real);
    all_gather_bytes_.fetch_add(bytes);
    all_gather_calls_.fetch_add(1);
    collective_calls_.fetch_add(1);
    obs::MetricsRegistry::instance()
        .counter("comm.all_gather_bytes")
        .add(static_cast<std::int64_t>(bytes));
    obs::MetricsRegistry::instance().counter("comm.collective_calls").add(1);
  }
  return gathered;
}

Communicator::Traffic Communicator::traffic() const {
  Traffic t;
  t.all_reduce_bytes = all_reduce_bytes_.load();
  t.reduce_scatter_bytes = reduce_scatter_bytes_.load();
  t.all_gather_bytes = all_gather_bytes_.load();
  t.broadcast_bytes = broadcast_bytes_.load();
  t.all_reduce_calls = all_reduce_calls_.load();
  t.reduce_scatter_calls = reduce_scatter_calls_.load();
  t.all_gather_calls = all_gather_calls_.load();
  t.broadcast_calls = broadcast_calls_.load();
  t.collective_calls = collective_calls_.load();
  return t;
}

void Communicator::reset_traffic() {
  all_reduce_bytes_ = 0;
  reduce_scatter_bytes_ = 0;
  all_gather_bytes_ = 0;
  broadcast_bytes_ = 0;
  all_reduce_calls_ = 0;
  reduce_scatter_calls_ = 0;
  all_gather_calls_ = 0;
  broadcast_calls_ = 0;
  collective_calls_ = 0;
}

Communicator::Traffic Communicator::Traffic::since(
    const Traffic& earlier) const {
  Traffic delta;
  delta.all_reduce_bytes = all_reduce_bytes - earlier.all_reduce_bytes;
  delta.reduce_scatter_bytes =
      reduce_scatter_bytes - earlier.reduce_scatter_bytes;
  delta.all_gather_bytes = all_gather_bytes - earlier.all_gather_bytes;
  delta.broadcast_bytes = broadcast_bytes - earlier.broadcast_bytes;
  delta.all_reduce_calls = all_reduce_calls - earlier.all_reduce_calls;
  delta.reduce_scatter_calls =
      reduce_scatter_calls - earlier.reduce_scatter_calls;
  delta.all_gather_calls = all_gather_calls - earlier.all_gather_calls;
  delta.broadcast_calls = broadcast_calls - earlier.broadcast_calls;
  delta.collective_calls = collective_calls - earlier.collective_calls;
  return delta;
}

double InterconnectModel::all_reduce_seconds(std::uint64_t bytes,
                                             int ranks) const {
  if (ranks <= 1) return 0.0;
  const double steps = 2.0 * (ranks - 1);
  return steps * (static_cast<double>(bytes) / ranks /
                  link_bandwidth_bytes_per_s);
}

double InterconnectModel::reduce_scatter_seconds(std::uint64_t bytes,
                                                 int ranks) const {
  if (ranks <= 1) return 0.0;
  const double steps = static_cast<double>(ranks - 1);
  return steps * (static_cast<double>(bytes) / ranks /
                  link_bandwidth_bytes_per_s);
}

double InterconnectModel::all_gather_seconds(std::uint64_t bytes,
                                             int ranks) const {
  return reduce_scatter_seconds(bytes, ranks);
}

double InterconnectModel::broadcast_seconds(std::uint64_t bytes,
                                            int ranks) const {
  if (ranks <= 1) return 0.0;
  return static_cast<double>(bytes) / link_bandwidth_bytes_per_s;
}

double InterconnectModel::all_reduce_latency_seconds(int ranks) const {
  if (ranks <= 1) return 0.0;
  return 2.0 * (ranks - 1) * latency_seconds;
}

double InterconnectModel::reduce_scatter_latency_seconds(int ranks) const {
  if (ranks <= 1) return 0.0;
  return static_cast<double>(ranks - 1) * latency_seconds;
}

double InterconnectModel::all_gather_latency_seconds(int ranks) const {
  return reduce_scatter_latency_seconds(ranks);
}

double InterconnectModel::broadcast_latency_seconds(int ranks) const {
  if (ranks <= 1) return 0.0;
  return static_cast<double>(ranks - 1) * latency_seconds;
}

double InterconnectModel::seconds(const Communicator::Traffic& traffic,
                                  int ranks) const {
  return all_reduce_seconds(traffic.all_reduce_bytes, ranks) +
         reduce_scatter_seconds(traffic.reduce_scatter_bytes, ranks) +
         all_gather_seconds(traffic.all_gather_bytes, ranks) +
         broadcast_seconds(traffic.broadcast_bytes, ranks) +
         static_cast<double>(traffic.all_reduce_calls) *
             all_reduce_latency_seconds(ranks) +
         static_cast<double>(traffic.reduce_scatter_calls) *
             reduce_scatter_latency_seconds(ranks) +
         static_cast<double>(traffic.all_gather_calls) *
             all_gather_latency_seconds(ranks) +
         static_cast<double>(traffic.broadcast_calls) *
             broadcast_latency_seconds(ranks);
}

}  // namespace sgnn
