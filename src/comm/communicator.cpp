#include "sgnn/comm/communicator.hpp"

#include <algorithm>
#include <numeric>

#include "sgnn/obs/metrics.hpp"
#include "sgnn/obs/trace.hpp"
#include "sgnn/util/error.hpp"

namespace sgnn {

namespace comm_detail {

/// Shared completion state of one rank's post (one per handle). The engine
/// flips `done` (or sets `error`) under the mutex and notifies.
struct NbOpState {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  std::string error;  ///< non-empty: wait()/test() throw instead
};

/// One rank's enqueued non-blocking post, parked until every rank's
/// matching post (same position in its FIFO) has arrived.
struct PendingOp {
  CollectiveKind kind = CollectiveKind::kAllReduce;
  int rank = -1;
  std::vector<real>* inout = nullptr;        ///< all-reduce: in and out
  const std::vector<real>* input = nullptr;  ///< rs input / ag piece
  std::vector<real>* output = nullptr;       ///< rs piece / ag gathered
  std::vector<std::size_t> counts;           ///< explicit partition sizes
  std::shared_ptr<NbOpState> state;
};

/// Completes every handle of a matched set, with or without an error.
void finish(std::vector<PendingOp>& ops, const std::string& error) {
  for (auto& op : ops) {
    const std::lock_guard<std::mutex> lock(op.state->mutex);
    op.state->error = error;
    op.state->done = true;
    op.state->cv.notify_all();
  }
}

}  // namespace comm_detail

bool CollectiveHandle::test() const {
  SGNN_CHECK(state_ != nullptr, "test() on an empty CollectiveHandle");
  const std::lock_guard<std::mutex> lock(state_->mutex);
  if (state_->done && !state_->error.empty()) {
    throw Error(state_->error);
  }
  return state_->done;
}

void CollectiveHandle::wait() const {
  SGNN_CHECK(state_ != nullptr, "wait() on an empty CollectiveHandle");
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [&] { return state_->done; });
  if (!state_->error.empty()) {
    throw Error(state_->error);
  }
}

Communicator::Communicator(int num_ranks) : num_ranks_(num_ranks) {
  SGNN_CHECK(num_ranks > 0, "communicator needs at least one rank");
  posted_.assign(static_cast<std::size_t>(num_ranks), nullptr);
  nb_queues_.resize(static_cast<std::size_t>(num_ranks));
}

Communicator::~Communicator() {
  std::vector<comm_detail::PendingOp> orphans;
  {
    const std::lock_guard<std::mutex> lock(nb_mutex_);
    nb_shutdown_ = true;
    nb_cv_.notify_all();
  }
  if (nb_engine_.joinable()) nb_engine_.join();
  // The engine drains every matchable set before exiting; whatever is left
  // is an un-matchable partial post (some rank never posted its half).
  // Fail those handles so a stray wait() throws instead of hanging forever.
  for (auto& queue : nb_queues_) {
    for (auto& op : queue) orphans.push_back(std::move(op));
    queue.clear();
  }
  comm_detail::finish(orphans,
                      orphans.empty()
                          ? ""
                          : "communicator destroyed with unmatched "
                            "non-blocking collective posts");
}

void Communicator::barrier() {
  std::unique_lock<std::mutex> lock(mutex_);
  const std::uint64_t generation = generation_;
  if (++arrived_ == num_ranks_) {
    arrived_ = 0;
    ++generation_;
    cv_.notify_all();
  } else {
    cv_.wait(lock, [&] { return generation_ != generation; });
  }
}

std::pair<std::size_t, std::size_t> Communicator::shard_range(std::size_t n,
                                                              int rank,
                                                              int num_ranks) {
  const std::size_t r = static_cast<std::size_t>(rank);
  const std::size_t R = static_cast<std::size_t>(num_ranks);
  const std::size_t base = n / R;
  const std::size_t extra = n % R;
  const std::size_t begin = r * base + std::min(r, extra);
  const std::size_t size = base + (r < extra ? 1 : 0);
  return {begin, begin + size};
}

void Communicator::all_reduce_sum(int rank, std::vector<real>& data) {
  SGNN_CHECK(rank >= 0 && rank < num_ranks_, "invalid rank " << rank);
  obs::TraceSpan span("all_reduce", "collective");
  if (span.active()) {
    span.arg("bytes",
             static_cast<std::uint64_t>(data.size() * sizeof(real)));
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    posted_[static_cast<std::size_t>(rank)] = &data;
  }
  barrier();
  // Every rank reduces the full vector; results are bit-identical across
  // ranks because the summation order is fixed (rank 0, 1, ..., R-1).
  std::vector<real> total(data.size(), real{0});
  for (int r = 0; r < num_ranks_; ++r) {
    const auto& src = *posted_[static_cast<std::size_t>(r)];
    SGNN_CHECK(src.size() == data.size(),
               "all_reduce size mismatch: rank " << r << " has " << src.size()
                                                 << ", rank " << rank
                                                 << " has " << data.size());
    for (std::size_t i = 0; i < total.size(); ++i) total[i] += src[i];
  }
  barrier();
  data = std::move(total);
  if (rank == 0) {
    const std::uint64_t bytes = data.size() * sizeof(real);
    all_reduce_bytes_.fetch_add(bytes);
    all_reduce_calls_.fetch_add(1);
    collective_calls_.fetch_add(1);
    obs::MetricsRegistry::instance()
        .counter("comm.all_reduce_bytes")
        .add(static_cast<std::int64_t>(bytes));
    obs::MetricsRegistry::instance().counter("comm.collective_calls").add(1);
  }
}

void Communicator::broadcast(int rank, std::vector<real>& data, int root) {
  SGNN_CHECK(rank >= 0 && rank < num_ranks_, "invalid rank " << rank);
  SGNN_CHECK(root >= 0 && root < num_ranks_, "invalid broadcast root");
  obs::TraceSpan span("broadcast", "collective");
  if (span.active()) {
    span.arg("bytes",
             static_cast<std::uint64_t>(data.size() * sizeof(real)));
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    posted_[static_cast<std::size_t>(rank)] = &data;
  }
  barrier();
  const auto& src = *posted_[static_cast<std::size_t>(root)];
  std::vector<real> copy;
  if (rank != root) {
    copy = src;  // read while the root's buffer is pinned between barriers
  }
  barrier();
  if (rank != root) data = std::move(copy);
  if (rank == 0) {
    const std::uint64_t bytes = data.size() * sizeof(real);
    broadcast_bytes_.fetch_add(bytes);
    broadcast_calls_.fetch_add(1);
    collective_calls_.fetch_add(1);
    obs::MetricsRegistry::instance()
        .counter("comm.broadcast_bytes")
        .add(static_cast<std::int64_t>(bytes));
    obs::MetricsRegistry::instance().counter("comm.collective_calls").add(1);
  }
}

std::vector<real> Communicator::reduce_scatter_sum(
    int rank, const std::vector<real>& input) {
  SGNN_CHECK(rank >= 0 && rank < num_ranks_, "invalid rank " << rank);
  obs::TraceSpan span("reduce_scatter", "collective");
  if (span.active()) {
    span.arg("bytes",
             static_cast<std::uint64_t>(input.size() * sizeof(real)));
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    posted_[static_cast<std::size_t>(rank)] = &input;
  }
  barrier();
  const auto [begin, end] = shard_range(input.size(), rank, num_ranks_);
  std::vector<real> shard(end - begin, real{0});
  for (int r = 0; r < num_ranks_; ++r) {
    const auto& src = *posted_[static_cast<std::size_t>(r)];
    SGNN_CHECK(src.size() == input.size(), "reduce_scatter size mismatch");
    for (std::size_t i = begin; i < end; ++i) shard[i - begin] += src[i];
  }
  barrier();
  if (rank == 0) {
    const std::uint64_t bytes = input.size() * sizeof(real);
    reduce_scatter_bytes_.fetch_add(bytes);
    reduce_scatter_calls_.fetch_add(1);
    collective_calls_.fetch_add(1);
    obs::MetricsRegistry::instance()
        .counter("comm.reduce_scatter_bytes")
        .add(static_cast<std::int64_t>(bytes));
    obs::MetricsRegistry::instance().counter("comm.collective_calls").add(1);
  }
  return shard;
}

std::vector<real> Communicator::all_gather(int rank,
                                           const std::vector<real>& shard) {
  SGNN_CHECK(rank >= 0 && rank < num_ranks_, "invalid rank " << rank);
  obs::TraceSpan span("all_gather", "collective");
  if (span.active()) {
    span.arg("bytes",
             static_cast<std::uint64_t>(shard.size() * sizeof(real)));
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    posted_[static_cast<std::size_t>(rank)] = &shard;
  }
  barrier();
  std::vector<real> gathered;
  for (int r = 0; r < num_ranks_; ++r) {
    const auto& src = *posted_[static_cast<std::size_t>(r)];
    gathered.insert(gathered.end(), src.begin(), src.end());
  }
  barrier();
  if (rank == 0) {
    const std::uint64_t bytes = gathered.size() * sizeof(real);
    all_gather_bytes_.fetch_add(bytes);
    all_gather_calls_.fetch_add(1);
    collective_calls_.fetch_add(1);
    obs::MetricsRegistry::instance()
        .counter("comm.all_gather_bytes")
        .add(static_cast<std::int64_t>(bytes));
    obs::MetricsRegistry::instance().counter("comm.collective_calls").add(1);
  }
  return gathered;
}

CollectiveHandle Communicator::iall_reduce_sum(int rank,
                                               std::vector<real>& data) {
  SGNN_CHECK(rank >= 0 && rank < num_ranks_, "invalid rank " << rank);
  comm_detail::PendingOp op;
  op.kind = CollectiveKind::kAllReduce;
  op.rank = rank;
  op.inout = &data;
  return enqueue(std::move(op));
}

CollectiveHandle Communicator::ireduce_scatter_counts(
    int rank, const std::vector<real>& input,
    const std::vector<std::size_t>& counts, std::vector<real>& piece) {
  SGNN_CHECK(rank >= 0 && rank < num_ranks_, "invalid rank " << rank);
  SGNN_CHECK(counts.size() == static_cast<std::size_t>(num_ranks_),
             "ireduce_scatter_counts needs one count per rank, got "
                 << counts.size() << " for " << num_ranks_ << " ranks");
  const std::size_t total =
      std::accumulate(counts.begin(), counts.end(), std::size_t{0});
  SGNN_CHECK(total == input.size(),
             "ireduce_scatter_counts counts sum to "
                 << total << " but input has " << input.size() << " elements");
  comm_detail::PendingOp op;
  op.kind = CollectiveKind::kReduceScatter;
  op.rank = rank;
  op.input = &input;
  op.output = &piece;
  op.counts = counts;
  return enqueue(std::move(op));
}

CollectiveHandle Communicator::iall_gather_counts(
    int rank, const std::vector<real>& piece,
    const std::vector<std::size_t>& counts, std::vector<real>& gathered) {
  SGNN_CHECK(rank >= 0 && rank < num_ranks_, "invalid rank " << rank);
  SGNN_CHECK(counts.size() == static_cast<std::size_t>(num_ranks_),
             "iall_gather_counts needs one count per rank, got "
                 << counts.size() << " for " << num_ranks_ << " ranks");
  SGNN_CHECK(piece.size() == counts[static_cast<std::size_t>(rank)],
             "iall_gather_counts piece has "
                 << piece.size() << " elements but counts[" << rank << "] is "
                 << counts[static_cast<std::size_t>(rank)]);
  comm_detail::PendingOp op;
  op.kind = CollectiveKind::kAllGather;
  op.rank = rank;
  op.input = &piece;
  op.output = &gathered;
  op.counts = counts;
  return enqueue(std::move(op));
}

CollectiveHandle Communicator::enqueue(comm_detail::PendingOp op) {
  op.state = std::make_shared<comm_detail::NbOpState>();
  CollectiveHandle handle(op.state);
  {
    const std::lock_guard<std::mutex> lock(nb_mutex_);
    SGNN_CHECK(!nb_shutdown_, "non-blocking post on a shutting-down "
                              "communicator");
    if (!nb_engine_started_) {
      nb_engine_started_ = true;
      nb_engine_ = std::thread([this] { progress_loop(); });
    }
    nb_queues_[static_cast<std::size_t>(op.rank)].push_back(std::move(op));
    nb_cv_.notify_all();
  }
  return handle;
}

namespace {

/// Cross-rank validation of one matched set of posts. Returns an empty
/// string when the set forms a well-posed collective; otherwise the error
/// every handle should fail with. This is the non-blocking analogue of the
/// SGNN_CHECKs inside the blocking collectives — except a mismatch here
/// cannot throw in any rank's thread, so it is deferred to wait()/test().
std::string validate_matched(const std::vector<comm_detail::PendingOp>& ops) {
  const CollectiveKind kind = ops.front().kind;
  for (const auto& op : ops) {
    if (op.kind != kind) {
      return "mismatched non-blocking collective kinds across ranks "
             "(SPMD post-order violation)";
    }
  }
  switch (kind) {
    case CollectiveKind::kAllReduce: {
      const std::size_t n = ops.front().inout->size();
      for (const auto& op : ops) {
        if (op.inout->size() != n) {
          return "iall_reduce_sum size mismatch across ranks";
        }
      }
      break;
    }
    case CollectiveKind::kReduceScatter:
    case CollectiveKind::kAllGather: {
      const auto& counts = ops.front().counts;
      for (const auto& op : ops) {
        if (op.counts != counts) {
          return "non-blocking collective counts differ across ranks";
        }
      }
      break;
    }
    case CollectiveKind::kBroadcast:
      return "broadcast has no non-blocking variant";
  }
  return std::string();
}

}  // namespace

void Communicator::progress_loop() {
  for (;;) {
    std::vector<comm_detail::PendingOp> ops;
    {
      std::unique_lock<std::mutex> lock(nb_mutex_);
      const auto matchable = [&] {
        for (const auto& queue : nb_queues_) {
          if (queue.empty()) return false;
        }
        return true;
      };
      nb_cv_.wait(lock, [&] { return nb_shutdown_ || matchable(); });
      // Drain every matchable set even while shutting down — the posts
      // already happened, and their ranks may be blocked in wait().
      if (!matchable()) {
        if (nb_shutdown_) return;
        continue;
      }
      ops.reserve(static_cast<std::size_t>(num_ranks_));
      for (auto& queue : nb_queues_) {
        ops.push_back(std::move(queue.front()));
        queue.pop_front();
      }
    }
    const std::string error = validate_matched(ops);
    if (!error.empty()) {
      comm_detail::finish(ops, error);
      continue;
    }
    switch (ops.front().kind) {
      case CollectiveKind::kAllReduce: {
        // Fixed rank-order summation, exactly like the blocking path, so
        // bucketed results are bit-identical to one big all_reduce_sum.
        std::vector<real> total(ops.front().inout->size(), real{0});
        for (const auto& op : ops) {
          const auto& src = *op.inout;
          for (std::size_t i = 0; i < total.size(); ++i) total[i] += src[i];
        }
        for (auto& op : ops) *op.inout = total;
        count_nonblocking(CollectiveKind::kAllReduce,
                          total.size() * sizeof(real));
        break;
      }
      case CollectiveKind::kReduceScatter: {
        const auto& counts = ops.front().counts;
        std::size_t offset = 0;
        for (std::size_t r = 0; r < counts.size(); ++r) {
          auto& piece = *ops[r].output;
          piece.assign(counts[r], real{0});
          for (const auto& op : ops) {
            const auto& src = *op.input;
            for (std::size_t i = 0; i < counts[r]; ++i) {
              piece[i] += src[offset + i];
            }
          }
          offset += counts[r];
        }
        count_nonblocking(CollectiveKind::kReduceScatter,
                          offset * sizeof(real));
        break;
      }
      case CollectiveKind::kAllGather: {
        std::vector<real> gathered;
        for (const auto& op : ops) {
          gathered.insert(gathered.end(), op.input->begin(), op.input->end());
        }
        for (auto& op : ops) *op.output = gathered;
        count_nonblocking(CollectiveKind::kAllGather,
                          gathered.size() * sizeof(real));
        break;
      }
      case CollectiveKind::kBroadcast:
        break;  // rejected by validate_matched
    }
    comm_detail::finish(ops, std::string());
  }
}

void Communicator::count_nonblocking(CollectiveKind kind,
                                     std::uint64_t bytes) {
  auto& registry = obs::MetricsRegistry::instance();
  switch (kind) {
    case CollectiveKind::kAllReduce:
      all_reduce_bytes_.fetch_add(bytes);
      all_reduce_calls_.fetch_add(1);
      registry.counter("comm.all_reduce_bytes")
          .add(static_cast<std::int64_t>(bytes));
      break;
    case CollectiveKind::kReduceScatter:
      reduce_scatter_bytes_.fetch_add(bytes);
      reduce_scatter_calls_.fetch_add(1);
      registry.counter("comm.reduce_scatter_bytes")
          .add(static_cast<std::int64_t>(bytes));
      break;
    case CollectiveKind::kAllGather:
      all_gather_bytes_.fetch_add(bytes);
      all_gather_calls_.fetch_add(1);
      registry.counter("comm.all_gather_bytes")
          .add(static_cast<std::int64_t>(bytes));
      break;
    case CollectiveKind::kBroadcast:
      broadcast_bytes_.fetch_add(bytes);
      broadcast_calls_.fetch_add(1);
      registry.counter("comm.broadcast_bytes")
          .add(static_cast<std::int64_t>(bytes));
      break;
  }
  collective_calls_.fetch_add(1);
  registry.counter("comm.collective_calls").add(1);
}

Communicator::Traffic Communicator::traffic() const {
  Traffic t;
  t.all_reduce_bytes = all_reduce_bytes_.load();
  t.reduce_scatter_bytes = reduce_scatter_bytes_.load();
  t.all_gather_bytes = all_gather_bytes_.load();
  t.broadcast_bytes = broadcast_bytes_.load();
  t.all_reduce_calls = all_reduce_calls_.load();
  t.reduce_scatter_calls = reduce_scatter_calls_.load();
  t.all_gather_calls = all_gather_calls_.load();
  t.broadcast_calls = broadcast_calls_.load();
  t.collective_calls = collective_calls_.load();
  return t;
}

void Communicator::reset_traffic() {
  all_reduce_bytes_ = 0;
  reduce_scatter_bytes_ = 0;
  all_gather_bytes_ = 0;
  broadcast_bytes_ = 0;
  all_reduce_calls_ = 0;
  reduce_scatter_calls_ = 0;
  all_gather_calls_ = 0;
  broadcast_calls_ = 0;
  collective_calls_ = 0;
}

Communicator::Traffic Communicator::Traffic::since(
    const Traffic& earlier) const {
  SGNN_CHECK(earlier.all_reduce_bytes <= all_reduce_bytes &&
                 earlier.reduce_scatter_bytes <= reduce_scatter_bytes &&
                 earlier.all_gather_bytes <= all_gather_bytes &&
                 earlier.broadcast_bytes <= broadcast_bytes &&
                 earlier.all_reduce_calls <= all_reduce_calls &&
                 earlier.reduce_scatter_calls <= reduce_scatter_calls &&
                 earlier.all_gather_calls <= all_gather_calls &&
                 earlier.broadcast_calls <= broadcast_calls &&
                 earlier.collective_calls <= collective_calls,
             "Traffic::since called with a later snapshot as `earlier`; "
             "unsigned subtraction would wrap");
  Traffic delta;
  delta.all_reduce_bytes = all_reduce_bytes - earlier.all_reduce_bytes;
  delta.reduce_scatter_bytes =
      reduce_scatter_bytes - earlier.reduce_scatter_bytes;
  delta.all_gather_bytes = all_gather_bytes - earlier.all_gather_bytes;
  delta.broadcast_bytes = broadcast_bytes - earlier.broadcast_bytes;
  delta.all_reduce_calls = all_reduce_calls - earlier.all_reduce_calls;
  delta.reduce_scatter_calls =
      reduce_scatter_calls - earlier.reduce_scatter_calls;
  delta.all_gather_calls = all_gather_calls - earlier.all_gather_calls;
  delta.broadcast_calls = broadcast_calls - earlier.broadcast_calls;
  delta.collective_calls = collective_calls - earlier.collective_calls;
  return delta;
}

double InterconnectModel::all_reduce_seconds(std::uint64_t bytes,
                                             int ranks) const {
  if (ranks <= 1) return 0.0;
  const double steps = 2.0 * (ranks - 1);
  return steps * (static_cast<double>(bytes) / ranks /
                  link_bandwidth_bytes_per_s);
}

double InterconnectModel::reduce_scatter_seconds(std::uint64_t bytes,
                                                 int ranks) const {
  if (ranks <= 1) return 0.0;
  const double steps = static_cast<double>(ranks - 1);
  return steps * (static_cast<double>(bytes) / ranks /
                  link_bandwidth_bytes_per_s);
}

double InterconnectModel::all_gather_seconds(std::uint64_t bytes,
                                             int ranks) const {
  return reduce_scatter_seconds(bytes, ranks);
}

double InterconnectModel::broadcast_seconds(std::uint64_t bytes,
                                            int ranks) const {
  if (ranks <= 1) return 0.0;
  return static_cast<double>(bytes) / link_bandwidth_bytes_per_s;
}

double InterconnectModel::all_reduce_latency_seconds(int ranks) const {
  if (ranks <= 1) return 0.0;
  return 2.0 * (ranks - 1) * latency_seconds;
}

double InterconnectModel::reduce_scatter_latency_seconds(int ranks) const {
  if (ranks <= 1) return 0.0;
  return static_cast<double>(ranks - 1) * latency_seconds;
}

double InterconnectModel::all_gather_latency_seconds(int ranks) const {
  return reduce_scatter_latency_seconds(ranks);
}

double InterconnectModel::broadcast_latency_seconds(int ranks) const {
  if (ranks <= 1) return 0.0;
  return static_cast<double>(ranks - 1) * latency_seconds;
}

double InterconnectModel::seconds(const Communicator::Traffic& traffic,
                                  int ranks) const {
  return all_reduce_seconds(traffic.all_reduce_bytes, ranks) +
         reduce_scatter_seconds(traffic.reduce_scatter_bytes, ranks) +
         all_gather_seconds(traffic.all_gather_bytes, ranks) +
         broadcast_seconds(traffic.broadcast_bytes, ranks) +
         static_cast<double>(traffic.all_reduce_calls) *
             all_reduce_latency_seconds(ranks) +
         static_cast<double>(traffic.reduce_scatter_calls) *
             reduce_scatter_latency_seconds(ranks) +
         static_cast<double>(traffic.all_gather_calls) *
             all_gather_latency_seconds(ranks) +
         static_cast<double>(traffic.broadcast_calls) *
             broadcast_latency_seconds(ranks);
}

double InterconnectModel::call_seconds(CollectiveKind kind,
                                       std::uint64_t bytes, int ranks) const {
  switch (kind) {
    case CollectiveKind::kAllReduce:
      return all_reduce_seconds(bytes, ranks) +
             all_reduce_latency_seconds(ranks);
    case CollectiveKind::kReduceScatter:
      return reduce_scatter_seconds(bytes, ranks) +
             reduce_scatter_latency_seconds(ranks);
    case CollectiveKind::kAllGather:
      return all_gather_seconds(bytes, ranks) +
             all_gather_latency_seconds(ranks);
    case CollectiveKind::kBroadcast:
      return broadcast_seconds(bytes, ranks) +
             broadcast_latency_seconds(ranks);
  }
  SGNN_CHECK(false, "unknown CollectiveKind");
  return 0.0;
}

InterconnectModel::OverlapCost InterconnectModel::overlap_cost(
    const std::vector<OverlapEvent>& events, int ranks) const {
  OverlapCost cost;
  // The fabric is serial: op i occupies it for its modeled duration
  // starting no earlier than its (stall-adjusted) post time and no earlier
  // than the previous op's finish. Whenever a wait() arrives before its
  // op's modeled finish, the shortfall is exposed stall, and it pushes
  // every later measured timestamp out by the same amount (the rank's
  // clock ran while the fabric's did not).
  double fabric_free = 0.0;  // when the modeled fabric next becomes idle
  double stall = 0.0;        // accumulated exposed time so far
  double prev_post = 0.0;
  for (const auto& event : events) {
    SGNN_CHECK(event.wait_seconds >= event.post_seconds,
               "overlap event waited before it was posted");
    SGNN_CHECK(event.post_seconds >= prev_post,
               "overlap events must be FIFO-ordered by post time");
    prev_post = event.post_seconds;
    const double duration = call_seconds(event.kind, event.bytes, ranks);
    const double start = std::max(event.post_seconds + stall, fabric_free);
    const double finish = start + duration;
    fabric_free = finish;
    const double now = event.wait_seconds + stall;
    const double exposed = std::max(0.0, finish - now);
    stall += exposed;
    cost.total_seconds += duration;
    cost.exposed_seconds += exposed;
    ++cost.ops;
  }
  cost.overlapped_seconds = cost.total_seconds - cost.exposed_seconds;
  return cost;
}

}  // namespace sgnn
