#include "sgnn/nn/module.hpp"

#include <cmath>

#include "sgnn/util/error.hpp"

namespace sgnn {

std::vector<Tensor> Module::parameters() const {
  std::vector<Tensor> all = parameters_;
  for (const Module* child : children_) {
    const auto sub = child->parameters();
    all.insert(all.end(), sub.begin(), sub.end());
  }
  return all;
}

std::int64_t Module::num_parameters() const {
  std::int64_t count = 0;
  for (const auto& p : parameters()) count += p.numel();
  return count;
}

void Module::zero_grad() {
  for (auto& p : parameters()) p.zero_grad();
}

void Module::copy_parameters_from(const Module& other) {
  const auto mine = parameters();
  const auto theirs = other.parameters();
  SGNN_CHECK(mine.size() == theirs.size(),
             "copy_parameters_from: " << mine.size() << " vs "
                                      << theirs.size() << " parameters");
  for (std::size_t i = 0; i < mine.size(); ++i) {
    SGNN_CHECK(mine[i].shape() == theirs[i].shape(),
               "parameter " << i << " shape mismatch: "
                            << mine[i].shape().to_string() << " vs "
                            << theirs[i].shape().to_string());
    Tensor dst = mine[i];
    const std::int64_t n = dst.numel();
    const real* src = theirs[i].data();
    real* d = dst.data();
    for (std::int64_t k = 0; k < n; ++k) d[k] = src[k];
  }
}

void Module::register_parameter(Tensor parameter) {
  SGNN_CHECK(parameter.defined() && parameter.is_leaf() &&
                 parameter.requires_grad(),
             "parameters must be leaves requiring grad");
  parameters_.push_back(std::move(parameter));
}

void Module::register_module(Module& child) { children_.push_back(&child); }

Tensor glorot_uniform(std::int64_t fan_in, std::int64_t fan_out, Rng& rng) {
  const ScopedMemCategory scope(MemCategory::kWeight);
  const real bound = std::sqrt(
      real{6} / static_cast<real>(fan_in + fan_out));
  Tensor w = Tensor::uniform(Shape{fan_in, fan_out}, rng, -bound, bound);
  w.set_requires_grad(true);
  return w;
}

}  // namespace sgnn
