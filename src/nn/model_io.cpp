#include "sgnn/nn/model_io.hpp"

#include <cstring>
#include <fstream>
#include <sstream>
#include <type_traits>
#include <vector>

#include "sgnn/store/serialize.hpp"
#include "sgnn/util/error.hpp"

namespace sgnn {

namespace {

constexpr char kMagic[4] = {'S', 'G', 'M', 'D'};
constexpr std::uint32_t kVersion = 3;

// memcpy through a char buffer instead of reinterpret_cast on &value: the
// byte layout (and thus the on-disk format) is identical, but no pointer of
// the wrong type is ever formed.
template <typename T>
void write_raw(std::ostream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out.write(bytes, sizeof(T));
}

template <typename T>
T read_raw(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  char bytes[sizeof(T)];
  in.read(bytes, sizeof(T));
  SGNN_CHECK(in.good(), "truncated model file");
  T value;
  std::memcpy(&value, bytes, sizeof(T));
  return value;
}

void write_config(std::ostream& out, const ModelConfig& config) {
  write_raw(out, config.hidden_dim);
  write_raw(out, config.num_layers);
  write_raw(out, config.num_species);
  write_raw(out, config.num_rbf);
  write_raw(out, config.cutoff);
  write_raw(out, static_cast<std::uint8_t>(config.residual ? 1 : 0));
  write_raw(out, config.coord_scale);
  write_raw(out, static_cast<std::int32_t>(config.kernel));
  write_raw(out, static_cast<std::int32_t>(config.force_head));
  write_raw(out, static_cast<std::uint8_t>(config.predict_dipole ? 1 : 0));
  write_raw(out, config.seed);
}

ModelConfig read_config(std::istream& in) {
  ModelConfig config;
  config.hidden_dim = read_raw<std::int64_t>(in);
  config.num_layers = read_raw<std::int64_t>(in);
  config.num_species = read_raw<std::int64_t>(in);
  config.num_rbf = read_raw<std::int64_t>(in);
  config.cutoff = read_raw<double>(in);
  config.residual = read_raw<std::uint8_t>(in) != 0;
  config.coord_scale = read_raw<double>(in);
  const auto kernel = read_raw<std::int32_t>(in);
  SGNN_CHECK(kernel >= 0 && kernel <= 2, "invalid kernel in model file");
  config.kernel = static_cast<MessagePassingKernel>(kernel);
  const auto head = read_raw<std::int32_t>(in);
  SGNN_CHECK(head >= 0 && head <= 1, "invalid force head in model file");
  config.force_head = static_cast<ForceHead>(head);
  config.predict_dipole = read_raw<std::uint8_t>(in) != 0;
  config.seed = read_raw<std::uint64_t>(in);
  SGNN_CHECK(config.hidden_dim > 0 && config.num_layers > 0 &&
                 config.num_species > 0 && config.num_rbf > 0,
             "model file carries an invalid config");
  return config;
}

/// Serializes config + parameters into a buffer (so the CRC covers all of
/// it) and returns the payload.
std::string serialize_payload(const EGNNModel& model) {
  std::ostringstream out;
  write_config(out, model.config());
  const auto params = model.parameters();
  write_raw(out, static_cast<std::uint64_t>(params.size()));
  for (const auto& p : params) {
    write_raw(out, static_cast<std::uint64_t>(p.rank()));
    for (std::size_t axis = 0; axis < p.rank(); ++axis) {
      write_raw(out, p.dim(axis));
    }
    const real* data = p.data();
    // sgnn-lint: allow(aliasing): byte view of a trivially-copyable tensor
    // buffer for bulk stream IO; a per-element memcpy loop would be slower
    // and char-pointer access is always defined.
    out.write(reinterpret_cast<const char*>(data),
              static_cast<std::streamsize>(
                  static_cast<std::size_t>(p.numel()) * sizeof(real)));
  }
  return out.str();
}

void restore_parameters(std::istream& in, EGNNModel& model) {
  auto params = model.parameters();
  const auto count = read_raw<std::uint64_t>(in);
  SGNN_CHECK(count == params.size(),
             "model file has " << count << " parameter tensors, model needs "
                               << params.size());
  // Two-phase restore: stage every tensor's data first, so a truncation or
  // shape mismatch discovered at parameter k cannot leave the model torn
  // (parameters 0..k-1 new, the rest old). Live weights are only touched
  // after the whole payload has validated.
  std::vector<std::vector<real>> staged;
  staged.reserve(params.size());
  for (const auto& p : params) {
    const auto rank = read_raw<std::uint64_t>(in);
    SGNN_CHECK(rank == p.rank(), "parameter rank mismatch");
    for (std::size_t axis = 0; axis < rank; ++axis) {
      const auto dim = read_raw<std::int64_t>(in);
      SGNN_CHECK(dim == p.dim(axis), "parameter shape mismatch on axis "
                                         << axis << ": file has " << dim
                                         << ", model has " << p.dim(axis));
    }
    std::vector<real> data(static_cast<std::size_t>(p.numel()));
    // sgnn-lint: allow(aliasing): byte view of a trivially-copyable buffer
    // for bulk stream IO, mirroring serialize_payload's writer.
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(real)));
    SGNN_CHECK(in.good(), "truncated parameter data");
    staged.push_back(std::move(data));
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    std::memcpy(params[i].data(), staged[i].data(),
                staged[i].size() * sizeof(real));
  }
}

// Header: magic + u32 version + u64 payload_size. Trailer: u32 crc + magic.
constexpr std::uint64_t kHeaderBytes = 4 + 4 + 8;
constexpr std::uint64_t kTrailerBytes = 4 + 4;

std::string read_verified_payload(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SGNN_CHECK(in.is_open(), "cannot open model file '" << path << "'");
  in.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  SGNN_CHECK(file_size >= kHeaderBytes + kTrailerBytes,
             "'" << path << "' too small to be a model file");
  char magic[4];
  in.read(magic, 4);
  SGNN_CHECK(in.good() && std::equal(magic, magic + 4, kMagic),
             "'" << path << "' is not a model file");
  const auto version = read_raw<std::uint32_t>(in);
  SGNN_CHECK(version == kVersion, "'" << path
                                      << "' has unsupported model version "
                                      << version);
  const auto payload_size = read_raw<std::uint64_t>(in);
  // Bound the allocation by what the file can actually hold: a flipped byte
  // in the size field must yield a clean Error, not a multi-GB allocation.
  SGNN_CHECK(payload_size <= file_size - kHeaderBytes - kTrailerBytes,
             "'" << path << "' declares " << payload_size
                 << " payload bytes but holds only "
                 << file_size - kHeaderBytes - kTrailerBytes);
  std::string payload(payload_size, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(payload_size));
  SGNN_CHECK(in.good(), "'" << path << "' truncated payload");
  const auto stored_crc = read_raw<std::uint32_t>(in);
  char tail[4];
  in.read(tail, 4);
  SGNN_CHECK(in.good() && std::equal(tail, tail + 4, kMagic),
             "'" << path << "' missing trailer");
  SGNN_CHECK(crc32(payload.data(), payload.size()) == stored_crc,
             "'" << path << "' CRC mismatch (corrupt model file)");
  return payload;
}

}  // namespace

void save_model(const EGNNModel& model, const std::string& path) {
  const std::string payload = serialize_payload(model);
  std::ofstream out(path, std::ios::binary);
  SGNN_CHECK(out.is_open(), "cannot open '" << path << "' for writing");
  out.write(kMagic, 4);
  write_raw(out, kVersion);
  write_raw(out, static_cast<std::uint64_t>(payload.size()));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  write_raw(out, crc32(payload.data(), payload.size()));
  out.write(kMagic, 4);
  SGNN_CHECK(out.good(), "write failure while saving model");
}

std::unique_ptr<EGNNModel> load_model(const std::string& path) {
  const std::string payload = read_verified_payload(path);
  std::istringstream in(payload);
  const ModelConfig config = read_config(in);
  auto model = std::make_unique<EGNNModel>(config);
  restore_parameters(in, *model);
  return model;
}

void load_parameters_into(EGNNModel& model, const std::string& path) {
  load_model_payload(model, read_verified_payload(path));
}

std::string model_payload_bytes(const EGNNModel& model) {
  return serialize_payload(model);
}

void load_model_payload(EGNNModel& model, const std::string& payload) {
  std::istringstream in(payload);
  const ModelConfig config = read_config(in);
  SGNN_CHECK(config.hidden_dim == model.config().hidden_dim &&
                 config.num_layers == model.config().num_layers &&
                 config.num_species == model.config().num_species &&
                 config.num_rbf == model.config().num_rbf &&
                 config.kernel == model.config().kernel &&
                 config.force_head == model.config().force_head &&
                 config.predict_dipole == model.config().predict_dipole,
             "model payload architecture does not match the target model");
  restore_parameters(in, model);
}

ModelConfig peek_model_config(const std::string& path) {
  const std::string payload = read_verified_payload(path);
  std::istringstream in(payload);
  return read_config(in);
}

}  // namespace sgnn
