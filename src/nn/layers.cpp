#include "sgnn/nn/layers.hpp"

#include "sgnn/util/error.hpp"

namespace sgnn {

Tensor apply_activation(const Tensor& x, Activation activation) {
  switch (activation) {
    case Activation::kNone: return x;
    case Activation::kReLU: return relu(x);
    case Activation::kSiLU: return silu(x);
    case Activation::kTanh: return tanh_op(x);
  }
  throw Error("unknown activation");
}

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
               bool bias) {
  SGNN_CHECK(in_features > 0 && out_features > 0,
             "Linear dimensions must be positive, got " << in_features << "x"
                                                        << out_features);
  weight_ = glorot_uniform(in_features, out_features, rng);
  register_parameter(weight_);
  if (bias) {
    const ScopedMemCategory scope(MemCategory::kWeight);
    bias_ = Tensor::zeros(Shape{1, out_features});
    bias_.set_requires_grad(true);
    register_parameter(bias_);
  }
}

Tensor Linear::forward(const Tensor& x) const {
  SGNN_CHECK(x.rank() == 2, "Linear expects (batch, features), got "
                                << x.shape().to_string());
  Tensor y = matmul(x, weight_);
  if (bias_.defined()) y = y + bias_;
  return y;
}

MLP::MLP(const std::vector<std::int64_t>& dims, Rng& rng,
         Activation hidden_activation, Activation output_activation)
    : hidden_activation_(hidden_activation),
      output_activation_(output_activation) {
  SGNN_CHECK(dims.size() >= 2, "MLP needs at least input and output dims");
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng));
    register_module(*layers_.back());
  }
}

Tensor MLP::forward(const Tensor& x) const {
  Tensor h = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->forward(h);
    const bool last = (i + 1 == layers_.size());
    h = apply_activation(h, last ? output_activation_ : hidden_activation_);
  }
  return h;
}

Embedding::Embedding(std::int64_t num_entries, std::int64_t dim, Rng& rng) {
  SGNN_CHECK(num_entries > 0 && dim > 0, "Embedding dimensions must be positive");
  const ScopedMemCategory scope(MemCategory::kWeight);
  table_ = Tensor::randn(Shape{num_entries, dim}, rng,
                         real{1} / std::sqrt(static_cast<real>(dim)));
  table_.set_requires_grad(true);
  register_parameter(table_);
}

Tensor Embedding::forward(const std::vector<std::int64_t>& ids) const {
  return index_select_rows(table_, ids);
}

Tensor Embedding::forward(const std::vector<int>& ids) const {
  std::vector<std::int64_t> wide(ids.begin(), ids.end());
  return forward(wide);
}

}  // namespace sgnn
