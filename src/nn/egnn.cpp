#include "sgnn/nn/egnn.hpp"

#include <algorithm>
#include <cmath>

#include "sgnn/tensor/checkpoint.hpp"
#include "sgnn/tensor/grad_reducer.hpp"
#include "sgnn/util/error.hpp"

namespace sgnn {

namespace {

/// Parameters of an MLP with dims {d0, d1, ..., dk} and biases.
std::int64_t mlp_params(const std::vector<std::int64_t>& dims) {
  std::int64_t count = 0;
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    count += dims[i] * dims[i + 1] + dims[i + 1];
  }
  return count;
}

}  // namespace

const char* force_head_name(ForceHead head) {
  switch (head) {
    case ForceHead::kEquivariantEdge: return "equivariant edge decomposition";
    case ForceHead::kNodeMLP: return "node MLP (HydraGNN-style)";
  }
  return "?";
}

const char* kernel_name(MessagePassingKernel kernel) {
  switch (kernel) {
    case MessagePassingKernel::kEGNN: return "EGNN";
    case MessagePassingKernel::kSchNet: return "SchNet (CFConv)";
    case MessagePassingKernel::kGAT: return "GAT (edge attention)";
  }
  return "?";
}

std::int64_t ModelConfig::parameter_count() const {
  const std::int64_t h = hidden_dim;
  std::int64_t per_layer = 0;
  switch (kernel) {
    case MessagePassingKernel::kEGNN:
      per_layer += mlp_params({2 * h + num_rbf, h, h});  // phi_e
      per_layer += mlp_params({h, h, 1});                // phi_x
      break;
    case MessagePassingKernel::kSchNet:
      per_layer += mlp_params({h, h});                   // phi_v
      per_layer += mlp_params({num_rbf, h, h});          // phi_w
      break;
    case MessagePassingKernel::kGAT:
      per_layer += mlp_params({2 * h + num_rbf, h, 1});  // phi_e (attention)
      per_layer += mlp_params({2 * h + num_rbf, h, h});  // phi_v
      break;
  }
  per_layer += mlp_params({2 * h, h, h});  // phi_h
  std::int64_t head_params = mlp_params({h, h, 1});  // energy head
  if (predict_dipole) head_params += mlp_params({h, h, 1});
  if (force_head == ForceHead::kEquivariantEdge) {
    per_layer += mlp_params({h, h, 1});  // per-layer force gate phi_f
  } else {
    head_params += mlp_params({h, h, 3});  // node-level force MLP
  }
  return num_species * h                  // embedding
         + num_layers * per_layer         // backbone
         + head_params;
}

ModelConfig ModelConfig::for_parameter_budget(std::int64_t target_params,
                                              std::int64_t num_layers) {
  SGNN_CHECK(target_params > 0 && num_layers > 0,
             "parameter budget and depth must be positive");
  ModelConfig config;
  config.num_layers = num_layers;
  // parameter_count is monotone in hidden_dim: binary search the width.
  std::int64_t lo = 1;
  std::int64_t hi = 1;
  for (;;) {
    config.hidden_dim = hi;
    if (config.parameter_count() >= target_params) break;
    hi *= 2;
    SGNN_CHECK(hi < (std::int64_t{1} << 22), "parameter budget out of range");
  }
  while (lo < hi) {
    const std::int64_t mid = (lo + hi) / 2;
    config.hidden_dim = mid;
    if (config.parameter_count() < target_params) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  // lo is the smallest width meeting the budget; pick the closer of lo-1/lo.
  config.hidden_dim = lo;
  const std::int64_t over = config.parameter_count() - target_params;
  if (lo > 1) {
    ModelConfig below = config;
    below.hidden_dim = lo - 1;
    const std::int64_t under = target_params - below.parameter_count();
    if (under < over) config.hidden_dim = lo - 1;
  }
  return config;
}

EGNNLayer::EGNNLayer(const ModelConfig& config, Rng& rng)
    : hidden_(config.hidden_dim),
      num_rbf_(config.num_rbf),
      cutoff_(static_cast<real>(config.cutoff)),
      residual_(config.residual),
      coord_scale_(static_cast<real>(config.coord_scale)),
      kernel_(config.kernel) {
  SGNN_CHECK(num_rbf_ > 0, "num_rbf must be positive");
  SGNN_CHECK(cutoff_ > 0, "model cutoff must be positive");
  const std::int64_t h = hidden_;
  switch (kernel_) {
    case MessagePassingKernel::kEGNN:
      phi_e_ = std::make_unique<MLP>(
          std::vector<std::int64_t>{2 * h + num_rbf_, h, h}, rng,
          Activation::kSiLU, Activation::kSiLU);
      phi_x_ = std::make_unique<MLP>(std::vector<std::int64_t>{h, h, 1}, rng,
                                     Activation::kSiLU, Activation::kTanh);
      register_module(*phi_e_);
      register_module(*phi_x_);
      break;
    case MessagePassingKernel::kSchNet:
      phi_v_ = std::make_unique<MLP>(std::vector<std::int64_t>{h, h}, rng,
                                     Activation::kSiLU, Activation::kNone);
      phi_w_ = std::make_unique<MLP>(
          std::vector<std::int64_t>{num_rbf_, h, h}, rng, Activation::kSiLU,
          Activation::kNone);
      register_module(*phi_v_);
      register_module(*phi_w_);
      break;
    case MessagePassingKernel::kGAT:
      phi_e_ = std::make_unique<MLP>(
          std::vector<std::int64_t>{2 * h + num_rbf_, h, 1}, rng,
          Activation::kSiLU, Activation::kNone);
      phi_v_ = std::make_unique<MLP>(
          std::vector<std::int64_t>{2 * h + num_rbf_, h, h}, rng,
          Activation::kSiLU, Activation::kSiLU);
      register_module(*phi_e_);
      register_module(*phi_v_);
      break;
  }
  phi_h_ = std::make_unique<MLP>(std::vector<std::int64_t>{2 * h, h, h}, rng,
                                 Activation::kSiLU, Activation::kNone);
  register_module(*phi_h_);
  if (config.force_head == ForceHead::kEquivariantEdge) {
    phi_f_ = std::make_unique<MLP>(std::vector<std::int64_t>{h, h, 1}, rng,
                                   Activation::kSiLU, Activation::kNone);
    register_module(*phi_f_);
  }
}

Tensor EGNNLayer::forward(const Tensor& state,
                          const EdgeContext& context) const {
  const std::int64_t n = context.num_nodes;
  SGNN_CHECK(state.rank() == 2 && state.dim(0) == n &&
                 state.dim(1) == hidden_ + 6,
             "EGNN layer state must be (" << n << ", " << hidden_ + 6
                                          << "), got "
                                          << state.shape().to_string());
  const Tensor h = narrow(state, 1, 0, hidden_);
  const Tensor x = narrow(state, 1, hidden_, 3);
  const Tensor force_acc = narrow(state, 1, hidden_ + 3, 3);

  // Relative geometry per directed edge (dst receives from src). Under
  // graph parallelism the src side may live on another rank: the hook
  // posts the boundary exchange for x AND h here, delivers x, and lets h
  // overlap the distance/RBF compute below (collected at h_src).
  const Tensor x_dst = index_select_rows(x, *context.edge_dst);
  const Tensor x_src = context.halo != nullptr
                           ? context.halo->select_src_x(x, h)
                           : index_select_rows(x, *context.edge_src);
  const Tensor rel = (x_dst - x_src) + context.edge_shift;  // x_i - x_j + S
  const Tensor dist_sq = row_norm_squared(rel);             // (E, 1)
  const Tensor dist = sqrt_op(dist_sq + real{1e-12});       // (E, 1)

  // Gaussian radial basis over [0, cutoff]: the invariant edge features.
  std::vector<Tensor> rbf;
  rbf.reserve(static_cast<std::size_t>(num_rbf_));
  const real gamma =
      static_cast<real>(num_rbf_ * num_rbf_) / (cutoff_ * cutoff_);
  for (std::int64_t k = 0; k < num_rbf_; ++k) {
    const real mu = cutoff_ * static_cast<real>(k) /
                    static_cast<real>(num_rbf_ - 1 > 0 ? num_rbf_ - 1 : 1);
    rbf.push_back(exp_op(square(dist - mu) * (-gamma)));
  }

  // Per-edge messages, kernel-dependent. All kernels consume only
  // invariant pair features, so the model's symmetry properties are
  // kernel-independent.
  const Tensor h_dst = index_select_rows(h, *context.edge_dst);
  const Tensor h_src = context.halo != nullptr
                           ? context.halo->select_src_h(h)
                           : index_select_rows(h, *context.edge_src);
  const Tensor rbf_features = concat(rbf, 1);  // (E, K)

  Tensor message;     // (E, hidden)
  Tensor aggregated;  // (N, hidden)
  Tensor x_new = x;
  switch (kernel_) {
    case MessagePassingKernel::kEGNN: {
      message = phi_e_->forward(concat({h_dst, h_src, rbf_features}, 1));
      aggregated = scatter_add_rows(message, *context.edge_dst, n) *
                   context.inv_degree;
      // Equivariant coordinate update (EGNN's signature move).
      const Tensor coord_gate = phi_x_->forward(message);  // (E, 1)
      const Tensor dx =
          scatter_add_rows(rel * coord_gate, *context.edge_dst, n) *
          context.inv_degree * coord_scale_;
      x_new = x + dx;
      break;
    }
    case MessagePassingKernel::kSchNet: {
      // Continuous-filter convolution: value of the sender modulated by a
      // learned function of the distance.
      message = phi_v_->forward(h_src) * phi_w_->forward(rbf_features);
      aggregated = scatter_add_rows(message, *context.edge_dst, n) *
                   context.inv_degree;
      break;
    }
    case MessagePassingKernel::kGAT: {
      const Tensor pair = concat({h_dst, h_src, rbf_features}, 1);
      // Bounded logits (cf. GraphTransformer) -> per-receiver softmax.
      const Tensor logits = tanh_op(phi_e_->forward(pair)) * real{5};
      const Tensor weights = exp_op(logits);
      const Tensor denom = scatter_add_rows(weights, *context.edge_dst, n);
      const Tensor attention =
          weights / index_select_rows(denom, *context.edge_dst);
      message = phi_v_->forward(pair) * attention;
      // Attention already normalizes; plain sum aggregation.
      aggregated = scatter_add_rows(message, *context.edge_dst, n);
      break;
    }
  }

  // Node update (residual as in Satorras et al.).
  Tensor h_new = phi_h_->forward(concat({h, aggregated}, 1));
  if (residual_) h_new = h + h_new;

  // Equivariant per-edge force decomposition: invariant gate phi_F(m_ij)
  // along the unit bond vector, summed over neighbors (pairwise force
  // fields have exactly this form, so magnitudes are unconstrained). With
  // the node-MLP head the accumulator simply passes through.
  Tensor force_new = force_acc;
  if (phi_f_) {
    const Tensor unit = rel / dist;
    const Tensor edge_force = unit * phi_f_->forward(message);
    force_new = force_acc + scatter_add_rows(edge_force, *context.edge_dst, n);
  }

  return concat({h_new, x_new, force_new}, 1);
}

EGNNModel::EGNNModel(const ModelConfig& config) : config_(config) {
  SGNN_CHECK(config.hidden_dim > 0, "hidden_dim must be positive");
  SGNN_CHECK(config.num_layers > 0, "num_layers must be positive");
  Rng rng(config.seed);
  embedding_ = std::make_unique<Embedding>(config.num_species,
                                           config.hidden_dim, rng);
  register_module(*embedding_);
  for (std::int64_t i = 0; i < config.num_layers; ++i) {
    layers_.push_back(std::make_unique<EGNNLayer>(config, rng));
    register_module(*layers_.back());
  }
  energy_head_ = std::make_unique<MLP>(
      std::vector<std::int64_t>{config.hidden_dim, config.hidden_dim, 1}, rng,
      Activation::kSiLU, Activation::kNone);
  register_module(*energy_head_);
  if (config.force_head == ForceHead::kNodeMLP) {
    force_head_ = std::make_unique<MLP>(
        std::vector<std::int64_t>{config.hidden_dim, config.hidden_dim, 3},
        rng, Activation::kSiLU, Activation::kNone);
    register_module(*force_head_);
  }
  if (config.predict_dipole) {
    dipole_head_ = std::make_unique<MLP>(
        std::vector<std::int64_t>{config.hidden_dim, config.hidden_dim, 1},
        rng, Activation::kSiLU, Activation::kNone);
    register_module(*dipole_head_);
  }
}

EGNNModel::Output EGNNModel::forward(const GraphBatch& batch,
                                     const ForwardOptions& options) const {
  if (options.graph_parallel != nullptr) {
    return forward_graph_parallel(batch, options);
  }
  SGNN_CHECK(batch.num_nodes > 0, "forward on empty batch");
  for (const auto z : batch.species) {
    SGNN_CHECK(z >= 0 && z < config_.num_species,
               "species " << z << " outside model vocabulary ["
                          << config_.num_species << ")");
  }

  // Edge context shared by all layers (constant w.r.t. autograd).
  EGNNLayer::EdgeContext context;
  context.edge_src = &batch.edge_src;
  context.edge_dst = &batch.edge_dst;
  context.edge_shift = batch.edge_shift;
  context.num_nodes = batch.num_nodes;
  {
    const ScopedMemCategory scope(MemCategory::kWorkspace);
    Tensor inv_degree = Tensor::zeros(Shape{batch.num_nodes, 1});
    real* d = inv_degree.data();
    for (const auto dst : batch.edge_dst) d[dst] += 1;
    for (std::int64_t i = 0; i < batch.num_nodes; ++i) {
      d[i] = real{1} / std::max(d[i], real{1});
    }
    context.inv_degree = inv_degree;
  }

  // Initial state: [species embedding | positions | zero force accumulator].
  const Tensor h0 = embedding_->forward(batch.species);
  const Tensor state0 =
      concat({h0, batch.positions, Tensor::zeros(Shape{batch.num_nodes, 3})},
             1);

  Tensor state = state0;
  for (const auto& layer : layers_) {
    if (options.activation_checkpointing) {
      const EGNNLayer* raw = layer.get();
      const EGNNLayer::EdgeContext ctx = context;  // copied into the closure
      state = checkpoint(
          [raw, ctx](const std::vector<Tensor>& in) {
            return raw->forward(in[0], ctx);
          },
          {state});
    } else {
      state = layer->forward(state, context);
    }
  }

  const Tensor h_final = narrow(state, 1, 0, config_.hidden_dim);
  const Tensor forces =
      config_.force_head == ForceHead::kNodeMLP
          ? force_head_->forward(h_final)
          : narrow(state, 1, config_.hidden_dim + 3, 3);

  // Over-smoothing metric: variance of node features across nodes.
  {
    const autograd::NoGradGuard no_grad;
    const Tensor centered = h_final - mean(h_final, 0, true);
    last_feature_spread_ = mean(square(centered)).item();
  }

  // Graph-level energy: per-node contributions summed per graph (extensive
  // quantity, HydraGNN's graph-level head).
  const Tensor node_energy = energy_head_->forward(h_final);
  Output out;
  out.energy =
      scatter_add_rows(node_energy, batch.node_to_graph, batch.num_graphs);
  out.forces = forces;
  if (dipole_head_) {
    // Dipole magnitude is non-negative: softplus keeps the head in range.
    const Tensor node_dipole = softplus(dipole_head_->forward(h_final));
    out.dipole = scatter_add_rows(node_dipole, batch.node_to_graph,
                                  batch.num_graphs);
  }
  return out;
}

EGNNModel::Output EGNNModel::forward_graph_parallel(
    const GraphBatch& batch, const ForwardOptions& options) const {
  SGNN_CHECK(batch.num_nodes > 0, "forward on empty batch");
  GraphParallelHook* const hook = options.graph_parallel;
  const std::int64_t owned = hook->num_owned();
  // Each rank vets its own shard; the owned ranges cover the batch, so the
  // union of these checks equals the unpartitioned vocabulary check.
  for (const auto z : hook->owned_species()) {
    SGNN_CHECK(z >= 0 && z < config_.num_species,
               "species " << z << " outside model vocabulary ["
                          << config_.num_species << ")");
  }
  const EGNNLayer::EdgeContext& context = hook->edge_context();
  SGNN_CHECK(context.halo == hook && context.num_nodes == owned,
             "graph-parallel hook edge context is inconsistent");

  // Sharded backbone. The reducer stays armed across it so every leaf
  // parameter gradient recorded here (embedding scatter, weight and bias
  // folds inside the MLPs) is continued rank to rank instead of computed
  // from local rows only — that is what keeps parameter gradients
  // replicated AND bit-identical to the single-rank fold.
  Tensor h_final;
  Tensor force_acc;
  ShardedGradReducer* const reducer = hook->reducer();
  {
    const ScopedShardedGradReducer armed(reducer);
    const Tensor h0 = embedding_->forward(hook->owned_species());
    Tensor state =
        concat({h0, hook->owned_positions(), Tensor::zeros(Shape{owned, 3})},
               1);
    for (const auto& layer : layers_) {
      if (options.activation_checkpointing) {
        const EGNNLayer* raw = layer.get();
        const EGNNLayer::EdgeContext ctx = context;  // copied into closure
        // Recompute-on-backward runs outside the forward's arming scope,
        // so the closure re-arms the reducer itself: the ops re-recorded
        // during recompute must capture it exactly like the originals.
        state = checkpoint(
            [raw, ctx, reducer](const std::vector<Tensor>& in) {
              const ScopedShardedGradReducer rearmed(reducer);
              return raw->forward(in[0], ctx);
            },
            {state});
      } else {
        state = layer->forward(state, context);
      }
    }
    h_final = narrow(state, 1, 0, config_.hidden_dim);
    force_acc = narrow(state, 1, config_.hidden_dim + 3, 3);
  }

  // Replicated readout: gather the final node features (and the force
  // accumulator) to every rank, then run the heads on FULL tensors with
  // the reducer disarmed — head activations are replicated, so their
  // parameter gradients are already the single-rank fold.
  const Tensor h_full = hook->all_gather_rows(h_final);
  const Tensor forces = config_.force_head == ForceHead::kNodeMLP
                            ? force_head_->forward(h_full)
                            : hook->all_gather_rows(force_acc);

  {
    const autograd::NoGradGuard no_grad;
    const Tensor centered = h_full - mean(h_full, 0, true);
    last_feature_spread_ = mean(square(centered)).item();
  }

  const Tensor node_energy = energy_head_->forward(h_full);
  Output out;
  out.energy =
      scatter_add_rows(node_energy, batch.node_to_graph, batch.num_graphs);
  out.forces = forces;
  if (dipole_head_) {
    const Tensor node_dipole = softplus(dipole_head_->forward(h_full));
    out.dipole = scatter_add_rows(node_dipole, batch.node_to_graph,
                                  batch.num_graphs);
  }
  return out;
}

}  // namespace sgnn
