#include "sgnn/nn/transformer.hpp"

#include <cmath>

#include "sgnn/tensor/ops.hpp"
#include "sgnn/util/error.hpp"

namespace sgnn {

namespace {

std::int64_t mlp_params(const std::vector<std::int64_t>& dims) {
  std::int64_t count = 0;
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    count += dims[i] * dims[i + 1] + dims[i + 1];
  }
  return count;
}

}  // namespace

std::int64_t TransformerConfig::parameter_count() const {
  const std::int64_t h = hidden_dim;
  // Pair features: h_i, h_j, RBF(d), and d/span (the linear tail keeps far
  // pairs distinguishable after the RBFs have decayed to zero).
  const std::int64_t pair_in = 2 * h + num_rbf + 1;
  std::int64_t per_layer = 0;
  per_layer += mlp_params({pair_in, h, 1});  // phi_a
  per_layer += mlp_params({pair_in, h, h});  // phi_v
  per_layer += mlp_params({2 * h, h, h});    // phi_h
  per_layer += mlp_params({pair_in, h, 1});  // phi_f
  return num_species * h + num_layers * per_layer + mlp_params({h, h, 1});
}

GraphTransformer::GraphTransformer(const TransformerConfig& config)
    : config_(config) {
  SGNN_CHECK(config.hidden_dim > 0 && config.num_layers > 0 &&
                 config.num_rbf > 0 && config.rbf_span > 0,
             "invalid transformer config");
  Rng rng(config.seed);
  embedding_ = std::make_unique<Embedding>(config.num_species,
                                           config.hidden_dim, rng);
  register_module(*embedding_);
  const std::int64_t h = config.hidden_dim;
  const std::int64_t pair_in = 2 * h + config.num_rbf + 1;
  for (std::int64_t i = 0; i < config.num_layers; ++i) {
    Layer layer;
    layer.phi_a = std::make_unique<MLP>(std::vector<std::int64_t>{pair_in, h, 1},
                                        rng, Activation::kSiLU,
                                        Activation::kNone);
    layer.phi_v = std::make_unique<MLP>(std::vector<std::int64_t>{pair_in, h, h},
                                        rng, Activation::kSiLU,
                                        Activation::kSiLU);
    layer.phi_h = std::make_unique<MLP>(std::vector<std::int64_t>{2 * h, h, h},
                                        rng, Activation::kSiLU,
                                        Activation::kNone);
    layer.phi_f = std::make_unique<MLP>(std::vector<std::int64_t>{pair_in, h, 1},
                                        rng, Activation::kSiLU,
                                        Activation::kNone);
    register_module(*layer.phi_a);
    register_module(*layer.phi_v);
    register_module(*layer.phi_h);
    register_module(*layer.phi_f);
    layers_.push_back(std::move(layer));
  }
  energy_head_ = std::make_unique<MLP>(
      std::vector<std::int64_t>{h, h, 1}, rng, Activation::kSiLU,
      Activation::kNone);
  register_module(*energy_head_);
}

GraphTransformer::Output GraphTransformer::forward(
    const GraphBatch& batch) const {
  SGNN_CHECK(batch.num_nodes > 0, "forward on empty batch");
  const std::int64_t n = batch.num_nodes;

  // All ordered intra-graph pairs (i != j). Attention is restricted to a
  // graph — atoms of different molecules in a batch never interact.
  std::vector<std::int64_t> pair_src;
  std::vector<std::int64_t> pair_dst;
  {
    // Group nodes by graph (nodes are laid out graph-contiguously).
    std::int64_t begin = 0;
    while (begin < n) {
      std::int64_t end = begin;
      while (end < n && batch.node_to_graph[static_cast<std::size_t>(end)] ==
                            batch.node_to_graph[static_cast<std::size_t>(begin)]) {
        ++end;
      }
      for (std::int64_t i = begin; i < end; ++i) {
        for (std::int64_t j = begin; j < end; ++j) {
          if (i == j) continue;
          pair_dst.push_back(i);
          pair_src.push_back(j);
        }
      }
      begin = end;
    }
  }
  SGNN_CHECK(!pair_src.empty(),
             "transformer requires at least one multi-atom graph");

  // Pairwise geometry (constant w.r.t. autograd).
  const Tensor x_dst = index_select_rows(batch.positions, pair_dst);
  const Tensor x_src = index_select_rows(batch.positions, pair_src);
  const Tensor rel = x_dst - x_src;
  const Tensor dist = sqrt_op(row_norm_squared(rel) + real{1e-12});
  const Tensor unit = rel / dist;

  std::vector<Tensor> rbf;
  const auto span = static_cast<real>(config_.rbf_span);
  const real gamma = static_cast<real>(config_.num_rbf * config_.num_rbf) /
                     (span * span);
  for (std::int64_t k = 0; k < config_.num_rbf; ++k) {
    const real mu =
        span * static_cast<real>(k) /
        static_cast<real>(config_.num_rbf > 1 ? config_.num_rbf - 1 : 1);
    rbf.push_back(exp_op(square(dist - mu) * (-gamma)));
  }
  rbf.push_back(dist * (real{1} / span));  // linear long-range tail
  const Tensor rbf_features = concat(rbf, 1);  // (P, K + 1)

  Tensor h = embedding_->forward(batch.species);
  Tensor forces = Tensor::zeros(Shape{n, 3});

  bool first_layer = true;
  for (const auto& layer : layers_) {
    const Tensor h_dst = index_select_rows(h, pair_dst);
    const Tensor h_src = index_select_rows(h, pair_src);
    const Tensor pair_features = concat({h_dst, h_src, rbf_features}, 1);

    // Bounded logits keep exp() safe without a segment-max pass.
    const Tensor logits =
        tanh_op(layer.phi_a->forward(pair_features)) * real{5};
    const Tensor weights = exp_op(logits);                       // (P, 1)
    const Tensor denom = scatter_add_rows(weights, pair_dst, n);  // (N, 1)
    const Tensor attention =
        weights / index_select_rows(denom, pair_dst);            // (P, 1)

    if (first_layer) {
      const autograd::NoGradGuard no_grad;
      last_attention_ = attention.to_vector();
      last_pair_dst_ = pair_dst;
      first_layer = false;
    }

    const Tensor values = layer.phi_v->forward(pair_features);  // (P, h)
    const Tensor aggregated =
        scatter_add_rows(values * attention, pair_dst, n);      // (N, h)
    h = h + layer.phi_h->forward(concat({h, aggregated}, 1));

    const Tensor force_gate = layer.phi_f->forward(pair_features);  // (P, 1)
    forces =
        forces + scatter_add_rows(unit * (attention * force_gate), pair_dst,
                                  n);
  }

  const Tensor node_energy = energy_head_->forward(h);
  Output out;
  out.energy =
      scatter_add_rows(node_energy, batch.node_to_graph, batch.num_graphs);
  out.forces = forces;
  return out;
}

}  // namespace sgnn
