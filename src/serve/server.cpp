#include "sgnn/serve/server.hpp"

#include <chrono>
#include <utility>

#include "sgnn/graph/batch.hpp"
#include "sgnn/graph/graph.hpp"
#include "sgnn/nn/model_io.hpp"
#include "sgnn/obs/metrics.hpp"
#include "sgnn/obs/prof.hpp"
#include "sgnn/obs/trace.hpp"
#include "sgnn/tensor/ops.hpp"

namespace sgnn::serve {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point begin) {
  return std::chrono::duration<double>(Clock::now() - begin).count();
}

struct ServeMetrics {
  obs::Counter& submitted;
  obs::Counter& completed;
  obs::Counter& rejected;
  obs::Counter& failed;
  obs::Counter& cache_hits;
  obs::Counter& cache_misses;
  obs::Counter& batches;
  obs::Counter& batch_graphs;
  obs::Counter& weight_swaps;
  obs::Gauge& queue_depth;
  obs::Histogram& latency;

  static ServeMetrics& instance() {
    auto& registry = obs::MetricsRegistry::instance();
    static ServeMetrics metrics{
        registry.counter("serve.requests.submitted"),
        registry.counter("serve.requests.completed"),
        registry.counter("serve.requests.rejected"),
        registry.counter("serve.requests.failed"),
        registry.counter("serve.cache.hits"),
        registry.counter("serve.cache.misses"),
        registry.counter("serve.batches"),
        registry.counter("serve.batch.graphs"),
        registry.counter("serve.weights.swaps"),
        registry.gauge("serve.queue.depth"),
        registry.histogram("serve.latency_seconds"),
    };
    return metrics;
  }
};

}  // namespace

void Server::finish(Pending& pending, InferenceResult result) {
  const obs::prof::ProfRegion prof("serve.finish");
  ServeMetrics& metrics = ServeMetrics::instance();
  metrics.latency.observe(seconds_since(pending.enqueued));
  metrics.completed.add();
  if (obs::tracing_enabled()) {
    obs::TraceRecorder& recorder = obs::TraceRecorder::instance();
    obs::TraceEvent event;
    event.name = "serve.request";
    event.category = "serve";
    event.begin_us = pending.trace_begin_us;
    event.end_us = recorder.now_us();
    event.tid = obs::TraceRecorder::current_tid();
    event.rank = obs::TraceRecorder::current_rank();
    event.args.emplace_back("atoms",
                            std::to_string(pending.request.structure.num_atoms()));
    event.args.emplace_back("forces",
                            pending.request.compute_forces ? "1" : "0");
    event.args.emplace_back("cache_hit", result.cache_hit ? "1" : "0");
    recorder.record(std::move(event));
  }
  pending.promise.set_value(std::move(result));
}

Server::Server(const ModelConfig& config, std::string model_payload,
               const ServerOptions& options)
    : config_(config), options_(options), cache_(options.cache_capacity) {
  const obs::prof::ProfRegion prof("serve.start");
  SGNN_CHECK(options_.num_workers > 0, "server needs at least one worker");
  SGNN_CHECK(options_.max_batch_graphs > 0 && options_.max_batch_atoms > 0,
             "batch budgets must be positive");
  // Validate the payload up front: constructing the server with torn or
  // mismatched weights must fail loudly, not at the first request.
  EGNNModel probe(config_);
  load_model_payload(probe, model_payload);
  payload_ = std::make_shared<const std::string>(std::move(model_payload));
  workers_.reserve(static_cast<std::size_t>(options_.num_workers));
  for (int w = 0; w < options_.num_workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

Server::~Server() { stop(); }

std::future<InferenceResult> Server::submit(InferenceRequest request) {
  const obs::prof::ProfRegion prof("serve.submit");
  ServeMetrics& metrics = ServeMetrics::instance();
  metrics.submitted.add();

  Pending pending;
  pending.enqueued = Clock::now();
  pending.trace_begin_us =
      obs::tracing_enabled() ? obs::TraceRecorder::instance().now_us() : 0;
  // canonicalize() validates the structure; additionally pin the species
  // range here so a bad request fails at admission, not inside a worker's
  // embedding lookup mid-batch.
  for (const int species : request.structure.species) {
    SGNN_CHECK(species >= 0 && species < config_.num_species,
               "request species " << species
                                  << " outside the model's vocabulary [0, "
                                  << config_.num_species << ")");
  }
  pending.key = canonicalize(request.structure);
  pending.request = std::move(request);

  // Degenerate but well-formed request: no atoms means zero energy and no
  // forces; answer directly instead of batching an empty graph.
  if (pending.request.structure.num_atoms() == 0) {
    InferenceResult result;
    result.weights_version = weights_version();
    std::future<InferenceResult> future = pending.promise.get_future();
    finish(pending, std::move(result));
    return future;
  }

  CachedResult cached;
  if (cache_.lookup(pending.key, pending.request.compute_forces, cached)) {
    metrics.cache_hits.add();
    InferenceResult result;
    result.energy = cached.energy;
    result.cache_hit = true;
    result.weights_version = weights_version();
    if (pending.request.compute_forces) {
      // Cached forces are in canonical atom order; map them back into this
      // request's order (exact for permuted/translated duplicates).
      result.forces.resize(pending.key.perm.size());
      for (std::size_t i = 0; i < pending.key.perm.size(); ++i) {
        result.forces[i] =
            cached.forces[static_cast<std::size_t>(pending.key.perm[i])];
      }
    }
    std::future<InferenceResult> future = pending.promise.get_future();
    finish(pending, std::move(result));
    return future;
  }
  metrics.cache_misses.add();

  std::future<InferenceResult> future = pending.promise.get_future();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      metrics.rejected.add();
      throw RejectedError(RejectReason::kShuttingDown,
                          "serve: server is shutting down");
    }
    if (queue_.size() >= options_.max_queue) {
      metrics.rejected.add();
      throw RejectedError(RejectReason::kQueueFull,
                          "serve: request queue full (" +
                              std::to_string(options_.max_queue) +
                              " pending); shed");
    }
    queue_.push_back(std::move(pending));
    metrics.queue_depth.set(static_cast<double>(queue_.size()));
  }
  cv_.notify_one();
  return future;
}

void Server::swap_weights(std::string model_payload) {
  const obs::prof::ProfRegion prof("serve.swap_weights");
  // Full validation against a scratch replica BEFORE publishing: a corrupt
  // or mismatched payload throws here and the served weights are untouched.
  EGNNModel probe(config_);
  load_model_payload(probe, model_payload);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    payload_ = std::make_shared<const std::string>(std::move(model_payload));
    version_.fetch_add(1, std::memory_order_acq_rel);
  }
  ServeMetrics::instance().weight_swaps.add();
}

void Server::stop() {
  const obs::prof::ProfRegion prof("serve.stop");
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void Server::worker_loop(int worker_id) {
  obs::ScopedTraceRank rank(worker_id);
  // The replica: an immutable model copy owned by this worker alone, so a
  // concurrent swap can never expose another thread to half-written
  // weights. Parameters are frozen once — force requests differentiate
  // w.r.t. positions only, and backward must not accumulate into weights.
  EGNNModel model(config_);
  for (auto& parameter : model.parameters()) {
    parameter.set_requires_grad(false);
  }
  std::uint64_t loaded_version = 0;

  while (true) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) break;  // stopping_ and fully drained
      // Dynamic batching: take pending requests up to the graph budget and
      // the atom budget (the first request always fits, so an oversized
      // structure still gets served — alone).
      std::int64_t atoms = 0;
      while (!queue_.empty() &&
             static_cast<std::int64_t>(batch.size()) <
                 options_.max_batch_graphs) {
        const std::int64_t n = queue_.front().request.structure.num_atoms();
        if (!batch.empty() && atoms + n > options_.max_batch_atoms) break;
        atoms += n;
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      ServeMetrics::instance().queue_depth.set(
          static_cast<double>(queue_.size()));
    }
    if (batch.empty()) continue;

    // Weight-version check at the batch boundary: swaps are zero-downtime
    // because a replica reloads only between batches, never mid-request.
    std::shared_ptr<const std::string> payload;
    std::uint64_t version = 0;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      version = version_.load(std::memory_order_acquire);
      payload = payload_;
    }
    if (version != loaded_version) {
      const obs::prof::ProfRegion reload("serve.weights_reload");
      load_model_payload(model, *payload);
      loaded_version = version;
    }
    process_batch(batch, model, loaded_version);
  }
}

void Server::process_batch(std::vector<Pending>& batch, EGNNModel& model,
                           std::uint64_t model_version) {
  const obs::prof::ProfRegion prof("serve.batch");
  const obs::TraceSpan span("serve.batch", "serve");
  ServeMetrics& metrics = ServeMetrics::instance();
  metrics.batches.add();
  metrics.batch_graphs.add(static_cast<std::int64_t>(batch.size()));

  // Split by gradient need so the energy-only sub-batch runs entirely under
  // NoGradGuard (zero tape nodes), while the force sub-batch records the
  // position-gradient graph once for all its requests.
  std::vector<Pending*> energy_only;
  std::vector<Pending*> with_forces;
  for (auto& pending : batch) {
    (pending.request.compute_forces ? with_forces : energy_only)
        .push_back(&pending);
  }
  run_group(energy_only, model, model_version, /*want_forces=*/false);
  run_group(with_forces, model, model_version, /*want_forces=*/true);
}

void Server::run_group(std::vector<Pending*>& group, EGNNModel& model,
                       std::uint64_t model_version, bool want_forces) {
  const obs::prof::ProfRegion prof(want_forces ? "serve.forward_backward"
                                               : "serve.forward");
  if (group.empty()) return;
  try {
    std::vector<MolecularGraph> graphs;
    graphs.reserve(group.size());
    {
      const obs::prof::ProfRegion build("serve.graph_build");
      for (const Pending* pending : group) {
        graphs.push_back(MolecularGraph::from_structure(
            pending->request.structure, config_.cutoff));
      }
    }
    GraphBatch packed = GraphBatch::from_graphs(graphs);

    Tensor energies;
    Tensor position_grad;
    if (want_forces) {
      // Position-gradient forces with frozen parameters: the tape follows
      // positions only, and backward accumulates nothing into weights.
      packed.positions.set_requires_grad(true);
      const EGNNModel::Output out = model.forward(packed);
      energies = out.energy;
      Tensor total = sum(out.energy);
      total.backward();
      position_grad = packed.positions.grad();
      SGNN_CHECK(position_grad.defined(),
                 "force inference produced no position gradient");
    } else {
      const autograd::NoGradGuard guard;
      const EGNNModel::Output out = model.forward(packed);
      energies = out.energy;
    }

    const real* energy = energies.data();
    const real* grad = want_forces ? position_grad.data() : nullptr;
    std::int64_t node_offset = 0;
    for (std::size_t gi = 0; gi < group.size(); ++gi) {
      Pending& pending = *group[gi];
      const std::int64_t n = graphs[gi].num_nodes();
      InferenceResult result;
      result.energy = energy[gi];
      result.weights_version = model_version;
      CachedResult to_cache;
      to_cache.energy = result.energy;
      if (want_forces) {
        result.forces.resize(static_cast<std::size_t>(n));
        to_cache.has_forces = true;
        to_cache.forces.resize(static_cast<std::size_t>(n));
        for (std::int64_t a = 0; a < n; ++a) {
          const std::size_t row = static_cast<std::size_t>(node_offset + a);
          // Conservative forces: F = -dE/dx.
          const Vec3 force{-grad[row * 3 + 0], -grad[row * 3 + 1],
                           -grad[row * 3 + 2]};
          result.forces[static_cast<std::size_t>(a)] = force;
          // The cache stores forces in canonical atom order so permuted
          // duplicates can be answered from it.
          to_cache.forces[static_cast<std::size_t>(
              pending.key.perm[static_cast<std::size_t>(a)])] = force;
        }
      }
      cache_.insert(pending.key, std::move(to_cache));
      finish(pending, std::move(result));
      node_offset += n;
    }
  } catch (...) {
    ServeMetrics::instance().failed.add(
        static_cast<std::int64_t>(group.size()));
    for (Pending* pending : group) {
      pending->promise.set_exception(std::current_exception());
    }
  }
}

}  // namespace sgnn::serve
