#include "sgnn/serve/cache.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "sgnn/obs/prof.hpp"
#include "sgnn/util/error.hpp"

namespace sgnn::serve {

namespace {

/// FNV-1a 64-bit over a byte string — cheap, seedless, and good enough for
/// a collision-checked cache (a collision costs one recompute, never a
/// wrong answer).
std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

void append_i64(std::string& out, std::int64_t value) {
  char raw[sizeof(value)];
  std::memcpy(raw, &value, sizeof(value));
  out.append(raw, sizeof(value));
}

/// Quantized coordinate of one atom plus its species and original index.
struct CanonicalAtom {
  int species = 0;
  std::int64_t qx = 0;
  std::int64_t qy = 0;
  std::int64_t qz = 0;
  std::int64_t original = 0;

  bool operator<(const CanonicalAtom& other) const {
    if (species != other.species) return species < other.species;
    if (qx != other.qx) return qx < other.qx;
    if (qy != other.qy) return qy < other.qy;
    return qz != other.qz ? qz < other.qz : original < other.original;
  }
};

std::int64_t quantize(double x) {
  return static_cast<std::int64_t>(std::llround(x / kCanonicalQuantum));
}

}  // namespace

CanonicalKey canonicalize(const AtomicStructure& structure) {
  const obs::prof::ProfRegion prof("serve.canonicalize");
  structure.validate();
  const std::size_t n = structure.species.size();

  // Translation invariance: center on the centroid (open systems only —
  // a translated periodic replica may wrap to different raw coordinates,
  // so periodic structures are keyed as-is and only exact replicas dedup).
  Vec3 shift{0.0, 0.0, 0.0};
  if (!structure.periodic && n > 0) {
    for (const Vec3& p : structure.positions) shift = shift + p;
    shift = shift * (1.0 / static_cast<double>(n));
  }

  std::vector<CanonicalAtom> atoms(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 p = structure.positions[i] - shift;
    atoms[i].species = structure.species[i];
    atoms[i].qx = quantize(p.x);
    atoms[i].qy = quantize(p.y);
    atoms[i].qz = quantize(p.z);
    atoms[i].original = static_cast<std::int64_t>(i);
  }
  // Permutation invariance: a canonical atom order independent of the
  // request's order. Ties (identical species + quantized position) are
  // broken by original index, which is the only remaining distinction.
  std::sort(atoms.begin(), atoms.end());

  CanonicalKey key;
  key.bytes.reserve(16 + 40 * n);
  append_i64(key.bytes, static_cast<std::int64_t>(n));
  append_i64(key.bytes, structure.periodic ? 1 : 0);
  append_i64(key.bytes, quantize(structure.cell.x));
  append_i64(key.bytes, quantize(structure.cell.y));
  append_i64(key.bytes, quantize(structure.cell.z));
  key.perm.resize(n);
  for (std::size_t slot = 0; slot < n; ++slot) {
    const CanonicalAtom& atom = atoms[slot];
    append_i64(key.bytes, atom.species);
    append_i64(key.bytes, atom.qx);
    append_i64(key.bytes, atom.qy);
    append_i64(key.bytes, atom.qz);
    key.perm[static_cast<std::size_t>(atom.original)] =
        static_cast<std::int64_t>(slot);
  }
  key.hash = fnv1a(key.bytes);
  return key;
}

StructureCache::StructureCache(std::size_t capacity) : capacity_(capacity) {}

bool StructureCache::lookup(const CanonicalKey& key, bool need_forces,
                            CachedResult& out) {
  const obs::prof::ProfRegion prof("serve.cache_lookup");
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key.hash);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  if (it->second->bytes != key.bytes) {
    // 64-bit hash collision: fall through to recompute rather than serve
    // another structure's numbers.
    ++stats_.misses;
    ++stats_.collisions;
    return false;
  }
  if (need_forces && !it->second->result.has_forces) {
    ++stats_.misses;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  out = it->second->result;
  ++stats_.hits;
  return true;
}

void StructureCache::insert(const CanonicalKey& key, CachedResult result) {
  if (capacity_ == 0) return;
  SGNN_CHECK(!result.has_forces || result.forces.size() == key.perm.size(),
             "cached forces must cover every atom of the keyed structure");
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key.hash);
  if (it != index_.end()) {
    // Same hash: refresh the slot (newest wins — on a true collision the
    // colliding structures will simply keep recomputing).
    it->second->bytes = key.bytes;
    it->second->result = std::move(result);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key.hash, key.bytes, std::move(result)});
  index_[key.hash] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().hash);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

std::size_t StructureCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

StructureCache::Stats StructureCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace sgnn::serve
