#include "sgnn/tensor/grad_reducer.hpp"

namespace sgnn {

namespace {

// One slot per thread: each simulated rank runs on its own worker thread,
// so arming is naturally per-rank and data-race free under TSan.
thread_local ShardedGradReducer* g_current_reducer = nullptr;

}  // namespace

ShardedGradReducer* current_sharded_grad_reducer() {
  return g_current_reducer;
}

ScopedShardedGradReducer::ScopedShardedGradReducer(
    ShardedGradReducer* reducer)
    : previous_(g_current_reducer) {
  g_current_reducer = reducer;
}

ScopedShardedGradReducer::~ScopedShardedGradReducer() {
  g_current_reducer = previous_;
}

}  // namespace sgnn
