#include "sgnn/tensor/checkpoint.hpp"

#include <algorithm>

#include "sgnn/tensor/ops.hpp"
#include "sgnn/util/error.hpp"

namespace sgnn {

Tensor checkpoint(const SegmentFn& fn, const std::vector<Tensor>& inputs) {
  SGNN_CHECK(static_cast<bool>(fn), "checkpoint requires a segment function");

  // Detached aliases: share the input storage without keeping any upstream
  // graph alive from inside this node's closure.
  std::vector<Tensor> saved;
  saved.reserve(inputs.size());
  std::vector<bool> needs_grad(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    SGNN_CHECK(inputs[i].defined(), "checkpoint input " << i << " undefined");
    saved.push_back(inputs[i].detach());
    needs_grad[i] = inputs[i].requires_grad();
  }

  // Forward without recording: intermediates die at the end of this scope.
  Tensor forward_value;
  {
    const autograd::NoGradGuard no_grad;
    forward_value = fn(saved);
  }
  SGNN_CHECK(forward_value.defined(), "checkpoint segment returned undefined");

  Tensor out = Tensor::make_result(
      forward_value.shape(), inputs,
      [fn, saved, needs_grad](const Tensor& grad_output)
          -> std::vector<Tensor> {
        // Recompute the segment with fresh leaves standing in for the
        // original inputs, then differentiate the local graph.
        std::vector<Tensor> leaves;
        leaves.reserve(saved.size());
        Tensor recomputed;
        {
          const autograd::EnableGradGuard enable;
          // Recomputed intermediates are activation memory again, exactly
          // as on the original forward pass.
          const ScopedMemCategory activations(MemCategory::kActivation);
          for (const auto& s : saved) {
            Tensor leaf = s.detach();
            leaf.set_requires_grad(true);
            leaves.push_back(leaf);
          }
          recomputed = fn(leaves);
        }
        SGNN_CHECK(recomputed.shape() == grad_output.shape(),
                   "checkpoint recomputation shape "
                       << recomputed.shape().to_string()
                       << " != original output shape "
                       << grad_output.shape().to_string());
        {
          const autograd::EnableGradGuard enable;
          recomputed.backward(grad_output);
        }
        std::vector<Tensor> grads(saved.size());
        for (std::size_t i = 0; i < saved.size(); ++i) {
          if (!needs_grad[i]) continue;
          Tensor g = leaves[i].grad();
          // A segment may ignore an input; its gradient is then zero.
          grads[i] = g.defined() ? g : Tensor::zeros(saved[i].shape());
        }
        return grads;
      },
      "checkpoint");
  std::copy_n(forward_value.data(),
              static_cast<std::size_t>(forward_value.numel()), out.data());
  return out;
}

}  // namespace sgnn
