#include "ops_common.hpp"
#include "sgnn/obs/prof.hpp"
#include "sgnn/tensor/kernels.hpp"
#include "sgnn/tensor/ops.hpp"
#include "sgnn/util/thread_pool.hpp"

namespace sgnn {

using obs::prof::sat_add;
using obs::prof::sat_mul;
using ops_detail::kElementwiseGrain;

Tensor sum(const Tensor& x) {
  SGNN_CHECK(x.defined(), "sum requires a defined input");
  const Shape x_shape = x.shape();
  Tensor out = Tensor::make_result(
      Shape{}, {x},
      [=](const Tensor& grad) -> std::vector<Tensor> {
        const obs::prof::KernelScope prof(
            "sum", 0,
            sat_mul(static_cast<std::int64_t>(sizeof(real)),
                    x_shape.numel()),
            ".bwd");
        const real g = grad.item();
        Tensor gx = Tensor::full(x_shape, g);
        return {gx};
      },
      "sum");
  const std::int64_t n = x.numel();
  const obs::prof::KernelScope prof(
      "sum", n, sat_mul(kernels::compute_element_size(), sat_add(n, 1)));
  // Order-deterministic chunked reduction: per-chunk partials combined in
  // chunk order, so the value is identical for every pool size. The SIMD
  // backend splits each chunk across vector lanes, which changes the
  // reduction order relative to scalar (documented tolerance).
  out.data()[0] = static_cast<real>(kernels::reduce_sum(x.data(), n));
  return out;
}

Tensor mean(const Tensor& x) {
  SGNN_CHECK(x.numel() > 0, "mean of empty tensor");
  return scale(sum(x), real{1} / static_cast<real>(x.numel()));
}

namespace {

/// Decomposes shape around `axis` into (outer, reduced, inner) extents so a
/// rank-agnostic reduction is three nested loops.
struct AxisSplit {
  std::int64_t outer = 1;
  std::int64_t axis_len = 1;
  std::int64_t inner = 1;
};

AxisSplit split_axis(const Shape& shape, std::size_t axis) {
  SGNN_CHECK(axis < shape.rank(), "axis " << axis << " out of range for shape "
                                          << shape.to_string());
  AxisSplit s;
  for (std::size_t i = 0; i < axis; ++i) s.outer *= shape.dim(i);
  s.axis_len = shape.dim(axis);
  for (std::size_t i = axis + 1; i < shape.rank(); ++i) s.inner *= shape.dim(i);
  return s;
}

Shape reduced_shape(const Shape& shape, std::size_t axis, bool keepdim) {
  std::vector<std::int64_t> dims;
  for (std::size_t i = 0; i < shape.rank(); ++i) {
    if (i == axis) {
      if (keepdim) dims.push_back(1);
    } else {
      dims.push_back(shape.dim(i));
    }
  }
  return Shape(std::move(dims));
}

}  // namespace

Tensor sum(const Tensor& x, std::size_t axis, bool keepdim) {
  SGNN_CHECK(x.defined(), "sum requires a defined input");
  const Shape x_shape = x.shape();
  const AxisSplit s = split_axis(x_shape, axis);
  const Shape out_shape = reduced_shape(x_shape, axis, keepdim);
  Tensor out = Tensor::make_result(
      out_shape, {x},
      [=](const Tensor& grad) -> std::vector<Tensor> {
        // Broadcast grad back along the reduced axis.
        const obs::prof::KernelScope prof(
            "sum_axis", 0,
            sat_mul(static_cast<std::int64_t>(sizeof(real)),
                    sat_add(grad.numel(), x_shape.numel())),
            ".bwd");
        Tensor gx = Tensor::zeros(x_shape);
        const real* pg = grad.data();
        real* pgx = gx.data();
        parallel_for(
            0, s.outer, parallel_grain(s.axis_len * s.inner),
            [=](std::int64_t outer_begin, std::int64_t outer_end) {
              for (std::int64_t o = outer_begin; o < outer_end; ++o) {
                for (std::int64_t a = 0; a < s.axis_len; ++a) {
                  for (std::int64_t in = 0; in < s.inner; ++in) {
                    pgx[(o * s.axis_len + a) * s.inner + in] =
                        pg[o * s.inner + in];
                  }
                }
              }
            });
        return {gx};
      },
      "sum_axis");
  const obs::prof::KernelScope prof(
      "sum_axis", x.numel(),
      sat_mul(kernels::compute_element_size(),
              sat_add(x.numel(), out.numel())));
  const real* px = x.data();
  real* po = out.data();
  // Each output slice accumulates over the reduced axis in ascending order,
  // whichever partition runs it, so numerics are pool-size-independent. When
  // the outer extent carries no parallelism (e.g. axis-0 reductions) shard
  // the inner axis instead; both strategies visit `a` in the same order.
  if (s.outer > 1 || s.inner == 1) {
    if (s.inner == 1) {
      // Contiguous rows: each output element is a chunk sum (the nested
      // reduce runs inline inside the pool lambda).
      parallel_for(0, s.outer, parallel_grain(s.axis_len),
                   [=](std::int64_t outer_begin, std::int64_t outer_end) {
                     for (std::int64_t o = outer_begin; o < outer_end; ++o) {
                       po[o] = static_cast<real>(kernels::reduce_sum(
                           px + o * s.axis_len, s.axis_len));
                     }
                   });
    } else {
      parallel_for(
          0, s.outer, parallel_grain(s.axis_len * s.inner),
          [=](std::int64_t outer_begin, std::int64_t outer_end) {
            for (std::int64_t o = outer_begin; o < outer_end; ++o) {
              real* dst = po + o * s.inner;
              for (std::int64_t in = 0; in < s.inner; ++in) dst[in] = 0;
              for (std::int64_t a = 0; a < s.axis_len; ++a) {
                kernels::accumulate(px + (o * s.axis_len + a) * s.inner, dst,
                                    s.inner);
              }
            }
          });
    }
  } else {
    parallel_for(
        0, s.inner, parallel_grain(s.axis_len),
        [=](std::int64_t inner_begin, std::int64_t inner_end) {
          for (std::int64_t in = inner_begin; in < inner_end; ++in) {
            po[in] = 0;
          }
          for (std::int64_t a = 0; a < s.axis_len; ++a) {
            kernels::accumulate(px + a * s.inner + inner_begin,
                                po + inner_begin, inner_end - inner_begin);
          }
        });
  }
  return out;
}

Tensor mean(const Tensor& x, std::size_t axis, bool keepdim) {
  const std::int64_t axis_len = x.shape().dim(axis);
  SGNN_CHECK(axis_len > 0, "mean over empty axis");
  return scale(sum(x, axis, keepdim), real{1} / static_cast<real>(axis_len));
}

}  // namespace sgnn
