#include "ops_common.hpp"
#include "sgnn/obs/prof.hpp"
#include "sgnn/tensor/ops.hpp"
#include "sgnn/util/thread_pool.hpp"

namespace sgnn {

namespace {

/// C = A(m,k) @ B(k,n) into pre-allocated C. ikj loop order keeps the inner
/// loop contiguous in both B and C. Row-partitioned across the pool: each
/// chunk owns a disjoint band of C, and each C element accumulates over p in
/// ascending order regardless of thread count.
void matmul_into(const real* a, const real* b, real* c, std::int64_t m,
                 std::int64_t k, std::int64_t n) {
  parallel_for(0, m, parallel_grain(k * n), [=](std::int64_t row_begin,
                                                std::int64_t row_end) {
    for (std::int64_t i = row_begin; i < row_end; ++i) {
      real* crow = c + i * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] = 0;
      for (std::int64_t p = 0; p < k; ++p) {
        const real av = a[i * k + p];
        if (av == 0) continue;
        const real* brow = b + p * n;
        for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
}

/// C = Aᵀ(k,m) @ B(m,n): accumulates without materializing the transpose.
/// Sharded over the k output rows; within a shard the p loop stays outermost
/// so B rows stream contiguously and the accumulation order over p matches
/// the serial kernel exactly.
void matmul_at_b(const real* a, const real* b, real* c, std::int64_t m,
                 std::int64_t k, std::int64_t n) {
  parallel_for(0, k, parallel_grain(m * n), [=](std::int64_t row_begin,
                                                std::int64_t row_end) {
    for (std::int64_t i = row_begin * n; i < row_end * n; ++i) c[i] = 0;
    for (std::int64_t p = 0; p < m; ++p) {
      const real* arow = a + p * k;
      const real* brow = b + p * n;
      for (std::int64_t i = row_begin; i < row_end; ++i) {
        const real av = arow[i];
        if (av == 0) continue;
        real* crow = c + i * n;
        for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
}

/// C = A(m,n) @ Bᵀ(n,k): B given as (k,n). Row-partitioned over m.
void matmul_a_bt(const real* a, const real* b, real* c, std::int64_t m,
                 std::int64_t n, std::int64_t k) {
  parallel_for(0, m, parallel_grain(n * k), [=](std::int64_t row_begin,
                                                std::int64_t row_end) {
    for (std::int64_t i = row_begin; i < row_end; ++i) {
      const real* arow = a + i * n;
      real* crow = c + i * k;
      for (std::int64_t j = 0; j < k; ++j) {
        const real* brow = b + j * n;
        real acc = 0;
        for (std::int64_t p = 0; p < n; ++p) acc += arow[p] * brow[p];
        crow[j] = acc;
      }
    }
  });
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  SGNN_CHECK(a.rank() == 2 && b.rank() == 2,
             "matmul requires rank-2 operands, got "
                 << a.shape().to_string() << " x " << b.shape().to_string());
  const std::int64_t m = a.dim(0);
  const std::int64_t k = a.dim(1);
  const std::int64_t n = b.dim(1);
  SGNN_CHECK(b.dim(0) == k, "matmul inner-dimension mismatch: "
                                << a.shape().to_string() << " x "
                                << b.shape().to_string());
  const Tensor ad = a.detach();
  const Tensor bd = b.detach();
  Tensor out = Tensor::make_result(
      Shape{m, n}, {a, b},
      [=](const Tensor& grad) -> std::vector<Tensor> {
        // dA = G @ Bᵀ, dB = Aᵀ @ G: two products, each priced like the
        // forward one (see the kernel cost model in docs/observability.md).
        const obs::prof::KernelScope prof(
            "matmul", 4 * m * k * n,
            2 * static_cast<std::int64_t>(sizeof(real)) *
                (m * k + k * n + m * n),
            ".bwd");
        Tensor ga = Tensor::zeros(Shape{m, k});
        Tensor gb = Tensor::zeros(Shape{k, n});
        matmul_a_bt(grad.data(), bd.data(), ga.data(), m, n, k);
        matmul_at_b(ad.data(), grad.data(), gb.data(), m, k, n);
        return {ga, gb};
      },
      "matmul");
  {
    const obs::prof::KernelScope prof(
        "matmul", 2 * m * k * n,
        static_cast<std::int64_t>(sizeof(real)) * (m * k + k * n + m * n));
    matmul_into(ad.data(), bd.data(), out.data(), m, k, n);
  }
  return out;
}

Tensor transpose(const Tensor& x) {
  SGNN_CHECK(x.rank() == 2, "transpose requires rank-2 input, got "
                                << x.shape().to_string());
  const std::int64_t rows = x.dim(0);
  const std::int64_t cols = x.dim(1);
  const Tensor xd = x.detach();
  Tensor out = Tensor::make_result(
      Shape{cols, rows}, {x},
      [=](const Tensor& grad) -> std::vector<Tensor> {
        const obs::prof::KernelScope prof(
            "transpose", 0,
            2 * static_cast<std::int64_t>(sizeof(real)) * rows * cols,
            ".bwd");
        Tensor gx = Tensor::zeros(Shape{rows, cols});
        const real* pg = grad.data();
        real* pgx = gx.data();
        parallel_for(0, cols, parallel_grain(rows),
                     [=](std::int64_t begin, std::int64_t end) {
                       for (std::int64_t i = begin; i < end; ++i) {
                         for (std::int64_t j = 0; j < rows; ++j) {
                           pgx[j * cols + i] = pg[i * rows + j];
                         }
                       }
                     });
        return {gx};
      },
      "transpose");
  const obs::prof::KernelScope prof(
      "transpose", 0,
      2 * static_cast<std::int64_t>(sizeof(real)) * rows * cols);
  const real* px = xd.data();
  real* po = out.data();
  parallel_for(0, rows, parallel_grain(cols),
               [=](std::int64_t begin, std::int64_t end) {
                 for (std::int64_t i = begin; i < end; ++i) {
                   for (std::int64_t j = 0; j < cols; ++j) {
                     po[j * rows + i] = px[i * cols + j];
                   }
                 }
               });
  return out;
}

}  // namespace sgnn
