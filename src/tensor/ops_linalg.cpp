#include "ops_common.hpp"
#include "sgnn/obs/prof.hpp"
#include "sgnn/tensor/grad_reducer.hpp"
#include "sgnn/tensor/kernels.hpp"
#include "sgnn/tensor/ops.hpp"
#include "sgnn/util/thread_pool.hpp"

namespace sgnn {

Tensor matmul(const Tensor& a, const Tensor& b) {
  SGNN_CHECK(a.rank() == 2 && b.rank() == 2,
             "matmul requires rank-2 operands, got "
                 << a.shape().to_string() << " x " << b.shape().to_string());
  const std::int64_t m = a.dim(0);
  const std::int64_t k = a.dim(1);
  const std::int64_t n = b.dim(1);
  SGNN_CHECK(b.dim(0) == k, "matmul inner-dimension mismatch: "
                                << a.shape().to_string() << " x "
                                << b.shape().to_string());
  const Tensor ad = a.detach();
  const Tensor bd = b.detach();
  // x @ W with W a replicated leaf parameter and x row-sharded across ranks:
  // dW folds over x's rows, so a graph-parallel run must continue that fold
  // rank to rank instead of computing it locally. The armed reducer is
  // captured at record time; the condition (leaf rhs) is a property of the
  // model, not of this rank's row count, so every rank records it alike.
  ShardedGradReducer* reducer =
      (b.is_leaf() && b.requires_grad()) ? current_sharded_grad_reducer()
                                         : nullptr;
  using obs::prof::sat_add;
  using obs::prof::sat_mul;
  Tensor out = Tensor::make_result(
      Shape{m, n}, {a, b},
      [=](const Tensor& grad) -> std::vector<Tensor> {
        // dA = G @ Bᵀ, dB = Aᵀ @ G: two products, each priced like the
        // forward one (see the kernel cost model in docs/observability.md).
        const std::int64_t w = kernels::compute_element_size();
        const obs::prof::KernelScope prof(
            "matmul", sat_mul(4, m, k, n),
            sat_mul(2 * w, sat_add(sat_mul(m, k), sat_mul(k, n),
                                   sat_mul(m, n))),
            ".bwd");
        Tensor ga = Tensor::zeros(Shape{m, k});
        kernels::matmul_a_bt(grad.data(), bd.data(), ga.data(), m, n, k);
        if (reducer != nullptr) {
          return {ga, reducer->matmul_weight_grad(ad, grad)};
        }
        Tensor gb = Tensor::zeros(Shape{k, n});
        kernels::matmul_at_b(ad.data(), grad.data(), gb.data(), m, k, n);
        return {ga, gb};
      },
      "matmul");
  {
    const std::int64_t w = kernels::compute_element_size();
    const obs::prof::KernelScope prof(
        "matmul", sat_mul(2, m, k, n),
        sat_mul(w, sat_add(sat_mul(m, k), sat_mul(k, n), sat_mul(m, n))));
    kernels::matmul(ad.data(), bd.data(), out.data(), m, k, n);
  }
  return out;
}

Tensor transpose(const Tensor& x) {
  SGNN_CHECK(x.rank() == 2, "transpose requires rank-2 input, got "
                                << x.shape().to_string());
  const std::int64_t rows = x.dim(0);
  const std::int64_t cols = x.dim(1);
  const Tensor xd = x.detach();
  using obs::prof::sat_mul;
  Tensor out = Tensor::make_result(
      Shape{cols, rows}, {x},
      [=](const Tensor& grad) -> std::vector<Tensor> {
        const obs::prof::KernelScope prof(
            "transpose", 0,
            sat_mul(2 * static_cast<std::int64_t>(sizeof(real)), rows, cols),
            ".bwd");
        Tensor gx = Tensor::zeros(Shape{rows, cols});
        const real* pg = grad.data();
        real* pgx = gx.data();
        parallel_for(0, cols, parallel_grain(rows),
                     [=](std::int64_t begin, std::int64_t end) {
                       for (std::int64_t i = begin; i < end; ++i) {
                         for (std::int64_t j = 0; j < rows; ++j) {
                           pgx[j * cols + i] = pg[i * rows + j];
                         }
                       }
                     });
        return {gx};
      },
      "transpose");
  const obs::prof::KernelScope prof(
      "transpose", 0,
      sat_mul(2 * static_cast<std::int64_t>(sizeof(real)), rows, cols));
  const real* px = xd.data();
  real* po = out.data();
  parallel_for(0, rows, parallel_grain(cols),
               [=](std::int64_t begin, std::int64_t end) {
                 for (std::int64_t i = begin; i < end; ++i) {
                   for (std::int64_t j = 0; j < cols; ++j) {
                     po[j * rows + i] = px[i * cols + j];
                   }
                 }
               });
  return out;
}

}  // namespace sgnn
