#include <algorithm>

#include "ops_common.hpp"
#include "sgnn/obs/prof.hpp"
#include "sgnn/tensor/grad_reducer.hpp"
#include "sgnn/tensor/ops.hpp"
#include "sgnn/util/thread_pool.hpp"

namespace sgnn {

namespace {

/// Adds `src` rows into `out` rows chosen by `index`, sharded by receiver
/// range: each chunk owns a contiguous band of output rows and scans the
/// whole index array, accumulating only the rows that land in its band.
/// Every output row therefore receives its contributions in input order —
/// the same order as the serial loop — so results are bit-identical for any
/// pool size, duplicate indices included.
void scatter_rows_into(const real* src, const std::vector<std::int64_t>& index,
                       real* out, std::int64_t num_rows, std::int64_t cols) {
  const auto in_rows = static_cast<std::int64_t>(index.size());
  // Scanning the index array costs O(in_rows) per chunk, so keep bands
  // coarse: at least enough rows that the adds dominate the scan.
  const std::int64_t grain =
      std::max<std::int64_t>(parallel_grain(cols), num_rows / 64 + 1);
  parallel_for(0, num_rows, grain, [&, src, out](std::int64_t row_begin,
                                                 std::int64_t row_end) {
    for (std::int64_t r = 0; r < in_rows; ++r) {
      const std::int64_t target = index[static_cast<std::size_t>(r)];
      if (target < row_begin || target >= row_end) continue;
      real* dst = out + target * cols;
      const real* srow = src + r * cols;
      for (std::int64_t c = 0; c < cols; ++c) dst[c] += srow[c];
    }
  });
}

}  // namespace

Tensor index_select_rows(const Tensor& x,
                         const std::vector<std::int64_t>& index) {
  SGNN_CHECK(x.rank() == 2, "index_select_rows requires rank-2 input, got "
                                << x.shape().to_string());
  const std::int64_t rows = x.dim(0);
  const std::int64_t cols = x.dim(1);
  for (const auto i : index) {
    SGNN_CHECK(i >= 0 && i < rows,
               "index_select_rows index " << i << " out of range [0, " << rows
                                          << ")");
  }
  const Tensor xd = x.detach();
  const auto out_rows = static_cast<std::int64_t>(index.size());
  // Embedding-table pattern: gathering rows of a replicated leaf table with
  // ids that are row-sharded across ranks. The table gradient folds over
  // the global id order, so a graph-parallel run continues the scatter rank
  // to rank (see grad_reducer.hpp). Activation gathers (non-leaf x) keep
  // the local scatter.
  ShardedGradReducer* reducer =
      (x.is_leaf() && x.requires_grad()) ? current_sharded_grad_reducer()
                                         : nullptr;
  Tensor out = Tensor::make_result(
      Shape{out_rows, cols}, {x},
      [=](const Tensor& grad) -> std::vector<Tensor> {
        // Rows gathered multiple times accumulate their gradients; the
        // scatter is receiver-sharded to keep that accumulation ordered.
        const obs::prof::KernelScope prof(
            "index_select", obs::prof::sat_mul(out_rows, cols),
            obs::prof::sat_mul(3 * static_cast<std::int64_t>(sizeof(real)),
                               out_rows, cols),
            ".bwd");
        if (reducer != nullptr) {
          return {reducer->scatter_rows_grad(grad, index, rows, cols)};
        }
        Tensor gx = Tensor::zeros(Shape{rows, cols});
        scatter_rows_into(grad.data(), index, gx.data(), rows, cols);
        return {gx};
      },
      "index_select_rows");
  const obs::prof::KernelScope prof(
      "index_select", 0,
      obs::prof::sat_mul(2 * static_cast<std::int64_t>(sizeof(real)),
                         out_rows, cols));
  const real* px = xd.data();
  real* po = out.data();
  parallel_for(0, out_rows, parallel_grain(cols),
               [&, px, po](std::int64_t row_begin, std::int64_t row_end) {
                 for (std::int64_t r = row_begin; r < row_end; ++r) {
                   std::copy_n(px + index[static_cast<std::size_t>(r)] * cols,
                               static_cast<std::size_t>(cols), po + r * cols);
                 }
               });
  return out;
}

Tensor scatter_add_rows(const Tensor& src,
                        const std::vector<std::int64_t>& index,
                        std::int64_t num_rows) {
  SGNN_CHECK(src.rank() == 2, "scatter_add_rows requires rank-2 input, got "
                                  << src.shape().to_string());
  SGNN_CHECK(static_cast<std::size_t>(src.dim(0)) == index.size(),
             "scatter_add_rows: " << src.dim(0) << " rows vs " << index.size()
                                  << " indices");
  const std::int64_t in_rows = src.dim(0);
  const std::int64_t cols = src.dim(1);
  for (const auto i : index) {
    SGNN_CHECK(i >= 0 && i < num_rows,
               "scatter_add_rows index " << i << " out of range [0, "
                                         << num_rows << ")");
  }
  const Tensor sd = src.detach();
  Tensor out = Tensor::make_result(
      Shape{num_rows, cols}, {src},
      [=](const Tensor& grad) -> std::vector<Tensor> {
        // d(out[idx[i]])/d(src[i]) = I, so the gradient is a row gather.
        const obs::prof::KernelScope prof(
            "scatter_add", 0,
            obs::prof::sat_mul(2 * static_cast<std::int64_t>(sizeof(real)),
                               in_rows, cols),
            ".bwd");
        Tensor gs = Tensor::zeros(Shape{in_rows, cols});
        real* pgs = gs.data();
        const real* pg = grad.data();
        parallel_for(0, in_rows, parallel_grain(cols),
                     [&, pg, pgs](std::int64_t row_begin,
                                  std::int64_t row_end) {
                       for (std::int64_t r = row_begin; r < row_end; ++r) {
                         std::copy_n(
                             pg + index[static_cast<std::size_t>(r)] * cols,
                             static_cast<std::size_t>(cols), pgs + r * cols);
                       }
                     });
        return {gs};
      },
      "scatter_add_rows");
  const obs::prof::KernelScope prof(
      "scatter_add", obs::prof::sat_mul(in_rows, cols),
      obs::prof::sat_mul(3 * static_cast<std::int64_t>(sizeof(real)), in_rows,
                         cols));
  scatter_rows_into(sd.data(), index, out.data(), num_rows, cols);
  return out;
}

}  // namespace sgnn
