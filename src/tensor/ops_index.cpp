#include <algorithm>

#include "ops_common.hpp"
#include "sgnn/tensor/ops.hpp"

namespace sgnn {

Tensor index_select_rows(const Tensor& x,
                         const std::vector<std::int64_t>& index) {
  SGNN_CHECK(x.rank() == 2, "index_select_rows requires rank-2 input, got "
                                << x.shape().to_string());
  const std::int64_t rows = x.dim(0);
  const std::int64_t cols = x.dim(1);
  for (const auto i : index) {
    SGNN_CHECK(i >= 0 && i < rows,
               "index_select_rows index " << i << " out of range [0, " << rows
                                          << ")");
  }
  const Tensor xd = x.detach();
  const auto out_rows = static_cast<std::int64_t>(index.size());
  Tensor out = Tensor::make_result(
      Shape{out_rows, cols}, {x},
      [=](const Tensor& grad) -> std::vector<Tensor> {
        // Rows gathered multiple times accumulate their gradients.
        Tensor gx = Tensor::zeros(Shape{rows, cols});
        real* pgx = gx.data();
        const real* pg = grad.data();
        for (std::int64_t r = 0; r < out_rows; ++r) {
          real* dst = pgx + index[static_cast<std::size_t>(r)] * cols;
          const real* src = pg + r * cols;
          for (std::int64_t c = 0; c < cols; ++c) dst[c] += src[c];
        }
        return {gx};
      },
      "index_select_rows");
  const real* px = xd.data();
  real* po = out.data();
  for (std::int64_t r = 0; r < out_rows; ++r) {
    std::copy_n(px + index[static_cast<std::size_t>(r)] * cols,
                static_cast<std::size_t>(cols), po + r * cols);
  }
  return out;
}

Tensor scatter_add_rows(const Tensor& src,
                        const std::vector<std::int64_t>& index,
                        std::int64_t num_rows) {
  SGNN_CHECK(src.rank() == 2, "scatter_add_rows requires rank-2 input, got "
                                  << src.shape().to_string());
  SGNN_CHECK(static_cast<std::size_t>(src.dim(0)) == index.size(),
             "scatter_add_rows: " << src.dim(0) << " rows vs " << index.size()
                                  << " indices");
  const std::int64_t in_rows = src.dim(0);
  const std::int64_t cols = src.dim(1);
  for (const auto i : index) {
    SGNN_CHECK(i >= 0 && i < num_rows,
               "scatter_add_rows index " << i << " out of range [0, "
                                         << num_rows << ")");
  }
  const Tensor sd = src.detach();
  Tensor out = Tensor::make_result(
      Shape{num_rows, cols}, {src},
      [=](const Tensor& grad) -> std::vector<Tensor> {
        // d(out[idx[i]])/d(src[i]) = I, so the gradient is a row gather.
        Tensor gs = Tensor::zeros(Shape{in_rows, cols});
        real* pgs = gs.data();
        const real* pg = grad.data();
        for (std::int64_t r = 0; r < in_rows; ++r) {
          std::copy_n(pg + index[static_cast<std::size_t>(r)] * cols,
                      static_cast<std::size_t>(cols), pgs + r * cols);
        }
        return {gs};
      },
      "scatter_add_rows");
  const real* ps = sd.data();
  real* po = out.data();
  for (std::int64_t r = 0; r < in_rows; ++r) {
    real* dst = po + index[static_cast<std::size_t>(r)] * cols;
    const real* srow = ps + r * cols;
    for (std::int64_t c = 0; c < cols; ++c) dst[c] += srow[c];
  }
  return out;
}

}  // namespace sgnn
