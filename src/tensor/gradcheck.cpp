#include "sgnn/tensor/gradcheck.hpp"

#include <cmath>
#include <sstream>

#include "sgnn/tensor/ops.hpp"
#include "sgnn/util/error.hpp"
#include "sgnn/util/rng.hpp"

namespace sgnn {

namespace {

/// Scalar objective: <fn(inputs), cotangent>.
real objective(const std::function<Tensor(const std::vector<Tensor>&)>& fn,
               const std::vector<Tensor>& inputs, const Tensor& cotangent) {
  const autograd::NoGradGuard no_grad;
  const Tensor y = fn(inputs);
  const real* py = y.data();
  const real* pc = cotangent.data();
  real acc = 0;
  const std::int64_t n = y.numel();
  for (std::int64_t i = 0; i < n; ++i) acc += py[i] * pc[i];
  return acc;
}

}  // namespace

GradcheckResult gradcheck(
    const std::function<Tensor(const std::vector<Tensor>&)>& fn,
    const std::vector<Tensor>& inputs, double eps, double tolerance) {
  GradcheckResult result;
  result.ok = true;

  // Fresh leaf copies so the caller's tensors keep their autograd state.
  std::vector<Tensor> leaves;
  leaves.reserve(inputs.size());
  for (const auto& input : inputs) {
    Tensor leaf = input.clone();
    leaf.set_requires_grad(input.requires_grad());
    leaves.push_back(leaf);
  }

  // Analytic pass.
  Tensor output = fn(leaves);
  Rng rng(0xC07A4E57ULL);
  Tensor cotangent = Tensor::randn(output.shape(), rng);
  output.backward(cotangent);

  for (std::size_t k = 0; k < leaves.size(); ++k) {
    if (!inputs[k].requires_grad()) continue;
    Tensor analytic = leaves[k].grad();
    SGNN_CHECK(analytic.defined(),
               "gradcheck: input " << k << " received no gradient");
    const real* pa = analytic.data();
    Tensor& leaf = leaves[k];
    const std::int64_t n = leaf.numel();
    for (std::int64_t i = 0; i < n; ++i) {
      const real original = leaf.data()[i];
      leaf.data()[i] = original + static_cast<real>(eps);
      const real plus = objective(fn, leaves, cotangent);
      leaf.data()[i] = original - static_cast<real>(eps);
      const real minus = objective(fn, leaves, cotangent);
      leaf.data()[i] = original;

      const double numeric = (plus - minus) / (2.0 * eps);
      const double abs_err = std::abs(numeric - pa[i]);
      const double scale =
          std::max({std::abs(numeric), std::abs(double(pa[i])), 1.0});
      const double rel_err = abs_err / scale;
      if (abs_err > result.max_abs_error) result.max_abs_error = abs_err;
      if (rel_err > result.max_rel_error) {
        result.max_rel_error = rel_err;
        std::ostringstream os;
        os << "input " << k << " element " << i << ": analytic " << pa[i]
           << " vs numeric " << numeric;
        result.detail = os.str();
      }
      if (rel_err > tolerance) result.ok = false;
    }
  }
  return result;
}

}  // namespace sgnn
