#include <cmath>

#include "ops_common.hpp"
#include "sgnn/obs/prof.hpp"
#include "sgnn/tensor/grad_reducer.hpp"
#include "sgnn/tensor/kernels.hpp"
#include "sgnn/tensor/ops.hpp"
#include "sgnn/util/thread_pool.hpp"

namespace sgnn {

using kernels::BinaryOp;
using kernels::UnaryOp;
using obs::prof::sat_mul;
using ops_detail::binary_broadcast;
using ops_detail::kElementwiseGrain;
using ops_detail::reduce_to;

namespace {

/// Reference evaluation of a binary op, used only by the general strided
/// broadcast path (which stays fp64 on every backend — see docs/kernels.md).
real apply_binary(BinaryOp op, real x, real y) {
  switch (op) {
    case BinaryOp::kAdd:
      return x + y;
    case BinaryOp::kSub:
      return x - y;
    case BinaryOp::kMul:
      return x * y;
    case BinaryOp::kDiv:
      return x / y;
  }
  return 0;
}

/// Forward of a broadcasting binary op. The contiguous fast paths
/// (same-shape and scalar operands) dispatch through the kernel backend;
/// the general strided path runs the fp64 reference loop on all backends.
void binary_forward(BinaryOp op, const Tensor& ad, const Tensor& bd,
                    Tensor& out) {
  const std::int64_t n = out.numel();
  if (ad.shape() == bd.shape()) {
    kernels::binary(op, ad.data(), bd.data(), out.data(), n);
    return;
  }
  if (ad.numel() == 1) {
    kernels::binary_scalar_l(op, ad.data()[0], bd.data(), out.data(), n);
    return;
  }
  if (bd.numel() == 1) {
    kernels::binary_scalar_r(op, ad.data(), bd.data()[0], out.data(), n);
    return;
  }
  binary_broadcast(ad, bd, out,
                   [op](real x, real y) { return apply_binary(op, x, y); });
}

/// Builds a broadcasting binary op. The same-shape backward dispatches
/// through the kernel backend; broadcasting backwards evaluate the strided
/// fp64 loop with `bwd_a`/`bwd_b` (d(out)/d(input) at one element) and then
/// sum-reduce to each input's shape.
template <typename BackwardA, typename BackwardB>
Tensor binary_op(const Tensor& a, const Tensor& b, const char* name,
                 BinaryOp op, BackwardA bwd_a, BackwardB bwd_b) {
  const Shape out_shape = Shape::broadcast(a.shape(), b.shape());
  const Tensor ad = a.detach();
  const Tensor bd = b.detach();
  const Shape a_shape = a.shape();
  const Shape b_shape = b.shape();
  Tensor out = Tensor::make_result(
      out_shape, {a, b},
      [=](const Tensor& grad) -> std::vector<Tensor> {
        // Gradient in the broadcast shape, then reduced to each input.
        Tensor ga = Tensor::zeros(grad.shape());
        Tensor gb = Tensor::zeros(grad.shape());
        {
          // Evaluate d(out)/d(a) * grad and d(out)/d(b) * grad pointwise.
          const obs::prof::KernelScope prof(
              name, sat_mul(4, grad.numel()),
              sat_mul(5 * kernels::compute_element_size(), grad.numel()),
              ".bwd");
          const std::int64_t n = grad.numel();
          if (a_shape == grad.shape() && b_shape == grad.shape()) {
            kernels::binary_backward(op, ad.data(), bd.data(), grad.data(),
                                     ga.data(), gb.data(), n);
          } else {
            const auto sa =
                ops_detail::broadcast_strides(a_shape, grad.shape());
            const auto sb =
                ops_detail::broadcast_strides(b_shape, grad.shape());
            const auto so = grad.shape().strides();
            const std::size_t rank = grad.rank();
            const real* pa = ad.data();
            const real* pb = bd.data();
            const real* pg = grad.data();
            real* pga = ga.data();
            real* pgb = gb.data();
            parallel_for(
                0, n, kElementwiseGrain,
                [&, pa, pb, pg, pga, pgb](std::int64_t begin,
                                          std::int64_t end) {
                  for (std::int64_t i = begin; i < end; ++i) {
                    std::int64_t rem = i;
                    std::int64_t oa = 0;
                    std::int64_t ob = 0;
                    for (std::size_t axis = 0; axis < rank; ++axis) {
                      const std::int64_t coord = rem / so[axis];
                      rem -= coord * so[axis];
                      oa += coord * sa[axis];
                      ob += coord * sb[axis];
                    }
                    pga[i] = bwd_a(pa[oa], pb[ob]) * pg[i];
                    pgb[i] = bwd_b(pa[oa], pb[ob]) * pg[i];
                  }
                });
          }
        }
        return {reduce_to(ga, a_shape), reduce_to(gb, b_shape)};
      },
      name);
  {
    const obs::prof::KernelScope prof(
        name, out.numel(),
        sat_mul(3 * kernels::compute_element_size(), out.numel()));
    binary_forward(op, ad, bd, out);
  }
  return out;
}

/// Builds an elementwise unary op dispatched through the kernel backend.
/// `c` is the op parameter (factor/addend/exponent/bound) where one exists.
Tensor unary_op(const Tensor& x, const char* name, UnaryOp op, real c = 0) {
  const Tensor xd = x.detach();
  Tensor out = Tensor::make_result(
      x.shape(), {x},
      [=](const Tensor& grad) -> std::vector<Tensor> {
        Tensor gx = Tensor::zeros(grad.shape());
        const std::int64_t n = grad.numel();
        {
          const obs::prof::KernelScope prof(
              name, sat_mul(2, n),
              sat_mul(3 * kernels::compute_element_size(), n), ".bwd");
          kernels::unary_backward(op, xd.data(), grad.data(), gx.data(), c,
                                  n);
        }
        return {gx};
      },
      name);
  const std::int64_t n = out.numel();
  {
    const obs::prof::KernelScope prof(
        name, n, sat_mul(2 * kernels::compute_element_size(), n));
    kernels::unary(op, xd.data(), out.data(), c, n);
  }
  return out;
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  SGNN_CHECK(a.defined() && b.defined(), "add requires defined inputs");
  const Shape a_shape = a.shape();
  const Shape b_shape = b.shape();
  // Bias pattern: a (1, n) leaf parameter broadcast over row-sharded
  // activations. Its gradient is a column sum over the global rows, which a
  // graph-parallel run continues rank to rank (see grad_reducer.hpp). The
  // condition depends only on the leaf's own shape so all ranks agree.
  const auto bias_like = [](const Tensor& t) {
    return t.is_leaf() && t.requires_grad() && t.rank() == 2 && t.dim(0) == 1;
  };
  ShardedGradReducer* reducer =
      (bias_like(a) || bias_like(b)) ? current_sharded_grad_reducer()
                                     : nullptr;
  const bool ring_a = reducer != nullptr && bias_like(a);
  const bool ring_b = reducer != nullptr && bias_like(b);
  Tensor out = Tensor::make_result(
      Shape::broadcast(a_shape, b_shape), {a, b},
      [=](const Tensor& grad) -> std::vector<Tensor> {
        return {ring_a ? reducer->rows_sum_grad(grad)
                       : reduce_to(grad, a_shape),
                ring_b ? reducer->rows_sum_grad(grad)
                       : reduce_to(grad, b_shape)};
      },
      "add");
  {
    const obs::prof::KernelScope prof(
        "add", out.numel(),
        sat_mul(3 * kernels::compute_element_size(), out.numel()));
    binary_forward(BinaryOp::kAdd, a.detach(), b.detach(), out);
  }
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  SGNN_CHECK(a.defined() && b.defined(), "sub requires defined inputs");
  const Shape a_shape = a.shape();
  const Shape b_shape = b.shape();
  Tensor out = Tensor::make_result(
      Shape::broadcast(a_shape, b_shape), {a, b},
      [=](const Tensor& grad) -> std::vector<Tensor> {
        Tensor gneg = Tensor::zeros(grad.shape());
        const std::int64_t n = grad.numel();
        {
          const obs::prof::KernelScope prof(
              "sub", n, sat_mul(2 * kernels::compute_element_size(), n),
              ".bwd");
          kernels::unary(UnaryOp::kNeg, grad.data(), gneg.data(), 0, n);
        }
        return {reduce_to(grad, a_shape), reduce_to(gneg, b_shape)};
      },
      "sub");
  {
    const obs::prof::KernelScope prof(
        "sub", out.numel(),
        sat_mul(3 * kernels::compute_element_size(), out.numel()));
    binary_forward(BinaryOp::kSub, a.detach(), b.detach(), out);
  }
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  SGNN_CHECK(a.defined() && b.defined(), "mul requires defined inputs");
  return binary_op(
      a, b, "mul", BinaryOp::kMul, [](real, real y) { return y; },
      [](real x, real) { return x; });
}

Tensor div(const Tensor& a, const Tensor& b) {
  SGNN_CHECK(a.defined() && b.defined(), "div requires defined inputs");
  return binary_op(
      a, b, "div", BinaryOp::kDiv,
      [](real, real y) { return real{1} / y; },
      [](real x, real y) { return -x / (y * y); });
}

Tensor neg(const Tensor& x) {
  SGNN_CHECK(x.defined(), "neg requires a defined input");
  return unary_op(x, "neg", UnaryOp::kNeg);
}

Tensor scale(const Tensor& x, real factor) {
  SGNN_CHECK(x.defined(), "scale requires a defined input");
  return unary_op(x, "scale", UnaryOp::kScale, factor);
}

Tensor add_scalar(const Tensor& x, real value) {
  SGNN_CHECK(x.defined(), "add_scalar requires a defined input");
  return unary_op(x, "add_scalar", UnaryOp::kAddScalar, value);
}

Tensor pow_scalar(const Tensor& x, real exponent) {
  SGNN_CHECK(x.defined(), "pow_scalar requires a defined input");
  return unary_op(x, "pow_scalar", UnaryOp::kPow, exponent);
}

Tensor square(const Tensor& x) {
  SGNN_CHECK(x.defined(), "square requires a defined input");
  return unary_op(x, "square", UnaryOp::kSquare);
}

Tensor sqrt_op(const Tensor& x) {
  SGNN_CHECK(x.defined(), "sqrt_op requires a defined input");
  return unary_op(x, "sqrt", UnaryOp::kSqrt);
}

Tensor exp_op(const Tensor& x) {
  SGNN_CHECK(x.defined(), "exp_op requires a defined input");
  return unary_op(x, "exp", UnaryOp::kExp);
}

Tensor log_op(const Tensor& x) {
  SGNN_CHECK(x.defined(), "log_op requires a defined input");
  return unary_op(x, "log", UnaryOp::kLog);
}

Tensor abs_op(const Tensor& x) {
  SGNN_CHECK(x.defined(), "abs_op requires a defined input");
  return unary_op(x, "abs", UnaryOp::kAbs);
}

Tensor clamp_min(const Tensor& x, real bound) {
  SGNN_CHECK(x.defined(), "clamp_min requires a defined input");
  return unary_op(x, "clamp_min", UnaryOp::kClampMin, bound);
}

Tensor relu(const Tensor& x) {
  SGNN_CHECK(x.defined(), "relu requires a defined input");
  return unary_op(x, "relu", UnaryOp::kRelu);
}

Tensor sigmoid(const Tensor& x) {
  SGNN_CHECK(x.defined(), "sigmoid requires a defined input");
  return unary_op(x, "sigmoid", UnaryOp::kSigmoid);
}

Tensor tanh_op(const Tensor& x) {
  SGNN_CHECK(x.defined(), "tanh_op requires a defined input");
  return unary_op(x, "tanh", UnaryOp::kTanh);
}

Tensor silu(const Tensor& x) {
  SGNN_CHECK(x.defined(), "silu requires a defined input");
  return unary_op(x, "silu", UnaryOp::kSilu);
}

Tensor softplus(const Tensor& x) {
  SGNN_CHECK(x.defined(), "softplus requires a defined input");
  return unary_op(x, "softplus", UnaryOp::kSoftplus);
}

Tensor row_norm_squared(const Tensor& x) {
  SGNN_CHECK(x.rank() == 2, "row_norm_squared requires rank-2 input, got "
                                << x.shape().to_string());
  return sum(square(x), /*axis=*/1, /*keepdim=*/true);
}

Tensor mse_loss(const Tensor& prediction, const Tensor& target) {
  SGNN_CHECK(prediction.shape() == target.shape(),
             "mse_loss shape mismatch: " << prediction.shape().to_string()
                                         << " vs "
                                         << target.shape().to_string());
  return mean(square(prediction - target.detach()));
}

}  // namespace sgnn
