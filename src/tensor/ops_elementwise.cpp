#include <cmath>

#include "ops_common.hpp"
#include "sgnn/obs/prof.hpp"
#include "sgnn/tensor/ops.hpp"
#include "sgnn/util/thread_pool.hpp"

namespace sgnn {

using ops_detail::binary_broadcast;
using ops_detail::kElementwiseGrain;
using ops_detail::reduce_to;

namespace {

/// Builds a broadcasting binary op with custom forward/backward kernels.
template <typename Forward, typename BackwardA, typename BackwardB>
Tensor binary_op(const Tensor& a, const Tensor& b, const char* name,
                 Forward fwd, BackwardA bwd_a, BackwardB bwd_b) {
  const Shape out_shape = Shape::broadcast(a.shape(), b.shape());
  const Tensor ad = a.detach();
  const Tensor bd = b.detach();
  const Shape a_shape = a.shape();
  const Shape b_shape = b.shape();
  Tensor out = Tensor::make_result(
      out_shape, {a, b},
      [=](const Tensor& grad) -> std::vector<Tensor> {
        // Gradient in the broadcast shape, then reduced to each input.
        Tensor ga = Tensor::zeros(grad.shape());
        Tensor gb = Tensor::zeros(grad.shape());
        {
          // Evaluate d(out)/d(a) * grad and d(out)/d(b) * grad pointwise.
          const obs::prof::KernelScope prof(
              name, 4 * grad.numel(),
              5 * static_cast<std::int64_t>(sizeof(real)) * grad.numel(),
              ".bwd");
          const auto sa =
              ops_detail::broadcast_strides(a_shape, grad.shape());
          const auto sb =
              ops_detail::broadcast_strides(b_shape, grad.shape());
          const auto so = grad.shape().strides();
          const std::size_t rank = grad.rank();
          const real* pa = ad.data();
          const real* pb = bd.data();
          const real* pg = grad.data();
          real* pga = ga.data();
          real* pgb = gb.data();
          const std::int64_t n = grad.numel();
          parallel_for(
              0, n, kElementwiseGrain,
              [&, pa, pb, pg, pga, pgb](std::int64_t begin,
                                        std::int64_t end) {
                for (std::int64_t i = begin; i < end; ++i) {
                  std::int64_t rem = i;
                  std::int64_t oa = 0;
                  std::int64_t ob = 0;
                  for (std::size_t axis = 0; axis < rank; ++axis) {
                    const std::int64_t coord = rem / so[axis];
                    rem -= coord * so[axis];
                    oa += coord * sa[axis];
                    ob += coord * sb[axis];
                  }
                  pga[i] = bwd_a(pa[oa], pb[ob]) * pg[i];
                  pgb[i] = bwd_b(pa[oa], pb[ob]) * pg[i];
                }
              });
        }
        return {reduce_to(ga, a_shape), reduce_to(gb, b_shape)};
      },
      name);
  {
    const obs::prof::KernelScope prof(
        name, out.numel(),
        3 * static_cast<std::int64_t>(sizeof(real)) * out.numel());
    binary_broadcast(ad, bd, out, fwd);
  }
  return out;
}

/// Builds an elementwise unary op. `dfdx` receives the input value.
template <typename Forward, typename Derivative>
Tensor unary_op(const Tensor& x, const char* name, Forward fwd,
                Derivative dfdx) {
  const Tensor xd = x.detach();
  Tensor out = Tensor::make_result(
      x.shape(), {x},
      [=](const Tensor& grad) -> std::vector<Tensor> {
        Tensor gx = Tensor::zeros(grad.shape());
        const real* px = xd.data();
        const real* pg = grad.data();
        real* pgx = gx.data();
        const std::int64_t n = grad.numel();
        {
          const obs::prof::KernelScope prof(
              name, 2 * n, 3 * static_cast<std::int64_t>(sizeof(real)) * n,
              ".bwd");
          parallel_for(
              0, n, kElementwiseGrain,
              [&, px, pg, pgx](std::int64_t begin, std::int64_t end) {
                for (std::int64_t i = begin; i < end; ++i) {
                  pgx[i] = dfdx(px[i]) * pg[i];
                }
              });
        }
        return {gx};
      },
      name);
  const real* px = xd.data();
  real* po = out.data();
  const std::int64_t n = out.numel();
  {
    const obs::prof::KernelScope prof(
        name, n, 2 * static_cast<std::int64_t>(sizeof(real)) * n);
    parallel_for(
        0, n, kElementwiseGrain,
        [&, px, po](std::int64_t begin, std::int64_t end) {
          for (std::int64_t i = begin; i < end; ++i) po[i] = fwd(px[i]);
        });
  }
  return out;
}

real sigmoid_val(real v) { return real{1} / (real{1} + std::exp(-v)); }

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  SGNN_CHECK(a.defined() && b.defined(), "add requires defined inputs");
  const Shape a_shape = a.shape();
  const Shape b_shape = b.shape();
  Tensor out = Tensor::make_result(
      Shape::broadcast(a_shape, b_shape), {a, b},
      [=](const Tensor& grad) -> std::vector<Tensor> {
        return {reduce_to(grad, a_shape), reduce_to(grad, b_shape)};
      },
      "add");
  {
    const obs::prof::KernelScope prof(
        "add", out.numel(),
        3 * static_cast<std::int64_t>(sizeof(real)) * out.numel());
    binary_broadcast(a.detach(), b.detach(), out,
                     [](real x, real y) { return x + y; });
  }
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  SGNN_CHECK(a.defined() && b.defined(), "sub requires defined inputs");
  const Shape a_shape = a.shape();
  const Shape b_shape = b.shape();
  Tensor out = Tensor::make_result(
      Shape::broadcast(a_shape, b_shape), {a, b},
      [=](const Tensor& grad) -> std::vector<Tensor> {
        Tensor gneg = Tensor::zeros(grad.shape());
        const real* pg = grad.data();
        real* pn = gneg.data();
        const std::int64_t n = grad.numel();
        {
          const obs::prof::KernelScope prof(
              "sub", n, 2 * static_cast<std::int64_t>(sizeof(real)) * n,
              ".bwd");
          parallel_for(0, n, kElementwiseGrain,
                       [=](std::int64_t begin, std::int64_t end) {
                         for (std::int64_t i = begin; i < end; ++i) {
                           pn[i] = -pg[i];
                         }
                       });
        }
        return {reduce_to(grad, a_shape), reduce_to(gneg, b_shape)};
      },
      "sub");
  {
    const obs::prof::KernelScope prof(
        "sub", out.numel(),
        3 * static_cast<std::int64_t>(sizeof(real)) * out.numel());
    binary_broadcast(a.detach(), b.detach(), out,
                     [](real x, real y) { return x - y; });
  }
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  SGNN_CHECK(a.defined() && b.defined(), "mul requires defined inputs");
  return binary_op(
      a, b, "mul", [](real x, real y) { return x * y; },
      [](real, real y) { return y; }, [](real x, real) { return x; });
}

Tensor div(const Tensor& a, const Tensor& b) {
  SGNN_CHECK(a.defined() && b.defined(), "div requires defined inputs");
  return binary_op(
      a, b, "div", [](real x, real y) { return x / y; },
      [](real, real y) { return real{1} / y; },
      [](real x, real y) { return -x / (y * y); });
}

Tensor neg(const Tensor& x) {
  SGNN_CHECK(x.defined(), "neg requires a defined input");
  return unary_op(
      x, "neg", [](real v) { return -v; }, [](real) { return real{-1}; });
}

Tensor scale(const Tensor& x, real factor) {
  SGNN_CHECK(x.defined(), "scale requires a defined input");
  return unary_op(
      x, "scale", [factor](real v) { return factor * v; },
      [factor](real) { return factor; });
}

Tensor add_scalar(const Tensor& x, real value) {
  SGNN_CHECK(x.defined(), "add_scalar requires a defined input");
  return unary_op(
      x, "add_scalar", [value](real v) { return v + value; },
      [](real) { return real{1}; });
}

Tensor pow_scalar(const Tensor& x, real exponent) {
  SGNN_CHECK(x.defined(), "pow_scalar requires a defined input");
  return unary_op(
      x, "pow_scalar",
      [exponent](real v) { return std::pow(v, exponent); },
      [exponent](real v) { return exponent * std::pow(v, exponent - 1); });
}

Tensor square(const Tensor& x) {
  SGNN_CHECK(x.defined(), "square requires a defined input");
  return unary_op(
      x, "square", [](real v) { return v * v; },
      [](real v) { return 2 * v; });
}

Tensor sqrt_op(const Tensor& x) {
  SGNN_CHECK(x.defined(), "sqrt_op requires a defined input");
  return unary_op(
      x, "sqrt", [](real v) { return std::sqrt(v); },
      [](real v) { return real{0.5} / std::sqrt(v); });
}

Tensor exp_op(const Tensor& x) {
  SGNN_CHECK(x.defined(), "exp_op requires a defined input");
  return unary_op(
      x, "exp", [](real v) { return std::exp(v); },
      [](real v) { return std::exp(v); });
}

Tensor log_op(const Tensor& x) {
  SGNN_CHECK(x.defined(), "log_op requires a defined input");
  return unary_op(
      x, "log", [](real v) { return std::log(v); },
      [](real v) { return real{1} / v; });
}

Tensor abs_op(const Tensor& x) {
  SGNN_CHECK(x.defined(), "abs_op requires a defined input");
  return unary_op(
      x, "abs", [](real v) { return std::abs(v); },
      [](real v) { return v > 0 ? real{1} : (v < 0 ? real{-1} : real{0}); });
}

Tensor clamp_min(const Tensor& x, real bound) {
  SGNN_CHECK(x.defined(), "clamp_min requires a defined input");
  return unary_op(
      x, "clamp_min", [bound](real v) { return v > bound ? v : bound; },
      [bound](real v) { return v > bound ? real{1} : real{0}; });
}

Tensor relu(const Tensor& x) {
  SGNN_CHECK(x.defined(), "relu requires a defined input");
  return unary_op(
      x, "relu", [](real v) { return v > 0 ? v : real{0}; },
      [](real v) { return v > 0 ? real{1} : real{0}; });
}

Tensor sigmoid(const Tensor& x) {
  SGNN_CHECK(x.defined(), "sigmoid requires a defined input");
  return unary_op(
      x, "sigmoid", [](real v) { return sigmoid_val(v); },
      [](real v) {
        const real s = sigmoid_val(v);
        return s * (1 - s);
      });
}

Tensor tanh_op(const Tensor& x) {
  SGNN_CHECK(x.defined(), "tanh_op requires a defined input");
  return unary_op(
      x, "tanh", [](real v) { return std::tanh(v); },
      [](real v) {
        const real t = std::tanh(v);
        return 1 - t * t;
      });
}

Tensor silu(const Tensor& x) {
  SGNN_CHECK(x.defined(), "silu requires a defined input");
  return unary_op(
      x, "silu", [](real v) { return v * sigmoid_val(v); },
      [](real v) {
        const real s = sigmoid_val(v);
        return s * (1 + v * (1 - s));
      });
}

Tensor softplus(const Tensor& x) {
  SGNN_CHECK(x.defined(), "softplus requires a defined input");
  return unary_op(
      x, "softplus",
      [](real v) {
        // Stable softplus: max(v, 0) + log1p(exp(-|v|)).
        return (v > 0 ? v : real{0}) + std::log1p(std::exp(-std::abs(v)));
      },
      [](real v) { return sigmoid_val(v); });
}

Tensor row_norm_squared(const Tensor& x) {
  SGNN_CHECK(x.rank() == 2, "row_norm_squared requires rank-2 input, got "
                                << x.shape().to_string());
  return sum(square(x), /*axis=*/1, /*keepdim=*/true);
}

Tensor mse_loss(const Tensor& prediction, const Tensor& target) {
  SGNN_CHECK(prediction.shape() == target.shape(),
             "mse_loss shape mismatch: " << prediction.shape().to_string()
                                         << " vs "
                                         << target.shape().to_string());
  return mean(square(prediction - target.detach()));
}

}  // namespace sgnn
