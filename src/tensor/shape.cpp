#include "sgnn/tensor/shape.hpp"

#include <algorithm>

namespace sgnn {

Shape Shape::broadcast(const Shape& a, const Shape& b) {
  const std::size_t rank = std::max(a.rank(), b.rank());
  std::vector<std::int64_t> out(rank);
  for (std::size_t i = 0; i < rank; ++i) {
    const std::int64_t da =
        i < a.rank() ? a.dim(a.rank() - 1 - i) : 1;
    const std::int64_t db =
        i < b.rank() ? b.dim(b.rank() - 1 - i) : 1;
    SGNN_CHECK(da == db || da == 1 || db == 1,
               "shapes " << a.to_string() << " and " << b.to_string()
                         << " are not broadcastable");
    // A dim of 1 yields to the other side even when the other side is 0:
    // (0, h) + (1, h) -> (0, h). max() would resurrect the empty extent and
    // make downstream kernels index into storage that was never allocated.
    out[rank - 1 - i] = (da == 1) ? db : da;
  }
  return Shape(std::move(out));
}

bool Shape::broadcastable_to(const Shape& from, const Shape& to) {
  if (from.rank() > to.rank()) return false;
  for (std::size_t i = 0; i < from.rank(); ++i) {
    const std::int64_t df = from.dim(from.rank() - 1 - i);
    const std::int64_t dt = to.dim(to.rank() - 1 - i);
    if (df != dt && df != 1) return false;
  }
  return true;
}

}  // namespace sgnn
