#include <algorithm>

#include "ops_common.hpp"
#include "sgnn/obs/prof.hpp"
#include "sgnn/tensor/ops.hpp"

namespace sgnn {

Tensor reshape(const Tensor& x, const Shape& shape) {
  SGNN_CHECK(x.numel() == shape.numel(),
             "reshape " << x.shape().to_string() << " -> " << shape.to_string()
                        << " changes element count");
  const Shape x_shape = x.shape();
  const Tensor xd = x.detach();
  Tensor out = Tensor::make_result(
      shape, {x},
      [=](const Tensor& grad) -> std::vector<Tensor> {
        const obs::prof::KernelScope prof(
            "reshape", 0,
            obs::prof::sat_mul(2 * static_cast<std::int64_t>(sizeof(real)),
                               x_shape.numel()),
            ".bwd");
        Tensor gx = Tensor::zeros(x_shape);
        std::copy_n(grad.data(), static_cast<std::size_t>(grad.numel()),
                    gx.data());
        return {gx};
      },
      "reshape");
  const obs::prof::KernelScope prof(
      "reshape", 0,
      obs::prof::sat_mul(2 * static_cast<std::int64_t>(sizeof(real)),
                         xd.numel()));
  std::copy_n(xd.data(), static_cast<std::size_t>(xd.numel()), out.data());
  return out;
}

namespace {

struct AxisSplit {
  std::int64_t outer = 1;
  std::int64_t inner = 1;  ///< elements per unit of the concat axis
};

AxisSplit split_around(const Shape& shape, std::size_t axis) {
  AxisSplit s;
  for (std::size_t i = 0; i < axis; ++i) s.outer *= shape.dim(i);
  for (std::size_t i = axis + 1; i < shape.rank(); ++i) s.inner *= shape.dim(i);
  return s;
}

}  // namespace

Tensor concat(const std::vector<Tensor>& parts, std::size_t axis) {
  SGNN_CHECK(!parts.empty(), "concat of zero tensors");
  const Shape& first = parts.front().shape();
  SGNN_CHECK(axis < first.rank(),
             "concat axis " << axis << " out of range for rank "
                            << first.rank());
  std::int64_t axis_total = 0;
  for (const auto& p : parts) {
    SGNN_CHECK(p.rank() == first.rank(), "concat rank mismatch");
    for (std::size_t i = 0; i < first.rank(); ++i) {
      if (i == axis) continue;
      SGNN_CHECK(p.dim(i) == first.dim(i),
                 "concat shape mismatch on axis " << i << ": "
                     << p.shape().to_string() << " vs " << first.to_string());
    }
    axis_total += p.dim(axis);
  }
  std::vector<std::int64_t> out_dims = first.dims();
  out_dims[axis] = axis_total;
  const Shape out_shape{std::move(out_dims)};
  const AxisSplit s = split_around(out_shape, axis);

  std::vector<std::int64_t> part_axis_lens;
  part_axis_lens.reserve(parts.size());
  std::vector<Shape> part_shapes;
  part_shapes.reserve(parts.size());
  for (const auto& p : parts) {
    part_axis_lens.push_back(p.dim(axis));
    part_shapes.push_back(p.shape());
  }

  Tensor out = Tensor::make_result(
      out_shape, parts,
      [=](const Tensor& grad) -> std::vector<Tensor> {
        const obs::prof::KernelScope prof(
            "concat", 0,
            obs::prof::sat_mul(2 * static_cast<std::int64_t>(sizeof(real)),
                               grad.numel()),
            ".bwd");
        std::vector<Tensor> grads;
        grads.reserve(part_shapes.size());
        const real* pg = grad.data();
        std::int64_t axis_offset = 0;
        for (std::size_t pi = 0; pi < part_shapes.size(); ++pi) {
          Tensor gp = Tensor::zeros(part_shapes[pi]);
          real* pgp = gp.data();
          const std::int64_t len = part_axis_lens[pi];
          for (std::int64_t o = 0; o < s.outer; ++o) {
            const real* src =
                pg + (o * axis_total + axis_offset) * s.inner;
            real* dst = pgp + o * len * s.inner;
            std::copy_n(src, static_cast<std::size_t>(len * s.inner), dst);
          }
          axis_offset += len;
          grads.push_back(std::move(gp));
        }
        return grads;
      },
      "concat");

  const obs::prof::KernelScope prof(
      "concat", 0,
      obs::prof::sat_mul(2 * static_cast<std::int64_t>(sizeof(real)),
                         out.numel()));
  real* po = out.data();
  std::int64_t axis_offset = 0;
  for (const auto& p : parts) {
    const real* pp = p.data();
    const std::int64_t len = p.dim(axis);
    for (std::int64_t o = 0; o < s.outer; ++o) {
      const real* src = pp + o * len * s.inner;
      real* dst = po + (o * axis_total + axis_offset) * s.inner;
      std::copy_n(src, static_cast<std::size_t>(len * s.inner), dst);
    }
    axis_offset += len;
  }
  return out;
}

Tensor narrow(const Tensor& x, std::size_t axis, std::int64_t start,
              std::int64_t length) {
  const Shape x_shape = x.shape();
  SGNN_CHECK(axis < x_shape.rank(),
             "narrow axis " << axis << " out of range for "
                            << x_shape.to_string());
  SGNN_CHECK(start >= 0 && length >= 0 && start + length <= x_shape.dim(axis),
             "narrow range [" << start << ", " << start + length
                              << ") out of bounds for axis " << axis << " of "
                              << x_shape.to_string());
  std::vector<std::int64_t> out_dims = x_shape.dims();
  out_dims[axis] = length;
  const Shape out_shape{std::move(out_dims)};
  const AxisSplit s = split_around(x_shape, axis);
  const std::int64_t axis_len = x_shape.dim(axis);
  const Tensor xd = x.detach();

  Tensor out = Tensor::make_result(
      out_shape, {x},
      [=](const Tensor& grad) -> std::vector<Tensor> {
        // Zero-fill of the full input extent plus the copied slice.
        const obs::prof::KernelScope prof(
            "narrow", 0,
            obs::prof::sat_mul(
                static_cast<std::int64_t>(sizeof(real)),
                obs::prof::sat_add(x_shape.numel(), grad.numel())),
            ".bwd");
        Tensor gx = Tensor::zeros(x_shape);
        real* pgx = gx.data();
        const real* pg = grad.data();
        for (std::int64_t o = 0; o < s.outer; ++o) {
          const real* src = pg + o * length * s.inner;
          real* dst = pgx + (o * axis_len + start) * s.inner;
          std::copy_n(src, static_cast<std::size_t>(length * s.inner), dst);
        }
        return {gx};
      },
      "narrow");

  const obs::prof::KernelScope prof(
      "narrow", 0,
      obs::prof::sat_mul(2 * static_cast<std::int64_t>(sizeof(real)),
                         out.numel()));
  const real* px = xd.data();
  real* po = out.data();
  for (std::int64_t o = 0; o < s.outer; ++o) {
    const real* src = px + (o * axis_len + start) * s.inner;
    real* dst = po + o * length * s.inner;
    std::copy_n(src, static_cast<std::size_t>(length * s.inner), dst);
  }
  return out;
}

}  // namespace sgnn
