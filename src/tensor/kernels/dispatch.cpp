// Backend/dtype selection and the threaded kernel drivers. This TU is
// compiled with the project's baseline flags; the only ISA-specific code it
// touches is behind the function pointers in the backend tables.

#include <atomic>
#include <cstdlib>
#include <string>
#include <vector>

#include "kernels_internal.hpp"
// sgnn-lint: allow(layering): metrics is the any-layer instrumentation sink;
// dispatch only publishes the selected-backend gauge through it.
#include "sgnn/obs/metrics.hpp"
#include "sgnn/tensor/kernels.hpp"
#include "sgnn/util/error.hpp"
#include "sgnn/util/logging.hpp"
#include "sgnn/util/thread_pool.hpp"

namespace sgnn::kernels {

namespace {

/// Grain for plain elementwise loops; matches ops_detail::kElementwiseGrain.
constexpr std::int64_t kGrain = 1 << 15;

// Scoped test overrides; -1 means "no override". Plain globals guarded by
// the single-threaded-setup contract documented on ScopedBackend.
std::atomic<int> g_backend_override{-1};
std::atomic<int> g_dtype_override{-1};

bool cpu_has_simd() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#elif defined(__aarch64__)
  return true;  // NEON is baseline on AArch64.
#else
  return false;
#endif
}

Backend detect_backend() {
  const char* env = std::getenv("SGNN_BACKEND");
  if (env != nullptr && *env != '\0') {
    const std::string value(env);
    if (value == "scalar") return Backend::kScalar;
    SGNN_CHECK(value == "simd", "unknown SGNN_BACKEND value '"
                                    << value << "' (expected scalar|simd)");
    if (!simd_available()) {
      SGNN_LOG_WARN << "SGNN_BACKEND=simd requested but this build/CPU has "
                       "no SIMD support; falling back to the scalar backend";
      return Backend::kScalar;
    }
    return Backend::kSimd;
  }
  return simd_available() ? Backend::kSimd : Backend::kScalar;
}

ComputeDtype detect_dtype() {
  const char* env = std::getenv("SGNN_COMPUTE_DTYPE");
  if (env != nullptr && *env != '\0') {
    const std::string value(env);
    if (value == "float64" || value == "fp64") return ComputeDtype::kFloat64;
    SGNN_CHECK(value == "float32" || value == "fp32",
               "unknown SGNN_COMPUTE_DTYPE value '"
                   << value << "' (expected float32|float64)");
    return ComputeDtype::kFloat32;
  }
  return ComputeDtype::kFloat64;
}

Backend process_backend() {
  static const Backend backend = [] {
    const Backend selected = detect_backend();
    obs::MetricsRegistry::instance()
        .gauge("kernels.backend_simd")
        .set(selected == Backend::kSimd ? 1.0 : 0.0);
    SGNN_LOG_DEBUG << "kernel backend: " << backend_name(selected)
                   << " (simd_available=" << (simd_available() ? 1 : 0)
                   << ")";
    return selected;
  }();
  return backend;
}

ComputeDtype process_dtype() {
  static const ComputeDtype dtype = [] {
    const ComputeDtype selected = detect_dtype();
    obs::MetricsRegistry::instance()
        .gauge("kernels.compute_fp32")
        .set(selected == ComputeDtype::kFloat32 ? 1.0 : 0.0);
    return selected;
  }();
  return dtype;
}

void cast_to_float(const real* src, float* dst, std::int64_t n) {
  parallel_for(0, n, kGrain, [=](std::int64_t begin, std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i) {
      dst[i] = static_cast<float>(src[i]);
    }
  });
}

void widen_from_float(const float* src, real* dst, std::int64_t n) {
  parallel_for(0, n, kGrain, [=](std::int64_t begin, std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i) {
      dst[i] = static_cast<real>(src[i]);
    }
  });
}

}  // namespace

bool simd_available() { return simd_table_vectorized() && cpu_has_simd(); }

Backend active_backend() {
  const int forced = g_backend_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Backend>(forced);
  return process_backend();
}

ComputeDtype active_compute_dtype() {
  const int forced = g_dtype_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<ComputeDtype>(forced);
  return process_dtype();
}

const KernelTable& active_table() {
  return active_backend() == Backend::kSimd ? simd_table() : scalar_table();
}

const char* backend_name(Backend backend) {
  return backend == Backend::kSimd ? "simd" : "scalar";
}

const char* dtype_name(ComputeDtype dtype) {
  return dtype == ComputeDtype::kFloat32 ? "float32" : "float64";
}

std::int64_t compute_element_size() {
  return active_compute_dtype() == ComputeDtype::kFloat32
             ? static_cast<std::int64_t>(sizeof(float))
             : static_cast<std::int64_t>(sizeof(real));
}

ScopedBackend::ScopedBackend(Backend backend) {
  SGNN_CHECK(backend != Backend::kSimd || simd_available(),
             "ScopedBackend(kSimd) on a build/CPU without SIMD support");
  previous_ = g_backend_override.exchange(static_cast<int>(backend),
                                          std::memory_order_relaxed);
}

ScopedBackend::~ScopedBackend() {
  g_backend_override.store(previous_, std::memory_order_relaxed);
}

ScopedComputeDtype::ScopedComputeDtype(ComputeDtype dtype) {
  previous_ = g_dtype_override.exchange(static_cast<int>(dtype),
                                        std::memory_order_relaxed);
}

ScopedComputeDtype::~ScopedComputeDtype() {
  g_dtype_override.store(previous_, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Drivers. Sharding uses the same deterministic parallel_for chunking as the
// historical op loops, so band boundaries — and therefore results — are
// independent of the pool size within one backend.

/// Minimum rows per matmul chunk. parallel_grain() clamps to 1 once a row
/// costs more than kParallelMinWork, but the matmul kernels block two A
/// rows per B pass (and the SIMD backend packs B panels per call) — both
/// are defeated by 1-row chunks. Chunking stays a pure function of the
/// shape, and every C row is computed independently, so the floor cannot
/// change results.
constexpr std::int64_t kMatmulRowGrain = 16;

inline std::int64_t matmul_grain(std::int64_t work_per_row) {
  const std::int64_t grain = parallel_grain(work_per_row);
  return grain < kMatmulRowGrain ? kMatmulRowGrain : grain;
}

// sgnn-lint: allow(kernel-prof): backend-dispatch alias of the public op;
// the ops-layer matmul (ops_linalg.cpp) owns the KernelScope, and opening a
// second one here would double-book every matmul in the roofline report.
void matmul(const real* a, const real* b, real* c, std::int64_t m,
            std::int64_t k, std::int64_t n) {
  SGNN_CHECK(m >= 0 && k >= 0 && n >= 0,
             "kernels::matmul requires non-negative extents, got m=" << m
                 << " k=" << k << " n=" << n);
  const KernelTable& t = active_table();
  if (active_compute_dtype() == ComputeDtype::kFloat64) {
    parallel_for(0, m, matmul_grain(k * n),
                 [=, &t](std::int64_t row_begin, std::int64_t row_end) {
                   t.matmul_rows_f64(a, b, c, k, n, row_begin, row_end);
                 });
    return;
  }
  // fp32 compute: one-time casts (O(mk + kn + mn)) bound the conversion
  // cost; the O(mkn) inner product runs on float panels with float
  // accumulation. Scratch is untracked transient memory.
  std::vector<float> fa(static_cast<std::size_t>(m * k));
  std::vector<float> fb(static_cast<std::size_t>(k * n));
  std::vector<float> fc(static_cast<std::size_t>(m * n));
  cast_to_float(a, fa.data(), m * k);
  cast_to_float(b, fb.data(), k * n);
  const float* fap = fa.data();
  const float* fbp = fb.data();
  float* fcp = fc.data();
  parallel_for(0, m, matmul_grain(k * n),
               [=, &t](std::int64_t row_begin, std::int64_t row_end) {
                 t.matmul_rows_f32(fap, fbp, fcp, k, n, row_begin, row_end);
               });
  widen_from_float(fcp, c, m * n);
}

void matmul_at_b(const real* a, const real* b, real* c, std::int64_t m,
                 std::int64_t k, std::int64_t n) {
  const KernelTable& t = active_table();
  if (active_compute_dtype() == ComputeDtype::kFloat64) {
    parallel_for(0, k, matmul_grain(m * n),
                 [=, &t](std::int64_t row_begin, std::int64_t row_end) {
                   t.matmul_at_b_band_f64(a, b, c, m, k, n, row_begin,
                                          row_end);
                 });
    return;
  }
  std::vector<float> fa(static_cast<std::size_t>(m * k));
  std::vector<float> fb(static_cast<std::size_t>(m * n));
  std::vector<float> fc(static_cast<std::size_t>(k * n));
  cast_to_float(a, fa.data(), m * k);
  cast_to_float(b, fb.data(), m * n);
  const float* fap = fa.data();
  const float* fbp = fb.data();
  float* fcp = fc.data();
  parallel_for(0, k, matmul_grain(m * n),
               [=, &t](std::int64_t row_begin, std::int64_t row_end) {
                 t.matmul_at_b_band_f32(fap, fbp, fcp, m, k, n, row_begin,
                                        row_end);
               });
  widen_from_float(fcp, c, k * n);
}

void matmul_a_bt(const real* a, const real* b, real* c, std::int64_t m,
                 std::int64_t n, std::int64_t k) {
  const KernelTable& t = active_table();
  if (active_compute_dtype() == ComputeDtype::kFloat64) {
    parallel_for(0, m, parallel_grain(n * k),
                 [=, &t](std::int64_t row_begin, std::int64_t row_end) {
                   t.matmul_a_bt_rows_f64(a, b, c, n, k, row_begin, row_end);
                 });
    return;
  }
  std::vector<float> fa(static_cast<std::size_t>(m * n));
  std::vector<float> fb(static_cast<std::size_t>(k * n));
  std::vector<float> fc(static_cast<std::size_t>(m * k));
  cast_to_float(a, fa.data(), m * n);
  cast_to_float(b, fb.data(), k * n);
  const float* fap = fa.data();
  const float* fbp = fb.data();
  float* fcp = fc.data();
  parallel_for(0, m, parallel_grain(n * k),
               [=, &t](std::int64_t row_begin, std::int64_t row_end) {
                 t.matmul_a_bt_rows_f32(fap, fbp, fcp, n, k, row_begin,
                                        row_end);
               });
  widen_from_float(fcp, c, m * k);
}

void binary(BinaryOp op, const real* a, const real* b, real* out,
            std::int64_t n) {
  const KernelTable& t = active_table();
  const auto fn = active_compute_dtype() == ComputeDtype::kFloat32
                      ? t.binary_f32
                      : t.binary_f64;
  parallel_for(0, n, kGrain, [=](std::int64_t begin, std::int64_t end) {
    fn(op, a + begin, b + begin, out + begin, end - begin);
  });
}

void binary_scalar_l(BinaryOp op, real a, const real* b, real* out,
                     std::int64_t n) {
  const KernelTable& t = active_table();
  const auto fn = active_compute_dtype() == ComputeDtype::kFloat32
                      ? t.binary_scalar_l_f32
                      : t.binary_scalar_l_f64;
  parallel_for(0, n, kGrain, [=](std::int64_t begin, std::int64_t end) {
    fn(op, a, b + begin, out + begin, end - begin);
  });
}

void binary_scalar_r(BinaryOp op, const real* a, real b, real* out,
                     std::int64_t n) {
  const KernelTable& t = active_table();
  const auto fn = active_compute_dtype() == ComputeDtype::kFloat32
                      ? t.binary_scalar_r_f32
                      : t.binary_scalar_r_f64;
  parallel_for(0, n, kGrain, [=](std::int64_t begin, std::int64_t end) {
    fn(op, a + begin, b, out + begin, end - begin);
  });
}

void binary_backward(BinaryOp op, const real* a, const real* b, const real* g,
                     real* ga, real* gb, std::int64_t n) {
  const KernelTable& t = active_table();
  const auto fn = active_compute_dtype() == ComputeDtype::kFloat32
                      ? t.binary_bwd_f32
                      : t.binary_bwd_f64;
  parallel_for(0, n, kGrain, [=](std::int64_t begin, std::int64_t end) {
    fn(op, a + begin, b + begin, g + begin, ga + begin, gb + begin,
       end - begin);
  });
}

void unary(UnaryOp op, const real* x, real* out, real c, std::int64_t n) {
  const KernelTable& t = active_table();
  const auto fn = active_compute_dtype() == ComputeDtype::kFloat32
                      ? t.unary_f32
                      : t.unary_f64;
  parallel_for(0, n, kGrain, [=](std::int64_t begin, std::int64_t end) {
    fn(op, x + begin, out + begin, c, end - begin);
  });
}

void unary_backward(UnaryOp op, const real* x, const real* g, real* gx,
                    real c, std::int64_t n) {
  const KernelTable& t = active_table();
  const auto fn = active_compute_dtype() == ComputeDtype::kFloat32
                      ? t.unary_bwd_f32
                      : t.unary_bwd_f64;
  parallel_for(0, n, kGrain, [=](std::int64_t begin, std::int64_t end) {
    fn(op, x + begin, g + begin, gx + begin, c, end - begin);
  });
}

double reduce_sum(const real* x, std::int64_t n) {
  const KernelTable& t = active_table();
  const auto fn = active_compute_dtype() == ComputeDtype::kFloat32
                      ? t.sum_chunk_f32
                      : t.sum_chunk_f64;
  return parallel_reduce_sum(0, n, kGrain,
                             [=](std::int64_t begin, std::int64_t end) {
                               return fn(x + begin, end - begin);
                             });
}

void accumulate(const real* src, real* dst, std::int64_t n) {
  const KernelTable& t = active_table();
  const auto fn = active_compute_dtype() == ComputeDtype::kFloat32
                      ? t.accumulate_f32
                      : t.accumulate_f64;
  fn(src, dst, n);
}

}  // namespace sgnn::kernels
