#pragma once

// Internal glue between the kernel backend TUs and the dispatcher. Not
// installed; the public surface is include/sgnn/tensor/kernels.hpp.

namespace sgnn::kernels {

/// True when kernels_simd.cpp was compiled with an actual vector ISA
/// (AVX2+FMA or NEON); false when its table aliases the scalar reference.
bool simd_table_vectorized();

}  // namespace sgnn::kernels
