#pragma once

// Templated scalar reference kernels shared by both backend TUs: the scalar
// table instantiates them as-is, the SIMD table uses them for remainder
// lanes and for the transcendental ops it does not vectorize (so scalar and
// SIMD results agree bit-for-bit there by construction).
//
// Everything lives in an anonymous namespace ON PURPOSE: each backend TU
// gets its own internal-linkage copies, so the scalar table can never end up
// linked against instantiations compiled with the SIMD TU's stricter ISA
// flags (the classic static-archive -mavx2 ODR hazard).
//
// The compute type `C` implements the mixed-precision semantics: C=double is
// the plain fp64 path; C=float rounds every operand through float and widens
// the float-precision result back into the double storage (master data stays
// fp64). Reductions always carry a double accumulator; under C=float only
// the inputs are rounded (documented in docs/kernels.md).

#include <cmath>
#include <cstdint>

#include "sgnn/tensor/kernels.hpp"

namespace sgnn::kernels {
namespace {

// ---------------------------------------------------------------------------
// Matmul bands. No zero-skip on `av` anywhere: 0 × Inf and 0 × NaN must
// propagate per IEEE 754 (the PR 7 headline bugfix — a skip would report a
// finite product where a non-skipping backend correctly surfaces NaN).

/// C(m,n) = A(m,k) @ B(k,n), rows [row_begin, row_end). ikj order keeps the
/// inner loop contiguous in both B and C; each C element accumulates over p
/// in ascending order.
template <typename T>
void matmul_rows_ref(const T* a, const T* b, T* c, std::int64_t k,
                     std::int64_t n, std::int64_t row_begin,
                     std::int64_t row_end) {
  for (std::int64_t i = row_begin; i < row_end; ++i) {
    T* crow = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) crow[j] = 0;
    for (std::int64_t p = 0; p < k; ++p) {
      const T av = a[i * k + p];
      const T* brow = b + p * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

/// C(k,n) = Aᵀ @ B with A (m,k), B (m,n); rows [row_begin, row_end) of C.
/// p stays outermost so B rows stream contiguously once per band; per
/// element the accumulation order over p matches matmul_rows_ref.
template <typename T>
void matmul_at_b_band_ref(const T* a, const T* b, T* c, std::int64_t m,
                          std::int64_t k, std::int64_t n,
                          std::int64_t row_begin, std::int64_t row_end) {
  for (std::int64_t i = row_begin * n; i < row_end * n; ++i) c[i] = 0;
  for (std::int64_t p = 0; p < m; ++p) {
    const T* arow = a + p * k;
    const T* brow = b + p * n;
    for (std::int64_t i = row_begin; i < row_end; ++i) {
      const T av = arow[i];
      T* crow = c + i * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

/// C(m,k) = A(m,n) @ Bᵀ with B (k,n); rows [row_begin, row_end) of C.
template <typename T>
void matmul_a_bt_rows_ref(const T* a, const T* b, T* c, std::int64_t n,
                          std::int64_t k, std::int64_t row_begin,
                          std::int64_t row_end) {
  for (std::int64_t i = row_begin; i < row_end; ++i) {
    const T* arow = a + i * n;
    T* crow = c + i * k;
    for (std::int64_t j = 0; j < k; ++j) {
      const T* brow = b + j * n;
      T acc = 0;
      for (std::int64_t p = 0; p < n; ++p) acc += arow[p] * brow[p];
      crow[j] = acc;
    }
  }
}

// ---------------------------------------------------------------------------
// Elementwise. Formulas are kept textually identical to the historical op
// lambdas so the fp64 path reproduces them bit-for-bit.

template <typename C>
C sigmoid_val_ref(C v) {
  return C{1} / (C{1} + std::exp(-v));
}

template <typename C>
void binary_ref(BinaryOp op, const real* a, const real* b, real* out,
                std::int64_t n) {
  switch (op) {
    case BinaryOp::kAdd:
      for (std::int64_t i = 0; i < n; ++i) {
        out[i] = static_cast<real>(static_cast<C>(a[i]) +
                                   static_cast<C>(b[i]));
      }
      return;
    case BinaryOp::kSub:
      for (std::int64_t i = 0; i < n; ++i) {
        out[i] = static_cast<real>(static_cast<C>(a[i]) -
                                   static_cast<C>(b[i]));
      }
      return;
    case BinaryOp::kMul:
      for (std::int64_t i = 0; i < n; ++i) {
        out[i] = static_cast<real>(static_cast<C>(a[i]) *
                                   static_cast<C>(b[i]));
      }
      return;
    case BinaryOp::kDiv:
      for (std::int64_t i = 0; i < n; ++i) {
        out[i] = static_cast<real>(static_cast<C>(a[i]) /
                                   static_cast<C>(b[i]));
      }
      return;
  }
}

template <typename C>
void binary_scalar_l_ref(BinaryOp op, real a, const real* b, real* out,
                         std::int64_t n) {
  const C av = static_cast<C>(a);
  switch (op) {
    case BinaryOp::kAdd:
      for (std::int64_t i = 0; i < n; ++i) {
        out[i] = static_cast<real>(av + static_cast<C>(b[i]));
      }
      return;
    case BinaryOp::kSub:
      for (std::int64_t i = 0; i < n; ++i) {
        out[i] = static_cast<real>(av - static_cast<C>(b[i]));
      }
      return;
    case BinaryOp::kMul:
      for (std::int64_t i = 0; i < n; ++i) {
        out[i] = static_cast<real>(av * static_cast<C>(b[i]));
      }
      return;
    case BinaryOp::kDiv:
      for (std::int64_t i = 0; i < n; ++i) {
        out[i] = static_cast<real>(av / static_cast<C>(b[i]));
      }
      return;
  }
}

template <typename C>
void binary_scalar_r_ref(BinaryOp op, const real* a, real b, real* out,
                         std::int64_t n) {
  const C bv = static_cast<C>(b);
  switch (op) {
    case BinaryOp::kAdd:
      for (std::int64_t i = 0; i < n; ++i) {
        out[i] = static_cast<real>(static_cast<C>(a[i]) + bv);
      }
      return;
    case BinaryOp::kSub:
      for (std::int64_t i = 0; i < n; ++i) {
        out[i] = static_cast<real>(static_cast<C>(a[i]) - bv);
      }
      return;
    case BinaryOp::kMul:
      for (std::int64_t i = 0; i < n; ++i) {
        out[i] = static_cast<real>(static_cast<C>(a[i]) * bv);
      }
      return;
    case BinaryOp::kDiv:
      for (std::int64_t i = 0; i < n; ++i) {
        out[i] = static_cast<real>(static_cast<C>(a[i]) / bv);
      }
      return;
  }
}

template <typename C>
void binary_bwd_ref(BinaryOp op, const real* a, const real* b, const real* g,
                    real* ga, real* gb, std::int64_t n) {
  switch (op) {
    case BinaryOp::kAdd:
      for (std::int64_t i = 0; i < n; ++i) {
        const C gg = static_cast<C>(g[i]);
        ga[i] = static_cast<real>(C{1} * gg);
        gb[i] = static_cast<real>(C{1} * gg);
      }
      return;
    case BinaryOp::kSub:
      for (std::int64_t i = 0; i < n; ++i) {
        const C gg = static_cast<C>(g[i]);
        ga[i] = static_cast<real>(C{1} * gg);
        gb[i] = static_cast<real>(C{-1} * gg);
      }
      return;
    case BinaryOp::kMul:
      for (std::int64_t i = 0; i < n; ++i) {
        const C gg = static_cast<C>(g[i]);
        ga[i] = static_cast<real>(static_cast<C>(b[i]) * gg);
        gb[i] = static_cast<real>(static_cast<C>(a[i]) * gg);
      }
      return;
    case BinaryOp::kDiv:
      for (std::int64_t i = 0; i < n; ++i) {
        const C x = static_cast<C>(a[i]);
        const C y = static_cast<C>(b[i]);
        const C gg = static_cast<C>(g[i]);
        ga[i] = static_cast<real>((C{1} / y) * gg);
        gb[i] = static_cast<real>((-x / (y * y)) * gg);
      }
      return;
  }
}

template <typename C>
void unary_ref(UnaryOp op, const real* x, real* out, real c, std::int64_t n) {
  const C cc = static_cast<C>(c);
  switch (op) {
    case UnaryOp::kNeg:
      for (std::int64_t i = 0; i < n; ++i) {
        out[i] = static_cast<real>(-static_cast<C>(x[i]));
      }
      return;
    case UnaryOp::kScale:
      for (std::int64_t i = 0; i < n; ++i) {
        out[i] = static_cast<real>(cc * static_cast<C>(x[i]));
      }
      return;
    case UnaryOp::kAddScalar:
      for (std::int64_t i = 0; i < n; ++i) {
        out[i] = static_cast<real>(static_cast<C>(x[i]) + cc);
      }
      return;
    case UnaryOp::kPow:
      for (std::int64_t i = 0; i < n; ++i) {
        out[i] = static_cast<real>(std::pow(static_cast<C>(x[i]), cc));
      }
      return;
    case UnaryOp::kSquare:
      for (std::int64_t i = 0; i < n; ++i) {
        const C v = static_cast<C>(x[i]);
        out[i] = static_cast<real>(v * v);
      }
      return;
    case UnaryOp::kSqrt:
      for (std::int64_t i = 0; i < n; ++i) {
        out[i] = static_cast<real>(std::sqrt(static_cast<C>(x[i])));
      }
      return;
    case UnaryOp::kExp:
      for (std::int64_t i = 0; i < n; ++i) {
        out[i] = static_cast<real>(std::exp(static_cast<C>(x[i])));
      }
      return;
    case UnaryOp::kLog:
      for (std::int64_t i = 0; i < n; ++i) {
        out[i] = static_cast<real>(std::log(static_cast<C>(x[i])));
      }
      return;
    case UnaryOp::kAbs:
      for (std::int64_t i = 0; i < n; ++i) {
        out[i] = static_cast<real>(std::abs(static_cast<C>(x[i])));
      }
      return;
    case UnaryOp::kClampMin:
      for (std::int64_t i = 0; i < n; ++i) {
        const C v = static_cast<C>(x[i]);
        out[i] = static_cast<real>(v > cc ? v : cc);
      }
      return;
    case UnaryOp::kRelu:
      for (std::int64_t i = 0; i < n; ++i) {
        const C v = static_cast<C>(x[i]);
        out[i] = static_cast<real>(v > 0 ? v : C{0});
      }
      return;
    case UnaryOp::kSigmoid:
      for (std::int64_t i = 0; i < n; ++i) {
        out[i] = static_cast<real>(sigmoid_val_ref(static_cast<C>(x[i])));
      }
      return;
    case UnaryOp::kTanh:
      for (std::int64_t i = 0; i < n; ++i) {
        out[i] = static_cast<real>(std::tanh(static_cast<C>(x[i])));
      }
      return;
    case UnaryOp::kSilu:
      for (std::int64_t i = 0; i < n; ++i) {
        const C v = static_cast<C>(x[i]);
        out[i] = static_cast<real>(v * sigmoid_val_ref(v));
      }
      return;
    case UnaryOp::kSoftplus:
      for (std::int64_t i = 0; i < n; ++i) {
        // Stable softplus: max(v, 0) + log1p(exp(-|v|)).
        const C v = static_cast<C>(x[i]);
        out[i] = static_cast<real>((v > 0 ? v : C{0}) +
                                   std::log1p(std::exp(-std::abs(v))));
      }
      return;
  }
}

template <typename C>
void unary_bwd_ref(UnaryOp op, const real* x, const real* g, real* gx, real c,
                   std::int64_t n) {
  const C cc = static_cast<C>(c);
  switch (op) {
    case UnaryOp::kNeg:
      for (std::int64_t i = 0; i < n; ++i) {
        gx[i] = static_cast<real>(C{-1} * static_cast<C>(g[i]));
      }
      return;
    case UnaryOp::kScale:
      for (std::int64_t i = 0; i < n; ++i) {
        gx[i] = static_cast<real>(cc * static_cast<C>(g[i]));
      }
      return;
    case UnaryOp::kAddScalar:
      for (std::int64_t i = 0; i < n; ++i) {
        gx[i] = static_cast<real>(C{1} * static_cast<C>(g[i]));
      }
      return;
    case UnaryOp::kPow:
      for (std::int64_t i = 0; i < n; ++i) {
        const C v = static_cast<C>(x[i]);
        gx[i] = static_cast<real>((cc * std::pow(v, cc - C{1})) *
                                  static_cast<C>(g[i]));
      }
      return;
    case UnaryOp::kSquare:
      for (std::int64_t i = 0; i < n; ++i) {
        gx[i] = static_cast<real>((C{2} * static_cast<C>(x[i])) *
                                  static_cast<C>(g[i]));
      }
      return;
    case UnaryOp::kSqrt:
      for (std::int64_t i = 0; i < n; ++i) {
        gx[i] = static_cast<real>(
            (C{0.5} / std::sqrt(static_cast<C>(x[i]))) *
            static_cast<C>(g[i]));
      }
      return;
    case UnaryOp::kExp:
      for (std::int64_t i = 0; i < n; ++i) {
        gx[i] = static_cast<real>(std::exp(static_cast<C>(x[i])) *
                                  static_cast<C>(g[i]));
      }
      return;
    case UnaryOp::kLog:
      for (std::int64_t i = 0; i < n; ++i) {
        gx[i] = static_cast<real>((C{1} / static_cast<C>(x[i])) *
                                  static_cast<C>(g[i]));
      }
      return;
    case UnaryOp::kAbs:
      for (std::int64_t i = 0; i < n; ++i) {
        const C v = static_cast<C>(x[i]);
        gx[i] = static_cast<real>(
            (v > 0 ? C{1} : (v < 0 ? C{-1} : C{0})) * static_cast<C>(g[i]));
      }
      return;
    case UnaryOp::kClampMin:
      for (std::int64_t i = 0; i < n; ++i) {
        const C v = static_cast<C>(x[i]);
        gx[i] = static_cast<real>((v > cc ? C{1} : C{0}) *
                                  static_cast<C>(g[i]));
      }
      return;
    case UnaryOp::kRelu:
      for (std::int64_t i = 0; i < n; ++i) {
        const C v = static_cast<C>(x[i]);
        gx[i] =
            static_cast<real>((v > 0 ? C{1} : C{0}) * static_cast<C>(g[i]));
      }
      return;
    case UnaryOp::kSigmoid:
      for (std::int64_t i = 0; i < n; ++i) {
        const C s = sigmoid_val_ref(static_cast<C>(x[i]));
        gx[i] = static_cast<real>((s * (C{1} - s)) * static_cast<C>(g[i]));
      }
      return;
    case UnaryOp::kTanh:
      for (std::int64_t i = 0; i < n; ++i) {
        const C t = std::tanh(static_cast<C>(x[i]));
        gx[i] = static_cast<real>((C{1} - t * t) * static_cast<C>(g[i]));
      }
      return;
    case UnaryOp::kSilu:
      for (std::int64_t i = 0; i < n; ++i) {
        const C v = static_cast<C>(x[i]);
        const C s = sigmoid_val_ref(v);
        gx[i] = static_cast<real>((s * (C{1} + v * (C{1} - s))) *
                                  static_cast<C>(g[i]));
      }
      return;
    case UnaryOp::kSoftplus:
      for (std::int64_t i = 0; i < n; ++i) {
        gx[i] = static_cast<real>(sigmoid_val_ref(static_cast<C>(x[i])) *
                                  static_cast<C>(g[i]));
      }
      return;
  }
}

// ---------------------------------------------------------------------------
// Reductions: fp64 accumulator in both flavours; C=float rounds each input.

template <typename C>
double sum_chunk_ref(const real* x, std::int64_t n) {
  double acc = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    acc += static_cast<double>(static_cast<C>(x[i]));
  }
  return acc;
}

template <typename C>
void accumulate_ref(const real* src, real* dst, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    dst[i] += static_cast<real>(static_cast<C>(src[i]));
  }
}

}  // namespace
}  // namespace sgnn::kernels
