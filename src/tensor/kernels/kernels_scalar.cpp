// The scalar reference backend: straight instantiations of the shared
// reference kernels. This TU is compiled with the project's baseline flags
// (no -m<isa> options), so the scalar table runs on any target CPU.

#include "kernels_impl.hpp"
#include "sgnn/tensor/kernels.hpp"

namespace sgnn::kernels {

const KernelTable& scalar_table() {
  static const KernelTable table = {
      /*matmul_rows_f64=*/matmul_rows_ref<real>,
      /*matmul_rows_f32=*/matmul_rows_ref<float>,
      /*matmul_at_b_band_f64=*/matmul_at_b_band_ref<real>,
      /*matmul_at_b_band_f32=*/matmul_at_b_band_ref<float>,
      /*matmul_a_bt_rows_f64=*/matmul_a_bt_rows_ref<real>,
      /*matmul_a_bt_rows_f32=*/matmul_a_bt_rows_ref<float>,
      /*binary_f64=*/binary_ref<double>,
      /*binary_f32=*/binary_ref<float>,
      /*binary_scalar_l_f64=*/binary_scalar_l_ref<double>,
      /*binary_scalar_l_f32=*/binary_scalar_l_ref<float>,
      /*binary_scalar_r_f64=*/binary_scalar_r_ref<double>,
      /*binary_scalar_r_f32=*/binary_scalar_r_ref<float>,
      /*binary_bwd_f64=*/binary_bwd_ref<double>,
      /*binary_bwd_f32=*/binary_bwd_ref<float>,
      /*unary_f64=*/unary_ref<double>,
      /*unary_f32=*/unary_ref<float>,
      /*unary_bwd_f64=*/unary_bwd_ref<double>,
      /*unary_bwd_f32=*/unary_bwd_ref<float>,
      /*sum_chunk_f64=*/sum_chunk_ref<double>,
      /*sum_chunk_f32=*/sum_chunk_ref<float>,
      /*accumulate_f64=*/accumulate_ref<double>,
      /*accumulate_f32=*/accumulate_ref<float>,
  };
  return table;
}

}  // namespace sgnn::kernels
