// The vectorized kernel backend. On x86-64 this TU (and only this TU) is
// compiled with -mavx2 -mfma (see src/CMakeLists.txt); on AArch64 NEON is
// baseline. All vector code goes through the portable wrapper in
// simd_wrapper.hpp — no raw intrinsics here (sgnn_lint rule R6).
//
// Bit-identity with the scalar backend (see docs/kernels.md):
//   * matmul_rows / matmul_at_b_band keep each output element's ascending-p
//     accumulation with separate mul+add (no FMA) — bit-identical.
//   * elementwise kernels perform the same per-lane IEEE operation —
//     bit-identical; transcendentals fall back to the shared reference
//     kernels — bit-identical by construction.
//   * matmul_a_bt_rows and sum_chunk split the reduction across lanes
//     (deterministically, independent of thread count) — documented
//     tolerance vs. scalar.

#include <vector>

#include "kernels_impl.hpp"
#include "kernels_internal.hpp"
#include "sgnn/tensor/kernels.hpp"
#include "simd_wrapper.hpp"

namespace sgnn::kernels {

#if defined(SGNN_SIMD_ANY)

namespace {

namespace sd = simd;

/// Lane vocabulary shared by the fp64 kernels (double lanes) and the fp32
/// matmul kernels (float lanes over the scratch panels).
struct TraitsD {
  using S = real;
  using Vec = sd::vd;
  static constexpr std::int64_t W = sd::kVD;
  static Vec load(const S* p) { return sd::vd_load(p); }
  static void store(S* p, Vec v) { sd::vd_store(p, v); }
  static Vec set1(S s) { return sd::vd_set1(s); }
  static Vec zero() { return sd::vd_zero(); }
  static Vec vadd(Vec a, Vec b) { return sd::vd_add(a, b); }
  static Vec vmul(Vec a, Vec b) { return sd::vd_mul(a, b); }
};

struct TraitsW {
  using S = float;
  using Vec = sd::vw;
  static constexpr std::int64_t W = sd::kVW;
  static Vec load(const S* p) { return sd::vw_load(p); }
  static void store(S* p, Vec v) { sd::vw_store(p, v); }
  static Vec set1(S s) { return sd::vw_set1(s); }
  static Vec zero() { return sd::vw_zero(); }
  static Vec vadd(Vec a, Vec b) { return sd::vw_add(a, b); }
  static Vec vmul(Vec a, Vec b) { return sd::vw_mul(a, b); }
};

// ---------------------------------------------------------------------------
// Matmul. GEBP structure: the reduction dimension is blocked into kKc-row
// panels of B, and each panel's vector columns are packed once into a
// j0-blocked contiguous scratch (tile t owns packed[t*kKc*jw ..]). The
// 2-row × 2-vector register-tile sweep then reads packed memory
// sequentially — without packing the p-sweep walks B with a row-sized
// stride, which the page-local hardware prefetcher cannot follow once rows
// pass ~1KB, and the kernel loses to the streaming scalar loop. Packing
// does NOT change the arithmetic: every C element still accumulates over
// ascending p (panels ascending, rows ascending within a panel) with
// separate mul+add steps, and the register→memory round trip between
// panels is exact — bit-identical to the reference kernel. Row and column
// remainders run the scalar reference arithmetic.

template <typename TR>
void matmul_rows_vec(const typename TR::S* a, const typename TR::S* b,
                     typename TR::S* c, std::int64_t k, std::int64_t n,
                     std::int64_t row_begin, std::int64_t row_end) {
  using S = typename TR::S;
  using Vec = typename TR::Vec;
  constexpr std::int64_t jw = 2 * TR::W;
  constexpr std::int64_t kKc = 64;  // B panel rows; panel fits L2 easily
  const std::int64_t n_vec = n - n % jw;
  const std::int64_t tiles = n_vec / jw;
  const std::int64_t pair_end = row_begin + (row_end - row_begin) / 2 * 2;
  std::vector<S> packed(static_cast<std::size_t>(kKc * n_vec));
  for (std::int64_t p0 = 0; p0 < k; p0 += kKc) {
    const std::int64_t pc = p0 + kKc < k ? kKc : k - p0;
    for (std::int64_t pp = 0; pp < pc; ++pp) {
      const S* brow = b + (p0 + pp) * n;
      for (std::int64_t t = 0; t < tiles; ++t) {
        S* dst = packed.data() + t * kKc * jw + pp * jw;
        for (std::int64_t l = 0; l < jw; ++l) dst[l] = brow[t * jw + l];
      }
    }
    for (std::int64_t i = row_begin; i < pair_end; i += 2) {
      const S* arow0 = a + i * k + p0;
      const S* arow1 = arow0 + k;
      S* crow0 = c + i * n;
      S* crow1 = crow0 + n;
      for (std::int64_t t = 0; t < tiles; ++t) {
        const std::int64_t j0 = t * jw;
        Vec acc00, acc01, acc10, acc11;
        if (p0 == 0) {
          acc00 = TR::zero();
          acc01 = TR::zero();
          acc10 = TR::zero();
          acc11 = TR::zero();
        } else {
          acc00 = TR::load(crow0 + j0);
          acc01 = TR::load(crow0 + j0 + TR::W);
          acc10 = TR::load(crow1 + j0);
          acc11 = TR::load(crow1 + j0 + TR::W);
        }
        const S* pb = packed.data() + t * kKc * jw;
        for (std::int64_t pp = 0; pp < pc; ++pp) {
          const Vec av0 = TR::set1(arow0[pp]);
          const Vec av1 = TR::set1(arow1[pp]);
          const Vec b0 = TR::load(pb + pp * jw);
          const Vec b1 = TR::load(pb + pp * jw + TR::W);
          acc00 = TR::vadd(acc00, TR::vmul(av0, b0));
          acc01 = TR::vadd(acc01, TR::vmul(av0, b1));
          acc10 = TR::vadd(acc10, TR::vmul(av1, b0));
          acc11 = TR::vadd(acc11, TR::vmul(av1, b1));
        }
        TR::store(crow0 + j0, acc00);
        TR::store(crow0 + j0 + TR::W, acc01);
        TR::store(crow1 + j0, acc10);
        TR::store(crow1 + j0 + TR::W, acc11);
      }
      for (std::int64_t j = n_vec; j < n; ++j) {
        S s0 = p0 == 0 ? S{0} : crow0[j];
        S s1 = p0 == 0 ? S{0} : crow1[j];
        for (std::int64_t pp = 0; pp < pc; ++pp) {
          s0 += arow0[pp] * b[(p0 + pp) * n + j];
          s1 += arow1[pp] * b[(p0 + pp) * n + j];
        }
        crow0[j] = s0;
        crow1[j] = s1;
      }
    }
  }
  if (pair_end < row_end) matmul_rows_ref<S>(a, b, c, k, n, pair_end, row_end);
}

// A^T·B over a band of C rows: same packed-panel GEBP structure as
// matmul_rows_vec (the reduction runs over m instead of k, and the
// broadcast operands come from A columns) — bit-identical to the
// reference kernel for the same reason.
template <typename TR>
void matmul_at_b_band_vec(const typename TR::S* a, const typename TR::S* b,
                          typename TR::S* c, std::int64_t m, std::int64_t k,
                          std::int64_t n, std::int64_t row_begin,
                          std::int64_t row_end) {
  using S = typename TR::S;
  using Vec = typename TR::Vec;
  constexpr std::int64_t jw = 2 * TR::W;
  constexpr std::int64_t kKc = 64;  // same packed-panel shape as matmul_rows
  const std::int64_t n_vec = n - n % jw;
  const std::int64_t tiles = n_vec / jw;
  const std::int64_t pair_end = row_begin + (row_end - row_begin) / 2 * 2;
  std::vector<S> packed(static_cast<std::size_t>(kKc * n_vec));
  for (std::int64_t p0 = 0; p0 < m; p0 += kKc) {
    const std::int64_t pc = p0 + kKc < m ? kKc : m - p0;
    for (std::int64_t pp = 0; pp < pc; ++pp) {
      const S* brow = b + (p0 + pp) * n;
      for (std::int64_t t = 0; t < tiles; ++t) {
        S* dst = packed.data() + t * kKc * jw + pp * jw;
        for (std::int64_t l = 0; l < jw; ++l) dst[l] = brow[t * jw + l];
      }
    }
    for (std::int64_t i = row_begin; i < pair_end; i += 2) {
      S* crow0 = c + i * n;
      S* crow1 = crow0 + n;
      for (std::int64_t t = 0; t < tiles; ++t) {
        const std::int64_t j0 = t * jw;
        Vec acc00, acc01, acc10, acc11;
        if (p0 == 0) {
          acc00 = TR::zero();
          acc01 = TR::zero();
          acc10 = TR::zero();
          acc11 = TR::zero();
        } else {
          acc00 = TR::load(crow0 + j0);
          acc01 = TR::load(crow0 + j0 + TR::W);
          acc10 = TR::load(crow1 + j0);
          acc11 = TR::load(crow1 + j0 + TR::W);
        }
        const S* pb = packed.data() + t * kKc * jw;
        for (std::int64_t pp = 0; pp < pc; ++pp) {
          const Vec av0 = TR::set1(a[(p0 + pp) * k + i]);
          const Vec av1 = TR::set1(a[(p0 + pp) * k + i + 1]);
          const Vec b0 = TR::load(pb + pp * jw);
          const Vec b1 = TR::load(pb + pp * jw + TR::W);
          acc00 = TR::vadd(acc00, TR::vmul(av0, b0));
          acc01 = TR::vadd(acc01, TR::vmul(av0, b1));
          acc10 = TR::vadd(acc10, TR::vmul(av1, b0));
          acc11 = TR::vadd(acc11, TR::vmul(av1, b1));
        }
        TR::store(crow0 + j0, acc00);
        TR::store(crow0 + j0 + TR::W, acc01);
        TR::store(crow1 + j0, acc10);
        TR::store(crow1 + j0 + TR::W, acc11);
      }
      for (std::int64_t j = n_vec; j < n; ++j) {
        S s0 = p0 == 0 ? S{0} : crow0[j];
        S s1 = p0 == 0 ? S{0} : crow1[j];
        for (std::int64_t pp = 0; pp < pc; ++pp) {
          s0 += a[(p0 + pp) * k + i] * b[(p0 + pp) * n + j];
          s1 += a[(p0 + pp) * k + i + 1] * b[(p0 + pp) * n + j];
        }
        crow0[j] = s0;
        crow1[j] = s1;
      }
    }
  }
  if (pair_end < row_end) {
    matmul_at_b_band_ref<S>(a, b, c, m, k, n, pair_end, row_end);
  }
}

/// Dot-product form: two lane accumulators combined lane-by-lane in a fixed
/// order, then the scalar remainder — deterministic, but a different
/// reduction order than the scalar kernel (documented tolerance).
template <typename TR>
void matmul_a_bt_rows_vec(const typename TR::S* a, const typename TR::S* b,
                          typename TR::S* c, std::int64_t n, std::int64_t k,
                          std::int64_t row_begin, std::int64_t row_end) {
  using S = typename TR::S;
  using Vec = typename TR::Vec;
  constexpr std::int64_t pw = 2 * TR::W;
  const std::int64_t n_vec = n - n % pw;
  for (std::int64_t i = row_begin; i < row_end; ++i) {
    const S* arow = a + i * n;
    S* crow = c + i * k;
    for (std::int64_t j = 0; j < k; ++j) {
      const S* brow = b + j * n;
      Vec acc0 = TR::zero();
      Vec acc1 = TR::zero();
      for (std::int64_t p = 0; p < n_vec; p += pw) {
        acc0 = TR::vadd(acc0, TR::vmul(TR::load(arow + p), TR::load(brow + p)));
        acc1 = TR::vadd(acc1, TR::vmul(TR::load(arow + p + TR::W),
                                     TR::load(brow + p + TR::W)));
      }
      S lanes0[TR::W];
      S lanes1[TR::W];
      TR::store(lanes0, acc0);
      TR::store(lanes1, acc1);
      S acc = 0;
      for (std::int64_t l = 0; l < TR::W; ++l) acc += lanes0[l];
      for (std::int64_t l = 0; l < TR::W; ++l) acc += lanes1[l];
      for (std::int64_t p = n_vec; p < n; ++p) acc += arow[p] * brow[p];
      crow[j] = acc;
    }
  }
}

// ---------------------------------------------------------------------------
// Elementwise, fp64: the same IEEE operation per lane → bit-identical to the
// reference. Transcendentals take the reference path wholesale.

void binary_simd_f64(BinaryOp op, const real* a, const real* b, real* out,
                     std::int64_t n) {
  const std::int64_t nv = n - n % sd::kVD;
  switch (op) {
    case BinaryOp::kAdd:
      for (std::int64_t i = 0; i < nv; i += sd::kVD) {
        sd::vd_store(out + i, sd::vd_add(sd::vd_load(a + i),
                                         sd::vd_load(b + i)));
      }
      break;
    case BinaryOp::kSub:
      for (std::int64_t i = 0; i < nv; i += sd::kVD) {
        sd::vd_store(out + i, sd::vd_sub(sd::vd_load(a + i),
                                         sd::vd_load(b + i)));
      }
      break;
    case BinaryOp::kMul:
      for (std::int64_t i = 0; i < nv; i += sd::kVD) {
        sd::vd_store(out + i, sd::vd_mul(sd::vd_load(a + i),
                                         sd::vd_load(b + i)));
      }
      break;
    case BinaryOp::kDiv:
      for (std::int64_t i = 0; i < nv; i += sd::kVD) {
        sd::vd_store(out + i, sd::vd_div(sd::vd_load(a + i),
                                         sd::vd_load(b + i)));
      }
      break;
  }
  if (nv < n) binary_ref<double>(op, a + nv, b + nv, out + nv, n - nv);
}

// Fp32 flavour: (double)((float)x ∘ (float)y), computed in double lanes.
// The double operation on float-rounded inputs is exact for +, −, × (≤ 49
// significant bits) and an innocuous double rounding for ÷ (53 ≥ 2·24 + 2),
// so rounding the double result back to float precision yields exactly the
// float operation — bit-identical to the scalar reference.
void binary_simd_f32(BinaryOp op, const real* a, const real* b, real* out,
                     std::int64_t n) {
  const std::int64_t nv = n - n % sd::kVD;
  for (std::int64_t i = 0; i < nv; i += sd::kVD) {
    const sd::vd x = sd::vd_round_f32(sd::vd_load(a + i));
    const sd::vd y = sd::vd_round_f32(sd::vd_load(b + i));
    sd::vd r = sd::vd_zero();
    switch (op) {
      case BinaryOp::kAdd:
        r = sd::vd_add(x, y);
        break;
      case BinaryOp::kSub:
        r = sd::vd_sub(x, y);
        break;
      case BinaryOp::kMul:
        r = sd::vd_mul(x, y);
        break;
      case BinaryOp::kDiv:
        r = sd::vd_div(x, y);
        break;
    }
    sd::vd_store(out + i, sd::vd_round_f32(r));
  }
  if (nv < n) binary_ref<float>(op, a + nv, b + nv, out + nv, n - nv);
}

void binary_scalar_l_simd_f64(BinaryOp op, real a, const real* b, real* out,
                              std::int64_t n) {
  const std::int64_t nv = n - n % sd::kVD;
  const sd::vd av = sd::vd_set1(a);
  switch (op) {
    case BinaryOp::kAdd:
      for (std::int64_t i = 0; i < nv; i += sd::kVD) {
        sd::vd_store(out + i, sd::vd_add(av, sd::vd_load(b + i)));
      }
      break;
    case BinaryOp::kSub:
      for (std::int64_t i = 0; i < nv; i += sd::kVD) {
        sd::vd_store(out + i, sd::vd_sub(av, sd::vd_load(b + i)));
      }
      break;
    case BinaryOp::kMul:
      for (std::int64_t i = 0; i < nv; i += sd::kVD) {
        sd::vd_store(out + i, sd::vd_mul(av, sd::vd_load(b + i)));
      }
      break;
    case BinaryOp::kDiv:
      for (std::int64_t i = 0; i < nv; i += sd::kVD) {
        sd::vd_store(out + i, sd::vd_div(av, sd::vd_load(b + i)));
      }
      break;
  }
  if (nv < n) binary_scalar_l_ref<double>(op, a, b + nv, out + nv, n - nv);
}

void binary_scalar_l_simd_f32(BinaryOp op, real a, const real* b, real* out,
                              std::int64_t n) {
  const std::int64_t nv = n - n % sd::kVD;
  const sd::vd av =
      sd::vd_set1(static_cast<double>(static_cast<float>(a)));
  for (std::int64_t i = 0; i < nv; i += sd::kVD) {
    const sd::vd y = sd::vd_round_f32(sd::vd_load(b + i));
    sd::vd r = sd::vd_zero();
    switch (op) {
      case BinaryOp::kAdd:
        r = sd::vd_add(av, y);
        break;
      case BinaryOp::kSub:
        r = sd::vd_sub(av, y);
        break;
      case BinaryOp::kMul:
        r = sd::vd_mul(av, y);
        break;
      case BinaryOp::kDiv:
        r = sd::vd_div(av, y);
        break;
    }
    sd::vd_store(out + i, sd::vd_round_f32(r));
  }
  if (nv < n) binary_scalar_l_ref<float>(op, a, b + nv, out + nv, n - nv);
}

void binary_scalar_r_simd_f64(BinaryOp op, const real* a, real b, real* out,
                              std::int64_t n) {
  const std::int64_t nv = n - n % sd::kVD;
  const sd::vd bv = sd::vd_set1(b);
  switch (op) {
    case BinaryOp::kAdd:
      for (std::int64_t i = 0; i < nv; i += sd::kVD) {
        sd::vd_store(out + i, sd::vd_add(sd::vd_load(a + i), bv));
      }
      break;
    case BinaryOp::kSub:
      for (std::int64_t i = 0; i < nv; i += sd::kVD) {
        sd::vd_store(out + i, sd::vd_sub(sd::vd_load(a + i), bv));
      }
      break;
    case BinaryOp::kMul:
      for (std::int64_t i = 0; i < nv; i += sd::kVD) {
        sd::vd_store(out + i, sd::vd_mul(sd::vd_load(a + i), bv));
      }
      break;
    case BinaryOp::kDiv:
      for (std::int64_t i = 0; i < nv; i += sd::kVD) {
        sd::vd_store(out + i, sd::vd_div(sd::vd_load(a + i), bv));
      }
      break;
  }
  if (nv < n) binary_scalar_r_ref<double>(op, a + nv, b, out + nv, n - nv);
}

void binary_scalar_r_simd_f32(BinaryOp op, const real* a, real b, real* out,
                              std::int64_t n) {
  const std::int64_t nv = n - n % sd::kVD;
  const sd::vd bv =
      sd::vd_set1(static_cast<double>(static_cast<float>(b)));
  for (std::int64_t i = 0; i < nv; i += sd::kVD) {
    const sd::vd x = sd::vd_round_f32(sd::vd_load(a + i));
    sd::vd r = sd::vd_zero();
    switch (op) {
      case BinaryOp::kAdd:
        r = sd::vd_add(x, bv);
        break;
      case BinaryOp::kSub:
        r = sd::vd_sub(x, bv);
        break;
      case BinaryOp::kMul:
        r = sd::vd_mul(x, bv);
        break;
      case BinaryOp::kDiv:
        r = sd::vd_div(x, bv);
        break;
    }
    sd::vd_store(out + i, sd::vd_round_f32(r));
  }
  if (nv < n) binary_scalar_r_ref<float>(op, a + nv, b, out + nv, n - nv);
}

void binary_bwd_simd_f64(BinaryOp op, const real* a, const real* b,
                         const real* g, real* ga, real* gb, std::int64_t n) {
  const std::int64_t nv = n - n % sd::kVD;
  switch (op) {
    case BinaryOp::kMul:
      for (std::int64_t i = 0; i < nv; i += sd::kVD) {
        const sd::vd gv = sd::vd_load(g + i);
        sd::vd_store(ga + i, sd::vd_mul(sd::vd_load(b + i), gv));
        sd::vd_store(gb + i, sd::vd_mul(sd::vd_load(a + i), gv));
      }
      break;
    case BinaryOp::kDiv: {
      const sd::vd one = sd::vd_set1(1.0);
      for (std::int64_t i = 0; i < nv; i += sd::kVD) {
        const sd::vd x = sd::vd_load(a + i);
        const sd::vd y = sd::vd_load(b + i);
        const sd::vd gv = sd::vd_load(g + i);
        sd::vd_store(ga + i, sd::vd_mul(sd::vd_div(one, y), gv));
        sd::vd_store(
            gb + i,
            sd::vd_mul(sd::vd_div(sd::vd_neg(x), sd::vd_mul(y, y)), gv));
      }
      break;
    }
    default:
      binary_bwd_ref<double>(op, a, b, g, ga, gb, n);
      return;
  }
  if (nv < n) {
    binary_bwd_ref<double>(op, a + nv, b + nv, g + nv, ga + nv, gb + nv,
                           n - nv);
  }
}

void unary_simd_f64(UnaryOp op, const real* x, real* out, real c,
                    std::int64_t n) {
  const std::int64_t nv = n - n % sd::kVD;
  switch (op) {
    case UnaryOp::kNeg:
      for (std::int64_t i = 0; i < nv; i += sd::kVD) {
        sd::vd_store(out + i, sd::vd_neg(sd::vd_load(x + i)));
      }
      break;
    case UnaryOp::kScale: {
      const sd::vd cv = sd::vd_set1(c);
      for (std::int64_t i = 0; i < nv; i += sd::kVD) {
        sd::vd_store(out + i, sd::vd_mul(cv, sd::vd_load(x + i)));
      }
      break;
    }
    case UnaryOp::kAddScalar: {
      const sd::vd cv = sd::vd_set1(c);
      for (std::int64_t i = 0; i < nv; i += sd::kVD) {
        sd::vd_store(out + i, sd::vd_add(sd::vd_load(x + i), cv));
      }
      break;
    }
    case UnaryOp::kSquare:
      for (std::int64_t i = 0; i < nv; i += sd::kVD) {
        const sd::vd v = sd::vd_load(x + i);
        sd::vd_store(out + i, sd::vd_mul(v, v));
      }
      break;
    case UnaryOp::kSqrt:
      for (std::int64_t i = 0; i < nv; i += sd::kVD) {
        sd::vd_store(out + i, sd::vd_sqrt(sd::vd_load(x + i)));
      }
      break;
    case UnaryOp::kAbs:
      for (std::int64_t i = 0; i < nv; i += sd::kVD) {
        sd::vd_store(out + i, sd::vd_abs(sd::vd_load(x + i)));
      }
      break;
    case UnaryOp::kClampMin: {
      const sd::vd cv = sd::vd_set1(c);
      for (std::int64_t i = 0; i < nv; i += sd::kVD) {
        sd::vd_store(out + i, sd::vd_max_strict(sd::vd_load(x + i), cv));
      }
      break;
    }
    case UnaryOp::kRelu: {
      const sd::vd zv = sd::vd_zero();
      for (std::int64_t i = 0; i < nv; i += sd::kVD) {
        sd::vd_store(out + i, sd::vd_max_strict(sd::vd_load(x + i), zv));
      }
      break;
    }
    default:
      unary_ref<double>(op, x, out, c, n);
      return;
  }
  if (nv < n) unary_ref<double>(op, x + nv, out + nv, c, n - nv);
}

void unary_bwd_simd_f64(UnaryOp op, const real* x, const real* g, real* gx,
                        real c, std::int64_t n) {
  const std::int64_t nv = n - n % sd::kVD;
  switch (op) {
    case UnaryOp::kNeg: {
      const sd::vd m1 = sd::vd_set1(-1.0);
      for (std::int64_t i = 0; i < nv; i += sd::kVD) {
        sd::vd_store(gx + i, sd::vd_mul(m1, sd::vd_load(g + i)));
      }
      break;
    }
    case UnaryOp::kScale: {
      const sd::vd cv = sd::vd_set1(c);
      for (std::int64_t i = 0; i < nv; i += sd::kVD) {
        sd::vd_store(gx + i, sd::vd_mul(cv, sd::vd_load(g + i)));
      }
      break;
    }
    case UnaryOp::kAddScalar: {
      const sd::vd one = sd::vd_set1(1.0);
      for (std::int64_t i = 0; i < nv; i += sd::kVD) {
        sd::vd_store(gx + i, sd::vd_mul(one, sd::vd_load(g + i)));
      }
      break;
    }
    case UnaryOp::kSquare: {
      const sd::vd two = sd::vd_set1(2.0);
      for (std::int64_t i = 0; i < nv; i += sd::kVD) {
        sd::vd_store(gx + i,
                     sd::vd_mul(sd::vd_mul(two, sd::vd_load(x + i)),
                                sd::vd_load(g + i)));
      }
      break;
    }
    case UnaryOp::kSqrt: {
      const sd::vd half = sd::vd_set1(0.5);
      for (std::int64_t i = 0; i < nv; i += sd::kVD) {
        sd::vd_store(gx + i,
                     sd::vd_mul(sd::vd_div(half, sd::vd_sqrt(sd::vd_load(x + i))),
                                sd::vd_load(g + i)));
      }
      break;
    }
    case UnaryOp::kClampMin: {
      const sd::vd cv = sd::vd_set1(c);
      const sd::vd one = sd::vd_set1(1.0);
      const sd::vd zero = sd::vd_zero();
      for (std::int64_t i = 0; i < nv; i += sd::kVD) {
        const sd::vm mask = sd::vd_gt(sd::vd_load(x + i), cv);
        sd::vd_store(gx + i, sd::vd_mul(sd::vd_select(mask, one, zero),
                                        sd::vd_load(g + i)));
      }
      break;
    }
    case UnaryOp::kRelu: {
      const sd::vd one = sd::vd_set1(1.0);
      const sd::vd zero = sd::vd_zero();
      for (std::int64_t i = 0; i < nv; i += sd::kVD) {
        const sd::vm mask = sd::vd_gt(sd::vd_load(x + i), zero);
        sd::vd_store(gx + i, sd::vd_mul(sd::vd_select(mask, one, zero),
                                        sd::vd_load(g + i)));
      }
      break;
    }
    default:
      unary_bwd_ref<double>(op, x, g, gx, c, n);
      return;
  }
  if (nv < n) unary_bwd_ref<double>(op, x + nv, g + nv, gx + nv, c, n - nv);
}

// ---------------------------------------------------------------------------
// Reductions.

double sum_chunk_simd_f64(const real* x, std::int64_t n) {
  constexpr std::int64_t pw = 2 * sd::kVD;
  const std::int64_t nv = n - n % pw;
  sd::vd acc0 = sd::vd_zero();
  sd::vd acc1 = sd::vd_zero();
  for (std::int64_t i = 0; i < nv; i += pw) {
    acc0 = sd::vd_add(acc0, sd::vd_load(x + i));
    acc1 = sd::vd_add(acc1, sd::vd_load(x + i + sd::kVD));
  }
  double lanes0[sd::kVD];
  double lanes1[sd::kVD];
  sd::vd_store(lanes0, acc0);
  sd::vd_store(lanes1, acc1);
  double acc = 0;
  for (std::int64_t l = 0; l < sd::kVD; ++l) acc += lanes0[l];
  for (std::int64_t l = 0; l < sd::kVD; ++l) acc += lanes1[l];
  for (std::int64_t i = nv; i < n; ++i) acc += x[i];
  return acc;
}

double sum_chunk_simd_f32(const real* x, std::int64_t n) {
  constexpr std::int64_t pw = 2 * sd::kVD;
  const std::int64_t nv = n - n % pw;
  sd::vd acc0 = sd::vd_zero();
  sd::vd acc1 = sd::vd_zero();
  for (std::int64_t i = 0; i < nv; i += pw) {
    acc0 = sd::vd_add(acc0, sd::vd_round_f32(sd::vd_load(x + i)));
    acc1 = sd::vd_add(acc1, sd::vd_round_f32(sd::vd_load(x + i + sd::kVD)));
  }
  double lanes0[sd::kVD];
  double lanes1[sd::kVD];
  sd::vd_store(lanes0, acc0);
  sd::vd_store(lanes1, acc1);
  double acc = 0;
  for (std::int64_t l = 0; l < sd::kVD; ++l) acc += lanes0[l];
  for (std::int64_t l = 0; l < sd::kVD; ++l) acc += lanes1[l];
  for (std::int64_t i = nv; i < n; ++i) {
    acc += static_cast<double>(static_cast<float>(x[i]));
  }
  return acc;
}

void accumulate_simd_f64(const real* src, real* dst, std::int64_t n) {
  const std::int64_t nv = n - n % sd::kVD;
  for (std::int64_t i = 0; i < nv; i += sd::kVD) {
    sd::vd_store(dst + i, sd::vd_add(sd::vd_load(dst + i),
                                     sd::vd_load(src + i)));
  }
  if (nv < n) accumulate_ref<double>(src + nv, dst + nv, n - nv);
}

void accumulate_simd_f32(const real* src, real* dst, std::int64_t n) {
  const std::int64_t nv = n - n % sd::kVD;
  for (std::int64_t i = 0; i < nv; i += sd::kVD) {
    sd::vd_store(dst + i,
                 sd::vd_add(sd::vd_load(dst + i),
                            sd::vd_round_f32(sd::vd_load(src + i))));
  }
  if (nv < n) accumulate_ref<float>(src + nv, dst + nv, n - nv);
}

}  // namespace

bool simd_table_vectorized() { return true; }

const KernelTable& simd_table() {
  static const KernelTable table = {
      /*matmul_rows_f64=*/matmul_rows_vec<TraitsD>,
      /*matmul_rows_f32=*/matmul_rows_vec<TraitsW>,
      /*matmul_at_b_band_f64=*/matmul_at_b_band_vec<TraitsD>,
      /*matmul_at_b_band_f32=*/matmul_at_b_band_vec<TraitsW>,
      /*matmul_a_bt_rows_f64=*/matmul_a_bt_rows_vec<TraitsD>,
      /*matmul_a_bt_rows_f32=*/matmul_a_bt_rows_vec<TraitsW>,
      /*binary_f64=*/binary_simd_f64,
      /*binary_f32=*/binary_simd_f32,
      /*binary_scalar_l_f64=*/binary_scalar_l_simd_f64,
      /*binary_scalar_l_f32=*/binary_scalar_l_simd_f32,
      /*binary_scalar_r_f64=*/binary_scalar_r_simd_f64,
      /*binary_scalar_r_f32=*/binary_scalar_r_simd_f32,
      /*binary_bwd_f64=*/binary_bwd_simd_f64,
      /*binary_bwd_f32=*/binary_bwd_ref<float>,
      /*unary_f64=*/unary_simd_f64,
      /*unary_f32=*/unary_ref<float>,
      /*unary_bwd_f64=*/unary_bwd_simd_f64,
      /*unary_bwd_f32=*/unary_bwd_ref<float>,
      /*sum_chunk_f64=*/sum_chunk_simd_f64,
      /*sum_chunk_f32=*/sum_chunk_simd_f32,
      /*accumulate_f64=*/accumulate_simd_f64,
      /*accumulate_f32=*/accumulate_simd_f32,
  };
  return table;
}

#else  // !SGNN_SIMD_ANY: no vector ISA compiled in — alias the reference.

bool simd_table_vectorized() { return false; }

const KernelTable& simd_table() {
  static const KernelTable table = {
      /*matmul_rows_f64=*/matmul_rows_ref<real>,
      /*matmul_rows_f32=*/matmul_rows_ref<float>,
      /*matmul_at_b_band_f64=*/matmul_at_b_band_ref<real>,
      /*matmul_at_b_band_f32=*/matmul_at_b_band_ref<float>,
      /*matmul_a_bt_rows_f64=*/matmul_a_bt_rows_ref<real>,
      /*matmul_a_bt_rows_f32=*/matmul_a_bt_rows_ref<float>,
      /*binary_f64=*/binary_ref<double>,
      /*binary_f32=*/binary_ref<float>,
      /*binary_scalar_l_f64=*/binary_scalar_l_ref<double>,
      /*binary_scalar_l_f32=*/binary_scalar_l_ref<float>,
      /*binary_scalar_r_f64=*/binary_scalar_r_ref<double>,
      /*binary_scalar_r_f32=*/binary_scalar_r_ref<float>,
      /*binary_bwd_f64=*/binary_bwd_ref<double>,
      /*binary_bwd_f32=*/binary_bwd_ref<float>,
      /*unary_f64=*/unary_ref<double>,
      /*unary_f32=*/unary_ref<float>,
      /*unary_bwd_f64=*/unary_bwd_ref<double>,
      /*unary_bwd_f32=*/unary_bwd_ref<float>,
      /*sum_chunk_f64=*/sum_chunk_ref<double>,
      /*sum_chunk_f32=*/sum_chunk_ref<float>,
      /*accumulate_f64=*/accumulate_ref<double>,
      /*accumulate_f32=*/accumulate_ref<float>,
  };
  return table;
}

#endif

}  // namespace sgnn::kernels
