#pragma once

// Portable SIMD wrapper for the vectorized kernel backend. This is the ONLY
// file in the tree allowed to use raw SIMD intrinsics (sgnn_lint rule R6
// flags `_mm*` / NEON intrinsics anywhere else); kernels_simd.cpp writes its
// loops against the `vd` / `vw` vocabulary below, so adding an ISA means
// adding one more branch here, not touching kernel code.
//
// Two vector types are exposed:
//   vd — kVD double lanes (AVX2: 4, NEON: 2). All fp64 kernels and the
//        fp32-compute elementwise kernels (which round double storage
//        through float, see docs/kernels.md) use these.
//   vw — kVW float lanes (AVX2: 8, NEON: 4), for the fp32 matmul kernels
//        that run on float scratch panels.
//
// Semantics notes, load-bearing for cross-backend bit-identity:
//   * There is deliberately NO fused-multiply-add helper: mul+add keeps each
//     element's rounding sequence identical to the scalar reference.
//   * vd_max_strict(a, b) is exactly the scalar ternary `a > b ? a : b`,
//     including NaN (NaN > b is false → b) and signed-zero behavior; AVX2
//     max_pd already has that definition, NEON needs compare+select.
//   * vd_neg / vd_abs are sign-bit flips/clears, matching `-x` / std::abs
//     on ±0 and NaN.

#include <cstdint>

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#define SGNN_SIMD_AVX2 1
#elif defined(__ARM_NEON)
#include <arm_neon.h>
#define SGNN_SIMD_NEON 1
#endif

#if defined(SGNN_SIMD_AVX2) || defined(SGNN_SIMD_NEON)
#define SGNN_SIMD_ANY 1
#endif

namespace sgnn::kernels::simd {

#if defined(SGNN_SIMD_AVX2)

inline constexpr std::int64_t kVD = 4;
inline constexpr std::int64_t kVW = 8;

struct vd {
  __m256d v;
};
struct vm {
  __m256d v;  // lanewise all-ones/all-zeros compare result
};
struct vw {
  __m256 v;
};

inline vd vd_load(const double* p) { return {_mm256_loadu_pd(p)}; }
inline void vd_store(double* p, vd x) { _mm256_storeu_pd(p, x.v); }
inline vd vd_set1(double s) { return {_mm256_set1_pd(s)}; }
inline vd vd_zero() { return {_mm256_setzero_pd()}; }
inline vd vd_add(vd a, vd b) { return {_mm256_add_pd(a.v, b.v)}; }
inline vd vd_sub(vd a, vd b) { return {_mm256_sub_pd(a.v, b.v)}; }
inline vd vd_mul(vd a, vd b) { return {_mm256_mul_pd(a.v, b.v)}; }
inline vd vd_div(vd a, vd b) { return {_mm256_div_pd(a.v, b.v)}; }
inline vd vd_sqrt(vd a) { return {_mm256_sqrt_pd(a.v)}; }
inline vd vd_neg(vd a) {
  return {_mm256_xor_pd(a.v, _mm256_set1_pd(-0.0))};
}
inline vd vd_abs(vd a) {
  return {_mm256_andnot_pd(_mm256_set1_pd(-0.0), a.v)};
}
inline vm vd_gt(vd a, vd b) {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_GT_OQ)};
}
inline vd vd_select(vm mask, vd a, vd b) {
  return {_mm256_blendv_pd(b.v, a.v, mask.v)};
}
inline vd vd_max_strict(vd a, vd b) {
  // max_pd is defined as (a > b) ? a : b, the scalar ternary semantics.
  return {_mm256_max_pd(a.v, b.v)};
}
/// Rounds each double lane to float precision and back.
inline vd vd_round_f32(vd a) {
  return {_mm256_cvtps_pd(_mm256_cvtpd_ps(a.v))};
}

inline vw vw_load(const float* p) { return {_mm256_loadu_ps(p)}; }
inline void vw_store(float* p, vw x) { _mm256_storeu_ps(p, x.v); }
inline vw vw_set1(float s) { return {_mm256_set1_ps(s)}; }
inline vw vw_zero() { return {_mm256_setzero_ps()}; }
inline vw vw_add(vw a, vw b) { return {_mm256_add_ps(a.v, b.v)}; }
inline vw vw_mul(vw a, vw b) { return {_mm256_mul_ps(a.v, b.v)}; }

#elif defined(SGNN_SIMD_NEON)

inline constexpr std::int64_t kVD = 2;
inline constexpr std::int64_t kVW = 4;

struct vd {
  float64x2_t v;
};
struct vm {
  uint64x2_t v;
};
struct vw {
  float32x4_t v;
};

inline vd vd_load(const double* p) { return {vld1q_f64(p)}; }
inline void vd_store(double* p, vd x) { vst1q_f64(p, x.v); }
inline vd vd_set1(double s) { return {vdupq_n_f64(s)}; }
inline vd vd_zero() { return {vdupq_n_f64(0.0)}; }
inline vd vd_add(vd a, vd b) { return {vaddq_f64(a.v, b.v)}; }
inline vd vd_sub(vd a, vd b) { return {vsubq_f64(a.v, b.v)}; }
inline vd vd_mul(vd a, vd b) { return {vmulq_f64(a.v, b.v)}; }
inline vd vd_div(vd a, vd b) { return {vdivq_f64(a.v, b.v)}; }
inline vd vd_sqrt(vd a) { return {vsqrtq_f64(a.v)}; }
inline vd vd_neg(vd a) { return {vnegq_f64(a.v)}; }
inline vd vd_abs(vd a) { return {vabsq_f64(a.v)}; }
inline vm vd_gt(vd a, vd b) { return {vcgtq_f64(a.v, b.v)}; }
inline vd vd_select(vm mask, vd a, vd b) {
  return {vbslq_f64(mask.v, a.v, b.v)};
}
inline vd vd_max_strict(vd a, vd b) {
  // NEON's vmaxq returns NaN when either input is NaN; compare+select
  // reproduces the scalar `a > b ? a : b` instead.
  return vd_select(vd_gt(a, b), a, b);
}
inline vd vd_round_f32(vd a) {
  return {vcvt_f64_f32(vcvt_f32_f64(a.v))};
}

inline vw vw_load(const float* p) { return {vld1q_f32(p)}; }
inline void vw_store(float* p, vw x) { vst1q_f32(p, x.v); }
inline vw vw_set1(float s) { return {vdupq_n_f32(s)}; }
inline vw vw_zero() { return {vdupq_n_f32(0.0f)}; }
inline vw vw_add(vw a, vw b) { return {vaddq_f32(a.v, b.v)}; }
inline vw vw_mul(vw a, vw b) { return {vmulq_f32(a.v, b.v)}; }

#endif

}  // namespace sgnn::kernels::simd
