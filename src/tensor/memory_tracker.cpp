#include "sgnn/tensor/memory_tracker.hpp"

#include <algorithm>

#include "sgnn/util/error.hpp"

namespace sgnn {
namespace {

thread_local MemCategory t_category = MemCategory::kActivation;
thread_local TrainPhase t_phase = TrainPhase::kIdle;

}  // namespace

const char* mem_category_name(MemCategory category) {
  switch (category) {
    case MemCategory::kActivation: return "activations";
    case MemCategory::kWeight: return "weights";
    case MemCategory::kGradient: return "gradients";
    case MemCategory::kOptimizerState: return "optimizer states";
    case MemCategory::kWorkspace: return "workspace";
    case MemCategory::kCount: break;
  }
  return "?";
}

const char* train_phase_name(TrainPhase phase) {
  switch (phase) {
    case TrainPhase::kIdle: return "idle";
    case TrainPhase::kForward: return "forward";
    case TrainPhase::kBackward: return "backward";
    case TrainPhase::kOptimizer: return "optimizer (weight update)";
    case TrainPhase::kCount: break;
  }
  return "?";
}

MemoryTracker& MemoryTracker::instance() {
  static MemoryTracker tracker;
  return tracker;
}

void MemoryTracker::on_alloc(std::size_t bytes, MemCategory category) {
  const std::lock_guard<std::mutex> lock(mutex_);
  live_.bytes[static_cast<std::size_t>(category)] +=
      static_cast<std::int64_t>(bytes);
  const std::int64_t total = live_.total();
  if (total > peak_.total()) {
    peak_ = live_;
    peak_phase_ = t_phase;
  }
  auto& phase_peak = peak_by_phase_[static_cast<std::size_t>(t_phase)];
  phase_peak = std::max(phase_peak, total);
}

void MemoryTracker::on_free(std::size_t bytes, MemCategory category) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& counter = live_.bytes[static_cast<std::size_t>(category)];
  counter -= static_cast<std::int64_t>(bytes);
  SGNN_DCHECK(counter >= 0, "memory tracker underflow for category "
                                << mem_category_name(category));
}

MemBreakdown MemoryTracker::live() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return live_;
}

MemBreakdown MemoryTracker::peak() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return peak_;
}

TrainPhase MemoryTracker::peak_phase() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return peak_phase_;
}

std::int64_t MemoryTracker::peak_total() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return peak_.total();
}

std::int64_t MemoryTracker::peak_during(TrainPhase phase) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return peak_by_phase_[static_cast<std::size_t>(phase)];
}

void MemoryTracker::reset_peak() {
  const std::lock_guard<std::mutex> lock(mutex_);
  peak_ = live_;
  peak_phase_ = t_phase;
  peak_by_phase_.fill(0);
  peak_by_phase_[static_cast<std::size_t>(t_phase)] = live_.total();
}

MemCategory MemoryTracker::current_category() { return t_category; }
void MemoryTracker::set_current_category(MemCategory category) {
  t_category = category;
}
TrainPhase MemoryTracker::current_phase() { return t_phase; }
void MemoryTracker::set_current_phase(TrainPhase phase) { t_phase = phase; }

}  // namespace sgnn
