#pragma once

// Internal helpers shared by the op implementation files. Not installed.

#include <vector>

#include "sgnn/obs/prof.hpp"
#include "sgnn/tensor/ops.hpp"
#include "sgnn/tensor/tensor.hpp"
#include "sgnn/util/error.hpp"
#include "sgnn/util/thread_pool.hpp"

namespace sgnn::ops_detail {

/// Grain for plain elementwise loops (one cheap op per item).
inline constexpr std::int64_t kElementwiseGrain = 1 << 15;

/// Strides (in elements) for reading `in` as if broadcast to `out`:
/// broadcast dimensions get stride 0. `in` is right-aligned against `out`.
inline std::vector<std::int64_t> broadcast_strides(const Shape& in,
                                                   const Shape& out) {
  const auto in_strides = in.strides();
  std::vector<std::int64_t> result(out.rank(), 0);
  for (std::size_t i = 0; i < in.rank(); ++i) {
    const std::size_t out_axis = out.rank() - in.rank() + i;
    result[out_axis] = in.dim(i) == 1 ? 0 : in_strides[i];
  }
  return result;
}

/// Applies `f(a_val, b_val)` over the broadcast of a and b into `out`.
/// Each output element is written by exactly one chunk, so the result is
/// independent of how the pool partitions the range.
template <typename F>
void binary_broadcast(const Tensor& a, const Tensor& b, Tensor& out, F f) {
  const real* pa = a.data();
  const real* pb = b.data();
  real* po = out.data();
  const std::int64_t n = out.numel();

  if (a.shape() == b.shape()) {
    parallel_for(0, n, kElementwiseGrain,
                 [=](std::int64_t begin, std::int64_t end) {
                   for (std::int64_t i = begin; i < end; ++i) {
                     po[i] = f(pa[i], pb[i]);
                   }
                 });
    return;
  }
  if (a.numel() == 1) {
    const real av = pa[0];
    parallel_for(0, n, kElementwiseGrain,
                 [=](std::int64_t begin, std::int64_t end) {
                   for (std::int64_t i = begin; i < end; ++i) {
                     po[i] = f(av, pb[i]);
                   }
                 });
    return;
  }
  if (b.numel() == 1) {
    const real bv = pb[0];
    parallel_for(0, n, kElementwiseGrain,
                 [=](std::int64_t begin, std::int64_t end) {
                   for (std::int64_t i = begin; i < end; ++i) {
                     po[i] = f(pa[i], bv);
                   }
                 });
    return;
  }

  const auto sa = broadcast_strides(a.shape(), out.shape());
  const auto sb = broadcast_strides(b.shape(), out.shape());
  const auto so = out.shape().strides();
  const std::size_t rank = out.rank();
  parallel_for(0, n, kElementwiseGrain, [&, pa, pb, po](std::int64_t begin,
                                                        std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i) {
      std::int64_t rem = i;
      std::int64_t oa = 0;
      std::int64_t ob = 0;
      for (std::size_t axis = 0; axis < rank; ++axis) {
        const std::int64_t coord = rem / so[axis];
        rem -= coord * so[axis];
        oa += coord * sa[axis];
        ob += coord * sb[axis];
      }
      po[i] = f(pa[oa], pb[ob]);
    }
  });
}

/// Sum-reduces `grad` (shaped like the broadcast output) back to `target`,
/// the pre-broadcast input shape. Used by the backward of broadcasting ops.
inline Tensor reduce_to(const Tensor& grad, const Shape& target) {
  if (grad.shape() == target) return grad;
  SGNN_CHECK(Shape::broadcastable_to(target, grad.shape()),
             "reduce_to: " << target.to_string() << " does not broadcast to "
                           << grad.shape().to_string());
  const obs::prof::KernelScope prof(
      "reduce_to", grad.numel(),
      obs::prof::sat_mul(static_cast<std::int64_t>(sizeof(real)),
                         obs::prof::sat_add(grad.numel(), target.numel())));
  Tensor out = Tensor::zeros(target);
  const auto st = broadcast_strides(target, grad.shape());
  const auto sg = grad.shape().strides();
  const std::size_t rank = grad.rank();
  const real* pg = grad.data();
  real* po = out.data();
  const std::int64_t n = grad.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    std::int64_t rem = i;
    std::int64_t ot = 0;
    for (std::size_t axis = 0; axis < rank; ++axis) {
      const std::int64_t coord = rem / sg[axis];
      rem -= coord * sg[axis];
      ot += coord * st[axis];
    }
    po[ot] += pg[i];
  }
  return out;
}

}  // namespace sgnn::ops_detail
